#!/usr/bin/env bash
# bench.sh — run the repo's tracked benchmark suites and record them as
# diffable JSON in the repo root, so perf regressions are visible across
# PRs. Two files are written:
#
#   BENCH_4.json  table-level, engine, and tracing-span benchmarks.
#                 BenchmarkSpanDisabled is the disabled-tracing overhead
#                 number: its allocs_per_op must be 0 (the obs package's
#                 zero-alloc contract; TestSpanDisabledZeroAlloc gates
#                 it, this file just records the ns/op).
#   BENCH_5.json  greedy-round candidate pricing, full vs delta
#                 (BenchmarkGreedyRoundFull / BenchmarkGreedyRoundDelta
#                 with one sub-benchmark per measure). The delta-vs-full
#                 speedup CI reports comes from this file; the
#                 acceptance bar is >= 5x on the BFS-family measures.
#   BENCH_7.json  CSR snapshot backend vs the adjacency-map backend
#                 (BenchmarkCSR{Freeze,BFS,Brandes,GreedyRound} with
#                 map/csr sub-benchmarks), plus the 10^6-node / 10^7-edge
#                 scale demonstration BenchmarkCSRMillionSweep run once.
#                 The acceptance bar is csr >= 2x map on the BFS sweep.
#   BENCH_8.json  whole-repo promolint wall time, serial (-workers 1) vs
#                 parallel (-workers nproc), findings verified
#                 byte-identical first. The acceptance bar is >= 2x on
#                 4+ cores; on smaller machines the speedup is recorded
#                 but not meaningful.
#   BENCH_9.json  the trace pipeline (DESIGN.md §14): BenchmarkSpanDisabled
#                 re-run with the flight/runtime code in the tree (its
#                 allocs_per_op must stay 0), the enabled span path with a
#                 flight recorder attached, flight-recorder retention,
#                 trace export, and the engine with the full pipeline live
#                 (BenchmarkEnginePooledFlight). The acceptance bar —
#                 checked by bench_report.sh — is EnginePooledFlight
#                 within 5% of EnginePooled.
#
# Non-gating: CI uploads the files as artifacts but never fails on their
# contents.
#
# Usage: scripts/bench.sh [count]
#   count  -count passed to `go test` (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${1:-3}"
RAW="$(mktemp)"
trap 'rm -f "$RAW" "$RAW.promolint" "$RAW.serial" "$RAW.parallel"' EXIT

# parse_bench < raw-bench-output > json: fold `go test -bench` lines
# into a JSON object mapping each benchmark to the mean ns/op, B/op, and
# allocs/op over its -count runs.
parse_bench() {
    awk -v count="$COUNT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)       # strip the GOMAXPROCS suffix
    ns[name]     += $3; seen[name]++
    bytes[name]  += $5
    allocs[name] += $7
}
END {
    printf "{\n  \"count\": %d,\n  \"benchmarks\": {\n", count
    n = 0
    for (name in seen) order[++n] = name
    # Sort names for a stable file.
    for (i = 1; i <= n; i++)
        for (j = i + 1; j <= n; j++)
            if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f}%s\n",
            name, ns[name] / seen[name], bytes[name] / seen[name], allocs[name] / seen[name],
            (i < n) ? "," : ""
    }
    printf "  }\n}\n"
}'
}

go test -run '^$' -bench 'BenchmarkTable|BenchmarkEngine|BenchmarkSpan' -benchmem -benchtime 2s -count "$COUNT" . ./internal/obs | tee "$RAW"
parse_bench < "$RAW" > BENCH_4.json
echo "wrote BENCH_4.json"

# The (Full|Delta) alternation deliberately excludes the plain
# BenchmarkGreedyRound end-to-end benchmark — BENCH_5 tracks the two
# candidate-pricing paths in isolation.
go test -run '^$' -bench 'BenchmarkGreedyRound(Full|Delta)' -benchmem -benchtime 1s -count "$COUNT" . | tee "$RAW"
parse_bench < "$RAW" > BENCH_5.json
echo "wrote BENCH_5.json"

# BENCH_7: the backend comparison runs -count times like the others; the
# 10^6-node scale case is appended from a single -benchtime 1x run (its
# setup alone builds a 10^7-edge host, so repetition buys nothing).
go test -run '^$' -bench 'BenchmarkCSR(Freeze|BFS|Brandes|GreedyRound)' -benchmem -benchtime 1s -count "$COUNT" . | tee "$RAW"
go test -run '^$' -bench 'BenchmarkCSRMillionSweep' -benchmem -benchtime 1x -count 1 -timeout 1800s . | tee -a "$RAW"
parse_bench < "$RAW" > BENCH_7.json
echo "wrote BENCH_7.json"

# BENCH_9: the trace pipeline. The obs-side benches price each layer in
# isolation (disabled fast path, enabled path with flight attached,
# flight retention, trace export); the engine pair prices the whole
# pipeline against the untraced baseline within one file so
# bench_report.sh can compute the overhead ratio from a single run.
go test -run '^$' -bench 'BenchmarkSpanDisabled$|BenchmarkSpanEnabledRecorder$|BenchmarkTraceExport$|BenchmarkFlightRecorder$' -benchmem -benchtime 2s -count "$COUNT" ./internal/obs | tee "$RAW"
go test -run '^$' -bench 'BenchmarkEnginePooled$|BenchmarkEnginePooledFlight$' -benchmem -benchtime 2s -count "$COUNT" . | tee -a "$RAW"
parse_bench < "$RAW" > BENCH_9.json
echo "wrote BENCH_9.json"

# BENCH_8: the parallel lint driver. A correctness precondition comes
# first — the parallel findings must be byte-identical to the serial
# reference — then the whole-repo wall time is measured for both worker
# counts (best of COUNT runs each, to shave scheduler noise).
go build -o "$RAW.promolint" ./cmd/promolint
CORES="$(nproc)"
"$RAW.promolint" -workers 1 ./... > "$RAW.serial" || true
"$RAW.promolint" -workers "$CORES" ./... > "$RAW.parallel" || true
if ! diff -u "$RAW.serial" "$RAW.parallel"; then
    echo "BENCH_8 precondition failed: parallel findings differ from serial" >&2
    rm -f "$RAW.promolint" "$RAW.serial" "$RAW.parallel"
    exit 1
fi

lint_wall_ns() { # lint_wall_ns <workers>: best-of-COUNT wall time
    local best=0 i start end wall
    for ((i = 0; i < COUNT; i++)); do
        start=$(date +%s%N)
        "$RAW.promolint" -workers "$1" ./... > /dev/null || true
        end=$(date +%s%N)
        wall=$((end - start))
        if ((best == 0 || wall < best)); then best=$wall; fi
    done
    echo "$best"
}

SERIAL_NS="$(lint_wall_ns 1)"
PARALLEL_NS="$(lint_wall_ns "$CORES")"
SPEEDUP="$(awk -v s="$SERIAL_NS" -v p="$PARALLEL_NS" 'BEGIN { printf "%.2f", s / p }')"
cat > BENCH_8.json <<EOF
{
  "count": $COUNT,
  "cores": $CORES,
  "benchmarks": {
    "PromolintWholeRepo/serial": {"wall_ns": $SERIAL_NS},
    "PromolintWholeRepo/workers=$CORES": {"wall_ns": $PARALLEL_NS}
  },
  "speedup": $SPEEDUP
}
EOF
rm -f "$RAW.promolint" "$RAW.serial" "$RAW.parallel"
echo "wrote BENCH_8.json (speedup ${SPEEDUP}x on $CORES cores)"
if ((CORES >= 4)); then
    if awk -v s="$SPEEDUP" 'BEGIN { exit !(s + 0 >= 2.0) }'; then
        echo "BENCH_8: speedup bar met (>= 2x on $CORES cores)"
    else
        echo "BENCH_8: parallel lint speedup ${SPEEDUP}x is below the 2x bar on $CORES cores" >&2
        exit 1
    fi
fi
