#!/usr/bin/env bash
# bench.sh — run the repo's tracked benchmark suites and record them as
# diffable JSON in the repo root, so perf regressions are visible across
# PRs. Two files are written:
#
#   BENCH_4.json  table-level, engine, and tracing-span benchmarks.
#                 BenchmarkSpanDisabled is the disabled-tracing overhead
#                 number: its allocs_per_op must be 0 (the obs package's
#                 zero-alloc contract; TestSpanDisabledZeroAlloc gates
#                 it, this file just records the ns/op).
#   BENCH_5.json  greedy-round candidate pricing, full vs delta
#                 (BenchmarkGreedyRoundFull / BenchmarkGreedyRoundDelta
#                 with one sub-benchmark per measure). The delta-vs-full
#                 speedup CI reports comes from this file; the
#                 acceptance bar is >= 5x on the BFS-family measures.
#   BENCH_7.json  CSR snapshot backend vs the adjacency-map backend
#                 (BenchmarkCSR{Freeze,BFS,Brandes,GreedyRound} with
#                 map/csr sub-benchmarks), plus the 10^6-node / 10^7-edge
#                 scale demonstration BenchmarkCSRMillionSweep run once.
#                 The acceptance bar is csr >= 2x map on the BFS sweep.
#   BENCH_8.json  whole-repo promolint wall time, serial (-workers 1) vs
#                 parallel (-workers nproc), findings verified
#                 byte-identical first. The acceptance bar is >= 2x on
#                 4+ cores; on smaller machines the speedup is recorded
#                 but not meaningful.
#   BENCH_9.json  the trace pipeline (DESIGN.md §14): BenchmarkSpanDisabled
#                 re-run with the flight/runtime code in the tree (its
#                 allocs_per_op must stay 0), the enabled span path with a
#                 flight recorder attached, flight-recorder retention,
#                 trace export, and the engine with the full pipeline live
#                 (BenchmarkEnginePooledFlight). The acceptance bar —
#                 checked by bench_report.sh — is EnginePooledFlight
#                 within 5% of EnginePooled.
#   BENCH_10.json promod serving-daemon saturation curve (DESIGN.md §15).
#                 promod is booted on a generated BA host (default 10^6
#                 nodes, k=10; override with PROMOD_BENCH_N/_K for quick
#                 local runs), promoload sweeps request rates recording
#                 OK/shed/error counts and latency percentiles per level,
#                 then a low-load pair prices the admission path against
#                 a -max-inflight 0 run. Bars — checked by
#                 bench_report.sh — are >= 5000 sustained OK RPS at some
#                 level and admission-path p50 within 5% of the
#                 no-admission p50; the per-level shed counts document
#                 that overload is refused with 429s, not queued.
#
# Non-gating: CI uploads the files as artifacts but never fails on their
# contents.
#
# Usage: scripts/bench.sh [count]
#   count  -count passed to `go test` (default 3)
#   BENCH_SECTIONS  comma list of suites to (re)run: any of 4,5,7,9,8,10
#                   (default all) — e.g. BENCH_SECTIONS=10 scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${1:-3}"
SECTIONS="${BENCH_SECTIONS:-all}"
# want <n>: is suite n selected?
want() { [[ "$SECTIONS" == all || ",$SECTIONS," == *",$1,"* ]]; }
RAW="$(mktemp)"
PROMOD_PID=""
trap 'kill "$PROMOD_PID" 2>/dev/null || true; rm -f "$RAW" "$RAW".*' EXIT

# parse_bench < raw-bench-output > json: fold `go test -bench` lines
# into a JSON object mapping each benchmark to the mean ns/op, B/op, and
# allocs/op over its -count runs.
parse_bench() {
    awk -v count="$COUNT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)       # strip the GOMAXPROCS suffix
    ns[name]     += $3; seen[name]++
    bytes[name]  += $5
    allocs[name] += $7
}
END {
    printf "{\n  \"count\": %d,\n  \"benchmarks\": {\n", count
    n = 0
    for (name in seen) order[++n] = name
    # Sort names for a stable file.
    for (i = 1; i <= n; i++)
        for (j = i + 1; j <= n; j++)
            if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f}%s\n",
            name, ns[name] / seen[name], bytes[name] / seen[name], allocs[name] / seen[name],
            (i < n) ? "," : ""
    }
    printf "  }\n}\n"
}'
}

if want 4; then
go test -run '^$' -bench 'BenchmarkTable|BenchmarkEngine|BenchmarkSpan' -benchmem -benchtime 2s -count "$COUNT" . ./internal/obs | tee "$RAW"
parse_bench < "$RAW" > BENCH_4.json
echo "wrote BENCH_4.json"
fi

# The (Full|Delta) alternation deliberately excludes the plain
# BenchmarkGreedyRound end-to-end benchmark — BENCH_5 tracks the two
# candidate-pricing paths in isolation.
if want 5; then
go test -run '^$' -bench 'BenchmarkGreedyRound(Full|Delta)' -benchmem -benchtime 1s -count "$COUNT" . | tee "$RAW"
parse_bench < "$RAW" > BENCH_5.json
echo "wrote BENCH_5.json"
fi

# BENCH_7: the backend comparison runs -count times like the others; the
# 10^6-node scale case is appended from a single -benchtime 1x run (its
# setup alone builds a 10^7-edge host, so repetition buys nothing).
if want 7; then
go test -run '^$' -bench 'BenchmarkCSR(Freeze|BFS|Brandes|GreedyRound)' -benchmem -benchtime 1s -count "$COUNT" . | tee "$RAW"
go test -run '^$' -bench 'BenchmarkCSRMillionSweep' -benchmem -benchtime 1x -count 1 -timeout 1800s . | tee -a "$RAW"
parse_bench < "$RAW" > BENCH_7.json
echo "wrote BENCH_7.json"
fi

# BENCH_9: the trace pipeline. The obs-side benches price each layer in
# isolation (disabled fast path, enabled path with flight attached,
# flight retention, trace export); the engine pair prices the whole
# pipeline against the untraced baseline within one file so
# bench_report.sh can compute the overhead ratio from a single run.
if want 9; then
go test -run '^$' -bench 'BenchmarkSpanDisabled$|BenchmarkSpanEnabledRecorder$|BenchmarkTraceExport$|BenchmarkFlightRecorder$' -benchmem -benchtime 2s -count "$COUNT" ./internal/obs | tee "$RAW"
go test -run '^$' -bench 'BenchmarkEnginePooled$|BenchmarkEnginePooledFlight$' -benchmem -benchtime 2s -count "$COUNT" . | tee -a "$RAW"
parse_bench < "$RAW" > BENCH_9.json
echo "wrote BENCH_9.json"
fi

# BENCH_8: the parallel lint driver. A correctness precondition comes
# first — the parallel findings must be byte-identical to the serial
# reference — then the whole-repo wall time is measured for both worker
# counts (best of COUNT runs each, to shave scheduler noise).
if want 8; then
go build -o "$RAW.promolint" ./cmd/promolint
CORES="$(nproc)"
"$RAW.promolint" -workers 1 ./... > "$RAW.serial" || true
"$RAW.promolint" -workers "$CORES" ./... > "$RAW.parallel" || true
if ! diff -u "$RAW.serial" "$RAW.parallel"; then
    echo "BENCH_8 precondition failed: parallel findings differ from serial" >&2
    rm -f "$RAW.promolint" "$RAW.serial" "$RAW.parallel"
    exit 1
fi

lint_wall_ns() { # lint_wall_ns <workers>: best-of-COUNT wall time
    local best=0 i start end wall
    for ((i = 0; i < COUNT; i++)); do
        start=$(date +%s%N)
        "$RAW.promolint" -workers "$1" ./... > /dev/null || true
        end=$(date +%s%N)
        wall=$((end - start))
        if ((best == 0 || wall < best)); then best=$wall; fi
    done
    echo "$best"
}

SERIAL_NS="$(lint_wall_ns 1)"
PARALLEL_NS="$(lint_wall_ns "$CORES")"
SPEEDUP="$(awk -v s="$SERIAL_NS" -v p="$PARALLEL_NS" 'BEGIN { printf "%.2f", s / p }')"
cat > BENCH_8.json <<EOF
{
  "count": $COUNT,
  "cores": $CORES,
  "benchmarks": {
    "PromolintWholeRepo/serial": {"wall_ns": $SERIAL_NS},
    "PromolintWholeRepo/workers=$CORES": {"wall_ns": $PARALLEL_NS}
  },
  "speedup": $SPEEDUP
}
EOF
rm -f "$RAW.promolint" "$RAW.serial" "$RAW.parallel"
echo "wrote BENCH_8.json (speedup ${SPEEDUP}x on $CORES cores)"
if ((CORES >= 4)); then
    if awk -v s="$SPEEDUP" 'BEGIN { exit !(s + 0 >= 2.0) }'; then
        echo "BENCH_8: speedup bar met (>= 2x on $CORES cores)"
    else
        echo "BENCH_8: parallel lint speedup ${SPEEDUP}x is below the 2x bar on $CORES cores" >&2
        exit 1
    fi
fi
fi

# BENCH_10: the promod serving daemon. The sweep runs against an
# admission-configured server (inflight gate deliberately below
# promoload's worker count so saturation produces 429s rather than an
# unbounded queue); the low-load pair then isolates what the admission
# stack itself costs on the p50 by re-running one gentle level against
# a -max-inflight 0 server. The host defaults to the paper-scale
# 10^6-node BA snapshot; PROMOD_BENCH_N/_K shrink it for quick local
# iterations (the JSON records whatever was used).
if want 10; then
PROMOD_N="${PROMOD_BENCH_N:-1000000}"
PROMOD_K="${PROMOD_BENCH_K:-10}"
PROMOD_RPS="${PROMOD_BENCH_RPS:-1000,2500,5000,8000,16000}"
PROMOD_DUR="${PROMOD_BENCH_DUR:-5s}"
PROMOD_LOW_RPS="${PROMOD_BENCH_LOW_RPS:-200}"
go build -o "$RAW.promod" ./cmd/promod
go build -o "$RAW.promoload" ./cmd/promoload

# boot_promod <extra promod flags...>: start the daemon on a free port
# over the BA host and set PROMOD_ADDR/PROMOD_PID. Startup includes
# generating and freezing the host, so the poll budget is generous.
boot_promod() {
    : > "$RAW.promod.err"
    "$RAW.promod" -listen 127.0.0.1:0 -gen-ba "$PROMOD_N,$PROMOD_K" "$@" \
        2> "$RAW.promod.err" &
    PROMOD_PID=$!
    PROMOD_ADDR=""
    for _ in $(seq 1 6000); do
        PROMOD_ADDR="$(sed -n 's/^promod: listening on //p' "$RAW.promod.err" | head -1)"
        [[ -n "$PROMOD_ADDR" ]] && return 0
        if ! kill -0 "$PROMOD_PID" 2>/dev/null; then break; fi
        sleep 0.1
    done
    echo "promod never announced its listen address:" >&2
    cat "$RAW.promod.err" >&2
    exit 1
}

stop_promod() {
    kill -TERM "$PROMOD_PID" 2>/dev/null || true
    wait "$PROMOD_PID" 2>/dev/null || true
    PROMOD_PID=""
}

# get_p50 <promoload-report>: p50_ms of the report's single level.
get_p50() {
    awk '/"p50_ms"/ { sub(/.*"p50_ms": /, ""); sub(/[^0-9.].*/, ""); print; exit }' "$1"
}

# The sweep server gets the whole admission stack: the inflight gate
# and waiter room bound concurrency, and the per-tenant budget is the
# deterministic saturation backstop — cheap cached answers on a shared
# loopback core drain too fast to pile up 48 concurrent requests, so
# it is the tenant bucket that produces the 429 evidence once demand
# passes its refill rate. 6000/s sits above the 5k-RPS bar but below
# what the shared core can generate, so the top sweep levels shed.
echo "BENCH_10: booting promod on a ${PROMOD_N}-node BA host (k=$PROMOD_K)"
boot_promod -max-inflight 32 -queue 16 -queue-wait 5ms \
    -tenant-rate 6000 -tenant-burst 600
"$RAW.promoload" -addr "$PROMOD_ADDR" -rps "$PROMOD_RPS" -duration "$PROMOD_DUR" \
    -p 4 -targets 64 -workers 64 -tenant bench -out "$RAW.sweep.json"
stop_promod

# Admission-overhead pair: the per-request admission work (one bucket
# take + two channel ops) is tens of nanoseconds against a ~0.6 ms
# loopback p50, so boot-to-boot variance dwarfs the effect. Measure
# each config on two alternating boots and keep the min p50 — min
# filters the boots that landed on a noisy scheduler phase.
ADM_P50=""
NOADM_P50=""
for round in 1 2; do
    boot_promod -max-inflight 32 -queue 16 -queue-wait 5ms \
        -tenant-rate 6000 -tenant-burst 600
    "$RAW.promoload" -addr "$PROMOD_ADDR" -rps "$PROMOD_LOW_RPS" -duration 5s \
        -warmup 2s -p 4 -targets 64 -workers 16 -tenant bench -out "$RAW.adm.json"
    stop_promod
    P="$(get_p50 "$RAW.adm.json")"
    ADM_P50="$(awk -v a="${ADM_P50:-$P}" -v b="$P" 'BEGIN { print (a < b ? a : b) }')"
    boot_promod -max-inflight 0
    "$RAW.promoload" -addr "$PROMOD_ADDR" -rps "$PROMOD_LOW_RPS" -duration 5s \
        -warmup 2s -p 4 -targets 64 -workers 16 -out "$RAW.noadm.json"
    stop_promod
    P="$(get_p50 "$RAW.noadm.json")"
    NOADM_P50="$(awk -v a="${NOADM_P50:-$P}" -v b="$P" 'BEGIN { print (a < b ? a : b) }')"
done
{
    printf '{\n'
    printf '  "host": {"n": %s, "k": %s, "seed": 42, "backend": "csr"},\n' "$PROMOD_N" "$PROMOD_K"
    printf '  "shed_overhead": {\n'
    printf '    "rps": %s,\n' "$PROMOD_LOW_RPS"
    printf '    "admission_p50_ms": %s,\n' "${ADM_P50:-0}"
    printf '    "no_admission_p50_ms": %s\n' "${NOADM_P50:-0}"
    printf '  },\n'
    printf '  "sweep": '
    cat "$RAW.sweep.json"
    printf '}\n'
} > BENCH_10.json
echo "wrote BENCH_10.json (admission p50 ${ADM_P50:-?}ms vs no-admission ${NOADM_P50:-?}ms at $PROMOD_LOW_RPS rps)"
fi
