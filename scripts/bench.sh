#!/usr/bin/env bash
# bench.sh — run the table-level, engine, and tracing-span benchmarks
# and record them as BENCH_4.json in the repo root, so perf regressions
# are diffable across PRs. BenchmarkSpanDisabled is the disabled-tracing
# overhead number: its allocs_per_op must be 0 (the obs package's
# zero-alloc contract; TestSpanDisabledZeroAlloc gates it, this file
# just records the ns/op). Non-gating: CI uploads the file as an
# artifact but never fails on its contents.
#
# Usage: scripts/bench.sh [count]
#   count  -count passed to `go test` (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${1:-3}"
OUT="BENCH_4.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkTable|BenchmarkEngine|BenchmarkSpan' -benchmem -benchtime 2s -count "$COUNT" . ./internal/obs | tee "$RAW"

# Parse `go test -bench` lines into JSON: each benchmark maps to the
# mean ns/op, B/op, and allocs/op over its -count runs.
awk -v count="$COUNT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)       # strip the GOMAXPROCS suffix
    ns[name]     += $3; seen[name]++
    bytes[name]  += $5
    allocs[name] += $7
}
END {
    printf "{\n  \"count\": %d,\n  \"benchmarks\": {\n", count
    n = 0
    for (name in seen) order[++n] = name
    # Sort names for a stable file.
    for (i = 1; i <= n; i++)
        for (j = i + 1; j <= n; j++)
            if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f}%s\n",
            name, ns[name] / seen[name], bytes[name] / seen[name], allocs[name] / seen[name],
            (i < n) ? "," : ""
    }
    printf "  }\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
