#!/usr/bin/env bash
# check.sh — the full correctness gate, runnable locally and in CI.
#
#   ./scripts/check.sh          # everything
#   ./scripts/check.sh quick    # skip the race and promodebug test passes
#
# Order is cheapest-first so formatting and vet problems surface before
# the slower test passes.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { echo "== $*"; }

step "gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

step "go vet ./..."
go vet ./...

step "go build ./... (default and promodebug)"
go build ./...
go build -tags promodebug ./...

step "promolint ./... (16-analyzer suite, findings saved to lint-findings.json)"
# One promolint invocation analyzes both build-tag sets (default and
# promodebug) and dedupes shared files. lint-findings.json is a per-run
# artifact (gitignored), regenerated from scratch every time so stale
# findings can never leak between runs; it is written even on failure
# so CI can upload it, and a stale lint-baseline.json entry is itself a
# failure.
rm -f lint-findings.json
if ! go run ./cmd/promolint -json -baseline lint-baseline.json ./... > lint-findings.json; then
    cat lint-findings.json >&2
    exit 1
fi

step "lint report sanity (16 analyzers timed, wall and cpu)"
for field in wall_nanos cpu_nanos; do
    timed=$(grep -c "\"$field\"" lint-findings.json || true)
    if [[ "$timed" -ne 16 ]]; then
        echo "lint-findings.json carries $timed per-analyzer $field timings, want 16" >&2
        exit 1
    fi
done

step "lint-parallel-determinism (workers 1 vs $(nproc), findings must be byte-identical)"
# The parallel driver merges per-package findings in a fixed order, so
# any worker count must reproduce the serial findings exactly. Compare
# the plain-text reports (the JSON report embeds run-dependent
# timings).
go run ./cmd/promolint -workers 1 -baseline lint-baseline.json ./... > lint-serial.txt || true
go run ./cmd/promolint -workers "$(nproc)" -baseline lint-baseline.json ./... > lint-parallel.txt || true
if ! diff -u lint-serial.txt lint-parallel.txt; then
    echo "parallel promolint findings differ from the serial reference" >&2
    exit 1
fi
rm -f lint-serial.txt lint-parallel.txt

step "hotpath-alloc runtime cross-check (BenchmarkSpanDisabled, 0 allocs/op)"
# The static hotpath-alloc analyzer cannot see allocations hidden behind
# cross-package calls; the obs disabled-path benchmark closes that blind
# spot. Both gates must hold together.
bench_out=$(go test ./internal/obs/ -run '^$' -bench BenchmarkSpanDisabled -benchtime 100x -benchmem)
echo "$bench_out" | grep BenchmarkSpanDisabled
if ! echo "$bench_out" | grep -q '\b0 allocs/op'; then
    echo "BenchmarkSpanDisabled allocates — the obs disabled fast path regressed" >&2
    exit 1
fi

step "promod snapshot-swap race suite (go test -race TestConcurrentSnapshotSwap)"
# The swap protocol's whole contract — every admitted request is served
# from exactly one pinned snapshot, reloads never tear a view or drop an
# in-flight request — only fails under concurrency, so this test runs
# under the race detector even in quick mode (the full -race pass below
# covers it too, but attributing a failure to the swap protocol directly
# is worth the few extra seconds).
go test -race -run 'TestConcurrentSnapshotSwap' ./internal/promod

if [[ "${1:-}" == "quick" ]]; then
    step "go test ./... (quick mode: no -race, no promodebug pass)"
    go test ./...
    echo "OK (quick)"
    exit 0
fi

step "go test -race ./..."
# internal/lint re-typechecks fixture modules per mutation; as the
# module grows that pass alone runs well past the default 600s package
# budget under the race detector (~750s at 100 files).
go test -race -timeout 1800s ./...

step "go test -tags promodebug ./... (runtime invariant checks active)"
go test -tags promodebug ./...

echo "OK"
