#!/usr/bin/env bash
# check.sh — the full correctness gate, runnable locally and in CI.
#
#   ./scripts/check.sh          # everything
#   ./scripts/check.sh quick    # skip the race and promodebug test passes
#
# Order is cheapest-first so formatting and vet problems surface before
# the slower test passes.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { echo "== $*"; }

step "gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

step "go vet ./..."
go vet ./...

step "go build ./... (default and promodebug)"
go build ./...
go build -tags promodebug ./...

step "promolint ./... (all analyzers, findings saved to lint-findings.json)"
# The JSON report is written even on failure so CI can upload it as an
# artifact; a stale lint-baseline.json entry is itself a failure.
if ! go run ./cmd/promolint -json -baseline lint-baseline.json ./... > lint-findings.json; then
    cat lint-findings.json >&2
    exit 1
fi

if [[ "${1:-}" == "quick" ]]; then
    step "go test ./... (quick mode: no -race, no promodebug pass)"
    go test ./...
    echo "OK (quick)"
    exit 0
fi

step "go test -race ./..."
go test -race ./...

step "go test -tags promodebug ./... (runtime invariant checks active)"
go test -tags promodebug ./...

echo "OK"
