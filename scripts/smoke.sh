#!/usr/bin/env bash
# smoke.sh — end-to-end observability smoke test, runnable locally and
# in CI:
#
#   1. runs promoctl with -debug-addr and a manifest, scrapes
#      /debug/vars (checking the engine counters and span rollups are
#      present), /debug/pprof/heap, and /debug/trace (validated with
#      promotrace -check) while the server lingers;
#   2. runs a small experiments subset with per-cell manifests;
#   3. boots the promod serving daemon on a generated BA host, answers
#      a promotion query, drives a short promoload burst, swaps the
#      snapshot via POST /admin/reload (checking the promod.* counters
#      on /debug/vars), validates its live /debug/trace, and drains it
#      with SIGTERM;
#   4. validates every emitted manifest against the schema (and the
#      byte-identical round-trip property) via the obs glob test;
#   5. runs promoctl again with -trace, validates the written trace
#      file, and checks the promotrace summary is byte-deterministic;
#   6. copies the manifests into ./smoke-manifests and the traces into
#      ./smoke-traces for artifact upload.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
PROMOCTL_PID=""
PROMOD_PID=""
cleanup() {
    [[ -n "$PROMOCTL_PID" ]] && kill "$PROMOCTL_PID" 2>/dev/null || true
    [[ -n "$PROMOD_PID" ]] && kill "$PROMOD_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

step() { echo "== $*"; }

step "build gengraph, promoctl, experiments, promotrace, promod, promoload"
go build -o "$WORK/gengraph" ./cmd/gengraph
go build -o "$WORK/promoctl" ./cmd/promoctl
go build -o "$WORK/experiments" ./cmd/experiments
go build -o "$WORK/promotrace" ./cmd/promotrace
go build -o "$WORK/promod" ./cmd/promod
go build -o "$WORK/promoload" ./cmd/promoload

step "generate host graph"
"$WORK/gengraph" -model ba -n 400 -k 4 -out "$WORK/g.txt"

step "promoctl with -debug-addr, -manifest, -json"
# Port 0 picks a free port; the actual address is announced on stderr.
# -debug-linger keeps the endpoints up after the (fast) run finishes so
# this script can scrape them.
"$WORK/promoctl" -graph "$WORK/g.txt" -target 100 -measure closeness -p 8 \
    -json -enginestats -manifest "$WORK/manifest-promoctl.json" \
    -debug-addr 127.0.0.1:0 -debug-linger 60s \
    > "$WORK/promoctl.json" 2> "$WORK/promoctl.err" &
PROMOCTL_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's|.*debug endpoints at http://\([^/]*\)/debug/.*|\1|p' "$WORK/promoctl.err" | head -1)"
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
if [[ -z "$ADDR" ]]; then
    echo "promoctl never announced its debug address:" >&2
    cat "$WORK/promoctl.err" >&2
    exit 1
fi
echo "debug server at $ADDR"

step "scrape /debug/vars"
# The promotion itself may still be running; poll until the engine
# counters show up under the "promonet" expvar.
ok=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/debug/vars" > "$WORK/vars.json" 2>/dev/null \
        && grep -q '"engine.hits"' "$WORK/vars.json" \
        && grep -q '"spans"' "$WORK/vars.json"; then
        ok=1
        break
    fi
    sleep 0.1
done
if [[ -z "$ok" ]]; then
    echo "/debug/vars never exposed engine counters and span rollups:" >&2
    cat "$WORK/vars.json" >&2 || true
    exit 1
fi
grep -q '"promonet"' "$WORK/vars.json"

step "scrape /debug/pprof/heap"
curl -fsS "http://$ADDR/debug/pprof/heap?debug=1" | head -1 | grep -q "heap profile"

step "scrape /debug/trace and validate with promotrace -check"
curl -fsS "http://$ADDR/debug/trace" > "$WORK/trace-live.json"
"$WORK/promotrace" -check "$WORK/trace-live.json"

kill "$PROMOCTL_PID" 2>/dev/null || true
wait "$PROMOCTL_PID" 2>/dev/null || true
PROMOCTL_PID=""

if [[ ! -s "$WORK/manifest-promoctl.json" ]]; then
    echo "promoctl wrote no manifest" >&2
    exit 1
fi
grep -q '"engine_stats"' "$WORK/promoctl.json" || {
    echo "promoctl -json -enginestats output lacks engine_stats" >&2
    exit 1
}

step "experiments with per-cell manifests"
"$WORK/experiments" -only table7 -datasets WIKI -scale 0.02 \
    -manifest "$WORK/manifests" > /dev/null
ls "$WORK/manifests"/manifest-*.json > /dev/null

step "promod: boot the serving daemon on a 400-node BA host"
"$WORK/promod" -listen 127.0.0.1:0 -gen-ba 400,4 -max-inflight 8 -queue 16 \
    -debug-addr 127.0.0.1:0 2> "$WORK/promod.err" &
PROMOD_PID=$!
PADDR=""
for _ in $(seq 1 100); do
    PADDR="$(sed -n 's/^promod: listening on //p' "$WORK/promod.err" | head -1)"
    [[ -n "$PADDR" ]] && break
    sleep 0.1
done
if [[ -z "$PADDR" ]]; then
    echo "promod never announced its listen address:" >&2
    cat "$WORK/promod.err" >&2
    exit 1
fi
PDEBUG="$(sed -n 's|.*debug endpoints at http://\([^/]*\)/debug/.*|\1|p' "$WORK/promod.err" | head -1)"
if [[ -z "$PDEBUG" ]]; then
    echo "promod never announced its debug address:" >&2
    cat "$WORK/promod.err" >&2
    exit 1
fi
echo "promod API at $PADDR, debug at $PDEBUG"
grep -q "promod: serving ba-n400-k4-seed42 (csr backend" "$WORK/promod.err"

step "promod: promotion query (Table I strategy + predicted rank)"
curl -fsS -X POST "http://$PADDR/v1/promote" \
    -H 'Content-Type: application/json' \
    -d '{"target": 7, "measure": "closeness", "size": 4}' > "$WORK/promod-resp.json"
grep -q '"strategy":"multi-point"' "$WORK/promod-resp.json"
grep -q '"predicted_rank"' "$WORK/promod-resp.json"
grep -q '"manifest"' "$WORK/promod-resp.json"
curl -fsS "http://$PADDR/v1/manifest" > "$WORK/manifest-promod.json"
curl -fsS "http://$PADDR/healthz" | grep -q '"status":"ok"'

step "promod: short promoload burst"
"$WORK/promoload" -addr "$PADDR" -rps 200 -duration 1s -warmup 0s \
    -measure degree -p 4 -targets 16 -workers 8 -json > "$WORK/promoload.json" \
    2> "$WORK/promoload.err"
awk '
/"ok":/     { sub(/.*: /, ""); sub(/[^0-9].*/, ""); ok = $0 + 0 }
/"errors":/ { sub(/.*: /, ""); sub(/[^0-9].*/, ""); errs = $0 + 0 }
END {
    if (ok < 1 || errs > 0) {
        printf "promoload burst: ok=%d errors=%d\n", ok, errs > "/dev/stderr"
        exit 1
    }
}' "$WORK/promoload.json"

step "promod: snapshot swap via POST /admin/reload"
curl -fsS -X POST "http://$PADDR/admin/reload" > "$WORK/promod-reload.json"
grep -q '"seq":2' "$WORK/promod-reload.json"
curl -fsS "http://$PDEBUG/debug/vars" > "$WORK/promod-vars.json"
grep -q '"promod.swaps":2' "$WORK/promod-vars.json"
grep -q '"promod.requests"' "$WORK/promod-vars.json"

step "promod: live /debug/trace validates with promotrace -check"
curl -fsS "http://$PDEBUG/debug/trace" > "$WORK/trace-promod.json"
"$WORK/promotrace" -check "$WORK/trace-promod.json"

step "promod: graceful drain on SIGTERM"
kill -TERM "$PROMOD_PID"
wait "$PROMOD_PID" 2>/dev/null || true
PROMOD_PID=""
grep -q "draining" "$WORK/promod.err"

step "validate manifests against the schema"
MANIFEST_GLOB="$WORK/manifest-promoctl.json $WORK/manifests/*.json $WORK/manifest-promod.json" \
    go test ./internal/obs -run TestValidateManifestGlobFromEnv -count=1

step "promoctl with -trace: exported file validates and summarizes deterministically"
"$WORK/promoctl" -graph "$WORK/g.txt" -target 100 -measure closeness -p 4 \
    -trace "$WORK/trace-file.json" > /dev/null 2> "$WORK/promoctl-trace.err"
grep -q "trace written to" "$WORK/promoctl-trace.err"
"$WORK/promotrace" -check "$WORK/trace-file.json"
"$WORK/promotrace" -top 5 "$WORK/trace-file.json" > "$WORK/summary-1.txt"
"$WORK/promotrace" -top 5 "$WORK/trace-file.json" > "$WORK/summary-2.txt"
if ! cmp -s "$WORK/summary-1.txt" "$WORK/summary-2.txt"; then
    echo "promotrace summary is not byte-deterministic:" >&2
    diff -u "$WORK/summary-1.txt" "$WORK/summary-2.txt" >&2 || true
    exit 1
fi
grep -q "critical path" "$WORK/summary-1.txt"

step "collect smoke-manifests/ and smoke-traces/"
rm -rf smoke-manifests smoke-traces
mkdir -p smoke-manifests smoke-traces
cp "$WORK/manifest-promoctl.json" "$WORK/manifest-promod.json" \
    "$WORK/manifests"/manifest-*.json smoke-manifests/
cp "$WORK/trace-live.json" "$WORK/trace-file.json" "$WORK/trace-promod.json" \
    "$WORK/summary-1.txt" smoke-traces/

echo "OK"
