#!/usr/bin/env bash
# bench_report.sh — non-gating perf report over the freshly generated
# bench JSON files. Two sections:
#
#   1. Delta-vs-full greedy-round pricing speedup per measure, from
#      BENCH_5.json. Flags BFS-family measures that fall below the 5x
#      acceptance bar (betweenness has no bar — its delta path is
#      bounded by the affected-source fraction, not a fixed ratio).
#   2. CSR-vs-map backend speedup per kernel, from BENCH_7.json. Flags
#      a BFS sweep below the 2x acceptance bar (Freeze/Brandes/
#      GreedyRound carry no bar — Brandes keeps the map backend's exact
#      visit order for bitwise identity, so flat rows buy it little).
#   3. EnginePooled regression check: ns/op of BenchmarkEnginePooled in
#      the fresh BENCH_4.json against the committed baseline
#      (git show HEAD:BENCH_4.json). Flags a >15% slowdown.
#   4. Trace-pipeline overhead, from BENCH_9.json: the enabled/flight
#      span path and trace export ns/op for the record, plus the ISSUE 9
#      acceptance checks — BenchmarkSpanDisabled at 0 allocs/op and
#      BenchmarkEnginePooledFlight within 5% of BenchmarkEnginePooled.
#
# The report never fails the build — it prints findings for reviewers;
# shared-runner noise makes a hard gate on wall clock counterproductive.
#
# Usage: scripts/bench_report.sh (after scripts/bench.sh)
set -euo pipefail
cd "$(dirname "$0")/.."

# get_ns <file> <benchmark-name>: ns_per_op of one entry, empty if absent.
get_ns() {
    awk -v key="\"$2\":" '
index($0, key) {
    sub(/.*"ns_per_op": /, ""); sub(/[^0-9].*/, "")
    print
    exit
}' "$1"
}

if [ -f BENCH_5.json ]; then
    echo "== greedy-round pricing: delta vs full (BENCH_5.json) =="
    awk '
/"Benchmark/ {
    line = $0
    split(line, parts, "\"")
    name = parts[2]
    sub(/.*"ns_per_op": /, "", line); sub(/[^0-9].*/, "", line)
    ns[name] = line + 0
}
END {
    prefix = "BenchmarkGreedyRoundFull/"
    for (n in ns) {
        if (index(n, prefix) != 1) continue
        measure = substr(n, length(prefix) + 1)
        d = "BenchmarkGreedyRoundDelta/" measure
        if (!(d in ns) || ns[d] <= 0) continue
        speedup = ns[n] / ns[d]
        flag = ""
        if (measure != "betweenness" && speedup < 5) flag = "  ** below 5x bar **"
        printf "  %-14s full %12.0f ns/op   delta %12.0f ns/op   speedup %6.2fx%s\n",
            measure, ns[n], ns[d], speedup, flag
    }
}' BENCH_5.json | sort
else
    echo "BENCH_5.json missing — run scripts/bench.sh first"
fi

echo
if [ -f BENCH_7.json ]; then
    echo "== CSR snapshot vs adjacency-map backend (BENCH_7.json) =="
    awk '
/"Benchmark/ {
    line = $0
    split(line, parts, "\"")
    name = parts[2]
    sub(/.*"ns_per_op": /, "", line); sub(/[^0-9].*/, "", line)
    ns[name] = line + 0
}
END {
    for (n in ns) {
        if (n !~ /\/map$/) continue
        kernel = substr(n, 1, length(n) - 4)
        c = kernel "/csr"
        if (!(c in ns) || ns[c] <= 0) continue
        speedup = ns[n] / ns[c]
        flag = ""
        if (kernel == "BenchmarkCSRBFS" && speedup < 2) flag = "  ** below 2x bar **"
        printf "  %-24s map %12.0f ns/op   csr %12.0f ns/op   speedup %6.2fx%s\n",
            substr(kernel, 13), ns[n], ns[c], speedup, flag
    }
}' BENCH_7.json | sort
else
    echo "BENCH_7.json missing — run scripts/bench.sh first"
fi

echo
echo "== EnginePooled vs committed baseline (BENCH_4.json) =="
BASE="$(mktemp)"
trap 'rm -f "$BASE"' EXIT
if git show HEAD:BENCH_4.json > "$BASE" 2>/dev/null; then
    old="$(get_ns "$BASE" BenchmarkEnginePooled)"
    new="$(get_ns BENCH_4.json BenchmarkEnginePooled)"
    if [ -n "$old" ] && [ -n "$new" ]; then
        awk -v old="$old" -v new="$new" 'BEGIN {
            ratio = new / old
            flag = (ratio > 1.15) ? "  ** regression >15% **" : ""
            printf "  baseline %12.0f ns/op   fresh %12.0f ns/op   ratio %5.2fx%s\n",
                old, new, ratio, flag
        }'
    else
        echo "  BenchmarkEnginePooled missing from one of the files — skipping"
    fi
else
    echo "  no committed BENCH_4.json at HEAD — skipping"
fi

echo
if [ -f BENCH_9.json ]; then
    echo "== trace-pipeline overhead (BENCH_9.json) =="
    # get_allocs <file> <benchmark-name>: allocs_per_op of one entry.
    get_allocs() {
        awk -v key="\"$2\":" '
index($0, key) {
    sub(/.*"allocs_per_op": /, ""); sub(/[^0-9].*/, "")
    print
    exit
}' "$1"
    }
    disabled_ns="$(get_ns BENCH_9.json BenchmarkSpanDisabled)"
    disabled_allocs="$(get_allocs BENCH_9.json BenchmarkSpanDisabled)"
    if [ -n "$disabled_ns" ]; then
        flag=""
        [ "${disabled_allocs:-0}" != "0" ] && flag="  ** zero-alloc contract broken **"
        printf '  %-24s %12.0f ns/op   %s allocs/op%s\n' \
            "SpanDisabled" "$disabled_ns" "${disabled_allocs:-?}" "$flag"
    fi
    for b in BenchmarkSpanEnabledRecorder BenchmarkFlightRecorder BenchmarkTraceExport; do
        ns="$(get_ns BENCH_9.json "$b")"
        [ -n "$ns" ] && printf '  %-24s %12.0f ns/op\n' "${b#Benchmark}" "$ns"
    done
    pooled="$(get_ns BENCH_9.json BenchmarkEnginePooled)"
    flight="$(get_ns BENCH_9.json BenchmarkEnginePooledFlight)"
    if [ -n "$pooled" ] && [ -n "$flight" ]; then
        awk -v p="$pooled" -v f="$flight" 'BEGIN {
            ratio = f / p
            flag = (ratio > 1.05) ? "  ** flight overhead above 5% bar **" : ""
            printf "  EnginePooled %12.0f ns/op   with flight %12.0f ns/op   ratio %5.3fx%s\n",
                p, f, ratio, flag
        }'
    else
        echo "  EnginePooled/EnginePooledFlight missing — skipping overhead check"
    fi
else
    echo "BENCH_9.json missing — run scripts/bench.sh first"
fi

echo
if [ -f BENCH_10.json ]; then
    echo "== promod saturation curve (BENCH_10.json) =="
    awk '
function num(    line) { line = $0; sub(/.*: /, "", line); sub(/[^0-9.].*/, "", line); return line + 0 }
/"target_rps":/ { rps = num() }
/"ok":/         { ok = num() }
/"shed":/       { shed = num() }
/"errors":/     { errs = num() }
/"ok_rps":/     { okr = num(); if (okr > best) best = okr }
/"p50_ms":/     { p50 = num() }
/"p99_ms":/     {
    printf "  rps %6d: ok %6d (%.0f ok/s)   shed %6d   err %4d   p50 %8.2f ms   p99 %8.2f ms\n",
        rps, ok, okr, shed, errs, p50, num()
}
END {
    flag = (best < 5000) ? "  ** below 5k RPS bar **" : ""
    printf "  peak sustained %.0f OK RPS%s\n", best, flag
}' BENCH_10.json
    awk '
function num(    line) { line = $0; sub(/.*: /, "", line); sub(/[^0-9.].*/, "", line); return line + 0 }
/"no_admission_p50_ms":/ { noadm = num(); next }
/"admission_p50_ms":/    { adm = num() }
END {
    if (adm <= 0 || noadm <= 0) { print "  shed-overhead pair missing — skipping"; exit }
    ratio = adm / noadm
    flag = (ratio > 1.05) ? "  ** admission overhead above 5% bar **" : ""
    printf "  low-load p50: admission %.2f ms   no admission %.2f ms   ratio %5.3fx%s\n",
        adm, noadm, ratio, flag
}' BENCH_10.json
else
    echo "BENCH_10.json missing — run scripts/bench.sh first"
fi
