// Package bench regenerates every table and figure of the paper's
// evaluation as testing.B benchmarks, plus ablation benches for the
// design choices in DESIGN.md §6. Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTable*/BenchmarkFig* executes the corresponding
// experiment end to end at a reduced scale and reports its wall-clock
// cost; the experiments binary (cmd/experiments) prints the actual
// rows/series.
package bench

import (
	"math/rand"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/datasets"
	"promonet/internal/diffusion"
	"promonet/internal/engine"
	"promonet/internal/exp"
	"promonet/internal/gen"
	"promonet/internal/graph"
	"promonet/internal/graph/csr"
	"promonet/internal/greedy"
	"promonet/internal/obs"
)

// benchConfig is the scale used by the per-table benchmarks: large
// enough to be meaningful, small enough for a bench sweep.
func benchConfig() exp.Config {
	cfg := exp.DefaultConfig()
	cfg.Scale = 0.02
	cfg.NumTargets = 5
	cfg.NumTableTargets = 3
	cfg.Sizes = []int{4, 8, 16, 32}
	cfg.GreedyBudget = 5
	cfg.GreedyTargets = 3
	cfg.GreedyCandidateSample = 32
	return cfg
}

// --- Paper tables ---

func BenchmarkTableVI(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableVI(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchVariation(b *testing.B, k exp.Kind) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := exp.VariationTable(cfg, k); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDominance(b *testing.B, k exp.Kind) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := exp.DominanceTable(cfg, k); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFigure(b *testing.B, k exp.Kind) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RatioFigure(cfg, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVII(b *testing.B)  { benchVariation(b, exp.KindBC) }
func BenchmarkTableVIII(b *testing.B) { benchDominance(b, exp.KindBC) }
func BenchmarkFig4(b *testing.B)      { benchFigure(b, exp.KindBC) }

func BenchmarkTableIX(b *testing.B) { benchVariation(b, exp.KindRC) }
func BenchmarkTableX(b *testing.B)  { benchDominance(b, exp.KindRC) }
func BenchmarkFig5(b *testing.B)    { benchFigure(b, exp.KindRC) }

func BenchmarkTableXI(b *testing.B)  { benchVariation(b, exp.KindCC) }
func BenchmarkTableXII(b *testing.B) { benchDominance(b, exp.KindCC) }
func BenchmarkFig6(b *testing.B)     { benchFigure(b, exp.KindCC) }

func BenchmarkTableXIII(b *testing.B) { benchVariation(b, exp.KindEC) }
func BenchmarkTableXIV(b *testing.B)  { benchDominance(b, exp.KindEC) }
func BenchmarkFig7(b *testing.B)      { benchFigure(b, exp.KindEC) }

func BenchmarkFig8and9(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"WIKI", "HEPP"}
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.GreedyComparison(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTable(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"WIKI"}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Ablation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Toy-table reproductions (Tables III–V run in microseconds) ---

func BenchmarkTableIIIToV(b *testing.B) {
	g := datasets.Fig1()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Promote(g, core.ClosenessMeasure{}, datasets.V4, 4); err != nil {
			b.Fatal(err)
		}
		if _, _, err := core.Promote(g, core.BetweennessMeasure{Counting: centrality.PairsUnordered}, datasets.V4, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate / ablation benchmarks (DESIGN.md §6) ---

func benchHost(n int) *graph.Graph {
	rng := rand.New(rand.NewSource(1234))
	g := gen.BarabasiAlbert(rng, n, 4)
	gen.TriadicClosure(rng, g, n/2)
	return g
}

// The substrate benchmarks time the direct kernels on purpose — they
// are the differential baselines the engine speedups are measured
// against, so they must not route through engine.Default().

//promolint:allow engine-bypass -- differential baseline vs the engine path
func BenchmarkBrandesSequential(b *testing.B) {
	g := benchHost(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.BetweennessWorkers(g, centrality.PairsUnordered, 1)
	}
}

//promolint:allow engine-bypass -- differential baseline vs the engine path
func BenchmarkBrandesParallel(b *testing.B) {
	g := benchHost(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.Betweenness(g, centrality.PairsUnordered)
	}
}

//promolint:allow engine-bypass -- differential baseline vs the engine path
func BenchmarkBetweennessExact(b *testing.B) {
	g := benchHost(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.Betweenness(g, centrality.PairsUnordered)
	}
}

//promolint:allow engine-bypass -- differential baseline vs the engine path
func BenchmarkBetweennessSampled256(b *testing.B) {
	g := benchHost(2000)
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.BetweennessSampled(g, centrality.PairsUnordered, 256, rng)
	}
}

//promolint:allow engine-bypass -- differential baseline vs the engine path
func BenchmarkEccentricityNaive(b *testing.B) {
	g := benchHost(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.ReciprocalEccentricity(g)
	}
}

func BenchmarkEccentricityTakesKosters(b *testing.B) {
	g := benchHost(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.EccentricityBounded(g)
	}
}

func BenchmarkDiameterViaEccentricity(b *testing.B) {
	g := benchHost(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.Diameter(g)
	}
}

func BenchmarkDiameterBounded(b *testing.B) {
	g := benchHost(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.DiameterBounded(g)
	}
}

func BenchmarkCurrentFlowBetweenness(b *testing.B) {
	g := benchHost(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := centrality.CurrentFlowBetweenness(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndependentCascade(b *testing.B) {
	g := benchHost(5000)
	rng := rand.New(rand.NewSource(77))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diffusion.IndependentCascade(g, rng, []int{0}, 0.1)
	}
}

func BenchmarkDetect(b *testing.B) {
	g := benchHost(2000)
	g2, _, err := (core.Strategy{Target: 7, Size: 32, Type: core.SingleClique}).Apply(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Detect(g, g2); err != nil {
			b.Fatal(err)
		}
	}
}

//promolint:allow engine-bypass -- differential baseline vs the engine path
func BenchmarkCloseness(b *testing.B) {
	g := benchHost(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.Closeness(g)
	}
}

//promolint:allow engine-bypass -- differential baseline vs the engine path
func BenchmarkCoreness(b *testing.B) {
	g := benchHost(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.Coreness(g)
	}
}

func BenchmarkStrategyApply(b *testing.B) {
	g := benchHost(5000)
	s := core.Strategy{Target: 7, Size: 64, Type: core.SingleClique}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Apply(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyRound(b *testing.B) {
	g := benchHost(300)
	rng := rand.New(rand.NewSource(5))
	opts := greedy.Options{
		Counting:        centrality.PairsUnordered,
		CandidateSample: 16,
		Rand:            rng,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := greedy.Improve(g, 3, 1, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Greedy round: full vs delta candidate pricing (BENCH_5.json) ---
//
// BenchmarkGreedyRoundFull prices one greedy round the way the code did
// before the delta scorer existed: BFS-family candidates each pay a
// full BFS from the candidate plus an O(n) distance merge, and
// betweenness candidates each pay a mutate → full-recompute → revert
// cycle through an uncached engine. BenchmarkGreedyRoundDelta prices
// the identical round through engine.EvaluateEdgeBatch (also uncached,
// so every iteration pays the once-per-round base like a real round
// does). The acceptance bar is Delta ≥ 5× Full on the BFS-family
// measures at the 10k-node host; scripts/bench.sh records both sides in
// BENCH_5.json and CI reports the ratio.

// greedyRoundHost builds the benchmark instance: an n-node host, a
// late-arrival (peripheral, low-degree) target — the paper's promotion
// scenario — and k candidate endpoints strided across the id space.
func greedyRoundHost(n, k int) (*graph.Graph, int, []int) {
	g := benchHost(n)
	target := n - 1
	var all []int
	for v := 0; v < n; v++ {
		if v != target && !g.HasEdge(target, v) {
			all = append(all, v)
		}
	}
	stride := len(all) / k
	if stride < 1 {
		stride = 1
	}
	cands := make([]int, 0, k)
	for i := 0; i < len(all) && len(cands) < k; i += stride {
		cands = append(cands, all[i])
	}
	return g, target, cands
}

// benchSink keeps the benched scores observable so the loops cannot be
// optimized away.
var benchSink float64

// fullSweepRound is the pre-delta pricing loop for one BFS-family
// round: one BFS from the target, then per candidate one BFS plus a
// full merge of dist'(t,u) = min(dT[u], 1 + dV[u]) under the given
// aggregate ("farness", "harmonic", or "eccentricity").
//
//promolint:allow engine-bypass -- the Full leg reproduces the pre-delta pricing path
func fullSweepRound(bfs *centrality.BFS, g *graph.Graph, target int, cands []int, kind string) float64 {
	dT := append([]int32(nil), bfs.Distances(g, target)...)
	var acc float64
	for _, v := range cands {
		dV := bfs.Distances(g, v)
		var far int64
		var harm float64
		var ecc int32
		for u := range dT {
			if u == target {
				continue
			}
			d := dT[u]
			if dV[u] >= 0 && (d < 0 || dV[u]+1 < d) {
				d = dV[u] + 1
			}
			if d > 0 {
				switch kind {
				case "farness":
					far += int64(d)
				case "harmonic":
					harm += 1 / float64(d)
				default:
					if d > ecc {
						ecc = d
					}
				}
			}
		}
		acc += float64(far) + harm + float64(ecc)
	}
	return acc
}

func BenchmarkGreedyRoundFull(b *testing.B) {
	for _, kind := range []string{"farness", "harmonic", "eccentricity"} {
		kind := kind
		b.Run(kind, func(b *testing.B) {
			g, target, cands := greedyRoundHost(10000, 64)
			bfs := centrality.NewBFS(g.N())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink += fullSweepRound(bfs, g, target, cands, kind)
			}
		})
	}
	b.Run("betweenness", func(b *testing.B) {
		g, target, cands := greedyRoundHost(800, 16)
		e := engine.New(0, engine.WithCacheSize(0))
		defer e.Close()
		work := g.Clone()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, v := range cands {
				work.AddEdge(target, v)
				benchSink += e.Scores(work, engine.Betweenness(centrality.PairsUnordered))[target]
				work.RemoveEdge(target, v)
			}
		}
	})
}

func BenchmarkGreedyRoundDelta(b *testing.B) {
	sweep := map[string]engine.Measure{
		"farness":      engine.Farness(),
		"harmonic":     engine.Harmonic(),
		"eccentricity": engine.ReciprocalEccentricity(),
	}
	for _, kind := range []string{"farness", "harmonic", "eccentricity"} {
		m := sweep[kind]
		b.Run(kind, func(b *testing.B) {
			g, target, cands := greedyRoundHost(10000, 64)
			e := engine.New(0, engine.WithCacheSize(0))
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := e.EvaluateEdgeBatch(g, target, cands, m)
				benchSink += out[len(out)-1]
			}
		})
	}
	b.Run("betweenness", func(b *testing.B) {
		g, target, cands := greedyRoundHost(800, 16)
		e := engine.New(0, engine.WithCacheSize(0))
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := e.EvaluateEdgeBatch(g, target, cands, engine.Betweenness(centrality.PairsUnordered))
			benchSink += out[len(out)-1]
		}
	})
}

func BenchmarkTopKClosenessPruned(b *testing.B) {
	g := benchHost(3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.TopKCloseness(g, 10)
	}
}

//promolint:allow engine-bypass -- differential baseline vs the engine path
func BenchmarkTopKClosenessViaFull(b *testing.B) {
	g := benchHost(3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.Closeness(g)
	}
}

func BenchmarkCorenessIncremental(b *testing.B) {
	// Maintain coreness through a single-clique promotion vs recompute.
	g := benchHost(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm := centrality.NewCoreMaintainer(g.Clone())
		ins := make([]int, 16)
		for j := range ins {
			ins[j] = cm.AddNode()
		}
		for j, w := range ins {
			cm.AddEdge(7, w)
			for _, x := range ins[j+1:] {
				cm.AddEdge(w, x)
			}
		}
	}
}

//promolint:allow engine-bypass -- differential baseline vs the engine path
func BenchmarkCorenessRecomputePerEdge(b *testing.B) {
	g := benchHost(5000)
	s := core.Strategy{Target: 7, Size: 16, Type: core.SingleClique}
	edges := s.NumEdges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g2, _, err := s.Apply(g)
		if err != nil {
			b.Fatal(err)
		}
		// A naive promoter recomputes after every inserted edge; one
		// recompute per edge approximates that cost.
		for e := 0; e < edges; e++ {
			centrality.Coreness(g2)
		}
	}
}

func BenchmarkDatasetSynthesis(b *testing.B) {
	p, err := datasets.ByName("EPIN")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Build(int64(i), 0.05)
	}
}

// --- Execution engine (internal/engine) ---
//
// The three benchmarks below run the same repeated-scoring loop — a
// greedy-style candidate evaluation that scores 8 mutate-evaluate-
// revert variants of one host per iteration, on betweenness plus
// farness — through three execution paths:
//
//	Direct:   the plain centrality functions (allocate scratch per call)
//	Pooled:   the engine with memoization disabled (pooled kernels,
//	          persistent workers, no caching)
//	Memoized: the full engine (reverted variants recur, so from the
//	          second iteration on every request is a content-cache hit)
//
// BENCH_2.json records all three; the engine acceptance bar is
// Memoized ≥ 1.5× faster than Direct with fewer allocs/op.

// engineBenchLoop is one candidate-evaluation pass: for each candidate
// v, insert (t, v), score both measures, revert.
func engineBenchLoop(g *graph.Graph, target int, cands []int, score func(*graph.Graph)) {
	for _, v := range cands {
		g.AddEdge(target, v)
		score(g)
		g.RemoveEdge(target, v)
	}
}

func engineBenchSetup() (*graph.Graph, int, []int) {
	g := benchHost(400)
	target := 17
	var cands []int
	for v := 0; v < g.N() && len(cands) < 8; v++ {
		if v != target && !g.HasEdge(target, v) {
			cands = append(cands, v)
		}
	}
	return g, target, cands
}

//promolint:allow engine-bypass -- the Direct leg of the direct-vs-engine comparison
func BenchmarkEngineDirect(b *testing.B) {
	g, target, cands := engineBenchSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engineBenchLoop(g, target, cands, func(h *graph.Graph) {
			_ = centrality.Betweenness(h, centrality.PairsUnordered)
			_ = centrality.Farness(h)
		})
	}
}

func BenchmarkEnginePooled(b *testing.B) {
	g, target, cands := engineBenchSetup()
	e := engine.New(0, engine.WithCacheSize(0))
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engineBenchLoop(g, target, cands, func(h *graph.Graph) {
			_ = e.Scores(h, engine.Betweenness(centrality.PairsUnordered))
			_ = e.Scores(h, engine.Farness())
		})
	}
}

// BenchmarkEnginePooledFlight is BenchmarkEnginePooled with the full
// trace pipeline live — recorder, flight recorder, phase deltas — the
// BENCH_9 overhead probe. The acceptance bar (ISSUE 9, checked by
// scripts/bench_report.sh) is < 5% regression against the plain Pooled
// number.
func BenchmarkEnginePooledFlight(b *testing.B) {
	g, target, cands := engineBenchSetup()
	e := engine.New(0, engine.WithCacheSize(0))
	defer e.Close()
	rec := obs.NewRecorder(4096)
	rec.AttachFlight(obs.NewFlightRecorder(obs.FlightConfig{}))
	rec.EnablePhaseDeltas(true)
	prev := obs.CurrentRecorder()
	obs.SetRecorder(rec)
	defer obs.SetRecorder(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engineBenchLoop(g, target, cands, func(h *graph.Graph) {
			_ = e.Scores(h, engine.Betweenness(centrality.PairsUnordered))
			_ = e.Scores(h, engine.Farness())
		})
	}
}

// --- CSR snapshot backend (DESIGN.md §13, BENCH_7.json) ---
//
// The CSR benchmarks run the same kernel on both scoring backends so
// the flat-array speedup stays a tracked number rather than folklore.
// Each has a map sub-benchmark (the adjacency-map *graph.Graph) and a
// csr sub-benchmark (the frozen Snapshot); scripts/bench.sh records
// both sides in BENCH_7.json and scripts/bench_report.sh reports the
// ratio. The acceptance bar is csr >= 2x map for the BFS sweep on BA
// hosts — contiguous rows plus the direction-optimizing kernel, which
// only the flat Arcs representation supports, carry the gap.

// csrBFSSweep runs a BFS from sources strided across the id space and
// folds the three BFS-family aggregates (farness, harmonic,
// eccentricity) from each distance vector, exactly the per-source work
// of a sweep-family scoring pass.
func csrBFSSweep(k *centrality.Kernel, g graph.View, sources int) float64 {
	n := g.N()
	stride := n / sources
	if stride < 1 {
		stride = 1
	}
	var acc float64
	for s := 0; s < n; s += stride {
		dist, _, ecc := k.BFS(g, s)
		var far int64
		var harm float64
		for _, d := range dist {
			if d > 0 {
				far += int64(d)
				harm += 1 / float64(d)
			}
		}
		acc += float64(far) + harm + float64(ecc)
	}
	return acc
}

func BenchmarkCSRFreeze(b *testing.B) {
	g := benchHost(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += float64(csr.Freeze(g).M())
	}
}

func BenchmarkCSRBFS(b *testing.B) {
	// Denser than benchHost (m = 10): the paper-scale hosts average
	// degree ~20, and the bottom-up phase's early-exit parent scan is
	// what the acceptance ratio measures.
	g := gen.BarabasiAlbert(rand.New(rand.NewSource(1234)), 20000, 10)
	backends := map[string]graph.View{"map": g, "csr": csr.Freeze(g)}
	for _, name := range []string{"map", "csr"} {
		v := backends[name]
		b.Run(name, func(b *testing.B) {
			k := centrality.NewKernel()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink += csrBFSSweep(k, v, 64)
			}
		})
	}
}

func BenchmarkCSRBrandes(b *testing.B) {
	g := benchHost(1000)
	backends := map[string]graph.View{"map": g, "csr": csr.Freeze(g)}
	for _, name := range []string{"map", "csr"} {
		v := backends[name]
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				//promolint:allow engine-bypass -- backend comparison needs the bare kernel, not the memoizing engine
				benchSink += centrality.BetweennessWorkers(v, centrality.PairsUnordered, 1)[0]
			}
		})
	}
}

// BenchmarkCSRGreedyRound prices one delta-scored greedy round (the
// EvaluateEdgeBatch path greedy.Improve uses) against each backend; the
// csr leg is what a greedy round pays now that Improve freezes the host
// and layers trial edges in an overlay.
func BenchmarkCSRGreedyRound(b *testing.B) {
	g, target, cands := greedyRoundHost(10000, 64)
	backends := map[string]graph.View{"map": g, "csr": csr.Freeze(g)}
	for _, name := range []string{"map", "csr"} {
		v := backends[name]
		b.Run(name, func(b *testing.B) {
			e := engine.New(0, engine.WithCacheSize(0))
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := e.EvaluateEdgeBatch(v, target, cands, engine.Farness())
				benchSink += out[len(out)-1]
			}
		})
	}
}

// BenchmarkCSRMillionSweep is the scale demonstration: freeze a
// 10^6-node / 10^7-edge Barabási–Albert host and complete a sampled
// BFS-family sweep (32 sources) over the snapshot. Skipped with -short;
// scripts/bench.sh runs it once (-benchtime 1x) into BENCH_7.json.
func BenchmarkCSRMillionSweep(b *testing.B) {
	if testing.Short() {
		b.Skip("10^6-node host: skipped with -short")
	}
	rng := rand.New(rand.NewSource(42))
	g := gen.BarabasiAlbert(rng, 1_000_000, 10)
	var snap *csr.Snapshot
	b.Run("freeze", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snap = csr.Freeze(g)
			benchSink += float64(snap.M())
		}
	})
	b.Run("sweep", func(b *testing.B) {
		k := centrality.NewKernel()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink += csrBFSSweep(k, snap, 32)
		}
	})
}

func BenchmarkEngineMemoized(b *testing.B) {
	g, target, cands := engineBenchSetup()
	e := engine.New(0)
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engineBenchLoop(g, target, cands, func(h *graph.Graph) {
			_ = e.Scores(h, engine.Betweenness(centrality.PairsUnordered))
			_ = e.Scores(h, engine.Farness())
		})
	}
}
