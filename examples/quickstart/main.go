// Quickstart: promote a node's closeness ranking on the paper's running
// example graph (Fig. 1) without ever looking at the host's structure.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/datasets"
	"promonet/internal/engine"
)

func main() {
	// The host network. In a real black-box setting we could not see
	// this; the promotion below never reads it.
	g := datasets.Fig1()
	target := datasets.V4 // the paper's running target, v4

	// Where does the target stand today? (The network owner computes
	// this; we only need the rank, not the structure.) Scoring goes
	// through the shared engine, like all exact scoring in this repo.
	cc := engine.Default().Scores(g, engine.Closeness())
	fmt.Printf("before: closeness rank of v4 = %d of %d\n",
		centrality.RankOf(cc, target), g.N())

	// Black-box promotion: closeness is a minimum-loss measure, so
	// Table I prescribes the multi-point strategy. Attach p = 4 new
	// nodes directly to the target — nothing else changes.
	g2, outcome, err := core.Promote(g, core.ClosenessMeasure{}, target, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("applied %v: inserted nodes %v\n", outcome.Strategy, outcome.Inserted)
	fmt.Printf("after:  closeness rank of v4 = %d (Δ_R = %+d, Ratio = %.1f%%)\n",
		outcome.RankAfter, outcome.DeltaRank, outcome.Ratio)
	fmt.Printf("principle check (%s): gain=%v dominance=%v boost=%v\n",
		core.MinimumLoss, outcome.Check.Gain, outcome.Check.Dominance, outcome.Check.Boost)
	fmt.Printf("updated graph: %v\n", g2)

	// The theory also tells us the smallest size that provably works.
	p, needed, err := core.GuaranteedSize(g, core.ClosenessMeasure{}, target)
	if err != nil {
		log.Fatal(err)
	}
	if needed {
		fmt.Printf("theory: any p >= %d is guaranteed to improve the ranking (Lemma 5.9)\n", p)
	}
}
