// Coauthor closeness: the paper's first motivating example. In
// co-authorship networks, authors with high closeness receive more
// citations and their results spread further. An early-career author
// (low closeness) wants more research impact, but the publisher's
// co-authorship graph is a black box to them.
//
// The multi-point strategy maps to a real action: start p new
// single-author collaborations (e.g. student theses) that each link only
// to the target author. No knowledge of the rest of the network is
// needed, and nobody else's collaborations change.
//
// Run with: go run ./examples/coauthor_closeness
package main

import (
	"fmt"
	"log"
	"math/rand"

	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/engine"
	"promonet/internal/gen"
)

func main() {
	// A synthetic co-authorship network: papers are cliques of authors
	// (internal/gen.CliqueCover), the CA-HepPh profile of the paper.
	rng := rand.New(rand.NewSource(7))
	g0 := gen.CliqueCover(rng, 600, 2, 6, 0.5)
	g, _ := g0.LargestComponent()
	fmt.Printf("co-authorship network: %v\n", g)

	// Our author: the node with the worst closeness (most peripheral).
	cc := engine.Default().Scores(g, engine.Closeness())
	author := 0
	for v := range cc {
		if cc[v] < cc[author] {
			author = v
		}
	}
	fmt.Printf("author %d starts at closeness rank %d of %d\n",
		author, centrality.RankOf(cc, author), g.N())

	// How many new collaborations does the theory demand?
	p, needed, err := core.GuaranteedSize(g, core.ClosenessMeasure{}, author)
	if err != nil {
		log.Fatal(err)
	}
	if !needed {
		fmt.Println("author already has the top closeness rank")
		return
	}
	fmt.Printf("Lemma 5.9: %d new pendant collaborators provably lift the rank\n", p)

	// Sweep a few sizes to see the rank climb.
	for _, size := range []int{4, 8, 16, 32, p} {
		_, o, err := core.Promote(g, core.ClosenessMeasure{}, author, size)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  p=%3d: rank %4d -> %4d  (Δ_R=%+5d, Ratio=%5.1f%%)  properties: gain=%v dom=%v\n",
			size, o.RankBefore, o.RankAfter, o.DeltaRank, o.Ratio,
			o.Check.Gain, o.Check.Dominance)
	}

	// Contrast: the same budget spent on a single-clique (the wrong
	// strategy for closeness) — still sound, but strictly less rank
	// improvement per inserted node because the clique's internal edges
	// buy nothing for distances to V.
	_, right, _ := core.Promote(g, core.ClosenessMeasure{}, author, 16)
	_, wrong, _ := core.PromoteWith(g, core.ClosenessMeasure{},
		core.Strategy{Target: author, Size: 16, Type: core.SingleClique})
	fmt.Printf("p=16 multi-point Δ_R=%d vs single-clique Δ_R=%d\n",
		right.DeltaRank, wrong.DeltaRank)
}
