// Social betweenness: the paper's second motivating example. Users with
// high betweenness sit on many shortest paths, so their posts diffuse
// rapidly; an influencer-to-be wants a higher betweenness *ranking*.
//
// This example contrasts the two worlds the paper studies:
//
//   - the network user (black box): multi-point strategy — create p
//     satellite accounts that follow only the target;
//   - the network owner (full structure): the Greedy baseline of
//     Bergamini et al. [18] — insert the p globally best edges.
//
// Run with: go run ./examples/social_betweenness
package main

import (
	"fmt"
	"log"
	"math/rand"

	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/datasets"
	"promonet/internal/engine"
	"promonet/internal/greedy"
)

func main() {
	// A small Wiki-Vote-profile social host.
	profile, err := datasets.ByName("WIKI")
	if err != nil {
		log.Fatal(err)
	}
	g := profile.Build(3, 0.02)
	fmt.Printf("social network (%s profile): %v\n", profile.Name, g)

	m := core.BetweennessMeasure{Counting: centrality.PairsUnordered}
	before := engine.Default().Scores(g, engine.Betweenness(centrality.PairsUnordered))

	// A low-betweenness user, as in Section VII-C.
	rng := rand.New(rand.NewSource(5))
	user := 0
	for v := range before {
		if before[v] < before[user] {
			user = v
		}
	}
	_ = rng
	fmt.Printf("user %d: BC=%.1f, rank %d of %d\n",
		user, before[user], centrality.RankOf(before, user), g.N())

	const budget = 6

	// Black-box promotion: p satellite accounts.
	_, blackBox, err := core.Promote(g, m, user, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-point (no structure knowledge): rank %d -> %d, Δ_C=%.1f\n",
		blackBox.RankBefore, blackBox.RankAfter, blackBox.ScoreVariation)

	// Owner-side baseline: the same budget as greedy edge insertions.
	_, gr, err := greedy.Improve(g, user, budget, greedy.Options{Counting: centrality.PairsUnordered})
	if err != nil {
		log.Fatal(err)
	}
	grRank := centrality.RankOf(gr.After, user)
	fmt.Printf("greedy [18] (full structure): rank %d -> %d, Δ_C=%.1f, edges %v\n",
		centrality.RankOf(gr.Before, user), grRank,
		gr.After[user]-gr.Before[user], gr.Edges)

	fmt.Println()
	switch {
	case blackBox.RankAfter <= grRank:
		fmt.Println("the black-box strategy matched or beat the structure-aware baseline on ranking")
	default:
		fmt.Printf("greedy leads on this host (%d vs %d), but it needed the full topology;\n", grRank, blackBox.RankAfter)
		fmt.Println("the black-box strategy got within reach knowing nothing at all")
	}
}
