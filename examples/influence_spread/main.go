// Influence spread: does a *promoted* node actually behave like a vital
// node? The paper motivates centrality promotion through spread
// phenomena; this example closes the loop with simulation:
//
//  1. pick a peripheral user in a social network,
//  2. promote their closeness ranking with the multi-point strategy,
//  3. measure information-spread speed (SI flooding) and cascade reach
//     (independent-cascade model) before and after.
//
// The promotion inserts pendant nodes, which changes no distances among
// the original users — so the target's spread *within the original
// population* is unchanged, exactly as the theory says (Lemma S.12).
// What changes is the target's position relative to everyone else: the
// rest of the network got slower relative to it. The simulation
// demonstrates both facts.
//
// Run with: go run ./examples/influence_spread
package main

import (
	"fmt"
	"log"
	"math/rand"

	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/datasets"
	"promonet/internal/diffusion"
	"promonet/internal/engine"
)

func main() {
	profile, err := datasets.ByName("SLAS")
	if err != nil {
		log.Fatal(err)
	}
	g := profile.Build(17, 0.01)
	fmt.Printf("social network (%s profile): %v\n", profile.Name, g)

	cc := engine.Default().Scores(g, engine.Closeness())
	// The slowest spreader: worst closeness.
	user := 0
	for v := range cc {
		if cc[v] < cc[user] {
			user = v
		}
	}
	rank := centrality.RankOf(cc, user)
	fmt.Printf("user %d: closeness rank %d of %d\n", user, rank, g.N())

	// Reference vital node: the closeness leader.
	leader := 0
	for v := range cc {
		if cc[v] > cc[leader] {
			leader = v
		}
	}

	rng := rand.New(rand.NewSource(1))
	fmt.Println("\nbefore promotion (50% SI coverage time, IC cascade reach @ prob 0.1):")
	fmt.Printf("  user   %d: t50=%d rounds, reach=%.1f nodes\n",
		user, diffusion.SpreadTime(g, user, 0.5),
		diffusion.CascadeSize(g, rng, []int{user}, 0.1, 100))
	fmt.Printf("  leader %d: t50=%d rounds, reach=%.1f nodes\n",
		leader, diffusion.SpreadTime(g, leader, 0.5),
		diffusion.CascadeSize(g, rng, []int{leader}, 0.1, 100))

	// Promote the user's closeness ranking.
	g2, o, err := core.Promote(g, core.ClosenessMeasure{}, user, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npromotion %v: rank %d -> %d (Δ_R=%+d)\n",
		o.Strategy, o.RankBefore, o.RankAfter, o.DeltaRank)

	fmt.Println("after promotion (measured on the updated graph):")
	fmt.Printf("  user   %d: t50=%d rounds, reach=%.1f nodes\n",
		user, diffusion.SpreadTime(g2, user, 0.5),
		diffusion.CascadeSize(g2, rng, []int{user}, 0.1, 100))
	fmt.Printf("  leader %d: t50=%d rounds, reach=%.1f nodes\n",
		leader, diffusion.SpreadTime(g2, leader, 0.5),
		diffusion.CascadeSize(g2, rng, []int{leader}, 0.1, 100))

	fmt.Println(`
reading the numbers: the pendant nodes hang off the user, so the user
reaches them in one hop while everyone else must route through the
user — the user's coverage time holds steady while the leader's grows.
That relative shift is precisely what lifted the user's ranking.`)
}
