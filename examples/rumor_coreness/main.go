// Rumor coreness: the paper's third motivating example. Nodes with high
// coreness act as blockers that keep rumors from percolating; a user who
// wants better control of rumor spreading needs a higher coreness
// ranking than their peers.
//
// The single-clique strategy maps to a real action: found a tightly-knit
// group of p new accounts that all know each other and the target. By
// Lemma S.7 the target's coreness jumps to at least p, while Lemma S.10
// caps everyone else's gain at +1.
//
// Run with: go run ./examples/rumor_coreness
package main

import (
	"fmt"
	"log"

	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/datasets"
	"promonet/internal/engine"
)

func main() {
	profile, err := datasets.ByName("EPIN")
	if err != nil {
		log.Fatal(err)
	}
	g := profile.Build(11, 0.01)
	fmt.Printf("information network (%s profile): %v, degeneracy %d\n",
		profile.Name, g, centrality.Degeneracy(g))

	core0 := engine.Default().CorenessInt(g)
	// A fringe user with coreness 1.
	user := -1
	for v, c := range core0 {
		if c == 1 {
			user = v
			break
		}
	}
	if user == -1 {
		log.Fatal("no coreness-1 node found")
	}
	fmt.Printf("user %d: coreness %d, rank %d of %d\n",
		user, core0[user], centrality.RankOf(engine.Default().Scores(g, engine.Coreness()), user), g.N())

	// Lemma 5.6: p > RC(v) + 1 for the easiest higher-ranked v.
	p, needed, err := core.GuaranteedSize(g, core.CorenessMeasure{}, user)
	if err != nil {
		log.Fatal(err)
	}
	if !needed {
		fmt.Println("user already at rank 1")
		return
	}
	fmt.Printf("guaranteed overtake size: p = %d\n", p)

	sizes := []int{4, p, 2 * p}
	seen := map[int]bool{}
	for _, size := range sizes {
		if seen[size] {
			continue
		}
		seen[size] = true
		g2, o, err := core.Promote(g, core.CorenessMeasure{}, user, size)
		if err != nil {
			log.Fatal(err)
		}
		// How deep in the core hierarchy is the user now?
		k := int(o.After[user])
		kcore := centrality.KCore(g2, k)
		fmt.Printf("  p=%3d: coreness %d -> %d, rank %4d -> %4d (Δ_R=%+d); user now in the %d-core (|%d-core|=%d)\n",
			size, int(o.Before[user]), k, o.RankBefore, o.RankAfter, o.DeltaRank, k, k, len(kcore))
		if !o.Check.Gain || !o.Check.Dominance {
			fmt.Println("  WARNING: principle check failed (should not happen)")
		}
	}
}
