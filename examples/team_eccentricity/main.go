// Team eccentricity: the paper's fourth motivating example. In team
// networks, players with high eccentricity (small maximum distance to
// everyone) influence teammates most easily.
//
// Eccentricity is a minimum-loss measure and Table I prescribes the
// double-line strategy: hang two equal chains of new members off the
// target. Everyone's worst-case distance now runs through those chains,
// and the target — sitting at their root — loses the least.
//
// Run with: go run ./examples/team_eccentricity
package main

import (
	"fmt"
	"log"
	"math/rand"

	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/engine"
	"promonet/internal/gen"
)

func main() {
	// A small-world club network: members know their neighbors plus a
	// few random contacts (Watts–Strogatz).
	rng := rand.New(rand.NewSource(21))
	g := gen.WattsStrogatz(rng, 200, 3, 0.1)
	fmt.Printf("team/club network: %v, diameter %d, radius %d\n",
		g, centrality.Diameter(g), centrality.Radius(g))

	// Both eccentricity variants come from one memoized engine sweep.
	eccR := engine.Default().Scores(g, engine.ReciprocalEccentricity())
	ecc := engine.Default().Scores(g, engine.Eccentricity())
	// A peripheral member: largest max-distance.
	member := 0
	for v := range eccR {
		if eccR[v] > eccR[member] {
			member = v
		}
	}
	fmt.Printf("member %d: max distance %d, eccentricity rank %d of %d\n",
		member, int(eccR[member]), centrality.RankOf(ecc, member), g.N())

	// Lemma 5.12: any p > 2·ĒC(t) provably lifts the rank.
	p, needed, err := core.GuaranteedSize(g, core.EccentricityMeasure{}, member)
	if err != nil {
		log.Fatal(err)
	}
	if !needed {
		fmt.Println("member already at rank 1")
		return
	}
	fmt.Printf("Lemma 5.12 bound: p = %d (= 2 x max distance + 1)\n", p)

	for _, size := range []int{4, p / 2, p} {
		if size < 1 {
			continue
		}
		_, o, err := core.Promote(g, core.EccentricityMeasure{}, member, size)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  p=%3d (two chains of ~%d): max distance %d -> %d, rank %4d -> %4d (Δ_R=%+d)\n",
			size, (size+1)/2, int(o.BeforeRecip[member]), int(o.AfterRecip[member]),
			o.RankBefore, o.RankAfter, o.DeltaRank)
	}

	// Why double lines and not one? A single line of the same size
	// doubles the target's own worst-case distance; two half-length
	// lines halve that penalty while hurting everyone else the same.
	fmt.Println()
	fmt.Println("ablation: double-line vs single-clique at the guaranteed size")
	_, right, _ := core.Promote(g, core.EccentricityMeasure{}, member, p)
	_, wrong, _ := core.PromoteWith(g, core.EccentricityMeasure{},
		core.Strategy{Target: member, Size: p, Type: core.SingleClique})
	fmt.Printf("  double-line  Δ_R=%+d (guaranteed by Thm. 5.6)\n", right.DeltaRank)
	fmt.Printf("  single-clique Δ_R=%+d (no guarantee: clique adds nothing to others' distances)\n", wrong.DeltaRank)
}
