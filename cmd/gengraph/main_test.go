package main

import (
	"flag"
	"testing"
)

// TestFlagSurface pins the gengraph flag names; scripts and docs depend
// on them, and the shared observability flags must match the other
// cmds.
func TestFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	registerFlags(fs)
	want := []string{
		"profile", "scale", "model", "n", "m", "k", "beta", "gamma",
		"seed", "out", "lcc", "stats",
		"debug-addr", "debug-linger", "trace", "trace-topk", "trace-threshold",
	}
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		got[f.Name] = true
		if f.Usage == "" {
			t.Errorf("flag -%s has no usage string", f.Name)
		}
	})
	for _, name := range want {
		if !got[name] {
			t.Errorf("flag -%s missing", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("flag surface has %d flags, want %d: %v", len(got), len(want), got)
	}
}
