// Command gengraph synthesizes host networks to edge-list files: either
// one of the paper-profile stand-ins (WIKI/HEPP/EPIN/SLAS, Table VI) or
// a raw generator (ba, er, ws, clique-cover, powerlaw).
//
// Usage:
//
//	gengraph -profile WIKI -scale 0.05 -seed 1 -out wiki.txt
//	gengraph -model ba -n 1000 -k 4 -out ba.txt
//	gengraph -model ws -n 500 -k 3 -beta 0.1 -out ws.txt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"promonet/internal/centrality"
	"promonet/internal/datasets"
	"promonet/internal/gen"
	"promonet/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run() error {
	profileName := flag.String("profile", "", "dataset profile: WIKI|HEPP|EPIN|SLAS")
	scale := flag.Float64("scale", 0.05, "profile scale (fraction of original node count)")
	model := flag.String("model", "", "raw generator: ba|er|ws|clique-cover|powerlaw")
	n := flag.Int("n", 1000, "node count for raw generators")
	m := flag.Int("m", 4000, "edge count (er)")
	k := flag.Int("k", 4, "attachment/lattice degree (ba, ws)")
	beta := flag.Float64("beta", 0.1, "rewiring probability (ws)")
	gamma := flag.Float64("gamma", 2.0, "power-law exponent (powerlaw)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output edge-list file (required)")
	lcc := flag.Bool("lcc", true, "keep only the largest connected component")
	stats := flag.Bool("stats", true, "print Table VI-style statistics of the result")
	flag.Parse()

	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if (*profileName == "") == (*model == "") {
		return fmt.Errorf("exactly one of -profile or -model is required")
	}

	var g *graph.Graph
	switch {
	case *profileName != "":
		p, err := datasets.ByName(*profileName)
		if err != nil {
			return err
		}
		g = p.Build(*seed, *scale) // already LCC
	default:
		rng := rand.New(rand.NewSource(*seed))
		switch *model {
		case "ba":
			g = gen.BarabasiAlbert(rng, *n, *k)
		case "er":
			g = gen.ErdosRenyi(rng, *n, *m)
		case "ws":
			g = gen.WattsStrogatz(rng, *n, *k, *beta)
		case "clique-cover":
			g = gen.CliqueCover(rng, *n, 2, 8, 0.5)
		case "powerlaw":
			degs := gen.PowerLawDegrees(rng, *n, *gamma, 1, *n/10)
			g = gen.ConfigurationModel(rng, degs)
		default:
			return fmt.Errorf("unknown model %q", *model)
		}
		if *lcc {
			g, _ = g.LargestComponent()
		}
	}

	if err := graph.SaveEdgeListFile(*out, g); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %v\n", *out, g)
	if *stats {
		fmt.Printf("diameter=%d degeneracy=%d avg-clustering=%.4f\n",
			centrality.Diameter(g), centrality.Degeneracy(g), centrality.AverageClustering(g))
	}
	return nil
}
