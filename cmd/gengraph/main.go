// Command gengraph synthesizes host networks to edge-list files: either
// one of the paper-profile stand-ins (WIKI/HEPP/EPIN/SLAS, Table VI) or
// a raw generator (ba, er, ws, clique-cover, powerlaw).
//
// Usage:
//
//	gengraph -profile WIKI -scale 0.05 -seed 1 -out wiki.txt
//	gengraph -model ba -n 1000 -k 4 -out ba.txt
//	gengraph -model ws -n 500 -k 3 -beta 0.1 -out ws.txt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"promonet/internal/centrality"
	"promonet/internal/datasets"
	"promonet/internal/gen"
	"promonet/internal/graph"
	"promonet/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

// options is the gengraph flag surface, registered on a caller-owned
// FlagSet so tests can assert it without global flag state.
type options struct {
	profileName *string
	scale       *float64
	model       *string
	n           *int
	m           *int
	k           *int
	beta        *float64
	gamma       *float64
	seed        *int64
	out         *string
	lcc         *bool
	stats       *bool
	obs         *obs.ObsFlags
}

// registerFlags defines every gengraph flag on fs.
func registerFlags(fs *flag.FlagSet) *options {
	return &options{
		profileName: fs.String("profile", "", "dataset profile: WIKI|HEPP|EPIN|SLAS"),
		scale:       fs.Float64("scale", 0.05, "profile scale (fraction of original node count)"),
		model:       fs.String("model", "", "raw generator: ba|er|ws|clique-cover|powerlaw"),
		n:           fs.Int("n", 1000, "node count for raw generators"),
		m:           fs.Int("m", 4000, "edge count (er)"),
		k:           fs.Int("k", 4, "attachment/lattice degree (ba, ws)"),
		beta:        fs.Float64("beta", 0.1, "rewiring probability (ws)"),
		gamma:       fs.Float64("gamma", 2.0, "power-law exponent (powerlaw)"),
		seed:        fs.Int64("seed", 1, "random seed"),
		out:         fs.String("out", "", "output edge-list file (required)"),
		lcc:         fs.Bool("lcc", true, "keep only the largest connected component"),
		stats:       fs.Bool("stats", true, "print Table VI-style statistics of the result"),
		obs:         obs.RegisterObsFlags(fs),
	}
}

func run() (err error) {
	opt := registerFlags(flag.CommandLine)
	flag.Parse()

	// Tracing is demand-driven: generation is instrumentation-light, but
	// the shared obs flags give gengraph runs the same /debug and -trace
	// surface as the rest of the pipeline.
	session, err := opt.obs.Activate("gengraph", 2048, false)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := session.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	if *opt.out == "" {
		return fmt.Errorf("-out is required")
	}
	if (*opt.profileName == "") == (*opt.model == "") {
		return fmt.Errorf("exactly one of -profile or -model is required")
	}

	var g *graph.Graph
	switch {
	case *opt.profileName != "":
		p, err := datasets.ByName(*opt.profileName)
		if err != nil {
			return err
		}
		g = p.Build(*opt.seed, *opt.scale) // already LCC
	default:
		rng := rand.New(rand.NewSource(*opt.seed))
		switch *opt.model {
		case "ba":
			g = gen.BarabasiAlbert(rng, *opt.n, *opt.k)
		case "er":
			g = gen.ErdosRenyi(rng, *opt.n, *opt.m)
		case "ws":
			g = gen.WattsStrogatz(rng, *opt.n, *opt.k, *opt.beta)
		case "clique-cover":
			g = gen.CliqueCover(rng, *opt.n, 2, 8, 0.5)
		case "powerlaw":
			degs := gen.PowerLawDegrees(rng, *opt.n, *opt.gamma, 1, *opt.n/10)
			g = gen.ConfigurationModel(rng, degs)
		default:
			return fmt.Errorf("unknown model %q", *opt.model)
		}
		if *opt.lcc {
			g, _ = g.LargestComponent()
		}
	}

	if err := graph.SaveEdgeListFile(*opt.out, g); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %v\n", *opt.out, g)
	if *opt.stats {
		fmt.Printf("diameter=%d degeneracy=%d avg-clustering=%.4f\n",
			centrality.Diameter(g), centrality.Degeneracy(g), centrality.AverageClustering(g))
	}
	return nil
}
