// Command promoload is the load generator for the promod daemon: it
// drives promotion queries at fixed request rates against a running
// server and reports the latency distribution and shed rate per level —
// the saturation curve BENCH_10 plots.
//
// Usage:
//
//	promoload -addr 127.0.0.1:8080 -rps 500,2000,8000 -duration 5s -out curve.json
//	promoload -addr 127.0.0.1:8080 -rps 1000 -measure coreness -targets 64 -tenant bench
//
// Pacing is a token bucket filled in 5 ms batches against the wall
// clock and drained by a fixed worker pool: when the server (or the
// single-core client) cannot keep up, quota is dropped rather than
// queued, so reported latencies are of admitted load, not of an
// ever-growing client backlog. Rates are reported over the span
// actually measured, including the post-deadline drain tail.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "promoload:", err)
		os.Exit(1)
	}
}

// options is promoload's full flag surface.
type options struct {
	addr     *string
	rpsList  *string
	duration *time.Duration
	warmup   *time.Duration
	measure  *string
	size     *int
	targets  *int
	workers  *int
	tenant   *string
	outPath  *string
	jsonOut  *bool
}

// registerFlags defines every promoload flag on fs.
func registerFlags(fs *flag.FlagSet) *options {
	return &options{
		addr:     fs.String("addr", "", "host:port of the promod server (required)"),
		rpsList:  fs.String("rps", "500,1000,2000,4000,8000", "comma-separated request rates to sweep"),
		duration: fs.Duration("duration", 5*time.Second, "measurement time per rate level"),
		warmup:   fs.Duration("warmup", time.Second, "untimed warmup before the first level (fills the server caches)"),
		measure:  fs.String("measure", "degree", "centrality measure queried"),
		size:     fs.Int("p", 4, "promotion size per query"),
		targets:  fs.Int("targets", 64, "distinct target labels cycled through (0..targets-1)"),
		workers:  fs.Int("workers", 64, "concurrent client connections"),
		tenant:   fs.String("tenant", "", "X-Promod-Tenant header value"),
		outPath:  fs.String("out", "", "write the saturation report (JSON) to this file"),
		jsonOut:  fs.Bool("json", false, "print the report as JSON to stdout"),
	}
}

// sample is one completed request.
type sample struct {
	latency time.Duration
	status  int
	err     bool
}

// levelReport is one rate level's aggregate in the saturation report.
type levelReport struct {
	// TargetRPS is the requested rate; AchievedRPS what the client
	// actually sustained.
	TargetRPS   int     `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	// Sent, OK, Shed, Errors partition the requests issued.
	Sent   int `json:"sent"`
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Errors int `json:"errors"`
	// OKRPS is the sustained successful-answer rate (OK / duration) —
	// the number the BENCH_10 saturation bar is read off.
	OKRPS float64 `json:"ok_rps"`
	// P50Ms/P90Ms/P99Ms are latency percentiles of the OK responses.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// report is promoload's output document.
type report struct {
	Addr     string        `json:"addr"`
	Measure  string        `json:"measure"`
	Size     int           `json:"p"`
	Targets  int           `json:"targets"`
	Duration string        `json:"duration_per_level"`
	Levels   []levelReport `json:"levels"`
}

func run() error {
	opt := registerFlags(flag.CommandLine)
	flag.Parse()
	if *opt.addr == "" {
		return fmt.Errorf("-addr is required")
	}
	rates, err := parseRates(*opt.rpsList)
	if err != nil {
		return err
	}
	if *opt.targets < 1 || *opt.workers < 1 {
		return fmt.Errorf("-targets and -workers must be >= 1")
	}

	// Pre-serialize one body per target: the measurement loop should
	// spend its single core on I/O, not on JSON encoding.
	bodies := make([][]byte, *opt.targets)
	for i := range bodies {
		b, err := json.Marshal(map[string]any{"target": i, "measure": *opt.measure, "size": *opt.size})
		if err != nil {
			return err
		}
		bodies[i] = b
	}
	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *opt.workers * 2,
			MaxIdleConnsPerHost: *opt.workers * 2,
		},
	}
	url := "http://" + *opt.addr + "/v1/promote"

	if *opt.warmup > 0 {
		runLevel(client, url, bodies, *opt.tenant, rates[0], *opt.warmup, *opt.workers)
	}
	rep := report{
		Addr: *opt.addr, Measure: *opt.measure, Size: *opt.size,
		Targets: *opt.targets, Duration: opt.duration.String(),
	}
	for _, rps := range rates {
		lr := runLevel(client, url, bodies, *opt.tenant, rps, *opt.duration, *opt.workers)
		rep.Levels = append(rep.Levels, lr)
		fmt.Fprintf(os.Stderr, "promoload: rps %d: achieved %.0f, ok %d, shed %d, err %d, p50 %.2fms p99 %.2fms\n",
			lr.TargetRPS, lr.AchievedRPS, lr.OK, lr.Shed, lr.Errors, lr.P50Ms, lr.P99Ms)
	}

	if *opt.outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*opt.outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *opt.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return nil
}

// parseRates parses the -rps list.
func parseRates(spec string) ([]int, error) {
	var rates []int
	for _, fld := range strings.Split(spec, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(fld))
		if err != nil || r < 1 {
			return nil, fmt.Errorf("bad -rps entry %q", fld)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-rps is empty")
	}
	return rates, nil
}

// runLevel drives one rate level: a pacer goroutine feeds tokens at the
// target rate into a bounded channel, a fixed worker pool drains it.
// A full token channel means the system under test (or this client)
// has saturated; the tick's remaining quota is dropped and counted as
// unsent. Pacing uses a coarse 5 ms ticker issuing the wall-clock
// quota accrued since the level started: a per-request ticker cannot
// pace past a few thousand requests per second on a single core, and
// tying quota to the clock rather than the tick count means coalesced
// ticks delay tokens instead of losing them. The resulting
// micro-bursts resemble open-loop arrivals, which is what exercises
// the server's admission gate.
func runLevel(client *http.Client, url string, bodies [][]byte, tenant string, rps int, dur time.Duration, workers int) levelReport {
	// The buffer holds at most ~50 ms of backlog (never less than one
	// token per worker). Deep enough to smooth scheduler jitter on a
	// busy host, shallow enough that the post-deadline drain tail stays
	// negligible — a buffer sized in seconds lets the pacer bank load
	// that the workers keep replaying long after the deadline, which
	// inflated this sweep's reported rates by up to 1.6× before the
	// elapsed-time accounting below.
	depth := rps / 20
	if depth < workers {
		depth = workers
	}
	tokens := make(chan int, depth)
	start := time.Now()
	deadline := start.Add(dur)
	go func() { // pacer; terminates at the deadline
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		var issued float64
		for seq := 0; ; {
			now := <-ticker.C
			if now.After(deadline) {
				break
			}
			// Pace off the wall clock, not the tick count: when ticks
			// coalesce under load, the next wakeup issues the whole
			// missed quota instead of silently losing it.
			target := float64(rps) * now.Sub(start).Seconds()
			for issued < target {
				select {
				case tokens <- seq:
					seq++
					issued++
				default: // saturated: drop the rest of the catch-up
					issued = target
				}
			}
		}
		close(tokens)
	}()

	results := make([][]sample, workers) // one partition per worker; merged after the barrier
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for seq := range tokens {
				body := bodies[seq%len(bodies)]
				start := time.Now()
				req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
				if err != nil {
					results[w] = append(results[w], sample{err: true})
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				if tenant != "" {
					req.Header.Set("X-Promod-Tenant", tenant)
				}
				resp, err := client.Do(req)
				if err != nil {
					results[w] = append(results[w], sample{err: true})
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				results[w] = append(results[w], sample{latency: time.Since(start), status: resp.StatusCode})
			}
		}(w)
	}
	wg.Wait()
	// Rates are computed over the wall-clock span actually measured —
	// pacer start to last response — not the nominal duration: the
	// workers finish the few in-flight requests left at the deadline,
	// and dividing by dur would count that tail as free throughput.
	elapsed := time.Since(start)

	lr := levelReport{TargetRPS: rps}
	var latencies []float64
	for _, part := range results {
		for _, smp := range part {
			lr.Sent++
			switch {
			case smp.err:
				lr.Errors++
			case smp.status == http.StatusTooManyRequests:
				lr.Shed++
			case smp.status == http.StatusOK:
				lr.OK++
				latencies = append(latencies, float64(smp.latency.Microseconds())/1000)
			default:
				lr.Errors++
			}
		}
	}
	lr.AchievedRPS = float64(lr.Sent) / elapsed.Seconds()
	lr.OKRPS = float64(lr.OK) / elapsed.Seconds()
	sort.Float64s(latencies)
	lr.P50Ms = percentile(latencies, 50)
	lr.P90Ms = percentile(latencies, 90)
	lr.P99Ms = percentile(latencies, 99)
	return lr
}

// percentile returns the p-th percentile of sorted values (0 when
// empty).
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
