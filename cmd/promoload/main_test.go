package main

import (
	"flag"
	"testing"
)

// TestFlagSurface pins promoload's flag names: bench.sh drives the
// saturation sweep through them.
func TestFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("promoload", flag.ContinueOnError)
	registerFlags(fs)
	want := []string{
		"addr", "rps", "duration", "warmup", "measure", "p",
		"targets", "workers", "tenant", "out", "json",
	}
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		got[f.Name] = true
		if f.Usage == "" {
			t.Errorf("flag -%s has no usage string", f.Name)
		}
	})
	for _, name := range want {
		if !got[name] {
			t.Errorf("flag -%s missing", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("flag surface has %d flags, want %d: %v", len(got), len(want), got)
	}
}

func TestParseRates(t *testing.T) {
	rates, err := parseRates("500, 1000,2000")
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 3 || rates[0] != 500 || rates[2] != 2000 {
		t.Errorf("parseRates = %v", rates)
	}
	for _, bad := range []string{"", "0", "a", "100,-5"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	if p := percentile(nil, 50); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(sorted, 50); p != 6 {
		t.Errorf("p50 = %v, want 6", p)
	}
	if p := percentile(sorted, 99); p != 10 {
		t.Errorf("p99 = %v, want 10", p)
	}
}
