package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a fixture module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// chdir moves the process into dir for the duration of the test.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRunExitsTwoOnUnparseableFile is the robustness contract: a file
// the parser rejects must surface as exit code 2 with a diagnostic on
// stderr — never a panic, never a silent pass.
func TestRunExitsTwoOnUnparseableFile(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":    "module fixturemod\n\ngo 1.22\n",
		"broken.go": "package broken\n\nfunc Oops( {\n\tcase ???\n",
	})
	chdir(t, root)

	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("run on an unparseable module = exit %d, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "promolint:") {
		t.Errorf("stderr carries no promolint diagnostic: %q", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout must stay empty on a load error, got %q", stdout.String())
	}
}

// TestRunExitsTwoOutsideModule: no go.mod anywhere up the tree is a
// usage error, exit 2.
func TestRunExitsTwoOutsideModule(t *testing.T) {
	chdir(t, t.TempDir())
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("run outside any module = exit %d, want 2", code)
	}
}

// TestRunListExitsZero: -list works without a module and exits 0 with
// all sixteen analyzers.
func TestRunListExitsZero(t *testing.T) {
	chdir(t, t.TempDir())
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -list = exit %d, want 0\nstderr: %s", code, stderr.String())
	}
	lines := strings.Count(strings.TrimSpace(stdout.String()), "\n") + 1
	if lines != 16 {
		t.Errorf("-list printed %d analyzers, want 16:\n%s", lines, stdout.String())
	}
}

// TestRunBadFlagExitsTwo: flag parse failures are usage errors.
func TestRunBadFlagExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run with a bad flag = exit %d, want 2", code)
	}
}
