// Command promolint runs promonet's custom static-analysis suite (see
// internal/lint): five analyzers enforcing the repo-specific invariants
// that generic tooling cannot know about — the black-box read-only
// contract on the host graph, seeded-randomness and map-iteration
// determinism, goroutine fan-out hygiene, error discipline in the CLI
// and IO layers, and doc coverage of the core exported API.
//
// Usage:
//
//	promolint [flags] [packages]
//
//	promolint ./...                    # the whole module (default)
//	promolint ./internal/centrality    # one package
//	promolint -analyzers determinism ./internal/exp/...
//	promolint -list                    # describe the analyzers
//
// promolint exits 0 when the tree is clean, 1 when it has findings
// (printed one per line as file:line:col: [analyzer] message), and 2 on
// usage or load errors. Findings are suppressed with an annotation
// comment //promolint:allow <analyzer> -- reason on the flagged line,
// the line above it, or in the enclosing function's doc comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"promonet/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list the analyzers and exit")
	analyzers := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "promolint:", err)
		return 2
	}
	var cfg lint.Config
	if *analyzers != "" {
		for _, name := range strings.Split(*analyzers, ",") {
			if name = strings.TrimSpace(name); name != "" {
				cfg.Enable = append(cfg.Enable, name)
			}
		}
	}
	diags, err := lint.Run(root, flag.Args(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promolint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "promolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
