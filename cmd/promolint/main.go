// Command promolint runs promonet's custom static-analysis suite (see
// internal/lint): sixteen analyzers enforcing the repo-specific
// invariants that generic tooling cannot know about — the black-box
// read-only contract on the host graph, seeded-randomness and
// map-iteration determinism, goroutine fan-out hygiene, error
// discipline in the CLI and IO layers, doc coverage of the core
// exported API, the CFG/dataflow properties the execution engine
// depends on (version stamping of graph mutations, engine routing of
// heavy kernels, sync.Pool get/put balance, mutex acquisition order),
// the value-flow invariants of the observability and kernel layers
// (obs span lifecycle, the allocation-free discipline of
// //promolint:hotpath-marked hot code, all-or-nothing sync/atomic
// access per variable, the nil-safe method contract of nil-receiver
// types like *obs.Span), and the interprocedural contracts built on
// the summary engine: no write or unsafe retention of frozen
// graph.View adjacency arrays, goroutine termination and WaitGroup
// join discipline, and CSR snapshot/overlay aliasing safety.
//
// Packages fan out over a bounded worker pool (-workers, default
// GOMAXPROCS); findings and the JSON report are byte-identical at any
// worker count.
//
// Usage:
//
//	promolint [flags] [packages]
//
//	promolint ./...                    # the whole module (default)
//	promolint ./internal/centrality    # one package
//	promolint -analyzers determinism ./internal/exp/...
//	promolint -disable exported-docs ./...
//	promolint -json -baseline lint-baseline.json ./...
//	promolint -workers 1 ./...         # serial run (reference ordering)
//	promolint -timings ./...           # per-analyzer wall/cpu table on stderr
//	promolint -list                    # describe the analyzers
//
// Findings go to stdout (one per line as file:line:col: [analyzer]
// message, or a JSON report with -json); run summaries and errors go to
// stderr. promolint exits 0 when the tree is clean or has only
// warn-severity findings, 1 when it has error-severity findings or the
// baseline has stale entries, and 2 on usage or load errors. Findings
// are suppressed with an annotation comment //promolint:allow
// <analyzer> -- reason on the flagged line, the line above it, or in
// the enclosing function's doc comment; whole accepted findings are
// suppressed by listing them in the -baseline file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"promonet/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI, parameterized over args and streams so tests
// can drive it in-process (notably the corrupt-input exit-2 contract).
//
// The injected writers are os.Stdout/os.Stderr in production and test
// buffers otherwise; either way a failed diagnostic write has no
// recovery path, so the write errors are deliberately best-effort.
//
//promolint:allow ignored-errors -- CLI output writes to injected stdout/stderr are best-effort by design
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("promolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	analyzers := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON report on stdout")
	baseline := fs.String("baseline", "", "baseline file of accepted findings; stale entries are errors")
	workers := fs.Int("workers", 0, "package-level parallelism (0 = GOMAXPROCS, 1 = serial)")
	showTimings := fs.Bool("timings", false, "print the per-analyzer wall/cpu timing table on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 0 {
		fmt.Fprintln(stderr, "promolint: -workers must be >= 0")
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-18s [%s] %s\n", a.Name, severityOf(a), a.Doc)
		}
		return 0
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "promolint:", err)
		return 2
	}
	var cfg lint.Config
	cfg.Enable = splitNames(*analyzers)
	cfg.Disable = splitNames(*disable)
	cfg.Workers = *workers
	diags, timings, err := lint.RunTimed(root, fs.Args(), cfg)
	if err != nil {
		fmt.Fprintln(stderr, "promolint:", err)
		return 2
	}
	if *showTimings {
		fmt.Fprintf(stderr, "%-20s %12s %12s\n", "analyzer", "wall", "cpu")
		for _, tm := range timings {
			fmt.Fprintf(stderr, "%-20s %12s %12s\n", tm.Analyzer,
				time.Duration(tm.WallNanos).Round(time.Microsecond),
				time.Duration(tm.CPUNanos).Round(time.Microsecond))
		}
	}

	var stale []lint.BaselineEntry
	if *baseline != "" {
		b, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "promolint:", err)
			return 2
		}
		diags, stale = b.Apply(root, diags)
	}

	if *jsonOut {
		report := lint.NewReport(root, ranAnalyzers(cfg), diags, stale)
		report.Timings = timings
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "promolint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}

	errs, warns := 0, 0
	for _, d := range diags {
		if d.Severity == lint.SevWarn {
			warns++
		} else {
			errs++
		}
	}
	for _, e := range stale {
		fmt.Fprintf(stderr, "promolint: stale baseline entry: %s [%s] %s\n", e.File, e.Analyzer, e.Message)
	}
	if errs > 0 || warns > 0 || len(stale) > 0 {
		fmt.Fprintf(stderr, "promolint: %d error(s), %d warning(s), %d stale baseline entr(ies)\n", errs, warns, len(stale))
	}
	if errs > 0 || len(stale) > 0 {
		return 1
	}
	return 0
}

// ranAnalyzers mirrors lint.Run's enable/disable selection for the
// report header.
func ranAnalyzers(cfg lint.Config) []*lint.Analyzer {
	enabled := make(map[string]bool)
	for _, n := range cfg.Enable {
		enabled[n] = true
	}
	disabled := make(map[string]bool)
	for _, n := range cfg.Disable {
		disabled[n] = true
	}
	var out []*lint.Analyzer
	for _, a := range lint.Analyzers() {
		if (len(enabled) == 0 || enabled[a.Name]) && !disabled[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

func severityOf(a *lint.Analyzer) lint.Severity {
	if a.Severity == "" {
		return lint.SevError
	}
	return a.Severity
}

func splitNames(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
