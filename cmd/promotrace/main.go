// Command promotrace reads a trace exported by the promotion pipeline
// (promoctl -trace, /debug/trace, obs.ExportTrace) and renders a
// deterministic text summary: a per-phase self/total time table, the
// critical path of the slowest operation, and the top-N slowest spans.
// With -check it only validates the file against the trace_event schema
// the obs package exports.
//
// Usage:
//
//	promotrace out.json
//	promotrace -top 5 out.json
//	promotrace -check out.json
//
// The summary is byte-deterministic for a fixed trace file (all
// orderings have explicit tie-breakers), so its output can be diffed
// across runs and asserted in scripts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"promonet/internal/obs"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "promotrace:", err)
		os.Exit(1)
	}
}

// options is the promotrace flag surface, registered on a caller-owned
// FlagSet so tests can assert it without global flag state.
type options struct {
	top   *int
	check *bool
}

// registerFlags defines every promotrace flag on fs.
func registerFlags(fs *flag.FlagSet) *options {
	return &options{
		top:   fs.Int("top", 10, "slowest spans to list in the summary"),
		check: fs.Bool("check", false, "only validate the trace against the exported schema and report the event count"),
	}
}

// run parses args, loads the trace file, and writes either the -check
// verdict or the full summary to w.
func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("promotrace", flag.ContinueOnError)
	opt := registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: promotrace [-top N] [-check] trace.json")
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	n, err := obs.ValidateTrace(data)
	if err != nil {
		return err
	}
	if *opt.check {
		_, err := fmt.Fprintf(w, "trace OK: %d span events\n", n)
		return err
	}
	spans, err := loadSpans(data)
	if err != nil {
		return err
	}
	return summarize(w, spans, *opt.top)
}

// span is one trace event reduced to the exact-nanosecond fields the
// summary computes with.
type span struct {
	name             string
	id, parent, root uint64
	startNs, durNs   int64
	goroutine        uint64
	childDurNs       int64 // summed durations of direct children
	attrs            map[string]string
}

// loadSpans converts the (already schema-validated) trace's X events
// to spans and accumulates each span's direct-child time (for
// self-time).
func loadSpans(data []byte) ([]*span, error) {
	var tf obs.TraceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, err
	}
	byID := map[uint64]*span{}
	var spans []*span
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		s := &span{
			name:      ev.Name,
			id:        ev.Args.SpanID,
			parent:    ev.Args.ParentID,
			root:      ev.Args.RootID,
			startNs:   ev.Args.StartNs,
			durNs:     ev.Args.DurNs,
			goroutine: ev.Args.Goroutine,
			attrs:     ev.Args.Attrs,
		}
		spans = append(spans, s)
		byID[s.id] = s
	}
	for _, s := range spans {
		if p, ok := byID[s.parent]; ok {
			p.childDurNs += s.durNs
		}
	}
	return spans, nil
}

// phase aggregates every span of one name.
type phase struct {
	name            string
	count           int
	totalNs, selfNs int64
	minNs, maxNs    int64
}

// summarize renders the three summary sections. Every ordering has an
// explicit tie-breaker, making the output byte-deterministic for a
// fixed input.
func summarize(w io.Writer, spans []*span, topN int) error {
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "empty trace: no span events")
		return err
	}

	phases := map[string]*phase{}
	for _, s := range spans {
		p := phases[s.name]
		if p == nil {
			p = &phase{name: s.name, minNs: s.durNs, maxNs: s.durNs}
			phases[s.name] = p
		}
		p.count++
		p.totalNs += s.durNs
		self := s.durNs - s.childDurNs
		if self < 0 {
			// Children on other goroutines can outlast the parent's
			// interval; clamp rather than report negative self-time.
			self = 0
		}
		p.selfNs += self
		if s.durNs < p.minNs {
			p.minNs = s.durNs
		}
		if s.durNs > p.maxNs {
			p.maxNs = s.durNs
		}
	}
	ordered := make([]*phase, 0, len(phases))
	for _, p := range phases {
		ordered = append(ordered, p)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].totalNs != ordered[j].totalNs {
			return ordered[i].totalNs > ordered[j].totalNs
		}
		return ordered[i].name < ordered[j].name
	})

	if _, err := fmt.Fprintf(w, "%d spans, %d phases\n\n", len(spans), len(ordered)); err != nil {
		return err
	}
	// Writes into a tabwriter are buffered; Flush reports their error.
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	_, _ = fmt.Fprintln(tw, "PHASE\tCOUNT\tTOTAL\tSELF\tMIN\tMAX")
	for _, p := range ordered {
		_, _ = fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n",
			p.name, p.count, fmtNs(p.totalNs), fmtNs(p.selfNs), fmtNs(p.minNs), fmtNs(p.maxNs))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if root := slowestRoot(spans); root != nil {
		if _, err := fmt.Fprintf(w, "\ncritical path of slowest operation (%s, %s):\n", root.name, fmtNs(root.durNs)); err != nil {
			return err
		}
		for i, s := range criticalPath(spans, root) {
			indent := ""
			for j := 0; j < i; j++ {
				indent += "  "
			}
			if _, err := fmt.Fprintf(w, "%s%s  %s\n", indent, s.name, fmtNs(s.durNs)); err != nil {
				return err
			}
		}
	}

	slowest := make([]*span, len(spans))
	copy(slowest, spans)
	sort.Slice(slowest, func(i, j int) bool {
		if slowest[i].durNs != slowest[j].durNs {
			return slowest[i].durNs > slowest[j].durNs
		}
		if slowest[i].startNs != slowest[j].startNs {
			return slowest[i].startNs < slowest[j].startNs
		}
		return slowest[i].id < slowest[j].id
	})
	if topN > len(slowest) {
		topN = len(slowest)
	}
	if _, err := fmt.Fprintf(w, "\ntop %d slowest spans:\n", topN); err != nil {
		return err
	}
	tw = tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	_, _ = fmt.Fprintln(tw, "SPAN\tDUR\tGOROUTINE\tID")
	for _, s := range slowest[:topN] {
		_, _ = fmt.Fprintf(tw, "%s\t%s\t%d\t%d\n", s.name, fmtNs(s.durNs), s.goroutine, s.id)
	}
	return tw.Flush()
}

// slowestRoot returns the root span (parent 0) with the largest
// duration, ties broken by smallest span ID; nil if the trace has no
// roots.
func slowestRoot(spans []*span) *span {
	var best *span
	for _, s := range spans {
		if s.parent != 0 {
			continue
		}
		if best == nil || s.durNs > best.durNs ||
			(s.durNs == best.durNs && s.id < best.id) {
			best = s
		}
	}
	return best
}

// criticalPath walks from root downward, at each level following the
// direct child with the largest duration (ties by smallest span ID),
// yielding the chain of spans that bounds the operation's wall clock.
func criticalPath(spans []*span, root *span) []*span {
	children := map[uint64][]*span{}
	for _, s := range spans {
		if s.parent != 0 {
			children[s.parent] = append(children[s.parent], s)
		}
	}
	path := []*span{root}
	cur := root
	for {
		kids := children[cur.id]
		if len(kids) == 0 {
			return path
		}
		next := kids[0]
		for _, k := range kids[1:] {
			if k.durNs > next.durNs || (k.durNs == next.durNs && k.id < next.id) {
				next = k
			}
		}
		path = append(path, next)
		cur = next
	}
}

// fmtNs renders a nanosecond quantity as a Go duration string, which is
// deterministic and unit-scaled (e.g. "1.5ms").
func fmtNs(ns int64) string { return time.Duration(ns).String() }
