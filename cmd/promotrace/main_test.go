package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"promonet/internal/obs"
)

// TestFlagSurface pins the promotrace flag names.
func TestFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("promotrace", flag.ContinueOnError)
	registerFlags(fs)
	want := []string{"top", "check"}
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		got[f.Name] = true
		if f.Usage == "" {
			t.Errorf("flag -%s has no usage string", f.Name)
		}
	})
	for _, name := range want {
		if !got[name] {
			t.Errorf("flag -%s missing", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("flag surface has %d flags, want %d: %v", len(got), len(want), got)
	}
}

// writeFixtureTrace records a small span tree through the real obs
// pipeline and exports it, returning the trace file path.
func writeFixtureTrace(t *testing.T) string {
	t.Helper()
	prev := obs.CurrentRecorder()
	rec := obs.NewRecorder(64)
	obs.SetRecorder(rec)
	defer obs.SetRecorder(prev)

	ctx, root := obs.Start(context.Background(), "promote")
	root.Int("n", 100)
	cctx, child := obs.Start(ctx, "promote/score-before")
	_, grand := obs.Start(cctx, "engine/compute/closeness")
	time.Sleep(time.Millisecond)
	grand.End()
	child.End()
	_, child2 := obs.Start(ctx, "promote/strategy-apply")
	child2.End()
	root.End()

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := obs.WriteTraceFile(path, rec); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCheckMode validates the exported fixture and reports the span
// count.
func TestCheckMode(t *testing.T) {
	path := writeFixtureTrace(t)
	var out bytes.Buffer
	if err := run(&out, []string{"-check", path}); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "trace OK: 4 span events\n" {
		t.Errorf("check output = %q", got)
	}
}

// TestSummaryDeterministic renders the same trace twice and requires
// byte-identical output — the acceptance criterion for the summary.
func TestSummaryDeterministic(t *testing.T) {
	path := writeFixtureTrace(t)
	render := func() string {
		var out bytes.Buffer
		if err := run(&out, []string{"-top", "3", path}); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	first, second := render(), render()
	if first != second {
		t.Errorf("summary is not deterministic:\n--- first\n%s\n--- second\n%s", first, second)
	}
	// The tabwriter renders columns space-padded; assert on words.
	for _, want := range []string{
		"4 spans, 4 phases",
		"PHASE", "COUNT", "TOTAL", "SELF", "MIN", "MAX",
		"critical path of slowest operation (promote",
		"top 3 slowest spans:",
		"engine/compute/closeness",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("summary missing %q:\n%s", want, first)
		}
	}
}

// TestCheckRejectsCorruptTrace: a truncated file must fail validation.
func TestCheckRejectsCorruptTrace(t *testing.T) {
	path := writeFixtureTrace(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, []string{"-check", bad}); err == nil {
		t.Error("corrupt trace passed -check")
	}
}
