// Command centrality computes centrality measures and rankings on an
// edge-list graph — the measurement half of the pipeline, standing in
// for the NetworkX/teexGraph tooling the paper used.
//
// Usage:
//
//	centrality -graph g.txt -measure betweenness [-top 20]
//	centrality -graph g.txt -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/engine"
	"promonet/internal/graph"
	"promonet/internal/graph/csr"
)

// engineMeasure maps a CLI measure name to the engine.Measure the CSR
// backend scores with. Current-flow betweenness is the one measure with
// no engine kind (its electrical solver works on the map backend only).
func engineMeasure(name string) (engine.Measure, error) {
	switch name {
	case "betweenness", "BC":
		return engine.Betweenness(centrality.PairsUnordered), nil
	case "coreness", "RC":
		return engine.Coreness(), nil
	case "closeness", "CC":
		return engine.Closeness(), nil
	case "eccentricity", "EC":
		return engine.Eccentricity(), nil
	case "harmonic", "HC":
		return engine.Harmonic(), nil
	case "degree", "DC":
		return engine.Degree(), nil
	case "katz", "KC":
		return engine.Katz(), nil
	default:
		return engine.Measure{}, fmt.Errorf("measure %q has no csr backend (use -backend map)", name)
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "centrality:", err)
		os.Exit(1)
	}
}

func run() error {
	graphPath := flag.String("graph", "", "edge-list file (required)")
	measureName := flag.String("measure", "closeness", "measure: betweenness|coreness|closeness|eccentricity|harmonic|degree|katz")
	backend := flag.String("backend", "map", "scoring backend: map (adjacency-map graph) or csr (frozen flat-array snapshot)")
	top := flag.Int("top", 20, "print the top-k nodes by score")
	stats := flag.Bool("stats", false, "print Table VI-style statistics instead of scores")
	lcc := flag.Bool("lcc", true, "restrict to the largest connected component (the paper's preprocessing)")
	engineStats := flag.Bool("enginestats", false, "print execution-engine cache/traversal counters to stderr on exit")
	flag.Parse()
	if *engineStats {
		defer func() { fmt.Fprintln(os.Stderr, engine.Default().Stats()) }()
	}

	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, labels, err := graph.LoadEdgeListFile(*graphPath)
	if err != nil {
		return err
	}
	if *lcc && !g.IsConnected() {
		sub, orig := g.LargestComponent()
		fmt.Printf("restricting to largest connected component: n %d -> %d\n", g.N(), sub.N())
		remapped := make([]int64, sub.N())
		for newID, oldID := range orig {
			remapped[newID] = labels[oldID]
		}
		g, labels = sub, remapped
	}

	if *stats {
		fmt.Printf("n=%d m=%d diameter=%d degeneracy=%d\n",
			g.N(), g.M(), centrality.Diameter(g), centrality.Degeneracy(g))
		return nil
	}

	m, err := core.MeasureByName(*measureName)
	if err != nil {
		return err
	}
	var scores []float64
	switch *backend {
	case "map":
		scores = m.Scores(g)
	case "csr":
		em, err := engineMeasure(*measureName)
		if err != nil {
			return err
		}
		scores = engine.Default().Scores(csr.Freeze(g), em)
	default:
		return fmt.Errorf("-backend must be map or csr, got %q", *backend)
	}
	ranks := centrality.Ranks(scores)

	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	k := *top
	if k > len(idx) {
		k = len(idx)
	}
	fmt.Printf("%-8s %-10s %-6s %s\n", "rank", "label", "id", m.Short())
	for _, v := range idx[:k] {
		fmt.Printf("%-8d %-10d %-6d %g\n", ranks[v], labels[v], v, scores[v])
	}
	return nil
}
