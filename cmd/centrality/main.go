// Command centrality computes centrality measures and rankings on an
// edge-list graph — the measurement half of the pipeline, standing in
// for the NetworkX/teexGraph tooling the paper used.
//
// Usage:
//
//	centrality -graph g.txt -measure betweenness [-top 20]
//	centrality -graph g.txt -measure closeness -backend csr -manifest run.json
//	centrality -graph g.txt -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/engine"
	"promonet/internal/graph"
	"promonet/internal/graph/csr"
	"promonet/internal/obs"
)

// engineMeasure maps a CLI measure name to the engine.Measure the CSR
// backend scores with. Current-flow betweenness is the one measure with
// no engine kind (its electrical solver works on the map backend only).
func engineMeasure(name string) (engine.Measure, error) {
	switch name {
	case "betweenness", "BC":
		return engine.Betweenness(centrality.PairsUnordered), nil
	case "coreness", "RC":
		return engine.Coreness(), nil
	case "closeness", "CC":
		return engine.Closeness(), nil
	case "eccentricity", "EC":
		return engine.Eccentricity(), nil
	case "harmonic", "HC":
		return engine.Harmonic(), nil
	case "degree", "DC":
		return engine.Degree(), nil
	case "katz", "KC":
		return engine.Katz(), nil
	default:
		return engine.Measure{}, fmt.Errorf("measure %q has no csr backend (use -backend map)", name)
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "centrality:", err)
		os.Exit(1)
	}
}

// options is the centrality flag surface, registered on a caller-owned
// FlagSet so tests can assert it without global flag state.
type options struct {
	graphPath    *string
	measureName  *string
	backend      *string
	top          *int
	stats        *bool
	lcc          *bool
	engineStats  *bool
	obs          *obs.ObsFlags
	manifestPath *string
}

// registerFlags defines every centrality flag on fs.
func registerFlags(fs *flag.FlagSet) *options {
	return &options{
		graphPath:    fs.String("graph", "", "edge-list file (required)"),
		measureName:  fs.String("measure", "closeness", "measure: betweenness|coreness|closeness|eccentricity|harmonic|degree|katz"),
		backend:      fs.String("backend", "map", "scoring backend: map (adjacency-map graph) or csr (frozen flat-array snapshot)"),
		top:          fs.Int("top", 20, "print the top-k nodes by score"),
		stats:        fs.Bool("stats", false, "print Table VI-style statistics instead of scores"),
		lcc:          fs.Bool("lcc", true, "restrict to the largest connected component (the paper's preprocessing)"),
		engineStats:  fs.Bool("enginestats", false, "print execution-engine cache/traversal counters to stderr on exit"),
		obs:          obs.RegisterObsFlags(fs),
		manifestPath: fs.String("manifest", "", "write a reproducible run manifest (JSON) to this file"),
	}
}

func run() (err error) {
	opt := registerFlags(flag.CommandLine)
	flag.Parse()
	if *opt.engineStats {
		defer func() { fmt.Fprintln(os.Stderr, engine.Default().Stats()) }()
	}

	// Tracing is demand-driven: Activate installs a recorder only when a
	// manifest, a trace file, or the debug endpoints will consume the
	// spans; otherwise scoring stays on the zero-alloc disabled path.
	session, err := opt.obs.Activate("centrality", 4096, *opt.manifestPath != "")
	if err != nil {
		return err
	}
	defer func() {
		if cerr := session.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	if *opt.graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, labels, err := graph.LoadEdgeListFile(*opt.graphPath)
	if err != nil {
		return err
	}
	if *opt.lcc && !g.IsConnected() {
		sub, orig := g.LargestComponent()
		fmt.Printf("restricting to largest connected component: n %d -> %d\n", g.N(), sub.N())
		remapped := make([]int64, sub.N())
		for newID, oldID := range orig {
			remapped[newID] = labels[oldID]
		}
		g, labels = sub, remapped
	}

	if *opt.stats {
		fmt.Printf("n=%d m=%d diameter=%d degeneracy=%d\n",
			g.N(), g.M(), centrality.Diameter(g), centrality.Degeneracy(g))
		return nil
	}

	m, err := core.MeasureByName(*opt.measureName)
	if err != nil {
		return err
	}
	// scored is the view the scores were actually computed on; the
	// manifest's dataset digest comes from it, so map and csr runs of
	// the same graph provably agree (graph.Digest is backend-independent
	// over the View interface).
	var scored graph.View = g
	var scores []float64
	switch *opt.backend {
	case "map":
		scores = m.Scores(g)
	case "csr":
		em, err := engineMeasure(*opt.measureName)
		if err != nil {
			return err
		}
		snap := csr.Freeze(g)
		scored = snap
		scores = engine.Default().Scores(snap, em)
	default:
		return fmt.Errorf("-backend must be map or csr, got %q", *opt.backend)
	}
	if *opt.manifestPath != "" {
		if err := writeManifest(*opt.manifestPath, opt, scored, m); err != nil {
			return err
		}
	}
	ranks := centrality.Ranks(scores)

	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	k := *opt.top
	if k > len(idx) {
		k = len(idx)
	}
	fmt.Printf("%-8s %-10s %-6s %s\n", "rank", "label", "id", m.Short())
	for _, v := range idx[:k] {
		fmt.Printf("%-8d %-10d %-6d %g\n", ranks[v], labels[v], v, scores[v])
	}
	return nil
}

// writeManifest captures the run's provenance into opt.manifestPath.
// The dataset section is derived from the scored view — not the loaded
// graph — so the digest/n/m reflect exactly what the selected backend
// computed on (the manifest-parity contract the differential test in
// main_test.go pins).
func writeManifest(path string, opt *options, scored graph.View, m core.Measure) error {
	man := obs.NewManifest("centrality", 0)
	man.CaptureFlags(flag.CommandLine)
	man.Dataset = &obs.DatasetInfo{
		Name:   filepath.Base(*opt.graphPath),
		N:      scored.N(),
		M:      scored.M(),
		Digest: graph.Digest(scored),
	}
	man.Measure = m.Name()
	man.CapturePhases(obs.CurrentRecorder())
	es := engine.Default().Stats().Manifest()
	man.Engine = &es
	man.CaptureMem()
	return man.WriteFile(path)
}
