package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"promonet/internal/core"
	"promonet/internal/graph"
	"promonet/internal/graph/csr"
	"promonet/internal/obs"
)

// TestFlagSurface pins the centrality flag names; scripts and docs
// depend on them, and the shared observability flags must match the
// other cmds.
func TestFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("centrality", flag.ContinueOnError)
	registerFlags(fs)
	want := []string{
		"graph", "measure", "backend", "top", "stats", "lcc", "enginestats",
		"debug-addr", "debug-linger", "trace", "trace-topk", "trace-threshold",
		"manifest",
	}
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		got[f.Name] = true
		if f.Usage == "" {
			t.Errorf("flag -%s has no usage string", f.Name)
		}
	})
	for _, name := range want {
		if !got[name] {
			t.Errorf("flag -%s missing", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("flag surface has %d flags, want %d: %v", len(got), len(want), got)
	}
}

// TestManifestBackendParity is the differential test for the
// manifest/digest parity contract: a manifest written from a CSR
// snapshot of a graph must carry the same dataset digest and n/m as
// one written from the adjacency-map graph itself.
func TestManifestBackendParity(t *testing.T) {
	g := graph.NewWithNodes(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}} {
		g.AddEdge(e[0], e[1])
	}
	m, err := core.MeasureByName("closeness")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	write := func(name string, scored graph.View) *obs.DatasetInfo {
		t.Helper()
		fs := flag.NewFlagSet("centrality", flag.ContinueOnError)
		opt := registerFlags(fs)
		if err := fs.Parse([]string{"-graph", "host.txt"}); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		man := obs.NewManifest("centrality", 0)
		man.Dataset = &obs.DatasetInfo{
			Name:   filepath.Base(*opt.graphPath),
			N:      scored.N(),
			M:      scored.M(),
			Digest: graph.Digest(scored),
		}
		man.Measure = m.Name()
		if err := man.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateManifest(data); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var parsed obs.Manifest
		if err := json.Unmarshal(data, &parsed); err != nil {
			t.Fatal(err)
		}
		if parsed.Dataset == nil {
			t.Fatalf("%s: no dataset section", name)
		}
		return parsed.Dataset
	}

	mapDS := write("map.json", g)
	csrDS := write("csr.json", csr.Freeze(g))

	if mapDS.Digest != csrDS.Digest {
		t.Errorf("digest parity broken: map %s, csr %s", mapDS.Digest, csrDS.Digest)
	}
	if mapDS.N != csrDS.N || mapDS.M != csrDS.M {
		t.Errorf("size parity broken: map n=%d m=%d, csr n=%d m=%d",
			mapDS.N, mapDS.M, csrDS.N, csrDS.M)
	}
	if mapDS.N != g.N() || mapDS.M != g.M() {
		t.Errorf("dataset n/m = %d/%d, want %d/%d", mapDS.N, mapDS.M, g.N(), g.M())
	}
}
