// Command experiments regenerates the paper's evaluation: every table
// (VI–XIV) and figure (4–9) of Section VII, plus the strategy-mismatch
// ablation, on the synthetic dataset stand-ins.
//
// Usage:
//
//	experiments [flags]                 # run everything
//	experiments -only table7,fig4      # run a subset
//
// Flags:
//
//	-seed N      master seed (default 1)
//	-scale F     dataset scale as a fraction of the original node count (default 0.05)
//	-targets N   random targets per dataset for the figures (default 10)
//	-sizes CSV   promotion sizes (default 4,8,16,32,64)
//	-datasets CSV  subset of WIKI,HEPP,EPIN,SLAS
//	-only CSV    subset of table6..table14, fig4..fig9, ablation,
//	             guarantee, detect, ext, fige2, baseline, armsrace
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"promonet/internal/engine"
	"promonet/internal/exp"
	"promonet/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// options is the experiments flag surface, registered on a caller-owned
// FlagSet so tests can assert it without global flag state.
type options struct {
	seed             *int64
	scale            *float64
	targets          *int
	sizesFlag        *string
	datasetsFlag     *string
	only             *string
	format           *string
	greedyBudget     *int
	greedyCandidates *int
	greedyPivots     *int
	obs              *obs.ObsFlags
	manifestDir      *string
}

// registerFlags defines every experiments flag on fs, defaulted from cfg.
func registerFlags(fs *flag.FlagSet, cfg exp.Config) *options {
	return &options{
		seed:             fs.Int64("seed", cfg.Seed, "master random seed"),
		scale:            fs.Float64("scale", cfg.Scale, "dataset scale (fraction of original node count)"),
		targets:          fs.Int("targets", cfg.NumTargets, "random targets per dataset for figures"),
		sizesFlag:        fs.String("sizes", csvInts(cfg.Sizes), "promotion sizes, comma separated"),
		datasetsFlag:     fs.String("datasets", "", "datasets to run (default all: WIKI,HEPP,EPIN,SLAS)"),
		only:             fs.String("only", "", "run only these experiments, e.g. table7,fig4,ablation"),
		format:           fs.String("format", "text", "output format: text|md|csv"),
		greedyBudget:     fs.Int("greedy-budget", cfg.GreedyBudget, "max promotion size for the Greedy comparison"),
		greedyCandidates: fs.Int("greedy-candidates", cfg.GreedyCandidateSample, "candidate edges evaluated per Greedy round (0 = exhaustive, as in [18])"),
		greedyPivots:     fs.Int("greedy-pivots", cfg.GreedyPivotSources, "BFS pivots for Greedy's betweenness estimates (0 = exact)"),
		obs:              obs.RegisterObsFlags(fs),
		manifestDir:      fs.String("manifest", "", "write one run manifest per dataset×measure cell into this directory"),
	}
}

func run() (err error) {
	cfg := exp.DefaultConfig()
	opt := registerFlags(flag.CommandLine, cfg)
	flag.Parse()

	cfg.Seed = *opt.seed
	cfg.Scale = *opt.scale
	cfg.NumTargets = *opt.targets
	cfg.GreedyBudget = *opt.greedyBudget
	cfg.GreedyCandidateSample = *opt.greedyCandidates
	cfg.GreedyPivotSources = *opt.greedyPivots
	cfg.ManifestDir = *opt.manifestDir
	if cfg.Sizes, err = parseInts(*opt.sizesFlag); err != nil {
		return fmt.Errorf("bad -sizes: %w", err)
	}
	if *opt.datasetsFlag != "" {
		cfg.Datasets = strings.Split(*opt.datasetsFlag, ",")
	}

	// Spans are consumed by per-cell manifests, trace dumps, and
	// /debug/vars; without a sink, tracing stays on the zero-allocation
	// disabled path (Activate installs nothing).
	session, err := opt.obs.Activate("experiments", 8192, cfg.ManifestDir != "")
	if err != nil {
		return err
	}
	defer func() {
		if cerr := session.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	want := map[string]bool{}
	if *opt.only != "" {
		for _, k := range strings.Split(*opt.only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	selected := func(key string) bool { return len(want) == 0 || want[key] }

	switch *opt.format {
	case "text", "md", "markdown", "csv":
	default:
		return fmt.Errorf("unknown -format %q (want text, md, or csv)", *opt.format)
	}
	render := renderer{out: os.Stdout, format: *opt.format}

	start := time.Now()

	if selected("table6") {
		if err := render.table(func() (*exp.Table, error) { return exp.TableVI(cfg) }); err != nil {
			return err
		}
	}
	kinds := []exp.Kind{exp.KindBC, exp.KindRC, exp.KindCC, exp.KindEC}
	varKeys := []string{"table7", "table9", "table11", "table13"}
	domKeys := []string{"table8", "table10", "table12", "table14"}
	figKeys := []string{"fig4", "fig5", "fig6", "fig7"}
	for i, k := range kinds {
		if selected(varKeys[i]) {
			if err := render.table(func() (*exp.Table, error) { return exp.VariationTable(cfg, k) }); err != nil {
				return err
			}
		}
		if selected(domKeys[i]) {
			if err := render.table(func() (*exp.Table, error) { return exp.DominanceTable(cfg, k) }); err != nil {
				return err
			}
		}
		if selected(figKeys[i]) {
			fig, err := exp.RatioFigure(cfg, k)
			if err != nil {
				return err
			}
			if err := render.figure(fig); err != nil {
				return err
			}
		}
	}
	if selected("fig8") || selected("fig9") {
		ratioFig, scoreFig, err := exp.GreedyComparison(cfg)
		if err != nil {
			return err
		}
		if selected("fig8") {
			if err := render.figure(ratioFig); err != nil {
				return err
			}
		}
		if selected("fig9") {
			if err := render.figure(scoreFig); err != nil {
				return err
			}
		}
	}
	if selected("ablation") {
		if err := render.table(func() (*exp.Table, error) { return exp.Ablation(cfg) }); err != nil {
			return err
		}
	}
	if selected("guarantee") {
		if err := render.table(func() (*exp.Table, error) { return exp.GuaranteeTable(cfg) }); err != nil {
			return err
		}
	}
	if selected("detect") {
		if err := render.table(func() (*exp.Table, error) { return exp.DetectabilityTable(cfg) }); err != nil {
			return err
		}
	}
	if selected("fige2") || selected("cc-cmp") {
		ratioFig, farFig, err := exp.ClosenessComparison(cfg)
		if err != nil {
			return err
		}
		for _, f := range []*exp.Figure{ratioFig, farFig} {
			if err := render.figure(f); err != nil {
				return err
			}
		}
	}
	if selected("armsrace") {
		if err := render.table(func() (*exp.Table, error) { return exp.ArmsRaceTable(cfg) }); err != nil {
			return err
		}
	}
	if selected("baseline") {
		if err := render.table(func() (*exp.Table, error) { return exp.BaselineTable(cfg) }); err != nil {
			return err
		}
	}
	if selected("ext") {
		fig, err := exp.ExtensionFigure(cfg)
		if err != nil {
			return err
		}
		if err := render.figure(fig); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(render.out, "done in %v (seed=%d scale=%g)\n", time.Since(start).Round(time.Millisecond), cfg.Seed, cfg.Scale); err != nil {
		return err
	}
	_, err = fmt.Fprintln(render.out, engine.Default().Stats())
	return err
}

// renderer writes tables and figures in the selected output format.
type renderer struct {
	out    *os.File
	format string
}

func (r renderer) table(f func() (*exp.Table, error)) error {
	t, err := f()
	if err != nil {
		return err
	}
	switch r.format {
	case "md", "markdown":
		err = t.RenderMarkdown(r.out)
	case "csv":
		err = t.RenderCSV(r.out)
	default:
		err = t.Render(r.out)
	}
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(r.out)
	return err
}

func (r renderer) figure(f *exp.Figure) error {
	var err error
	switch r.format {
	case "md", "markdown":
		err = f.RenderMarkdown(r.out)
	case "csv":
		err = f.RenderCSV(r.out)
	default:
		err = f.Render(r.out)
	}
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(r.out)
	return err
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func csvInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}
