package main

import (
	"flag"
	"testing"

	"promonet/internal/exp"
)

// TestFlagSurface pins the experiments flag names; scripts and docs
// depend on them.
func TestFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	registerFlags(fs, exp.DefaultConfig())
	want := []string{
		"seed", "scale", "targets", "sizes", "datasets", "only", "format",
		"greedy-budget", "greedy-candidates", "greedy-pivots",
		"debug-addr", "debug-linger", "trace", "trace-topk", "trace-threshold",
		"manifest",
	}
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		got[f.Name] = true
		if f.Usage == "" {
			t.Errorf("flag -%s has no usage string", f.Name)
		}
	})
	for _, name := range want {
		if !got[name] {
			t.Errorf("flag -%s missing", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("flag surface has %d flags, want %d: %v", len(got), len(want), got)
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("4, 8,16")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseInts = %v, want %v", got, want)
		}
	}
	if _, err := parseInts("4,x"); err == nil {
		t.Error("bad int accepted")
	}
}

func TestCSVInts(t *testing.T) {
	if got := csvInts([]int{4, 8, 16}); got != "4,8,16" {
		t.Errorf("csvInts = %q", got)
	}
	if got := csvInts(nil); got != "" {
		t.Errorf("csvInts(nil) = %q", got)
	}
}

func TestParseIntsRoundTrip(t *testing.T) {
	in := []int{1, 2, 3, 64}
	out, err := parseInts(csvInts(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("round trip %v -> %v", in, out)
		}
	}
}
