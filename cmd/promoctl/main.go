// Command promoctl applies a black-box promotion strategy to a graph and
// reports the outcome: score/ranking variations, the property check for
// the measure's principle, and the theoretical guaranteed size.
//
// Usage:
//
//	promoctl -graph g.txt -target 42 -measure closeness -p 16
//	promoctl -graph g.txt -target 42 -measure betweenness -p 8 -strategy single-clique
//	promoctl -graph g.txt -target 42 -measure coreness -guaranteed
//	promoctl -graph g.txt -target 42 -measure closeness -p 16 -out g2.txt
//
// The graph file is a SNAP-style edge list (see internal/graph). The
// target is addressed by its original label in the file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"promonet/internal/core"
	"promonet/internal/engine"
	"promonet/internal/graph"
	"promonet/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "promoctl:", err)
		os.Exit(1)
	}
}

// options is promoctl's full flag surface, registered on a caller-owned
// FlagSet so tests can assert the surface without touching the global
// flag.CommandLine state.
type options struct {
	graphPath    *string
	targetLabel  *int64
	measureName  *string
	size         *int
	strategyName *string
	guaranteed   *bool
	outPath      *string
	dotPath      *string
	jsonOut      *bool
	engineStats  *bool
	obs          *obs.ObsFlags
	manifestPath *string
}

// registerFlags defines every promoctl flag on fs.
func registerFlags(fs *flag.FlagSet) *options {
	return &options{
		graphPath:    fs.String("graph", "", "edge-list file of the host graph (required)"),
		targetLabel:  fs.Int64("target", -1, "target node label as it appears in the file (required)"),
		measureName:  fs.String("measure", "closeness", "centrality measure: betweenness|coreness|closeness|eccentricity|harmonic|degree|katz"),
		size:         fs.Int("p", 0, "promotion size (number of inserted nodes)"),
		strategyName: fs.String("strategy", "", "override the principle-guided strategy: multi-point|double-line|single-clique"),
		guaranteed:   fs.Bool("guaranteed", false, "use the smallest provably sufficient size instead of -p"),
		outPath:      fs.String("out", "", "write the updated graph G' to this file"),
		dotPath:      fs.String("dot", "", "write the updated graph in Graphviz DOT format (target red, inserted gray)"),
		jsonOut:      fs.Bool("json", false, "print the outcome as JSON instead of text"),
		engineStats:  fs.Bool("enginestats", false, "print execution-engine cache/traversal counters to stderr on exit (and embed them in -json output)"),
		obs:          obs.RegisterObsFlags(fs),
		manifestPath: fs.String("manifest", "", "write a reproducible run manifest (JSON) to this file"),
	}
}

func run() (err error) {
	opt := registerFlags(flag.CommandLine)
	flag.Parse()
	graphPath := opt.graphPath
	targetLabel := opt.targetLabel
	size := opt.size
	guaranteed := opt.guaranteed
	jsonOut := opt.jsonOut
	if *opt.engineStats {
		defer func() { fmt.Fprintln(os.Stderr, engine.Default().Stats()) }()
	}

	// Tracing is demand-driven: Activate installs a recorder (plus
	// flight recorder and runtime poller) only when something will
	// consume the spans — a manifest, a trace file, or the debug
	// endpoints; otherwise every obs.Start in the libraries stays on the
	// zero-allocation disabled path.
	session, err := opt.obs.Activate("promoctl", 4096, *opt.manifestPath != "")
	if err != nil {
		return err
	}
	defer func() {
		if cerr := session.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	if *targetLabel < 0 {
		return fmt.Errorf("-target is required")
	}
	g, labels, err := graph.LoadEdgeListFile(*graphPath)
	if err != nil {
		return err
	}
	target := -1
	for id, l := range labels {
		if l == *targetLabel {
			target = id
			break
		}
	}
	if target == -1 {
		return fmt.Errorf("target label %d not found in %s", *targetLabel, *graphPath)
	}
	m, err := core.MeasureByName(*opt.measureName)
	if err != nil {
		return err
	}
	if *opt.manifestPath != "" {
		// Written on the way out so the manifest covers the whole run,
		// including failed ones (the phases show how far it got).
		defer func() {
			if werr := writeManifest(*opt.manifestPath, opt, g, m); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	if !*jsonOut {
		fmt.Printf("host: %v, target: label %d (id %d)\n", g, *targetLabel, target)
		fmt.Printf("measure: %s (%s principle, guided strategy: %s)\n", m.Name(), m.Principle(), m.Strategy())
	}

	var g2 *graph.Graph
	var o *core.Outcome
	switch {
	case *guaranteed:
		p, needed, err := core.GuaranteedSize(g, m, target)
		if err != nil {
			return err
		}
		if !needed {
			fmt.Println("target is already at rank 1; nothing to do")
			return nil
		}
		if !*jsonOut {
			fmt.Printf("guaranteed size p' + 1 = %d\n", p)
		}
		g2, o, err = core.Promote(g, m, target, p)
		if err != nil {
			return err
		}
	case *opt.strategyName != "":
		st, err := parseStrategy(*opt.strategyName)
		if err != nil {
			return err
		}
		if *size < 1 {
			return fmt.Errorf("-p must be >= 1")
		}
		g2, o, err = core.PromoteWith(g, m, core.Strategy{Target: target, Size: *size, Type: st})
		if err != nil {
			return err
		}
	default:
		if *size < 1 {
			return fmt.Errorf("-p must be >= 1 (or use -guaranteed)")
		}
		g2, o, err = core.Promote(g, m, target, *size)
		if err != nil {
			return err
		}
	}

	if *jsonOut {
		report := jsonReport{
			Measure:    o.Measure,
			Principle:  m.Principle().String(),
			Strategy:   o.Strategy.Type.String(),
			Target:     int(*targetLabel),
			Size:       o.Strategy.Size,
			Inserted:   o.Inserted,
			Score:      o.Before[o.Strategy.Target],
			ScoreAfter: o.After[o.Strategy.Target],
			RankBefore: o.RankBefore,
			RankAfter:  o.RankAfter,
			DeltaRank:  o.DeltaRank,
			Ratio:      o.Ratio,
			Effective:  o.Effective(),
			Properties: propertiesReport{
				Gain:      o.Check.Gain,
				Dominance: o.Check.Dominance,
				Boost:     o.Check.Boost,
			},
		}
		if *opt.engineStats {
			s := engine.Default().Stats()
			report.EngineStats = &s
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		fmt.Println(o)
		if o.Effective() {
			fmt.Printf("SUCCESS: ranking improved by %d positions (%.2f%% of n)\n", o.DeltaRank, o.Ratio)
		} else {
			fmt.Println("no ranking improvement at this size")
		}
	}
	if *opt.outPath != "" {
		if err := graph.SaveEdgeListFile(*opt.outPath, g2); err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Printf("updated graph written to %s (n=%d, m=%d)\n", *opt.outPath, g2.N(), g2.M())
		}
	}
	if *opt.dotPath != "" {
		highlight := map[int]string{o.Strategy.Target: "red"}
		for _, w := range o.Inserted {
			highlight[w] = "gray"
		}
		f, err := os.Create(*opt.dotPath)
		if err != nil {
			return err
		}
		if err := graph.WriteDOT(f, g2, "promoted", highlight); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// jsonReport is the machine-readable outcome for -json.
type jsonReport struct {
	Measure    string           `json:"measure"`
	Principle  string           `json:"principle"`
	Strategy   string           `json:"strategy"`
	Target     int              `json:"target_label"`
	Size       int              `json:"size"`
	Inserted   []int            `json:"inserted_ids"`
	Score      float64          `json:"score_before"`
	ScoreAfter float64          `json:"score_after"`
	RankBefore int              `json:"rank_before"`
	RankAfter  int              `json:"rank_after"`
	DeltaRank  int              `json:"delta_rank"`
	Ratio      float64          `json:"ratio_percent"`
	Effective  bool             `json:"effective"`
	Properties propertiesReport `json:"properties"`
	// EngineStats is present when -enginestats is set; it uses the
	// manifest schema (engine.Stats.MarshalJSON).
	EngineStats *engine.Stats `json:"engine_stats,omitempty"`
}

type propertiesReport struct {
	Gain      bool `json:"gain"`
	Dominance bool `json:"dominance"`
	Boost     bool `json:"boost"`
}

// writeManifest captures the run's provenance — flags, dataset digest,
// measure, span rollups, engine counters, memory — into opt.manifestPath.
func writeManifest(path string, opt *options, g *graph.Graph, m core.Measure) error {
	man := obs.NewManifest("promoctl", 0)
	man.CaptureFlags(flag.CommandLine)
	man.Dataset = &obs.DatasetInfo{
		Name:   filepath.Base(*opt.graphPath),
		N:      g.N(),
		M:      g.M(),
		Digest: graph.Digest(g),
	}
	man.Measure = m.Name()
	man.CapturePhases(obs.CurrentRecorder())
	es := engine.Default().Stats().Manifest()
	man.Engine = &es
	man.CaptureMem()
	return man.WriteFile(path)
}

func parseStrategy(name string) (core.StrategyType, error) {
	switch name {
	case "multi-point":
		return core.MultiPoint, nil
	case "double-line":
		return core.DoubleLine, nil
	case "single-clique":
		return core.SingleClique, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}
