package main

import (
	"testing"

	"promonet/internal/core"
)

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want core.StrategyType
		ok   bool
	}{
		{"multi-point", core.MultiPoint, true},
		{"double-line", core.DoubleLine, true},
		{"single-clique", core.SingleClique, true},
		{"clique", 0, false},
		{"", 0, false},
	}
	for _, tc := range cases {
		got, err := parseStrategy(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("parseStrategy(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseStrategy(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
