package main

import (
	"flag"
	"testing"

	"promonet/internal/core"
)

// TestFlagSurface pins promoctl's flag names: scripts (CI smoke,
// bench) and documentation depend on them, so removing or renaming one
// must be a deliberate act that updates this list.
func TestFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("promoctl", flag.ContinueOnError)
	registerFlags(fs)
	want := []string{
		"graph", "target", "measure", "p", "strategy", "guaranteed",
		"out", "dot", "json", "enginestats",
		"debug-addr", "debug-linger", "trace", "trace-topk", "trace-threshold",
		"manifest",
	}
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		got[f.Name] = true
		if f.Usage == "" {
			t.Errorf("flag -%s has no usage string", f.Name)
		}
	})
	for _, name := range want {
		if !got[name] {
			t.Errorf("flag -%s missing", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("flag surface has %d flags, want %d: %v", len(got), len(want), got)
	}
}

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want core.StrategyType
		ok   bool
	}{
		{"multi-point", core.MultiPoint, true},
		{"double-line", core.DoubleLine, true},
		{"single-clique", core.SingleClique, true},
		{"clique", 0, false},
		{"", 0, false},
	}
	for _, tc := range cases {
		got, err := parseStrategy(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("parseStrategy(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseStrategy(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
