package main

import (
	"flag"
	"testing"
)

// TestFlagSurface pins promod's flag names: scripts (CI smoke, bench)
// and documentation depend on them, so removing or renaming one must be
// a deliberate act that updates this list.
func TestFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("promod", flag.ContinueOnError)
	registerFlags(fs)
	want := []string{
		"listen", "graph", "gen-ba", "backend",
		"max-inflight", "queue", "queue-wait", "tenant-rate", "tenant-burst",
		"exact-max-n", "cache", "drain",
		"debug-addr", "debug-linger", "trace", "trace-topk", "trace-threshold",
	}
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		got[f.Name] = true
		if f.Usage == "" {
			t.Errorf("flag -%s has no usage string", f.Name)
		}
	})
	for _, name := range want {
		if !got[name] {
			t.Errorf("flag -%s missing", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("flag surface has %d flags, want %d: %v", len(got), len(want), got)
	}
}

func TestParseGenBA(t *testing.T) {
	cases := []struct {
		in   string
		n, k int
		seed int64
		ok   bool
	}{
		{"1000,10,7", 1000, 10, 7, true},
		{"1000,10", 1000, 10, 42, true},
		{" 50 , 3 , 1 ", 50, 3, 1, true},
		{"1000", 0, 0, 0, false},
		{"a,b", 0, 0, 0, false},
		{"1000,10,7,9", 0, 0, 0, false},
		{"1,10", 0, 0, 0, false},
	}
	for _, tc := range cases {
		n, k, seed, err := parseGenBA(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("parseGenBA(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && (n != tc.n || k != tc.k || seed != tc.seed) {
			t.Errorf("parseGenBA(%q) = %d,%d,%d, want %d,%d,%d", tc.in, n, k, seed, tc.n, tc.k, tc.seed)
		}
	}
}

func TestSourceFromFlagsValidation(t *testing.T) {
	fs := flag.NewFlagSet("promod", flag.ContinueOnError)
	opt := registerFlags(fs)
	if _, err := sourceFromFlags(opt); err == nil {
		t.Error("no source flags accepted")
	}
	*opt.graphPath = "g.txt"
	*opt.genBA = "100,2"
	if _, err := sourceFromFlags(opt); err == nil {
		t.Error("-graph together with -gen-ba accepted")
	}
	*opt.graphPath = ""
	src, err := sourceFromFlags(opt)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name != "ba-n100-k2-seed42" {
		t.Errorf("BA source name = %q", src.Name)
	}
}
