// Command promod runs the promotion-as-a-service daemon: an HTTP server
// answering concurrent centrality and promotion queries over a shared
// immutable snapshot of the host network (see internal/promod and
// DESIGN.md §15).
//
// Usage:
//
//	promod -listen 127.0.0.1:8080 -graph facebook.txt -backend csr
//	promod -listen 127.0.0.1:8080 -gen-ba 1000000,10,42 -debug-addr 127.0.0.1:6060
//	promod -listen :8080 -graph g.txt -max-inflight 64 -queue 128 -tenant-rate 100
//
// The daemon answers until SIGINT/SIGTERM (graceful drain, bounded by
// -drain) and swaps in a freshly loaded snapshot on SIGHUP or
// POST /admin/reload — in-flight requests finish on the snapshot they
// started on.
//
// Endpoints: POST /v1/promote, GET /v1/scores, GET /v1/manifest,
// GET /healthz, POST /admin/reload.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"promonet/internal/obs"
	"promonet/internal/promod"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "promod:", err)
		os.Exit(1)
	}
}

// options is promod's full flag surface, registered on a caller-owned
// FlagSet so the flag-surface test can assert it without global state.
type options struct {
	listen      *string
	graphPath   *string
	genBA       *string
	backend     *string
	maxInflight *int
	queueDepth  *int
	queueWait   *time.Duration
	tenantRate  *float64
	tenantBurst *float64
	exactMaxN   *int
	cacheSize   *int
	drain       *time.Duration
	obs         *obs.ObsFlags
}

// registerFlags defines every promod flag on fs.
func registerFlags(fs *flag.FlagSet) *options {
	return &options{
		listen:      fs.String("listen", "127.0.0.1:8080", "host:port to serve the API on (:0 picks a free port)"),
		graphPath:   fs.String("graph", "", "edge-list file of the host graph (mutually exclusive with -gen-ba)"),
		genBA:       fs.String("gen-ba", "", "generate a Barabási–Albert host instead of loading one: n,k[,seed] (seed defaults to 42)"),
		backend:     fs.String("backend", "csr", "serving representation: csr (frozen snapshot) or map (adjacency map)"),
		maxInflight: fs.Int("max-inflight", 0, "max concurrently executing requests; 0 disables the gate"),
		queueDepth:  fs.Int("queue", 0, "requests allowed to wait for an in-flight slot before shedding"),
		queueWait:   fs.Duration("queue-wait", 0, "max time a queued request waits before shedding (0 = 100ms default)"),
		tenantRate:  fs.Float64("tenant-rate", 0, "per-tenant token refill rate in requests/sec; 0 disables tenant budgets"),
		tenantBurst: fs.Float64("tenant-burst", 10, "per-tenant token bucket capacity"),
		exactMaxN:   fs.Int("exact-max-n", 0, "largest host (nodes) exact-mode rescoring is allowed on (0 = 200000)"),
		cacheSize:   fs.Int("cache", 0, "coalescer result-cache entries (0 = 4096)"),
		drain:       fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget for in-flight requests"),
		obs:         obs.RegisterObsFlags(fs),
	}
}

// parseGenBA parses the -gen-ba spec "n,k[,seed]".
func parseGenBA(spec string) (n, k int, seed int64, err error) {
	parts := strings.Split(spec, ",")
	if len(parts) < 2 || len(parts) > 3 {
		return 0, 0, 0, fmt.Errorf("bad -gen-ba %q: want n,k[,seed]", spec)
	}
	if n, err = strconv.Atoi(strings.TrimSpace(parts[0])); err != nil || n < 2 {
		return 0, 0, 0, fmt.Errorf("bad -gen-ba n in %q", spec)
	}
	if k, err = strconv.Atoi(strings.TrimSpace(parts[1])); err != nil || k < 1 {
		return 0, 0, 0, fmt.Errorf("bad -gen-ba k in %q", spec)
	}
	seed = 42
	if len(parts) == 3 {
		if seed, err = strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64); err != nil {
			return 0, 0, 0, fmt.Errorf("bad -gen-ba seed in %q", spec)
		}
	}
	return n, k, seed, nil
}

// sourceFromFlags resolves the host source from -graph / -gen-ba.
func sourceFromFlags(opt *options) (promod.Source, error) {
	switch {
	case *opt.graphPath != "" && *opt.genBA != "":
		return promod.Source{}, fmt.Errorf("-graph and -gen-ba are mutually exclusive")
	case *opt.graphPath != "":
		return promod.FileSource(*opt.graphPath), nil
	case *opt.genBA != "":
		n, k, seed, err := parseGenBA(*opt.genBA)
		if err != nil {
			return promod.Source{}, err
		}
		return promod.BASource(n, k, seed), nil
	default:
		return promod.Source{}, fmt.Errorf("one of -graph or -gen-ba is required")
	}
}

func run() error {
	opt := registerFlags(flag.CommandLine)
	flag.Parse()

	src, err := sourceFromFlags(opt)
	if err != nil {
		return err
	}
	// The daemon is a long-lived span producer; activate observability
	// unconditionally so /debug/trace on -debug-addr always has spans.
	session, err := opt.obs.Activate("promod", 8192, true)
	if err != nil {
		return err
	}
	defer func() { _ = session.Close() }()

	srv, err := promod.New(promod.Config{
		Source:  src,
		Backend: *opt.backend,
		Admission: promod.AdmissionConfig{
			MaxInflight: *opt.maxInflight,
			QueueDepth:  *opt.queueDepth,
			QueueWait:   *opt.queueWait,
			TenantRate:  *opt.tenantRate,
			TenantBurst: *opt.tenantBurst,
		},
		ExactMaxN:    *opt.exactMaxN,
		CacheEntries: *opt.cacheSize,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(*opt.listen); err != nil {
		return err
	}
	info := srv.Snapshot()
	fmt.Fprintf(os.Stderr, "promod: listening on %s\n", srv.Addr())
	fmt.Fprintf(os.Stderr, "promod: serving %s (%s backend, n=%d m=%d, digest %.12s)\n",
		info.Name, info.Backend, info.N, info.M, info.Digest)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for sig := range sigc {
		if sig == syscall.SIGHUP {
			next, err := srv.Reload()
			if err != nil {
				fmt.Fprintf(os.Stderr, "promod: reload failed, keeping current snapshot: %v\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "promod: swapped in snapshot seq %d (n=%d m=%d, digest %.12s)\n",
				next.Seq, next.N, next.M, next.Digest)
			continue
		}
		fmt.Fprintf(os.Stderr, "promod: %v: draining (up to %v)\n", sig, *opt.drain)
		ctx, cancel := context.WithTimeout(context.Background(), *opt.drain)
		err := srv.Shutdown(ctx)
		cancel()
		return err
	}
	return nil
}
