module promonet

go 1.22
