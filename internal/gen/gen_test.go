package gen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("Path(5): n=%d m=%d, want 5 4", g.N(), g.M())
	}
	if g.Degree(0) != 1 || g.Degree(4) != 1 || g.Degree(2) != 2 {
		t.Error("path endpoint/interior degrees wrong")
	}
	if !g.IsConnected() {
		t.Error("path disconnected")
	}
	if p1 := Path(1); p1.N() != 1 || p1.M() != 0 {
		t.Error("Path(1) should be a single isolated node")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if g.N() != 6 || g.M() != 6 {
		t.Fatalf("Cycle(6): n=%d m=%d, want 6 6", g.N(), g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("cycle degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
}

func TestCyclePanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cycle(2) did not panic")
		}
	}()
	Cycle(2)
}

func TestStar(t *testing.T) {
	g := Star(7)
	if g.Degree(0) != 6 {
		t.Errorf("star hub degree = %d, want 6", g.Degree(0))
	}
	for v := 1; v < 7; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("star leaf degree(%d) = %d, want 1", v, g.Degree(v))
		}
	}
}

func TestClique(t *testing.T) {
	g := Clique(6)
	if g.M() != 15 {
		t.Errorf("Clique(6) m = %d, want 15", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 5 {
			t.Fatalf("clique degree(%d) = %d, want 5", v, g.Degree(v))
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("Grid(3,4) n = %d, want 12", g.N())
	}
	// rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17
	if g.M() != 17 {
		t.Errorf("Grid(3,4) m = %d, want 17", g.M())
	}
	if !g.IsConnected() {
		t.Error("grid disconnected")
	}
}

func TestErdosRenyiExactEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := ErdosRenyi(rng, 50, 200)
	if g.N() != 50 || g.M() != 200 {
		t.Errorf("ER(50,200): n=%d m=%d", g.N(), g.M())
	}
}

func TestErdosRenyiPanicsOnOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overfull ER did not panic")
		}
	}()
	ErdosRenyi(rand.New(rand.NewSource(1)), 4, 10)
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, k := 300, 4
	g := BarabasiAlbert(rng, n, k)
	if g.N() != n {
		t.Fatalf("BA n = %d, want %d", g.N(), n)
	}
	// m = C(k+1, 2) + (n-k-1)*k
	wantM := (k+1)*k/2 + (n-k-1)*k
	if g.M() != wantM {
		t.Errorf("BA m = %d, want %d", g.M(), wantM)
	}
	if !g.IsConnected() {
		t.Error("BA graph disconnected")
	}
	// Preferential attachment must produce a hub noticeably above k.
	if g.MaxDegree() < 3*k {
		t.Errorf("BA max degree = %d, expected a hub >= %d", g.MaxDegree(), 3*k)
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := WattsStrogatz(rng, 100, 3, 0.1)
	if g.N() != 100 {
		t.Fatalf("WS n = %d", g.N())
	}
	// Rewiring preserves edge count.
	if g.M() != 300 {
		t.Errorf("WS m = %d, want 300", g.M())
	}
}

func TestWattsStrogatzZeroBeta(t *testing.T) {
	g := WattsStrogatz(rand.New(rand.NewSource(4)), 20, 2, 0)
	for v := 0; v < 20; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("ring lattice degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestConfigurationModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	degs := make([]int, 200)
	for i := range degs {
		degs[i] = 3
	}
	g := ConfigurationModel(rng, degs)
	if g.N() != 200 {
		t.Fatalf("CM n = %d", g.N())
	}
	// Erased model: realized degree never exceeds requested.
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > 3 {
			t.Fatalf("CM degree(%d) = %d > requested 3", v, g.Degree(v))
		}
	}
	// Most stubs should survive erasure.
	if g.M() < 250 {
		t.Errorf("CM m = %d, expected most of 300 edges to survive", g.M())
	}
}

func TestPowerLawDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	degs := PowerLawDegrees(rng, 5000, 2.2, 2, 100)
	if len(degs) != 5000 {
		t.Fatalf("len = %d", len(degs))
	}
	low, high := 0, 0
	for _, d := range degs {
		if d < 2 || d > 100 {
			t.Fatalf("degree %d outside [2, 100]", d)
		}
		if d <= 4 {
			low++
		}
		if d >= 50 {
			high++
		}
	}
	if low < high {
		t.Errorf("power law not heavy on the left: %d low vs %d high", low, high)
	}
	if high == 0 {
		t.Error("power law produced no tail at all in 5000 samples")
	}
}

func TestCliqueCover(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := CliqueCover(rng, 500, 3, 10, 0.4)
	if g.N() < 500 {
		t.Fatalf("CliqueCover n = %d, want >= 500", g.N())
	}
	// Clique structure implies high clustering; check max degree grew
	// beyond single-clique membership.
	if g.MaxDegree() < 10 {
		t.Errorf("CliqueCover max degree = %d, expected overlap to exceed one clique", g.MaxDegree())
	}
}

func TestTriadicClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := BarabasiAlbert(rng, 200, 3)
	before := g.M()
	TriadicClosure(rng, g, 100)
	if g.M() != before+100 {
		t.Errorf("TriadicClosure added %d edges, want 100", g.M()-before)
	}
}

func TestTriadicClosureEmptyGraph(t *testing.T) {
	g := Path(0)
	TriadicClosure(rand.New(rand.NewSource(9)), g, 10) // must not panic
	if g.M() != 0 {
		t.Error("edges appeared in empty graph")
	}
}

// TestPropertyGeneratorsSimple: every generator emits a simple graph
// (handshake lemma holds and no self-loops by construction of AddEdge).
func TestPropertyGeneratorsSimple(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gs := []interface {
			N() int
			M() int
			Degree(int) int
		}{
			ErdosRenyi(rng, 30, 60),
			BarabasiAlbert(rng, 30, 2),
			WattsStrogatz(rng, 30, 2, 0.3),
			CliqueCover(rng, 30, 3, 6, 0.3),
		}
		for _, g := range gs {
			sum := 0
			for v := 0; v < g.N(); v++ {
				sum += g.Degree(v)
			}
			if sum != 2*g.M() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
