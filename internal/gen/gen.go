// Package gen generates synthetic graphs. The experiment harness uses it
// to build stand-ins for the four SNAP datasets the paper evaluates on
// (Wiki-Vote, CA-HepPh, Epinions, Slashdot), which are not available
// offline. Each generator takes an explicit *rand.Rand so every
// experiment is reproducible from a seed.
//
// All generators return simple undirected graphs. Generators that can
// produce disconnected graphs are typically followed by
// (*graph.Graph).LargestComponent in callers, mirroring the paper's
// preprocessing ("for a disconnected graph, we performed experiments on
// the largest connected component").
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"promonet/internal/graph"
)

// Path returns the path graph with n nodes: 0-1-2-...-(n-1).
func Path(n int) *graph.Graph {
	g := graph.NewWithNodes(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

// Cycle returns the cycle graph with n nodes (n >= 3).
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: Cycle(%d): need n >= 3", n))
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// Star returns the star graph: node 0 connected to nodes 1..n-1.
func Star(n int) *graph.Graph {
	g := graph.NewWithNodes(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// Clique returns the complete graph on n nodes.
func Clique(n int) *graph.Graph {
	g := graph.NewWithNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Grid returns the rows x cols 2D lattice graph.
func Grid(rows, cols int) *graph.Graph {
	g := graph.NewWithNodes(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// ErdosRenyi returns a G(n, m) uniform random graph with exactly m
// distinct edges. It panics if m exceeds the number of possible edges.
func ErdosRenyi(rng *rand.Rand, n, m int) *graph.Graph {
	max := n * (n - 1) / 2
	if m > max {
		panic(fmt.Sprintf("gen: ErdosRenyi(n=%d, m=%d): at most %d edges possible", n, m, max))
	}
	g := graph.NewWithNodes(n)
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: it starts from
// a clique on m0 = k+1 nodes and attaches each subsequent node to k
// distinct existing nodes chosen proportionally to degree. The result is
// connected with heavy-tailed degrees and small diameter, the profile of
// the social graphs in the paper.
func BarabasiAlbert(rng *rand.Rand, n, k int) *graph.Graph {
	if k < 1 || n < k+1 {
		panic(fmt.Sprintf("gen: BarabasiAlbert(n=%d, k=%d): need k >= 1 and n >= k+1", n, k))
	}
	g := Clique(k + 1)
	g.AddNodes(n - (k + 1))
	// targets is the degree-weighted multiset of endpoints: each edge
	// contributes both endpoints, so sampling uniformly from it is
	// preferential attachment.
	targets := make([]int32, 0, 2*k*n)
	g.Edges(func(u, v int) bool {
		targets = append(targets, int32(u), int32(v))
		return true
	})
	for v := k + 1; v < n; v++ {
		added := 0
		for added < k {
			u := int(targets[rng.Intn(len(targets))])
			if u != v && g.AddEdge(u, v) {
				targets = append(targets, int32(u), int32(v))
				added++
			}
		}
	}
	return g
}

// WattsStrogatz returns a small-world graph: a ring lattice where each
// node connects to its k nearest neighbors on each side, with each edge
// rewired to a uniform random endpoint with probability beta. Rewirings
// that would create self-loops or duplicate edges are skipped.
func WattsStrogatz(rng *rand.Rand, n, k int, beta float64) *graph.Graph {
	if k < 1 || n < 2*k+1 {
		panic(fmt.Sprintf("gen: WattsStrogatz(n=%d, k=%d): need n >= 2k+1", n, k))
	}
	g := graph.NewWithNodes(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			g.AddEdge(v, (v+j)%n)
		}
	}
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			if rng.Float64() >= beta {
				continue
			}
			u := (v + j) % n
			if !g.HasEdge(v, u) {
				continue // already rewired away
			}
			w := rng.Intn(n)
			if w == v || g.HasEdge(v, w) {
				continue
			}
			g.RemoveEdge(v, u)
			g.AddEdge(v, w)
		}
	}
	return g
}

// ConfigurationModel returns a simple graph whose degree sequence
// approximates degrees. It uses the erased configuration model: stubs are
// matched uniformly at random and self-loops/multi-edges are dropped, so
// realized degrees can be slightly below the request.
func ConfigurationModel(rng *rand.Rand, degrees []int) *graph.Graph {
	n := len(degrees)
	var stubs []int32
	for v, d := range degrees {
		if d < 0 {
			panic(fmt.Sprintf("gen: ConfigurationModel: negative degree %d for node %d", d, v))
		}
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := graph.NewWithNodes(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := int(stubs[i]), int(stubs[i+1])
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// PowerLawDegrees samples n degrees from a discrete power law with
// exponent gamma on [dmin, dmax], the degree profile of the social
// networks in the paper's Table VI.
func PowerLawDegrees(rng *rand.Rand, n int, gamma float64, dmin, dmax int) []int {
	if dmin < 1 || dmax < dmin {
		panic(fmt.Sprintf("gen: PowerLawDegrees: bad range [%d, %d]", dmin, dmax))
	}
	// Build the (unnormalized) CDF once.
	weights := make([]float64, dmax-dmin+1)
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(dmin+i), -gamma)
		total += weights[i]
	}
	out := make([]int, n)
	for i := range out {
		r := rng.Float64() * total
		acc := 0.0
		for j, w := range weights {
			acc += w
			if r <= acc {
				out[i] = dmin + j
				break
			}
		}
		if out[i] == 0 {
			out[i] = dmax
		}
	}
	return out
}

// CliqueCover returns an overlapping-clique graph modeling a
// co-authorship network: papers are cliques whose sizes are drawn from
// sizes[], and each paper's authors are a mix of new and existing nodes.
// This yields the high-degeneracy, longer-diameter profile of CA-HepPh.
// n is the target node count; generation stops once reached.
func CliqueCover(rng *rand.Rand, n int, minSize, maxSize int, reuse float64) *graph.Graph {
	if minSize < 2 || maxSize < minSize {
		panic(fmt.Sprintf("gen: CliqueCover: bad clique size range [%d, %d]", minSize, maxSize))
	}
	g := graph.NewWithNodes(0)
	for g.N() < n {
		size := minSize + rng.Intn(maxSize-minSize+1)
		members := make([]int, 0, size)
		used := make(map[int]bool, size)
		for len(members) < size {
			if g.N() > 0 && rng.Float64() < reuse {
				v := rng.Intn(g.N())
				if used[v] {
					continue
				}
				used[v] = true
				members = append(members, v)
			} else {
				v := g.AddNode()
				used[v] = true
				members = append(members, v)
			}
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				g.AddEdge(members[i], members[j])
			}
		}
	}
	return g
}

// TriadicClosure adds up to extra edges to g by closing open triangles:
// it repeatedly picks a random node and connects two of its random
// neighbors. This raises clustering and degeneracy without changing the
// degree profile much, tightening BA output toward real social graphs.
//
//promolint:allow mutation-safety -- generator code: g is the graph under construction, not a black-box host
func TriadicClosure(rng *rand.Rand, g *graph.Graph, extra int) {
	n := g.N()
	if n == 0 {
		return
	}
	attempts := 0
	for added := 0; added < extra && attempts < 50*extra+100; attempts++ {
		v := rng.Intn(n)
		d := g.Degree(v)
		if d < 2 {
			continue
		}
		adj := g.Adjacency(v)
		a := int(adj[rng.Intn(d)])
		b := int(adj[rng.Intn(d)])
		if a != b && g.AddEdge(a, b) {
			added++
		}
	}
}
