package core_test

import (
	"fmt"

	"promonet/internal/core"
	"promonet/internal/datasets"
)

// The library's headline call: promote a node's closeness ranking on a
// black-box host with the principle-guided strategy of Table I.
func ExamplePromote() {
	g := datasets.Fig1()
	_, outcome, err := core.Promote(g, core.ClosenessMeasure{}, datasets.V4, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rank %d -> %d (Δ_R = %+d)\n", outcome.RankBefore, outcome.RankAfter, outcome.DeltaRank)
	fmt.Printf("properties: gain=%v dominance=%v boost=%v\n",
		outcome.Check.Gain, outcome.Check.Dominance, outcome.Check.Boost)
	// Output:
	// rank 9 -> 5 (Δ_R = +4)
	// properties: gain=true dominance=true boost=true
}

// Strategies can be applied directly when only the updated graph is
// needed, without any measurement.
func ExampleStrategy_Apply() {
	g := datasets.Fig1()
	s := core.Strategy{Target: datasets.V4, Size: 4, Type: core.MultiPoint}
	g2, inserted, err := s.Apply(g)
	if err != nil {
		panic(err)
	}
	fmt.Println(s)
	fmt.Printf("G: %v, G': %v, inserted %v\n", g, g2, inserted)
	// Output:
	// [3, 4, multi-point]
	// G: graph(n=10, m=15), G': graph(n=14, m=19), inserted [10 11 12 13]
}

// The theoretical sufficient size of Remark 2 for each measure.
func ExampleGuaranteedSize() {
	g := datasets.Fig1()
	p, needed, err := core.GuaranteedSize(g, core.ClosenessMeasure{}, datasets.V4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("needed=%v p=%d\n", needed, p)
	// Output:
	// needed=true p=1
}

// Owner-side detection of a promotion (Remark 1 future work).
func ExampleDetect() {
	g := datasets.Fig1()
	g2, _, err := (core.Strategy{Target: datasets.V4, Size: 5, Type: core.SingleClique}).Apply(g)
	if err != nil {
		panic(err)
	}
	report, err := core.Detect(g, g2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("suspicious=%v strategy=%v around node %d\n",
		report.Suspicious, report.SuspectedStrategy, report.MaxDegreeJumpNode)
	// Output:
	// suspicious=true strategy=single-clique around node 3
}
