package core

import (
	"math"
	"math/rand"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/datasets"
	"promonet/internal/gen"
)

func TestPrincipleString(t *testing.T) {
	if MaximumGain.String() != "maximum gain" || MinimumLoss.String() != "minimum loss" {
		t.Error("principle names wrong")
	}
	if StrategyType(9).String() == "" || Principle(9).String() == "" {
		t.Error("unknown enum values must still stringify")
	}
}

func TestCheckMaximumGainCraftedVectors(t *testing.T) {
	// n = 3 original nodes, 2 inserted; target = 0.
	cases := []struct {
		name          string
		before, after []float64
		gain, dom     bool
		boost         bool
	}{
		{
			name:   "all properties hold",
			before: []float64{1, 5, 2},
			after:  []float64{7, 5.5, 2, 1, 1}, // t gains 6, others <= 0.5, t overtakes node 1
			gain:   true, dom: true, boost: true,
		},
		{
			name:   "another node gains more",
			before: []float64{1, 5, 2},
			after:  []float64{2, 9, 2, 0, 0},
			gain:   false, dom: true, boost: false,
		},
		{
			name:   "a node loses score",
			before: []float64{1, 5, 2},
			after:  []float64{3, 4, 2, 0, 0}, // node 1 lost: violates Δ >= 0
			gain:   false, dom: true, boost: true,
		},
		{
			name:   "inserted node dominates",
			before: []float64{1, 5, 2},
			after:  []float64{6, 5, 2, 8, 0},
			gain:   true, dom: false, boost: true,
		},
		{
			name:   "no higher node existed (vacuous boost)",
			before: []float64{9, 5, 2},
			after:  []float64{12, 5, 2, 0, 0},
			gain:   true, dom: true, boost: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := CheckMaximumGain(tc.before, tc.after, 0)
			if c.Gain != tc.gain || c.Dominance != tc.dom || c.Boost != tc.boost {
				t.Errorf("got gain=%v dom=%v boost=%v, want %v %v %v",
					c.Gain, c.Dominance, c.Boost, tc.gain, tc.dom, tc.boost)
			}
		})
	}
}

func TestCheckMinimumLossCraftedVectors(t *testing.T) {
	// Reciprocal scores (farness-like): smaller is better.
	beforeR := []float64{10, 6, 8}
	afterR := []float64{12, 11, 13, 20, 20} // t loses 2, others lose 5; inserted worst
	before := reciprocals(beforeR)
	after := reciprocals(afterR)
	c := CheckMinimumLoss(beforeR, afterR, before, after, 0)
	if !c.Gain {
		t.Errorf("minimum property should hold: %+v", c)
	}
	if !c.Dominance {
		t.Errorf("dominance should hold: %+v", c)
	}
	// t's score 1/12 overtook node 2's 1/13 (was 1/8 > 1/10): boost.
	if !c.Boost {
		t.Errorf("boost should hold: %+v", c)
	}
	if c.TargetVariation != 2 {
		t.Errorf("Δ̄(t) = %v, want 2", c.TargetVariation)
	}

	// Target losing more than another node violates the minimum
	// property.
	badAfterR := []float64{18, 7, 9, 20, 20}
	c = CheckMinimumLoss(beforeR, badAfterR, before, reciprocals(badAfterR), 0)
	if c.Gain {
		t.Errorf("minimum property should fail when target loses most: %+v", c)
	}

	// A shrinking reciprocal (score increase) also violates it
	// (footnote 5: Δ̄ must be >= 0).
	shrinkR := []float64{9, 7, 9, 20, 20}
	c = CheckMinimumLoss(beforeR, shrinkR, before, reciprocals(shrinkR), 0)
	if c.Gain {
		t.Errorf("negative reciprocal variation must fail the property: %+v", c)
	}
}

func TestCheckStrategyDispatch(t *testing.T) {
	g := datasets.Fig1()
	// Maximum-gain path.
	c, err := CheckStrategy(g, BetweennessMeasure{Counting: centrality.PairsUnordered},
		Strategy{datasets.V4, 4, MultiPoint})
	if err != nil {
		t.Fatal(err)
	}
	if c.Principle != MaximumGain || !c.Holds() {
		t.Errorf("BC check: %+v", c)
	}
	// Minimum-loss path with reciprocal scorer.
	c, err = CheckStrategy(g, ClosenessMeasure{}, Strategy{datasets.V4, 4, MultiPoint})
	if err != nil {
		t.Fatal(err)
	}
	if c.Principle != MinimumLoss || !c.Holds() {
		t.Errorf("CC check: %+v", c)
	}
	// Invalid strategy surfaces the error.
	if _, err := CheckStrategy(g, ClosenessMeasure{}, Strategy{99, 4, MultiPoint}); err == nil {
		t.Error("invalid strategy accepted")
	}
}

// TestLemmaS11ClosedForm: under multi-point, every inserted node's
// farness is exactly ĈC′(t) + n + p − 2 (one hop to t, then t's
// distances; w is not its own destination). This is the closed form
// behind the dominance proof of Lemma S.8/S.11, checked on random
// hosts.
func TestLemmaS11ClosedForm(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.BarabasiAlbert(rng, 20+rng.Intn(40), 2)
		target := rng.Intn(g.N())
		p := 1 + rng.Intn(8)
		g2, ins, err := (Strategy{target, p, MultiPoint}).Apply(g)
		if err != nil {
			t.Fatal(err)
		}
		far := centrality.Farness(g2)
		want := far[target] + int64(g.N()+p-2)
		for _, w := range ins {
			if far[w] != want {
				t.Fatalf("seed %d: farness(w=%d) = %d, want ĈC'(t)+n+p-2 = %d",
					seed, w, far[w], want)
			}
		}
	}
}

// TestFrozenStructureInvariants verifies Lemmas S.2 and S.12 directly:
// multi-point insertion changes neither the pairwise distances nor the
// shortest-path counts among the original nodes.
func TestFrozenStructureInvariants(t *testing.T) {
	g := gen.Grid(4, 5)
	g2, _, err := (Strategy{7, 5, MultiPoint}).Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.N(); s++ {
		before := centrality.Distances(g, s)
		after := centrality.Distances(g2, s)
		for v := 0; v < g.N(); v++ {
			if before[v] != after[v] {
				t.Fatalf("dist(%d, %d) changed: %d -> %d (violates Lemma S.12)", s, v, before[v], after[v])
			}
		}
	}
	// Lemma 5.1's closed form: the target's betweenness gain under
	// multi-point is exactly (n-1)p + C(p,2) pairs (unordered), and
	// every other node gains at most (n-1)p·(its pair dependency) — in
	// particular the *score restricted to pairs within V* is unchanged.
	// Check the closed form on the target.
	m := BetweennessMeasure{Counting: centrality.PairsUnordered}
	before := m.Scores(g)
	after := m.Scores(g2)
	n, p := g.N(), 5
	wantGain := float64((n-1)*p + p*(p-1)/2)
	if gain := after[7] - before[7]; math.Abs(gain-wantGain) > 1e-9 {
		t.Errorf("target BC gain = %v, want closed-form %v", gain, wantGain)
	}
}
