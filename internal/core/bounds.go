package core

import (
	"context"
	"fmt"
	"math"

	"promonet/internal/centrality"
	"promonet/internal/engine"
	"promonet/internal/graph"
	"promonet/internal/obs"
)

// This file implements the theoretical promotion sizes p′ of Remark 2:
// with p > p′ the boost property is guaranteed, so by Theorems 5.1/5.2
// the target's ranking strictly improves.

// BoostSizeBetweenness returns the p′ of Lemma 5.3: with the multi-point
// strategy and p > p′ = √(BC(v) − BC(t)) + 1, the target's betweenness
// exceeds that of a node v that scored BC(v) > BC(t) in G. Scores must
// use the unordered-pairs convention, under which
// Δ_C(t) − Δ_C(v) >= p(p−1)/2 + ... >= (p−1)².
func BoostSizeBetweenness(bcT, bcV float64) float64 {
	if bcV <= bcT {
		return 0
	}
	return math.Sqrt(bcV-bcT) + 1
}

// BoostSizeCoreness returns the p′ of Lemma 5.6: with the single-clique
// strategy and p > p′ = RC(v) + 1, the target's coreness exceeds that of
// a node v with RC(v) > RC(t) in G.
func BoostSizeCoreness(rcV int) float64 { return float64(rcV + 1) }

// BoostSizeCloseness returns the p′ of Lemma 5.9: with the multi-point
// strategy and p > p′ = (ĈC(t) − ĈC(v)) / dist(v, t), the target's
// closeness exceeds that of a node v with CC(v) > CC(t) in G.
func BoostSizeCloseness(farT, farV int64, distVT int) float64 {
	if distVT <= 0 {
		return math.Inf(1)
	}
	if farV >= farT {
		return 0
	}
	return float64(farT-farV) / float64(distVT)
}

// BoostSizeEccentricity returns the p′ of Lemma 5.12: with the
// double-line strategy and p > p′ = 2·ĒC(t), the target's eccentricity
// exceeds that of every node v with EC(v) > EC(t) in G. (The paper
// writes 2×EC(t); by the proof — dist_G′(t, Δ_V) = p/2 must exceed
// dist_G′(t, V) = ĒC(t) — the bound is in terms of the reciprocal score
// ĒC, the max distance.)
func BoostSizeEccentricity(eccRecipT int) float64 { return 2 * float64(eccRecipT) }

// GuaranteedSize returns the smallest promotion size p that provably
// improves t's ranking of measure m on g, i.e. the smallest integer
// exceeding the measure's p′ bound taken against the easiest-to-overtake
// node ranked strictly above t. It returns (0, false) when t is already
// at rank 1, so no promotion is needed.
//
// Supported measures: betweenness, coreness, closeness, eccentricity
// (the four with proved lemmas). Other measures return an error.
func GuaranteedSize(g *graph.Graph, m Measure, t int) (int, bool, error) {
	_, sp := obs.Start(context.Background(), "promote/guaranteed-size")
	sp.Str("measure", m.Name())
	sp.Int("n", g.N())
	defer sp.End()
	if t < 0 || t >= g.N() {
		return 0, false, fmt.Errorf("core: target %d outside [0, %d)", t, g.N())
	}
	// All four exact score vectors come from the shared engine: report
	// pipelines call GuaranteedSize for every (measure, target) pair on
	// the same host graph, and the memoized sweep/Brandes/peel runs once.
	eng := engine.Default()
	switch m.(type) {
	case BetweennessMeasure:
		bc := eng.Scores(g, engine.Betweenness(centrality.PairsUnordered))
		best := math.Inf(1)
		for v := range bc {
			if bc[v] > bc[t] {
				if p := BoostSizeBetweenness(bc[t], bc[v]); p < best {
					best = p
				}
			}
		}
		return finishBound(best)
	case CorenessMeasure:
		rc := eng.CorenessInt(g)
		best := math.Inf(1)
		for v := range rc {
			if rc[v] > rc[t] {
				if p := BoostSizeCoreness(rc[v]); p < best {
					best = p
				}
			}
		}
		return finishBound(best)
	case ClosenessMeasure:
		far := eng.FarnessInt64(g)
		dist := centrality.Distances(g, t)
		best := math.Inf(1)
		for v := range far {
			if v != t && far[v] < far[t] && dist[v] > 0 {
				if p := BoostSizeCloseness(far[t], far[v], int(dist[v])); p < best {
					best = p
				}
			}
		}
		return finishBound(best)
	case EccentricityMeasure:
		ecc := eng.Scores(g, engine.ReciprocalEccentricity())
		hasHigher := false
		for v := range ecc {
			if ecc[v] < ecc[t] && ecc[v] > 0 {
				hasHigher = true
				break
			}
		}
		if !hasHigher {
			return 0, false, nil
		}
		return finishBound(BoostSizeEccentricity(int(ecc[t])))
	default:
		return 0, false, fmt.Errorf("core: no p′ bound proved for measure %q", m.Name())
	}
}

// finishBound converts the real-valued bound p′ into the smallest
// integer promotion size strictly exceeding it.
func finishBound(bound float64) (int, bool, error) {
	if math.IsInf(bound, 1) {
		return 0, false, nil // already rank 1 among comparable nodes
	}
	p := int(math.Floor(bound)) + 1
	if p < 1 {
		p = 1
	}
	return p, true, nil
}
