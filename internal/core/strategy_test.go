package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"promonet/internal/datasets"
	"promonet/internal/gen"
)

func TestStrategyString(t *testing.T) {
	s := Strategy{Target: 3, Size: 4, Type: MultiPoint}
	if got := s.String(); got != "[3, 4, multi-point]" {
		t.Errorf("String = %q", got)
	}
}

func TestStrategyValidate(t *testing.T) {
	g := gen.Path(5)
	cases := []struct {
		name string
		s    Strategy
		ok   bool
	}{
		{"valid", Strategy{2, 3, MultiPoint}, true},
		{"negative target", Strategy{-1, 3, MultiPoint}, false},
		{"target too large", Strategy{5, 3, MultiPoint}, false},
		{"zero size", Strategy{2, 0, MultiPoint}, false},
		{"bad type", Strategy{2, 3, StrategyType(9)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate(g)
			if (err == nil) != tc.ok {
				t.Errorf("Validate(%v) err = %v, want ok=%v", tc.s, err, tc.ok)
			}
		})
	}
}

func TestStrategyNumEdges(t *testing.T) {
	cases := []struct {
		s    Strategy
		want int
	}{
		{Strategy{0, 4, MultiPoint}, 4},
		{Strategy{0, 4, DoubleLine}, 4},
		{Strategy{0, 4, SingleClique}, 10}, // 4 spokes + C(4,2)=6
		{Strategy{0, 1, SingleClique}, 1},
	}
	for _, tc := range cases {
		if got := tc.s.NumEdges(); got != tc.want {
			t.Errorf("%v NumEdges = %d, want %d", tc.s, got, tc.want)
		}
	}
}

func TestMultiPointShape(t *testing.T) {
	g := datasets.Fig1()
	g2, ins, err := Strategy{datasets.V4, 4, MultiPoint}.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || g.M() != 15 {
		t.Fatal("Apply mutated the original graph")
	}
	if g2.N() != 14 || g2.M() != 19 {
		t.Fatalf("G': n=%d m=%d, want 14 19", g2.N(), g2.M())
	}
	for _, w := range ins {
		if g2.Degree(w) != 1 || !g2.HasEdge(w, datasets.V4) {
			t.Errorf("inserted node %d: degree %d, edge-to-target=%v", w, g2.Degree(w), g2.HasEdge(w, datasets.V4))
		}
	}
}

func TestDoubleLineShapeEven(t *testing.T) {
	g := gen.Path(3)
	g2, ins, err := Strategy{1, 4, DoubleLine}.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	// Two chains of 2 off node 1: edges (1,w0),(w0,w1),(1,w2),(w2,w3).
	if g2.M() != g.M()+4 {
		t.Fatalf("m = %d, want %d", g2.M(), g.M()+4)
	}
	if !g2.HasEdge(1, ins[0]) || !g2.HasEdge(ins[0], ins[1]) {
		t.Error("first chain malformed")
	}
	if !g2.HasEdge(1, ins[2]) || !g2.HasEdge(ins[2], ins[3]) {
		t.Error("second chain malformed")
	}
	if g2.HasEdge(ins[1], ins[2]) {
		t.Error("chains must be disjoint")
	}
	// Chain ends have degree 1; interior degree 2.
	if g2.Degree(ins[1]) != 1 || g2.Degree(ins[3]) != 1 {
		t.Error("chain ends should have degree 1")
	}
	if g2.Degree(ins[0]) != 2 || g2.Degree(ins[2]) != 2 {
		t.Error("chain interiors should have degree 2")
	}
}

func TestDoubleLineShapeOdd(t *testing.T) {
	g := gen.Path(3)
	g2, ins, err := Strategy{0, 5, DoubleLine}.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	// |S1| = 3, |S2| = 2 (footnote 4: |S1| - |S2| = 1).
	if !g2.HasEdge(0, ins[0]) || !g2.HasEdge(ins[0], ins[1]) || !g2.HasEdge(ins[1], ins[2]) {
		t.Error("long chain malformed")
	}
	if !g2.HasEdge(0, ins[3]) || !g2.HasEdge(ins[3], ins[4]) {
		t.Error("short chain malformed")
	}
	if g2.M() != g.M()+5 {
		t.Errorf("double-line must add exactly p edges; added %d", g2.M()-g.M())
	}
}

func TestDoubleLineSizeOne(t *testing.T) {
	g := gen.Path(3)
	g2, ins, err := Strategy{0, 1, DoubleLine}.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || !g2.HasEdge(0, ins[0]) {
		t.Error("p=1 double-line should degenerate to a single pendant")
	}
}

func TestSingleCliqueShape(t *testing.T) {
	g := gen.Path(4)
	g2, ins, err := Strategy{2, 4, SingleClique}.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M()+10 {
		t.Fatalf("added %d edges, want 10", g2.M()-g.M())
	}
	// Δ_V ∪ {t} is a clique: every pair adjacent.
	members := append([]int{2}, ins...)
	for i, a := range members {
		for _, b := range members[i+1:] {
			if !g2.HasEdge(a, b) {
				t.Errorf("clique edge (%d, %d) missing", a, b)
			}
		}
	}
}

// TestPropertyStrategiesNeverTouchOriginal: all strategies freeze the
// original topology — adjacency among V is bit-identical after Apply.
func TestPropertyStrategiesNeverTouchOriginal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 10+rng.Intn(20), 30)
		n := g.N()
		target := rng.Intn(n)
		p := 1 + rng.Intn(6)
		for _, typ := range []StrategyType{MultiPoint, DoubleLine, SingleClique} {
			g2, _, err := Strategy{target, p, typ}.Apply(g)
			if err != nil {
				return false
			}
			// Edges among original nodes unchanged, in both directions.
			for v := 0; v < n; v++ {
				for _, u := range g2.Adjacency(v) {
					if int(u) < n && !g.HasEdge(v, int(u)) {
						return false
					}
				}
			}
			ok := true
			g.Edges(func(u, v int) bool {
				if !g2.HasEdge(u, v) {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
			// No inserted node may link to an original node other than
			// through the strategy's defined attachment points.
			for _, w := range g2.EdgeList() {
				u, v := w[0], w[1]
				if u >= n && v < n && v != target {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestApplyInPlace(t *testing.T) {
	g := gen.Path(3)
	ins, err := Strategy{1, 2, MultiPoint}.ApplyInPlace(g)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 4 {
		t.Errorf("in-place apply: n=%d m=%d, want 5 4", g.N(), g.M())
	}
	if !g.HasEdge(1, ins[0]) || !g.HasEdge(1, ins[1]) {
		t.Error("in-place edges missing")
	}
}

func TestApplyRejectsInvalid(t *testing.T) {
	g := gen.Path(3)
	if _, _, err := (Strategy{7, 2, MultiPoint}).Apply(g); err == nil {
		t.Error("Apply with bad target succeeded")
	}
	if _, err := (Strategy{0, 0, MultiPoint}).ApplyInPlace(g); err == nil {
		t.Error("ApplyInPlace with zero size succeeded")
	}
}
