package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"promonet/internal/centrality"
	"promonet/internal/datasets"
	"promonet/internal/gen"
)

func bcUnordered() BetweennessMeasure {
	return BetweennessMeasure{Counting: centrality.PairsUnordered}
}

// TestTableIV reproduces the paper's Table IV exactly: betweenness
// before/after [v4, 4, multi-point] on the Fig. 1 graph, rankings, and
// the maximum-gain property check of Example 5.1.
func TestTableIV(t *testing.T) {
	g := datasets.Fig1()
	_, o, err := Promote(g, bcUnordered(), datasets.V4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range datasets.Fig1Betweenness {
		if math.Abs(o.Before[v]-want) > 1e-9 {
			t.Errorf("BC(v%d) = %v, want %v", v+1, o.Before[v], want)
		}
	}
	for v, want := range datasets.Fig1BetweennessAfterMP4 {
		if math.Abs(o.After[v]-want) > 1e-9 {
			t.Errorf("BC'(v%d) = %v, want %v", v+1, o.After[v], want)
		}
	}
	// Inserted nodes keep betweenness zero (Lemma S.6 / dominance).
	for _, w := range o.Inserted {
		if o.After[w] != 0 {
			t.Errorf("BC'(w%d) = %v, want 0", w, o.After[w])
		}
	}
	// Rankings: R(v4) = 6 -> R'(v4) = 1 per Table IV; Δ_R = 5.
	if o.RankBefore != 6 || o.RankAfter != 1 || o.DeltaRank != 5 {
		t.Errorf("ranks %d -> %d (Δ=%d), want 6 -> 1 (Δ=5)", o.RankBefore, o.RankAfter, o.DeltaRank)
	}
	// Example 5.1: Δ_C(v4) = 42 is the maximum score variation.
	if math.Abs(o.ScoreVariation-42) > 1e-9 {
		t.Errorf("Δ_C(v4) = %v, want 42", o.ScoreVariation)
	}
	if !o.Check.Holds() {
		t.Errorf("maximum-gain check failed: %+v", o.Check)
	}
	if !o.Effective() {
		t.Error("promotion not effective")
	}
}

// TestTableV reproduces Table V: reciprocal closeness before/after
// [v4, 4, multi-point], and the minimum-loss check of Example 5.2.
func TestTableV(t *testing.T) {
	g := datasets.Fig1()
	_, o, err := Promote(g, ClosenessMeasure{}, datasets.V4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range datasets.Fig1Farness {
		if o.BeforeRecip[v] != float64(want) {
			t.Errorf("farness(v%d) = %v, want %d", v+1, o.BeforeRecip[v], want)
		}
	}
	for v, want := range datasets.Fig1FarnessAfterMP4 {
		if o.AfterRecip[v] != float64(want) {
			t.Errorf("farness'(v%d) = %v, want %d", v+1, o.AfterRecip[v], want)
		}
	}
	// Inserted nodes: ĈC'(w) = 39 per Table V.
	for _, w := range o.Inserted {
		if o.AfterRecip[w] != 39 {
			t.Errorf("farness'(w%d) = %v, want 39", w, o.AfterRecip[w])
		}
	}
	// Ranks: R(v4) = 9 -> R'(v4) = 5; Δ_R = 4 (Example 5.2).
	if o.RankBefore != 9 || o.RankAfter != 5 || o.DeltaRank != 4 {
		t.Errorf("ranks %d -> %d (Δ=%d), want 9 -> 5 (Δ=4)", o.RankBefore, o.RankAfter, o.DeltaRank)
	}
	// Example 5.2: Δ̄_C(v4) = 4 is the minimum reciprocal variation.
	if o.Check.TargetVariation != 4 {
		t.Errorf("Δ̄_C(v4) = %v, want 4", o.Check.TargetVariation)
	}
	if !o.Check.Holds() {
		t.Errorf("minimum-loss check failed: %+v", o.Check)
	}
}

// TestTableIII reproduces Table III: closeness with p = 2 (the Fig. 2
// update), including the inserted nodes' scores and all rankings.
func TestTableIII(t *testing.T) {
	g := datasets.Fig1()
	g2, o, err := Promote(g, ClosenessMeasure{}, datasets.V4, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantRecip := []float64{20, 30, 19, 25, 20, 18, 26, 26, 24, 34, 35, 35}
	for v, want := range wantRecip {
		if o.AfterRecip[v] != want {
			t.Errorf("farness'(node %d) = %v, want %v (Table III)", v, o.AfterRecip[v], want)
		}
	}
	wantRank := []int{3, 9, 2, 6, 3, 1, 7, 7, 5, 10, 11, 11}
	ranks := centrality.Ranks(o.After)
	for v, want := range wantRank {
		if ranks[v] != want {
			t.Errorf("R'(node %d) = %d, want %d (Table III)", v, ranks[v], want)
		}
	}
	// Δ_R(v4) = 9 - 6 = 3 (Example 3.2).
	if o.DeltaRank != 3 {
		t.Errorf("Δ_R(v4) = %d, want 3", o.DeltaRank)
	}
	if g2.N() != 12 {
		t.Errorf("G' has %d nodes, want 12", g2.N())
	}
}

// TestCorenessSingleCliqueFig1: single-clique with p=4 turns v4 (RC=1)
// into a 4-core member; the max-gain properties must hold.
func TestCorenessSingleCliqueFig1(t *testing.T) {
	g := datasets.Fig1()
	_, o, err := Promote(g, CorenessMeasure{}, datasets.V4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if o.Before[datasets.V4] != 1 {
		t.Fatalf("RC(v4) = %v, want 1", o.Before[datasets.V4])
	}
	if o.After[datasets.V4] != 4 {
		t.Errorf("RC'(v4) = %v, want 4 (member of a 5-clique)", o.After[datasets.V4])
	}
	// Lemma S.8: inserted nodes have coreness exactly |Δ_V| = 4.
	for _, w := range o.Inserted {
		if o.After[w] != 4 {
			t.Errorf("RC'(w%d) = %v, want 4", w, o.After[w])
		}
	}
	if !o.Check.Holds() {
		t.Errorf("maximum-gain check failed for coreness: %+v", o.Check)
	}
	if !o.Effective() {
		t.Error("coreness promotion not effective")
	}
}

// TestEccentricityDoubleLineFig1: double-line promotion of a peripheral
// node must satisfy the minimum-loss properties.
func TestEccentricityDoubleLineFig1(t *testing.T) {
	g := datasets.Fig1()
	// v10 has the largest reciprocal eccentricity; promote it with a
	// p exceeding the Lemma 5.12 bound 2·ĒC(t).
	eccR := centrality.ReciprocalEccentricity(g)
	p := int(2*eccR[datasets.V10]) + 2
	_, o, err := Promote(g, EccentricityMeasure{}, datasets.V10, p)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Check.Gain {
		t.Errorf("minimum property failed: %+v", o.Check)
	}
	if !o.Check.Dominance {
		t.Errorf("dominance property failed: %+v", o.Check)
	}
	if !o.Effective() {
		t.Errorf("eccentricity promotion with p=%d > 2·ĒC(t) not effective: %v", p, o)
	}
}

// TestPropertyTableIPairs: on random connected hosts, every
// principle-guided (measure, strategy) pair from Table I satisfies its
// gain/loss and dominance properties for arbitrary p — the universally
// quantified part of Lemmas 5.1/5.2, 5.4/5.5, 5.7/5.8, 5.10/5.11.
func TestPropertyTableIPairs(t *testing.T) {
	measures := []Measure{bcUnordered(), CorenessMeasure{}, ClosenessMeasure{}, EccentricityMeasure{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.BarabasiAlbert(rng, 12+rng.Intn(25), 2)
		target := rng.Intn(g.N())
		p := 1 + rng.Intn(8)
		for _, m := range measures {
			_, o, err := Promote(g, m, target, p)
			if err != nil {
				return false
			}
			if !o.Check.Gain || !o.Check.Dominance {
				t.Logf("seed %d, measure %s, target %d, p %d: %+v", seed, m.Name(), target, p, o.Check)
				return false
			}
			// Theorems 5.3-5.6 guarantee Δ_R >= 0 always (never a
			// demotion) for the principle-guided strategy.
			if o.DeltaRank < 0 {
				t.Logf("seed %d, measure %s: demotion Δ_R=%d", seed, m.Name(), o.DeltaRank)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGuaranteedSizeSufficient: promoting with the p returned by
// GuaranteedSize always strictly improves the ranking (Theorems 5.3-5.6
// combined with the lemma bounds).
func TestPropertyGuaranteedSizeSufficient(t *testing.T) {
	measures := []Measure{bcUnordered(), CorenessMeasure{}, ClosenessMeasure{}, EccentricityMeasure{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.BarabasiAlbert(rng, 15+rng.Intn(20), 2)
		target := rng.Intn(g.N())
		for _, m := range measures {
			_, o, err := PromoteGuaranteed(g, m, target)
			if err != nil {
				t.Logf("seed %d, measure %s: %v", seed, m.Name(), err)
				return false
			}
			if o == nil {
				continue // already rank 1
			}
			if !o.Effective() {
				t.Logf("seed %d, measure %s, target %d, p %d: Δ_R=%d",
					seed, m.Name(), target, o.Strategy.Size, o.DeltaRank)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPromoteRejectsInvalid(t *testing.T) {
	g := gen.Path(4)
	if _, _, err := Promote(g, ClosenessMeasure{}, 10, 3); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, _, err := Promote(g, ClosenessMeasure{}, 1, 0); err == nil {
		t.Error("zero size accepted")
	}
}

func TestPromoteGuaranteedAtRankOne(t *testing.T) {
	g := gen.Star(8)
	// The hub is rank 1 for closeness already.
	g2, o, err := PromoteGuaranteed(g, ClosenessMeasure{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Errorf("expected nil outcome at rank 1, got %v", o)
	}
	if g2 != g {
		t.Error("graph should be returned unchanged at rank 1")
	}
}

func TestPromoteWithMismatchedStrategy(t *testing.T) {
	// Ablation: single-clique for closeness violates no theorem here,
	// but multi-point for eccentricity can fail the boost property —
	// what matters is that PromoteWith runs and reports honestly.
	g := datasets.Fig1()
	_, o, err := PromoteWith(g, ClosenessMeasure{}, Strategy{datasets.V4, 4, SingleClique})
	if err != nil {
		t.Fatal(err)
	}
	if o.Strategy.Type != SingleClique {
		t.Error("outcome did not record the explicit strategy")
	}
}

func TestMeasureByName(t *testing.T) {
	for _, name := range []string{"betweenness", "BC", "coreness", "RC", "closeness", "CC",
		"eccentricity", "EC", "harmonic", "HC", "degree", "DC", "katz", "KC",
		"current-flow", "CF"} {
		if _, err := MeasureByName(name); err != nil {
			t.Errorf("MeasureByName(%q): %v", name, err)
		}
	}
	if _, err := MeasureByName("pagerank"); err == nil {
		t.Error("unknown measure accepted")
	}
}

func TestMeasureMetadataMatchesTableI(t *testing.T) {
	cases := []struct {
		m         Measure
		principle Principle
		strat     StrategyType
	}{
		{BetweennessMeasure{}, MaximumGain, MultiPoint},
		{CorenessMeasure{}, MaximumGain, SingleClique},
		{ClosenessMeasure{}, MinimumLoss, MultiPoint},
		{EccentricityMeasure{}, MinimumLoss, DoubleLine},
	}
	for _, tc := range cases {
		if tc.m.Principle() != tc.principle {
			t.Errorf("%s principle = %v, want %v", tc.m.Name(), tc.m.Principle(), tc.principle)
		}
		if tc.m.Strategy() != tc.strat {
			t.Errorf("%s strategy = %v, want %v", tc.m.Name(), tc.m.Strategy(), tc.strat)
		}
	}
}

// TestExtensionMeasuresPromote: the Section VI-B extension measures
// (harmonic, degree, Katz, current-flow) also satisfy their declared
// principles under their recommended strategies on random hosts.
func TestExtensionMeasuresPromote(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := gen.BarabasiAlbert(rng, 40, 2)
	for _, m := range []Measure{HarmonicMeasure{}, DegreeMeasure{}, KatzMeasure{}, CurrentFlowMeasure{}} {
		// Pick a low-ranked target.
		scores := m.Scores(g)
		target := 0
		for v := range scores {
			if scores[v] < scores[target] {
				target = v
			}
		}
		_, o, err := Promote(g, m, target, 12)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !o.Check.Gain || !o.Check.Dominance {
			t.Errorf("%s: property check failed: %+v", m.Name(), o.Check)
		}
		if o.DeltaRank < 0 {
			t.Errorf("%s: demotion Δ_R=%d", m.Name(), o.DeltaRank)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	g := datasets.Fig1()
	_, o, err := Promote(g, bcUnordered(), datasets.V4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s := o.String(); s == "" {
		t.Error("empty outcome string")
	}
}

func TestMeasureShortNames(t *testing.T) {
	want := map[string]string{
		"betweenness": "BC", "coreness": "RC", "closeness": "CC",
		"eccentricity": "EC", "harmonic": "HC", "degree": "DC",
		"katz": "KC", "current-flow": "CF",
	}
	for long, short := range want {
		m, err := MeasureByName(long)
		if err != nil {
			t.Fatal(err)
		}
		if m.Short() != short {
			t.Errorf("%s Short() = %q, want %q", long, m.Short(), short)
		}
		if m.Name() != long {
			t.Errorf("%s Name() = %q", long, m.Name())
		}
	}
}

func TestBetweennessMeasureSampledScores(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.BarabasiAlbert(rng, 200, 2)
	m := BetweennessMeasure{Counting: centrality.PairsUnordered, SampleSources: 64, Seed: 9}
	got := m.Scores(g)
	if len(got) != g.N() {
		t.Fatalf("sampled scores len = %d", len(got))
	}
	// Deterministic: same seed, same estimate.
	again := m.Scores(g)
	for v := range got {
		if got[v] != again[v] {
			t.Fatal("sampled measure not deterministic for fixed seed")
		}
	}
}
