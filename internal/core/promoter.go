package core

import (
	"context"
	"fmt"

	"promonet/internal/centrality"
	"promonet/internal/graph"
	"promonet/internal/obs"
)

// Outcome records everything about one promotion: the strategy applied,
// the score and ranking movement of the target (Section III's Δ_C, Δ̄_C,
// Δ_R and the experiments' Ratio metric), and the empirical property
// check for the measure's principle.
type Outcome struct {
	Strategy Strategy
	Measure  string
	Inserted []int // IDs of Δ_V in the updated graph

	Before []float64 // C(v) on G, indexed by original node ID
	After  []float64 // C′(v) on G′, inserted nodes last

	// Reciprocal scores, only populated for minimum-loss measures that
	// implement ReciprocalScorer (closeness, eccentricity).
	BeforeRecip []float64
	AfterRecip  []float64

	ScoreVariation float64 // Δ_C(t) = C′(t) − C(t)
	RankBefore     int     // R(t) in G
	RankAfter      int     // R′(t) in G′
	DeltaRank      int     // Δ_R(t) = R(t) − R′(t); > 0 means success
	Ratio          float64 // Δ_R(t)/n × 100%

	Check PropertyCheck
}

// Effective reports the paper's success criterion Δ_R(t) > 0.
func (o *Outcome) Effective() bool { return o.DeltaRank > 0 }

// String renders a one-line summary of the outcome.
func (o *Outcome) String() string {
	return fmt.Sprintf("%s %s: rank %d -> %d (Δ_R=%+d, ratio=%.2f%%), Δ_C=%.4g, properties gain=%v dominance=%v boost=%v",
		o.Measure, o.Strategy, o.RankBefore, o.RankAfter, o.DeltaRank, o.Ratio,
		o.ScoreVariation, o.Check.Gain, o.Check.Dominance, o.Check.Boost)
}

// Promote applies the measure's principle-guided strategy (Table I) of
// size p to target t, returning the updated graph and the full outcome.
// It is the library's headline API: the caller needs no knowledge of the
// host graph beyond the target's identity.
func Promote(g *graph.Graph, m Measure, t, p int) (*graph.Graph, *Outcome, error) {
	return PromoteWith(g, m, Strategy{Target: t, Size: p, Type: m.Strategy()})
}

// PromoteWith applies an explicit strategy (not necessarily the
// recommended one — useful for the ablations) and evaluates the outcome
// under measure m. The run is traced as a "promote" span with one child
// per phase — score-before, strategy-apply, score-after, verify-rank —
// so the per-phase cost of a promotion is attributable when a recorder
// is installed (and free when not).
func PromoteWith(g *graph.Graph, m Measure, s Strategy) (*graph.Graph, *Outcome, error) {
	ctx, root := obs.Start(context.Background(), "promote")
	root.Str("measure", m.Name())
	root.Int("n", g.N())
	root.Int("m", g.M())
	root.Int("p", s.Size)
	defer root.End()

	if err := s.Validate(g); err != nil {
		return nil, nil, err
	}
	_, sp := obs.Start(ctx, "promote/score-before")
	before := m.Scores(g)
	sp.End()

	_, sp = obs.Start(ctx, "promote/strategy-apply")
	g2, inserted, err := s.Apply(g)
	sp.End()
	if err != nil {
		return nil, nil, err
	}

	_, sp = obs.Start(ctx, "promote/score-after")
	after := m.Scores(g2)
	sp.End()

	_, sp = obs.Start(ctx, "promote/verify-rank")
	defer sp.End()
	o := &Outcome{
		Strategy:       s,
		Measure:        m.Name(),
		Inserted:       inserted,
		Before:         before,
		After:          after,
		ScoreVariation: after[s.Target] - before[s.Target],
		RankBefore:     centrality.RankOf(before, s.Target),
		RankAfter:      centrality.RankOf(after, s.Target),
	}
	o.DeltaRank = o.RankBefore - o.RankAfter
	o.Ratio = centrality.Ratio(o.DeltaRank, g.N())

	if m.Principle() == MaximumGain {
		o.Check = CheckMaximumGain(before, after, s.Target)
	} else {
		if rs, ok := m.(ReciprocalScorer); ok {
			o.BeforeRecip = rs.Reciprocals(g)
			o.AfterRecip = rs.Reciprocals(g2)
			o.Check = CheckMinimumLoss(o.BeforeRecip, o.AfterRecip, before, after, s.Target)
		} else {
			o.Check = CheckMinimumLoss(reciprocals(before), reciprocals(after), before, after, s.Target)
		}
	}
	return g2, o, nil
}

// PromoteGuaranteed promotes t using the smallest provably sufficient
// size (GuaranteedSize). If t is already rank 1 it returns a nil outcome
// and no error.
func PromoteGuaranteed(g *graph.Graph, m Measure, t int) (*graph.Graph, *Outcome, error) {
	p, needed, err := GuaranteedSize(g, m, t)
	if err != nil {
		return nil, nil, err
	}
	if !needed {
		return g, nil, nil
	}
	return Promote(g, m, t, p)
}
