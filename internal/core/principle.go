package core

import (
	"math/rand"

	"promonet/internal/graph"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// PropertyCheck records whether an applied strategy satisfied the three
// properties of its principle (Definitions 5.1 / 5.2) on a concrete
// graph, as the paper's experiments verify in Sections VII-A/B.
type PropertyCheck struct {
	Principle Principle

	// Gain holds for maximum gain: Δ_C(t) >= Δ_C(v) >= 0 for all v ∈ V
	// (maximum property); for minimum loss: Δ̄_C(v) >= Δ̄_C(t) >= 0
	// (minimum property).
	Gain bool
	// Dominance: C′(t) >= C′(w) for every inserted node w ∈ Δ_V.
	Dominance bool
	// Boost: the target overtook at least one node that scored strictly
	// higher in G. Vacuously true when no node scored higher (the
	// target was already rank 1).
	Boost bool
	// HadHigher reports whether any node scored strictly above the
	// target in G, i.e. whether Boost was non-vacuous.
	HadHigher bool

	// MaxOtherVariation is max_{v ∈ V\t} Δ_C(v) (maximum gain) or
	// min_{v ∈ V\t} Δ̄_C(v) (minimum loss) — the competitor column the
	// paper reports in Tables VII/IX/XI/XIII.
	TargetVariation   float64
	MaxOtherVariation float64
	// MaxOtherNode is the argmax/argmin above, or -1 when V = {t}.
	MaxOtherNode int
}

// Holds reports whether all three properties held.
func (c PropertyCheck) Holds() bool { return c.Gain && c.Dominance && c.Boost }

// CheckMaximumGain verifies the maximum gain principle (Definition 5.1)
// empirically. before are the scores C(v) on G (length n); after are the
// scores C′(v) on G′ (length n+p, inserted nodes last); t is the target.
func CheckMaximumGain(before, after []float64, t int) PropertyCheck {
	n := len(before)
	check := PropertyCheck{Principle: MaximumGain, Gain: true, MaxOtherNode: -1}
	check.TargetVariation = after[t] - before[t]
	for v := 0; v < n; v++ {
		dv := after[v] - before[v]
		if dv < -eps || dv > check.TargetVariation+eps {
			check.Gain = false
		}
		if v == t {
			continue
		}
		if check.MaxOtherNode == -1 || dv > check.MaxOtherVariation {
			check.MaxOtherVariation = dv
			check.MaxOtherNode = v
		}
	}
	check.Dominance = dominates(after, t, n)
	check.Boost, check.HadHigher = boosted(before, after, t, n)
	return check
}

// CheckMinimumLoss verifies the minimum loss principle (Definition 5.2)
// empirically. beforeRecip/afterRecip are the reciprocal scores C̄ on
// G/G′ (for closeness: farness; for eccentricity: max distance);
// afterScores are the actual scores C′ on G′ used for the dominance and
// boost properties.
func CheckMinimumLoss(beforeRecip, afterRecip, beforeScores, afterScores []float64, t int) PropertyCheck {
	n := len(beforeRecip)
	check := PropertyCheck{Principle: MinimumLoss, Gain: true, MaxOtherNode: -1}
	check.TargetVariation = afterRecip[t] - beforeRecip[t]
	if check.TargetVariation < -eps {
		check.Gain = false // reciprocal score may not shrink (footnote 5)
	}
	for v := 0; v < n; v++ {
		dv := afterRecip[v] - beforeRecip[v]
		if dv < check.TargetVariation-eps {
			check.Gain = false // someone lost less than the target
		}
		if v == t {
			continue
		}
		if check.MaxOtherNode == -1 || dv < check.MaxOtherVariation {
			check.MaxOtherVariation = dv
			check.MaxOtherNode = v
		}
	}
	check.Dominance = dominates(afterScores, t, n)
	check.Boost, check.HadHigher = boosted(beforeScores, afterScores, t, n)
	return check
}

const eps = 1e-9

// dominates reports C′(t) >= C′(w) for all inserted nodes w (IDs >= n).
func dominates(after []float64, t, n int) bool {
	for w := n; w < len(after); w++ {
		if after[w] > after[t]+eps {
			return false
		}
	}
	return true
}

// boosted reports whether the target overtook at least one node that
// scored strictly higher before, and whether such a node existed.
func boosted(before, after []float64, t, n int) (ok, hadHigher bool) {
	for v := 0; v < n; v++ {
		if v == t || before[v] <= before[t]+eps {
			continue
		}
		hadHigher = true
		if after[t] > after[v]+eps {
			return true, true
		}
	}
	return !hadHigher, hadHigher // vacuously true at rank 1
}

// CheckStrategy applies s to g, evaluates m before and after, and runs
// the principle checker that m declares. It is the one-call version of
// the paper's Exp 1-1/1-2/1-3 verification protocol.
func CheckStrategy(g *graph.Graph, m Measure, s Strategy) (PropertyCheck, error) {
	before := m.Scores(g)
	g2, _, err := s.Apply(g)
	if err != nil {
		return PropertyCheck{}, err
	}
	after := m.Scores(g2)
	if m.Principle() == MaximumGain {
		return CheckMaximumGain(before, after, s.Target), nil
	}
	rs, ok := m.(ReciprocalScorer)
	if !ok {
		// Fall back to literal reciprocals of the scores.
		return CheckMinimumLoss(reciprocals(before), reciprocals(after), before, after, s.Target), nil
	}
	beforeR := rs.Reciprocals(g)
	afterR := rs.Reciprocals(g2)
	return CheckMinimumLoss(beforeR, afterR, before, after, s.Target), nil
}

func reciprocals(scores []float64) []float64 {
	out := make([]float64, len(scores))
	for i, s := range scores {
		if s != 0 {
			out[i] = 1 / s
		}
	}
	return out
}
