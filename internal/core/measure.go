package core

import (
	"fmt"

	"promonet/internal/centrality"
	"promonet/internal/engine"
	"promonet/internal/graph"
)

// Principle identifies which of the paper's two promotion principles
// (Section V-A) applies to a centrality measure.
type Principle int

const (
	// MaximumGain (Definition 5.1) applies when inserting nodes can
	// only increase scores of original nodes (betweenness, coreness).
	MaximumGain Principle = iota
	// MinimumLoss (Definition 5.2) applies when inserting nodes can
	// only decrease scores of original nodes (closeness, eccentricity).
	MinimumLoss
)

// String names the principle as in the paper.
func (p Principle) String() string {
	switch p {
	case MaximumGain:
		return "maximum gain"
	case MinimumLoss:
		return "minimum loss"
	default:
		return fmt.Sprintf("Principle(%d)", int(p))
	}
}

// Measure is a centrality measure C that the promotion machinery can
// target. Scores returns C(v) for every node; Principle and Strategy
// encode the paper's Table I guidance.
type Measure interface {
	// Name is the long name, e.g. "betweenness".
	Name() string
	// Short is the paper's abbreviation: BC, RC, CC, EC, ...
	Short() string
	// Scores returns C(v) for every node of g.
	Scores(g *graph.Graph) []float64
	// Principle is the promotion principle that applies to the measure.
	Principle() Principle
	// Strategy is the principle-guided strategy type from Table I.
	Strategy() StrategyType
}

// ReciprocalScorer is implemented by minimum-loss measures whose natural
// bookkeeping unit is the reciprocal score C̄(v) = 1/C(v) — farness for
// closeness, max-distance for eccentricity. The paper's Tables XI–XIV
// report these reciprocals.
type ReciprocalScorer interface {
	// Reciprocals returns C̄(v) for every node of g.
	Reciprocals(g *graph.Graph) []float64
}

// --- Betweenness ---

// BetweennessMeasure is BC (Definition 2.3). Counting selects the pair
// convention; see centrality.PairCounting.
type BetweennessMeasure struct {
	Counting centrality.PairCounting
	// SampleSources, when > 0, switches to the Brandes–Pich pivot
	// estimator with that many sources and the given seed — needed to
	// keep large-host experiments tractable. Zero means exact.
	SampleSources int
	Seed          int64
}

func (BetweennessMeasure) Name() string           { return "betweenness" }
func (BetweennessMeasure) Short() string          { return "BC" }
func (BetweennessMeasure) Principle() Principle   { return MaximumGain }
func (BetweennessMeasure) Strategy() StrategyType { return MultiPoint }
func (m BetweennessMeasure) Scores(g *graph.Graph) []float64 {
	if m.SampleSources > 0 && m.SampleSources < g.N() {
		return engine.Default().Scores(g, engine.BetweennessSampled(m.Counting, m.SampleSources, m.Seed))
	}
	return engine.Default().Scores(g, engine.Betweenness(m.Counting))
}

// --- Coreness ---

// CorenessMeasure is RC (Definition 2.4).
type CorenessMeasure struct{}

func (CorenessMeasure) Name() string           { return "coreness" }
func (CorenessMeasure) Short() string          { return "RC" }
func (CorenessMeasure) Principle() Principle   { return MaximumGain }
func (CorenessMeasure) Strategy() StrategyType { return SingleClique }
func (CorenessMeasure) Scores(g *graph.Graph) []float64 {
	return engine.Default().Scores(g, engine.Coreness())
}

// --- Closeness ---

// ClosenessMeasure is CC (Definition 2.1).
type ClosenessMeasure struct{}

func (ClosenessMeasure) Name() string           { return "closeness" }
func (ClosenessMeasure) Short() string          { return "CC" }
func (ClosenessMeasure) Principle() Principle   { return MinimumLoss }
func (ClosenessMeasure) Strategy() StrategyType { return MultiPoint }
func (ClosenessMeasure) Scores(g *graph.Graph) []float64 {
	return engine.Default().Scores(g, engine.Closeness())
}

// Reciprocals returns the farness ĈC(v) = Σ_u dist(v, u).
func (ClosenessMeasure) Reciprocals(g *graph.Graph) []float64 {
	return engine.Default().Scores(g, engine.Farness())
}

// --- Eccentricity ---

// EccentricityMeasure is EC (Definition 2.2).
type EccentricityMeasure struct{}

func (EccentricityMeasure) Name() string           { return "eccentricity" }
func (EccentricityMeasure) Short() string          { return "EC" }
func (EccentricityMeasure) Principle() Principle   { return MinimumLoss }
func (EccentricityMeasure) Strategy() StrategyType { return DoubleLine }
func (EccentricityMeasure) Scores(g *graph.Graph) []float64 {
	return engine.Default().Scores(g, engine.Eccentricity())
}

// Reciprocals returns ĒC(v) = max_u dist(v, u).
func (EccentricityMeasure) Reciprocals(g *graph.Graph) []float64 {
	return engine.Default().Scores(g, engine.ReciprocalEccentricity())
}

// --- Extensions beyond the four headline measures (Section VI-B) ---

// HarmonicMeasure is harmonic centrality [27]. Appending nodes at
// distance >= 1 from everything can only increase harmonic scores of
// original nodes, so the maximum gain principle applies; the multi-point
// strategy maximizes the target's gain exactly as for closeness.
type HarmonicMeasure struct{}

func (HarmonicMeasure) Name() string           { return "harmonic" }
func (HarmonicMeasure) Short() string          { return "HC" }
func (HarmonicMeasure) Principle() Principle   { return MaximumGain }
func (HarmonicMeasure) Strategy() StrategyType { return MultiPoint }
func (HarmonicMeasure) Scores(g *graph.Graph) []float64 {
	return engine.Default().Scores(g, engine.Harmonic())
}

// DegreeMeasure is degree centrality. Trivially maximum-gain: only the
// target's degree changes under multi-point insertion.
type DegreeMeasure struct{}

func (DegreeMeasure) Name() string           { return "degree" }
func (DegreeMeasure) Short() string          { return "DC" }
func (DegreeMeasure) Principle() Principle   { return MaximumGain }
func (DegreeMeasure) Strategy() StrategyType { return MultiPoint }
func (DegreeMeasure) Scores(g *graph.Graph) []float64 {
	return engine.Default().Scores(g, engine.Degree())
}

// KatzMeasure is Katz centrality [28] with the safe automatic damping of
// centrality.KatzAuto. New walks created by appended nodes can only add
// to original nodes' scores, so the maximum gain principle applies; the
// single-clique strategy concentrates the added walk mass on the target.
type KatzMeasure struct{}

func (KatzMeasure) Name() string           { return "katz" }
func (KatzMeasure) Short() string          { return "KC" }
func (KatzMeasure) Principle() Principle   { return MaximumGain }
func (KatzMeasure) Strategy() StrategyType { return SingleClique }
func (KatzMeasure) Scores(g *graph.Graph) []float64 {
	return engine.Default().Scores(g, engine.Katz())
}

// CurrentFlowMeasure is current-flow (random-walk) betweenness [13],
// the third Section VI-B extension. Pendant structures carry no transit
// current, so original-pair contributions never change and the target
// collects the entire current of every new pair — the maximum gain
// principle applies with the multi-point strategy, exactly as for
// shortest-path betweenness. Scores panics on disconnected hosts (the
// electrical model needs one component; the paper's setting is
// connected graphs).
type CurrentFlowMeasure struct{}

func (CurrentFlowMeasure) Name() string           { return "current-flow" }
func (CurrentFlowMeasure) Short() string          { return "CF" }
func (CurrentFlowMeasure) Principle() Principle   { return MaximumGain }
func (CurrentFlowMeasure) Strategy() StrategyType { return MultiPoint }
func (CurrentFlowMeasure) Scores(g *graph.Graph) []float64 {
	out, err := centrality.CurrentFlowBetweenness(g)
	if err != nil {
		panic(err)
	}
	return out
}

// MeasureByName returns the measure registered under the given long or
// short name (case-sensitive short, lower-case long).
func MeasureByName(name string) (Measure, error) {
	switch name {
	case "betweenness", "BC":
		return BetweennessMeasure{Counting: centrality.PairsUnordered}, nil
	case "coreness", "RC":
		return CorenessMeasure{}, nil
	case "closeness", "CC":
		return ClosenessMeasure{}, nil
	case "eccentricity", "EC":
		return EccentricityMeasure{}, nil
	case "harmonic", "HC":
		return HarmonicMeasure{}, nil
	case "degree", "DC":
		return DegreeMeasure{}, nil
	case "katz", "KC":
		return KatzMeasure{}, nil
	case "current-flow", "currentflow", "CF":
		return CurrentFlowMeasure{}, nil
	default:
		return nil, fmt.Errorf("core: unknown measure %q", name)
	}
}
