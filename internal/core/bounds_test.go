package core

import (
	"math"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/datasets"
	"promonet/internal/gen"
)

func TestBoostSizeBetweenness(t *testing.T) {
	// Example 5.1: p' = sqrt(BC(v5) - BC(v4)) + 1 = sqrt(4) + 1 = 3.
	if got := BoostSizeBetweenness(0, 4); got != 3 {
		t.Errorf("BoostSizeBetweenness(0, 4) = %v, want 3", got)
	}
	if got := BoostSizeBetweenness(5, 4); got != 0 {
		t.Errorf("already ahead: got %v, want 0", got)
	}
}

func TestBoostSizeCoreness(t *testing.T) {
	if got := BoostSizeCoreness(7); got != 8 {
		t.Errorf("BoostSizeCoreness(7) = %v, want 8", got)
	}
}

func TestBoostSizeCloseness(t *testing.T) {
	// Example 5.2: p' = (ĈC(v4) - ĈC(v2)) / dist(v4, v2) = (23-22)/3.
	got := BoostSizeCloseness(23, 22, 3)
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("BoostSizeCloseness(23, 22, 3) = %v, want 1/3", got)
	}
	if got := BoostSizeCloseness(20, 22, 3); got != 0 {
		t.Errorf("already ahead: got %v, want 0", got)
	}
	if got := BoostSizeCloseness(23, 22, 0); !math.IsInf(got, 1) {
		t.Errorf("zero distance must yield +Inf, got %v", got)
	}
}

func TestBoostSizeEccentricity(t *testing.T) {
	if got := BoostSizeEccentricity(4); got != 8 {
		t.Errorf("BoostSizeEccentricity(4) = %v, want 8", got)
	}
}

func TestGuaranteedSizeFig1Closeness(t *testing.T) {
	// For v4 on Fig. 1, the easiest higher-closeness node is v2 with
	// p' = 1/3 (Example 5.2), so the guaranteed size is 1.
	g := datasets.Fig1()
	p, needed, err := GuaranteedSize(g, ClosenessMeasure{}, datasets.V4)
	if err != nil {
		t.Fatal(err)
	}
	if !needed || p != 1 {
		t.Errorf("GuaranteedSize = (%d, %v), want (1, true)", p, needed)
	}
}

func TestGuaranteedSizeFig1Betweenness(t *testing.T) {
	// For v4 (BC 0), the easiest higher node is v5 (BC 4): p' = 3, so
	// the smallest guaranteed integer is 4.
	g := datasets.Fig1()
	p, needed, err := GuaranteedSize(g, BetweennessMeasure{Counting: centrality.PairsUnordered}, datasets.V4)
	if err != nil {
		t.Fatal(err)
	}
	if !needed || p != 4 {
		t.Errorf("GuaranteedSize = (%d, %v), want (4, true)", p, needed)
	}
}

func TestGuaranteedSizeAtTop(t *testing.T) {
	g := gen.Star(6)
	// The hub dominates degree-related and distance measures already.
	for _, m := range []Measure{BetweennessMeasure{Counting: centrality.PairsUnordered}, ClosenessMeasure{}, CorenessMeasure{}} {
		_, needed, err := GuaranteedSize(g, m, 0)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if needed {
			t.Errorf("%s: hub should need no promotion", m.Name())
		}
	}
}

func TestGuaranteedSizeErrors(t *testing.T) {
	g := gen.Path(4)
	if _, _, err := GuaranteedSize(g, ClosenessMeasure{}, 10); err == nil {
		t.Error("bad target accepted")
	}
	if _, _, err := GuaranteedSize(g, HarmonicMeasure{}, 1); err == nil {
		t.Error("unproved measure should be rejected")
	}
}

func TestGuaranteedSizeEccentricityUniform(t *testing.T) {
	// On a cycle every node has the same eccentricity: nobody is
	// strictly higher, so no promotion is needed.
	g := gen.Cycle(8)
	_, needed, err := GuaranteedSize(g, EccentricityMeasure{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if needed {
		t.Error("uniform eccentricity should need no promotion")
	}
}
