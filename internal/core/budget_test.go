package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"promonet/internal/gen"
)

func TestMaxSizeWithinBudget(t *testing.T) {
	cases := []struct {
		typ    StrategyType
		budget int
		want   int
	}{
		{MultiPoint, 10, 10},
		{DoubleLine, 7, 7},
		{MultiPoint, 0, 0},
		{SingleClique, 1, 1},  // cost(1) = 1
		{SingleClique, 2, 1},  // cost(2) = 3
		{SingleClique, 3, 2},  // cost(2) = 3
		{SingleClique, 10, 4}, // cost(4) = 10
		{SingleClique, 14, 4}, // cost(5) = 15
		{SingleClique, 15, 5},
		{SingleClique, 0, 0},
	}
	for _, tc := range cases {
		if got := MaxSizeWithinBudget(tc.typ, tc.budget); got != tc.want {
			t.Errorf("MaxSizeWithinBudget(%v, %d) = %d, want %d", tc.typ, tc.budget, got, tc.want)
		}
	}
}

// TestPropertyBudgetNeverExceeded: the affordable size's edge cost never
// exceeds the budget, and size+1 always would.
func TestPropertyBudgetNeverExceeded(t *testing.T) {
	f := func(raw uint8) bool {
		budget := int(raw)
		for _, typ := range []StrategyType{MultiPoint, DoubleLine, SingleClique} {
			p := MaxSizeWithinBudget(typ, budget)
			if p > 0 && (Strategy{Size: p, Type: typ}).NumEdges() > budget {
				return false
			}
			if (Strategy{Size: p + 1, Type: typ}).NumEdges() <= budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPromoteBudgeted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.BarabasiAlbert(rng, 60, 2)
	_, o, err := PromoteBudgeted(g, CorenessMeasure{}, 30, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Single-clique within 15 edges: p = 5.
	if o.Strategy.Size != 5 || o.Strategy.Type != SingleClique {
		t.Errorf("budgeted strategy = %v, want [_, 5, single-clique]", o.Strategy)
	}
	if _, _, err := PromoteBudgeted(g, CorenessMeasure{}, 30, 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestBestStrategyWithinBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.BarabasiAlbert(rng, 80, 2)
	// Pick a low-closeness node.
	m := ClosenessMeasure{}
	scores := m.Scores(g)
	target := 0
	for v := range scores {
		if scores[v] < scores[target] {
			target = v
		}
	}
	_, best, err := BestStrategyWithinBudget(g, m, target, 20)
	if err != nil {
		t.Fatal(err)
	}
	// The winner must at least match the guided strategy's result.
	_, guided, err := PromoteBudgeted(g, m, target, 20)
	if err != nil {
		t.Fatal(err)
	}
	if best.DeltaRank < guided.DeltaRank {
		t.Errorf("best-of-three Δ_R=%d worse than guided Δ_R=%d", best.DeltaRank, guided.DeltaRank)
	}
	if _, _, err := BestStrategyWithinBudget(g, m, target, 0); err == nil {
		t.Error("zero budget accepted")
	}
}
