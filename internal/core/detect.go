package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"promonet/internal/engine"
	"promonet/internal/graph"
	"promonet/internal/obs"
)

// This file implements the detectability analysis the paper defers to
// future work (Remark 1): "other equally important topics, such as the
// detectability of strategies". It gives the network owner's view — a
// battery of structural statistics comparing an observed graph against a
// baseline, plus signatures that flag each strategy's footprint.

// DetectionReport quantifies how visible a promotion is to a network
// owner comparing a current snapshot against an earlier one.
type DetectionReport struct {
	// NodesAdded / EdgesAdded are the raw deltas.
	NodesAdded, EdgesAdded int

	// PendantFractionBefore/After is the share of degree-1 nodes — the
	// multi-point strategy's footprint (it adds p pendants at once).
	PendantFractionBefore, PendantFractionAfter float64

	// ClusteringBefore/After is the average local clustering
	// coefficient — the single-clique strategy's footprint (a (p+1)-
	// clique of fresh perfectly-clustered nodes).
	ClusteringBefore, ClusteringAfter float64

	// DegreeKS is the two-sample Kolmogorov–Smirnov statistic between
	// the degree distributions (0 = identical, 1 = disjoint).
	DegreeKS float64

	// MaxDegreeJump is the largest single-node degree increase among
	// surviving nodes — all three strategies raise the target's degree
	// by p (multi-point, single-clique) or 2 (double-line).
	MaxDegreeJump     int
	MaxDegreeJumpNode int

	// SuspectedStrategy is the strategy whose signature matches best,
	// or -1 if nothing suspicious was found.
	SuspectedStrategy StrategyType
	Suspicious        bool
}

// String summarizes the report.
func (r *DetectionReport) String() string {
	verdict := "no promotion signature detected"
	if r.Suspicious {
		verdict = fmt.Sprintf("suspected %s promotion around node %d", r.SuspectedStrategy, r.MaxDegreeJumpNode)
	}
	return fmt.Sprintf("+%d nodes, +%d edges; pendant %.3f->%.3f, clustering %.3f->%.3f, degree-KS %.3f, max degree jump %+d @%d: %s",
		r.NodesAdded, r.EdgesAdded, r.PendantFractionBefore, r.PendantFractionAfter,
		r.ClusteringBefore, r.ClusteringAfter, r.DegreeKS, r.MaxDegreeJump, r.MaxDegreeJumpNode, verdict)
}

// Detect compares an observed graph against a baseline snapshot (the
// first len(baseline-nodes) node IDs of observed must correspond to the
// baseline's nodes, which holds for every strategy in this package) and
// reports the promotion signatures it finds.
func Detect(baseline, observed *graph.Graph) (*DetectionReport, error) {
	_, sp := obs.Start(context.Background(), "promote/detect")
	sp.Int("n", baseline.N())
	sp.Int("m", baseline.M())
	defer sp.End()
	nb := baseline.N()
	if observed.N() < nb {
		return nil, fmt.Errorf("core: observed graph has fewer nodes (%d) than baseline (%d)", observed.N(), nb)
	}
	r := &DetectionReport{
		NodesAdded: observed.N() - nb,
		EdgesAdded: observed.M() - baseline.M(),
	}
	r.PendantFractionBefore = pendantFraction(baseline)
	r.PendantFractionAfter = pendantFraction(observed)
	r.ClusteringBefore = engine.Default().AverageClustering(baseline)
	r.ClusteringAfter = engine.Default().AverageClustering(observed)
	r.DegreeKS = degreeKS(baseline, observed)

	for v := 0; v < nb; v++ {
		if jump := observed.Degree(v) - baseline.Degree(v); jump > r.MaxDegreeJump {
			r.MaxDegreeJump = jump
			r.MaxDegreeJumpNode = v
		}
	}

	r.SuspectedStrategy = StrategyType(-1)
	if r.NodesAdded == 0 {
		return r, nil
	}
	// Classify the appended structure by inspecting the new nodes.
	newDeg1, newDeg2, interEdges := 0, 0, 0
	for w := nb; w < observed.N(); w++ {
		switch observed.Degree(w) {
		case 1:
			newDeg1++
		case 2:
			newDeg2++
		}
		for _, u := range observed.Adjacency(w) {
			if int(u) >= nb && int(u) > w {
				interEdges++
			}
		}
	}
	p := r.NodesAdded
	switch {
	case interEdges == p*(p-1)/2 && p >= 2:
		r.SuspectedStrategy = SingleClique
		r.Suspicious = true
	case newDeg1 == p && interEdges == 0:
		r.SuspectedStrategy = MultiPoint
		r.Suspicious = true
	case interEdges == p-minInt(p, 2) && newDeg1 <= 2 && p >= 2:
		// Two chains: p-2 internal chain edges (p-1 for a single line).
		r.SuspectedStrategy = DoubleLine
		r.Suspicious = true
	default:
		// Appended nodes with an unrecognized shape are still worth a
		// flag when they all attach through one original node.
		attach := map[int]bool{}
		for w := nb; w < observed.N(); w++ {
			for _, u := range observed.Adjacency(w) {
				if int(u) < nb {
					attach[int(u)] = true
				}
			}
		}
		if len(attach) == 1 {
			r.Suspicious = true
		}
	}
	return r, nil
}

func pendantFraction(g *graph.Graph) float64 {
	if g.N() == 0 {
		return 0
	}
	c := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 1 {
			c++
		}
	}
	return float64(c) / float64(g.N())
}

// degreeKS computes the two-sample Kolmogorov–Smirnov statistic between
// the degree multisets of a and b.
func degreeKS(a, b *graph.Graph) float64 {
	da := sortedDegrees(a)
	db := sortedDegrees(b)
	if len(da) == 0 || len(db) == 0 {
		return 0
	}
	i, j := 0, 0
	maxDiff := 0.0
	for i < len(da) && j < len(db) {
		var x int
		if da[i] <= db[j] {
			x = da[i]
		} else {
			x = db[j]
		}
		for i < len(da) && da[i] <= x {
			i++
		}
		for j < len(db) && db[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(da)) - float64(j)/float64(len(db)))
		if diff > maxDiff {
			maxDiff = diff
		}
	}
	return maxDiff
}

func sortedDegrees(g *graph.Graph) []int {
	out := make([]int, g.N())
	for v := range out {
		out[v] = g.Degree(v)
	}
	sort.Ints(out)
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
