package core

import (
	"math/rand"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/datasets"
	"promonet/internal/gen"
)

func TestPromoteAllSingleEqualsPromote(t *testing.T) {
	g := datasets.Fig1()
	m := ClosenessMeasure{}
	_, solo, err := Promote(g, m, datasets.V4, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, outcomes, err := PromoteAll(g, m, []int{datasets.V4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if outcomes[0].DeltaRank != solo.DeltaRank {
		t.Errorf("PromoteAll with one target Δ_R=%d, Promote Δ_R=%d",
			outcomes[0].DeltaRank, solo.DeltaRank)
	}
}

func TestPromoteAllArmsRace(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := gen.BarabasiAlbert(rng, 120, 2)
	m := ClosenessMeasure{}
	scores := m.Scores(g)
	// The five lowest-closeness nodes all promote at once.
	idx := make([]int, g.N())
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < len(idx); j++ {
			if scores[idx[j]] < scores[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	targets := idx[:5]
	g2, outcomes, err := PromoteAll(g, m, targets, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N()+5*8 {
		t.Fatalf("G' n=%d, want %d", g2.N(), g.N()+5*8)
	}
	improved, unchanged, demoted, mean := ArmsRaceSummary(outcomes)
	if improved+unchanged+demoted != 5 {
		t.Fatalf("summary doesn't partition: %d+%d+%d", improved, unchanged, demoted)
	}
	// Peripheral nodes promoting against each other still mostly win:
	// everyone's pendants hurt the *rest of the graph* more than each
	// other.
	if improved == 0 {
		t.Errorf("no participant improved in the arms race: %+v", outcomes)
	}
	if mean < 0 {
		t.Errorf("mean Δ_R = %v < 0 for peripheral co-promoters", mean)
	}
	SortCompetitors(outcomes)
	for i := 1; i < len(outcomes); i++ {
		if outcomes[i].RankAfter < outcomes[i-1].RankAfter {
			t.Error("SortCompetitors did not sort by final rank")
		}
	}
}

func TestPromoteAllErrors(t *testing.T) {
	g := gen.Path(5)
	m := ClosenessMeasure{}
	if _, _, err := PromoteAll(g, m, []int{1, 1}, 2); err == nil {
		t.Error("duplicate targets accepted")
	}
	if _, _, err := PromoteAll(g, m, []int{9}, 2); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, _, err := PromoteAll(g, m, []int{1}, 0); err == nil {
		t.Error("zero size accepted")
	}
}

func TestPromoteToRank(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := gen.BarabasiAlbert(rng, 80, 2)
	m := CorenessMeasure{}
	scores := m.Scores(g)
	target := 0
	for v := range scores {
		if scores[v] < scores[target] {
			target = v
		}
	}
	goal := 3
	g2, rounds, ok, err := PromoteToRank(g, m, target, goal, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("goal rank %d not reached in %d rounds", goal, len(rounds))
	}
	finalRank := centrality.RankOf(m.Scores(g2), target)
	if finalRank > goal {
		t.Errorf("final rank %d > goal %d despite ok=true", finalRank, goal)
	}
	// Every round must have strictly improved the ranking.
	for i, o := range rounds {
		if o.DeltaRank <= 0 {
			t.Errorf("round %d did not improve: %v", i, o)
		}
	}
}

func TestPromoteToRankAlreadyThere(t *testing.T) {
	g := gen.Star(9)
	g2, rounds, ok, err := PromoteToRank(g, ClosenessMeasure{}, 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(rounds) != 0 {
		t.Errorf("hub at rank 1: ok=%v rounds=%d", ok, len(rounds))
	}
	if g2 != g {
		t.Error("graph changed when goal already met")
	}
}

func TestPromoteToRankErrors(t *testing.T) {
	g := gen.Path(4)
	if _, _, _, err := PromoteToRank(g, ClosenessMeasure{}, 1, 0, 5); err == nil {
		t.Error("goal 0 accepted")
	}
	if _, _, _, err := PromoteToRank(g, ClosenessMeasure{}, 1, 1, 0); err == nil {
		t.Error("maxRounds 0 accepted")
	}
}

func TestArmsRaceSummaryEmpty(t *testing.T) {
	i, u, d, m := ArmsRaceSummary(nil)
	if i != 0 || u != 0 || d != 0 || m != 0 {
		t.Error("empty summary not zero")
	}
}
