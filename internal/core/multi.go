package core

import (
	"fmt"
	"sort"

	"promonet/internal/centrality"
	"promonet/internal/graph"
)

// This file covers two multi-step scenarios built on the single-shot
// Promote: the arms race the paper's introduction warns about (several
// nodes promoting simultaneously — the reason rankings, not scores, are
// the right objective), and goal-directed promotion ("get me into the
// top r").

// CompetitorOutcome is one participant's result in a simultaneous
// promotion.
type CompetitorOutcome struct {
	Target     int
	RankBefore int
	RankAfter  int
	DeltaRank  int
}

// PromoteAll applies the measure's principle-guided strategy of size p
// to every target simultaneously (all structures attached to the same
// host) and reports each participant's ranking movement. Theorems
// 5.3–5.6 guarantee nothing here — each proof assumes a single, frozen
// promotion — which is exactly why the experiment is interesting: it
// quantifies how much of the single-promoter guarantee survives an arms
// race. Targets must be distinct.
func PromoteAll(g *graph.Graph, m Measure, targets []int, p int) (*graph.Graph, []CompetitorOutcome, error) {
	seen := make(map[int]bool, len(targets))
	for _, t := range targets {
		if t < 0 || t >= g.N() {
			return nil, nil, fmt.Errorf("core: target %d outside [0, %d)", t, g.N())
		}
		if seen[t] {
			return nil, nil, fmt.Errorf("core: duplicate target %d", t)
		}
		seen[t] = true
	}
	if p < 1 {
		return nil, nil, fmt.Errorf("core: promotion size %d, want >= 1", p)
	}
	before := m.Scores(g)
	g2 := g.Clone()
	styp := m.Strategy()
	for _, t := range targets {
		if _, err := (Strategy{Target: t, Size: p, Type: styp}).ApplyInPlace(g2); err != nil {
			return nil, nil, err
		}
	}
	graph.DebugAssert(g2)
	after := m.Scores(g2)
	outcomes := make([]CompetitorOutcome, len(targets))
	for i, t := range targets {
		rb := centrality.RankOf(before, t)
		ra := centrality.RankOf(after, t)
		outcomes[i] = CompetitorOutcome{Target: t, RankBefore: rb, RankAfter: ra, DeltaRank: rb - ra}
	}
	return g2, outcomes, nil
}

// PromoteToRank repeatedly promotes t (each round with the smallest
// provably sufficient size on the current graph) until its ranking of m
// reaches goal or better, or until maxRounds promotions have been
// applied. Each round's Theorem 5.1/5.2 guarantee lifts the rank by at
// least one, so the loop terminates within R(t) − goal rounds. It
// returns the final graph, the per-round outcomes, and whether the goal
// was met.
func PromoteToRank(g *graph.Graph, m Measure, t, goal, maxRounds int) (*graph.Graph, []*Outcome, bool, error) {
	if goal < 1 {
		return nil, nil, false, fmt.Errorf("core: rank goal %d, want >= 1", goal)
	}
	if maxRounds < 1 {
		return nil, nil, false, fmt.Errorf("core: maxRounds %d, want >= 1", maxRounds)
	}
	cur := g
	var rounds []*Outcome
	for len(rounds) < maxRounds {
		rank := centrality.RankOf(m.Scores(cur), t)
		if rank <= goal {
			return cur, rounds, true, nil
		}
		next, o, err := PromoteGuaranteed(cur, m, t)
		if err != nil {
			return nil, nil, false, err
		}
		if o == nil {
			// Already rank 1 among comparable nodes — can't do better.
			return cur, rounds, rank <= goal, nil
		}
		rounds = append(rounds, o)
		cur = next
	}
	rank := centrality.RankOf(m.Scores(cur), t)
	return cur, rounds, rank <= goal, nil
}

// ArmsRaceSummary aggregates a PromoteAll result: how many participants
// still improved, and the spread of their movements.
func ArmsRaceSummary(outcomes []CompetitorOutcome) (improved, unchanged, demoted int, meanDelta float64) {
	if len(outcomes) == 0 {
		return 0, 0, 0, 0
	}
	total := 0
	for _, o := range outcomes {
		switch {
		case o.DeltaRank > 0:
			improved++
		case o.DeltaRank == 0:
			unchanged++
		default:
			demoted++
		}
		total += o.DeltaRank
	}
	return improved, unchanged, demoted, float64(total) / float64(len(outcomes))
}

// SortCompetitors orders outcomes by final rank ascending (winners
// first), for display.
func SortCompetitors(outcomes []CompetitorOutcome) {
	sort.Slice(outcomes, func(a, b int) bool {
		return outcomes[a].RankAfter < outcomes[b].RankAfter
	})
}
