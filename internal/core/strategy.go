// Package core implements the paper's contribution: black-box centrality
// promotion. A promotion strategy [t, p, T] (Section IV) attaches p new
// nodes in structure T around a target node t, never touching the
// original graph's edges. Two principles (Section V) — maximum gain and
// minimum loss — decide which strategy provably lifts the target's
// centrality *ranking* for a given measure (Table I):
//
//	betweenness  → multi-point    (maximum gain, Thm. 5.3)
//	coreness     → single-clique  (maximum gain, Thm. 5.4)
//	closeness    → multi-point    (minimum loss, Thm. 5.5)
//	eccentricity → double-line    (minimum loss, Thm. 5.6)
//
// The package also provides the theoretical promotion sizes p′ of
// Lemmas 5.3/5.6/5.9/5.12, empirical checkers for the three properties
// each principle requires, and a high-level Promote API.
package core

import (
	"fmt"

	"promonet/internal/graph"
)

// StrategyType is the structure T inserted among the new nodes Δ_V.
type StrategyType int

const (
	// MultiPoint (Algorithm 1): p isolated nodes, each connected only
	// to the target.
	MultiPoint StrategyType = iota
	// DoubleLine (Algorithm 2): the p nodes form two equal-length
	// chains hanging off the target. For odd p the first chain is one
	// node longer.
	DoubleLine
	// SingleClique (Algorithm 3): the p nodes plus the target form a
	// (p+1)-clique.
	SingleClique
)

// String returns the paper's name for the strategy type.
func (t StrategyType) String() string {
	switch t {
	case MultiPoint:
		return "multi-point"
	case DoubleLine:
		return "double-line"
	case SingleClique:
		return "single-clique"
	default:
		return fmt.Sprintf("StrategyType(%d)", int(t))
	}
}

// Strategy is the paper's promotion triple [target, promotion size,
// type].
type Strategy struct {
	Target int          // node to be promoted
	Size   int          // p = |Δ_V|, the number of inserted nodes
	Type   StrategyType // structure among the inserted nodes
}

// Validate reports whether the strategy can be applied to g.
func (s Strategy) Validate(g *graph.Graph) error {
	if s.Target < 0 || s.Target >= g.N() {
		return fmt.Errorf("core: strategy target %d outside [0, %d)", s.Target, g.N())
	}
	if s.Size < 1 {
		return fmt.Errorf("core: strategy size %d, want >= 1", s.Size)
	}
	switch s.Type {
	case MultiPoint, DoubleLine, SingleClique:
		return nil
	default:
		return fmt.Errorf("core: unknown strategy type %d", int(s.Type))
	}
}

// NumEdges returns |Δ_E|, the number of edges the strategy inserts.
func (s Strategy) NumEdges() int {
	switch s.Type {
	case SingleClique:
		return s.Size + s.Size*(s.Size-1)/2
	default: // MultiPoint and DoubleLine both add exactly one edge per node
		return s.Size
	}
}

// String renders the triple in the paper's notation.
func (s Strategy) String() string {
	return fmt.Sprintf("[%d, %d, %s]", s.Target, s.Size, s.Type)
}

// Mutable is the structural mutation surface strategy application
// drives: the mutable adjacency-map graph (*graph.Graph) and the CSR
// edit layer (*csr.Overlay) both satisfy it, so one implementation of
// every strategy serves both backends. Promotion only ever appends
// nodes and attaches edges — RemoveEdge is deliberately absent.
type Mutable interface {
	// N returns the number of nodes; identifiers are [0, N()).
	N() int
	// AddNodes appends k isolated nodes, returning the first new ID.
	AddNodes(k int) int
	// AddEdge inserts the undirected edge (u, v), reporting whether it
	// was new.
	AddEdge(u, v int) bool
}

// Apply returns the updated graph G′ = (V ∪ Δ_V, E ∪ Δ_E) as a clone of
// g, plus the IDs of the inserted nodes Δ_V. The original graph is not
// modified — the defining constraint of black-box promotion.
func (s Strategy) Apply(g *graph.Graph) (*graph.Graph, []int, error) {
	if err := s.Validate(g); err != nil {
		return nil, nil, err
	}
	g2 := g.Clone()
	ins := s.applyInPlace(g2)
	graph.DebugAssert(g2)
	return g2, ins, nil
}

// ApplyInPlace inserts Δ_V and Δ_E directly into g and returns the
// inserted node IDs. Note that even in-place application never modifies
// edges among the original nodes.
func (s Strategy) ApplyInPlace(g *graph.Graph) ([]int, error) {
	if err := s.Validate(g); err != nil {
		return nil, err
	}
	ins := s.applyInPlace(g)
	graph.DebugAssert(g)
	return ins, nil
}

// ApplyTo inserts Δ_V and Δ_E into any mutable backend — in particular
// a csr.Overlay layered over a frozen million-node snapshot, where the
// promotion structure costs a few touched rows instead of a host
// clone (the serving path internal/promod takes per exact-mode query).
// It returns the inserted node IDs.
func (s Strategy) ApplyTo(g Mutable) ([]int, error) {
	if s.Target < 0 || s.Target >= g.N() {
		return nil, fmt.Errorf("core: strategy target %d outside [0, %d)", s.Target, g.N())
	}
	if s.Size < 1 {
		return nil, fmt.Errorf("core: strategy size %d, want >= 1", s.Size)
	}
	switch s.Type {
	case MultiPoint, DoubleLine, SingleClique:
	default:
		return nil, fmt.Errorf("core: unknown strategy type %d", int(s.Type))
	}
	return s.applyInPlace(g), nil
}

// applyInPlace inserts Δ_V and Δ_E into g. This is the one place in the
// promotion machinery that is *supposed* to attach structure, so it
// carries the package's only mutation-safety exemption; everything it
// adds touches the target only, never edges among original nodes.
//
//promolint:allow mutation-safety -- strategy application is the sanctioned mutation point
func (s Strategy) applyInPlace(g Mutable) []int {
	first := g.AddNodes(s.Size)
	ins := make([]int, s.Size)
	for i := range ins {
		ins[i] = first + i
	}
	t := s.Target
	switch s.Type {
	case MultiPoint:
		// Algorithm 1: every inserted node connects to t only.
		for _, w := range ins {
			g.AddEdge(t, w)
		}
	case DoubleLine:
		// Algorithm 2: split Δ_V into two chains S1, S2 rooted at t.
		// For odd p, |S1| = |S2| + 1 (footnote 4).
		half := (s.Size + 1) / 2
		s1, s2 := ins[:half], ins[half:]
		for _, line := range [][]int{s1, s2} {
			prev := t
			for _, w := range line {
				g.AddEdge(prev, w)
				prev = w
			}
		}
	case SingleClique:
		// Algorithm 3: Δ_V ∪ {t} forms a (p+1)-clique.
		for i, w := range ins {
			g.AddEdge(t, w)
			for _, x := range ins[i+1:] {
				g.AddEdge(w, x)
			}
		}
	}
	return ins
}
