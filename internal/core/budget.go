package core

import (
	"context"
	"fmt"

	"promonet/internal/graph"
	"promonet/internal/obs"
)

// This file implements budgeted promotion, the second future-work topic
// of Remark 1 ("the maximal promotion effect under certain budgets"):
// given a budget of b inserted edges, choose the size (and optionally
// the strategy) that maximizes the target's ranking improvement.

// MaxSizeWithinBudget returns the largest promotion size p such that the
// strategy type's edge cost stays within budget edges. It returns 0 if
// even p = 1 does not fit.
func MaxSizeWithinBudget(t StrategyType, budget int) int {
	switch t {
	case SingleClique:
		// cost(p) = p + p(p-1)/2; grow p while affordable.
		p := 0
		for (Strategy{Size: p + 1, Type: SingleClique}).NumEdges() <= budget {
			p++
		}
		return p
	default:
		// Multi-point and double-line cost exactly p edges.
		if budget < 0 {
			return 0
		}
		return budget
	}
}

// PromoteBudgeted promotes t under measure m spending at most budget
// inserted edges, using the principle-guided strategy at its maximal
// affordable size. It returns an error if the budget does not admit
// even a single inserted node.
func PromoteBudgeted(g *graph.Graph, m Measure, t, budget int) (*graph.Graph, *Outcome, error) {
	p := MaxSizeWithinBudget(m.Strategy(), budget)
	if p < 1 {
		return nil, nil, fmt.Errorf("core: budget %d admits no insertion under %s", budget, m.Strategy())
	}
	return Promote(g, m, t, p)
}

// BestStrategyWithinBudget tries all three strategy types at their
// maximal affordable sizes and returns the outcome with the largest
// ranking improvement (ties broken toward the principle-guided type).
// This is an empirical search; only the principle-guided choice carries
// the paper's guarantee.
func BestStrategyWithinBudget(g *graph.Graph, m Measure, t, budget int) (*graph.Graph, *Outcome, error) {
	_, sp := obs.Start(context.Background(), "promote/budget-search")
	sp.Str("measure", m.Name())
	sp.Int("target", t)
	sp.Int("budget", budget)
	defer sp.End()
	var bestG *graph.Graph
	var best *Outcome
	guided := m.Strategy()
	for _, typ := range []StrategyType{MultiPoint, DoubleLine, SingleClique} {
		p := MaxSizeWithinBudget(typ, budget)
		if p < 1 {
			continue
		}
		g2, o, err := PromoteWith(g, m, Strategy{Target: t, Size: p, Type: typ})
		if err != nil {
			return nil, nil, err
		}
		better := best == nil || o.DeltaRank > best.DeltaRank ||
			(o.DeltaRank == best.DeltaRank && typ == guided && best.Strategy.Type != guided)
		if better {
			bestG, best = g2, o
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("core: budget %d admits no insertion", budget)
	}
	return bestG, best, nil
}
