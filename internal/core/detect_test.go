package core

import (
	"math/rand"
	"testing"

	"promonet/internal/datasets"
	"promonet/internal/gen"
)

func TestDetectMultiPoint(t *testing.T) {
	g := datasets.Fig1()
	g2, _, err := (Strategy{datasets.V4, 6, MultiPoint}).Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Detect(g, g2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Suspicious || r.SuspectedStrategy != MultiPoint {
		t.Errorf("multi-point not detected: %v", r)
	}
	if r.MaxDegreeJumpNode != datasets.V4 || r.MaxDegreeJump != 6 {
		t.Errorf("degree jump %d@%d, want 6@%d", r.MaxDegreeJump, r.MaxDegreeJumpNode, datasets.V4)
	}
	if r.PendantFractionAfter <= r.PendantFractionBefore {
		t.Error("pendant fraction should rise under multi-point")
	}
}

func TestDetectSingleClique(t *testing.T) {
	g := datasets.Fig1()
	g2, _, err := (Strategy{datasets.V4, 5, SingleClique}).Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Detect(g, g2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Suspicious || r.SuspectedStrategy != SingleClique {
		t.Errorf("single-clique not detected: %v", r)
	}
	if r.ClusteringAfter <= r.ClusteringBefore {
		t.Error("clustering should rise under single-clique")
	}
}

func TestDetectDoubleLine(t *testing.T) {
	g := datasets.Fig1()
	g2, _, err := (Strategy{datasets.V4, 6, DoubleLine}).Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Detect(g, g2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Suspicious || r.SuspectedStrategy != DoubleLine {
		t.Errorf("double-line not detected: %v", r)
	}
}

func TestDetectNothing(t *testing.T) {
	g := datasets.Fig1()
	r, err := Detect(g, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if r.Suspicious {
		t.Errorf("false positive on identical graphs: %v", r)
	}
	if r.DegreeKS != 0 {
		t.Errorf("KS = %v on identical graphs, want 0", r.DegreeKS)
	}
}

func TestDetectOrganicGrowthNotFlaggedAsStrategy(t *testing.T) {
	// Organic growth: new nodes attach preferentially to several
	// different hosts — should not match a one-attachment-point
	// strategy signature.
	rng := rand.New(rand.NewSource(4))
	g := gen.BarabasiAlbert(rng, 100, 3)
	g2 := g.Clone()
	for i := 0; i < 5; i++ {
		v := g2.AddNode()
		for added := 0; added < 3; {
			u := rng.Intn(100)
			if g2.AddEdge(v, u) {
				added++
			}
		}
	}
	r, err := Detect(g, g2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Suspicious && r.SuspectedStrategy >= 0 {
		t.Errorf("organic growth misclassified as %v", r.SuspectedStrategy)
	}
}

func TestDetectErrors(t *testing.T) {
	g := datasets.Fig1()
	small := gen.Path(3)
	if _, err := Detect(g, small); err == nil {
		t.Error("shrunken graph accepted")
	}
}

func TestDetectionReportString(t *testing.T) {
	g := datasets.Fig1()
	g2, _, _ := (Strategy{datasets.V4, 4, MultiPoint}).Apply(g)
	r, _ := Detect(g, g2)
	if s := r.String(); s == "" {
		t.Error("empty report string")
	}
}

func TestDegreeKSRisesWithPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := gen.BarabasiAlbert(rng, 150, 3)
	g2 := g.Clone()
	// Add many pendants: the degree distribution shifts.
	hub := 0
	for i := 0; i < 80; i++ {
		w := g2.AddNode()
		g2.AddEdge(hub, w)
	}
	r, err := Detect(g, g2)
	if err != nil {
		t.Fatal(err)
	}
	if r.DegreeKS <= 0.1 {
		t.Errorf("KS = %v after 80 pendants on 150 nodes, want clearly > 0.1", r.DegreeKS)
	}
}
