// Package diffusion simulates spreading processes on graphs. The
// paper's motivating examples justify centrality promotion through
// spread phenomena — information diffusing from high-betweenness users,
// rumors blocked by high-coreness nodes, influence radiating from
// high-eccentricity players. This package provides the simulators those
// scenarios need: the independent-cascade model, the
// susceptible-infected model, and spread-time measurement, so examples
// and experiments can verify that a promoted node actually behaves like
// a vital node.
package diffusion

import (
	"fmt"
	"math/rand"

	"promonet/internal/graph"
)

// IndependentCascade runs the independent-cascade (IC) model: starting
// from the seed set, each newly activated node gets one chance to
// activate each inactive neighbor with probability prob. It returns the
// set of activated nodes (as a boolean vector) and the number of rounds
// until quiescence.
func IndependentCascade(g *graph.Graph, rng *rand.Rand, seeds []int, prob float64) (active []bool, rounds int) {
	n := g.N()
	active = make([]bool, n)
	var frontier []int32
	for _, s := range seeds {
		if s < 0 || s >= n {
			panic(fmt.Sprintf("diffusion: seed %d outside [0, %d)", s, n))
		}
		if !active[s] {
			active[s] = true
			frontier = append(frontier, int32(s))
		}
	}
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			for _, u := range g.Adjacency(int(v)) {
				if !active[u] && rng.Float64() < prob {
					active[u] = true
					next = append(next, u)
				}
			}
		}
		if len(next) > 0 {
			rounds++ // count only rounds that activated someone
		}
		frontier = next
	}
	return active, rounds
}

// CascadeSize runs trials independent cascades from the seed set and
// returns the mean number of activated nodes — the standard influence
// estimate.
func CascadeSize(g *graph.Graph, rng *rand.Rand, seeds []int, prob float64, trials int) float64 {
	if trials < 1 {
		panic("diffusion: trials must be >= 1")
	}
	total := 0
	for i := 0; i < trials; i++ {
		active, _ := IndependentCascade(g, rng, seeds, prob)
		for _, a := range active {
			if a {
				total++
			}
		}
	}
	return float64(total) / float64(trials)
}

// SpreadTime runs the susceptible-infected (SI) model with transmission
// probability 1 — i.e. deterministic BFS flooding — from the seed and
// returns the number of rounds to reach frac (0 < frac <= 1) of the
// nodes in the seed's component, or -1 if the component is too small.
// With prob = 1 this equals the BFS depth reaching that coverage, the
// quantity that makes high-closeness/eccentricity nodes "fast
// spreaders".
func SpreadTime(g *graph.Graph, seed int, frac float64) int {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("diffusion: frac %v outside (0, 1]", frac))
	}
	n := g.N()
	if seed < 0 || seed >= n {
		panic(fmt.Sprintf("diffusion: seed %d outside [0, %d)", seed, n))
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[seed] = 0
	queue := []int{seed}
	reached := 1
	compSize := 0
	// First pass: component size (could share the BFS, but clarity
	// first — a second BFS is cheap).
	seen := make([]bool, n)
	seen[seed] = true
	comp := []int{seed}
	for i := 0; i < len(comp); i++ {
		for _, u := range g.Adjacency(comp[i]) {
			if !seen[u] {
				seen[u] = true
				comp = append(comp, int(u))
			}
		}
	}
	compSize = len(comp)
	need := int(frac * float64(compSize))
	if need < 1 {
		need = 1
	}
	if reached >= need {
		return 0
	}
	for i := 0; i < len(queue); i++ {
		v := queue[i]
		for _, u := range g.Adjacency(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				reached++
				if reached >= need {
					return dist[u]
				}
				queue = append(queue, int(u))
			}
		}
	}
	return -1
}

// RumorContainment measures the rumor-blocking power of a node set
// (the coreness motivating example): a rumor starts at each of trials
// random nodes and spreads by independent cascade, but blocker nodes
// never forward it. It returns the mean fraction of nodes the rumor
// reaches. Lower is better for the blockers.
func RumorContainment(g *graph.Graph, rng *rand.Rand, blockers []int, prob float64, trials int) float64 {
	n := g.N()
	if n == 0 || trials < 1 {
		return 0
	}
	isBlocker := make([]bool, n)
	for _, b := range blockers {
		isBlocker[b] = true
	}
	totalFrac := 0.0
	for i := 0; i < trials; i++ {
		start := rng.Intn(n)
		active := make([]bool, n)
		active[start] = true
		frontier := []int32{int32(start)}
		reached := 1
		for len(frontier) > 0 {
			var next []int32
			for _, v := range frontier {
				if isBlocker[v] && int(v) != start {
					continue // blockers hear the rumor but never forward it
				}
				for _, u := range g.Adjacency(int(v)) {
					if !active[u] && rng.Float64() < prob {
						active[u] = true
						reached++
						next = append(next, u)
					}
				}
			}
			frontier = next
		}
		totalFrac += float64(reached) / float64(n)
	}
	return totalFrac / float64(trials)
}
