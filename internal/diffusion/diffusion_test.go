package diffusion

import (
	"math/rand"
	"testing"
	"testing/quick"

	"promonet/internal/gen"
	"promonet/internal/graph"
)

func TestIndependentCascadeProbOne(t *testing.T) {
	g := gen.Path(6)
	rng := rand.New(rand.NewSource(1))
	active, rounds := IndependentCascade(g, rng, []int{0}, 1.0)
	for v, a := range active {
		if !a {
			t.Fatalf("node %d not activated at prob 1", v)
		}
	}
	if rounds != 5 {
		t.Errorf("rounds = %d, want 5 (path length)", rounds)
	}
}

func TestIndependentCascadeProbZero(t *testing.T) {
	g := gen.Clique(5)
	rng := rand.New(rand.NewSource(2))
	active, rounds := IndependentCascade(g, rng, []int{2}, 0)
	count := 0
	for _, a := range active {
		if a {
			count++
		}
	}
	if count != 1 {
		t.Errorf("activated %d nodes at prob 0, want 1", count)
	}
	if rounds != 0 {
		t.Errorf("rounds = %d, want 0 (nothing ever activated)", rounds)
	}
}

func TestIndependentCascadePanicsOnBadSeed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad seed did not panic")
		}
	}()
	IndependentCascade(gen.Path(3), rand.New(rand.NewSource(1)), []int{9}, 0.5)
}

func TestCascadeSizeMonotoneInProb(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.BarabasiAlbert(rng, 200, 3)
	low := CascadeSize(g, rand.New(rand.NewSource(4)), []int{0}, 0.02, 60)
	high := CascadeSize(g, rand.New(rand.NewSource(4)), []int{0}, 0.4, 60)
	if high <= low {
		t.Errorf("cascade size not monotone in prob: %v (p=0.02) vs %v (p=0.4)", low, high)
	}
}

func TestCascadeSizeHubBeatsLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.BarabasiAlbert(rng, 300, 2)
	hub := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	leaf := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) < g.Degree(leaf) {
			leaf = v
		}
	}
	hubSize := CascadeSize(g, rand.New(rand.NewSource(6)), []int{hub}, 0.1, 80)
	leafSize := CascadeSize(g, rand.New(rand.NewSource(6)), []int{leaf}, 0.1, 80)
	if hubSize <= leafSize {
		t.Errorf("hub cascade %v <= leaf cascade %v", hubSize, leafSize)
	}
}

func TestSpreadTimePath(t *testing.T) {
	g := gen.Path(9)
	// From the end, reaching everyone takes 8 rounds; from the middle, 4.
	if got := SpreadTime(g, 0, 1.0); got != 8 {
		t.Errorf("SpreadTime(end) = %d, want 8", got)
	}
	if got := SpreadTime(g, 4, 1.0); got != 4 {
		t.Errorf("SpreadTime(middle) = %d, want 4", got)
	}
	if got := SpreadTime(g, 0, 0.1); got != 0 {
		t.Errorf("SpreadTime(frac=0.1) = %d, want 0 (seed alone suffices)", got)
	}
}

func TestSpreadTimeDisconnected(t *testing.T) {
	g := graph.FromEdges(5, [][2]int{{0, 1}, {2, 3}})
	// frac is relative to the seed's component, so this succeeds.
	if got := SpreadTime(g, 0, 1.0); got != 1 {
		t.Errorf("SpreadTime on 2-node component = %d, want 1", got)
	}
}

func TestRumorContainmentBlockersHelp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.BarabasiAlbert(rng, 300, 2)
	// Blocking the top-degree hubs must shrink the rumor's reach.
	type dv struct{ d, v int }
	hubs := []int{}
	best := make([]dv, 0, g.N())
	for v := 0; v < g.N(); v++ {
		best = append(best, dv{g.Degree(v), v})
	}
	for i := 0; i < 10; i++ {
		mx := i
		for j := i + 1; j < len(best); j++ {
			if best[j].d > best[mx].d {
				mx = j
			}
		}
		best[i], best[mx] = best[mx], best[i]
		hubs = append(hubs, best[i].v)
	}
	unblocked := RumorContainment(g, rand.New(rand.NewSource(8)), nil, 0.2, 80)
	blocked := RumorContainment(g, rand.New(rand.NewSource(8)), hubs, 0.2, 80)
	if blocked >= unblocked {
		t.Errorf("hub blockers did not reduce rumor reach: %v >= %v", blocked, unblocked)
	}
}

// TestPropertyCascadeBounded: activation counts never exceed n and
// always include the seeds.
func TestPropertyCascadeBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 10+rng.Intn(30), 40)
		s := rng.Intn(g.N())
		active, _ := IndependentCascade(g, rng, []int{s}, rng.Float64())
		if !active[s] {
			return false
		}
		count := 0
		for _, a := range active {
			if a {
				count++
			}
		}
		return count >= 1 && count <= g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
