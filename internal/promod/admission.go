package promod

import (
	"sync"
	"time"

	"promonet/internal/obs"
)

// admission is the daemon's two-layer load-shedding gate.
//
// Layer 1 — per-tenant token buckets: each tenant (X-Promod-Tenant
// header, "anonymous" when absent) refills at TenantRate requests/sec up
// to TenantBurst. A drained bucket sheds immediately with the exact
// Retry-After the next token needs; one tenant flooding the daemon
// cannot starve the others.
//
// Layer 2 — bounded in-flight gate: at most MaxInflight requests
// execute, at most QueueDepth wait (for at most QueueWait). Everything
// beyond that is shed with 429. Bounding the queue is the point — past
// saturation the daemon degrades by refusing quickly, not by growing an
// unbounded backlog whose latency makes every answer stale.
type admission struct {
	cfg      AdmissionConfig
	slots    chan struct{} // in-flight permits; nil disables the gate
	waiters  chan struct{} // queue permits; nil when slots is nil
	shed     *obs.Counter
	inflight *obs.Gauge

	mu      sync.Mutex
	tenants map[string]*tokenBucket
}

func newAdmission(cfg AdmissionConfig, shed *obs.Counter, inflight *obs.Gauge) *admission {
	a := &admission{cfg: cfg, shed: shed, inflight: inflight, tenants: make(map[string]*tokenBucket)}
	if cfg.MaxInflight > 0 {
		a.slots = make(chan struct{}, cfg.MaxInflight)
		depth := cfg.QueueDepth
		if depth < 0 {
			depth = 0
		}
		a.waiters = make(chan struct{}, depth)
	}
	if a.cfg.QueueWait <= 0 {
		a.cfg.QueueWait = DefaultQueueWait
	}
	if a.cfg.TenantBurst < 1 {
		a.cfg.TenantBurst = 1
	}
	return a
}

// admit decides a request's fate: admitted (release must be called when
// the request finishes) or shed (retryAfter hints the client's backoff).
func (a *admission) admit(tenant string) (release func(), retryAfter time.Duration, ok bool) {
	if a.cfg.TenantRate > 0 {
		if wait, allowed := a.bucketFor(tenant).take(time.Now()); !allowed {
			a.shed.Inc()
			return nil, wait, false
		}
	}
	if a.slots == nil {
		a.inflight.Add(1)
		return func() { a.inflight.Add(-1) }, 0, true
	}
	select {
	case a.slots <- struct{}{}:
	default:
		// No free slot: try to queue, bounded in both depth and time.
		select {
		case a.waiters <- struct{}{}:
		default:
			a.shed.Inc()
			return nil, a.cfg.QueueWait, false
		}
		timer := time.NewTimer(a.cfg.QueueWait)
		select {
		case a.slots <- struct{}{}:
			timer.Stop()
			<-a.waiters
		case <-timer.C:
			<-a.waiters
			a.shed.Inc()
			return nil, a.cfg.QueueWait, false
		}
	}
	a.inflight.Add(1)
	return func() {
		a.inflight.Add(-1)
		<-a.slots
	}, 0, true
}

// bucketFor returns (creating on first use) the tenant's bucket.
func (a *admission) bucketFor(tenant string) *tokenBucket {
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.tenants[tenant]
	if !ok {
		b = &tokenBucket{tokens: a.cfg.TenantBurst, last: time.Now(), rate: a.cfg.TenantRate, burst: a.cfg.TenantBurst}
		a.tenants[tenant] = b
	}
	return b
}

// tokenBucket is a standard leaky token bucket: refills continuously at
// rate tokens/sec up to burst, spends one token per admitted request.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

// take spends one token if available; otherwise it reports how long
// until the next token accrues. Callers capture now before acquiring
// the lock, so under contention timestamps can arrive out of order;
// last must only ever advance — writing an older now back would let
// the next caller re-credit an interval that was already refilled
// (measured at +33% admitted over the configured rate at 10k req/s).
func (b *tokenBucket) take(now time.Time) (retryAfter time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / b.rate
	return time.Duration(need * float64(time.Second)), false
}
