package promod

import "promonet/internal/obs"

// Prediction modes of a PromoteResponse: how much the reported rank
// delta is worth.
const (
	// ModeClosedForm marks an exactly computed outcome from a closed
	// form (degree: the new score is the old score plus the attached
	// edges, no recomputation needed).
	ModeClosedForm = "closed-form"
	// ModeGuaranteed marks a provable lower bound from the paper's p′
	// lemmas: the true rank delta is at least the reported one.
	ModeGuaranteed = "guaranteed"
	// ModeExact marks a full engine recomputation on a copy of the host
	// with the strategy applied ("exact": true).
	ModeExact = "exact"
	// ModeNone means no prediction is available for the measure/strategy
	// combination (e.g. harmonic and Katz have no proved lemma; a
	// strategy overridden away from Table I voids the bound).
	ModeNone = "none"
)

// SnapshotInfo describes an installed host snapshot. Seq increases by
// one per swap, so two loads of identical content (same Digest) are
// still distinguishable.
type SnapshotInfo struct {
	// Seq is the swap sequence number, starting at 1 for the initial
	// load.
	Seq uint64 `json:"seq"`
	// Name is the configured source name (file path or generator tag).
	Name string `json:"name"`
	// Backend is the serving representation, "csr" or "map".
	Backend string `json:"backend"`
	// N and M are node and edge counts.
	N int `json:"n"`
	M int `json:"m"`
	// Digest is the host's content digest (graph.Digest).
	Digest string `json:"digest"`
	// LoadedAt is the RFC 3339 UTC time the snapshot was installed.
	LoadedAt string `json:"loaded_at"`
}

// PromoteRequest is the body of POST /v1/promote. Exactly one of Budget
// and Size must be positive: Budget asks the daemon to pick the largest
// promotion size affordable within that many inserted edges, Size fixes
// p directly.
type PromoteRequest struct {
	// Target is the external label of the node to promote.
	Target int64 `json:"target"`
	// Measure is the centrality measure, long or short name
	// ("betweenness"/"BC", "coreness"/"RC", ...).
	Measure string `json:"measure"`
	// Budget is the edge budget |Δ_E| to spend (mutually exclusive with
	// Size).
	Budget int `json:"budget,omitempty"`
	// Size is the promotion size p = |Δ_V| (mutually exclusive with
	// Budget).
	Size int `json:"size,omitempty"`
	// Strategy optionally overrides the principle-guided strategy type:
	// "multi-point", "double-line", or "single-clique". Overriding away
	// from Table I voids the lemma guarantee (Mode degrades to "none").
	Strategy string `json:"strategy,omitempty"`
	// Exact requests a full rescoring of the host with the strategy
	// applied; refused with 422 on hosts larger than the server's
	// ExactMaxN.
	Exact bool `json:"exact,omitempty"`
}

// ExactOutcome is the measured (not predicted) result of applying the
// strategy, present when the request set Exact.
type ExactOutcome struct {
	// ScoreAfter is the target's score in G′.
	ScoreAfter float64 `json:"score_after"`
	// RankAfter is the target's competition rank in G′.
	RankAfter int `json:"rank_after"`
	// DeltaRank is rank_before − rank_after (positive = promoted).
	DeltaRank int `json:"delta_rank"`
	// Ratio is the paper's promotion ratio R = ΔRank / (n − 1).
	Ratio float64 `json:"ratio"`
	// Effective reports whether the ranking strictly improved.
	Effective bool `json:"effective"`
	// Inserted is |Δ_V|, the number of nodes actually added.
	Inserted int `json:"inserted"`
}

// PromoteResponse is the body of a successful POST /v1/promote.
type PromoteResponse struct {
	// Target echoes the requested label.
	Target int64 `json:"target"`
	// Measure is the resolved long measure name.
	Measure string `json:"measure"`
	// Principle is the paper principle guiding the strategy
	// ("maximum-gain" or "minimum-loss").
	Principle string `json:"principle"`
	// Strategy is the strategy type used.
	Strategy string `json:"strategy"`
	// Size is the promotion size p.
	Size int `json:"size"`
	// EdgeCost is |Δ_E| for that size and strategy.
	EdgeCost int `json:"edge_cost"`
	// GuaranteedSize is the smallest p provably improving the ranking
	// (the lemma's p′ rounded up past strictness); 0 when the target is
	// already rank 1 or no bound applies.
	GuaranteedSize int `json:"guaranteed_size,omitempty"`
	// ScoreBefore and RankBefore are the target's standing on the
	// pinned snapshot.
	ScoreBefore float64 `json:"score_before"`
	RankBefore  int     `json:"rank_before"`
	// PredictedScore is the target's post-promotion score when a closed
	// form exists (degree only); omitted otherwise.
	PredictedScore *float64 `json:"predicted_score,omitempty"`
	// PredictedRank and PredictedDelta are the predicted standing; under
	// ModeGuaranteed they are bounds (true rank ≤ predicted rank).
	PredictedRank  int `json:"predicted_rank"`
	PredictedDelta int `json:"predicted_delta_rank"`
	// Mode qualifies the prediction: ModeClosedForm, ModeGuaranteed,
	// ModeExact, or ModeNone.
	Mode string `json:"mode"`
	// Exact is the measured outcome, present iff the request set Exact.
	Exact *ExactOutcome `json:"exact,omitempty"`
	// Snapshot identifies the host the answer was computed on.
	Snapshot SnapshotInfo `json:"snapshot"`
	// Manifest is the self-validating provenance record; its Dataset
	// digest matches Snapshot.Digest by construction.
	Manifest *obs.Manifest `json:"manifest"`
}

// NodeScore is one node's standing in a ScoresResponse.
type NodeScore struct {
	// Label is the node's external label.
	Label int64 `json:"label"`
	// Score is the node's centrality score.
	Score float64 `json:"score"`
	// Rank is the node's competition rank (1 + number of strictly
	// higher scores).
	Rank int `json:"rank"`
}

// ScoresResponse is the body of GET /v1/scores.
type ScoresResponse struct {
	// Measure is the resolved long measure name.
	Measure string `json:"measure"`
	// Snapshot identifies the host the scores were computed on.
	Snapshot SnapshotInfo `json:"snapshot"`
	// Nodes are the requested labels' standings, in request order.
	Nodes []NodeScore `json:"nodes,omitempty"`
	// Top are the k highest-ranked nodes (ties broken by ascending
	// label), when top=k was requested.
	Top []NodeScore `json:"top,omitempty"`
}

// ReloadResponse is the body of POST /admin/reload.
type ReloadResponse struct {
	// Snapshot describes the newly installed host.
	Snapshot SnapshotInfo `json:"snapshot"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	// Status is "ok" whenever the daemon answers at all.
	Status string `json:"status"`
	// Snapshot describes the currently installed host.
	Snapshot SnapshotInfo `json:"snapshot"`
}

// ErrorResponse is the JSON error envelope every non-2xx response uses.
type ErrorResponse struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
}
