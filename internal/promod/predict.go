package promod

import (
	"fmt"
	"math"
	"sort"

	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/engine"
	"promonet/internal/graph"
	"promonet/internal/graph/csr"
)

// measureSpec ties one servable centrality measure to its engine
// kernel, its paper metadata (principle, Table I strategy), and the
// prediction rule the daemon answers with.
type measureSpec struct {
	name string // canonical long name
	em   engine.Measure
	cm   core.Measure // principle + guided strategy + short name
	kind predictKind
}

// predictKind selects the closed-form prediction rule for a measure.
type predictKind int

const (
	// predictNone: no proved lemma (harmonic, Katz) — serve base
	// standing only and suggest exact mode.
	predictNone predictKind = iota
	// predictDegree: exact closed form — the new degree is the old one
	// plus the attached edges.
	predictDegree
	// predictBetweenness: Lemma 5.3 — multi-point overtakes v iff
	// (p−1)² > BC(v) − BC(t).
	predictBetweenness
	// predictCoreness: Lemma 5.6 — single-clique overtakes v iff
	// p > RC(v) + 1.
	predictCoreness
	// predictCloseness: Lemma 5.9 — multi-point overtakes v iff
	// p > (ĈC(t) − ĈC(v)) / dist(v, t).
	predictCloseness
	// predictEccentricity: Lemma 5.12 — double-line overtakes every
	// higher-ranked node iff p > 2·ĒC(t).
	predictEccentricity
)

// measureSpecByName resolves a long or short measure name to its
// serving spec, rejecting measures with no engine kernel.
func measureSpecByName(name string) (measureSpec, error) {
	cm, err := core.MeasureByName(name)
	if err != nil {
		return measureSpec{}, err
	}
	spec := measureSpec{name: cm.Name(), cm: cm}
	switch cm.Name() {
	case "betweenness":
		spec.em, spec.kind = engine.Betweenness(centrality.PairsUnordered), predictBetweenness
	case "coreness":
		spec.em, spec.kind = engine.Coreness(), predictCoreness
	case "closeness":
		spec.em, spec.kind = engine.Closeness(), predictCloseness
	case "eccentricity":
		spec.em, spec.kind = engine.Eccentricity(), predictEccentricity
	case "degree":
		spec.em, spec.kind = engine.Degree(), predictDegree
	case "harmonic":
		spec.em, spec.kind = engine.Harmonic(), predictNone
	case "katz":
		spec.em, spec.kind = engine.Katz(), predictNone
	default:
		return measureSpec{}, fmt.Errorf("promod: measure %q has no serving kernel", cm.Name())
	}
	return spec, nil
}

// strategyTypeByName parses a strategy-override string.
func strategyTypeByName(name string) (core.StrategyType, error) {
	switch name {
	case "multi-point":
		return core.MultiPoint, nil
	case "double-line":
		return core.DoubleLine, nil
	case "single-clique":
		return core.SingleClique, nil
	default:
		return 0, fmt.Errorf("promod: unknown strategy %q (want multi-point, double-line, or single-clique)", name)
	}
}

// rankIndex is a score vector plus its descending sort, giving O(log n)
// competition ranks and overtake counts and O(k) top-k listings. Built
// once per (snapshot, measure) and shared by every request through the
// coalescer.
type rankIndex struct {
	scores []float64 // by node ID
	order  []int32   // node IDs by descending score, ties ascending ID
	sorted []float64 // scores in order sequence (descending)
}

func buildRankIndex(scores []float64) *rankIndex {
	order := make([]int32, len(scores))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		si, sj := scores[order[i]], scores[order[j]]
		if si != sj {
			return si > sj
		}
		return order[i] < order[j]
	})
	sorted := make([]float64, len(scores))
	for i, id := range order {
		sorted[i] = scores[id]
	}
	return &rankIndex{scores: scores, order: order, sorted: sorted}
}

// countGreater returns #{v : score(v) > s}.
func (ri *rankIndex) countGreater(s float64) int {
	return sort.Search(len(ri.sorted), func(i int) bool { return ri.sorted[i] <= s })
}

// countGreaterEq returns #{v : score(v) ≥ s}.
func (ri *rankIndex) countGreaterEq(s float64) int {
	return sort.Search(len(ri.sorted), func(i int) bool { return ri.sorted[i] < s })
}

// rankOf returns v's competition rank (1 + strictly-greater count).
func (ri *rankIndex) rankOf(v int) int { return 1 + ri.countGreater(ri.scores[v]) }

// minAbove returns the smallest score strictly greater than s, or
// ok=false when s is already the maximum.
func (ri *rankIndex) minAbove(s float64) (float64, bool) {
	cnt := ri.countGreater(s)
	if cnt == 0 {
		return 0, false
	}
	return ri.sorted[cnt-1], true
}

// versionPrefix is the coalescer key prefix pinning a result to one
// snapshot version.
func versionPrefix(version uint64) string { return fmt.Sprintf("v%d|", version) }

// scoresFor returns the measure's base score vector on the pinned
// snapshot, computed once per (version, measure) across all requests.
func (s *Server) scoresFor(st *snapshotState, spec measureSpec) ([]float64, error) {
	v, err := s.coal.do(versionPrefix(st.version)+"scores|"+spec.em.Key(), func() (any, error) {
		return s.eng.Scores(st.view, spec.em), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]float64), nil
}

// rankIndexFor returns the measure's rank index on the pinned snapshot.
func (s *Server) rankIndexFor(st *snapshotState, spec measureSpec) (*rankIndex, error) {
	v, err := s.coal.do(versionPrefix(st.version)+"rank|"+spec.em.Key(), func() (any, error) {
		scores, err := s.scoresFor(st, spec)
		if err != nil {
			return nil, err
		}
		return buildRankIndex(scores), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*rankIndex), nil
}

// farnessFor returns the integer farness vector (closeness bounds work
// in farness space).
func (s *Server) farnessFor(st *snapshotState) ([]int64, error) {
	v, err := s.coal.do(versionPrefix(st.version)+"farness", func() (any, error) {
		return s.eng.FarnessInt64(st.view), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]int64), nil
}

// recipEccFor returns the reciprocal-eccentricity vector ĒC (max BFS
// distance per node).
func (s *Server) recipEccFor(st *snapshotState) ([]float64, error) {
	v, err := s.coal.do(versionPrefix(st.version)+"recip-ecc", func() (any, error) {
		return s.eng.Scores(st.view, engine.ReciprocalEccentricity()), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]float64), nil
}

// distancesFor returns BFS hop distances from t on the pinned snapshot.
func (s *Server) distancesFor(st *snapshotState, t int) ([]int32, error) {
	v, err := s.coal.do(fmt.Sprintf("%sdist|%d", versionPrefix(st.version), t), func() (any, error) {
		return centrality.Distances(st.view, t), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]int32), nil
}

// prediction is the outcome of the closed-form rules for one strategy.
type prediction struct {
	mode           string
	predictedScore float64 // NaN when no closed form exists
	predictedRank  int
	delta          int
	guaranteedSize int
}

// sizeFromBound converts a real-valued p′ bound into the smallest
// integer size strictly exceeding it (mirrors core's finishBound).
func sizeFromBound(bound float64) int {
	if math.IsInf(bound, 1) || math.IsNaN(bound) {
		return 0
	}
	p := int(math.Floor(bound)) + 1
	if p < 1 {
		p = 1
	}
	return p
}

// predictWith evaluates the paper's closed-form rules for strat on the
// pinned snapshot. Under ModeGuaranteed the returned delta is a provable
// lower bound on the rank improvement; under ModeClosedForm it is exact;
// under ModeNone no prediction applies (the caller reports base standing
// only). Guided means strat.Type matches Table I for the measure —
// overridden strategies void the lemma.
func (s *Server) predictWith(st *snapshotState, spec measureSpec, strat core.Strategy, ri *rankIndex) (prediction, error) {
	t, p := strat.Target, strat.Size
	sT := ri.scores[t]
	rankBefore := ri.rankOf(t)
	pr := prediction{mode: ModeNone, predictedScore: math.NaN(), predictedRank: rankBefore}
	guided := strat.Type == spec.cm.Strategy()

	switch spec.kind {
	case predictDegree:
		// Exact closed form for every strategy type: the target's new
		// degree is its old degree plus the edges attached to it, and no
		// original node's degree changes. Inserted nodes never score
		// strictly above the target (their degree is at most p ≤ sT+p).
		attached := p
		if strat.Type == core.DoubleLine && p > 1 {
			attached = 2
		}
		after := sT + float64(attached)
		newRank := 1 + ri.countGreater(after)
		pr.mode = ModeClosedForm
		pr.predictedScore = after
		pr.predictedRank = newRank
		pr.delta = rankBefore - newRank
		if above, ok := ri.minAbove(sT); ok && strat.Type != core.DoubleLine {
			// p attached edges lift the score by p; the smallest
			// improving size strictly exceeds the gap to the next score.
			pr.guaranteedSize = sizeFromBound(above - sT)
		}

	case predictBetweenness:
		if !guided {
			break
		}
		gain := float64(p-1) * float64(p-1)
		over := ri.countGreater(sT) - ri.countGreaterEq(sT+gain)
		if over < 0 {
			over = 0
		}
		pr.mode = ModeGuaranteed
		pr.delta = over
		pr.predictedRank = rankBefore - over
		if above, ok := ri.minAbove(sT); ok {
			pr.guaranteedSize = sizeFromBound(core.BoostSizeBetweenness(sT, above))
		}

	case predictCoreness:
		if !guided {
			break
		}
		// Single-clique overtakes v iff p > RC(v)+1, i.e. RC(v) < p−1.
		over := ri.countGreater(sT) - ri.countGreaterEq(float64(p-1))
		if over < 0 {
			over = 0
		}
		pr.mode = ModeGuaranteed
		pr.delta = over
		pr.predictedRank = rankBefore - over
		if above, ok := ri.minAbove(sT); ok {
			pr.guaranteedSize = sizeFromBound(core.BoostSizeCoreness(int(above)))
		}

	case predictCloseness:
		if !guided {
			break
		}
		far, err := s.farnessFor(st)
		if err != nil {
			return pr, err
		}
		dist, err := s.distancesFor(st, t)
		if err != nil {
			return pr, err
		}
		over := 0
		best := math.Inf(1)
		for v := range far {
			if v == t || far[v] >= far[t] || dist[v] <= 0 {
				continue
			}
			bound := core.BoostSizeCloseness(far[t], far[v], int(dist[v]))
			if float64(p) > bound {
				over++
			}
			if bound < best {
				best = bound
			}
		}
		pr.mode = ModeGuaranteed
		pr.delta = over
		pr.predictedRank = rankBefore - over
		pr.guaranteedSize = sizeFromBound(best)

	case predictEccentricity:
		if !guided {
			break
		}
		recip, err := s.recipEccFor(st)
		if err != nil {
			return pr, err
		}
		hasHigher := false
		for v := range recip {
			if recip[v] < recip[t] && recip[v] > 0 {
				hasHigher = true
				break
			}
		}
		if !hasHigher {
			pr.mode = ModeGuaranteed
			break // already top-ranked among comparable nodes
		}
		bound := core.BoostSizeEccentricity(int(recip[t]))
		pr.mode = ModeGuaranteed
		pr.guaranteedSize = sizeFromBound(bound)
		if float64(p) > bound {
			// Lemma 5.12: the double line pushes t's eccentricity below
			// every node's, overtaking the whole field above it.
			pr.delta = rankBefore - 1
			pr.predictedRank = 1
		}
	}
	return pr, nil
}

// exactOutcome applies the strategy to a private copy of the pinned
// host and rescoring it with the engine — the measured ground truth the
// predictions bound. On the csr backend the copy is a csr.Overlay (a
// few touched rows, not a host clone); on the map backend it is a full
// materialized clone.
func (s *Server) exactOutcome(st *snapshotState, spec measureSpec, strat core.Strategy, ri *rankIndex) (*ExactOutcome, error) {
	key := fmt.Sprintf("%sexact|%s|%d|%d|%d", versionPrefix(st.version), spec.em.Key(), strat.Target, strat.Size, int(strat.Type))
	v, err := s.coal.do(key, func() (any, error) {
		var after []float64
		var inserted []int
		var applyErr error
		if st.snap != nil {
			ov := csr.NewOverlay(st.snap)
			inserted, applyErr = strat.ApplyTo(ov)
			if applyErr == nil {
				after = s.eng.Scores(ov, spec.em)
			}
		} else {
			g2 := graph.Materialize(st.g)
			inserted, applyErr = strat.ApplyTo(g2)
			if applyErr == nil {
				after = s.eng.Scores(g2, spec.em)
			}
		}
		if applyErr != nil {
			return nil, applyErr
		}
		rankBefore := ri.rankOf(strat.Target)
		rankAfter := centrality.RankOf(after, strat.Target)
		delta := rankBefore - rankAfter
		return &ExactOutcome{
			ScoreAfter: after[strat.Target],
			RankAfter:  rankAfter,
			DeltaRank:  delta,
			Ratio:      centrality.Ratio(delta, st.n),
			Effective:  delta > 0,
			Inserted:   len(inserted),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*ExactOutcome), nil
}
