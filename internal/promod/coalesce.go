package promod

import (
	"errors"
	"strings"
	"sync"

	"promonet/internal/obs"
)

// coalescer is the daemon's single-flight layer: concurrent requests for
// the same (snapshot-version, family, key) computation share one
// execution, and completed results live in a bounded FIFO cache keyed by
// the same string. Keys embed the pinned snapshot's version ("v17|…"),
// so a result can never be served against the wrong host; a swap prunes
// every superseded version's entries.
//
// This is what turns "thousands of clients ask about the same few
// popular targets" from thousands of engine batches into one: the first
// request computes, its contemporaries block on the flight, and
// everyone after hits the cache.
type coalescer struct {
	mu        sync.Mutex
	flights   map[string]*flight
	cache     map[string]any
	order     []string // FIFO eviction order of cache keys
	max       int
	coalesced *obs.Counter
}

// flight is one in-progress computation; followers block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

func newCoalescer(maxEntries int, coalesced *obs.Counter) *coalescer {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &coalescer{
		flights:   make(map[string]*flight),
		cache:     make(map[string]any),
		max:       maxEntries,
		coalesced: coalesced,
	}
}

// do returns the cached result for key, joins an in-progress flight for
// it, or becomes the leader and runs compute. Errors are returned to the
// leader and every follower of that flight but never cached — the next
// request retries.
func (c *coalescer) do(key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	if v, ok := c.cache[key]; ok {
		c.mu.Unlock()
		return v, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.coalesced.Inc()
		<-f.done
		return f.val, f.err
	}
	f := &flight{done: make(chan struct{})}
	// Pre-set the error so that a panicking compute (recovered by the
	// HTTP layer) still releases followers with a failure instead of a
	// nil result.
	f.err = errors.New("promod: coalesced computation aborted")
	c.flights[key] = f
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil {
			c.insertLocked(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = compute()
	return f.val, f.err
}

// insertLocked adds a completed result under c.mu, evicting the oldest
// entry when full.
func (c *coalescer) insertLocked(key string, val any) {
	if _, ok := c.cache[key]; ok {
		return
	}
	for len(c.cache) >= c.max && len(c.order) > 0 {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.cache, old)
	}
	c.cache[key] = val
	c.order = append(c.order, key)
}

// prune drops every cached result except the given snapshot version's.
// Called from the swap path: requests still in flight on an old snapshot
// recompute on miss (correct, just uncached), while the new snapshot
// starts with the full cache budget.
func (c *coalescer) prune(keepVersion uint64) {
	prefix := versionPrefix(keepVersion)
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.order[:0]
	for _, k := range c.order {
		if strings.HasPrefix(k, prefix) {
			kept = append(kept, k)
		} else {
			delete(c.cache, k)
		}
	}
	c.order = kept
}

// size reports the number of cached entries (tests only).
func (c *coalescer) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}
