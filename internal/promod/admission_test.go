package promod

import (
	"testing"
	"time"

	"promonet/internal/obs"
)

func TestAdmissionInflightGate(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInflight: 1, QueueWait: 20 * time.Millisecond},
		obs.NewCounter(), new(obs.Gauge))

	rel1, _, ok := a.admit("a")
	if !ok {
		t.Fatal("first request shed with a free slot")
	}
	// Slot taken, queue depth 0: immediate shed with a retry hint.
	if _, retry, ok := a.admit("a"); ok {
		t.Fatal("second request admitted past MaxInflight=1")
	} else if retry <= 0 {
		t.Errorf("shed without Retry-After hint: %v", retry)
	}
	rel1()
	rel2, _, ok := a.admit("a")
	if !ok {
		t.Fatal("request shed after the slot freed")
	}
	rel2()
}

func TestAdmissionQueueHandsOffSlot(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInflight: 1, QueueDepth: 1, QueueWait: time.Second},
		obs.NewCounter(), new(obs.Gauge))

	rel1, _, ok := a.admit("a")
	if !ok {
		t.Fatal("first admit failed")
	}
	got := make(chan bool, 1)
	go func() {
		rel, _, ok := a.admit("a")
		if ok {
			defer rel()
		}
		got <- ok
	}()
	time.Sleep(20 * time.Millisecond) // let the second request queue
	rel1()
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("queued request shed although a slot freed within QueueWait")
		}
	case <-time.After(time.Second):
		t.Fatal("queued request never resolved")
	}
}

func TestAdmissionQueueTimesOut(t *testing.T) {
	shed := obs.NewCounter()
	a := newAdmission(AdmissionConfig{MaxInflight: 1, QueueDepth: 1, QueueWait: 30 * time.Millisecond},
		shed, new(obs.Gauge))
	rel1, _, ok := a.admit("a")
	if !ok {
		t.Fatal("first admit failed")
	}
	defer rel1()
	start := time.Now()
	if _, _, ok := a.admit("a"); ok {
		t.Fatal("queued request admitted although the slot never freed")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("queue wait unbounded: %v", waited)
	}
	if shed.Value() != 1 {
		t.Errorf("shed counter = %d, want 1", shed.Value())
	}
}

func TestAdmissionTenantBuckets(t *testing.T) {
	a := newAdmission(AdmissionConfig{TenantRate: 1, TenantBurst: 1},
		obs.NewCounter(), new(obs.Gauge))

	rel, _, ok := a.admit("alice")
	if !ok {
		t.Fatal("alice's first request shed with a full bucket")
	}
	rel()
	if _, retry, ok := a.admit("alice"); ok {
		t.Fatal("alice's second request admitted with a drained bucket")
	} else if retry <= 0 || retry > 2*time.Second {
		t.Errorf("retry hint %v, want ~1s (time to the next token)", retry)
	}
	// One tenant's drained bucket must not starve another's.
	rel, _, ok = a.admit("bob")
	if !ok {
		t.Fatal("bob shed because alice drained her bucket")
	}
	rel()
}

// TestTokenBucketClockNeverRegresses pins the out-of-order-timestamp
// fix: admit callers capture time.Now() before the bucket lock, so
// under contention take can observe timestamps out of order. A stale
// timestamp must neither refill nor move last backwards — regressing
// last lets the next caller re-credit an interval that was already
// refilled, which measured as +33% admitted over the configured rate
// at 10k req/s with 64 contending clients.
func TestTokenBucketClockNeverRegresses(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := &tokenBucket{tokens: 1, last: t0, rate: 1000, burst: 1}

	if _, ok := b.take(t0); !ok {
		t.Fatal("initial token not granted")
	}
	// +1ms at rate 1000/s accrues exactly the one replacement token.
	if _, ok := b.take(t0.Add(time.Millisecond)); !ok {
		t.Fatal("refilled token not granted after 1ms")
	}
	// A late-arriving caller with a stale timestamp: bucket is empty,
	// and the stale time must not be written back to last.
	if _, ok := b.take(t0); ok {
		t.Fatal("stale-timestamp caller admitted from an empty bucket")
	}
	// Same instant as the newest observed time: with last regressed to
	// t0 this would double-credit the 1ms interval and wrongly admit.
	if _, ok := b.take(t0.Add(time.Millisecond)); ok {
		t.Fatal("interval re-credited after a clock regression")
	}
	if !b.last.Equal(t0.Add(time.Millisecond)) {
		t.Errorf("bucket clock regressed to %v", b.last)
	}
}
