// Package promod is the promotion-as-a-service daemon: a stdlib
// net/http server answering concurrent centrality and promotion queries
// over a shared immutable CSR snapshot of the host network. It is the
// repo's "millions of users" serving story — the paper's query-access
// model (an owner serving centrality answers about a network the
// clients cannot see) turned into a long-lived process.
//
// Request lifecycle:
//
//	admission (per-tenant token bucket + bounded in-flight gate,
//	            shedding 429 + Retry-After under backpressure)
//	→ snapshot pin (one atomic load; the request computes against that
//	                snapshot even if a reload swaps a new one in)
//	→ coalescing (single-flight per (snapshot-version, family, key):
//	              concurrent identical queries share one engine batch,
//	              completed ones are served from a bounded cache)
//	→ response (strategy, p, p′ guaranteed size, predicted rank delta,
//	            and a self-validating obs.Manifest carrying the pinned
//	            snapshot's digest)
//
// Promotion answers are predicted from the paper's closed-form p′
// bounds (Lemmas 5.3–5.12) over the memoized base score vectors, so the
// steady-state cost of a query is a cache lookup — that is what makes
// thousands of requests per second against a 10⁶-node host feasible.
// Exact rescoring (apply the strategy on a csr.Overlay, re-run the
// engine) is available behind "exact": true, guarded by a host-size
// limit so one request cannot monopolize the daemon.
//
// Graph reloads (SIGHUP in cmd/promod, or POST /admin/reload) build the
// new snapshot off to the side and install it with one atomic pointer
// store: in-flight requests finish on the snapshot they were admitted
// under, new requests see the new one, and no request ever observes a
// torn view. Shutdown drains in-flight requests before closing.
//
// Observability: every request runs under a promod/* span, and the
// promod.requests / promod.shed / promod.coalesced / promod.swaps
// counters (plus the promod.inflight gauge and promod.latency
// histogram) publish through the promonet expvar. See DESIGN.md §15.
package promod

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"promonet/internal/engine"
	"promonet/internal/gen"
	"promonet/internal/graph"
	"promonet/internal/obs"
)

// Span names of the promod request taxonomy (precomputed constants so
// the disabled-tracing path stays allocation-free).
const (
	spanPromote = "promod/promote"
	spanScores  = "promod/scores"
	spanReload  = "promod/reload"
)

// Source produces host graphs for the daemon: once at startup and again
// on every reload. Load may return different content across calls (a
// file rewritten on disk, a rotating generator) — that is exactly what
// the graceful snapshot swap exists for. A nil label vector means node
// IDs are their own labels.
type Source struct {
	// Name identifies the dataset in manifests and logs.
	Name string
	// Load reads or builds the host graph and its ID→label mapping.
	Load func() (*graph.Graph, []int64, error)
}

// FileSource loads the host from a SNAP-style edge-list file, re-read
// on every reload so an updated file swaps in via SIGHUP.
func FileSource(path string) Source {
	return Source{
		Name: path,
		Load: func() (*graph.Graph, []int64, error) { return graph.LoadEdgeListFile(path) },
	}
}

// BASource generates a Barabási–Albert host with n nodes and k edges
// per arrival from the given seed. The same seed reproduces the same
// graph on every reload; it exists for benchmarks and smoke tests that
// want a large host without a 100 MB edge-list file.
func BASource(n, k int, seed int64) Source {
	return Source{
		Name: fmt.Sprintf("ba-n%d-k%d-seed%d", n, k, seed),
		Load: func() (*graph.Graph, []int64, error) {
			return gen.BarabasiAlbert(rand.New(rand.NewSource(seed)), n, k), nil, nil
		},
	}
}

// AdmissionConfig tunes the daemon's two admission-control layers. The
// zero value disables both (every request admitted immediately).
type AdmissionConfig struct {
	// MaxInflight caps concurrently executing requests; 0 disables the
	// gate entirely (no semaphore on the hot path).
	MaxInflight int
	// QueueDepth is how many requests may wait for an in-flight slot
	// before new arrivals are shed outright. Ignored when MaxInflight
	// is 0.
	QueueDepth int
	// QueueWait bounds how long a queued request waits for a slot
	// before being shed; 0 means DefaultQueueWait. The bound is what
	// keeps the daemon from queueing unboundedly past saturation.
	QueueWait time.Duration
	// TenantRate is the per-tenant token refill rate in requests per
	// second; 0 disables per-tenant budgets.
	TenantRate float64
	// TenantBurst is the per-tenant bucket capacity; values below 1
	// are raised to 1 so an idle tenant can always send one request.
	TenantBurst float64
}

// DefaultQueueWait bounds a queued request's wait for an in-flight slot
// when AdmissionConfig.QueueWait is zero.
const DefaultQueueWait = 100 * time.Millisecond

// DefaultExactMaxN is the host-size ceiling for exact-mode rescoring
// when Config.ExactMaxN is zero: above it, "exact": true is refused
// (422) because a full engine recomputation would monopolize the
// daemon.
const DefaultExactMaxN = 200_000

// Config assembles a Server.
type Config struct {
	// Source provides the host graph at startup and on reload.
	Source Source
	// Backend selects the serving representation: "csr" (default)
	// freezes each load into an immutable flat-array snapshot; "map"
	// serves straight off the loaded adjacency-map graph (the baseline
	// the saturation benchmark compares against).
	Backend string
	// Admission tunes load shedding; the zero value admits everything.
	Admission AdmissionConfig
	// ExactMaxN guards exact-mode rescoring; 0 means DefaultExactMaxN.
	ExactMaxN int
	// Engine is the execution engine queries score through; nil means
	// engine.Default().
	Engine *engine.Engine
	// CacheEntries bounds the coalescer's completed-result cache; 0
	// means 4096 entries.
	CacheEntries int
}

// Server is the promotion-as-a-service daemon. Create one with New,
// expose it with Start (or mount Handler on your own listener), rotate
// hosts with Reload, and stop it with Shutdown.
type Server struct {
	cfg   Config
	eng   *engine.Engine
	state atomic.Pointer[snapshotState]
	seq   atomic.Uint64

	coal *coalescer
	adm  *admission

	reloadMu sync.Mutex
	httpSrv  *http.Server
	ln       net.Listener
	started  time.Time

	mRequests *obs.Counter
	mShed     *obs.Counter
	mSwaps    *obs.Counter
	hLatency  *obs.Histogram
}

// New builds a Server and performs the initial host load + freeze
// synchronously, so a returned Server always has a snapshot to serve.
func New(cfg Config) (*Server, error) {
	if cfg.Source.Load == nil {
		return nil, fmt.Errorf("promod: Config.Source is required")
	}
	switch cfg.Backend {
	case "", "csr", "map":
	default:
		return nil, fmt.Errorf("promod: backend must be csr or map, got %q", cfg.Backend)
	}
	eng := cfg.Engine
	if eng == nil {
		eng = engine.Default()
	}
	reg := obs.Default()
	s := &Server{
		cfg:       cfg,
		eng:       eng,
		started:   time.Now(),
		mRequests: reg.Counter("promod.requests"),
		mShed:     reg.Counter("promod.shed"),
		mSwaps:    reg.Counter("promod.swaps"),
		hLatency:  reg.Histogram("promod.latency"),
	}
	s.coal = newCoalescer(cfg.CacheEntries, reg.Counter("promod.coalesced"))
	s.adm = newAdmission(cfg.Admission, s.mShed, reg.Gauge("promod.inflight"))
	if _, err := s.Reload(); err != nil {
		return nil, fmt.Errorf("promod: initial load: %w", err)
	}
	return s, nil
}

// Reload loads a fresh host from the configured source, builds its
// serving state (freeze + label index) off to the side, and installs it
// with one atomic store — the graceful snapshot swap. In-flight
// requests keep computing against the snapshot they pinned at
// admission; only requests admitted after the store see the new host.
// Concurrent reloads serialize.
func (s *Server) Reload() (SnapshotInfo, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	_, sp := obs.Start(context.Background(), spanReload)
	defer sp.End()
	g, labels, err := s.cfg.Source.Load()
	if err != nil {
		return SnapshotInfo{}, err
	}
	st, err := s.buildState(g, labels)
	if err != nil {
		return SnapshotInfo{}, err
	}
	sp.Int("n", st.n)
	sp.Int("m", st.m)
	sp.Int64("seq", int64(st.seq))
	s.state.Store(st)
	// Drop cached results of superseded snapshots; in-flight requests
	// pinned to an old snapshot recompute on miss, which is correct,
	// just no longer cached.
	s.coal.prune(st.version)
	s.mSwaps.Inc()
	return st.info(), nil
}

// Snapshot describes the currently installed snapshot.
func (s *Server) Snapshot() SnapshotInfo { return s.state.Load().info() }

// Start listens on addr (host:port; an empty port picks a free one) and
// serves the API until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the listening address (resolving a requested :0 port).
// Empty before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains the daemon gracefully: it stops accepting new
// connections, waits for in-flight requests until ctx expires, then
// hard-closes whatever remains. Safe to call without Start.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.httpSrv == nil {
		return nil
	}
	if err := s.httpSrv.Shutdown(ctx); err != nil {
		return s.httpSrv.Close()
	}
	return nil
}
