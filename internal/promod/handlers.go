package promod

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"promonet/internal/core"
	"promonet/internal/obs"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/promote   promotion query (admission-gated, coalesced)
//	GET  /v1/scores    centrality scores/ranks (admission-gated)
//	GET  /v1/manifest  current snapshot's validated manifest
//	GET  /healthz      liveness + snapshot description
//	POST /admin/reload graceful snapshot swap from the configured source
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/promote", s.handlePromote)
	mux.HandleFunc("/v1/scores", s.handleScores)
	mux.HandleFunc("/v1/manifest", s.handleManifest)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/admin/reload", s.handleReload)
	return mux
}

// maxBodyBytes bounds a promote request body; the API has no field that
// legitimately needs more than a kilobyte.
const maxBodyBytes = 1 << 20

// tenantOf extracts the request's tenant identity for per-tenant
// budgets.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Promod-Tenant"); t != "" {
		return t
	}
	return "anonymous"
}

// writeJSON renders v with the given status. Encode errors mean the
// client hung up mid-response; there is nobody left to tell.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders the JSON error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// shedResponse renders the 429 + Retry-After load-shed answer.
func shedResponse(w http.ResponseWriter, retry time.Duration) {
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "overloaded, retry later"})
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.mRequests.Inc()
	_, sp := obs.Start(r.Context(), spanPromote)
	defer sp.End()
	release, retry, ok := s.adm.admit(tenantOf(r))
	if !ok {
		shedResponse(w, retry)
		return
	}
	defer release()
	start := time.Now()
	defer func() { s.hLatency.Observe(time.Since(start)) }()

	var req PromoteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	// Pin the snapshot with one atomic load: everything below computes
	// against st even if a reload swaps the installed pointer mid-flight.
	st := s.state.Load()
	resp, status, err := s.promote(st, &req)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	sp.Str("measure", resp.Measure)
	sp.Int("size", resp.Size)
	writeJSON(w, http.StatusOK, resp)
}

// promote answers one promotion query on the pinned snapshot. The whole
// response is coalesced per (version, measure, target, size, type,
// exact), so a burst of identical queries costs one computation.
func (s *Server) promote(st *snapshotState, req *PromoteRequest) (*PromoteResponse, int, error) {
	spec, err := measureSpecByName(req.Measure)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	t, ok := st.nodeOf(req.Target)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("promod: no node labeled %d in snapshot seq %d", req.Target, st.seq)
	}
	stype := spec.cm.Strategy()
	if req.Strategy != "" {
		if stype, err = strategyTypeByName(req.Strategy); err != nil {
			return nil, http.StatusBadRequest, err
		}
	}
	var p int
	switch {
	case req.Size > 0 && req.Budget > 0:
		return nil, http.StatusBadRequest, fmt.Errorf("promod: size and budget are mutually exclusive")
	case req.Size > 0:
		p = req.Size
	case req.Budget > 0:
		if p = core.MaxSizeWithinBudget(stype, req.Budget); p < 1 {
			return nil, http.StatusUnprocessableEntity,
				fmt.Errorf("promod: budget %d affords no %s promotion", req.Budget, stype)
		}
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("promod: one of size or budget is required")
	}
	maxN := s.cfg.ExactMaxN
	if maxN <= 0 {
		maxN = DefaultExactMaxN
	}
	if req.Exact && st.n > maxN {
		return nil, http.StatusUnprocessableEntity,
			fmt.Errorf("promod: exact rescoring refused on %d-node host (limit %d)", st.n, maxN)
	}

	strat := core.Strategy{Target: t, Size: p, Type: stype}
	key := fmt.Sprintf("%spromote|%s|%d|%d|%d|%t", versionPrefix(st.version), spec.name, t, p, int(stype), req.Exact)
	v, err := s.coal.do(key, func() (any, error) {
		return s.buildPromoteResponse(st, spec, strat, req.Target, req.Exact)
	})
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	return v.(*PromoteResponse), http.StatusOK, nil
}

// buildPromoteResponse is the cache-miss path of promote.
func (s *Server) buildPromoteResponse(st *snapshotState, spec measureSpec, strat core.Strategy, label int64, exact bool) (*PromoteResponse, error) {
	ri, err := s.rankIndexFor(st, spec)
	if err != nil {
		return nil, err
	}
	pr, err := s.predictWith(st, spec, strat, ri)
	if err != nil {
		return nil, err
	}
	resp := &PromoteResponse{
		Target:         label,
		Measure:        spec.name,
		Principle:      spec.cm.Principle().String(),
		Strategy:       strat.Type.String(),
		Size:           strat.Size,
		EdgeCost:       strat.NumEdges(),
		GuaranteedSize: pr.guaranteedSize,
		ScoreBefore:    ri.scores[strat.Target],
		RankBefore:     ri.rankOf(strat.Target),
		PredictedRank:  pr.predictedRank,
		PredictedDelta: pr.delta,
		Mode:           pr.mode,
		Snapshot:       st.info(),
	}
	if !math.IsNaN(pr.predictedScore) {
		ps := pr.predictedScore
		resp.PredictedScore = &ps
	}
	if exact {
		eo, err := s.exactOutcome(st, spec, strat, ri)
		if err != nil {
			return nil, err
		}
		resp.Exact = eo
		resp.Mode = ModeExact
		resp.PredictedRank = eo.RankAfter
		resp.PredictedDelta = eo.DeltaRank
		sa := eo.ScoreAfter
		resp.PredictedScore = &sa
	}
	man := st.manifest(spec.name)
	if _, err := man.Encode(); err != nil { // Encode validates; a response never carries an invalid manifest
		return nil, err
	}
	resp.Manifest = man
	return resp, nil
}

func (s *Server) handleScores(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mRequests.Inc()
	_, sp := obs.Start(r.Context(), spanScores)
	defer sp.End()
	release, retry, ok := s.adm.admit(tenantOf(r))
	if !ok {
		shedResponse(w, retry)
		return
	}
	defer release()
	start := time.Now()
	defer func() { s.hLatency.Observe(time.Since(start)) }()

	q := r.URL.Query()
	spec, err := measureSpecByName(q.Get("measure"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	st := s.state.Load()
	ri, err := s.rankIndexFor(st, spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := &ScoresResponse{Measure: spec.name, Snapshot: st.info()}
	if raw := q.Get("labels"); raw != "" {
		for _, fld := range strings.Split(raw, ",") {
			label, err := strconv.ParseInt(strings.TrimSpace(fld), 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad label "+fld)
				return
			}
			id, ok := st.nodeOf(label)
			if !ok {
				writeError(w, http.StatusNotFound, fmt.Sprintf("promod: no node labeled %d", label))
				return
			}
			resp.Nodes = append(resp.Nodes, NodeScore{Label: label, Score: ri.scores[id], Rank: ri.rankOf(id)})
			if len(resp.Nodes) > 1000 {
				writeError(w, http.StatusBadRequest, "too many labels (max 1000)")
				return
			}
		}
	}
	topK := 0
	if raw := q.Get("top"); raw != "" {
		if topK, err = strconv.Atoi(raw); err != nil || topK < 0 {
			writeError(w, http.StatusBadRequest, "bad top count")
			return
		}
	} else if resp.Nodes == nil {
		topK = 10 // bare GET /v1/scores?measure=… lists the leaderboard
	}
	if topK > 1000 {
		topK = 1000
	}
	if topK > len(ri.order) {
		topK = len(ri.order)
	}
	for i := 0; i < topK; i++ {
		id := int(ri.order[i])
		resp.Top = append(resp.Top, NodeScore{Label: st.labelOf(id), Score: ri.scores[id], Rank: ri.rankOf(id)})
	}
	sp.Str("measure", spec.name)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.state.Load()
	data, err := st.manifest("").Encode()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Snapshot: s.Snapshot()})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	info, err := s.Reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Snapshot: info})
}
