package promod

import (
	"bytes"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"promonet/internal/gen"
	"promonet/internal/graph"
)

// TestPromoteTenantRateConformance drives the full HTTP path — handler,
// tenantOf, admission, token bucket — as fast as one client can and
// checks the end-to-end invariant the load generator's saturation sweep
// depends on: a tenant configured at rate r with burst b is granted at
// most r·elapsed + b successful answers, everything beyond that is a
// 429. This is the live-path companion to the unit tests in
// admission_test.go; it would have caught a measurement bug where the
// client drained a deep pacing backlog past its deadline and the
// server appeared to over-admit by 1.6×.
func TestPromoteTenantRateConformance(t *testing.T) {
	g := gen.BarabasiAlbert(rand.New(rand.NewSource(1)), 400, 4)
	src := Source{Name: "conf", Load: func() (*graph.Graph, []int64, error) { return g, nil, nil }}
	s, err := New(Config{Source: src, Backend: "csr",
		Admission: AdmissionConfig{TenantRate: 500, TenantBurst: 50}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := []byte(`{"target":1,"measure":"degree","size":4}`)
	okN, shedN := 0, 0
	start := time.Now()
	deadline := start.Add(time.Second)
	for time.Now().Before(deadline) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/promote", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Promod-Tenant", "bench")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			okN++
		case http.StatusTooManyRequests:
			shedN++
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	elapsed := time.Since(start)

	// The invariant: admitted ≤ rate·elapsed + burst (+1 token of float
	// slack). The lower bound is loose — a slow host may not attempt
	// enough requests to drain the bucket — but the upper bound is the
	// contract and must hold on any host.
	bound := int(500*elapsed.Seconds()) + 50 + 1
	if okN > bound {
		t.Errorf("tenant over-admitted: %d OK in %v, bound %d (shed %d)", okN, elapsed, bound, shedN)
	}
	if okN == 0 {
		t.Error("no request admitted at all")
	}
}
