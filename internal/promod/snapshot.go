package promod

import (
	"fmt"
	"sync"
	"time"

	"promonet/internal/graph"
	"promonet/internal/graph/csr"
	"promonet/internal/obs"
)

// snapshotState is one installed host snapshot plus everything a request
// derives from it: the serving view, the label↔ID mapping, and the
// lazily memoized content digest. States are immutable after buildState
// returns; the swap protocol only ever replaces the whole pointer, so a
// request that loaded the pointer once computes against a consistent
// host no matter how many reloads land while it runs.
type snapshotState struct {
	view    graph.View
	snap    *csr.Snapshot // non-nil on the csr backend
	g       *graph.Graph  // non-nil on the map backend
	labels  []int64       // ID → label; nil means identity
	index   map[int64]int // label → ID; nil means identity
	name    string
	backend string
	n, m    int
	version uint64
	seq     uint64
	loaded  time.Time

	digestOnce sync.Once
	digest     string
}

// buildState freezes (or adopts) a freshly loaded host into serving
// state. It runs off to the side of the request path: the state only
// becomes visible via the atomic store in Reload.
func (s *Server) buildState(g *graph.Graph, labels []int64) (*snapshotState, error) {
	if labels != nil && len(labels) != g.N() {
		return nil, fmt.Errorf("promod: source returned %d labels for %d nodes", len(labels), g.N())
	}
	st := &snapshotState{
		labels: labels,
		name:   s.cfg.Source.Name,
		n:      g.N(),
		m:      g.M(),
		seq:    s.seq.Add(1),
		loaded: time.Now(),
	}
	if s.cfg.Backend == "map" {
		st.backend = "map"
		st.g = g
		st.view = g
		st.version = g.Version()
	} else {
		st.backend = "csr"
		st.snap = csr.Freeze(g)
		st.view = st.snap
		st.version = st.snap.Version()
	}
	if labels != nil {
		idx := make(map[int64]int, len(labels))
		for id, l := range labels {
			idx[l] = id
		}
		st.index = idx
	}
	return st, nil
}

// Digest returns the host's content digest, computed on first use and
// memoized for the snapshot's lifetime (hashing a 10⁶-node host costs
// an O(m) pass — paying it once per swap, not per request, matters).
func (st *snapshotState) Digest() string {
	st.digestOnce.Do(func() {
		if st.snap != nil {
			st.digest = st.snap.Digest()
		} else {
			st.digest = graph.Digest(st.g)
		}
	})
	return st.digest
}

// nodeOf resolves an external label to a node ID on this snapshot.
func (st *snapshotState) nodeOf(label int64) (int, bool) {
	if st.index == nil {
		if label < 0 || label >= int64(st.n) {
			return 0, false
		}
		return int(label), true
	}
	id, ok := st.index[label]
	return id, ok
}

// labelOf maps a node ID back to its external label.
func (st *snapshotState) labelOf(id int) int64 {
	if st.labels == nil {
		return int64(id)
	}
	return st.labels[id]
}

// info renders the snapshot's public description.
func (st *snapshotState) info() SnapshotInfo {
	return SnapshotInfo{
		Seq:      st.seq,
		Name:     st.name,
		Backend:  st.backend,
		N:        st.n,
		M:        st.m,
		Digest:   st.Digest(),
		LoadedAt: st.loaded.UTC().Format(time.RFC3339),
	}
}

// manifest builds the response manifest for a query answered on this
// snapshot. The Dataset digest is the load-bearing field: it proves
// which host the answer was computed against, which is what the
// swap-race test (and any auditing client) checks.
func (st *snapshotState) manifest(measure string) *obs.Manifest {
	man := obs.NewManifest("promod", 0)
	man.Dataset = &obs.DatasetInfo{Name: st.name, N: st.n, M: st.m, Digest: st.Digest()}
	man.Measure = measure
	return man
}
