package promod

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"promonet/internal/gen"
	"promonet/internal/graph"
	"promonet/internal/obs"
)

// staticSource serves a fixed graph on every load.
func staticSource(g *graph.Graph) Source {
	return Source{Name: "test", Load: func() (*graph.Graph, []int64, error) { return g, nil, nil }}
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testHost(seed int64, n int) *graph.Graph {
	return gen.BarabasiAlbert(rand.New(rand.NewSource(seed)), n, 2)
}

func postPromote(t *testing.T, h http.Handler, req PromoteRequest) (*PromoteResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/promote", bytes.NewReader(body)))
	resp := rec.Result()
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var out PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding promote response: %v", err)
	}
	return &out, resp
}

func TestPromoteEndpointBasics(t *testing.T) {
	g := testHost(1, 120)
	s := testServer(t, Config{Source: staticSource(g)})
	h := s.Handler()

	resp, raw := postPromote(t, h, PromoteRequest{Target: 60, Measure: "betweenness", Budget: 12})
	if resp == nil {
		body, _ := io.ReadAll(raw.Body)
		t.Fatalf("promote: status %d: %s", raw.StatusCode, body)
	}
	if resp.Measure != "betweenness" || resp.Strategy != "multi-point" {
		t.Errorf("measure/strategy = %q/%q, want betweenness/multi-point (Table I)", resp.Measure, resp.Strategy)
	}
	if resp.Size != 12 || resp.EdgeCost != 12 {
		t.Errorf("size/edge_cost = %d/%d, want 12/12 (multi-point spends one edge per node)", resp.Size, resp.EdgeCost)
	}
	if resp.Mode != ModeGuaranteed {
		t.Errorf("mode = %q, want %q", resp.Mode, ModeGuaranteed)
	}
	if resp.RankBefore < 1 || resp.PredictedRank > resp.RankBefore {
		t.Errorf("ranks went backwards: before %d predicted %d", resp.RankBefore, resp.PredictedRank)
	}
	if resp.Snapshot.Backend != "csr" || resp.Snapshot.Seq != 1 {
		t.Errorf("snapshot = %+v, want csr backend seq 1", resp.Snapshot)
	}
	if resp.Manifest == nil || resp.Manifest.Dataset == nil {
		t.Fatal("response carries no manifest")
	}
	if resp.Manifest.Dataset.Digest != resp.Snapshot.Digest || resp.Manifest.Dataset.Digest != graph.Digest(g) {
		t.Error("manifest digest does not identify the served host")
	}
	enc, err := json.Marshal(resp.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateManifest(enc); err != nil {
		t.Errorf("embedded manifest fails the validator: %v", err)
	}

	// Strategy override away from Table I voids the lemma.
	or, raw2 := postPromote(t, h, PromoteRequest{Target: 60, Measure: "betweenness", Size: 4, Strategy: "single-clique"})
	if or == nil {
		t.Fatalf("override: status %d", raw2.StatusCode)
	}
	if or.Mode != ModeNone || or.Strategy != "single-clique" {
		t.Errorf("override mode/strategy = %q/%q, want none/single-clique", or.Mode, or.Strategy)
	}
}

func TestPromoteValidation(t *testing.T) {
	s := testServer(t, Config{Source: staticSource(testHost(2, 40))})
	h := s.Handler()
	cases := []struct {
		name string
		req  PromoteRequest
		want int
	}{
		{"unknown measure", PromoteRequest{Target: 1, Measure: "pagerank", Size: 2}, http.StatusBadRequest},
		{"no size or budget", PromoteRequest{Target: 1, Measure: "degree"}, http.StatusBadRequest},
		{"both size and budget", PromoteRequest{Target: 1, Measure: "degree", Size: 2, Budget: 2}, http.StatusBadRequest},
		{"unknown target", PromoteRequest{Target: 4000, Measure: "degree", Size: 2}, http.StatusNotFound},
		{"bad strategy", PromoteRequest{Target: 1, Measure: "degree", Size: 2, Strategy: "mega-clique"}, http.StatusBadRequest},
		{"no kernel", PromoteRequest{Target: 1, Measure: "current-flow", Size: 2}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if resp, raw := postPromote(t, h, tc.req); resp != nil || raw.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", raw.StatusCode, tc.want)
			}
		})
	}
}

func TestExactModeSizeGate(t *testing.T) {
	s := testServer(t, Config{Source: staticSource(testHost(3, 50)), ExactMaxN: 30})
	if resp, raw := postPromote(t, s.Handler(), PromoteRequest{Target: 1, Measure: "degree", Size: 2, Exact: true}); resp != nil {
		t.Error("exact rescoring accepted above ExactMaxN")
	} else if raw.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status = %d, want 422", raw.StatusCode)
	}
}

func TestDegreeClosedFormMatchesExact(t *testing.T) {
	g := testHost(4, 200)
	s := testServer(t, Config{Source: staticSource(g)})
	h := s.Handler()
	for _, target := range []int64{0, 17, 150} {
		pred, raw := postPromote(t, h, PromoteRequest{Target: target, Measure: "degree", Size: 5})
		if pred == nil {
			t.Fatalf("predict: status %d", raw.StatusCode)
		}
		if pred.Mode != ModeClosedForm || pred.PredictedScore == nil {
			t.Fatalf("degree mode = %q (score %v), want closed-form", pred.Mode, pred.PredictedScore)
		}
		exact, raw := postPromote(t, h, PromoteRequest{Target: target, Measure: "degree", Size: 5, Exact: true})
		if exact == nil {
			t.Fatalf("exact: status %d", raw.StatusCode)
		}
		if exact.Exact.ScoreAfter != *pred.PredictedScore {
			t.Errorf("target %d: closed-form score %v, exact %v", target, *pred.PredictedScore, exact.Exact.ScoreAfter)
		}
		if exact.Exact.RankAfter != pred.PredictedRank {
			t.Errorf("target %d: closed-form rank %d, exact %d", target, pred.PredictedRank, exact.Exact.RankAfter)
		}
	}
}

// TestGuaranteedBoundsAgainstExact is the scientific core of the serving
// path: for every measure with a proved p′ lemma, the predicted rank
// delta must be a sound lower bound on the measured one, and promoting
// with the reported guaranteed size must strictly improve the ranking.
func TestGuaranteedBoundsAgainstExact(t *testing.T) {
	g := testHost(5, 90)
	s := testServer(t, Config{Source: staticSource(g)})
	h := s.Handler()
	for _, m := range []string{"betweenness", "coreness", "closeness", "eccentricity"} {
		for _, target := range []int64{4, 33, 78} {
			base, raw := postPromote(t, h, PromoteRequest{Target: target, Measure: m, Size: 2})
			if base == nil {
				t.Fatalf("%s/%d: status %d", m, target, raw.StatusCode)
			}
			sizes := []int{2, 6}
			if base.GuaranteedSize > 0 {
				sizes = append(sizes, base.GuaranteedSize)
			}
			for _, p := range sizes {
				pred, _ := postPromote(t, h, PromoteRequest{Target: target, Measure: m, Size: p})
				exact, _ := postPromote(t, h, PromoteRequest{Target: target, Measure: m, Size: p, Exact: true})
				if pred == nil || exact == nil {
					t.Fatalf("%s/%d/p=%d: query failed", m, target, p)
				}
				if pred.Mode != ModeGuaranteed {
					t.Fatalf("%s: mode %q, want guaranteed", m, pred.Mode)
				}
				if exact.Exact.DeltaRank < pred.PredictedDelta {
					t.Errorf("%s target %d p=%d: lemma bound unsound: predicted delta %d > measured %d",
						m, target, p, pred.PredictedDelta, exact.Exact.DeltaRank)
				}
				if p == base.GuaranteedSize && base.RankBefore > 1 && !exact.Exact.Effective {
					t.Errorf("%s target %d: guaranteed size %d did not improve the ranking (rank %d -> %d)",
						m, target, p, base.RankBefore, exact.Exact.RankAfter)
				}
			}
		}
	}
}

func TestScoresEndpoint(t *testing.T) {
	g := testHost(6, 80)
	s := testServer(t, Config{Source: staticSource(g)})
	h := s.Handler()

	get := func(url string) (*ScoresResponse, int) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			return nil, rec.Code
		}
		var out ScoresResponse
		if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return &out, rec.Code
	}

	resp, code := get("/v1/scores?measure=degree&labels=0,5,9&top=3")
	if resp == nil {
		t.Fatalf("scores: status %d", code)
	}
	if len(resp.Nodes) != 3 || len(resp.Top) != 3 {
		t.Fatalf("got %d nodes, %d top; want 3, 3", len(resp.Nodes), len(resp.Top))
	}
	for i, ns := range resp.Nodes {
		if want := g.Degree(int(ns.Label)); ns.Score != float64(want) {
			t.Errorf("node %d: score %v, want degree %d", i, ns.Score, want)
		}
	}
	if resp.Top[0].Rank != 1 {
		t.Errorf("top entry rank %d, want 1", resp.Top[0].Rank)
	}
	for i := 1; i < len(resp.Top); i++ {
		if resp.Top[i].Score > resp.Top[i-1].Score {
			t.Error("top list not score-descending")
		}
	}

	if _, code := get("/v1/scores?measure=degree&labels=999"); code != http.StatusNotFound {
		t.Errorf("unknown label: status %d, want 404", code)
	}
	if _, code := get("/v1/scores?measure=nope"); code != http.StatusBadRequest {
		t.Errorf("unknown measure: status %d, want 400", code)
	}
}

func TestManifestAndHealthEndpoints(t *testing.T) {
	s := testServer(t, Config{Source: staticSource(testHost(7, 60))})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/manifest", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("manifest: status %d", rec.Code)
	}
	if err := obs.ValidateManifest(rec.Body.Bytes()); err != nil {
		t.Errorf("/v1/manifest fails validation: %v", err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("healthz: status %d body %s", rec.Code, rec.Body.String())
	}
}

func TestBackendsAgree(t *testing.T) {
	g := testHost(8, 70)
	req := PromoteRequest{Target: 11, Measure: "closeness", Size: 4, Exact: true}
	var got [2]*PromoteResponse
	for i, backend := range []string{"csr", "map"} {
		s := testServer(t, Config{Source: staticSource(g), Backend: backend})
		resp, raw := postPromote(t, s.Handler(), req)
		if resp == nil {
			t.Fatalf("%s: status %d", backend, raw.StatusCode)
		}
		got[i] = resp
	}
	if got[0].Snapshot.Digest != got[1].Snapshot.Digest {
		t.Error("backends disagree on host digest")
	}
	if got[0].RankBefore != got[1].RankBefore || got[0].Exact.RankAfter != got[1].Exact.RankAfter ||
		got[0].Exact.ScoreAfter != got[1].Exact.ScoreAfter || got[0].GuaranteedSize != got[1].GuaranteedSize {
		t.Errorf("backends disagree:\ncsr: %+v\nmap: %+v", got[0], got[1])
	}
}

func TestShutdownWithoutStart(t *testing.T) {
	s := testServer(t, Config{Source: staticSource(testHost(9, 30))})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("Shutdown before Start: %v", err)
	}
}
