package promod

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"promonet/internal/gen"
	"promonet/internal/graph"
)

// TestConcurrentSnapshotSwap is the swap-protocol race suite: query
// goroutines hammer /v1/promote over real HTTP while reloader
// goroutines rotate the installed snapshot through distinct hosts. The
// invariant under -race: every response's manifest digest identifies
// exactly the host its snapshot sequence number says it was admitted
// under — no torn views, no answer computed half on one host and half
// on another, and zero requests dropped across swaps.
func TestConcurrentSnapshotSwap(t *testing.T) {
	const hosts = 3
	graphs := make([]*graph.Graph, hosts)
	digests := make([]string, hosts)
	for i := range graphs {
		// Distinct sizes so a torn view would also show up as an n/m
		// mismatch, not just a digest one.
		graphs[i] = gen.BarabasiAlbert(rand.New(rand.NewSource(int64(100+i))), 120+i*31, 2)
		digests[i] = graph.Digest(graphs[i])
	}
	var loads atomic.Uint64
	s := testServer(t, Config{Source: Source{
		Name: "rotating",
		// Reload serializes loads, so load i becomes snapshot seq i+1:
		// the expected digest for seq is digests[(seq-1)%hosts].
		Load: func() (*graph.Graph, []int64, error) {
			i := loads.Add(1) - 1
			return graphs[i%hosts], nil, nil
		},
	}})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	base := "http://" + s.Addr()

	const (
		queriers  = 6
		perQuery  = 30
		reloaders = 2
		perReload = 8
	)
	measures := []string{"degree", "coreness", "closeness"}
	errc := make(chan error, queriers*perQuery+reloaders*perReload)
	var wg sync.WaitGroup

	wg.Add(queriers)
	for q := 0; q < queriers; q++ {
		go func(q int) {
			defer wg.Done()
			for i := 0; i < perQuery; i++ {
				req := PromoteRequest{
					// Targets stay within the smallest host so every
					// snapshot can answer them.
					Target:  int64((q*perQuery + i) % 100),
					Measure: measures[(q+i)%len(measures)],
					Size:    2 + i%3,
				}
				body, err := json.Marshal(req)
				if err != nil {
					errc <- err
					return
				}
				resp, err := http.Post(base+"/v1/promote", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- fmt.Errorf("query dropped across swap: %w", err)
					continue
				}
				raw, err := io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				if err != nil {
					errc <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("query shed during swap: status %d: %s", resp.StatusCode, raw)
					continue
				}
				var pr PromoteResponse
				if err := json.Unmarshal(raw, &pr); err != nil {
					errc <- err
					continue
				}
				host := graphs[(pr.Snapshot.Seq-1)%hosts]
				want := digests[(pr.Snapshot.Seq-1)%hosts]
				if pr.Manifest == nil || pr.Manifest.Dataset == nil {
					errc <- fmt.Errorf("seq %d: response without manifest", pr.Snapshot.Seq)
					continue
				}
				if pr.Manifest.Dataset.Digest != want || pr.Snapshot.Digest != want {
					errc <- fmt.Errorf("torn view: seq %d reports digest %s/%s, want %s",
						pr.Snapshot.Seq, pr.Manifest.Dataset.Digest, pr.Snapshot.Digest, want)
				}
				if pr.Manifest.Dataset.N != host.N() || pr.Snapshot.M != host.M() {
					errc <- fmt.Errorf("torn view: seq %d reports n=%d m=%d, want n=%d m=%d",
						pr.Snapshot.Seq, pr.Manifest.Dataset.N, pr.Snapshot.M, host.N(), host.M())
				}
			}
		}(q)
	}

	wg.Add(reloaders)
	for r := 0; r < reloaders; r++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perReload; i++ {
				resp, err := http.Post(base+"/admin/reload", "application/json", nil)
				if err != nil {
					errc <- err
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("reload: status %d", resp.StatusCode)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := s.Snapshot().Seq; got != uint64(1+reloaders*perReload) {
		t.Errorf("snapshot seq = %d, want %d (initial load + every reload)", got, 1+reloaders*perReload)
	}
}
