package promod

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"promonet/internal/obs"
)

func TestCoalescerSingleFlight(t *testing.T) {
	coalesced := obs.NewCounter()
	c := newCoalescer(16, coalesced)

	var computes atomic.Int32
	var wg sync.WaitGroup
	const workers = 10
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			v, err := c.do("k", func() (any, error) {
				computes.Add(1)
				time.Sleep(50 * time.Millisecond) // hold the flight open for followers
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("do: v=%v err=%v", v, err)
			}
		}()
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1 (single flight)", got)
	}
	if coalesced.Value() != workers-1 {
		t.Errorf("coalesced counter = %d, want %d", coalesced.Value(), workers-1)
	}
	// Completed flight must now serve from cache without recomputing.
	if _, err := c.do("k", func() (any, error) {
		computes.Add(1)
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 1 {
		t.Error("cached key recomputed")
	}
}

func TestCoalescerErrorsNotCached(t *testing.T) {
	c := newCoalescer(16, obs.NewCounter())
	boom := errors.New("boom")
	if _, err := c.do("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err := c.do("k", func() (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry after error: v=%v err=%v (errors must not be cached)", v, err)
	}
}

func TestCoalescerEvictionAndPrune(t *testing.T) {
	c := newCoalescer(2, obs.NewCounter())
	for _, k := range []string{"v1|a", "v1|b", "v2|c"} {
		if _, err := c.do(k, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.size() != 2 {
		t.Errorf("cache size = %d, want 2 (FIFO eviction)", c.size())
	}
	c.prune(2)
	if c.size() != 1 {
		t.Errorf("after prune(2): size = %d, want 1 (only v2| keys survive)", c.size())
	}
	// The surviving entry must be the v2 one.
	var recomputed bool
	if _, err := c.do("v2|c", func() (any, error) { recomputed = true; return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if recomputed {
		t.Error("prune dropped the current version's entry")
	}
}
