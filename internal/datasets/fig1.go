// Package datasets provides the graphs used throughout the repository:
// the paper's running example (Fig. 1), reconstructed exactly from the
// worked examples, and four synthetic profiles standing in for the SNAP
// datasets of Table VI (see DESIGN.md §4 for the substitution argument).
package datasets

import "promonet/internal/graph"

// Fig. 1 node names. The paper labels nodes v1..v10; we use 0-based IDs,
// so V1 = 0, ..., V10 = 9.
const (
	V1 = iota
	V2
	V3
	V4
	V5
	V6
	V7
	V8
	V9
	V10
)

// Fig1 returns the paper's running example graph (Fig. 1).
//
// The edge list is not printed in the paper, but it is uniquely
// determined by the worked examples: N(v5) = {v1, v3, v6, v9}; the
// 4-clique {v1, v3, v5, v6}; the distance vector from v1
// (0,1,1,2,1,1,1,2,2,3); the per-node farness vector (Table V:
// 14, 22, 15, 23, 14, 12, 18, 18, 16, 24); and the closeness updates in
// Tables III and V, which pin every dist(v, v4) via
// ĈC′(v) = ĈC(v) + p·(dist(v, v4) + 1).
//
// Tests in internal/datasets and internal/core verify this
// reconstruction against every published value in Tables III, IV, and V.
func Fig1() *graph.Graph {
	return graph.FromEdges(10, [][2]int{
		{V1, V2}, {V1, V3}, {V1, V5}, {V1, V6}, {V1, V7},
		{V3, V4}, {V3, V5}, {V3, V6},
		{V5, V6}, {V5, V9},
		{V6, V7}, {V6, V8}, {V6, V9},
		{V8, V9},
		{V9, V10},
	})
}

// Fig1Farness is the reciprocal closeness vector ĈC(v) of Fig. 1
// published in Table V, indexed by node.
var Fig1Farness = []int64{14, 22, 15, 23, 14, 12, 18, 18, 16, 24}

// Fig1Betweenness is the (unordered-pairs) betweenness vector BC(v) of
// Fig. 1 published in Table IV, indexed by node.
var Fig1Betweenness = []float64{9.5, 0, 8, 0, 4, 13, 0, 0, 8.5, 0}

// Fig1BetweennessAfterMP4 is BC′(v) after the multi-point strategy
// [v4, 4, multiple points], published in Table IV (original nodes only).
var Fig1BetweennessAfterMP4 = []float64{15.5, 0, 40, 42, 8, 23, 0, 0, 12.5, 0}

// Fig1FarnessAfterMP4 is ĈC′(v) after [v4, 4, multiple points],
// published in Table V (original nodes only).
var Fig1FarnessAfterMP4 = []int64{26, 38, 23, 27, 26, 24, 34, 34, 32, 44}

// Fig1Coreness: the paper's Example 2.2 gives RC(v1) = 3; the full
// vector below follows from the k-core decomposition of the
// reconstructed graph and is verified in tests.
var Fig1CorenessV1 = 3
