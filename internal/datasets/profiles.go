package datasets

import (
	"fmt"
	"math/rand"

	"promonet/internal/gen"
	"promonet/internal/graph"
)

// Profile describes one of the paper's four evaluation networks
// (Table VI) together with a synthetic generator that reproduces its
// structural character at a configurable scale. The SNAP originals are
// not redistributable offline; DESIGN.md §4 argues why synthetic hosts
// with the same degree heterogeneity, small diameter, and core structure
// preserve every behaviour the experiments measure.
type Profile struct {
	// Name is the paper's short name: WIKI, HEPP, EPIN, SLAS.
	Name string
	// SNAPName is the original dataset the profile stands in for.
	SNAPName string
	// PaperN, PaperM, PaperDiameter, PaperDegeneracy are the statistics
	// of the original's largest connected component from Table VI.
	PaperN, PaperM                 int
	PaperDiameter, PaperDegeneracy int

	generate func(rng *rand.Rand, n int) *graph.Graph
}

// Build generates the profile's synthetic graph at the given scale
// (fraction of the original node count; 0.1 is the default used by the
// experiment harness) and returns its largest connected component. The
// same seed and scale always produce the same graph.
func (p Profile) Build(seed int64, scale float64) *graph.Graph {
	n := int(float64(p.PaperN) * scale)
	if n < 50 {
		n = 50
	}
	rng := rand.New(rand.NewSource(seed))
	g := p.generate(rng, n)
	lcc, _ := g.LargestComponent()
	return lcc
}

// Profiles returns the four Table VI stand-ins in paper order.
func Profiles() []Profile {
	return []Profile{
		{
			// Wiki-Vote: voting network — very small diameter, strong
			// hubs, and a wide degree (hence coreness) spread: most
			// voters touch few elections, a core of admins touches
			// many. A heavy-tailed configuration model with strong
			// triadic closure reproduces that spread; a pure BA graph
			// would not (its coreness is nearly uniform at k).
			Name: "WIKI", SNAPName: "Wiki-Vote",
			PaperN: 7066, PaperM: 100736, PaperDiameter: 7, PaperDegeneracy: 53,
			generate: func(rng *rand.Rand, n int) *graph.Graph {
				degs := gen.PowerLawDegrees(rng, n, 1.6, 1, n/4)
				g := gen.ConfigurationModel(rng, degs)
				gen.TriadicClosure(rng, g, 3*n)
				return g
			},
		},
		{
			// CA-HepPh: co-authorship — overlapping paper cliques,
			// occasional huge collaborations (the original's degeneracy
			// of 238 comes from one big-collaboration clique), longer
			// diameter. CliqueCover plus one large embedded clique.
			Name: "HEPP", SNAPName: "CA-HepPh",
			PaperN: 11204, PaperM: 117619, PaperDiameter: 13, PaperDegeneracy: 238,
			generate: func(rng *rand.Rand, n int) *graph.Graph {
				g := gen.CliqueCover(rng, n, 2, 8, 0.55)
				// One big collaboration: a clique over ~2% of nodes.
				big := n / 50
				if big > 1 {
					members := rng.Perm(g.N())[:big]
					for i := 0; i < len(members); i++ {
						for j := i + 1; j < len(members); j++ {
							g.AddEdge(members[i], members[j])
						}
					}
				}
				return g
			},
		},
		{
			// Epinions: who-trusts-whom — heavy-tailed degrees with a
			// dense core; configuration model over power-law degrees
			// plus triadic closure for the core.
			Name: "EPIN", SNAPName: "Epinions",
			PaperN: 75877, PaperM: 405739, PaperDiameter: 15, PaperDegeneracy: 67,
			generate: func(rng *rand.Rand, n int) *graph.Graph {
				degs := gen.PowerLawDegrees(rng, n, 1.9, 1, n/10)
				g := gen.ConfigurationModel(rng, degs)
				gen.TriadicClosure(rng, g, n)
				return g
			},
		},
		{
			// Slashdot: friend/foe network — similar heavy-tailed
			// social profile, slightly denser tail.
			Name: "SLAS", SNAPName: "Slashdot",
			PaperN: 77360, PaperM: 469180, PaperDiameter: 12, PaperDegeneracy: 54,
			generate: func(rng *rand.Rand, n int) *graph.Graph {
				degs := gen.PowerLawDegrees(rng, n, 1.8, 1, n/8)
				g := gen.ConfigurationModel(rng, degs)
				gen.TriadicClosure(rng, g, 2*n)
				return g
			},
		},
	}
}

// ByName returns the profile with the given paper short name.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("datasets: unknown profile %q (want WIKI, HEPP, EPIN, or SLAS)", name)
}
