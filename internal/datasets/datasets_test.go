package datasets

import (
	"testing"

	"promonet/internal/centrality"
)

func TestFig1Shape(t *testing.T) {
	g := Fig1()
	if g.N() != 10 || g.M() != 15 {
		t.Fatalf("Fig1: n=%d m=%d, want 10 15", g.N(), g.M())
	}
	// Example 2.1: N(v5) = {v1, v3, v6, v9}, deg(v5) = 4.
	want := []int{V1, V3, V6, V9}
	got := g.NeighborSlice(V5)
	if len(got) != len(want) {
		t.Fatalf("N(v5) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("N(v5) = %v, want %v", got, want)
		}
	}
	// The induced subgraph on {v1, v3, v5, v6} is a 4-clique (Example 2.2
	// needs deg >= 3 everywhere).
	sub, _ := g.InducedSubgraph([]int{V1, V3, V5, V6})
	if sub.M() != 6 {
		t.Errorf("G[{v1,v3,v5,v6}] has %d edges, want 6 (clique)", sub.M())
	}
	if !g.IsConnected() {
		t.Error("Fig1 should be connected")
	}
}

func TestFig1PublishedVectorsAreConsistent(t *testing.T) {
	// Farness must match Table V (redundant with centrality tests, but
	// guards the fixture constants themselves).
	g := Fig1()
	far := centrality.Farness(g)
	for v, want := range Fig1Farness {
		if far[v] != want {
			t.Errorf("farness(v%d) = %d, want %d", v+1, far[v], want)
		}
	}
}

func TestProfilesBuild(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g := p.Build(1, 0.02)
			if g.N() < 50 {
				t.Fatalf("%s: n=%d too small", p.Name, g.N())
			}
			if !g.IsConnected() {
				t.Errorf("%s: Build must return a connected LCC", p.Name)
			}
			// Social profile sanity: a hub well above the mean degree.
			avg := 2 * g.M() / g.N()
			if g.MaxDegree() < 2*avg {
				t.Errorf("%s: max degree %d not hub-like (avg %d)", p.Name, g.MaxDegree(), avg)
			}
		})
	}
}

func TestProfilesDeterministic(t *testing.T) {
	p, err := ByName("WIKI")
	if err != nil {
		t.Fatal(err)
	}
	a := p.Build(42, 0.02)
	b := p.Build(42, 0.02)
	if !a.Equal(b) {
		t.Error("same seed produced different graphs")
	}
	c := p.Build(43, 0.02)
	if a.Equal(c) {
		t.Error("different seeds produced identical graphs (suspicious)")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("FACEBOOK"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestHEPPHighDegeneracy(t *testing.T) {
	p, _ := ByName("HEPP")
	g := p.Build(1, 0.05)
	// The embedded big collaboration must push degeneracy well above
	// the other profiles' (paper: 238 vs 53/67/54).
	if d := centrality.Degeneracy(g); d < 8 {
		t.Errorf("HEPP degeneracy = %d, expected clique-driven core >= 8", d)
	}
}

func TestWIKISmallDiameter(t *testing.T) {
	p, _ := ByName("WIKI")
	g := p.Build(1, 0.05)
	if d := centrality.Diameter(g); d > 8 {
		t.Errorf("WIKI diameter = %d, expected small-world <= 8", d)
	}
}
