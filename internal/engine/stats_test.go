package engine

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
	"time"

	"promonet/internal/centrality"
	"promonet/internal/gen"
	"promonet/internal/obs"
)

// TestStatsConcurrentWithScores hammers Stats, ResetStats, and score
// requests from many goroutines at once. The counters are all lock-free
// atomics; under -race this asserts the whole stats path is safe to
// read while the engine is computing.
func TestStatsConcurrentWithScores(t *testing.T) {
	e := New(4)
	defer e.Close()
	rng := rand.New(rand.NewSource(11))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	g1 := gen.ErdosRenyi(rng, 50, 120)
	g2 := gen.BarabasiAlbert(rng, 60, 3)

	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				g := g1
				if (i+j)%2 == 0 {
					g = g2
				}
				e.Scores(g, Closeness())
				e.Scores(g, Betweenness(centrality.PairsUnordered))
				e.Scores(g, Coreness())
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := e.Stats()
				if s.Hits+s.Misses > 0 && s.HitRate() < 0 {
					t.Error("negative hit rate")
					return
				}
				_ = s.String()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.ResetStats()
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestStatsMarshalJSON checks the JSON shape matches the manifest
// schema (hits/misses/bfs_runs/per_family with wall_ns).
func TestStatsMarshalJSON(t *testing.T) {
	e := New(1)
	defer e.Close()
	g := gen.Path(20)
	e.Scores(g, Closeness())
	e.Scores(g, Closeness())

	data, err := json.Marshal(e.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var back obs.EngineStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("stats JSON does not round-trip through obs.EngineStats: %v\n%s", err, data)
	}
	if back.Misses != 1 || back.Hits != 1 {
		t.Errorf("got hits=%d misses=%d, want 1/1: %s", back.Hits, back.Misses, data)
	}
	if len(back.PerFamily) != 1 || back.PerFamily[0].Family != "distance-sweep" {
		t.Errorf("per_family = %+v, want one distance-sweep row", back.PerFamily)
	}
}

// TestStatsDelta verifies per-cell attribution: the delta of two
// snapshots reports only the work done in between.
func TestStatsDelta(t *testing.T) {
	e := New(1)
	defer e.Close()
	g1 := gen.Path(15)
	g2 := gen.Star(15)

	e.Scores(g1, Closeness())
	before := e.Stats()

	e.Scores(g1, Closeness()) // hit
	e.Scores(g2, Betweenness(centrality.PairsUnordered))

	d := e.Stats().Delta(before)
	if d.Hits != 1 || d.Misses != 1 {
		t.Errorf("delta hits=%d misses=%d, want 1/1", d.Hits, d.Misses)
	}
	if len(d.PerFamily) != 1 || d.PerFamily[0].Family != "betweenness" {
		t.Errorf("delta per-family = %+v, want one betweenness row (the sweep predates the snapshot)", d.PerFamily)
	}
	if d.PerFamily[0].Computes != 1 {
		t.Errorf("delta betweenness computes = %d, want 1", d.PerFamily[0].Computes)
	}
}

// TestRegistryBackedCounters checks that an engine created with
// WithRegistry surfaces its counters under the given prefix.
func TestRegistryBackedCounters(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(1, WithRegistry(reg, "test_engine"))
	defer e.Close()
	e.Scores(gen.Path(10), Closeness())
	e.Scores(gen.Path(10), Closeness())

	snap := reg.Snapshot()
	misses, ok := snap["test_engine.misses"].(uint64)
	if !ok || misses != 1 {
		t.Errorf("registry test_engine.misses = %v, want 1", snap["test_engine.misses"])
	}
	if hits, ok := snap["test_engine.hits"].(uint64); !ok || hits == 0 {
		t.Errorf("registry test_engine.hits = %v, want > 0", snap["test_engine.hits"])
	}
}
