package engine

import (
	"fmt"

	"promonet/internal/centrality"
)

// kind enumerates the score families the engine can compute. Families,
// not functions: closeness, harmonic, and both eccentricity variants all
// derive from one shared all-pairs BFS sweep, and both betweenness
// counting conventions derive from one Brandes accumulation, so
// requesting several members of a family costs one computation.
type kind int

const (
	kindBetweenness kind = iota
	kindCloseness
	kindFarness
	kindEccentricity
	kindReciprocalEccentricity
	kindHarmonic
	kindCoreness
	kindDegree
	kindKatz
)

// family indexes the engine's fixed set of compute families. The set
// is closed and known at compile time, which is what makes the
// per-family stats table a plain array of atomics: a cache miss
// records its cost by array index, with no lock and no map lookup.
type family int

// The compute families, in declaration order. famSweep is the shared
// all-pairs BFS sweep behind closeness, farness, harmonic, and both
// eccentricity variants; famRanks covers ranking memoization on top of
// any score family.
const (
	famSweep family = iota
	famBetweenness
	famCoreness
	famDegree
	famKatz
	famClustering
	famRanks
	famDelta
	numFamilies
)

// familyNames are the stable per-family stat/rollup names.
var familyNames = [numFamilies]string{
	famSweep:       "distance-sweep",
	famBetweenness: "betweenness",
	famCoreness:    "coreness",
	famDegree:      "degree",
	famKatz:        "katz",
	famClustering:  "clustering",
	famRanks:       "ranks",
	famDelta:       "delta-base",
}

// familySpanNames are the precomputed span names of cache-missed
// computations — precomputed so the disabled-tracing path never builds
// a string.
var familySpanNames = [numFamilies]string{
	famSweep:       "engine/compute/distance-sweep",
	famBetweenness: "engine/compute/betweenness",
	famCoreness:    "engine/compute/coreness",
	famDegree:      "engine/compute/degree",
	famKatz:        "engine/compute/katz",
	famClustering:  "engine/compute/clustering",
	famRanks:       "engine/compute/ranks",
	famDelta:       "engine/compute/delta-base",
}

// String names the family for stats lines and manifests.
func (f family) String() string {
	if f < 0 || f >= numFamilies {
		return fmt.Sprintf("family(%d)", int(f))
	}
	return familyNames[f]
}

// family is the stats bucket for the kind's underlying computation.
func (k kind) family() family {
	switch k {
	case kindBetweenness:
		return famBetweenness
	case kindCoreness:
		return famCoreness
	case kindDegree:
		return famDegree
	case kindKatz:
		return famKatz
	default:
		return famSweep
	}
}

// Measure identifies one centrality computation for the engine: the
// family plus the parameters that change its output (pair counting,
// pivot sampling). Measures are small comparable values; construct them
// with the package functions below.
type Measure struct {
	kind     kind
	counting centrality.PairCounting
	sample   int   // > 0: Brandes–Pich pivot count
	seed     int64 // pivot rng seed when sample > 0
}

// Betweenness is exact shortest-path betweenness (Brandes) under the
// given pair-counting convention.
func Betweenness(counting centrality.PairCounting) Measure {
	return Measure{kind: kindBetweenness, counting: counting}
}

// BetweennessSampled is Brandes–Pich pivot-sampled betweenness with k
// pivots drawn from a rand.Rand seeded with seed. The engine guarantees
// that identical (graph, k, seed, worker count) yield bitwise-identical
// scores, across engine instances: the pivot set is the first k entries
// of a single Perm(n) draw, and the per-source partial sums are merged
// on a deterministic strided schedule. If k >= n the measure degrades
// to the exact computation (and caches as such).
func BetweennessSampled(counting centrality.PairCounting, k int, seed int64) Measure {
	return Measure{kind: kindBetweenness, counting: counting, sample: k, seed: seed}
}

// Closeness is CC(v) = 1 / Σ_u dist(v, u) (Definition 2.1).
func Closeness() Measure { return Measure{kind: kindCloseness} }

// Farness is the reciprocal closeness ĈC(v) = Σ_u dist(v, u), as a
// float64 vector (the bookkeeping unit of the minimum-loss principle).
func Farness() Measure { return Measure{kind: kindFarness} }

// Eccentricity is EC(v) = 1 / max_u dist(v, u) (Definition 2.2).
func Eccentricity() Measure { return Measure{kind: kindEccentricity} }

// ReciprocalEccentricity is ĒC(v) = max_u dist(v, u) as float64.
func ReciprocalEccentricity() Measure { return Measure{kind: kindReciprocalEccentricity} }

// Harmonic is harmonic centrality Σ_{u≠v} 1/dist(v, u).
func Harmonic() Measure { return Measure{kind: kindHarmonic} }

// Coreness is RC (Definition 2.4) as float64.
func Coreness() Measure { return Measure{kind: kindCoreness} }

// Degree is degree centrality.
func Degree() Measure { return Measure{kind: kindDegree} }

// Katz is Katz centrality with the safe automatic damping of
// centrality.KatzAuto.
func Katz() Measure { return Measure{kind: kindKatz} }

// Key is the cache key of the measure within one graph snapshot. Two
// measures with equal keys always produce equal scores on equal graphs.
func (m Measure) Key() string {
	switch m.kind {
	case kindBetweenness:
		c := "unordered"
		if m.counting == centrality.PairsOrdered {
			c = "ordered"
		}
		if m.sample > 0 {
			return fmt.Sprintf("bc/%s/k=%d/seed=%d", c, m.sample, m.seed)
		}
		return "bc/" + c
	case kindCloseness:
		return "closeness"
	case kindFarness:
		return "farness"
	case kindEccentricity:
		return "eccentricity"
	case kindReciprocalEccentricity:
		return "ecc-reciprocal"
	case kindHarmonic:
		return "harmonic"
	case kindCoreness:
		return "coreness"
	case kindDegree:
		return "degree"
	case kindKatz:
		return "katz"
	default:
		return fmt.Sprintf("kind(%d)", int(m.kind))
	}
}

// String names the measure for diagnostics; same as Key.
func (m Measure) String() string { return m.Key() }
