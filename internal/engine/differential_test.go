package engine

import (
	"math"
	"math/rand"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/gen"
	"promonet/internal/graph"
)

// Differential tests: the engine's pooled parallel kernels against
// independent reference implementations — BetweennessNaive (explicit
// per-pair path counting, no shared code with Brandes' accumulation
// step) and plain single-threaded BFS loops written here with none of
// the centrality package's scratch reuse. Worker counts 1, 2, and 8
// exercise the inline path, the pool, and oversubscription; every
// engine is asked twice so that a scratch buffer leaking state across
// sources or graphs would corrupt the second answer.

// workerCounts are the pool sizes under differential test.
var workerCounts = []int{1, 2, 8}

// diffHosts builds the ER/BA/WS trio the differential suites run on.
func diffHosts() map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(99))
	return map[string]*graph.Graph{
		"er": gen.ErdosRenyi(rng, 48, 110),
		"ba": gen.BarabasiAlbert(rng, 48, 3),
		"ws": gen.WattsStrogatz(rng, 48, 4, 0.2),
	}
}

// naiveDistances is an independent BFS: plain slice queue, fresh
// allocation per call, no scratch.
func naiveDistances(g *graph.Graph, s int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Adjacency(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, int(u))
			}
		}
	}
	return dist
}

func TestDifferentialBetweenness(t *testing.T) {
	for name, g := range diffHosts() {
		for _, counting := range []centrality.PairCounting{centrality.PairsUnordered, centrality.PairsOrdered} {
			want := centrality.BetweennessNaive(g, counting)
			for _, w := range workerCounts {
				e := New(w)
				for round := 0; round < 2; round++ {
					got := e.Scores(g, Betweenness(counting))
					for v := range want {
						if d := math.Abs(got[v] - want[v]); d > 1e-8*(1+want[v]) {
							t.Fatalf("%s workers=%d round=%d counting=%d: BC(%d) = %v, naive %v",
								name, w, round, counting, v, got[v], want[v])
						}
					}
				}
				e.Close()
			}
		}
	}
}

func TestDifferentialDistanceFamily(t *testing.T) {
	for name, g := range diffHosts() {
		n := g.N()
		wantFar := make([]float64, n)
		wantEcc := make([]float64, n)
		wantClose := make([]float64, n)
		wantHarm := make([]float64, n)
		for s := 0; s < n; s++ {
			dist := naiveDistances(g, s)
			far, ecc := 0, 0
			h := 0.0
			for _, d := range dist {
				if d > 0 {
					far += d
					h += 1 / float64(d)
					if d > ecc {
						ecc = d
					}
				}
			}
			wantFar[s], wantEcc[s], wantHarm[s] = float64(far), float64(ecc), h
			if far > 0 {
				wantClose[s] = 1 / float64(far)
			}
		}
		for _, w := range workerCounts {
			e := New(w)
			for round := 0; round < 2; round++ {
				far := e.Scores(g, Farness())
				ecc := e.Scores(g, ReciprocalEccentricity())
				closeness := e.Scores(g, Closeness())
				harm := e.Scores(g, Harmonic())
				for v := 0; v < n; v++ {
					// Farness, eccentricity, and closeness derive from
					// integer distances: equality is exact.
					if far[v] != wantFar[v] || ecc[v] != wantEcc[v] || closeness[v] != wantClose[v] {
						t.Fatalf("%s workers=%d round=%d node %d: far/ecc/close = %v/%v/%v, want %v/%v/%v",
							name, w, round, v, far[v], ecc[v], closeness[v], wantFar[v], wantEcc[v], wantClose[v])
					}
					if d := math.Abs(harm[v] - wantHarm[v]); d > 1e-12*(1+wantHarm[v]) {
						t.Fatalf("%s workers=%d round=%d: harmonic(%d) = %v, want %v",
							name, w, round, v, harm[v], wantHarm[v])
					}
				}
			}
			e.Close()
		}
	}
}

// TestScratchIsolationAcrossGraphs interleaves scoring of differently
// sized graphs through one engine: pooled kernels are reused across
// sizes, and stale distances/σ/δ from a larger graph must never bleed
// into a smaller one.
func TestScratchIsolationAcrossGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	big := gen.BarabasiAlbert(rng, 90, 4)
	small := gen.ErdosRenyi(rng, 25, 60)
	wantBig := centrality.Betweenness(big, centrality.PairsUnordered)
	wantSmall := centrality.Betweenness(small, centrality.PairsUnordered)

	for _, w := range workerCounts {
		e := New(w, WithCacheSize(0)) // force recomputation every pass
		for round := 0; round < 3; round++ {
			gotBig := e.Scores(big, Betweenness(centrality.PairsUnordered))
			gotSmall := e.Scores(small, Betweenness(centrality.PairsUnordered))
			if !floatsEqual(gotBig, wantBig, 1e-9) || !floatsEqual(gotSmall, wantSmall, 1e-9) {
				t.Fatalf("workers=%d round=%d: interleaved scoring corrupted results", w, round)
			}
		}
		e.Close()
	}
}

// TestDeterministicAcrossRuns: same engine configuration, same graph →
// bitwise-identical floats, run to run and instance to instance (the
// strided-schedule contract the direct centrality functions do not
// make).
func TestDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := gen.BarabasiAlbert(rng, 64, 3)
	for _, w := range workerCounts {
		a := New(w, WithCacheSize(0))
		b := New(w, WithCacheSize(0))
		for _, m := range []Measure{Betweenness(centrality.PairsUnordered), Harmonic()} {
			x := a.Scores(g, m)
			y := a.Scores(g, m)
			z := b.Scores(g, m)
			for v := range x {
				if x[v] != y[v] || x[v] != z[v] {
					t.Fatalf("workers=%d measure %v: nondeterministic float at node %d", w, m, v)
				}
			}
		}
		a.Close()
		b.Close()
	}
}
