package engine

import (
	"math"
	"math/rand"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/gen"
	"promonet/internal/graph"
	"promonet/internal/graph/csr"
)

// Metamorphic properties of centrality: transformations of the input
// graph with a known effect on the output. None of these compare
// against another implementation — they catch bugs both the engine and
// the reference functions could share.

// relabel returns a copy of g with node v renamed perm[v].
func relabel(g *graph.Graph, perm []int) *graph.Graph {
	h := graph.NewWithNodes(g.N())
	g.Edges(func(u, v int) bool {
		h.AddEdge(perm[u], perm[v])
		return true
	})
	return h
}

// disjointUnion returns g ⊔ h with h's nodes shifted by g.N().
func disjointUnion(g, h *graph.Graph) *graph.Graph {
	u := graph.NewWithNodes(g.N() + h.N())
	g.Edges(func(a, b int) bool { u.AddEdge(a, b); return true })
	off := g.N()
	h.Edges(func(a, b int) bool { u.AddEdge(a+off, b+off); return true })
	return u
}

// metamorphicBackends present each host graph to the engine under both
// scoring backends. Every metamorphic property is asserted per backend
// with its own engine — a shared engine would serve the map backend's
// cached scores to the structurally identical (same version, same
// content key) snapshot and never exercise the CSR kernels.
var metamorphicBackends = map[string]func(*graph.Graph) graph.View{
	"map": func(g *graph.Graph) graph.View { return g },
	"csr": func(g *graph.Graph) graph.View { return csr.Freeze(g) },
}

// metamorphicMeasures are the measures whose scores depend only on the
// node's isomorphism class (Katz qualifies too but its automatic
// damping depends on the global max degree, which a disjoint union can
// change, so it is exercised only in the relabeling test).
func metamorphicMeasures() []Measure {
	return []Measure{
		Betweenness(centrality.PairsUnordered),
		Betweenness(centrality.PairsOrdered),
		Closeness(),
		Farness(),
		Eccentricity(),
		ReciprocalEccentricity(),
		Harmonic(),
		Coreness(),
		Degree(),
	}
}

// TestRankInvarianceUnderRelabeling: centrality is a function of the
// unlabeled structure, so relabeling nodes permutes scores and ranks
// identically. Ranks (integer, tie-aware) are compared exactly; the
// permuted traversal order can regroup floating-point sums, which
// ranking absorbs by construction for the int-derived measures and
// which we bound with a relative tolerance on the raw scores.
func TestRankInvarianceUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	hosts := []*graph.Graph{
		gen.ErdosRenyi(rng, 70, 180),
		gen.BarabasiAlbert(rng, 70, 3),
		gen.WattsStrogatz(rng, 70, 4, 0.1),
		gen.Grid(6, 7),
	}
	perms := make([][]int, len(hosts))
	for i, g := range hosts {
		perms[i] = rng.Perm(g.N())
	}
	// exactKinds score through integer arithmetic (distances, degrees,
	// cores), so relabeling permutes them bitwise and ranks must match
	// exactly. The float-summed measures (betweenness, harmonic, Katz)
	// can regroup additions under relabeling; structurally tied nodes
	// may then differ by ulps and flip within their tie group, so their
	// ranks are compared after snapping scores to a coarse grid that
	// re-merges those ties.
	exactKinds := map[string]bool{
		"closeness": true, "farness": true, "eccentricity": true,
		"ecc-reciprocal": true, "coreness": true, "degree": true,
	}
	measures := append(metamorphicMeasures(), Katz())
	for backend, view := range metamorphicBackends {
		backend, view := backend, view
		t.Run(backend, func(t *testing.T) {
			e := New(4)
			defer e.Close()
			for gi, g := range hosts {
				perm := perms[gi]
				h := relabel(g, perm)
				for _, m := range measures {
					orig := e.Scores(view(g), m)
					rel := e.Scores(view(h), m)
					for v := range orig {
						if d := math.Abs(orig[v] - rel[perm[v]]); d > 1e-9*(1+math.Abs(orig[v])) {
							t.Fatalf("host %d measure %v: score(%d)=%v but relabeled score(%d)=%v",
								gi, m, v, orig[v], perm[v], rel[perm[v]])
						}
					}
					var origRanks, relRanks []int
					if exactKinds[m.Key()] {
						origRanks = centrality.Ranks(orig)
						relRanks = centrality.Ranks(rel)
					} else {
						origRanks = centrality.Ranks(quantize(orig))
						relRanks = centrality.Ranks(quantize(rel))
					}
					for v := range origRanks {
						if origRanks[v] != relRanks[perm[v]] {
							t.Fatalf("host %d measure %v: rank(%d)=%d but relabeled rank(%d)=%d",
								gi, m, v, origRanks[v], perm[v], relRanks[perm[v]])
						}
					}
				}
			}
		})
	}
}

// quantize snaps scores to a grid of 1e-9 × the largest magnitude, so
// values separated only by float summation order collapse to one tie.
func quantize(scores []float64) []float64 {
	maxAbs := 0.0
	for _, x := range scores {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return scores
	}
	eps := 1e-9 * maxAbs
	out := make([]float64, len(scores))
	for i, x := range scores {
		out[i] = math.Round(x/eps) * eps
	}
	return out
}

// TestDisjointUnionRestriction: no shortest path crosses components, so
// every measure here restricted to one side of G ⊔ H equals the measure
// on that side alone.
func TestDisjointUnionRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := gen.BarabasiAlbert(rng, 50, 3)
	h := gen.ErdosRenyi(rng, 40, 90)
	u := disjointUnion(g, h)

	for backend, view := range metamorphicBackends {
		backend, view := backend, view
		t.Run(backend, func(t *testing.T) {
			e := New(4)
			defer e.Close()
			for _, m := range metamorphicMeasures() {
				gScores := e.Scores(view(g), m)
				hScores := e.Scores(view(h), m)
				uScores := e.Scores(view(u), m)
				for v := range gScores {
					if d := math.Abs(gScores[v] - uScores[v]); d > 1e-9*(1+math.Abs(gScores[v])) {
						t.Fatalf("measure %v: G-side score(%d) %v != %v in union", m, v, uScores[v], gScores[v])
					}
				}
				off := g.N()
				for v := range hScores {
					if d := math.Abs(hScores[v] - uScores[off+v]); d > 1e-9*(1+math.Abs(hScores[v])) {
						t.Fatalf("measure %v: H-side score(%d) %v != %v in union", m, v, uScores[off+v], hScores[v])
					}
				}
			}
		})
	}
}

// TestClosedFormStar checks exact textbook values on Star(n): the hub
// lies on every leaf pair's only path.
func TestClosedFormStar(t *testing.T) {
	const n = 17
	for backend, view := range metamorphicBackends {
		t.Run(backend, func(t *testing.T) {
			testClosedFormStar(t, n, view(gen.Star(n)))
		})
	}
}

func testClosedFormStar(t *testing.T, n int, g graph.View) {
	e := New(2)
	defer e.Close()

	bc := e.Scores(g, Betweenness(centrality.PairsUnordered))
	wantHub := float64((n - 1) * (n - 2) / 2)
	if bc[0] != wantHub {
		t.Fatalf("BC(hub) = %v, want %v", bc[0], wantHub)
	}
	far := e.Scores(g, Farness())
	ecc := e.Scores(g, ReciprocalEccentricity())
	core := e.Scores(g, Coreness())
	for v := 1; v < n; v++ {
		if bc[v] != 0 {
			t.Fatalf("BC(leaf %d) = %v, want 0", v, bc[v])
		}
		if want := float64(1 + 2*(n-2)); far[v] != want {
			t.Fatalf("farness(leaf %d) = %v, want %v", v, far[v], want)
		}
		if ecc[v] != 2 {
			t.Fatalf("ecc(leaf %d) = %v, want 2", v, ecc[v])
		}
		if core[v] != 1 {
			t.Fatalf("coreness(leaf %d) = %v, want 1", v, core[v])
		}
	}
	if far[0] != float64(n-1) || ecc[0] != 1 {
		t.Fatalf("hub farness/ecc = %v/%v, want %d/1", far[0], ecc[0], n-1)
	}
}

// TestClosedFormPath checks Path(n): BC(i) = i·(n-1-i) unordered,
// farness(i) = Σ left + Σ right, ecc(i) = max(i, n-1-i).
func TestClosedFormPath(t *testing.T) {
	const n = 13
	for backend, view := range metamorphicBackends {
		t.Run(backend, func(t *testing.T) {
			testClosedFormPath(t, n, view(gen.Path(n)))
		})
	}
}

func testClosedFormPath(t *testing.T, n int, g graph.View) {
	e := New(2)
	defer e.Close()
	bc := e.Scores(g, Betweenness(centrality.PairsUnordered))
	far := e.Scores(g, Farness())
	ecc := e.Scores(g, ReciprocalEccentricity())
	for i := 0; i < n; i++ {
		if want := float64(i * (n - 1 - i)); bc[i] != want {
			t.Fatalf("BC(%d) = %v, want %v", i, bc[i], want)
		}
		l, r := i, n-1-i
		if want := float64(l*(l+1)/2 + r*(r+1)/2); far[i] != want {
			t.Fatalf("farness(%d) = %v, want %v", i, far[i], want)
		}
		if want := float64(max(l, r)); ecc[i] != want {
			t.Fatalf("ecc(%d) = %v, want %v", i, ecc[i], want)
		}
	}
}

// TestClosedFormClique checks Clique(n): all pairs adjacent, so no node
// mediates anything; everything is symmetric.
func TestClosedFormClique(t *testing.T) {
	const n = 11
	for backend, view := range metamorphicBackends {
		t.Run(backend, func(t *testing.T) {
			testClosedFormClique(t, n, view(gen.Clique(n)))
		})
	}
}

func testClosedFormClique(t *testing.T, n int, g graph.View) {
	e := New(2)
	defer e.Close()
	bc := e.Scores(g, Betweenness(centrality.PairsOrdered))
	far := e.Scores(g, Farness())
	ecc := e.Scores(g, ReciprocalEccentricity())
	core := e.Scores(g, Coreness())
	harm := e.Scores(g, Harmonic())
	for v := 0; v < n; v++ {
		if bc[v] != 0 || far[v] != float64(n-1) || ecc[v] != 1 ||
			core[v] != float64(n-1) || harm[v] != float64(n-1) {
			t.Fatalf("clique node %d: bc=%v far=%v ecc=%v core=%v harm=%v",
				v, bc[v], far[v], ecc[v], core[v], harm[v])
		}
	}
}

// TestClosedFormGrid checks corner values on the r×c lattice (L1
// distances; betweenness is skipped — grid path counts are fractional).
func TestClosedFormGrid(t *testing.T) {
	const r, c = 5, 8
	for backend, view := range metamorphicBackends {
		t.Run(backend, func(t *testing.T) {
			testClosedFormGrid(t, r, c, view(gen.Grid(r, c)))
		})
	}
}

func testClosedFormGrid(t *testing.T, r, c int, g graph.View) {
	e := New(2)
	defer e.Close()
	far := e.Scores(g, Farness())
	ecc := e.Scores(g, ReciprocalEccentricity())
	// Corner (0,0): dist((0,0),(i,j)) = i + j.
	wantFar := float64(c*(r-1)*r/2 + r*(c-1)*c/2)
	if far[0] != wantFar {
		t.Fatalf("grid corner farness = %v, want %v", far[0], wantFar)
	}
	if want := float64((r - 1) + (c - 1)); ecc[0] != want {
		t.Fatalf("grid corner ecc = %v, want %v", ecc[0], want)
	}
}
