package engine

import (
	"math"
	"math/rand"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/gen"
	"promonet/internal/graph"
)

// allMeasures is the full measure set on defined-everywhere graphs
// (Katz excluded where noted by callers; it needs KatzAuto convergence,
// which holds on all the generators used here).
func allMeasures() []Measure {
	return []Measure{
		Betweenness(centrality.PairsUnordered),
		Betweenness(centrality.PairsOrdered),
		Closeness(),
		Farness(),
		Eccentricity(),
		ReciprocalEccentricity(),
		Harmonic(),
		Coreness(),
		Degree(),
	}
}

func floatsEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(a[i])) {
			return false
		}
	}
	return true
}

func TestScoresMatchDirectFunctions(t *testing.T) {
	e := New(4)
	defer e.Close()
	rng := rand.New(rand.NewSource(7))
	g := gen.ErdosRenyi(rng, 60, 150)

	checks := []struct {
		name string
		m    Measure
		want []float64
	}{
		{"betweenness-unordered", Betweenness(centrality.PairsUnordered), centrality.Betweenness(g, centrality.PairsUnordered)},
		{"betweenness-ordered", Betweenness(centrality.PairsOrdered), centrality.Betweenness(g, centrality.PairsOrdered)},
		{"closeness", Closeness(), centrality.Closeness(g)},
		{"harmonic", Harmonic(), centrality.Harmonic(g)},
		{"eccentricity", Eccentricity(), centrality.Eccentricity(g)},
		{"coreness", Coreness(), centrality.CorenessFloat(g)},
		{"degree", Degree(), centrality.Degree(g)},
		{"katz", Katz(), centrality.KatzAuto(g)},
	}
	for _, c := range checks {
		got := e.Scores(g, c.m)
		if !floatsEqual(got, c.want, 1e-9) {
			t.Errorf("%s: engine scores disagree with direct function", c.name)
		}
	}

	far := centrality.Farness(g)
	gotFar := e.Scores(g, Farness())
	recEcc := centrality.ReciprocalEccentricity(g)
	gotRec := e.Scores(g, ReciprocalEccentricity())
	for v := range far {
		if gotFar[v] != float64(far[v]) {
			t.Fatalf("farness[%d] = %v, want %v", v, gotFar[v], far[v])
		}
		if gotRec[v] != float64(recEcc[v]) {
			t.Fatalf("reciprocal ecc[%d] = %v, want %v", v, gotRec[v], recEcc[v])
		}
	}
}

func TestFamilySharingOneSweep(t *testing.T) {
	e := New(2)
	defer e.Close()
	g := gen.Grid(8, 9)

	_ = e.ScoresFor(g, Closeness(), Farness(), Harmonic(), Eccentricity(), ReciprocalEccentricity())
	st := e.Stats()
	var sweeps uint64
	for _, f := range st.PerFamily {
		if f.Family == "distance-sweep" {
			sweeps = f.Computes
		}
	}
	if sweeps != 1 {
		t.Fatalf("distance family computed %d times for 5 sibling measures, want 1", sweeps)
	}
	if st.BFSRuns != uint64(g.N()) {
		t.Fatalf("BFSRuns = %d, want n = %d", st.BFSRuns, g.N())
	}

	// Both counting conventions share one Brandes accumulation.
	e.ResetStats()
	_ = e.ScoresFor(g, Betweenness(centrality.PairsUnordered), Betweenness(centrality.PairsOrdered))
	st = e.Stats()
	if st.BrandesRuns != uint64(g.N()) {
		t.Fatalf("BrandesRuns = %d, want n = %d", st.BrandesRuns, g.N())
	}
}

func TestMemoHitOnRepeatAndOnClone(t *testing.T) {
	e := New(2)
	defer e.Close()
	rng := rand.New(rand.NewSource(3))
	g := gen.BarabasiAlbert(rng, 80, 3)

	first := e.Scores(g, Closeness())
	st := e.Stats()
	if st.Hits != 0 || st.Misses == 0 {
		t.Fatalf("first request: hits=%d misses=%d, want 0 hits", st.Hits, st.Misses)
	}
	second := e.Scores(g, Closeness())
	if e.Stats().Hits == 0 {
		t.Fatal("repeat request did not hit the memo table")
	}
	if !floatsEqual(first, second, 0) {
		t.Fatal("memoized scores differ from computed scores")
	}

	// A clone has a different version but identical content: the
	// content-addressed key must hit.
	before := e.Stats().Hits
	cl := g.Clone()
	third := e.Scores(cl, Closeness())
	if e.Stats().Hits <= before {
		t.Fatal("clone request did not hit the content-addressed memo")
	}
	if !floatsEqual(first, third, 0) {
		t.Fatal("clone scores differ")
	}

	// Returned slices are fresh copies: mutating one must not corrupt
	// the cache.
	second[0] = math.Inf(1)
	fourth := e.Scores(g, Closeness())
	if math.IsInf(fourth[0], 1) {
		t.Fatal("caller mutation leaked into the memo table")
	}
}

func TestCacheDisabledStillCorrect(t *testing.T) {
	e := New(2, WithCacheSize(0))
	defer e.Close()
	g := gen.Star(12)
	a := e.Scores(g, Betweenness(centrality.PairsUnordered))
	b := e.Scores(g, Betweenness(centrality.PairsUnordered))
	if !floatsEqual(a, b, 0) {
		t.Fatal("uncached runs disagree")
	}
	if e.Stats().Hits != 0 {
		t.Fatalf("cache disabled but hits = %d", e.Stats().Hits)
	}
	if !floatsEqual(a, centrality.Betweenness(g, centrality.PairsUnordered), 1e-9) {
		t.Fatal("uncached scores wrong")
	}
}

func TestLRUEviction(t *testing.T) {
	e := New(1, WithCacheSize(2))
	defer e.Close()
	graphs := []*graph.Graph{gen.Path(5), gen.Path(6), gen.Path(7)}
	for _, g := range graphs {
		e.Scores(g, Degree())
	}
	if ev := e.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1 (cap 2, 3 snapshots)", ev)
	}
	// Oldest snapshot was evicted; re-scoring it is a miss.
	before := e.Stats().Misses
	e.Scores(graphs[0], Degree())
	if e.Stats().Misses == before {
		t.Fatal("evicted snapshot served from cache")
	}
}

func TestRanksFor(t *testing.T) {
	e := New(2)
	defer e.Close()
	g := gen.Star(9)
	ranks := e.RanksFor(g, Degree(), Closeness())
	for i, m := range []Measure{Degree(), Closeness()} {
		want := centrality.Ranks(e.Scores(g, m))
		got := ranks[i]
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("measure %v: rank[%d] = %d, want %d", m, v, got[v], want[v])
			}
		}
	}
	// RanksFor returns are copies.
	ranks[0][0] = -99
	again := e.RanksFor(g, Degree())
	if again[0][0] == -99 {
		t.Fatal("caller mutation leaked into the rank memo")
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	e := New(4)
	defer e.Close()
	for _, g := range []*graph.Graph{graph.NewWithNodes(0), graph.NewWithNodes(1), graph.NewWithNodes(3)} {
		for _, m := range allMeasures() {
			got := e.Scores(g, m)
			if len(got) != g.N() {
				t.Fatalf("n=%d measure %v: len = %d", g.N(), m, len(got))
			}
			for v, x := range got {
				if x != 0 {
					t.Fatalf("n=%d (edgeless) measure %v: score[%d] = %v, want 0", g.N(), m, v, x)
				}
			}
		}
	}

	// The zero-value graph reports version 0; scoring it must not
	// poison the version-digest cache for other graphs.
	var z graph.Graph
	if z.Version() != 0 {
		t.Fatalf("zero-value version = %d, want 0", z.Version())
	}
	if got := e.Scores(&z, Degree()); len(got) != 0 {
		t.Fatalf("zero-value graph scored %d nodes", len(got))
	}
}

func TestDefaultEngine(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Fatal("Default engine not a stable singleton")
	}
	if Default().Workers() < 1 {
		t.Fatal("Default engine has no workers")
	}
}

func TestCloseIdempotent(t *testing.T) {
	e := New(3)
	g := gen.Clique(6)
	_ = e.Scores(g, Closeness())
	e.Close()
	e.Close() // second close must not panic
}

func TestCorenessInt(t *testing.T) {
	e := New(2)
	defer e.Close()
	rng := rand.New(rand.NewSource(11))
	g := gen.ErdosRenyi(rng, 80, 240)

	got := e.CorenessInt(g)
	want := centrality.Coreness(g)
	if len(got) != len(want) {
		t.Fatalf("CorenessInt length %d, want %d", len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("CorenessInt[%d] = %d, want %d", v, got[v], want[v])
		}
	}

	// The integer view shares the float measure's memo slot: after a
	// float Coreness request, CorenessInt must be a pure hit.
	e.ResetStats()
	_ = e.Scores(g, Coreness())
	_ = e.CorenessInt(g)
	s := e.Stats()
	if s.Hits < 1 {
		t.Errorf("CorenessInt after Scores(Coreness) recorded no memo hit: %v", s)
	}
	if s.Misses > 1 {
		t.Errorf("CorenessInt recomputed instead of sharing the coreness slot: %v", s)
	}

	// And the mutate-evaluate-revert pattern used by the greedy
	// baseline must see fresh values after a mutation.
	gm := g.Clone()
	u, v := -1, -1
	for a := 0; a < gm.N() && u < 0; a++ {
		for b := a + 1; b < gm.N(); b++ {
			if !gm.HasEdge(a, b) {
				u, v = a, b
				break
			}
		}
	}
	if u >= 0 {
		gm.AddEdge(u, v)
		fresh := e.CorenessInt(gm)
		direct := centrality.Coreness(gm)
		for w := range direct {
			if fresh[w] != direct[w] {
				t.Fatalf("post-mutation CorenessInt[%d] = %d, want %d (stale cache?)", w, fresh[w], direct[w])
			}
		}
	}
}
