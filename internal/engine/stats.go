package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// counters is the engine's live instrumentation: lock-free totals plus a
// small mutex-guarded per-family wall-clock table, sampled into a Stats
// snapshot on demand.
type counters struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	bfsRuns   atomic.Uint64
	brandes   atomic.Uint64

	mu  sync.Mutex
	per map[string]*familyTotals
}

// familyTotals accumulates one compute family's cost.
type familyTotals struct {
	computes uint64
	wall     time.Duration
}

// noteCompute records one cache-missed computation of a family.
func (c *counters) noteCompute(family string, wall time.Duration) {
	c.misses.Add(1)
	c.mu.Lock()
	if c.per == nil {
		c.per = make(map[string]*familyTotals)
	}
	ft := c.per[family]
	if ft == nil {
		ft = &familyTotals{}
		c.per[family] = ft
	}
	ft.computes++
	ft.wall += wall
	c.mu.Unlock()
}

// Stats is a point-in-time snapshot of an engine's counters: memoization
// effectiveness, raw traversal counts, and wall-clock per compute
// family. Obtain one with (*Engine).Stats.
type Stats struct {
	// Hits and Misses count score requests served from the memo table
	// versus computed. Evictions counts memo entries dropped by the LRU
	// bound.
	Hits, Misses, Evictions uint64
	// BFSRuns and BrandesRuns count single-source traversals actually
	// executed (the engine's unit of work).
	BFSRuns, BrandesRuns uint64
	// PerFamily breaks down computed (cache-missed) work by compute
	// family, sorted by family name.
	PerFamily []FamilyStats
}

// FamilyStats is one compute family's share of the engine's work.
type FamilyStats struct {
	// Family is the compute-family name, e.g. "betweenness" or
	// "distance-sweep" (which covers closeness, farness, harmonic, and
	// both eccentricity variants).
	Family string
	// Computes is the number of cache-missed computations.
	Computes uint64
	// Wall is the total wall-clock time spent computing.
	Wall time.Duration
}

// HitRate is the fraction of score requests served from the memo table,
// in [0, 1]; 0 when nothing has been requested yet.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the snapshot as one human-readable line.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d hits / %d misses (%.0f%% hit rate), %d BFS + %d Brandes runs, %d evictions",
		s.Hits, s.Misses, 100*s.HitRate(), s.BFSRuns, s.BrandesRuns, s.Evictions)
	for _, f := range s.PerFamily {
		fmt.Fprintf(&b, "; %s %d× in %v", f.Family, f.Computes, f.Wall.Round(time.Microsecond))
	}
	return b.String()
}

// Stats returns a snapshot of the engine's counters since creation (or
// the last ResetStats).
func (e *Engine) Stats() Stats {
	s := Stats{
		Hits:        e.counters.hits.Load(),
		Misses:      e.counters.misses.Load(),
		Evictions:   e.counters.evictions.Load(),
		BFSRuns:     e.counters.bfsRuns.Load(),
		BrandesRuns: e.counters.brandes.Load(),
	}
	e.counters.mu.Lock()
	for name, ft := range e.counters.per {
		s.PerFamily = append(s.PerFamily, FamilyStats{Family: name, Computes: ft.computes, Wall: ft.wall})
	}
	e.counters.mu.Unlock()
	sort.Slice(s.PerFamily, func(a, b int) bool { return s.PerFamily[a].Family < s.PerFamily[b].Family })
	return s
}

// ResetStats zeroes all counters; the memo table is left intact.
func (e *Engine) ResetStats() {
	e.counters.hits.Store(0)
	e.counters.misses.Store(0)
	e.counters.evictions.Store(0)
	e.counters.bfsRuns.Store(0)
	e.counters.brandes.Store(0)
	e.counters.mu.Lock()
	e.counters.per = nil
	e.counters.mu.Unlock()
}
