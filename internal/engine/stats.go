package engine

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"promonet/internal/obs"
)

// counters is the engine's live instrumentation. Every slot is
// lock-free: the request/traversal totals are obs.Counter handles
// (registry-backed for the Default engine, standalone otherwise), and
// the per-family wall-clock table is a fixed array indexed by the
// compute family — pre-registered at construction, so a cache miss
// never takes a lock to find its row (the old map+mutex table
// serialized every miss across all workers).
type counters struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	bfsRuns   *obs.Counter
	brandes   *obs.Counter

	// deltaHits counts candidate edges priced through the incremental
	// delta path; deltaFallbacks counts candidates that had to fall back
	// to a full recomputation (affected set too large, or a measure the
	// delta scorer cannot price incrementally).
	deltaHits      *obs.Counter
	deltaFallbacks *obs.Counter

	families [numFamilies]familySlot
}

// familySlot accumulates one compute family's cost, lock-free.
type familySlot struct {
	computes  atomic.Uint64
	wallNanos atomic.Int64
}

// newCounters wires the counter handles: into reg under
// "<prefix>.<name>" when a registry is given (so /debug/vars exposes
// them), standalone otherwise.
func newCounters(reg *obs.Registry, prefix string) counters {
	if reg == nil {
		return counters{
			hits:           obs.NewCounter(),
			misses:         obs.NewCounter(),
			evictions:      obs.NewCounter(),
			bfsRuns:        obs.NewCounter(),
			brandes:        obs.NewCounter(),
			deltaHits:      obs.NewCounter(),
			deltaFallbacks: obs.NewCounter(),
		}
	}
	return counters{
		hits:           reg.Counter(prefix + ".hits"),
		misses:         reg.Counter(prefix + ".misses"),
		evictions:      reg.Counter(prefix + ".evictions"),
		bfsRuns:        reg.Counter(prefix + ".bfs_runs"),
		brandes:        reg.Counter(prefix + ".brandes_runs"),
		deltaHits:      reg.Counter(prefix + ".delta_hits"),
		deltaFallbacks: reg.Counter(prefix + ".delta_fallbacks"),
	}
}

// noteCompute records one cache-missed computation of a family.
func (c *counters) noteCompute(f family, wall time.Duration) {
	c.misses.Inc()
	sl := &c.families[f]
	sl.computes.Add(1)
	sl.wallNanos.Add(int64(wall))
}

// Stats is a point-in-time snapshot of an engine's counters: memoization
// effectiveness, raw traversal counts, and wall-clock per compute
// family. Obtain one with (*Engine).Stats.
type Stats struct {
	// Hits and Misses count score requests served from the memo table
	// versus computed. Evictions counts memo entries dropped by the LRU
	// bound.
	Hits, Misses, Evictions uint64
	// BFSRuns and BrandesRuns count single-source traversals actually
	// executed (the engine's unit of work).
	BFSRuns, BrandesRuns uint64
	// DeltaHits counts candidate edges priced through the incremental
	// delta path of EvaluateEdgeBatch; DeltaFallbacks counts candidates
	// that fell back to a full recomputation.
	DeltaHits, DeltaFallbacks uint64
	// PerFamily breaks down computed (cache-missed) work by compute
	// family, sorted by family name.
	PerFamily []FamilyStats
}

// FamilyStats is one compute family's share of the engine's work.
type FamilyStats struct {
	// Family is the compute-family name, e.g. "betweenness" or
	// "distance-sweep" (which covers closeness, farness, harmonic, and
	// both eccentricity variants).
	Family string
	// Computes is the number of cache-missed computations.
	Computes uint64
	// Wall is the total wall-clock time spent computing.
	Wall time.Duration
}

// HitRate is the fraction of score requests served from the memo table,
// in [0, 1]; 0 when nothing has been requested yet.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the snapshot as one human-readable line.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d hits / %d misses (%.0f%% hit rate), %d BFS + %d Brandes runs, %d evictions",
		s.Hits, s.Misses, 100*s.HitRate(), s.BFSRuns, s.BrandesRuns, s.Evictions)
	if s.DeltaHits+s.DeltaFallbacks > 0 {
		fmt.Fprintf(&b, ", %d delta hits / %d delta fallbacks", s.DeltaHits, s.DeltaFallbacks)
	}
	for _, f := range s.PerFamily {
		fmt.Fprintf(&b, "; %s %d× in %v", f.Family, f.Computes, f.Wall.Round(time.Microsecond))
	}
	return b.String()
}

// Manifest converts the snapshot to the manifest/expvar schema type
// (obs cannot import this package, so the conversion lives here).
func (s Stats) Manifest() obs.EngineStats {
	out := obs.EngineStats{
		Hits:           s.Hits,
		Misses:         s.Misses,
		Evictions:      s.Evictions,
		BFSRuns:        s.BFSRuns,
		BrandesRuns:    s.BrandesRuns,
		DeltaHits:      s.DeltaHits,
		DeltaFallbacks: s.DeltaFallbacks,
		HitRate:        s.HitRate(),
	}
	for _, f := range s.PerFamily {
		out.PerFamily = append(out.PerFamily, obs.EngineFamilyStats{
			Family:    f.Family,
			Computes:  f.Computes,
			WallNanos: int64(f.Wall),
		})
	}
	return out
}

// MarshalJSON renders the snapshot in the manifest schema, making
// engine stats consumable by scripted runs (promoctl -json) and run
// manifests, not just the human stderr line.
func (s Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Manifest())
}

// Delta returns the work done between an earlier snapshot of the same
// engine and this one: every counter minus its prev value, per-family
// rows subtracted by name (families with no new computes are dropped).
// The experiments harness uses it to attribute engine work to one
// dataset×measure cell.
func (s Stats) Delta(prev Stats) Stats {
	d := Stats{
		Hits:           s.Hits - prev.Hits,
		Misses:         s.Misses - prev.Misses,
		Evictions:      s.Evictions - prev.Evictions,
		BFSRuns:        s.BFSRuns - prev.BFSRuns,
		BrandesRuns:    s.BrandesRuns - prev.BrandesRuns,
		DeltaHits:      s.DeltaHits - prev.DeltaHits,
		DeltaFallbacks: s.DeltaFallbacks - prev.DeltaFallbacks,
	}
	before := make(map[string]FamilyStats, len(prev.PerFamily))
	for _, f := range prev.PerFamily {
		before[f.Family] = f
	}
	for _, f := range s.PerFamily {
		b := before[f.Family]
		if f.Computes == b.Computes {
			continue
		}
		d.PerFamily = append(d.PerFamily, FamilyStats{
			Family:   f.Family,
			Computes: f.Computes - b.Computes,
			Wall:     f.Wall - b.Wall,
		})
	}
	return d
}

// Stats returns a snapshot of the engine's counters since creation (or
// the last ResetStats).
func (e *Engine) Stats() Stats {
	s := Stats{
		Hits:           e.counters.hits.Value(),
		Misses:         e.counters.misses.Value(),
		Evictions:      e.counters.evictions.Value(),
		BFSRuns:        e.counters.bfsRuns.Value(),
		BrandesRuns:    e.counters.brandes.Value(),
		DeltaHits:      e.counters.deltaHits.Value(),
		DeltaFallbacks: e.counters.deltaFallbacks.Value(),
	}
	for f := family(0); f < numFamilies; f++ {
		sl := &e.counters.families[f]
		computes := sl.computes.Load()
		if computes == 0 {
			continue
		}
		s.PerFamily = append(s.PerFamily, FamilyStats{
			Family:   f.String(),
			Computes: computes,
			Wall:     time.Duration(sl.wallNanos.Load()),
		})
	}
	sort.Slice(s.PerFamily, func(a, b int) bool { return s.PerFamily[a].Family < s.PerFamily[b].Family })
	return s
}

// ResetStats zeroes all counters; the memo table is left intact.
func (e *Engine) ResetStats() {
	e.counters.hits.Set(0)
	e.counters.misses.Set(0)
	e.counters.evictions.Set(0)
	e.counters.bfsRuns.Set(0)
	e.counters.brandes.Set(0)
	e.counters.deltaHits.Set(0)
	e.counters.deltaFallbacks.Set(0)
	for f := range e.counters.families {
		e.counters.families[f].computes.Store(0)
		e.counters.families[f].wallNanos.Store(0)
	}
}
