package engine

import (
	"math"
	"math/rand"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/gen"
)

// Seed-stability contract of BetweennessSampled: the pivot set is a
// pure function of (n, k, seed) — one Perm draw from a fresh
// rand.Source — and the engine's strided merge makes the reduction a
// pure function of (graph, pivots, worker count). Two independent
// engine instances must therefore produce bitwise-identical estimates.

func TestSampledSeedStabilityAcrossEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := gen.BarabasiAlbert(rng, 120, 3)
	const k, seed = 24, int64(7)

	for _, w := range []int{1, 2, 8} {
		a := New(w)
		b := New(w)
		x := a.Scores(g, BetweennessSampled(centrality.PairsUnordered, k, seed))
		y := b.Scores(g, BetweennessSampled(centrality.PairsUnordered, k, seed))
		for v := range x {
			if x[v] != y[v] {
				t.Fatalf("workers=%d: engines disagree at node %d: %v vs %v", w, v, x[v], y[v])
			}
		}
		// Same engine, repeated: memo hit must serve identical values.
		z := a.Scores(g, BetweennessSampled(centrality.PairsUnordered, k, seed))
		for v := range x {
			if x[v] != z[v] {
				t.Fatalf("workers=%d: repeat differs at node %d", w, v)
			}
		}
		a.Close()
		b.Close()
	}
}

func TestSampledSeedsDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := gen.ErdosRenyi(rng, 100, 260)
	e := New(4)
	defer e.Close()
	x := e.Scores(g, BetweennessSampled(centrality.PairsUnordered, 20, 1))
	y := e.Scores(g, BetweennessSampled(centrality.PairsUnordered, 20, 2))
	same := true
	for v := range x {
		if x[v] != y[v] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical estimates — pivot seed ignored")
	}
}

// TestSampledMatchesDirectFunction: the engine's pivot set must be the
// one centrality.BetweennessSampled draws for an identically seeded
// rng, so the two estimates agree up to summation order.
func TestSampledMatchesDirectFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := gen.WattsStrogatz(rng, 110, 4, 0.15)
	const k, seed = 30, int64(12345)

	want := centrality.BetweennessSampled(g, centrality.PairsUnordered, k, rand.New(rand.NewSource(seed)))
	e := New(4)
	defer e.Close()
	got := e.Scores(g, BetweennessSampled(centrality.PairsUnordered, k, seed))
	for v := range want {
		if d := math.Abs(got[v] - want[v]); d > 1e-8*(1+want[v]) {
			t.Fatalf("node %d: engine %v, direct %v", v, got[v], want[v])
		}
	}
}

// TestSampledDegradesToExact: k >= n is the exact computation and must
// share its cache entry regardless of seed.
func TestSampledDegradesToExact(t *testing.T) {
	g := gen.Clique(14)
	e := New(2)
	defer e.Close()
	exact := e.Scores(g, Betweenness(centrality.PairsUnordered))
	st := e.Stats()
	got := e.Scores(g, BetweennessSampled(centrality.PairsUnordered, 50, 9))
	if e.Stats().BrandesRuns != st.BrandesRuns {
		t.Fatal("k >= n recomputed instead of reusing the exact accumulation")
	}
	for v := range exact {
		if got[v] != exact[v] {
			t.Fatalf("node %d: degraded sample %v != exact %v", v, got[v], exact[v])
		}
	}
}
