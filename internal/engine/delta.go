// delta.go — incremental single-edge candidate evaluation.
//
// The greedy baselines (internal/greedy) price hundreds of candidate
// edges (target, v) per round. Before this layer, every probe was an
// add-edge → full-recompute → remove-edge cycle: each mutation bumps
// the graph version, so the engine's content memoization misses on
// every single probe and the full kernel cost is paid per candidate.
//
// EvaluateEdgeBatch instead computes the base BFS/Brandes structures of
// the working graph once per batch (memoized per graph snapshot, so one
// greedy round pays for them at most once) and scores each candidate
// incrementally, without ever mutating the shared graph:
//
//   - BFS-family measures (closeness, farness, harmonic, both
//     eccentricity variants) run an affected-frontier dynamic BFS: only
//     nodes whose distance to the target shrinks under the new edge are
//     re-relaxed, which handles the component-merge case (unreachable =
//     infinite distance shrinking to finite) for free. Aggregates are
//     patched in exact integer arithmetic, so the result is bitwise
//     identical to a full recompute.
//   - Betweenness uses restricted re-accumulation: one BFS from the
//     candidate classifies every source s by whether its shortest-path
//     DAG can change (it cannot when d(s, target) == d(s, v)); only
//     affected sources re-run Brandes — against a *virtual* edge, so
//     the shared graph stays untouched — while unaffected sources reuse
//     the cached per-source dependency δ_s(target). When the affected
//     set exceeds the configured fraction the candidate falls back to a
//     full (virtual-edge) Brandes sweep; fallbacks are counted.
//
// Candidates fan out over the engine's worker pool on the same
// deterministic strided schedule as the score families; each output
// slot is produced by exactly one worker with a fixed operation order,
// so batch results are bitwise reproducible across engine instances and
// worker counts.
package engine

import (
	"context"
	"fmt"
	"math/rand"

	"promonet/internal/centrality"
	"promonet/internal/graph"
	"promonet/internal/obs"
)

// spanDeltaBatch is the precomputed tracing-span name of one
// EvaluateEdgeBatch call.
const spanDeltaBatch = "engine/delta/batch"

// defaultDeltaFallbackFraction is the affected-source fraction above
// which a betweenness candidate abandons restricted re-accumulation for
// a full sweep; see WithDeltaFallbackFraction.
const defaultDeltaFallbackFraction = 0.75

// WithDeltaFallbackFraction tunes the betweenness delta scorer: a
// candidate whose affected-source set exceeds frac·|sources| is scored
// by a full Brandes sweep instead of restricted re-accumulation (the
// restricted path would redo almost all the work anyway, while paying
// the classification overhead on top). frac <= 0 forces every
// betweenness candidate to the full path; frac >= 1 never falls back.
// The default is 0.75.
func WithDeltaFallbackFraction(frac float64) Option {
	return func(e *Engine) { e.deltaFrac = frac }
}

// EvaluateEdgeBatch returns, for every candidate v in cands, the score
// of target under measure m on the graph g + {(target, v)} — the value
// Scores(g', m)[target] would report after AddEdge(target, v) — without
// mutating g. Results for BFS-family measures (closeness, farness,
// harmonic, eccentricity) are bitwise identical to the full recompute;
// betweenness agrees within floating-point accumulation order (the
// integer-valued path counts are identical). Candidates equal to the
// target or already adjacent to it score the unmodified graph, matching
// the no-op AddEdge semantics. Measures outside the delta scorer's
// reach (coreness, degree, Katz) are priced by a per-candidate
// clone-and-recompute and counted as fallbacks.
//
// The base structures are memoized per graph snapshot, so repeated
// batches on an unchanged graph (or several measures over one greedy
// round) pay for them once. EvaluateEdgeBatch is safe for concurrent
// use and panics if target is not a node of g.
func (e *Engine) EvaluateEdgeBatch(g graph.View, target int, cands []int, m Measure) []float64 {
	n := g.N()
	if target < 0 || target >= n {
		panic(fmt.Sprintf("engine: EvaluateEdgeBatch target %d outside [0, %d)", target, n))
	}
	out := make([]float64, len(cands))
	if len(cands) == 0 {
		return out
	}
	_, sp := obs.Start(context.Background(), spanDeltaBatch)
	sp.Int("n", n)
	sp.Int("target", target)
	sp.Int("candidates", len(cands))
	sp.Str("measure", m.Key())
	defer sp.End()

	switch m.kind {
	case kindCloseness, kindFarness, kindHarmonic, kindEccentricity, kindReciprocalEccentricity:
		e.deltaBatchSweep(g, target, cands, m, out)
	case kindBetweenness:
		e.deltaBatchBetweenness(g, target, cands, m, out)
	default:
		e.deltaBatchClone(g, target, cands, m, out)
	}
	return out
}

// --- BFS-family delta scoring ---

// deltaSweepBase is the once-per-snapshot base structure for BFS-family
// delta scoring: the distance vector from the target plus the exact
// aggregates every candidate patches.
type deltaSweepBase struct {
	dist  []int32 // d(target, ·); centrality.Unreachable outside the component
	histo []int32 // histo[d] = number of nodes at distance d from target
	far   int64   // Σ_u d(target, u) over reachable u
	ecc   int32   // max_u d(target, u) within the component
}

// deltaSweepBaseFor resolves (computing at most once per snapshot) the
// BFS-family base for (g, target).
func (e *Engine) deltaSweepBaseFor(g graph.View, target int) *deltaSweepBase {
	key := fmt.Sprintf("delta-sweep|t=%d", target)
	return e.resolve(g, key, famDelta, func() any {
		return e.computeDeltaSweepBase(g, target)
	}).(*deltaSweepBase)
}

func (e *Engine) computeDeltaSweepBase(g graph.View, target int) *deltaSweepBase {
	k := e.getKernel()
	defer e.putKernel(k)
	dist, _, ecc := k.BFS(g, target)
	e.counters.bfsRuns.Add(1)
	base := &deltaSweepBase{
		dist:  append([]int32(nil), dist...),
		histo: make([]int32, g.N()),
		ecc:   ecc,
	}
	for _, d := range base.dist {
		if d >= 0 {
			base.histo[d]++
		}
		if d > 0 {
			base.far += int64(d)
		}
	}
	return base
}

// deltaScratch is one worker's reusable state for affected-frontier
// BFS: patched distances are valid where mark[u] == epoch, so resetting
// between candidates costs one counter increment.
type deltaScratch struct {
	nd      []int32
	mark    []int32
	epoch   int32
	queue   []int32
	touched []int32
	histo   []int32 // worker-private copy of the base histogram (ecc only)
}

func newDeltaScratch(n int) *deltaScratch {
	return &deltaScratch{nd: make([]int32, n), mark: make([]int32, n)}
}

// frontier runs the affected-frontier dynamic BFS for the candidate
// edge (target, v): starting from v at distance 1, it re-relaxes
// exactly the nodes whose distance to target shrinks (previously
// unreachable nodes count as infinitely far, so a component merge is
// the same relaxation). Affected nodes are recorded in sc.touched with
// their new distances in sc.nd.
//
//promolint:hotpath
func (sc *deltaScratch) frontier(g graph.View, dT []int32, target, v int) {
	sc.epoch++
	sc.touched = sc.touched[:0]
	if v == target || (dT[v] >= 0 && dT[v] <= 1) {
		return // self-candidate or existing edge: nothing moves
	}
	sc.nd[v] = 1
	sc.mark[v] = sc.epoch
	sc.touched = append(sc.touched, int32(v)) //promolint:allow hotpath-alloc -- amortized: sc.touched reaches steady-state capacity and is length-reset between candidates
	q := append(sc.queue[:0], int32(v))       //promolint:allow hotpath-alloc -- amortized: sc.queue reaches steady-state capacity and is reused across candidates
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := sc.nd[u]
		for _, w := range g.Adjacency(int(u)) {
			cur := dT[w]
			if sc.mark[w] == sc.epoch {
				cur = sc.nd[w]
			}
			if cur >= 0 && cur <= du+1 {
				continue
			}
			if sc.mark[w] != sc.epoch {
				sc.mark[w] = sc.epoch
				sc.touched = append(sc.touched, w) //promolint:allow hotpath-alloc -- amortized: sc.touched reaches steady-state capacity and is length-reset between candidates
			}
			sc.nd[w] = du + 1
			q = append(q, w) //promolint:allow hotpath-alloc -- amortized: at most n enqueues into the reused scratch queue
		}
	}
	sc.queue = q[:0]
}

// deltaBatchSweep scores every candidate of a BFS-family measure
// through the affected frontier, fanned out on the strided schedule.
func (e *Engine) deltaBatchSweep(g graph.View, target int, cands []int, m Measure, out []float64) {
	base := e.deltaSweepBaseFor(g, target)
	n := g.N()
	needHisto := m.kind == kindEccentricity || m.kind == kindReciprocalEccentricity
	w := e.span(len(cands), n+g.M())
	e.forWorkers(w, func(worker int) {
		sc := newDeltaScratch(n)
		if needHisto {
			sc.histo = append([]int32(nil), base.histo...)
		}
		for i := worker; i < len(cands); i += w {
			sc.frontier(g, base.dist, target, cands[i])
			out[i] = sc.sweepScore(base, m)
		}
	})
	e.counters.deltaHits.Add(uint64(len(cands)))
}

// sweepScore turns the affected set of the last frontier call into the
// target's new score. Farness and eccentricity are patched in integer
// arithmetic (bitwise-exact); harmonic re-sums the patched distance
// vector in index order, reproducing the full sweep's floating-point
// sequence exactly.
//
//promolint:hotpath
func (sc *deltaScratch) sweepScore(base *deltaSweepBase, m Measure) float64 {
	dT := base.dist
	switch m.kind {
	case kindCloseness, kindFarness:
		far := base.far
		for _, u := range sc.touched {
			if old := dT[u]; old > 0 {
				far -= int64(old)
			}
			far += int64(sc.nd[u])
		}
		if m.kind == kindFarness {
			return float64(far)
		}
		if far > 0 {
			return 1 / float64(far)
		}
		return 0
	case kindHarmonic:
		var h float64
		for u, d := range dT {
			if sc.mark[u] == sc.epoch {
				d = sc.nd[u]
			}
			if d > 0 {
				h += 1 / float64(d)
			}
		}
		return h
	default: // kindEccentricity, kindReciprocalEccentricity
		maxNd := int32(0)
		for _, u := range sc.touched {
			if old := dT[u]; old >= 0 {
				sc.histo[old]--
			}
			sc.histo[sc.nd[u]]++
			if sc.nd[u] > maxNd {
				maxNd = sc.nd[u]
			}
		}
		ecc := base.ecc
		if maxNd > ecc {
			ecc = maxNd
		}
		for ecc > 0 && sc.histo[ecc] == 0 {
			ecc--
		}
		for _, u := range sc.touched { // revert for the next candidate
			sc.histo[sc.nd[u]]--
			if old := dT[u]; old >= 0 {
				sc.histo[old]++
			}
		}
		if m.kind == kindReciprocalEccentricity {
			return float64(ecc)
		}
		if ecc > 0 {
			return 1 / float64(ecc)
		}
		return 0
	}
}

// --- Betweenness delta scoring ---

// deltaBCBase is the once-per-snapshot base for betweenness delta
// scoring: the per-source dependencies of the target, the source set
// they were computed over, and the distance vector from the target that
// classifies candidate-affected sources.
type deltaBCBase struct {
	dist    []int32   // d(target, ·) on g
	sources []int     // all nodes, or the Brandes–Pich pivots
	deps    []float64 // deps[i] = δ_{sources[i]}(target) on g
	total   float64   // Σ deps in source order (the unscaled base score)
	scale   float64   // pivot scale n/k (1 when exact)
}

// deltaBCBaseFor resolves the betweenness base for (g, target) under
// the measure's pivot sampling (sample = 0 means exact; the pair
// counting convention does not enter — dependencies are stored in
// ordered-pair units and scaled at the end).
func (e *Engine) deltaBCBaseFor(g graph.View, target, sample int, seed int64) *deltaBCBase {
	key := fmt.Sprintf("delta-bc|t=%d|k=%d|seed=%d", target, sample, seed)
	return e.resolve(g, key, famDelta, func() any {
		return e.computeDeltaBCBase(g, target, sample, seed)
	}).(*deltaBCBase)
}

func (e *Engine) computeDeltaBCBase(g graph.View, target, sample int, seed int64) *deltaBCBase {
	n := g.N()
	base := &deltaBCBase{scale: 1}
	if sample > 0 {
		// One Perm draw from a fresh seeded rng — the same pivot set the
		// full sampled measure scores (rawBetweenness).
		base.sources = rand.New(rand.NewSource(seed)).Perm(n)[:sample]
		base.scale = float64(n) / float64(sample)
	} else {
		base.sources = make([]int, n)
		for i := range base.sources {
			base.sources[i] = i
		}
	}
	k := e.getKernel()
	dist, _, _ := k.BFS(g, target)
	base.dist = append([]int32(nil), dist...)
	e.putKernel(k)
	e.counters.bfsRuns.Add(1)

	base.deps = make([]float64, len(base.sources))
	w := e.span(len(base.sources), n+g.M())
	e.forWorkers(w, func(worker int) {
		kw := e.getKernel()
		defer e.putKernel(kw)
		runs := uint64(0)
		for i := worker; i < len(base.sources); i += w {
			base.deps[i] = kw.BrandesDep(g, base.sources[i], target, -1, -1)
			runs++
		}
		e.counters.brandes.Add(runs)
	})
	for _, d := range base.deps {
		base.total += d
	}
	return base
}

// deltaBatchBetweenness scores every candidate by restricted
// re-accumulation against a virtual edge, with the counted fallback to
// a full sweep when the affected-source set is too large.
func (e *Engine) deltaBatchBetweenness(g graph.View, target int, cands []int, m Measure, out []float64) {
	n := g.N()
	sample := m.sample
	if sample >= n {
		sample = 0 // exact fallback, mirroring rawBetweenness
	}
	base := e.deltaBCBaseFor(g, target, sample, m.seed)
	scale := base.scale
	if m.counting == centrality.PairsUnordered {
		scale /= 2
	}
	maxAff := int(e.deltaFrac * float64(len(base.sources)))
	w := e.span(len(cands), n+g.M())
	e.forWorkers(w, func(worker int) {
		k := e.getKernel()
		defer e.putKernel(k)
		var bfsRuns, brRuns, hits, falls uint64
		//promolint:hotpath
		for i := worker; i < len(cands); i += w {
			v := cands[i]
			if v == target || g.HasEdge(target, v) {
				out[i] = base.total * scale // no-op edge: the graph is unchanged
				hits++
				continue
			}
			dV, _, _ := k.BFS(g, v)
			bfsRuns++
			aff := 0
			for _, s := range base.sources {
				if base.dist[s] != dV[s] {
					aff++
				}
			}
			var sum float64
			if aff > maxAff {
				falls++
				for _, s := range base.sources {
					sum += k.BrandesDep(g, s, target, target, v)
					brRuns++
				}
			} else {
				hits++
				for idx, s := range base.sources {
					if base.dist[s] != dV[s] {
						sum += k.BrandesDep(g, s, target, target, v)
						brRuns++
					} else {
						sum += base.deps[idx]
					}
				}
			}
			out[i] = sum * scale
		}
		e.counters.bfsRuns.Add(bfsRuns)
		e.counters.brandes.Add(brRuns)
		e.counters.deltaHits.Add(hits)
		e.counters.deltaFallbacks.Add(falls)
	})
}

// --- Clone fallback for non-delta measures ---

// deltaBatchClone prices candidates for measures the delta scorer
// cannot patch incrementally (coreness, degree, Katz): each candidate
// scores a mutated private clone. Every candidate counts as a fallback.
func (e *Engine) deltaBatchClone(g graph.View, target int, cands []int, m Measure, out []float64) {
	w := e.span(len(cands), g.N()+g.M())
	e.forWorkers(w, func(worker int) {
		for i := worker; i < len(cands); i += w {
			h := graph.Materialize(g)
			if v := cands[i]; v != target {
				h.AddEdge(target, v)
			}
			var scores []float64
			switch m.kind {
			case kindCoreness:
				scores = centrality.CorenessFloat(h)
			case kindDegree:
				scores = centrality.Degree(h)
			case kindKatz:
				scores = centrality.KatzAuto(h)
			default:
				panic(fmt.Sprintf("engine: EvaluateEdgeBatch unsupported measure %s", m))
			}
			out[i] = scores[target]
		}
	})
	e.counters.deltaFallbacks.Add(uint64(len(cands)))
}
