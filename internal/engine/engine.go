// Package engine is the shared execution layer for centrality scoring —
// the hot path of both the paper's evaluation (Section VII recomputes
// four exact measures per strategy, size, and target) and the greedy
// baselines, whose candidate evaluation re-scores near-identical graphs
// hundreds of times per round.
//
// A CentralityEngine owns
//
//   - a persistent worker pool (goroutines live for the engine's
//     lifetime instead of being respawned per measure call),
//   - sync.Pool-backed BFS/Brandes scratch kernels
//     (centrality.Kernel), so repeated scoring allocates no traversal
//     state, and
//   - a memo table keyed by graph content, invalidated through the
//     version counter on graph.Graph: every mutation bumps the version,
//     so a stale snapshot can never be served, while re-scoring an
//     unchanged (or structurally restored, or cloned) graph is a cache
//     hit.
//
// Score families are shared: closeness, farness, harmonic, and both
// eccentricity variants all derive from one all-pairs BFS sweep, and
// both betweenness counting conventions derive from one Brandes
// accumulation — requesting any subset costs one computation.
//
// Determinism: per-source work is distributed on a fixed strided
// schedule and partial sums are merged in worker order, so identical
// (graph, measure, worker count) inputs produce bitwise-identical
// scores, across engine instances. This is a stronger contract than the
// direct centrality functions, whose racing batch scheduler may regroup
// floating-point sums between runs.
package engine

import (
	"container/list"
	"context"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"promonet/internal/centrality"
	"promonet/internal/graph"
	"promonet/internal/obs"
)

// Engine is a pooled, memoizing centrality scorer. Create one with New
// (or use the process-wide Default). All methods are safe for
// concurrent use; Close is the only exception and must not race with
// in-flight scoring.
type Engine struct {
	workers   int
	cacheCap  int
	hashCap   int
	deltaFrac float64 // betweenness delta fallback threshold; see WithDeltaFallbackFraction

	registry  *obs.Registry
	regPrefix string

	jobs    chan func()
	kernels sync.Pool

	mu      sync.Mutex
	entries map[contentKey]*entry
	lru     *list.List // contentKey values, front = most recent
	hashes  map[uint64]contentKey
	closed  bool

	counters counters
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithCacheSize bounds the memo table to n graph snapshots (LRU
// eviction). n = 0 disables memoization entirely — every request is
// computed, but still through the pooled kernels and persistent
// workers. The default is 256 snapshots.
func WithCacheSize(n int) Option {
	return func(e *Engine) { e.cacheCap = n }
}

// WithRegistry backs the engine's hit/miss/eviction and traversal
// counters by reg under "<prefix>.<name>" metric names, so they appear
// in /debug/vars (and any other consumer of the registry) without
// changing the Stats API. Without this option the counters are private
// to the engine. The Default engine registers into obs.Default() under
// the "engine" prefix.
func WithRegistry(reg *obs.Registry, prefix string) Option {
	return func(e *Engine) { e.registry, e.regPrefix = reg, prefix }
}

// New returns an engine with the given number of pool workers
// (workers <= 0 means GOMAXPROCS). The goroutines are spawned up front
// and live until Close; a single-worker engine runs everything inline
// and spawns none.
func New(workers int, opts ...Option) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: workers, cacheCap: 256, deltaFrac: defaultDeltaFallbackFraction}
	for _, o := range opts {
		o(e)
	}
	e.counters = newCounters(e.registry, e.regPrefix)
	e.hashCap = 4*e.cacheCap + 16
	e.entries = make(map[contentKey]*entry)
	e.lru = list.New()
	e.hashes = make(map[uint64]contentKey)
	if e.workers > 1 {
		e.jobs = make(chan func())
		for i := 0; i < e.workers; i++ {
			go func() {
				for f := range e.jobs {
					f()
				}
			}()
		}
	}
	return e
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the process-wide shared engine (GOMAXPROCS workers,
// default cache size), creating it on first use. It is never closed;
// the measure implementations in internal/core and the baselines in
// internal/greedy score through it.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(0, WithRegistry(obs.Default(), "engine")) })
	return defaultEngine
}

// Workers returns the engine's worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Close stops the worker pool. Scoring through a closed multi-worker
// engine panics; Close is idempotent. The Default engine is never
// closed.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	if e.jobs != nil {
		close(e.jobs)
	}
}

// --- Content addressing ---

// contentKey identifies a graph snapshot by structure: node and edge
// counts plus two independent 64-bit digests of the sorted adjacency.
// Collisions require simultaneous agreement of n, m, and both digests.
type contentKey struct {
	n, m   int
	h1, h2 uint64
}

// hashGraph digests g's adjacency structure. O(n + m).
func hashGraph(g graph.View) contentKey {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
		mixMult   = 0x9E3779B97F4A7C15
		mixAdd    = 0x517cc1b727220a95
	)
	h1, h2 := uint64(fnvOffset), uint64(88172645463325252)
	n := g.N()
	for v := 0; v < n; v++ {
		row := g.Adjacency(v)
		h1 = (h1 ^ uint64(len(row)+1)) * fnvPrime
		h2 = h2*mixMult + uint64(len(row)+1)
		for _, u := range row {
			h1 = (h1 ^ uint64(u)) * fnvPrime
			h2 = h2*mixMult + uint64(u) + mixAdd
		}
	}
	return contentKey{n: n, m: g.M(), h1: h1, h2: h2}
}

// contentKeyOf returns g's snapshot key, memoizing the digest per graph
// version so unchanged graphs are hashed once. Version 0 (a zero-value
// graph that was never mutated) is not memoized — two distinct graphs
// may share it.
func (e *Engine) contentKeyOf(g graph.View) contentKey {
	v := g.Version()
	if v != 0 {
		e.mu.Lock()
		ck, ok := e.hashes[v]
		e.mu.Unlock()
		if ok {
			return ck
		}
	}
	ck := hashGraph(g)
	if v != 0 {
		e.mu.Lock()
		if len(e.hashes) >= e.hashCap {
			// Rare, cheap, and deterministic: drop the whole digest
			// cache rather than track per-digest recency.
			clear(e.hashes)
		}
		e.hashes[v] = ck
		e.mu.Unlock()
	}
	return ck
}

// --- Memo table ---

// entry holds all memoized results for one graph snapshot.
type entry struct {
	memos map[string]*memo
	el    *list.Element
}

// memo is one (snapshot, key) result slot. The sync.Once gives
// duplicate-suppression: concurrent requests for the same result block
// on one computation instead of racing.
type memo struct {
	once sync.Once
	val  any
}

// memoFor returns the memo slot for (g's content, key), creating it and
// applying LRU eviction as needed. With caching disabled it returns a
// fresh slot, so the caller always computes.
func (e *Engine) memoFor(g graph.View, key string) *memo {
	if e.cacheCap <= 0 {
		return &memo{}
	}
	ck := e.contentKeyOf(g)
	e.mu.Lock()
	defer e.mu.Unlock()
	en := e.entries[ck]
	if en == nil {
		en = &entry{memos: make(map[string]*memo), el: e.lru.PushFront(ck)}
		e.entries[ck] = en
		for len(e.entries) > e.cacheCap {
			back := e.lru.Back()
			delete(e.entries, back.Value.(contentKey))
			e.lru.Remove(back)
			e.counters.evictions.Add(1)
		}
	} else {
		e.lru.MoveToFront(en.el)
	}
	mm := en.memos[key]
	if mm == nil {
		mm = &memo{}
		en.memos[key] = mm
	}
	return mm
}

// resolve returns the memoized value for (g, key), computing it at most
// once per snapshot. A cache miss is wrapped in an
// "engine/compute/<family>" tracing span (annotated with the graph
// size) and recorded into the lock-free per-family stats slot; the
// span name is precomputed per family, so with tracing disabled the
// instrumentation costs one atomic load and zero allocations.
func (e *Engine) resolve(g graph.View, key string, fam family, compute func() any) any {
	mm := e.memoFor(g, key)
	ran := false
	mm.once.Do(func() {
		ran = true
		_, sp := obs.Start(context.Background(), familySpanNames[fam])
		sp.Int("n", g.N())
		sp.Int("m", g.M())
		sp.Str("key", key)
		t0 := time.Now()
		mm.val = compute()
		e.counters.noteCompute(fam, time.Since(t0))
		sp.End()
	})
	if !ran {
		e.counters.hits.Add(1)
	}
	return mm.val
}

// --- Worker pool ---

// forWorkers runs fn(0..w-1) on the pool and waits for all of them; a
// single span runs inline on the calling goroutine.
func (e *Engine) forWorkers(w int, fn func(worker int)) {
	if w <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		i := i
		e.jobs <- func() {
			defer wg.Done()
			fn(i)
		}
	}
	wg.Wait()
}

// span picks the parallel width for `sources` units of ~`unit` work
// each: never more than the pool, never more than the sources, and wide
// only when there is enough work to amortize the handoff — tiny graphs
// run inline, where the pooled kernel makes the sequential path fast.
func (e *Engine) span(sources, unit int) int {
	w := e.workers
	if w > sources {
		w = sources
	}
	if w <= 1 {
		return 1
	}
	const minWorkPerWorker = 1 << 15
	if maxW := sources*unit/minWorkPerWorker + 1; w > maxW {
		w = maxW
	}
	return w
}

// getKernel takes a scratch kernel from the pool.
func (e *Engine) getKernel() *centrality.Kernel {
	if k, ok := e.kernels.Get().(*centrality.Kernel); ok {
		return k
	}
	return centrality.NewKernel()
}

// putKernel returns a kernel to the pool.
func (e *Engine) putKernel(k *centrality.Kernel) { e.kernels.Put(k) }

// --- Compute families ---

// sweepResult is the shared product of one all-pairs BFS sweep.
type sweepResult struct {
	far  []int64   // Σ_u dist(v, u), unreachable pairs contribute 0
	harm []float64 // Σ_{u≠v} 1/dist(v, u)
	ecc  []int32   // max_u dist(v, u) within v's component
}

// sweep returns (computing at most once per snapshot) the distance
// family for g.
func (e *Engine) sweep(g graph.View) *sweepResult {
	return e.resolve(g, "distance-sweep", famSweep, func() any {
		return e.computeSweep(g)
	}).(*sweepResult)
}

func (e *Engine) computeSweep(g graph.View) *sweepResult {
	n := g.N()
	sw := &sweepResult{far: make([]int64, n), harm: make([]float64, n), ecc: make([]int32, n)}
	if n == 0 {
		return sw
	}
	w := e.span(n, n+g.M())
	e.forWorkers(w, func(worker int) {
		k := e.getKernel()
		defer e.putKernel(k)
		runs := uint64(0)
		//promolint:hotpath
		for s := worker; s < n; s += w {
			dist, _, eccS := k.BFS(g, s)
			var far int64
			var h float64
			for _, d := range dist {
				if d > 0 {
					far += int64(d)
					h += 1 / float64(d)
				}
			}
			sw.far[s], sw.harm[s], sw.ecc[s] = far, h, eccS
			runs++
		}
		e.counters.bfsRuns.Add(runs)
	})
	return sw
}

// rawBetweenness returns the cached ordered-pairs dependency sums over
// the measure's source set, plus the pivot scale (n/k for sampled, 1
// for exact) still to be applied. The returned slice is cache-owned.
func (e *Engine) rawBetweenness(g graph.View, m Measure) ([]float64, float64) {
	n := g.N()
	sample := m.sample
	if sample >= n {
		sample = 0 // exact fallback, mirroring centrality.BetweennessSampled
	}
	key := "bc-raw"
	scale := 1.0
	if sample > 0 {
		key = Measure{kind: kindBetweenness, sample: sample, seed: m.seed}.Key()
		scale = float64(n) / float64(sample)
	}
	raw := e.resolve(g, key, famBetweenness, func() any {
		var sources []int
		if sample > 0 {
			// One Perm draw from a fresh seeded rng: the documented rng
			// contract of centrality.BetweennessSampled.
			sources = rand.New(rand.NewSource(m.seed)).Perm(n)[:sample]
		} else {
			sources = make([]int, n)
			for i := range sources {
				sources[i] = i
			}
		}
		return e.brandesAccumulate(g, sources)
	}).([]float64)
	return raw, scale
}

// brandesAccumulate sums ordered-pair dependencies over the given
// sources, parallelized on a deterministic strided schedule: worker w
// takes sources w, w+span, w+2·span, ... and partials merge in worker
// order, so the floating-point result depends only on (graph, sources,
// span) — not on goroutine scheduling.
func (e *Engine) brandesAccumulate(g graph.View, sources []int) []float64 {
	n := g.N()
	out := make([]float64, n)
	if n == 0 || len(sources) == 0 {
		return out
	}
	w := e.span(len(sources), n+g.M())
	kernels := make([]*centrality.Kernel, w)
	accs := make([][]float64, w)
	e.forWorkers(w, func(worker int) {
		k := e.getKernel()
		kernels[worker] = k
		acc := k.Acc(n)
		accs[worker] = acc
		runs := uint64(0)
		//promolint:hotpath
		for i := worker; i < len(sources); i += w {
			k.Brandes(g, sources[i], acc)
			runs++
		}
		e.counters.brandes.Add(runs)
	})
	for _, acc := range accs {
		for v := range out {
			out[v] += acc[v]
		}
	}
	for _, k := range kernels {
		e.putKernel(k)
	}
	return out
}

// --- Public scoring API ---

// Scores returns C(v) for every node of g under measure m, as a freshly
// allocated slice the caller owns. Results are memoized per graph
// snapshot; see the package comment for the invalidation contract.
func (e *Engine) Scores(g graph.View, m Measure) []float64 {
	n := g.N()
	out := make([]float64, n)
	switch m.kind {
	case kindBetweenness:
		raw, scale := e.rawBetweenness(g, m)
		if m.counting == centrality.PairsUnordered {
			scale /= 2
		}
		for v, x := range raw {
			out[v] = x * scale
		}
	case kindCloseness:
		for v, f := range e.sweep(g).far {
			if f > 0 {
				out[v] = 1 / float64(f)
			}
		}
	case kindFarness:
		for v, f := range e.sweep(g).far {
			out[v] = float64(f)
		}
	case kindEccentricity:
		for v, x := range e.sweep(g).ecc {
			if x > 0 {
				out[v] = 1 / float64(x)
			}
		}
	case kindReciprocalEccentricity:
		for v, x := range e.sweep(g).ecc {
			out[v] = float64(x)
		}
	case kindHarmonic:
		copy(out, e.sweep(g).harm)
	case kindCoreness:
		cached := e.resolve(g, "coreness", famCoreness, func() any {
			return centrality.CorenessFloat(g)
		}).([]float64)
		copy(out, cached)
	case kindDegree:
		cached := e.resolve(g, "degree", famDegree, func() any {
			return centrality.Degree(g)
		}).([]float64)
		copy(out, cached)
	case kindKatz:
		cached := e.resolve(g, "katz", famKatz, func() any {
			return centrality.KatzAuto(g)
		}).([]float64)
		copy(out, cached)
	}
	return out
}

// ScoresFor scores g under every measure in one batch. Measures from
// the same compute family (e.g. closeness and eccentricity) share a
// single underlying computation.
func (e *Engine) ScoresFor(g graph.View, measures ...Measure) [][]float64 {
	out := make([][]float64, len(measures))
	for i, m := range measures {
		out[i] = e.Scores(g, m)
	}
	return out
}

// RanksFor returns the competition ranking (Section III) of every node
// under each measure. Rankings are memoized alongside the scores.
func (e *Engine) RanksFor(g graph.View, measures ...Measure) [][]int {
	out := make([][]int, len(measures))
	for i, m := range measures {
		cached := e.resolve(g, "ranks|"+m.Key(), famRanks, func() any {
			return centrality.Ranks(e.Scores(g, m))
		}).([]int)
		out[i] = append([]int(nil), cached...)
	}
	return out
}

// FarnessInt64 returns the exact integer farness vector Σ_u dist(v, u)
// — the bookkeeping unit of the greedy closeness baseline — from the
// shared distance sweep.
func (e *Engine) FarnessInt64(g graph.View) []int64 {
	return append([]int64(nil), e.sweep(g).far...)
}

// CorenessInt returns the integer core numbers (the unit the greedy
// coreness baseline compares in), sharing the memo slot of the float
// coreness measure. Core numbers are exact small integers, so the
// float64 round trip is lossless.
func (e *Engine) CorenessInt(g graph.View) []int {
	cached := e.resolve(g, "coreness", famCoreness, func() any {
		return centrality.CorenessFloat(g)
	}).([]float64)
	out := make([]int, len(cached))
	for v, x := range cached {
		out[v] = int(x)
	}
	return out
}

// AverageClustering returns the mean local clustering coefficient,
// memoizing the per-node vector (the detectability report evaluates it
// on both snapshots of every comparison).
func (e *Engine) AverageClustering(g graph.View) float64 {
	cl := e.resolve(g, "clustering", famClustering, func() any {
		return centrality.LocalClustering(g)
	}).([]float64)
	if len(cl) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range cl {
		sum += c
	}
	return sum / float64(len(cl))
}
