package engine

import (
	"math/rand"
	"sync"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/gen"
	"promonet/internal/graph"
)

// Invalidation: the engine may serve a memoized vector only while the
// graph's structure is unchanged. Every mutation (AddEdge, RemoveEdge,
// AddNode) bumps the graph's version and changes its content digest, so
// a stale snapshot must never be served. These tests run in CI under
// -race and under -tags promodebug.

// assertFresh scores g through e and compares against a direct
// recomputation, failing on any stale value.
func assertFresh(t *testing.T, e *Engine, g *graph.Graph, context string) {
	t.Helper()
	got := e.Scores(g, Farness())
	want := centrality.Farness(g)
	for v := range want {
		if got[v] != float64(want[v]) {
			t.Fatalf("%s: stale farness at node %d: engine %v, direct %d", context, v, got[v], want[v])
		}
	}
	gotBC := e.Scores(g, Betweenness(centrality.PairsUnordered))
	wantBC := centrality.Betweenness(g, centrality.PairsUnordered)
	if !floatsEqual(gotBC, wantBC, 1e-9) {
		t.Fatalf("%s: stale betweenness served", context)
	}
}

func TestMutationInvalidatesMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := gen.ErdosRenyi(rng, 40, 90)
	e := New(4)
	defer e.Close()

	assertFresh(t, e, g, "initial")

	// AddEdge between existing non-neighbors.
	added := false
	for u := 0; u < g.N() && !added; u++ {
		for v := u + 1; v < g.N(); v++ {
			if !g.HasEdge(u, v) {
				g.AddEdge(u, v)
				added = true
				break
			}
		}
	}
	if !added {
		t.Fatal("no non-edge found")
	}
	assertFresh(t, e, g, "after AddEdge")

	// RemoveEdge.
	edge := g.EdgeList()[0]
	g.RemoveEdge(edge[0], edge[1])
	assertFresh(t, e, g, "after RemoveEdge")

	// AddNode plus an attaching edge.
	w := g.AddNode()
	assertFresh(t, e, g, "after AddNode")
	g.AddEdge(w, 0)
	assertFresh(t, e, g, "after attaching new node")
}

// TestNoOpMutationKeepsCache: AddEdge on an existing edge and
// RemoveEdge on a non-edge change nothing; the version stays put and
// the memo keeps serving.
func TestNoOpMutationKeepsCache(t *testing.T) {
	g := gen.Clique(10)
	e := New(2)
	defer e.Close()
	_ = e.Scores(g, Farness())
	v0 := g.Version()
	if g.AddEdge(0, 1) {
		t.Fatal("duplicate AddEdge reported a mutation")
	}
	if g.RemoveEdge(0, g.N()) || g.RemoveEdge(0, 0) {
		t.Fatal("invalid RemoveEdge reported a mutation")
	}
	if g.Version() != v0 {
		t.Fatalf("no-op mutations bumped version %d -> %d", v0, g.Version())
	}
	before := e.Stats().Hits
	_ = e.Scores(g, Farness())
	if e.Stats().Hits <= before {
		t.Fatal("no-op mutation evicted a valid memo")
	}
}

// TestMutateAndRevertHitsContentCache: the greedy baselines score
// mutate-evaluate-revert variants in a loop; after the revert, the
// version differs but the structure is restored, so the
// content-addressed key must hit — with correct values.
func TestMutateAndRevertHitsContentCache(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	g := gen.BarabasiAlbert(rng, 50, 3)
	e := New(4)
	defer e.Close()

	base := e.Scores(g, Betweenness(centrality.PairsUnordered))
	v0 := g.Version()

	u, w := -1, -1
findNonEdge:
	for a := 0; a < g.N(); a++ {
		for b := a + 1; b < g.N(); b++ {
			if !g.HasEdge(a, b) {
				u, w = a, b
				break findNonEdge
			}
		}
	}
	if u < 0 {
		t.Fatal("no non-edge found")
	}
	g.AddEdge(u, w)
	mutated := e.Scores(g, Betweenness(centrality.PairsUnordered))
	g.RemoveEdge(u, w)

	if g.Version() == v0 {
		t.Fatal("revert restored the old version — versions must be unique")
	}
	hitsBefore := e.Stats().Hits
	reverted := e.Scores(g, Betweenness(centrality.PairsUnordered))
	if e.Stats().Hits <= hitsBefore {
		t.Fatal("reverted structure missed the content-addressed cache")
	}
	if !floatsEqual(base, reverted, 0) {
		t.Fatal("reverted graph served the mutated snapshot's scores")
	}
	if floatsEqual(base, mutated, 1e-12) {
		t.Fatal("sanity: mutation should have changed betweenness")
	}
}

// TestConcurrentScoring hammers one engine from many goroutines over
// distinct graphs plus a shared read-only one — the -race CI lane
// checks the pool, the memo table, and the counters.
func TestConcurrentScoring(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	shared := gen.WattsStrogatz(rng, 60, 4, 0.1)
	priv := make([]*graph.Graph, 8)
	for i := range priv {
		priv[i] = gen.ErdosRenyi(rand.New(rand.NewSource(int64(100+i))), 40, 80)
	}
	e := New(4)
	defer e.Close()
	wantShared := centrality.Farness(shared)

	var wg sync.WaitGroup
	wg.Add(len(priv))
	for i := range priv {
		go func(i int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				got := e.Scores(shared, Farness())
				for v := range wantShared {
					if got[v] != float64(wantShared[v]) {
						t.Errorf("goroutine %d: shared farness corrupted at %d", i, v)
						return
					}
				}
				mine := e.Scores(priv[i], Betweenness(centrality.PairsUnordered))
				want := centrality.Betweenness(priv[i], centrality.PairsUnordered)
				if !floatsEqual(mine, want, 1e-9) {
					t.Errorf("goroutine %d: private betweenness wrong", i)
					return
				}
				priv[i].AddNode() // mutate between rounds: must invalidate
			}
		}(i)
	}
	wg.Wait()
}

// TestVersionSemantics pins the graph-side contract the engine builds
// on: fresh versions on every successful mutation, global uniqueness,
// clone inheritance.
func TestVersionSemantics(t *testing.T) {
	a := graph.NewWithNodes(3)
	b := graph.NewWithNodes(3)
	if a.Version() == 0 || b.Version() == 0 {
		t.Fatal("constructed graphs must have nonzero versions")
	}
	if a.Version() == b.Version() {
		t.Fatal("two graphs share a version")
	}
	v := a.Version()
	if !a.AddEdge(0, 1) || a.Version() == v {
		t.Fatal("AddEdge did not bump version")
	}
	v = a.Version()
	cl := a.Clone()
	if cl.Version() != v {
		t.Fatal("clone must inherit the source version")
	}
	cl.AddEdge(1, 2)
	if cl.Version() == v || a.Version() != v {
		t.Fatal("clone mutation must diverge without touching the source")
	}
	if !a.RemoveEdge(0, 1) || a.Version() == v {
		t.Fatal("RemoveEdge did not bump version")
	}
}
