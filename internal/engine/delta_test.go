package engine

import (
	"math"
	"math/rand"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/datasets"
	"promonet/internal/gen"
	"promonet/internal/graph"
)

// Differential tests for the delta scorer: EvaluateEdgeBatch against
// the ground truth of physically inserting each candidate edge into a
// clone and running the full scoring path. BFS-family measures must
// agree bitwise; betweenness within floating-point accumulation order.

// deltaMeasuresBitwise are the measures whose delta path promises
// bitwise equality with the full recompute.
var deltaMeasuresBitwise = []Measure{
	Closeness(), Farness(), Harmonic(), Eccentricity(), ReciprocalEccentricity(),
}

// deltaHosts builds the graphs the delta differential suite runs on:
// random, scale-free, disconnected (two components plus isolated
// nodes), and the paper's Fig. 1 fixture.
func deltaHosts() map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(7))
	disc := gen.ErdosRenyi(rng, 30, 60)
	// Attach a second component (a path) and two isolated nodes.
	base := disc.AddNodes(8)
	for i := 0; i < 7; i++ {
		disc.AddEdge(base+i, base+i+1)
	}
	disc.AddNodes(2)
	return map[string]*graph.Graph{
		"er":           gen.ErdosRenyi(rng, 40, 90),
		"ba":           gen.BarabasiAlbert(rng, 40, 3),
		"disconnected": disc,
		"fig1":         datasets.Fig1(),
	}
}

// fullEdgeScore is the ground truth for one candidate: clone, insert,
// score the full measure, read the target.
func fullEdgeScore(t *testing.T, e *Engine, g *graph.Graph, target, v int, m Measure) float64 {
	t.Helper()
	h := g.Clone()
	if v != target {
		h.AddEdge(target, v)
	}
	return e.Scores(h, m)[target]
}

// allCandidates lists every node except the target (neighbors and
// non-neighbors alike: adjacent candidates must score the unchanged
// graph, and including them exercises that path).
func allCandidates(g *graph.Graph, target int) []int {
	var cands []int
	for v := 0; v < g.N(); v++ {
		if v != target {
			cands = append(cands, v)
		}
	}
	return cands
}

func TestDeltaBatchMatchesFullRecompute(t *testing.T) {
	for name, g := range deltaHosts() {
		g := g
		t.Run(name, func(t *testing.T) {
			e := New(4)
			defer e.Close()
			for _, target := range []int{0, g.N() / 2, g.N() - 1} {
				cands := allCandidates(g, target)
				for _, m := range deltaMeasuresBitwise {
					got := e.EvaluateEdgeBatch(g, target, cands, m)
					for i, v := range cands {
						want := fullEdgeScore(t, e, g, target, v, m)
						if got[i] != want {
							t.Fatalf("%s target %d cand %d: delta %v, full %v (must be bitwise equal)",
								m, target, v, got[i], want)
						}
					}
				}
				for _, m := range []Measure{
					Betweenness(centrality.PairsOrdered),
					Betweenness(centrality.PairsUnordered),
				} {
					got := e.EvaluateEdgeBatch(g, target, cands, m)
					for i, v := range cands {
						want := fullEdgeScore(t, e, g, target, v, m)
						if !closeEnough(got[i], want) {
							t.Fatalf("%s target %d cand %d: delta %v, full %v",
								m, target, v, got[i], want)
						}
					}
				}
			}
		})
	}
}

// closeEnough compares betweenness values within 1e-9 relative error —
// the delta path recomputes affected sources against a virtual edge, so
// only float accumulation order can differ from the full path.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// TestDeltaBatchNastyCases pins the three structurally hardest
// candidate shapes against full recomputes for all four paper measures.
func TestDeltaBatchNastyCases(t *testing.T) {
	allMeasures := append(append([]Measure(nil), deltaMeasuresBitwise...),
		Betweenness(centrality.PairsOrdered))

	cases := map[string]struct {
		build  func() *graph.Graph
		target int
		cand   int
	}{
		// The candidate edge merges the target's component with a second
		// one: every node of the far component goes from unreachable to
		// reachable.
		"component-merge": {
			build: func() *graph.Graph {
				g := gen.Path(5)
				first := g.AddNodes(5)
				for i := 0; i < 4; i++ {
					g.AddEdge(first+i, first+i+1)
				}
				return g
			},
			target: 0,
			cand:   7,
		},
		// A long path with a shortcut from one end to the other: the
		// new edge re-parents the whole far half of the BFS tree.
		"shortcut-reparent": {
			build:  func() *graph.Graph { return gen.Path(10) },
			target: 0,
			cand:   9,
		},
		// The target is an isolated node; the candidate edge is its
		// first edge ever (the base BFS sees a singleton component).
		"singleton-target": {
			build: func() *graph.Graph {
				g := gen.Cycle(6)
				g.AddNodes(1)
				return g
			},
			target: 6,
			cand:   2,
		},
	}
	for name, tc := range cases {
		tc := tc
		t.Run(name, func(t *testing.T) {
			g := tc.build()
			e := New(2)
			defer e.Close()
			for _, m := range allMeasures {
				got := e.EvaluateEdgeBatch(g, tc.target, []int{tc.cand}, m)
				want := fullEdgeScore(t, e, g, tc.target, tc.cand, m)
				bitwise := m.kind != kindBetweenness
				if (bitwise && got[0] != want) || (!bitwise && !closeEnough(got[0], want)) {
					t.Fatalf("%s: delta %v, full %v", m, got[0], want)
				}
			}
		})
	}
}

// TestDeltaBatchDeterministicAcrossWorkers checks the strided-schedule
// contract: identical inputs produce bitwise-identical batches no
// matter the pool size, betweenness included (each candidate is priced
// sequentially by exactly one worker).
func TestDeltaBatchDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.BarabasiAlbert(rng, 60, 3)
	target := 5
	cands := allCandidates(g, target)
	measures := append(append([]Measure(nil), deltaMeasuresBitwise...),
		Betweenness(centrality.PairsUnordered),
		BetweennessSampled(centrality.PairsOrdered, 20, 42),
	)
	var ref [][]float64
	for _, w := range []int{1, 2, 8} {
		e := New(w)
		got := make([][]float64, len(measures))
		for i, m := range measures {
			got[i] = e.EvaluateEdgeBatch(g, target, cands, m)
		}
		e.Close()
		if ref == nil {
			ref = got
			continue
		}
		for i := range measures {
			for j := range got[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("workers=%d measure %s cand %d: %v != %v (1-worker ref)",
						w, measures[i], cands[j], got[i][j], ref[i][j])
				}
			}
		}
	}
}

// TestDeltaBatchSampledBetweenness checks the pivot-sampled measure
// end to end: the delta base must draw the same pivot set as the full
// sampled computation.
func TestDeltaBatchSampledBetweenness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.ErdosRenyi(rng, 50, 120)
	e := New(4)
	defer e.Close()
	target := 7
	cands := allCandidates(g, target)
	for _, m := range []Measure{
		BetweennessSampled(centrality.PairsUnordered, 15, 99),
		BetweennessSampled(centrality.PairsOrdered, 200, 99), // k >= n: exact fallback
	} {
		got := e.EvaluateEdgeBatch(g, target, cands, m)
		for i, v := range cands {
			want := fullEdgeScore(t, e, g, target, v, m)
			if !closeEnough(got[i], want) {
				t.Fatalf("%s cand %d: delta %v, full %v", m, v, got[i], want)
			}
		}
	}
}

// TestDeltaFallbackForced drives every betweenness candidate down the
// full-sweep fallback (fraction 0) and checks both correctness and the
// fallback counter; the default engine must instead count delta hits.
func TestDeltaFallbackForced(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := gen.ErdosRenyi(rng, 40, 100)
	target := 3
	cands := allCandidates(g, target)
	m := Betweenness(centrality.PairsOrdered)

	forced := New(2, WithDeltaFallbackFraction(0))
	defer forced.Close()
	normal := New(2)
	defer normal.Close()

	got := forced.EvaluateEdgeBatch(g, target, cands, m)
	ref := normal.EvaluateEdgeBatch(g, target, cands, m)
	for i := range cands {
		if got[i] != ref[i] {
			t.Fatalf("cand %d: forced-fallback %v != restricted %v", cands[i], got[i], ref[i])
		}
	}
	fs := forced.Stats()
	if fs.DeltaFallbacks == 0 {
		t.Fatalf("forced engine recorded no delta fallbacks: %+v", fs)
	}
	ns := normal.Stats()
	if ns.DeltaHits == 0 {
		t.Fatalf("normal engine recorded no delta hits: %+v", ns)
	}
	if ns.DeltaFallbacks >= uint64(len(cands)) {
		t.Fatalf("normal engine fell back on every candidate (%d/%d)", ns.DeltaFallbacks, len(cands))
	}
}

// TestDeltaBatchCloneFallback covers measures outside the delta
// scorer's reach: they must still return correct per-candidate scores
// and count as fallbacks.
func TestDeltaBatchCloneFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := gen.ErdosRenyi(rng, 30, 70)
	e := New(2)
	defer e.Close()
	target := 4
	cands := allCandidates(g, target)
	for _, m := range []Measure{Coreness(), Degree(), Katz()} {
		got := e.EvaluateEdgeBatch(g, target, cands, m)
		for i, v := range cands {
			want := fullEdgeScore(t, e, g, target, v, m)
			if got[i] != want {
				t.Fatalf("%s cand %d: batch %v, full %v", m, v, got[i], want)
			}
		}
	}
	if s := e.Stats(); s.DeltaFallbacks == 0 {
		t.Fatalf("clone fallback not counted: %+v", s)
	}
}

// TestDeltaBatchNoOpCandidates pins the no-op semantics: the target
// itself and existing neighbors score the unchanged graph.
func TestDeltaBatchNoOpCandidates(t *testing.T) {
	g := gen.Cycle(8)
	e := New(1)
	defer e.Close()
	target := 0
	cands := []int{0, 1, 7, 4} // self, both neighbors, one real candidate
	for _, m := range []Measure{Closeness(), Betweenness(centrality.PairsOrdered)} {
		got := e.EvaluateEdgeBatch(g, target, cands, m)
		unchanged := e.Scores(g, m)[target]
		for i, v := range cands[:3] {
			if got[i] != unchanged {
				t.Fatalf("%s no-op cand %d: %v, want unchanged score %v", m, v, got[i], unchanged)
			}
		}
		want := fullEdgeScore(t, e, g, target, 4, m)
		ok := got[3] == want
		if m.kind == kindBetweenness {
			ok = closeEnough(got[3], want)
		}
		if !ok {
			t.Fatalf("%s real cand 4: %v, want %v", m, got[3], want)
		}
	}
}

// TestDeltaBatchRepeatedOnSnapshot checks base-structure memoization:
// a second batch on the unchanged graph must not recompute the base
// (misses stay flat) and must return identical results.
func TestDeltaBatchRepeatedOnSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.ErdosRenyi(rng, 40, 90)
	e := New(2)
	defer e.Close()
	target := 2
	cands := allCandidates(g, target)
	m := Farness()
	first := e.EvaluateEdgeBatch(g, target, cands, m)
	misses := e.Stats().Misses
	second := e.EvaluateEdgeBatch(g, target, cands, m)
	if e.Stats().Misses != misses {
		t.Fatalf("second batch recomputed the base: misses %d -> %d", misses, e.Stats().Misses)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cand %d: %v then %v on unchanged graph", cands[i], first[i], second[i])
		}
	}
}
