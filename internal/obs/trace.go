package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Trace export serializes recorded spans to the Chrome trace_event JSON
// format (the "JSON Array Format" with a top-level object), which
// Perfetto and chrome://tracing load directly. Every span becomes one
// "X" (complete) event: ts/dur are microseconds as the format requires,
// the goroutine id is the tid so concurrent spans land on separate
// tracks, and the span's identity (exact nanosecond interval, span /
// parent / root IDs, pre-rendered attributes) rides in args, which the
// viewers display on click and cmd/promotrace consumes for exact
// arithmetic. DESIGN.md §14 documents the mapping.

// tracePid is the constant pid of every exported event — one process,
// one trace.
const tracePid = 1

// TraceFile is the top-level trace_event JSON object.
type TraceFile struct {
	// DisplayTimeUnit is the viewer's display granularity ("ns").
	DisplayTimeUnit string `json:"displayTimeUnit"`
	// TraceEvents holds the events, one "M" process-name record
	// followed by one "X" event per span in (start, id) order.
	TraceEvents []TraceEvent `json:"traceEvents"`
}

// TraceEvent is one trace_event record.
type TraceEvent struct {
	// Name is the span name ("process_name" for the metadata event).
	Name string `json:"name"`
	// Cat is the event category ("span" for exported spans).
	Cat string `json:"cat,omitempty"`
	// Ph is the event phase: "X" (complete) or "M" (metadata).
	Ph string `json:"ph"`
	// Ts is the start timestamp in microseconds since the Unix epoch;
	// Dur the duration in microseconds. Microseconds are the format's
	// unit — exact nanoseconds are in Args.
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`
	// Pid and Tid place the event on a track: pid is always tracePid,
	// tid is the goroutine id the span started on.
	Pid int64 `json:"pid"`
	Tid int64 `json:"tid"`
	// Args carries the span's exact identity and attributes.
	Args *TraceArgs `json:"args,omitempty"`
}

// TraceArgs is the args payload of an exported event. For "X" events
// the nanosecond fields are exact (the float ts/dur are lossy above
// ~2^53 ns); "M" events carry only Label.
type TraceArgs struct {
	// SpanID, ParentID, and RootID reproduce the span's tree position;
	// ParentID is 0 for roots.
	SpanID   uint64 `json:"span_id,omitempty"`
	ParentID uint64 `json:"parent_id,omitempty"`
	RootID   uint64 `json:"root_id,omitempty"`
	// StartNs is the exact start in nanoseconds since the Unix epoch;
	// DurNs the exact duration in nanoseconds.
	StartNs int64 `json:"start_ns,omitempty"`
	DurNs   int64 `json:"dur_ns,omitempty"`
	// Goroutine is the goroutine id (also the event's tid).
	Goroutine uint64 `json:"goroutine,omitempty"`
	// Attrs are the span's attributes. Insertion order is lost and a
	// repeated key keeps its last value (JSON object semantics).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Label is the value of an "M" metadata event (the process name).
	Label string `json:"name,omitempty"`
}

// BuildTrace assembles the trace_event file for a set of span records,
// sorted by (start, span ID) for deterministic output.
func BuildTrace(records []*SpanRecord) *TraceFile {
	events := make([]TraceEvent, 0, len(records)+1)
	events = append(events, TraceEvent{
		Name: "process_name",
		Ph:   "M",
		Pid:  tracePid,
		Args: &TraceArgs{Label: "promonet"},
	})
	sorted := make([]*SpanRecord, len(records))
	copy(sorted, records)
	sort.Slice(sorted, func(i, j int) bool {
		if !sorted[i].Start.Equal(sorted[j].Start) {
			return sorted[i].Start.Before(sorted[j].Start)
		}
		return sorted[i].ID < sorted[j].ID
	})
	for _, sr := range sorted {
		startNs := sr.Start.UnixNano()
		args := &TraceArgs{
			SpanID:    sr.ID,
			ParentID:  sr.ParentID,
			RootID:    sr.RootID,
			StartNs:   startNs,
			DurNs:     int64(sr.Duration),
			Goroutine: sr.Goroutine,
		}
		if len(sr.Attrs) > 0 {
			args.Attrs = make(map[string]string, len(sr.Attrs))
			for _, a := range sr.Attrs {
				args.Attrs[a.Key] = a.Value
			}
		}
		events = append(events, TraceEvent{
			Name: sr.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   float64(startNs) / 1e3,
			Dur:  float64(sr.Duration) / 1e3,
			Pid:  tracePid,
			Tid:  int64(sr.Goroutine),
			Args: args,
		})
	}
	return &TraceFile{DisplayTimeUnit: "ns", TraceEvents: events}
}

// ExportTrace writes the trace_event JSON for records to w. Output is
// deterministic for a fixed record set.
func ExportTrace(w io.Writer, records []*SpanRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(BuildTrace(records))
}

// TraceRecords selects the record set a trace dump should contain: the
// flight recorder's retained trees when one is attached and has
// retained anything, otherwise the ring buffer's recent spans.
func TraceRecords(rec *Recorder) []*SpanRecord {
	if f := rec.Flight(); f != nil {
		if spans := f.Spans(); len(spans) > 0 {
			return spans
		}
	}
	return rec.Records()
}

// WriteTraceFile exports rec's trace (per TraceRecords) to path.
func WriteTraceFile(path string, rec *Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ExportTrace(f, TraceRecords(rec)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ValidateTrace parses data as a trace_event file and checks the schema
// this package exports: "ns" display unit, only "X" and "M" phases,
// named events with non-negative times, exact nanosecond args on every
// span, and unique span IDs. It returns the number of span ("X")
// events. cmd/promotrace -check and the smoke script gate on it.
func ValidateTrace(data []byte) (int, error) {
	var tf TraceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return 0, fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if tf.DisplayTimeUnit != "ns" {
		return 0, fmt.Errorf("trace: displayTimeUnit = %q, want \"ns\"", tf.DisplayTimeUnit)
	}
	seen := make(map[uint64]bool, len(tf.TraceEvents))
	spans := 0
	for i, ev := range tf.TraceEvents {
		if ev.Name == "" {
			return 0, fmt.Errorf("trace: event %d has no name", i)
		}
		switch ev.Ph {
		case "M":
			continue
		case "X":
		default:
			return 0, fmt.Errorf("trace: event %d (%s) has phase %q, want X or M", i, ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			return 0, fmt.Errorf("trace: event %d (%s) has negative ts or dur", i, ev.Name)
		}
		if ev.Args == nil {
			return 0, fmt.Errorf("trace: span event %d (%s) has no args", i, ev.Name)
		}
		if ev.Args.SpanID == 0 {
			return 0, fmt.Errorf("trace: span event %d (%s) has no span_id", i, ev.Name)
		}
		if ev.Args.StartNs < 0 || ev.Args.DurNs < 0 {
			return 0, fmt.Errorf("trace: span event %d (%s) has negative start_ns or dur_ns", i, ev.Name)
		}
		if seen[ev.Args.SpanID] {
			return 0, fmt.Errorf("trace: duplicate span_id %d (event %d, %s)", ev.Args.SpanID, i, ev.Name)
		}
		seen[ev.Args.SpanID] = true
		spans++
	}
	return spans, nil
}
