package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is the tail-sampling layer of the trace pipeline:
// where the ring buffer keeps the most recent spans regardless of
// interest, the flight recorder keeps *complete span trees* for exactly
// the operations worth a post-mortem — the top-K slowest roots per root
// span name, plus anything slower than a configured threshold. Trees
// are assembled as spans End (children land in a lock-free pending list
// keyed by root ID; the root's own End seals and scores the tree), so
// the per-span cost on the recording path is one CAS push and no locks.
// Retention decisions — the only locked step — run on the root-End path
// only. DESIGN.md §14 specifies the policy.

// Flight recorder defaults; see FlightConfig.
const (
	defaultTopK              = 4
	defaultMaxSpansPerTree   = 512
	defaultMaxThresholdTrees = 64
	defaultMaxPending        = 256

	// orphanAge is how long an unsealed pending tree may linger before
	// the cold-path sweep discards it. Orphans arise when a child span
	// Ends after its root (a span handed to another goroutine that
	// outlives the request) — its records recreate a pending entry that
	// no root will ever seal.
	orphanAge = time.Minute
)

// FlightConfig bounds a FlightRecorder. The zero value is usable: every
// field has a default, and a zero Threshold disables threshold-based
// retention (top-K retention is always on).
type FlightConfig struct {
	// TopK is how many slowest trees to keep per root span name
	// (default 4).
	TopK int
	// Threshold, when positive, retains every tree whose root duration
	// meets or exceeds it, regardless of top-K standing.
	Threshold time.Duration
	// MaxSpansPerTree caps the spans retained per tree; further spans
	// are counted in DroppedSpans and discarded (default 512).
	MaxSpansPerTree int
	// MaxThresholdTrees caps the threshold-retention ring; the oldest
	// entries are overwritten (default 64).
	MaxThresholdTrees int
	// MaxPending caps concurrently-open trees; records for new roots
	// beyond it are dropped (default 256).
	MaxPending int
}

// withDefaults fills zero fields with the package defaults.
func (c FlightConfig) withDefaults() FlightConfig {
	if c.TopK <= 0 {
		c.TopK = defaultTopK
	}
	if c.MaxSpansPerTree <= 0 {
		c.MaxSpansPerTree = defaultMaxSpansPerTree
	}
	if c.MaxThresholdTrees <= 0 {
		c.MaxThresholdTrees = defaultMaxThresholdTrees
	}
	if c.MaxPending <= 0 {
		c.MaxPending = defaultMaxPending
	}
	return c
}

// SpanTree is one retained span tree: a finished root span and every
// span recorded under it. Trees are immutable once retained.
type SpanTree struct {
	// Root is the tree's outermost span.
	Root *SpanRecord
	// Spans holds every span of the tree, root included, sorted by
	// start time (ties by span ID).
	Spans []*SpanRecord
}

// FlightStats counts a flight recorder's traffic and retention
// decisions.
type FlightStats struct {
	// RootsSeen is the number of sealed root spans scored for
	// retention; Retained is how many of their trees were kept.
	RootsSeen, Retained uint64
	// DroppedSpans counts spans discarded by the per-tree span cap or
	// the pending-tree cap.
	DroppedSpans uint64
	// SweptOrphans counts pending trees discarded by the orphan sweep.
	SweptOrphans uint64
}

// treeNode is one link of a pending tree's lock-free span list.
type treeNode struct {
	rec  *SpanRecord
	next *treeNode
}

// pendingTree accumulates the spans of one still-open tree. Pushes are
// lock-free (CAS onto head); the sealing root End drains the list.
type pendingTree struct {
	head    atomic.Pointer[treeNode]
	n       atomic.Int64
	created time.Time
}

// topTrees holds the K slowest retained trees of one root span name,
// slowest first. Mutated only on the root-End path, under its mutex.
type topTrees struct {
	mu    sync.Mutex
	trees []*SpanTree
}

// FlightRecorder tail-samples span trees. Create one with
// NewFlightRecorder and attach it to a Recorder with AttachFlight; all
// methods are safe for concurrent use.
type FlightRecorder struct {
	cfg FlightConfig

	pending      sync.Map // uint64 root ID -> *pendingTree
	pendingCount atomic.Int64

	top sync.Map // string root name -> *topTrees

	threshold       []atomic.Pointer[SpanTree]
	thresholdCursor atomic.Uint64

	rootsSeen    atomic.Uint64
	retained     atomic.Uint64
	droppedSpans atomic.Uint64
	sweptOrphans atomic.Uint64
}

// NewFlightRecorder returns a flight recorder bounded by cfg (zero
// fields take the package defaults).
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	cfg = cfg.withDefaults()
	return &FlightRecorder{
		cfg:       cfg,
		threshold: make([]atomic.Pointer[SpanTree], cfg.MaxThresholdTrees),
	}
}

// Config returns the recorder's effective (default-filled) bounds.
func (f *FlightRecorder) Config() FlightConfig { return f.cfg }

// record routes one finished span: child spans are pushed onto their
// tree's pending list; a root span seals its tree and decides
// retention. Called by Recorder.record for every span.
func (f *FlightRecorder) record(sr *SpanRecord) {
	if sr.ID == sr.RootID {
		f.seal(sr)
		return
	}
	f.push(sr)
}

// push appends a child span to its pending tree, creating the tree on
// first sight (bounded by MaxPending) and dropping the span once the
// tree hits MaxSpansPerTree.
func (f *FlightRecorder) push(sr *SpanRecord) {
	pt := f.tree(sr.RootID)
	if pt == nil {
		f.droppedSpans.Add(1)
		return
	}
	if pt.n.Add(1) > int64(f.cfg.MaxSpansPerTree) {
		pt.n.Add(-1)
		f.droppedSpans.Add(1)
		return
	}
	node := &treeNode{rec: sr}
	for {
		head := pt.head.Load()
		node.next = head
		if pt.head.CompareAndSwap(head, node) {
			return
		}
	}
}

// tree returns the pending tree for rootID, creating it if the pending
// cap allows; nil when the cap is hit.
func (f *FlightRecorder) tree(rootID uint64) *pendingTree {
	if v, ok := f.pending.Load(rootID); ok {
		return v.(*pendingTree)
	}
	if f.pendingCount.Load() >= int64(f.cfg.MaxPending) {
		return nil
	}
	fresh := &pendingTree{created: time.Now()}
	v, loaded := f.pending.LoadOrStore(rootID, fresh)
	if !loaded {
		f.pendingCount.Add(1)
	}
	return v.(*pendingTree)
}

// seal finishes the tree rooted at root: drain its pending spans, score
// it against the retention policy, and (on the way out) sweep orphaned
// pending trees if the pending set is crowded. Runs only on root-End —
// the cold path — so it may take the per-name retention lock.
func (f *FlightRecorder) seal(root *SpanRecord) {
	f.rootsSeen.Add(1)
	spans := []*SpanRecord{root}
	if v, ok := f.pending.LoadAndDelete(root.ID); ok {
		f.pendingCount.Add(-1)
		for node := v.(*pendingTree).head.Load(); node != nil; node = node.next {
			spans = append(spans, node.rec)
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID < spans[j].ID
	})
	tree := &SpanTree{Root: root, Spans: spans}

	kept := f.keepTop(tree)
	if f.cfg.Threshold > 0 && root.Duration >= f.cfg.Threshold {
		slot := (f.thresholdCursor.Add(1) - 1) % uint64(len(f.threshold))
		f.threshold[slot].Store(tree)
		kept = true
	}
	if kept {
		f.retained.Add(1)
	}

	if f.pendingCount.Load() > int64(f.cfg.MaxPending/2) {
		f.sweep()
	}
}

// keepTop offers the tree to its root name's top-K set, reporting
// whether it was admitted (set not full, or slower than the current
// fastest member, which it evicts).
func (f *FlightRecorder) keepTop(tree *SpanTree) bool {
	v, ok := f.top.Load(tree.Root.Name)
	if !ok {
		v, _ = f.top.LoadOrStore(tree.Root.Name, &topTrees{})
	}
	tt := v.(*topTrees)
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if len(tt.trees) < f.cfg.TopK {
		tt.trees = append(tt.trees, tree)
		sortTop(tt.trees)
		return true
	}
	last := tt.trees[len(tt.trees)-1]
	if tree.Root.Duration <= last.Root.Duration {
		return false
	}
	tt.trees[len(tt.trees)-1] = tree
	sortTop(tt.trees)
	return true
}

// sortTop orders a top-K set slowest first, ties by root span ID so the
// order is deterministic.
func sortTop(trees []*SpanTree) {
	sort.Slice(trees, func(i, j int) bool {
		if trees[i].Root.Duration != trees[j].Root.Duration {
			return trees[i].Root.Duration > trees[j].Root.Duration
		}
		return trees[i].Root.ID < trees[j].Root.ID
	})
}

// sweep discards pending trees older than orphanAge. Only seal calls
// it, so it never contends with the push fast path beyond the
// LoadAndDelete itself.
func (f *FlightRecorder) sweep() {
	f.pending.Range(func(k, v any) bool {
		pt := v.(*pendingTree)
		if time.Since(pt.created) < orphanAge {
			return true
		}
		if _, ok := f.pending.LoadAndDelete(k); ok {
			f.pendingCount.Add(-1)
			f.sweptOrphans.Add(1)
			f.droppedSpans.Add(uint64(pt.n.Load()))
		}
		return true
	})
}

// Trees returns every currently retained tree — the union of all
// per-name top-K sets and the threshold ring, deduplicated by root span
// ID — sorted by root start time (ties by root ID). The returned trees
// are shared; treat them as read-only.
func (f *FlightRecorder) Trees() []*SpanTree {
	seen := map[uint64]*SpanTree{}
	f.top.Range(func(_, v any) bool {
		tt := v.(*topTrees)
		tt.mu.Lock()
		for _, t := range tt.trees {
			seen[t.Root.ID] = t
		}
		tt.mu.Unlock()
		return true
	})
	for i := range f.threshold {
		if t := f.threshold[i].Load(); t != nil {
			seen[t.Root.ID] = t
		}
	}
	out := make([]*SpanTree, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Root.Start.Equal(out[j].Root.Start) {
			return out[i].Root.Start.Before(out[j].Root.Start)
		}
		return out[i].Root.ID < out[j].Root.ID
	})
	return out
}

// Spans returns the spans of every retained tree, flattened in Trees
// order — the record set trace export serializes.
func (f *FlightRecorder) Spans() []*SpanRecord {
	var out []*SpanRecord
	for _, t := range f.Trees() {
		out = append(out, t.Spans...)
	}
	return out
}

// Stats returns the recorder's traffic and retention counters.
func (f *FlightRecorder) Stats() FlightStats {
	return FlightStats{
		RootsSeen:    f.rootsSeen.Load(),
		Retained:     f.retained.Load(),
		DroppedSpans: f.droppedSpans.Load(),
		SweptOrphans: f.sweptOrphans.Load(),
	}
}
