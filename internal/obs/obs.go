// Package obs is the observability layer of promonet: hierarchical
// tracing spans, a typed metrics registry published through expvar, an
// HTTP debug server (pprof + /debug/vars), and reproducible run
// manifests. It is stdlib-only and imports nothing from this module, so
// every other package — graph, engine, core, greedy, the cmds — can
// instrument itself without import cycles.
//
// The design center is the disabled fast path: tracing is off unless a
// Recorder has been installed with SetRecorder, and while it is off,
// Start returns a nil *Span whose methods are all nil-receiver no-ops.
// Disabled instrumentation therefore costs a single atomic pointer load
// and zero allocations — enforced by BenchmarkSpanDisabled and
// TestSpanDisabledZeroAlloc, and relied on by the engine's hot path.
//
// With a Recorder installed, finished spans land in a lock-free ring
// buffer (most recent spans win) and are aggregated into per-name
// rollups: count, total/min/max wall clock, and a log-scale latency
// histogram. Rollups feed both the expvar snapshot (under the
// "promonet" variable) and the per-phase section of run manifests.
package obs

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// recorder is the process-wide span sink. nil means tracing is off.
var recorder atomic.Pointer[Recorder]

// SetRecorder installs r as the process-wide span sink, enabling
// tracing. Passing nil disables tracing again; in-flight spans started
// while the previous recorder was installed still record to it.
func SetRecorder(r *Recorder) {
	if r == nil {
		recorder.Store(nil)
		return
	}
	recorder.Store(r)
}

// CurrentRecorder returns the installed span sink, or nil when tracing
// is off.
func CurrentRecorder() *Recorder { return recorder.Load() }

// Enabled reports whether a span recorder is installed.
func Enabled() bool { return recorder.Load() != nil }

// maxSpanAttrs is the inline attribute capacity of a span; attributes
// set beyond it are dropped (spans are diagnostics, not storage).
const maxSpanAttrs = 8

// Attr is one key/value annotation on a recorded span. Values are
// pre-rendered to strings so records are self-contained.
type Attr struct {
	// Key names the attribute, e.g. "measure" or "n".
	Key string
	// Value is the rendered attribute value.
	Value string
}

// Span is one timed region of work. Obtain one from Start, annotate it
// with Int/Str/Float, and finish it with End. All methods are safe on a
// nil receiver — the disabled-tracing case — and do nothing there.
// A non-nil Span must End exactly once and must not be used after End.
type Span struct {
	name     string
	start    time.Time
	id       uint64
	parentID uint64
	rootID   uint64
	goro     uint64
	rec      *Recorder
	deltas   bool      // root span with phase deltas enabled
	snap     phaseSnap // alloc/gc/cpu baseline captured at Start
	nattrs   int
	attrs    [maxSpanAttrs]Attr
}

// spanIDs issues process-unique span identifiers.
var spanIDs atomic.Uint64

// spanPool recycles Span structs on the enabled path.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

// ctxKey is the context key under which Start stores the current span.
type ctxKey struct{}

// Start begins a span named name, recording the span installed in ctx
// (if any) as its parent. It returns a derived context carrying the new
// span plus the span itself. While tracing is disabled it returns ctx
// unchanged and a nil span, and performs no allocation — instrument
// freely, including hot paths.
//
// Span names are slash-separated taxonomies ("engine/compute/...",
// "promote/strategy-apply"); DESIGN.md §11 lists the vocabulary. Build
// the name without concatenation on hot paths (precompute constants) so
// the disabled path stays allocation-free.
//
//promolint:hotpath
func Start(ctx context.Context, name string) (context.Context, *Span) {
	rec := recorder.Load()
	if rec == nil {
		return ctx, nil
	}
	s := spanPool.Get().(*Span)
	s.name = name
	s.start = time.Now()
	s.id = spanIDs.Add(1)
	s.parentID = 0
	s.rootID = s.id
	s.goro = goroutineID()
	s.rec = rec
	s.deltas = false
	s.nattrs = 0
	if parent, ok := ctx.Value(ctxKey{}).(*Span); ok && parent != nil {
		s.parentID = parent.id
		s.rootID = parent.rootID
	} else if rec.phaseDeltas.Load() {
		// Root spans optionally carry process-level allocation, GC, and
		// CPU deltas (attached as attributes at End). The baseline reads
		// are cheap — runtime/metrics.Read on a pooled two-sample slice
		// plus one getrusage call — and only roots pay them.
		s.deltas = true
		s.snap = takePhaseSnap()
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// goroutineID returns the runtime's numeric id of the calling
// goroutine, parsed from its stack header ("goroutine N [...]"). The
// id keys trace-export tracks so concurrent spans render on separate
// timelines. Cost is one runtime.Stack call into a stack buffer —
// enabled-path only; the disabled path never reaches it.
func goroutineID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const skip = len("goroutine ")
	var id uint64
	for i := skip; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// Int annotates the span with an integer attribute. No-op when s is nil.
func (s *Span) Int(key string, v int) {
	if s == nil {
		return
	}
	s.attr(key, strconv.Itoa(v))
}

// Int64 annotates the span with a 64-bit integer attribute. No-op when
// s is nil.
func (s *Span) Int64(key string, v int64) {
	if s == nil {
		return
	}
	s.attr(key, strconv.FormatInt(v, 10))
}

// Str annotates the span with a string attribute. No-op when s is nil.
func (s *Span) Str(key, v string) {
	if s == nil {
		return
	}
	s.attr(key, v)
}

// Float annotates the span with a float attribute. No-op when s is nil.
func (s *Span) Float(key string, v float64) {
	if s == nil {
		return
	}
	s.attr(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// attr appends one rendered attribute, dropping overflow.
func (s *Span) attr(key, value string) {
	if s.nattrs < maxSpanAttrs {
		s.attrs[s.nattrs] = Attr{Key: key, Value: value}
		s.nattrs++
	}
}

// End finishes the span, recording it into the ring buffer and the
// per-name rollups of the recorder that was installed when it started.
// No-op when s is nil. The span must not be touched after End.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	if s.deltas {
		// Phase deltas: process-level cost accrued while this root span
		// was open. Attached as ordinary attributes so they flow through
		// rollups, trace export, and promotrace without special cases.
		now := takePhaseSnap()
		s.attr("alloc_bytes", strconv.FormatUint(now.allocBytes-s.snap.allocBytes, 10))
		s.attr("gc_cycles", strconv.FormatUint(now.gcCycles-s.snap.gcCycles, 10))
		s.attr("cpu_ns", strconv.FormatInt(now.cpuNanos-s.snap.cpuNanos, 10))
	}
	rec := s.rec
	r := &SpanRecord{
		Name:      s.name,
		ID:        s.id,
		ParentID:  s.parentID,
		RootID:    s.rootID,
		Goroutine: s.goro,
		Start:     s.start,
		Duration:  d,
		Attrs:     append([]Attr(nil), s.attrs[:s.nattrs]...),
	}
	s.rec = nil
	spanPool.Put(s)
	rec.record(r)
}
