package obs

import (
	"flag"
	"fmt"
	"os"
	"time"
)

// Shared observability flag surface. Every cmd registers the same five
// flags through RegisterObsFlags and brackets its run with Activate /
// Close, so `-debug-addr`, `-debug-linger`, `-trace`, `-trace-topk`,
// and `-trace-threshold` mean the same thing everywhere (the satellite
// parity requirement of ISSUE 9). Flag registration happens on a
// caller-owned FlagSet, keeping the cmds' flag-surface tests able to
// assert the full surface without global state.

// ObsFlags holds the parsed observability flags of one command.
type ObsFlags struct {
	// DebugAddr, when non-empty, serves the private debug mux
	// (/debug/vars, /debug/trace, /debug/pprof) on that host:port;
	// DebugLinger keeps it up after the run for scraping.
	DebugAddr   *string
	DebugLinger *time.Duration
	// TracePath, when non-empty, writes the trace_event JSON export
	// there when the session closes.
	TracePath *string
	// TraceTopK and TraceThreshold configure the flight recorder's
	// tail-sampling policy.
	TraceTopK      *int
	TraceThreshold *time.Duration
}

// RegisterObsFlags defines the shared observability flags on fs.
func RegisterObsFlags(fs *flag.FlagSet) *ObsFlags {
	return &ObsFlags{
		DebugAddr:      fs.String("debug-addr", "", "serve /debug/vars, /debug/trace and /debug/pprof on this host:port (e.g. 127.0.0.1:6060)"),
		DebugLinger:    fs.Duration("debug-linger", 0, "keep the -debug-addr server up this long after the run finishes, for scraping"),
		TracePath:      fs.String("trace", "", "write a Chrome trace_event / Perfetto JSON trace to this file on exit"),
		TraceTopK:      fs.Int("trace-topk", 0, "flight recorder: keep the K slowest span trees per root name (0 = default 4)"),
		TraceThreshold: fs.Duration("trace-threshold", 0, "flight recorder: additionally keep every span tree slower than this (0 = off)"),
	}
}

// ObsSession is the running observability state Activate sets up:
// recorder + flight recorder, runtime poller, and (optionally) the
// debug server. Close tears it down in order and writes the trace
// file. A session from an Activate that decided tracing was not wanted
// is inert — Close is a cheap no-op — so callers can defer Close
// unconditionally.
type ObsSession struct {
	cmd    string
	flags  *ObsFlags
	rec    *Recorder
	poller *RuntimePoller
	srv    *DebugServer
}

// Activate installs observability according to the parsed flags: when
// any consumer exists (a debug server, a trace file, or force — set it
// when e.g. a -manifest flag needs span rollups), it installs a
// Recorder with ring capacity ringCap, attaches a flight recorder with
// the flagged tail-sampling policy, enables per-phase root-span deltas,
// starts the runtime/metrics poller, and serves the debug endpoints if
// requested (announced on stderr under the cmd name). With no consumer
// it does nothing and returns an inert session, preserving the
// zero-alloc disabled path.
func (of *ObsFlags) Activate(cmd string, ringCap int, force bool) (*ObsSession, error) {
	s := &ObsSession{cmd: cmd, flags: of}
	if !force && *of.DebugAddr == "" && *of.TracePath == "" {
		return s, nil
	}
	s.rec = NewRecorder(ringCap)
	s.rec.AttachFlight(NewFlightRecorder(FlightConfig{
		TopK:      *of.TraceTopK,
		Threshold: *of.TraceThreshold,
	}))
	s.rec.EnablePhaseDeltas(true)
	SetRecorder(s.rec)
	s.poller = StartRuntimePoller(Default(), time.Second)
	if *of.DebugAddr != "" {
		srv, err := StartDebugServer(*of.DebugAddr)
		if err != nil {
			s.poller.Stop()
			return nil, err
		}
		s.srv = srv
		fmt.Fprintf(os.Stderr, "%s: debug endpoints at http://%s/debug/\n", cmd, srv.Addr())
	}
	return s, nil
}

// Recorder returns the session's recorder, nil when tracing was not
// activated.
func (s *ObsSession) Recorder() *Recorder { return s.rec }

// Close finishes the session: linger the debug server if asked (so
// scrapers can pull /debug/trace from a finished run), shut it down,
// stop the runtime poller, and write the trace file. Safe on an inert
// session.
func (s *ObsSession) Close() error {
	if s.rec == nil {
		return nil
	}
	if s.srv != nil {
		if *s.flags.DebugLinger > 0 {
			fmt.Fprintf(os.Stderr, "%s: holding debug server for %v\n", s.cmd, *s.flags.DebugLinger)
			time.Sleep(*s.flags.DebugLinger)
		}
		_ = s.srv.Close()
	}
	s.poller.Stop()
	if *s.flags.TracePath != "" {
		if err := WriteTraceFile(*s.flags.TracePath, s.rec); err != nil {
			return fmt.Errorf("%s: writing trace: %w", s.cmd, err)
		}
		fmt.Fprintf(os.Stderr, "%s: trace written to %s\n", s.cmd, *s.flags.TracePath)
	}
	return nil
}
