package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// withRecorder installs a fresh recorder for the test and removes it
// afterwards so the package-global state never leaks across tests.
func withRecorder(t *testing.T, capacity int) *Recorder {
	t.Helper()
	rec := NewRecorder(capacity)
	SetRecorder(rec)
	t.Cleanup(func() { SetRecorder(nil) })
	return rec
}

func TestSpanDisabledIsNil(t *testing.T) {
	SetRecorder(nil)
	ctx := context.Background()
	ctx2, sp := Start(ctx, "x")
	if sp != nil {
		t.Fatal("disabled Start returned a non-nil span")
	}
	if ctx2 != ctx {
		t.Fatal("disabled Start derived a new context")
	}
	// All of these must be safe no-ops on the nil span.
	sp.Int("n", 1)
	sp.Int64("m", 2)
	sp.Str("s", "v")
	sp.Float("f", 0.5)
	sp.End()
	if Enabled() {
		t.Fatal("Enabled() = true with no recorder")
	}
}

func TestSpanDisabledZeroAlloc(t *testing.T) {
	SetRecorder(nil)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, sp := Start(ctx, "bench/disabled")
		sp.Int("n", 42)
		sp.Str("measure", "closeness")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f times per op, want 0", allocs)
	}
}

func TestSpanRecordsHierarchyAndAttrs(t *testing.T) {
	rec := withRecorder(t, 16)
	ctx, root := Start(context.Background(), "parent")
	root.Int("n", 7)
	_, child := Start(ctx, "child")
	child.Str("k", "v")
	child.End()
	root.End()

	records := rec.Records()
	if len(records) != 2 {
		t.Fatalf("got %d records, want 2", len(records))
	}
	// child ends first.
	c, p := records[0], records[1]
	if c.Name != "child" || p.Name != "parent" {
		t.Fatalf("record order = %q, %q", c.Name, p.Name)
	}
	if c.ParentID != p.ID {
		t.Fatalf("child.ParentID = %d, want parent ID %d", c.ParentID, p.ID)
	}
	if p.ParentID != 0 {
		t.Fatalf("root span has ParentID %d", p.ParentID)
	}
	if len(c.Attrs) != 1 || c.Attrs[0] != (Attr{Key: "k", Value: "v"}) {
		t.Fatalf("child attrs = %v", c.Attrs)
	}
	if len(p.Attrs) != 1 || p.Attrs[0] != (Attr{Key: "n", Value: "7"}) {
		t.Fatalf("parent attrs = %v", p.Attrs)
	}
}

func TestSpanAttrOverflowDropped(t *testing.T) {
	rec := withRecorder(t, 4)
	_, sp := Start(context.Background(), "many")
	for i := 0; i < maxSpanAttrs+3; i++ {
		sp.Int("k", i)
	}
	sp.End()
	records := rec.Records()
	if len(records) != 1 {
		t.Fatalf("got %d records", len(records))
	}
	if len(records[0].Attrs) != maxSpanAttrs {
		t.Fatalf("attrs = %d, want capped at %d", len(records[0].Attrs), maxSpanAttrs)
	}
}

func TestRecorderRingOverwrites(t *testing.T) {
	rec := withRecorder(t, 4)
	for i := 0; i < 10; i++ {
		_, sp := Start(context.Background(), "s")
		sp.End()
	}
	records := rec.Records()
	if len(records) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(records))
	}
	// Rollups keep counting past the ring capacity.
	rollups := rec.Rollups()
	if len(rollups) != 1 || rollups[0].Count != 10 {
		t.Fatalf("rollups = %+v, want one entry with count 10", rollups)
	}
}

func TestRollupAggregation(t *testing.T) {
	rec := NewRecorder(8)
	rec.record(&SpanRecord{Name: "b", Duration: 3 * time.Millisecond})
	rec.record(&SpanRecord{Name: "a", Duration: 2 * time.Millisecond})
	rec.record(&SpanRecord{Name: "a", Duration: 6 * time.Millisecond})

	rollups := rec.Rollups()
	if len(rollups) != 2 || rollups[0].Name != "a" || rollups[1].Name != "b" {
		t.Fatalf("rollups = %+v", rollups)
	}
	a := rollups[0]
	if a.Count != 2 || a.WallNanos != int64(8*time.Millisecond) {
		t.Fatalf("a = %+v", a)
	}
	if a.MinNanos != int64(2*time.Millisecond) || a.MaxNanos != int64(6*time.Millisecond) {
		t.Fatalf("a min/max = %d/%d", a.MinNanos, a.MaxNanos)
	}
	if a.Hist.Count != 2 {
		t.Fatalf("a hist count = %d", a.Hist.Count)
	}
}

func TestDiffRollups(t *testing.T) {
	rec := NewRecorder(8)
	rec.record(&SpanRecord{Name: "a", Duration: time.Millisecond})
	before := rec.Rollups()
	rec.record(&SpanRecord{Name: "a", Duration: 2 * time.Millisecond})
	rec.record(&SpanRecord{Name: "b", Duration: 4 * time.Millisecond})
	diff := DiffRollups(before, rec.Rollups())

	if len(diff) != 2 {
		t.Fatalf("diff = %+v", diff)
	}
	if diff[0].Name != "a" || diff[0].Count != 1 || diff[0].WallNanos != int64(2*time.Millisecond) {
		t.Fatalf("diff[a] = %+v", diff[0])
	}
	if diff[1].Name != "b" || diff[1].Count != 1 {
		t.Fatalf("diff[b] = %+v", diff[1])
	}
	// An unchanged snapshot diffs to nothing.
	if d := DiffRollups(rec.Rollups(), rec.Rollups()); len(d) != 0 {
		t.Fatalf("self-diff = %+v, want empty", d)
	}
}

func TestConcurrentSpans(t *testing.T) {
	rec := withRecorder(t, 64)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, sp := Start(context.Background(), "outer")
				_, inner := Start(ctx, "inner")
				inner.Int("i", i)
				inner.End()
				sp.End()
				_ = rec.Records()
				_ = rec.Rollups()
			}
		}()
	}
	wg.Wait()
	rollups := rec.Rollups()
	if len(rollups) != 2 {
		t.Fatalf("rollups = %+v", rollups)
	}
	for _, ru := range rollups {
		if ru.Count != workers*perWorker {
			t.Fatalf("%s count = %d, want %d", ru.Name, ru.Count, workers*perWorker)
		}
	}
}

// BenchmarkSpanDisabled is the contract the engine's hot path relies
// on: with no recorder installed, a start/annotate/end cycle performs
// zero allocations (the acceptance bar of ISSUE 4).
func BenchmarkSpanDisabled(b *testing.B) {
	SetRecorder(nil)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench/disabled")
		sp.Int("n", 42)
		sp.End()
	}
}

// BenchmarkSpanEnabled prices the enabled path (pooled span, ring
// store, rollup update) for comparison against the disabled one.
func BenchmarkSpanEnabled(b *testing.B) {
	rec := NewRecorder(1024)
	SetRecorder(rec)
	defer SetRecorder(nil)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench/enabled")
		sp.Int("n", 42)
		sp.End()
	}
}
