package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServerEndpoints(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	Default().Counter("test.debug.counter").Add(9)

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	vars := get("/debug/vars")
	var parsed map[string]json.RawMessage
	if err := json.Unmarshal(vars, &parsed); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	promonet, ok := parsed["promonet"]
	if !ok {
		t.Fatalf("/debug/vars has no promonet variable: %s", vars)
	}
	if !strings.Contains(string(promonet), "test.debug.counter") {
		t.Fatalf("promonet expvar missing registry counter: %s", promonet)
	}

	heap := get("/debug/pprof/heap?debug=1")
	if !strings.Contains(string(heap), "heap profile") {
		t.Fatalf("heap profile looks wrong: %.120s", heap)
	}

	index := get("/debug/pprof/")
	if !strings.Contains(string(index), "goroutine") {
		t.Fatalf("pprof index looks wrong: %.120s", index)
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	url := "http://" + srv.Addr() + "/debug/trace"

	// No recorder installed: the endpoint reports unavailability rather
	// than an empty trace.
	SetRecorder(nil)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("without recorder: status %d, want 503", resp.StatusCode)
	}

	rec := withRecorder(t, 16)
	rec.AttachFlight(NewFlightRecorder(FlightConfig{TopK: 2}))
	ctx, root := Start(context.Background(), "live")
	_, child := Start(ctx, "live/child")
	child.End()
	root.End()

	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("with recorder: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := ValidateTrace(body)
	if err != nil {
		t.Fatalf("/debug/trace body fails validator: %v\n%.300s", err, body)
	}
	if spans != 2 {
		t.Errorf("scraped %d spans, want 2 (the flight-retained tree)", spans)
	}
}

// TestDebugTraceExportErrorIs500 pins the regression where a mid-stream
// export failure produced a truncated body under a 200 status (the
// header was committed before ExportTrace ran, so promotrace -check
// rejected the scrape with a confusing validation error). With the
// buffered handler, a failing export must yield a clean 500 and none of
// the partial bytes the exporter managed to write.
func TestDebugTraceExportErrorIs500(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	rec := withRecorder(t, 16)
	_, sp := Start(context.Background(), "doomed")
	sp.End()
	_ = rec

	orig := exportTraceFn
	exportTraceFn = func(w io.Writer, records []*SpanRecord) error {
		// Mimic a mid-stream failure: some JSON escapes, then an error —
		// exactly what a write fault used to leave in the response body.
		_, _ = w.Write([]byte(`{"traceEvents":[{"truncated`))
		return io.ErrShortWrite
	}
	defer func() { exportTraceFn = orig }()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing export: status %d, want 500", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "traceEvents") {
		t.Fatalf("500 body leaks partial trace bytes: %q", body)
	}
	if !strings.Contains(string(body), "trace export failed") {
		t.Fatalf("500 body should explain the failure, got %q", body)
	}
}

// TestDebugServerCloseDrainsInflight pins the graceful-shutdown fix:
// Close must let an in-flight scrape finish (the old srv.Close cut the
// connection mid-response, which smoke.sh raced in practice). A CPU
// profile with seconds=1 holds the handler long enough for Close to
// arrive while the request is live.
func TestDebugServerCloseDrainsInflight(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		status int
		n      int
		err    error
	}
	started := make(chan struct{})
	done := make(chan result, 1)
	go func() {
		// Signal just before the request goes out; the profile handler
		// then blocks for a full second, guaranteeing overlap with Close.
		close(started)
		resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/profile?seconds=1")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer func() { _ = resp.Body.Close() }()
		body, err := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, n: len(body), err: err}
	}()

	<-started
	time.Sleep(200 * time.Millisecond) // let the profile request reach the handler
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight scrape failed across Close: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight scrape: status %d, want 200", r.status)
	}
	if r.n == 0 {
		t.Fatal("in-flight scrape returned an empty profile body")
	}
}
