package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServerEndpoints(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	Default().Counter("test.debug.counter").Add(9)

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	vars := get("/debug/vars")
	var parsed map[string]json.RawMessage
	if err := json.Unmarshal(vars, &parsed); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	promonet, ok := parsed["promonet"]
	if !ok {
		t.Fatalf("/debug/vars has no promonet variable: %s", vars)
	}
	if !strings.Contains(string(promonet), "test.debug.counter") {
		t.Fatalf("promonet expvar missing registry counter: %s", promonet)
	}

	heap := get("/debug/pprof/heap?debug=1")
	if !strings.Contains(string(heap), "heap profile") {
		t.Fatalf("heap profile looks wrong: %.120s", heap)
	}

	index := get("/debug/pprof/")
	if !strings.Contains(string(index), "goroutine") {
		t.Fatalf("pprof index looks wrong: %.120s", index)
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	url := "http://" + srv.Addr() + "/debug/trace"

	// No recorder installed: the endpoint reports unavailability rather
	// than an empty trace.
	SetRecorder(nil)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("without recorder: status %d, want 503", resp.StatusCode)
	}

	rec := withRecorder(t, 16)
	rec.AttachFlight(NewFlightRecorder(FlightConfig{TopK: 2}))
	ctx, root := Start(context.Background(), "live")
	_, child := Start(ctx, "live/child")
	child.End()
	root.End()

	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("with recorder: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := ValidateTrace(body)
	if err != nil {
		t.Fatalf("/debug/trace body fails validator: %v\n%.300s", err, body)
	}
	if spans != 2 {
		t.Errorf("scraped %d spans, want 2 (the flight-retained tree)", spans)
	}
}
