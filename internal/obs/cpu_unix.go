//go:build unix

package obs

import "syscall"

// processCPUNanos returns the process's cumulative user+system CPU time
// in nanoseconds, via getrusage. Used by phase-delta snapshots; a
// failing syscall degrades to 0 (deltas then read as 0, not garbage,
// because both endpoints fail the same way).
func processCPUNanos() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tvNanos(ru.Utime) + tvNanos(ru.Stime)
}

// tvNanos converts a syscall timeval to nanoseconds.
func tvNanos(tv syscall.Timeval) int64 {
	return int64(tv.Sec)*1e9 + int64(tv.Usec)*1e3
}
