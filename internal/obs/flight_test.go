package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// syntheticRoot builds a root-span record (ID == RootID) with a known
// duration, so retention tests control exactly what the policy sees.
func syntheticRoot(name string, id uint64, base time.Time, d time.Duration) *SpanRecord {
	return &SpanRecord{
		Name:      name,
		ID:        id,
		RootID:    id,
		Goroutine: 1,
		Start:     base.Add(time.Duration(id) * time.Second),
		Duration:  d,
	}
}

func TestFlightTopKRetention(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{TopK: 2})
	base := time.Unix(1700000000, 0)
	// Descending durations: the first two fill the set, the rest are
	// faster than the current fastest member and must be rejected.
	for i, d := range []time.Duration{
		5 * time.Millisecond, 4 * time.Millisecond,
		3 * time.Millisecond, 2 * time.Millisecond, time.Millisecond,
	} {
		f.record(syntheticRoot("op", uint64(i+1), base, d))
	}
	trees := f.Trees()
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
	// Trees() sorts by start time, so IDs 1 (5ms) then 2 (4ms).
	if trees[0].Root.ID != 1 || trees[1].Root.ID != 2 {
		t.Errorf("retained roots %d, %d, want 1, 2", trees[0].Root.ID, trees[1].Root.ID)
	}
	st := f.Stats()
	if st.RootsSeen != 5 || st.Retained != 2 {
		t.Errorf("stats = %+v, want RootsSeen 5, Retained 2", st)
	}

	// A slower root evicts the current fastest member (ID 2, 4ms).
	f.record(syntheticRoot("op", 6, base, 10*time.Millisecond))
	trees = f.Trees()
	if len(trees) != 2 || trees[0].Root.ID != 1 || trees[1].Root.ID != 6 {
		ids := []uint64{}
		for _, tr := range trees {
			ids = append(ids, tr.Root.ID)
		}
		t.Errorf("after eviction retained roots %v, want [1 6]", ids)
	}

	// Separate root names keep separate top-K sets.
	f.record(syntheticRoot("other", 7, base, time.Microsecond))
	if got := len(f.Trees()); got != 3 {
		t.Errorf("after second name: %d trees, want 3", got)
	}
}

func TestFlightThresholdRetention(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{
		TopK:              1,
		Threshold:         time.Millisecond,
		MaxThresholdTrees: 2,
	})
	base := time.Unix(1700000000, 0)
	// All three cross the threshold; the ring holds two, so the oldest
	// (ID 1) survives only if it also holds the top-K slot — it does not,
	// ID 3 is slowest.
	f.record(syntheticRoot("x", 1, base, 10*time.Millisecond))
	f.record(syntheticRoot("x", 2, base, 20*time.Millisecond))
	f.record(syntheticRoot("x", 3, base, 30*time.Millisecond))
	trees := f.Trees()
	if len(trees) != 2 || trees[0].Root.ID != 2 || trees[1].Root.ID != 3 {
		ids := []uint64{}
		for _, tr := range trees {
			ids = append(ids, tr.Root.ID)
		}
		t.Fatalf("retained roots %v, want [2 3] (ring wrapped past 1)", ids)
	}
	// Below threshold and not slowest: dropped entirely.
	f.record(syntheticRoot("x", 4, base, time.Microsecond))
	if got := len(f.Trees()); got != 2 {
		t.Errorf("after sub-threshold root: %d trees, want 2", got)
	}
}

func TestFlightTreeAssembly(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{TopK: 1})
	base := time.Unix(1700000000, 0)
	// Children End (and are recorded) before their root, in scrambled
	// start order; the sealed tree must come out start-sorted.
	f.record(&SpanRecord{Name: "c2", ID: 3, ParentID: 1, RootID: 1,
		Start: base.Add(2 * time.Second), Duration: time.Millisecond})
	f.record(&SpanRecord{Name: "c1", ID: 2, ParentID: 1, RootID: 1,
		Start: base.Add(time.Second), Duration: time.Millisecond})
	f.record(&SpanRecord{Name: "root", ID: 1, RootID: 1,
		Start: base, Duration: 5 * time.Second})

	trees := f.Trees()
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	tr := trees[0]
	if tr.Root.Name != "root" {
		t.Errorf("tree root = %q", tr.Root.Name)
	}
	var names []string
	for _, s := range tr.Spans {
		names = append(names, s.Name)
	}
	want := []string{"root", "c1", "c2"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("tree spans = %v, want %v", names, want)
	}
	if f.Spans()[0].Name != "root" {
		t.Errorf("Spans() first = %q, want root", f.Spans()[0].Name)
	}
}

func TestFlightSpanCapDrops(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{TopK: 1, MaxSpansPerTree: 2})
	base := time.Unix(1700000000, 0)
	for i := uint64(2); i <= 5; i++ { // four children; cap keeps two
		f.record(&SpanRecord{Name: "c", ID: i, ParentID: 1, RootID: 1,
			Start: base.Add(time.Duration(i) * time.Second), Duration: time.Millisecond})
	}
	f.record(&SpanRecord{Name: "root", ID: 1, RootID: 1, Start: base, Duration: time.Second})

	trees := f.Trees()
	if len(trees) != 1 || len(trees[0].Spans) != 3 {
		t.Fatalf("tree spans = %d, want 3 (root + 2 capped children)", len(trees[0].Spans))
	}
	if st := f.Stats(); st.DroppedSpans != 2 {
		t.Errorf("DroppedSpans = %d, want 2", st.DroppedSpans)
	}
}

func TestFlightPendingCapDrops(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{TopK: 1, MaxPending: 1})
	base := time.Unix(1700000000, 0)
	f.record(&SpanRecord{Name: "c", ID: 2, ParentID: 1, RootID: 1, Start: base, Duration: time.Millisecond})
	// Second tree cannot open while the first is pending.
	f.record(&SpanRecord{Name: "c", ID: 4, ParentID: 3, RootID: 3, Start: base, Duration: time.Millisecond})
	if st := f.Stats(); st.DroppedSpans != 1 {
		t.Errorf("DroppedSpans = %d, want 1", st.DroppedSpans)
	}
	// Sealing the first frees the slot.
	f.record(&SpanRecord{Name: "root", ID: 1, RootID: 1, Start: base, Duration: time.Second})
	f.record(&SpanRecord{Name: "c", ID: 6, ParentID: 5, RootID: 5, Start: base, Duration: time.Millisecond})
	if st := f.Stats(); st.DroppedSpans != 1 {
		t.Errorf("after seal DroppedSpans = %d, want still 1", st.DroppedSpans)
	}
}

// TestRollupsSurviveWraparoundAndFlight is the eviction-correctness
// contract: rollup count, min/max, and histogram bucket totals reflect
// every span ever finished — not just ring survivors or flight-retained
// trees — even with concurrent writers, a wrapping ring, and a flight
// recorder making retention decisions. Run under -race in CI.
func TestRollupsSurviveWraparoundAndFlight(t *testing.T) {
	const workers, perWorker = 4, 250
	const total = workers * perWorker

	rec := NewRecorder(8) // ring far smaller than total: guaranteed wraparound
	rec.AttachFlight(NewFlightRecorder(FlightConfig{TopK: 3}))
	base := time.Unix(1700000000, 0)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Durations 1..total µs, each exactly once across workers.
				k := uint64(w*perWorker + i + 1)
				rec.record(syntheticRoot("op", k, base, time.Duration(k)*time.Microsecond))
			}
		}(w)
	}
	wg.Wait()

	if got := len(rec.Records()); got > 8 {
		t.Errorf("ring holds %d records, cap 8", got)
	}

	rollups := rec.Rollups()
	if len(rollups) != 1 {
		t.Fatalf("got %d rollups, want 1", len(rollups))
	}
	ru := rollups[0]
	if ru.Count != total {
		t.Errorf("Count = %d, want %d", ru.Count, total)
	}
	if ru.MinNanos != int64(time.Microsecond) {
		t.Errorf("MinNanos = %d, want %d", ru.MinNanos, int64(time.Microsecond))
	}
	if ru.MaxNanos != int64(total*int(time.Microsecond)) {
		t.Errorf("MaxNanos = %d, want %d", ru.MaxNanos, total*int(time.Microsecond))
	}
	wantWall := int64(total*(total+1)/2) * int64(time.Microsecond)
	if ru.WallNanos != wantWall {
		t.Errorf("WallNanos = %d, want %d", ru.WallNanos, wantWall)
	}
	if ru.Hist.Count != total || ru.Hist.SumNanos != wantWall {
		t.Errorf("hist count/sum = %d/%d, want %d/%d", ru.Hist.Count, ru.Hist.SumNanos, total, wantWall)
	}
	var bucketSum uint64
	for _, b := range ru.Hist.Buckets {
		bucketSum += b
	}
	if bucketSum != total {
		t.Errorf("hist buckets sum to %d, want %d", bucketSum, total)
	}

	// Retention kept exactly the slowest three, independent of arrival
	// interleaving.
	fl := rec.Flight()
	if st := fl.Stats(); st.RootsSeen != total {
		t.Errorf("flight RootsSeen = %d, want %d", st.RootsSeen, total)
	}
	trees := fl.Trees()
	if len(trees) != 3 {
		t.Fatalf("flight retained %d trees, want 3", len(trees))
	}
	want := map[uint64]bool{total - 2: true, total - 1: true, total: true}
	for _, tr := range trees {
		if !want[tr.Root.ID] {
			t.Errorf("retained root %d (dur %v), want only the 3 slowest", tr.Root.ID, tr.Root.Duration)
		}
	}
}

// TestConcurrentSpansWithFlight drives the real Start/End path from many
// goroutines with a flight recorder attached — the -race exercise for
// the CAS push / seal handoff.
func TestConcurrentSpansWithFlight(t *testing.T) {
	const workers, perWorker = 8, 50
	rec := withRecorder(t, 64)
	rec.AttachFlight(NewFlightRecorder(FlightConfig{TopK: 2}))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, root := Start(context.Background(), "load/root")
				_, child := Start(ctx, "load/child")
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()

	for _, ru := range rec.Rollups() {
		if ru.Count != workers*perWorker {
			t.Errorf("%s count = %d, want %d", ru.Name, ru.Count, workers*perWorker)
		}
	}
	fl := rec.Flight()
	if st := fl.Stats(); st.RootsSeen != workers*perWorker {
		t.Errorf("RootsSeen = %d, want %d", st.RootsSeen, workers*perWorker)
	}
	for _, tr := range fl.Trees() {
		if tr.Root.ID != tr.Root.RootID {
			t.Errorf("tree root %d has RootID %d", tr.Root.ID, tr.Root.RootID)
		}
		for _, s := range tr.Spans {
			if s.RootID != tr.Root.ID {
				t.Errorf("span %d in tree %d has RootID %d", s.ID, tr.Root.ID, s.RootID)
			}
		}
	}
}

// BenchmarkSpanEnabledRecorder prices the full enabled pipeline: span
// Start/End through a recorder with a flight recorder attached (the
// BENCH_9 counterpart of BenchmarkSpanEnabled).
func BenchmarkSpanEnabledRecorder(b *testing.B) {
	rec := NewRecorder(1024)
	rec.AttachFlight(NewFlightRecorder(FlightConfig{}))
	prev := CurrentRecorder()
	SetRecorder(rec)
	defer SetRecorder(prev)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench/enabled-flight")
		sp.Int("i", i)
		sp.End()
	}
}

// BenchmarkFlightRecorder prices the flight recorder alone: one
// child-push plus one root-seal per iteration, durations varied so both
// the admit and reject retention paths run.
func BenchmarkFlightRecorder(b *testing.B) {
	f := NewFlightRecorder(FlightConfig{})
	base := time.Unix(1700000000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rootID := uint64(2*i + 1)
		f.record(&SpanRecord{Name: "bench/child", ID: rootID + 1, ParentID: rootID,
			RootID: rootID, Start: base, Duration: time.Microsecond})
		f.record(&SpanRecord{Name: "bench/root", ID: rootID, RootID: rootID,
			Start: base, Duration: time.Duration(i%1000) * time.Microsecond})
	}
}
