package obs

import (
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Set(0)
	if c.Value() != 0 {
		t.Fatalf("counter after Set(0) = %d", c.Value())
	}

	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{10 * time.Hour, histBuckets - 1},
	}
	for _, tc := range cases {
		if got := histBucketIndex(tc.d); got != tc.want {
			t.Errorf("bucket(%v) = %d, want %d", tc.d, got, tc.want)
		}
		h.Observe(tc.d)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", s.Count, len(cases))
	}
	var sum int64
	for _, tc := range cases {
		sum += int64(tc.d)
	}
	if s.SumNanos != sum {
		t.Fatalf("sum = %d, want %d", s.SumNanos, sum)
	}
}

func TestBucketLabels(t *testing.T) {
	cases := map[int]string{
		0:               "1us",
		3:               "8us",
		10:              "1ms",
		20:              "1s",
		histBuckets - 1: "+inf",
	}
	for i, want := range cases {
		if got := BucketLabel(i); got != want {
			t.Errorf("BucketLabel(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestRegistryIdempotentAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("engine.hits")
	c1.Add(3)
	if c2 := r.Counter("engine.hits"); c2 != c1 {
		t.Fatal("Counter lookup is not idempotent")
	}
	r.Gauge("pool.size").Set(4)
	r.Histogram("span.latency").Observe(5 * time.Microsecond)

	snap := r.Snapshot()
	if snap["engine.hits"] != uint64(3) {
		t.Fatalf("snapshot counter = %v", snap["engine.hits"])
	}
	if snap["pool.size"] != int64(4) {
		t.Fatalf("snapshot gauge = %v", snap["pool.size"])
	}
	hv, ok := snap["span.latency"].(map[string]any)
	if !ok || hv["count"] != uint64(1) {
		t.Fatalf("snapshot histogram = %v", snap["span.latency"])
	}

	names := r.Names()
	want := []string{"engine.hits", "pool.size", "span.latency"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestDefaultRegistryPublished(t *testing.T) {
	r := Default()
	if r == nil || Default() != r {
		t.Fatal("Default registry is not a stable singleton")
	}
	r.Counter("test.default.counter").Inc()
	if r.Counter("test.default.counter").Value() != 1 {
		t.Fatal("default registry counter lost its value")
	}
}
