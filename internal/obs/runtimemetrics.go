package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime telemetry: a background poller samples runtime/metrics into a
// Registry so /debug/vars (and run manifests scraped from it) carry
// GC-pause and scheduler-latency quantiles, heap occupancy, and
// goroutine counts alongside the pipeline's own metrics; and phaseSnap
// gives root spans cheap per-phase alloc/GC/CPU deltas. DESIGN.md §14
// lists the published metric names.

// Metric names sampled by the poller. Each is availability-checked at
// poller construction (runtime/metrics grows and shrinks across Go
// releases), so a missing name degrades to an absent gauge rather than
// a panic.
const (
	metricGoroutines = "/sched/goroutines:goroutines"
	metricHeapLive   = "/memory/classes/heap/objects:bytes"
	metricAllocBytes = "/gc/heap/allocs:bytes"
	metricGCCycles   = "/gc/cycles/total:gc-cycles"
	metricGCPauses   = "/sched/pauses/total/gc:seconds"
	metricSchedLat   = "/sched/latencies:seconds"
)

// phaseSnap is a baseline of process-level cost counters, captured at a
// root span's Start and differenced at its End.
type phaseSnap struct {
	allocBytes uint64
	gcCycles   uint64
	cpuNanos   int64
}

// phaseSamplePool recycles the two-element sample slice takePhaseSnap
// hands to metrics.Read, keeping root-span Start allocation-free after
// warmup.
var phaseSamplePool = sync.Pool{New: func() any {
	s := make([]metrics.Sample, 2)
	s[0].Name = metricAllocBytes
	s[1].Name = metricGCCycles
	return &s
}}

// takePhaseSnap reads the current cumulative alloc bytes, GC cycle
// count, and process CPU time. Used in pairs: once at root-span Start,
// once at End; the difference is the phase's cost.
func takePhaseSnap() phaseSnap {
	sp := phaseSamplePool.Get().(*[]metrics.Sample)
	s := *sp
	metrics.Read(s)
	var out phaseSnap
	if s[0].Value.Kind() == metrics.KindUint64 {
		out.allocBytes = s[0].Value.Uint64()
	}
	if s[1].Value.Kind() == metrics.KindUint64 {
		out.gcCycles = s[1].Value.Uint64()
	}
	phaseSamplePool.Put(sp)
	out.cpuNanos = processCPUNanos()
	return out
}

// RuntimePoller periodically samples runtime/metrics into a Registry.
// Create one with StartRuntimePoller and stop it with Stop; both are
// safe to call from any goroutine, Stop at most once.
type RuntimePoller struct {
	reg      *Registry
	interval time.Duration
	samples  []metrics.Sample
	done     chan struct{}
	wg       sync.WaitGroup
}

// StartRuntimePoller begins sampling runtime/metrics into reg every
// interval (minimum 100ms; values below are clamped). It publishes:
//
//	runtime.goroutines                  gauge   live goroutine count
//	runtime.heap_live_bytes             gauge   bytes in live heap objects
//	runtime.alloc_bytes_total           counter cumulative allocated bytes
//	runtime.gc_cycles                   counter completed GC cycles
//	runtime.gc_pause_{p50,p90,p99,max}_ns   gauges, GC stop-the-world pauses
//	runtime.sched_latency_{p50,p99,max}_ns  gauges, runnable-goroutine wait
//
// Metrics absent from the running Go release are skipped. The caller
// must Stop the poller to release its goroutine.
func StartRuntimePoller(reg *Registry, interval time.Duration) *RuntimePoller {
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	wanted := []string{
		metricGoroutines, metricHeapLive, metricAllocBytes,
		metricGCCycles, metricGCPauses, metricSchedLat,
	}
	available := map[string]bool{}
	for _, d := range metrics.All() {
		available[d.Name] = true
	}
	var samples []metrics.Sample
	for _, name := range wanted {
		if available[name] {
			samples = append(samples, metrics.Sample{Name: name})
		}
	}
	p := &RuntimePoller{
		reg:      reg,
		interval: interval,
		samples:  samples,
		done:     make(chan struct{}),
	}
	p.wg.Add(1)
	go p.loop()
	return p
}

// Stop halts the poller and waits for its goroutine to exit. One final
// sample is taken first so short-lived processes still publish values.
func (p *RuntimePoller) Stop() {
	close(p.done)
	p.wg.Wait()
}

// loop is the poller goroutine: sample, sleep, repeat until Stop.
func (p *RuntimePoller) loop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	p.sample()
	for {
		select {
		case <-p.done:
			p.sample()
			return
		case <-ticker.C:
			p.sample()
		}
	}
}

// sample reads every available metric once and publishes it.
func (p *RuntimePoller) sample() {
	metrics.Read(p.samples)
	for i := range p.samples {
		s := &p.samples[i]
		switch s.Name {
		case metricGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				p.reg.Gauge("runtime.goroutines").Set(int64(s.Value.Uint64()))
			}
		case metricHeapLive:
			if s.Value.Kind() == metrics.KindUint64 {
				p.reg.Gauge("runtime.heap_live_bytes").Set(int64(s.Value.Uint64()))
			}
		case metricAllocBytes:
			if s.Value.Kind() == metrics.KindUint64 {
				p.reg.Counter("runtime.alloc_bytes_total").Set(s.Value.Uint64())
			}
		case metricGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				p.reg.Counter("runtime.gc_cycles").Set(s.Value.Uint64())
			}
		case metricGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				p.reg.Gauge("runtime.gc_pause_p50_ns").Set(histQuantileNanos(h, 0.50))
				p.reg.Gauge("runtime.gc_pause_p90_ns").Set(histQuantileNanos(h, 0.90))
				p.reg.Gauge("runtime.gc_pause_p99_ns").Set(histQuantileNanos(h, 0.99))
				p.reg.Gauge("runtime.gc_pause_max_ns").Set(histQuantileNanos(h, 1.0))
			}
		case metricSchedLat:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				p.reg.Gauge("runtime.sched_latency_p50_ns").Set(histQuantileNanos(h, 0.50))
				p.reg.Gauge("runtime.sched_latency_p99_ns").Set(histQuantileNanos(h, 0.99))
				p.reg.Gauge("runtime.sched_latency_max_ns").Set(histQuantileNanos(h, 1.0))
			}
		}
	}
}

// histQuantileNanos extracts quantile q from a runtime/metrics
// seconds-histogram, returned in nanoseconds. The value is the upper
// bound of the bucket containing the q-th observation (an infinite top
// bucket falls back to its lower bound), 0 for an empty histogram.
func histQuantileNanos(h *metrics.Float64Histogram, q float64) int64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			// Buckets[i], Buckets[i+1] bound bucket i; either edge may
			// be infinite.
			hi := h.Buckets[i+1]
			if !isInf(hi) {
				return int64(hi * 1e9)
			}
			lo := h.Buckets[i]
			if !isInf(lo) {
				return int64(lo * 1e9)
			}
			return 0
		}
	}
	return 0
}

// isInf reports whether f is ±Inf without importing math for one call.
func isInf(f float64) bool { return f > 1e308 || f < -1e308 }
