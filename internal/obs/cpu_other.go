//go:build !unix

package obs

// processCPUNanos is the non-unix fallback: no getrusage, so per-phase
// cpu_ns deltas read as 0 on these platforms. Alloc and GC deltas still
// work (they come from runtime/metrics).
func processCPUNanos() int64 { return 0 }
