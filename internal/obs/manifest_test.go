package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// sampleManifest builds a fully populated manifest like the cmds do.
func sampleManifest(t *testing.T) *Manifest {
	t.Helper()
	m := NewManifest("promoctl", 42)

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.String("graph", "", "host graph")
	fs.Int("p", 0, "size")
	if err := fs.Parse([]string{"-graph", "g.txt", "-p", "16"}); err != nil {
		t.Fatal(err)
	}
	m.CaptureFlags(fs)

	m.Dataset = &DatasetInfo{Name: "g.txt", N: 100, M: 250, Digest: "deadbeef"}
	m.Measure = "closeness"

	rec := NewRecorder(8)
	rec.record(&SpanRecord{Name: "promote/strategy-apply", Duration: 3 * time.Millisecond})
	rec.record(&SpanRecord{Name: "engine/compute/distance-sweep", Duration: 9 * time.Millisecond})
	m.CapturePhases(rec)

	m.Engine = &EngineStats{
		Hits: 7, Misses: 3, BFSRuns: 300, HitRate: 0.7,
		PerFamily: []EngineFamilyStats{{Family: "distance-sweep", Computes: 3, WallNanos: 9e6}},
	}
	m.CaptureMem()
	return m
}

func TestManifestRoundTripByteIdentical(t *testing.T) {
	m := sampleManifest(t)
	first, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip is not byte-identical:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

func TestManifestWriteFileValidates(t *testing.T) {
	m := sampleManifest(t)
	path := filepath.Join(t.TempDir(), "sub", "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateManifest(data); err != nil {
		t.Fatalf("written manifest does not validate: %v", err)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	m := NewManifest("", 1) // empty cmd is invalid
	if _, err := m.Encode(); err == nil {
		t.Fatal("Encode accepted a manifest with an empty cmd")
	}
}

func TestValidateManifestErrors(t *testing.T) {
	valid, err := sampleManifest(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(m map[string]json.RawMessage)) []byte {
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(valid, &raw); err != nil {
			t.Fatal(err)
		}
		f(raw)
		out, err := json.Marshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cases := map[string][]byte{
		"not json":        []byte("not json"),
		"array":           []byte("[1,2]"),
		"missing schema":  mutate(func(m map[string]json.RawMessage) { delete(m, "schema") }),
		"wrong schema":    mutate(func(m map[string]json.RawMessage) { m["schema"] = json.RawMessage(`"other/v9"`) }),
		"missing cmd":     mutate(func(m map[string]json.RawMessage) { delete(m, "cmd") }),
		"seed not number": mutate(func(m map[string]json.RawMessage) { m["seed"] = json.RawMessage(`"one"`) }),
		"flags not map":   mutate(func(m map[string]json.RawMessage) { m["flags"] = json.RawMessage(`[1]`) }),
		"dataset no name": mutate(func(m map[string]json.RawMessage) {
			m["dataset"] = json.RawMessage(`{"n":1,"m":1,"digest":"x","name":""}`)
		}),
		"phase unsorted": mutate(func(m map[string]json.RawMessage) {
			m["phases"] = json.RawMessage(`[{"name":"b","count":1,"wall_ns":1,"min_ns":1,"max_ns":1},{"name":"a","count":1,"wall_ns":1,"min_ns":1,"max_ns":1}]`)
		}),
		"phase empty name": mutate(func(m map[string]json.RawMessage) {
			m["phases"] = json.RawMessage(`[{"name":"","count":1,"wall_ns":1,"min_ns":1,"max_ns":1}]`)
		}),
		"family empty": mutate(func(m map[string]json.RawMessage) {
			m["engine_stats"] = json.RawMessage(`{"hits":1,"misses":1,"evictions":0,"bfs_runs":0,"brandes_runs":0,"hit_rate":0.5,"per_family":[{"family":"","computes":1,"wall_ns":1}]}`)
		}),
	}
	for name, data := range cases {
		if err := ValidateManifest(data); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
	if err := ValidateManifest(valid); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}

// TestValidateManifestGlobFromEnv validates every manifest matched by
// the MANIFEST_GLOB environment variable (space-separated glob
// patterns) — the hook the CI smoke step uses to check artifacts
// emitted by real promoctl/experiments runs. Without the variable the
// test is a no-op.
func TestValidateManifestGlobFromEnv(t *testing.T) {
	patterns := strings.Fields(os.Getenv("MANIFEST_GLOB"))
	if len(patterns) == 0 {
		t.Skip("MANIFEST_GLOB not set")
	}
	var paths []string
	for _, pattern := range patterns {
		matched, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, matched...)
	}
	if len(paths) == 0 {
		t.Fatalf("MANIFEST_GLOB %q matched no files", os.Getenv("MANIFEST_GLOB"))
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateManifest(data); err != nil {
			t.Errorf("%s: %v", path, err)
		}
		// The smoke gate also asserts determinism: a manifest must
		// round-trip byte-identically through its own schema types.
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			t.Errorf("%s: unmarshal: %v", path, err)
			continue
		}
		again, err := m.Encode()
		if err != nil {
			t.Errorf("%s: re-encode: %v", path, err)
			continue
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%s: not byte-identical after round trip", path)
		}
	}
}
