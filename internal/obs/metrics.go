package obs

import (
	"expvar"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing (except for explicit resets)
// lock-free metric. The zero value is ready to use.
type Counter struct{ v atomic.Uint64 }

// NewCounter returns a standalone counter, not attached to any
// registry. Use Registry.Counter for a published one.
func NewCounter() *Counter { return new(Counter) }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Set overwrites the counter — only for resets (engine.ResetStats).
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value. The zero value is ready to
// use.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count of a latency Histogram: bucket
// i counts observations in (2^(i-1), 2^i] microseconds, with bucket 0
// covering <= 1µs and the last bucket open-ended (~9 minutes up).
const histBuckets = 30

// Histogram is a lock-free latency histogram with fixed log-scale
// (powers of two of a microsecond) buckets. The zero value is ready to
// use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// histBucketIndex maps a duration to its bucket: the smallest i with
// d <= 2^i microseconds (ceil(log2), so labels are upper bounds).
func histBucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	i := bits.Len64(uint64(us - 1))
	if i > histBuckets-1 {
		i = histBuckets - 1
	}
	return i
}

// BucketLabel names bucket i as its inclusive upper bound, e.g. "8us";
// the last bucket is "+inf".
func BucketLabel(i int) string {
	if i >= histBuckets-1 {
		return "+inf"
	}
	us := int64(1) << i
	switch {
	case us >= 1e6:
		return itoa(us/1e6) + "s"
	case us >= 1e3:
		return itoa(us/1e3) + "ms"
	default:
		return itoa(us) + "us"
	}
}

// itoa is a tiny strconv.FormatInt(n, 10) for small positive values.
func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[histBucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	// Count is the number of observations; SumNanos their total.
	Count    uint64
	SumNanos int64
	// Buckets[i] counts observations in bucket i (see BucketLabel).
	Buckets [histBuckets]uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// vars renders the snapshot for the expvar JSON: count, sum, and the
// non-empty buckets keyed by their upper-bound label.
func (s HistogramSnapshot) vars() map[string]any {
	out := map[string]any{"count": s.Count, "sum_ns": s.SumNanos}
	buckets := map[string]uint64{}
	for i, n := range s.Buckets {
		if n > 0 {
			buckets["le_"+BucketLabel(i)] = n
		}
	}
	if len(buckets) > 0 {
		out["buckets"] = buckets
	}
	return out
}

// Registry is a named collection of metrics. Lookups are idempotent:
// asking for an existing name returns the existing metric, so callers
// can re-derive handles freely. A Registry snapshot is what the expvar
// integration publishes.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Snapshot renders every registered metric into a JSON-marshalable map:
// counters and gauges as numbers, histograms as {count, sum_ns,
// buckets} objects. encoding/json sorts the keys, so the rendering is
// deterministic.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot().vars()
	}
	return out
}

// Names returns the sorted names of all registered metrics.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var (
	defaultRegistryOnce sync.Once
	defaultRegistry     *Registry
)

// Default returns the process-wide metrics registry, publishing it (on
// first use) as the expvar variable "promonet" so /debug/vars carries
// every registered metric plus the span rollups of the current
// recorder. The Default engine registers its hit/miss/eviction and
// traversal counters here.
func Default() *Registry {
	defaultRegistryOnce.Do(func() {
		defaultRegistry = NewRegistry()
		expvar.Publish("promonet", expvar.Func(func() any {
			snap := defaultRegistry.Snapshot()
			if rec := CurrentRecorder(); rec != nil {
				spans := map[string]any{}
				for _, ru := range rec.Rollups() {
					spans[ru.Name] = map[string]any{
						"count":   ru.Count,
						"wall_ns": ru.WallNanos,
						"min_ns":  ru.MinNanos,
						"max_ns":  ru.MaxNanos,
						"hist":    ru.Hist.vars(),
					}
				}
				snap["spans"] = spans
			}
			return snap
		}))
	})
	return defaultRegistry
}
