package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one finished span as stored by a Recorder.
type SpanRecord struct {
	// Name is the span's taxonomy name, e.g. "promote/strategy-apply".
	Name string
	// ID is the process-unique span identifier; ParentID is the ID of
	// the enclosing span, or 0 for a root.
	ID, ParentID uint64
	// RootID is the ID of the outermost span of this span's tree (a
	// root span's RootID equals its ID); it groups records into trees
	// for the flight recorder and trace export.
	RootID uint64
	// Goroutine is the runtime id of the goroutine the span started on;
	// trace export uses it as the track (tid).
	Goroutine uint64
	// Start and Duration delimit the span's wall-clock extent.
	Start    time.Time
	Duration time.Duration
	// Attrs are the annotations set on the span, in insertion order.
	Attrs []Attr
}

// rollup aggregates every finished span of one name. All fields are
// atomics so concurrent Ends never contend on a lock.
type rollup struct {
	count atomic.Uint64
	wall  atomic.Int64 // nanoseconds
	min   atomic.Int64 // nanoseconds; math.MaxInt64 until first obs
	max   atomic.Int64 // nanoseconds
	hist  Histogram
}

// observe folds one duration into the rollup.
func (r *rollup) observe(d time.Duration) {
	ns := int64(d)
	r.count.Add(1)
	r.wall.Add(ns)
	for {
		cur := r.min.Load()
		if ns >= cur || r.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := r.max.Load()
		if ns <= cur || r.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	r.hist.Observe(d)
}

// Rollup is a point-in-time aggregate of every finished span sharing
// one name: the per-phase unit of run manifests and /debug/vars.
type Rollup struct {
	// Name is the span name the rollup aggregates.
	Name string
	// Count is the number of finished spans; WallNanos their summed
	// duration; MinNanos/MaxNanos the extremes.
	Count                         uint64
	WallNanos, MinNanos, MaxNanos int64
	// Hist is the log-scale latency distribution.
	Hist HistogramSnapshot
}

// Recorder collects finished spans: the most recent ones verbatim in a
// lock-free ring buffer (for inspection and tests) and all of them
// aggregated into per-name rollups. Create one with NewRecorder and
// install it with SetRecorder. All methods are safe for concurrent use.
type Recorder struct {
	ring   []atomic.Pointer[SpanRecord]
	cursor atomic.Uint64

	rollups sync.Map // string -> *rollup

	// flight, when non-nil, receives every record for tail-sampled
	// span-tree retention; phaseDeltas makes root spans carry
	// alloc/gc/cpu delta attributes.
	flight      atomic.Pointer[FlightRecorder]
	phaseDeltas atomic.Bool
}

// NewRecorder returns a recorder whose ring buffer keeps the most
// recent capacity spans (minimum 1; a non-power-of-two capacity is
// rounded up).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Recorder{ring: make([]atomic.Pointer[SpanRecord], size)}
}

// record stores one finished span: the ring slot is claimed with an
// atomic cursor increment and published with an atomic pointer store,
// so concurrent Ends never block each other (the oldest record is
// overwritten once the ring wraps).
func (r *Recorder) record(sr *SpanRecord) {
	slot := (r.cursor.Add(1) - 1) & uint64(len(r.ring)-1)
	r.ring[slot].Store(sr)

	v, ok := r.rollups.Load(sr.Name)
	if !ok {
		fresh := &rollup{}
		fresh.min.Store(math.MaxInt64)
		v, _ = r.rollups.LoadOrStore(sr.Name, fresh)
	}
	v.(*rollup).observe(sr.Duration)

	if f := r.flight.Load(); f != nil {
		f.record(sr)
	}
}

// AttachFlight wires a flight recorder to receive every finished span
// for tail-sampled tree retention. Passing nil detaches it.
func (r *Recorder) AttachFlight(f *FlightRecorder) {
	if f == nil {
		r.flight.Store(nil)
		return
	}
	r.flight.Store(f)
}

// Flight returns the attached flight recorder, or nil.
func (r *Recorder) Flight() *FlightRecorder { return r.flight.Load() }

// EnablePhaseDeltas toggles per-phase cost attribution: while on, every
// root span captures process alloc/GC/CPU baselines at Start and
// attaches the deltas as attributes at End. Child spans are unaffected,
// and the disabled-tracing fast path is untouched either way.
func (r *Recorder) EnablePhaseDeltas(on bool) { r.phaseDeltas.Store(on) }

// Records returns the spans currently held by the ring buffer, oldest
// first (among those still present). The returned records are shared —
// treat them as read-only.
func (r *Recorder) Records() []*SpanRecord {
	cur := r.cursor.Load()
	size := uint64(len(r.ring))
	out := make([]*SpanRecord, 0, size)
	start := uint64(0)
	if cur > size {
		start = cur - size
	}
	for i := start; i < cur; i++ {
		if sr := r.ring[i&(size-1)].Load(); sr != nil {
			out = append(out, sr)
		}
	}
	return out
}

// Rollups returns the per-name aggregates, sorted by span name.
func (r *Recorder) Rollups() []Rollup {
	var out []Rollup
	r.rollups.Range(func(k, v any) bool {
		ru := v.(*rollup)
		snap := Rollup{
			Name:      k.(string),
			Count:     ru.count.Load(),
			WallNanos: ru.wall.Load(),
			MinNanos:  ru.min.Load(),
			MaxNanos:  ru.max.Load(),
			Hist:      ru.hist.Snapshot(),
		}
		if snap.Count == 0 {
			return true
		}
		if snap.MinNanos == math.MaxInt64 {
			snap.MinNanos = 0
		}
		out = append(out, snap)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DiffRollups subtracts an earlier rollup snapshot from a later one of
// the same recorder, yielding the work done in between (the per-cell
// unit of the experiments manifests). Names present only in after are
// passed through; min/max are taken from after (they cannot be
// un-mixed). Histograms subtract bucket-wise.
func DiffRollups(before, after []Rollup) []Rollup {
	prev := make(map[string]Rollup, len(before))
	for _, b := range before {
		prev[b.Name] = b
	}
	var out []Rollup
	for _, a := range after {
		b, ok := prev[a.Name]
		if !ok {
			out = append(out, a)
			continue
		}
		d := Rollup{
			Name:      a.Name,
			Count:     a.Count - b.Count,
			WallNanos: a.WallNanos - b.WallNanos,
			MinNanos:  a.MinNanos,
			MaxNanos:  a.MaxNanos,
		}
		if d.Count == 0 {
			continue
		}
		d.Hist.Count = a.Hist.Count - b.Hist.Count
		d.Hist.SumNanos = a.Hist.SumNanos - b.Hist.SumNanos
		for i := range d.Hist.Buckets {
			d.Hist.Buckets[i] = a.Hist.Buckets[i] - b.Hist.Buckets[i]
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
