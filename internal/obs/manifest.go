package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
)

// ManifestSchema identifies the manifest JSON layout; bump it when the
// structure changes incompatibly.
const ManifestSchema = "promonet/manifest/v1"

// Manifest is the machine-readable provenance record of one run (or one
// experiment cell): everything needed to attribute and reproduce a
// measurement — seed, flags, dataset digest, toolchain — plus the
// per-phase span rollups, engine counters, and memory peaks observed.
//
// Encoding is deterministic: struct fields marshal in declaration
// order, maps sort by key (encoding/json), and phases are sorted by
// name, so a manifest round-trips through Encode/Unmarshal
// byte-identically.
type Manifest struct {
	// Schema is always ManifestSchema.
	Schema string `json:"schema"`
	// Cmd names the producing command ("promoctl", "experiments").
	Cmd string `json:"cmd"`
	// GoVersion is runtime.Version() of the producing binary.
	GoVersion string `json:"go_version"`
	// Seed is the master random seed of the run.
	Seed int64 `json:"seed"`
	// Flags records the full flag surface of the run, name -> rendered
	// value (defaults included, so absence of a flag is distinguishable
	// from its default).
	Flags map[string]string `json:"flags,omitempty"`
	// Dataset identifies the host graph scored in this run/cell.
	Dataset *DatasetInfo `json:"dataset,omitempty"`
	// Measure is the centrality measure of this cell, when the manifest
	// covers a single measure.
	Measure string `json:"measure,omitempty"`
	// Phases are the span rollups of the run, sorted by span name.
	Phases []PhaseRollup `json:"phases,omitempty"`
	// Engine is the execution-engine counter snapshot (or delta, for
	// per-cell manifests).
	Engine *EngineStats `json:"engine_stats,omitempty"`
	// Mem is the runtime memory snapshot taken at capture time.
	Mem *MemSnapshot `json:"mem,omitempty"`
}

// DatasetInfo identifies a host graph by name, size, and content
// digest (graph.Digest — SHA-256 of the canonical edge list).
type DatasetInfo struct {
	// Name is the dataset's short name or source filename.
	Name string `json:"name"`
	// N and M are node and edge counts.
	N int `json:"n"`
	M int `json:"m"`
	// Digest is the hex content digest of the graph structure.
	Digest string `json:"digest"`
}

// PhaseRollup is one span name's aggregate in a manifest.
type PhaseRollup struct {
	// Name is the span name, e.g. "engine/compute/betweenness".
	Name string `json:"name"`
	// Count is the number of finished spans.
	Count uint64 `json:"count"`
	// WallNanos, MinNanos, and MaxNanos summarize the durations.
	WallNanos int64 `json:"wall_ns"`
	MinNanos  int64 `json:"min_ns"`
	MaxNanos  int64 `json:"max_ns"`
}

// EngineStats mirrors engine.Stats for manifests and promoctl -json
// output (obs cannot import internal/engine — the engine instruments
// itself through obs).
type EngineStats struct {
	// Hits, Misses, and Evictions are the memo-table counters.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// BFSRuns and BrandesRuns count single-source traversals executed.
	BFSRuns     uint64 `json:"bfs_runs"`
	BrandesRuns uint64 `json:"brandes_runs"`
	// DeltaHits and DeltaFallbacks count candidate edges priced by the
	// incremental delta scorer versus sent to a full recomputation.
	DeltaHits      uint64 `json:"delta_hits,omitempty"`
	DeltaFallbacks uint64 `json:"delta_fallbacks,omitempty"`
	// HitRate is Hits/(Hits+Misses), 0 when idle.
	HitRate float64 `json:"hit_rate"`
	// PerFamily breaks cache-missed work down by compute family.
	PerFamily []EngineFamilyStats `json:"per_family,omitempty"`
}

// EngineFamilyStats is one compute family's share of engine work.
type EngineFamilyStats struct {
	// Family names the compute family, e.g. "distance-sweep".
	Family string `json:"family"`
	// Computes counts cache-missed computations; WallNanos their total
	// wall clock.
	Computes  uint64 `json:"computes"`
	WallNanos int64  `json:"wall_ns"`
}

// MemSnapshot is the subset of runtime.MemStats a manifest records.
type MemSnapshot struct {
	// HeapAllocBytes and HeapSysBytes describe the live heap at capture
	// time; TotalAllocBytes is cumulative.
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64 `json:"heap_sys_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// Mallocs and NumGC are cumulative allocation and GC-cycle counts.
	Mallocs uint64 `json:"mallocs"`
	NumGC   uint32 `json:"num_gc"`
}

// NewManifest returns a manifest stamped with the schema, command name,
// seed, and toolchain version.
func NewManifest(cmd string, seed int64) *Manifest {
	return &Manifest{Schema: ManifestSchema, Cmd: cmd, GoVersion: runtime.Version(), Seed: seed}
}

// CaptureFlags records the full flag surface of fs (every defined flag
// with its effective value). Call after fs.Parse.
func (m *Manifest) CaptureFlags(fs *flag.FlagSet) {
	m.Flags = make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) { m.Flags[f.Name] = f.Value.String() })
}

// CapturePhases copies r's span rollups into the manifest (sorted by
// name). A nil recorder leaves Phases empty.
func (m *Manifest) CapturePhases(r *Recorder) {
	if r == nil {
		return
	}
	m.SetPhases(r.Rollups())
}

// SetPhases records the given rollups (already sorted by Rollups or
// DiffRollups) as the manifest's phases.
func (m *Manifest) SetPhases(rollups []Rollup) {
	m.Phases = m.Phases[:0]
	for _, ru := range rollups {
		m.Phases = append(m.Phases, PhaseRollup{
			Name:      ru.Name,
			Count:     ru.Count,
			WallNanos: ru.WallNanos,
			MinNanos:  ru.MinNanos,
			MaxNanos:  ru.MaxNanos,
		})
	}
}

// CaptureMem snapshots runtime.MemStats into the manifest.
func (m *Manifest) CaptureMem() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.Mem = &MemSnapshot{
		HeapAllocBytes:  ms.HeapAlloc,
		HeapSysBytes:    ms.HeapSys,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		NumGC:           ms.NumGC,
	}
}

// Encode renders the manifest as deterministic, schema-valid, indented
// JSON with a trailing newline. It fails if the manifest would not
// validate — a manifest that cannot be consumed must not be written.
func (m *Manifest) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := ValidateManifest(data); err != nil {
		return nil, fmt.Errorf("obs: refusing to encode invalid manifest: %w", err)
	}
	return data, nil
}

// WriteFile encodes the manifest and writes it to path, creating parent
// directories as needed.
func (m *Manifest) WriteFile(path string) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

// ValidateManifest checks data against the manifest schema: required
// fields present with the right JSON types, the schema tag matching
// ManifestSchema, and every phase/family entry well-formed. It is the
// validation the CI smoke step runs on emitted manifests.
func ValidateManifest(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("manifest: not a JSON object: %w", err)
	}
	var schema string
	if err := fieldAs(raw, "schema", &schema); err != nil {
		return err
	}
	if schema != ManifestSchema {
		return fmt.Errorf("manifest: schema %q, want %q", schema, ManifestSchema)
	}
	var s string
	if err := fieldAs(raw, "cmd", &s); err != nil {
		return err
	}
	if s == "" {
		return fmt.Errorf("manifest: empty cmd")
	}
	if err := fieldAs(raw, "go_version", &s); err != nil {
		return err
	}
	var seed float64
	if err := fieldAs(raw, "seed", &seed); err != nil {
		return err
	}
	if msg, ok := raw["flags"]; ok {
		var flags map[string]string
		if err := json.Unmarshal(msg, &flags); err != nil {
			return fmt.Errorf("manifest: flags: %w", err)
		}
	}
	if msg, ok := raw["dataset"]; ok {
		var d DatasetInfo
		if err := json.Unmarshal(msg, &d); err != nil {
			return fmt.Errorf("manifest: dataset: %w", err)
		}
		if d.Name == "" || d.Digest == "" {
			return fmt.Errorf("manifest: dataset needs name and digest")
		}
		if d.N < 0 || d.M < 0 {
			return fmt.Errorf("manifest: dataset has negative size")
		}
	}
	if msg, ok := raw["phases"]; ok {
		var phases []PhaseRollup
		if err := json.Unmarshal(msg, &phases); err != nil {
			return fmt.Errorf("manifest: phases: %w", err)
		}
		for i, p := range phases {
			if p.Name == "" {
				return fmt.Errorf("manifest: phases[%d]: empty name", i)
			}
			if i > 0 && phases[i-1].Name >= p.Name {
				return fmt.Errorf("manifest: phases not sorted by name at %q", p.Name)
			}
		}
	}
	if msg, ok := raw["engine_stats"]; ok {
		var es EngineStats
		if err := json.Unmarshal(msg, &es); err != nil {
			return fmt.Errorf("manifest: engine_stats: %w", err)
		}
		for i, f := range es.PerFamily {
			if f.Family == "" {
				return fmt.Errorf("manifest: engine_stats.per_family[%d]: empty family", i)
			}
		}
	}
	if msg, ok := raw["mem"]; ok {
		var mem MemSnapshot
		if err := json.Unmarshal(msg, &mem); err != nil {
			return fmt.Errorf("manifest: mem: %w", err)
		}
	}
	return nil
}

// fieldAs unmarshals the named required field into out.
func fieldAs(raw map[string]json.RawMessage, name string, out any) error {
	msg, ok := raw[name]
	if !ok {
		return fmt.Errorf("manifest: missing required field %q", name)
	}
	if err := json.Unmarshal(msg, out); err != nil {
		return fmt.Errorf("manifest: field %q: %w", name, err)
	}
	return nil
}
