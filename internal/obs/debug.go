package obs

import (
	"bytes"
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves the standard Go debug endpoints — /debug/vars
// (expvar, including the "promonet" metrics registry) and /debug/pprof
// (heap, profile, trace, ...) — on its own mux, so enabling it never
// touches http.DefaultServeMux. Start one with StartDebugServer.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// DebugMux returns a fresh mux wired with /debug/vars, /debug/trace
// (the span-trace export), and the /debug/pprof handler family.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/trace", handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// exportTraceFn builds the trace_event JSON for handleTrace. It is a
// seam (not a contract): tests swap in a failing exporter to pin the
// handler's buffered error path, which streaming straight to the
// ResponseWriter made untestable — and, worse, made mid-stream failures
// ship as truncated 200 bodies that promotrace -check then rejected.
var exportTraceFn = ExportTrace

// handleTrace serves the current span trace as trace_event JSON: the
// flight recorder's retained trees when one is attached and non-empty,
// otherwise the ring buffer's recent spans (see TraceRecords). 503 when
// tracing is disabled, 500 when the export fails. The export is staged
// through a buffer so the 200 status is only ever sent with a complete
// body: scrapers either get valid JSON (it loads directly in Perfetto
// and in cmd/promotrace) or an unambiguous error status, never a
// truncated-but-200 response.
func handleTrace(w http.ResponseWriter, _ *http.Request) {
	rec := CurrentRecorder()
	if rec == nil {
		http.Error(w, "tracing disabled: no recorder installed", http.StatusServiceUnavailable)
		return
	}
	var buf bytes.Buffer
	if err := exportTraceFn(&buf, TraceRecords(rec)); err != nil {
		http.Error(w, "trace export failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

// StartDebugServer listens on addr (host:port; an empty port picks a
// free one) and serves the debug endpoints until Close. It also forces
// creation of the Default registry so the "promonet" expvar variable is
// present from the first request.
func StartDebugServer(addr string) (*DebugServer, error) {
	Default()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugMux(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the server's actual listen address (resolving a
// requested :0 port).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// debugShutdownTimeout bounds how long Close waits for in-flight
// scrapes (a /debug/pprof/profile run, a /debug/trace export) before
// cutting connections. Long enough for any realistic scrape of the
// endpoints, short enough that a hung client cannot wedge shutdown.
const debugShutdownTimeout = 5 * time.Second

// Close stops the server gracefully: it stops accepting connections and
// waits up to debugShutdownTimeout for in-flight requests — a live
// profile scrape, a trace export — to complete, then falls back to
// hard-closing whatever remains. The previous abrupt srv.Close raced
// smoke.sh's scrapes, truncating responses mid-body.
func (d *DebugServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), debugShutdownTimeout)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		// Drain timed out (or the context died): cut the stragglers.
		return d.srv.Close()
	}
	return nil
}
