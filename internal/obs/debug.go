package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves the standard Go debug endpoints — /debug/vars
// (expvar, including the "promonet" metrics registry) and /debug/pprof
// (heap, profile, trace, ...) — on its own mux, so enabling it never
// touches http.DefaultServeMux. Start one with StartDebugServer.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// DebugMux returns a fresh mux wired with /debug/vars, /debug/trace
// (the span-trace export), and the /debug/pprof handler family.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/trace", handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleTrace serves the current span trace as trace_event JSON: the
// flight recorder's retained trees when one is attached and non-empty,
// otherwise the ring buffer's recent spans (see TraceRecords). 503 when
// tracing is disabled. The response loads directly in Perfetto and in
// cmd/promotrace.
func handleTrace(w http.ResponseWriter, _ *http.Request) {
	rec := CurrentRecorder()
	if rec == nil {
		http.Error(w, "tracing disabled: no recorder installed", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := ExportTrace(w, TraceRecords(rec)); err != nil {
		// Headers are gone; all we can do is log-free best effort.
		return
	}
}

// StartDebugServer listens on addr (host:port; an empty port picks a
// free one) and serves the debug endpoints until Close. It also forces
// creation of the Default registry so the "promonet" expvar variable is
// present from the first request.
func StartDebugServer(addr string) (*DebugServer, error) {
	Default()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugMux(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the server's actual listen address (resolving a
// requested :0 port).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server and releases the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
