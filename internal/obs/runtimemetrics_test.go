package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestPhaseDeltaAttrsOnRootSpansOnly(t *testing.T) {
	rec := withRecorder(t, 16)
	rec.EnablePhaseDeltas(true)

	ctx, root := Start(context.Background(), "promote")
	_, child := Start(ctx, "promote/child")
	sink := make([]byte, 1<<16) // some allocation for the deltas to see
	_ = sink
	child.End()
	root.End()

	records := rec.Records()
	if len(records) != 2 {
		t.Fatalf("got %d records", len(records))
	}
	attrKeys := func(sr *SpanRecord) map[string]string {
		out := map[string]string{}
		for _, a := range sr.Attrs {
			out[a.Key] = a.Value
		}
		return out
	}
	childAttrs, rootAttrs := attrKeys(records[0]), attrKeys(records[1])
	for _, key := range []string{"alloc_bytes", "gc_cycles", "cpu_ns"} {
		if _, ok := rootAttrs[key]; !ok {
			t.Errorf("root span missing delta attr %q: %v", key, rootAttrs)
		}
		if _, ok := childAttrs[key]; ok {
			t.Errorf("child span carries delta attr %q, want roots only", key)
		}
	}

	// Deltas off: next root is clean again.
	rec.EnablePhaseDeltas(false)
	_, sp := Start(context.Background(), "quiet")
	sp.End()
	records = rec.Records()
	if got := len(records[2].Attrs); got != 0 {
		t.Errorf("root with deltas off has %d attrs, want 0", got)
	}
}

func TestRuntimePollerPublishes(t *testing.T) {
	reg := NewRegistry()
	p := StartRuntimePoller(reg, time.Hour) // interval irrelevant: Stop forces a final sample
	p.Stop()

	if g := reg.Gauge("runtime.goroutines").Value(); g < 1 {
		t.Errorf("runtime.goroutines = %d, want >= 1", g)
	}
	if g := reg.Gauge("runtime.heap_live_bytes").Value(); g <= 0 {
		t.Errorf("runtime.heap_live_bytes = %d, want > 0", g)
	}
	if c := reg.Counter("runtime.alloc_bytes_total").Value(); c == 0 {
		t.Error("runtime.alloc_bytes_total = 0, want > 0")
	}
	var published int
	for _, name := range reg.Names() {
		if strings.HasPrefix(name, "runtime.") {
			published++
		}
	}
	// 4 scalar metrics + 4 GC-pause quantiles + 3 sched-latency
	// quantiles, minus any runtime/metrics names absent in this Go
	// release (availability-gated, so >= the scalar floor).
	if published < 4 {
		t.Errorf("only %d runtime.* metrics published: %v", published, reg.Names())
	}
}

func TestTakePhaseSnapMonotonic(t *testing.T) {
	before := takePhaseSnap()
	buf := make([]byte, 1<<20)
	_ = buf
	after := takePhaseSnap()
	if after.allocBytes < before.allocBytes {
		t.Errorf("allocBytes went backwards: %d -> %d", before.allocBytes, after.allocBytes)
	}
	if after.cpuNanos < before.cpuNanos {
		t.Errorf("cpuNanos went backwards: %d -> %d", before.cpuNanos, after.cpuNanos)
	}
}
