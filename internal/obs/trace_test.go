package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceExportRoundTrip(t *testing.T) {
	rec := withRecorder(t, 16)
	ctx, root := Start(context.Background(), "promote")
	root.Int("n", 9)
	_, child := Start(ctx, "promote/score-before")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := ExportTrace(&buf, rec.Records()); err != nil {
		t.Fatal(err)
	}
	spans, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace fails own validator: %v", err)
	}
	if spans != 2 {
		t.Fatalf("validator counted %d spans, want 2", spans)
	}

	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	if tf.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	if len(tf.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3 (1 M + 2 X)", len(tf.TraceEvents))
	}
	meta := tf.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "process_name" || meta.Args.Label != "promonet" {
		t.Errorf("metadata event = %+v", meta)
	}

	// Records land child-first in the ring; events are sorted by start,
	// so the root comes first.
	records := rec.Records()
	byID := map[uint64]*SpanRecord{}
	for _, r := range records {
		byID[r.ID] = r
	}
	var rootEv, childEv *TraceEvent
	for i := range tf.TraceEvents[1:] {
		ev := &tf.TraceEvents[1+i]
		switch ev.Name {
		case "promote":
			rootEv = ev
		case "promote/score-before":
			childEv = ev
		}
	}
	if rootEv == nil || childEv == nil {
		t.Fatalf("missing span events: %+v", tf.TraceEvents)
	}
	if rootEv.Ph != "X" || childEv.Ph != "X" {
		t.Errorf("span phases = %q, %q, want X", rootEv.Ph, childEv.Ph)
	}
	r := byID[rootEv.Args.SpanID]
	if r == nil {
		t.Fatalf("root event span_id %d matches no record", rootEv.Args.SpanID)
	}
	if rootEv.Args.StartNs != r.Start.UnixNano() || rootEv.Args.DurNs != int64(r.Duration) {
		t.Errorf("root ns fields = %d/%d, want %d/%d",
			rootEv.Args.StartNs, rootEv.Args.DurNs, r.Start.UnixNano(), int64(r.Duration))
	}
	if rootEv.Tid != int64(r.Goroutine) || rootEv.Args.Goroutine != r.Goroutine {
		t.Errorf("root tid = %d, goroutine arg = %d, record %d", rootEv.Tid, rootEv.Args.Goroutine, r.Goroutine)
	}
	if childEv.Args.ParentID != rootEv.Args.SpanID {
		t.Errorf("child parent_id = %d, want %d", childEv.Args.ParentID, rootEv.Args.SpanID)
	}
	if childEv.Args.RootID != rootEv.Args.SpanID || rootEv.Args.RootID != rootEv.Args.SpanID {
		t.Errorf("root ids: child %d root %d, want both %d",
			childEv.Args.RootID, rootEv.Args.RootID, rootEv.Args.SpanID)
	}
	if rootEv.Args.Attrs["n"] != "9" {
		t.Errorf("root attrs = %v", rootEv.Args.Attrs)
	}
}

func TestTraceExportDeterministic(t *testing.T) {
	rec := withRecorder(t, 16)
	ctx, root := Start(context.Background(), "a")
	_, c := Start(ctx, "b")
	c.End()
	root.End()

	var one, two bytes.Buffer
	if err := ExportTrace(&one, rec.Records()); err != nil {
		t.Fatal(err)
	}
	if err := ExportTrace(&two, rec.Records()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Error("two exports of the same records differ")
	}
}

func TestValidateTraceRejects(t *testing.T) {
	base := time.Unix(1700000000, 0)
	mk := func(mutate func(*TraceFile)) []byte {
		tf := BuildTrace([]*SpanRecord{
			{Name: "s", ID: 1, RootID: 1, Goroutine: 7, Start: base, Duration: time.Millisecond},
		})
		mutate(tf)
		data, err := json.Marshal(tf)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name   string
		mutate func(*TraceFile)
		substr string
	}{
		{"clean", func(*TraceFile) {}, ""},
		{"unit", func(tf *TraceFile) { tf.DisplayTimeUnit = "ms" }, "displayTimeUnit"},
		{"phase", func(tf *TraceFile) { tf.TraceEvents[1].Ph = "B" }, "phase"},
		{"noname", func(tf *TraceFile) { tf.TraceEvents[1].Name = "" }, "no name"},
		{"noargs", func(tf *TraceFile) { tf.TraceEvents[1].Args = nil }, "no args"},
		{"nospanid", func(tf *TraceFile) { tf.TraceEvents[1].Args.SpanID = 0 }, "span_id"},
		{"dup", func(tf *TraceFile) {
			tf.TraceEvents = append(tf.TraceEvents, tf.TraceEvents[1])
		}, "duplicate span_id"},
		{"negdur", func(tf *TraceFile) { tf.TraceEvents[1].Args.DurNs = -1 }, "negative"},
	}
	for _, tc := range cases {
		_, err := ValidateTrace(mk(tc.mutate))
		if tc.substr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.substr)
		}
	}
}

// TestTraceRecordsPrefersFlight: with a flight recorder holding a
// retained tree, trace dumps use it; without one (or empty), they fall
// back to the ring.
func TestTraceRecordsPrefersFlight(t *testing.T) {
	rec := withRecorder(t, 16)
	_, sp := Start(context.Background(), "ring-only")
	sp.End()
	if got := TraceRecords(rec); len(got) != 1 || got[0].Name != "ring-only" {
		t.Fatalf("without flight: %d records", len(got))
	}

	rec.AttachFlight(NewFlightRecorder(FlightConfig{TopK: 2}))
	if got := TraceRecords(rec); len(got) != 1 {
		t.Fatalf("with empty flight: %d records, want ring fallback", len(got))
	}
	_, sp2 := Start(context.Background(), "flown")
	sp2.End()
	got := TraceRecords(rec)
	if len(got) != 1 || got[0].Name != "flown" {
		t.Fatalf("with retained tree: %v", got)
	}
}

// BenchmarkTraceExport prices serializing a full ring (the BENCH_9
// trace-export number).
func BenchmarkTraceExport(b *testing.B) {
	rec := NewRecorder(4096)
	base := time.Unix(1700000000, 0)
	for i := 0; i < 4096; i++ {
		rec.record(&SpanRecord{
			Name:      "bench/span",
			ID:        uint64(i + 1),
			RootID:    uint64(i + 1),
			Goroutine: 1,
			Start:     base.Add(time.Duration(i) * time.Microsecond),
			Duration:  time.Microsecond,
			Attrs:     []Attr{{Key: "n", Value: "42"}},
		})
	}
	records := rec.Records()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := ExportTrace(&buf, records); err != nil {
			b.Fatal(err)
		}
	}
}
