// Package greedy implements the structure-aware baseline the paper
// compares against in Section VII-C: the greedy edge-addition algorithm
// of Bergamini et al. [18] for improving a target node's betweenness
// score. Unlike the black-box strategies of internal/core, Greedy
// requires full knowledge of the network structure — it evaluates the
// betweenness gain of every candidate edge each round.
package greedy

import (
	"context"
	"fmt"
	"math/rand"

	"promonet/internal/centrality"
	"promonet/internal/engine"
	"promonet/internal/graph"
	"promonet/internal/graph/csr"
	"promonet/internal/obs"
)

// Options configures the baseline.
//
// Tie-breaking contract: every baseline in this package evaluates its
// candidates in increasing node-id order and replaces the incumbent
// only on a strict improvement, so among equally-scoring candidates the
// lowest-numbered node always wins. The contract holds under
// CandidateSample too — the sampled set is re-sorted before evaluation
// — making runs with equal sampled sets bitwise reproducible.
type Options struct {
	// Counting is the betweenness pair convention (must match whatever
	// the black-box side uses when comparing).
	Counting centrality.PairCounting
	// CandidateSample, when > 0, evaluates only that many uniformly
	// sampled non-neighbor candidates per round instead of all of them.
	// This only weakens the baseline and is off (0 = exhaustive) for
	// the paper-comparison experiments; it exists to keep the baseline
	// usable on large hosts. The sample is evaluated in increasing
	// node-id order, preserving the lowest-id tie-break.
	CandidateSample int
	// PivotSources, when > 0, estimates betweenness from that many BFS
	// pivots (Brandes–Pich) instead of exactly. 0 means exact.
	PivotSources int
	// Rand supplies randomness for sampling; required when
	// CandidateSample or PivotSources is set.
	Rand *rand.Rand
}

// Result reports one Greedy run.
type Result struct {
	// Edges are the b selected edges (v, t) in selection order.
	Edges [][2]int
	// ScorePerRound[i] is BC(t) after inserting i+1 edges.
	ScorePerRound []float64
	// AfterPerRound[i] is the full betweenness vector after inserting
	// i+1 edges — what the comparison experiments (Figs. 8–9) need to
	// rank the target at every budget.
	AfterPerRound [][]float64
	// Before and After are the full betweenness vectors on G and the
	// final G′ (same node set — Greedy adds no nodes).
	Before, After []float64
}

// Improve runs the greedy algorithm: b rounds, each inserting the edge
// (v, t) with v ∉ N(t) that maximizes the betweenness improvement
// Δ_C(t | v) of the target (ties broken toward the lowest-id candidate;
// see Options). The input graph is not modified; the updated graph is
// returned alongside the result.
//
// Candidate pricing goes through the engine's incremental delta scorer
// (engine.EvaluateEdgeBatch): the base Brandes structures are computed
// once per round and each candidate is priced by restricted
// re-accumulation over the sources its edge can actually affect. The
// pivot-sampled path (PivotSources > 0) keeps the classic
// mutate-score-revert loop, because its per-probe pivot resample must
// draw from the caller's advancing Options.Rand.
//
// The working graph is a CSR overlay over a one-time frozen snapshot of
// g (graph/csr): each round's winning edge touches two overlay rows
// instead of cloning the host, so b rounds cost O(b) row copies rather
// than O(n + m) up front.
func Improve(g *graph.Graph, target, budget int, opts Options) (*graph.Graph, *Result, error) {
	if target < 0 || target >= g.N() {
		return nil, nil, fmt.Errorf("greedy: target %d outside [0, %d)", target, g.N())
	}
	if budget < 1 {
		return nil, nil, fmt.Errorf("greedy: budget %d, want >= 1", budget)
	}
	if (opts.CandidateSample > 0 || opts.PivotSources > 0) && opts.Rand == nil {
		return nil, nil, fmt.Errorf("greedy: sampling options require Options.Rand")
	}

	ctx, root := obs.Start(context.Background(), "greedy/improve")
	root.Int("target", target)
	root.Int("budget", budget)
	root.Int("n", g.N())
	root.Int("m", g.M())
	defer root.End()

	work := csr.NewOverlay(csr.Freeze(g))
	res := &Result{Before: scores(g, opts)}

	for round := 0; round < budget; round++ {
		_, sp := obs.Start(ctx, "greedy/round")
		sp.Int("round", round)
		// Each round is hundreds of mutate-score-revert probes; the
		// engine-side traversal deltas attribute their true cost. Only
		// snapshot stats when a recorder is live — Stats() walks the
		// family table and allocates.
		var statsBefore engine.Stats
		traced := obs.Enabled()
		if traced {
			statsBefore = engine.Default().Stats()
		}
		cands := candidates(work, target, opts)
		sp.Int("candidates", len(cands))
		if len(cands) == 0 {
			sp.End()
			break // target already adjacent to everyone
		}
		bestV, bestScore := -1, 0.0
		var bestVector []float64
		if opts.PivotSources > 0 && opts.PivotSources < work.N() {
			// Pivot resampling draws fresh pivots per probe from the
			// caller's advancing rng, so this path keeps the classic
			// mutate-score-revert loop.
			for _, v := range cands {
				work.AddEdge(target, v)
				vec := scores(work, opts)
				work.RemoveEdge(target, v)
				if s := vec[target]; bestV == -1 || s > bestScore {
					bestV, bestScore, bestVector = v, s, vec
				}
			}
			work.AddEdge(target, bestV)
		} else {
			// Delta path: one batch call prices every candidate without
			// mutating work; only the winner's graph is scored in full
			// (AfterPerRound needs the whole vector anyway).
			gains := engine.Default().EvaluateEdgeBatch(work, target, cands, engine.Betweenness(opts.Counting))
			bestV, bestScore = cands[0], gains[0]
			for i := 1; i < len(gains); i++ {
				if gains[i] > bestScore {
					bestV, bestScore = cands[i], gains[i]
				}
			}
			work.AddEdge(target, bestV)
			bestVector = scores(work, opts)
			bestScore = bestVector[target]
		}
		res.Edges = append(res.Edges, [2]int{bestV, target})
		res.ScorePerRound = append(res.ScorePerRound, bestScore)
		res.AfterPerRound = append(res.AfterPerRound, bestVector)
		if traced {
			d := engine.Default().Stats().Delta(statsBefore)
			sp.Int64("bfs_runs", int64(d.BFSRuns))
			sp.Int64("brandes_runs", int64(d.BrandesRuns))
		}
		sp.End()
	}
	if len(res.AfterPerRound) > 0 {
		res.After = res.AfterPerRound[len(res.AfterPerRound)-1]
	} else {
		res.After = scores(work, opts)
	}
	return work.Materialize(), res, nil
}

// candidates returns the nodes not adjacent to target (and not target
// itself) in increasing id order, optionally subsampled. The order is
// what makes the lowest-id tie-break of Options hold.
func candidates(g graph.View, target int, opts Options) []int {
	return nonNeighbors(g, target, opts.CandidateSample, opts.Rand)
}

// scores evaluates the betweenness vector of one candidate graph. The
// exact path goes through the shared execution engine: greedy rounds
// re-score hundreds of mutate-evaluate-revert variants, and reverted
// graphs hit the engine's content-addressed memo table instead of
// recomputing. The pivot-sampled path must keep drawing from the
// caller's advancing opts.Rand (each round re-samples pivots), so it
// stays on the direct function.
func scores(g graph.View, opts Options) []float64 {
	if opts.PivotSources > 0 && opts.PivotSources < g.N() {
		//promolint:allow engine-bypass -- pivots must come from the caller's advancing opts.Rand; the engine's seeded-pivot measure would freeze the per-round resample
		return centrality.BetweennessSampled(g, opts.Counting, opts.PivotSources, opts.Rand)
	}
	return engine.Default().Scores(g, engine.Betweenness(opts.Counting))
}
