package greedy

import (
	"math/rand"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/datasets"
	"promonet/internal/gen"
)

func TestImproveClosenessReducesFarness(t *testing.T) {
	g := datasets.Fig1()
	g2, res, err := ImproveCloseness(g, datasets.V10, 2, ClosenessOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M()+2 {
		t.Fatalf("added %d edges, want 2", g2.M()-g.M())
	}
	if res.AfterFarness[datasets.V10] >= res.BeforeFarness[datasets.V10] {
		t.Errorf("farness did not drop: %d -> %d",
			res.BeforeFarness[datasets.V10], res.AfterFarness[datasets.V10])
	}
	// The per-round farness must be consistent with a real recompute.
	wantFinal := centrality.Farness(g2)[datasets.V10]
	got := res.FarnessPerRound[len(res.FarnessPerRound)-1]
	if got != wantFinal {
		t.Errorf("incremental farness %d != recomputed %d", got, wantFinal)
	}
	// Per-round farness is non-increasing (more edges never hurt
	// closeness).
	for i := 1; i < len(res.FarnessPerRound); i++ {
		if res.FarnessPerRound[i] > res.FarnessPerRound[i-1] {
			t.Errorf("farness rose between rounds: %v", res.FarnessPerRound)
		}
	}
}

func TestImproveClosenessOptimalFirstPick(t *testing.T) {
	// On a path, the best single edge for an endpoint is to the node
	// minimizing the merged distance sum; verify against brute force.
	g := gen.Path(9)
	_, res, err := ImproveCloseness(g, 0, 1, ClosenessOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bestFar, bestV := int64(1<<62), -1
	for v := 2; v < 9; v++ { // v=1 is already a neighbor
		h := g.Clone()
		h.AddEdge(0, v)
		if far := centrality.Farness(h)[0]; far < bestFar {
			bestFar, bestV = far, v
		}
	}
	if res.Edges[0][0] != bestV {
		t.Errorf("greedy picked %d (farness %d), brute force says %d (farness %d)",
			res.Edges[0][0], res.FarnessPerRound[0], bestV, bestFar)
	}
	if res.FarnessPerRound[0] != bestFar {
		t.Errorf("greedy farness %d, brute force %d", res.FarnessPerRound[0], bestFar)
	}
}

func TestImproveClosenessErrors(t *testing.T) {
	g := gen.Path(4)
	if _, _, err := ImproveCloseness(g, 11, 1, ClosenessOptions{}); err == nil {
		t.Error("bad target accepted")
	}
	if _, _, err := ImproveCloseness(g, 1, 0, ClosenessOptions{}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, _, err := ImproveCloseness(g, 1, 1, ClosenessOptions{CandidateSample: 2}); err == nil {
		t.Error("sampling without Rand accepted")
	}
}

func TestImproveClosenessClique(t *testing.T) {
	g := gen.Clique(5)
	g2, res, err := ImproveCloseness(g, 0, 3, ClosenessOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 0 || g2.M() != g.M() {
		t.Error("edges added inside a clique")
	}
}

func TestImproveClosenessWithSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := gen.BarabasiAlbert(rng, 150, 2)
	_, res, err := ImproveCloseness(g, 9, 2, ClosenessOptions{CandidateSample: 10, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 2 {
		t.Fatalf("selected %d edges, want 2", len(res.Edges))
	}
}
