package greedy

import (
	"context"
	"fmt"

	"promonet/internal/engine"
	"promonet/internal/graph"
	"promonet/internal/obs"
)

// ImproveCoreness is the structure-aware counterpart for coreness, in
// the spirit of the k-core edge-addition problems of Chitnis and Talmon
// [19]: add b edges incident to the target to maximize its coreness.
// Each round greedily picks the edge (t, v) with the largest resulting
// RC(t), breaking ties toward candidates inside deeper cores (which are
// the useful ones: a node's coreness can only grow by connecting to
// nodes of coreness above its own).
func ImproveCoreness(g *graph.Graph, target, budget int, opts ClosenessOptions) (*graph.Graph, *CorenessResult, error) {
	if target < 0 || target >= g.N() {
		return nil, nil, fmt.Errorf("greedy: target %d outside [0, %d)", target, g.N())
	}
	if budget < 1 {
		return nil, nil, fmt.Errorf("greedy: budget %d, want >= 1", budget)
	}
	if opts.CandidateSample > 0 && opts.Rand == nil {
		return nil, nil, fmt.Errorf("greedy: candidate sampling requires Options.Rand")
	}
	_, sp := obs.Start(context.Background(), "greedy/improve-coreness")
	sp.Int("n", g.N())
	sp.Int("m", g.M())
	sp.Int("budget", budget)
	defer sp.End()
	// Scoring goes through the shared engine: the mutate-evaluate-revert
	// loop below re-scores near-identical graphs, and every revert
	// restores a content-addressed snapshot the memo table already holds.
	eng := engine.Default()
	work := g.Clone()
	res := &CorenessResult{Before: eng.CorenessInt(g)}

	for round := 0; round < budget; round++ {
		cands := nonNeighbors(work, target, opts.CandidateSample, opts.Rand)
		if len(cands) == 0 {
			break
		}
		cur := eng.CorenessInt(work)
		bestV, bestCore, bestCandCore := -1, -1, -1
		for _, v := range cands {
			work.AddEdge(target, v)
			c := eng.CorenessInt(work)[target]
			work.RemoveEdge(target, v)
			if c > bestCore || (c == bestCore && cur[v] > bestCandCore) {
				bestV, bestCore, bestCandCore = v, c, cur[v]
			}
		}
		work.AddEdge(target, bestV)
		res.Edges = append(res.Edges, [2]int{bestV, target})
		res.CorePerRound = append(res.CorePerRound, bestCore)
	}
	res.After = eng.CorenessInt(work)
	return work, res, nil
}

// CorenessResult reports one greedy coreness run.
type CorenessResult struct {
	// Edges are the selected edges (v, t) in order.
	Edges [][2]int
	// CorePerRound[i] is RC(t) after i+1 edges.
	CorePerRound []int
	// Before/After are the full coreness vectors.
	Before, After []int
}
