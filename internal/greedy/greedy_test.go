package greedy

import (
	"math/rand"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/datasets"
	"promonet/internal/gen"
)

func TestImproveIncreasesScore(t *testing.T) {
	g := datasets.Fig1()
	// v10 is peripheral with BC = 0.
	g2, res, err := Improve(g, datasets.V10, 3, Options{Counting: centrality.PairsUnordered})
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M()+3 {
		t.Errorf("added %d edges, want 3", g2.M()-g.M())
	}
	if len(res.Edges) != 3 {
		t.Fatalf("selected %d edges, want 3", len(res.Edges))
	}
	if res.After[datasets.V10] <= res.Before[datasets.V10] {
		t.Errorf("greedy did not improve BC: %v -> %v",
			res.Before[datasets.V10], res.After[datasets.V10])
	}
	// Scores per round must be non-decreasing: each round keeps its
	// best edge, which can only add shortest paths through t... not a
	// theorem in general, but greedy picks max so round i+1's base
	// includes round i's edge; the recorded best scores should not
	// decrease on this host.
	for i := 1; i < len(res.ScorePerRound); i++ {
		if res.ScorePerRound[i] < res.ScorePerRound[i-1]-1e-9 {
			t.Errorf("round %d score %v < round %d score %v",
				i, res.ScorePerRound[i], i-1, res.ScorePerRound[i-1])
		}
	}
	// The input graph is untouched.
	if g.M() != 15 {
		t.Error("Improve mutated its input")
	}
}

func TestImproveGreedyBeatsRandomEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.BarabasiAlbert(rng, 80, 2)
	bc := centrality.Betweenness(g, centrality.PairsUnordered)
	// Pick a low-betweenness target, as in Section VII-C.
	target := 0
	for v := range bc {
		if bc[v] < bc[target] {
			target = v
		}
	}
	_, res, err := Improve(g, target, 1, Options{Counting: centrality.PairsUnordered})
	if err != nil {
		t.Fatal(err)
	}
	greedyGain := res.After[target] - res.Before[target]

	// Compare to the average gain of a few random edges.
	randomTotal := 0.0
	trials := 5
	for i := 0; i < trials; i++ {
		h := g.Clone()
		for {
			v := rng.Intn(h.N())
			if v != target && !h.HasEdge(target, v) {
				h.AddEdge(target, v)
				break
			}
		}
		randomTotal += centrality.Betweenness(h, centrality.PairsUnordered)[target] - res.Before[target]
	}
	if greedyGain < randomTotal/float64(trials) {
		t.Errorf("greedy gain %v below average random gain %v", greedyGain, randomTotal/float64(trials))
	}
}

func TestImproveErrors(t *testing.T) {
	g := gen.Path(4)
	if _, _, err := Improve(g, 9, 1, Options{}); err == nil {
		t.Error("bad target accepted")
	}
	if _, _, err := Improve(g, 1, 0, Options{}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, _, err := Improve(g, 1, 1, Options{CandidateSample: 2}); err == nil {
		t.Error("sampling without Rand accepted")
	}
}

func TestImproveBudgetExceedsCandidates(t *testing.T) {
	g := gen.Clique(4) // node 0 already adjacent to everyone
	g2, res, err := Improve(g, 0, 5, Options{Counting: centrality.PairsUnordered})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 0 {
		t.Errorf("selected %d edges in a clique, want 0", len(res.Edges))
	}
	if g2.M() != g.M() {
		t.Error("edges added in a clique")
	}
}

func TestImproveWithSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.BarabasiAlbert(rng, 120, 2)
	_, res, err := Improve(g, 5, 2, Options{
		Counting:        centrality.PairsUnordered,
		CandidateSample: 15,
		PivotSources:    40,
		Rand:            rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 2 {
		t.Fatalf("selected %d edges, want 2", len(res.Edges))
	}
}
