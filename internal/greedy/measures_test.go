package greedy

import (
	"math/rand"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/datasets"
	"promonet/internal/gen"
)

// --- eccentricity baseline ---

func TestImproveEccentricityReducesMaxDistance(t *testing.T) {
	g := gen.Path(11) // endpoint 0 has eccentricity 10
	g2, res, err := ImproveEccentricity(g, 0, 1, ClosenessOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Before[0] != 10 {
		t.Fatalf("before ecc = %d, want 10", res.Before[0])
	}
	// Best single edge from an endpoint: to the node minimizing the new
	// max distance. Brute force the optimum.
	best := int32(1 << 30)
	for v := 2; v < 11; v++ {
		h := g.Clone()
		h.AddEdge(0, v)
		if e := centrality.ReciprocalEccentricity(h)[0]; e < best {
			best = e
		}
	}
	if res.After[0] != best {
		t.Errorf("greedy ecc %d, brute-force optimum %d", res.After[0], best)
	}
	if g2.M() != g.M()+1 {
		t.Errorf("edges added = %d, want 1", g2.M()-g.M())
	}
	// The incremental pricing must agree with the recompute.
	if res.EccPerRound[0] != res.After[0] {
		t.Errorf("incremental ecc %d != recomputed %d", res.EccPerRound[0], res.After[0])
	}
}

func TestImproveEccentricityErrors(t *testing.T) {
	g := gen.Path(4)
	if _, _, err := ImproveEccentricity(g, 11, 1, ClosenessOptions{}); err == nil {
		t.Error("bad target accepted")
	}
	if _, _, err := ImproveEccentricity(g, 1, 0, ClosenessOptions{}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, _, err := ImproveEccentricity(g, 1, 1, ClosenessOptions{CandidateSample: 2}); err == nil {
		t.Error("sampling without Rand accepted")
	}
}

func TestImproveEccentricityMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := gen.WattsStrogatz(rng, 120, 2, 0.05)
	_, res, err := ImproveEccentricity(g, 5, 4, ClosenessOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.EccPerRound); i++ {
		if res.EccPerRound[i] > res.EccPerRound[i-1] {
			t.Errorf("eccentricity rose between rounds: %v", res.EccPerRound)
		}
	}
}

// --- coreness baseline ---

func TestImproveCorenessRaisesCore(t *testing.T) {
	// K4 plus a pendant: the pendant (coreness 1) can climb by wiring
	// into the clique.
	g := gen.Clique(4)
	pend := g.AddNode()
	g.AddEdge(0, pend)
	g2, res, err := ImproveCoreness(g, pend, 3, ClosenessOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Before[pend] != 1 {
		t.Fatalf("before coreness = %d, want 1", res.Before[pend])
	}
	// With edges to the three remaining clique members the pendant
	// joins the 4-core.
	if res.After[pend] != 4 {
		t.Errorf("after coreness = %d, want 4", res.After[pend])
	}
	if g2.M() != g.M()+3 {
		t.Errorf("edges added = %d, want 3", g2.M()-g.M())
	}
}

func TestImproveCorenessOnFig1(t *testing.T) {
	g := datasets.Fig1()
	// v4 (coreness 1) should reach the 3-core {v1,v3,v5,v6} with 3
	// edges into it.
	_, res, err := ImproveCoreness(g, datasets.V4, 3, ClosenessOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.After[datasets.V4] < 3 {
		t.Errorf("coreness after 3 greedy edges = %d, want >= 3", res.After[datasets.V4])
	}
}

func TestImproveCorenessErrors(t *testing.T) {
	g := gen.Path(4)
	if _, _, err := ImproveCoreness(g, 11, 1, ClosenessOptions{}); err == nil {
		t.Error("bad target accepted")
	}
	if _, _, err := ImproveCoreness(g, 1, 0, ClosenessOptions{}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestImproveCorenessNeverDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := gen.BarabasiAlbert(rng, 100, 3)
	_, res, err := ImproveCoreness(g, 17, 4, ClosenessOptions{CandidateSample: 20, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	prev := res.Before[17]
	for _, c := range res.CorePerRound {
		if c < prev {
			t.Errorf("coreness decreased across rounds: %v", res.CorePerRound)
		}
		prev = c
	}
}
