package greedy

import (
	"math/rand"
	"sort"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/gen"
)

// Tie-break contract tests: candidates are evaluated in increasing id
// order with strict-improvement replacement, so among tied candidates
// the lowest id always wins — exhaustively and under CandidateSample.
//
// A cycle is the canonical tied instance: for target 0 on C_9, the
// candidates v and 9-v are exchanged by the reflection automorphism, so
// every measure scores them identically and the baseline must pick the
// lower id of each tied pair.

func TestTieBreakLowestIDCloseness(t *testing.T) {
	g := gen.Cycle(9)
	_, res, err := ImproveCloseness(g, 0, 1, ClosenessOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The farness-optimal chords are the antipodal pair {4, 5}; the
	// contract demands 4.
	if got := res.Edges[0][0]; got != 4 {
		t.Fatalf("closeness picked %d, want 4 (lowest id of tied pair {4,5})", got)
	}
}

func TestTieBreakLowestIDEccentricity(t *testing.T) {
	g := gen.Cycle(9)
	_, res, err := ImproveEccentricity(g, 0, 1, ClosenessOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Edges[0][0]
	if mirror := 9 - v; v > mirror {
		t.Fatalf("eccentricity picked %d over its tied mirror %d", v, mirror)
	}
}

func TestTieBreakLowestIDBetweenness(t *testing.T) {
	g := gen.Cycle(9)
	_, res, err := Improve(g, 0, 1, Options{Counting: centrality.PairsUnordered})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Edges[0][0]
	if mirror := 9 - v; v > mirror {
		t.Fatalf("betweenness picked %d over its tied mirror %d", v, mirror)
	}
	// Determinism: a second run must reproduce the pick exactly.
	_, res2, err := Improve(g, 0, 1, Options{Counting: centrality.PairsUnordered})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Edges[0] != res.Edges[0] {
		t.Fatalf("repeat run picked %v, first run %v", res2.Edges[0], res.Edges[0])
	}
}

// TestTieBreakUnderCandidateSample checks the sampled path: the sample
// is re-sorted before evaluation, so equal sampled sets give equal
// picks regardless of the shuffle order that produced them — and the
// run is reproducible for a fixed seed.
func TestTieBreakUnderCandidateSample(t *testing.T) {
	g := gen.Cycle(9)
	run := func(seed int64) [][2]int {
		_, res, err := Improve(g, 0, 2, Options{
			Counting:        centrality.PairsUnordered,
			CandidateSample: 4,
			Rand:            rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Edges
	}
	first := run(1234)
	second := run(1234)
	if len(first) != len(second) {
		t.Fatalf("sampled runs disagree on length: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("sampled runs diverge at round %d: %v vs %v", i, first, second)
		}
	}
}

// TestNonNeighborsSampleSorted pins the mechanism behind the sampled
// tie-break: the sampled candidate set comes back in increasing id
// order and is a subset of the true non-neighbor set.
func TestNonNeighborsSampleSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.ErdosRenyi(rng, 40, 80)
	target := 3
	full := nonNeighbors(g, target, 0, nil)
	if !sort.IntsAreSorted(full) {
		t.Fatalf("exhaustive candidate set not sorted: %v", full)
	}
	for trial := 0; trial < 20; trial++ {
		sample := nonNeighbors(g, target, 10, rng)
		if len(sample) != 10 {
			t.Fatalf("sample size %d, want 10", len(sample))
		}
		if !sort.IntsAreSorted(sample) {
			t.Fatalf("sampled candidate set not sorted: %v", sample)
		}
		for _, v := range sample {
			i := sort.SearchInts(full, v)
			if i >= len(full) || full[i] != v {
				t.Fatalf("sampled candidate %d not a non-neighbor of %d", v, target)
			}
		}
	}
}
