package greedy

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"promonet/internal/engine"
	"promonet/internal/graph"
	"promonet/internal/graph/csr"
	"promonet/internal/obs"
)

// ImproveEccentricity is the structure-aware counterpart for
// eccentricity, in the spirit of the constrained edge-addition
// algorithms of Perumal et al. [20]: add b edges incident to the target
// to minimize its maximum distance. Like the other baselines it needs
// the full network structure.
//
// Candidate pricing is exact and goes through the engine's incremental
// delta scorer (engine.EvaluateEdgeBatch): one base BFS from the target
// per round, then an affected-frontier BFS per candidate that touches
// only the nodes whose distance to the target shrinks. Ties break
// toward the lowest-id candidate (see Options).
func ImproveEccentricity(g *graph.Graph, target, budget int, opts ClosenessOptions) (*graph.Graph, *EccentricityResult, error) {
	if target < 0 || target >= g.N() {
		return nil, nil, fmt.Errorf("greedy: target %d outside [0, %d)", target, g.N())
	}
	if budget < 1 {
		return nil, nil, fmt.Errorf("greedy: budget %d, want >= 1", budget)
	}
	if opts.CandidateSample > 0 && opts.Rand == nil {
		return nil, nil, fmt.Errorf("greedy: candidate sampling requires Options.Rand")
	}
	_, sp := obs.Start(context.Background(), "greedy/improve-eccentricity")
	sp.Int("n", g.N())
	sp.Int("m", g.M())
	sp.Int("budget", budget)
	defer sp.End()
	work := csr.NewOverlay(csr.Freeze(g))
	res := &EccentricityResult{Before: reciprocalEccInt32(g)}

	for round := 0; round < budget; round++ {
		cands := nonNeighbors(work, target, opts.CandidateSample, opts.Rand)
		if len(cands) == 0 {
			break
		}
		eccs := engine.Default().EvaluateEdgeBatch(work, target, cands, engine.ReciprocalEccentricity())
		bestV, bestEcc := cands[0], int32(eccs[0])
		for i := 1; i < len(eccs); i++ {
			if e := int32(eccs[i]); e < bestEcc {
				bestV, bestEcc = cands[i], e
			}
		}
		work.AddEdge(target, bestV)
		res.Edges = append(res.Edges, [2]int{bestV, target})
		res.EccPerRound = append(res.EccPerRound, bestEcc)
	}
	res.After = reciprocalEccInt32(work)
	return work.Materialize(), res, nil
}

// reciprocalEccInt32 scores ĒC through the shared engine (one memoized
// distance sweep) in the []int32 unit of EccentricityResult. Max
// distances are exact small integers, so the float64 round trip is
// lossless.
func reciprocalEccInt32(g graph.View) []int32 {
	scores := engine.Default().Scores(g, engine.ReciprocalEccentricity())
	out := make([]int32, len(scores))
	for v, x := range scores {
		out[v] = int32(x)
	}
	return out
}

// EccentricityResult reports one greedy eccentricity run.
type EccentricityResult struct {
	// Edges are the selected edges (v, t) in order.
	Edges [][2]int
	// EccPerRound[i] is the target's reciprocal eccentricity (max
	// distance) after i+1 edges.
	EccPerRound []int32
	// Before/After are the full reciprocal-eccentricity vectors.
	Before, After []int32
}

// nonNeighbors lists nodes not adjacent to target (and not target) in
// increasing id order, optionally subsampled. The sample is re-sorted
// after the shuffle-truncate draw, so candidate evaluation order — and
// with it the lowest-id tie-break every baseline documents — does not
// depend on the shuffle.
func nonNeighbors(g graph.View, target, sample int, rng *rand.Rand) []int {
	var all []int
	for v := 0; v < g.N(); v++ {
		if v != target && !g.HasEdge(target, v) {
			all = append(all, v)
		}
	}
	if sample > 0 && sample < len(all) {
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		all = all[:sample]
		sort.Ints(all)
	}
	return all
}
