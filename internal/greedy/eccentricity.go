package greedy

import (
	"fmt"
	"math/rand"

	"promonet/internal/centrality"
	"promonet/internal/engine"
	"promonet/internal/graph"
)

// ImproveEccentricity is the structure-aware counterpart for
// eccentricity, in the spirit of the constrained edge-addition
// algorithms of Perumal et al. [20]: add b edges incident to the target
// to minimize its maximum distance. Like the other baselines it needs
// the full network structure.
//
// Candidate pricing is exact and cheap: with edge (t, v) added,
// dist′(t, u) = min(dist(t, u), 1 + dist(v, u)), so one BFS from v
// prices the candidate's new eccentricity in O(m).
func ImproveEccentricity(g *graph.Graph, target, budget int, opts ClosenessOptions) (*graph.Graph, *EccentricityResult, error) {
	if target < 0 || target >= g.N() {
		return nil, nil, fmt.Errorf("greedy: target %d outside [0, %d)", target, g.N())
	}
	if budget < 1 {
		return nil, nil, fmt.Errorf("greedy: budget %d, want >= 1", budget)
	}
	if opts.CandidateSample > 0 && opts.Rand == nil {
		return nil, nil, fmt.Errorf("greedy: candidate sampling requires Options.Rand")
	}
	work := g.Clone()
	res := &EccentricityResult{Before: reciprocalEccInt32(g)}
	bfs := centrality.NewBFS(g.N())

	for round := 0; round < budget; round++ {
		dT := append([]int32(nil), bfs.Distances(work, target)...)
		cands := nonNeighbors(work, target, opts.CandidateSample, opts.Rand)
		if len(cands) == 0 {
			break
		}
		bestV, bestEcc := -1, int32(0)
		for _, v := range cands {
			dV := bfs.Distances(work, v)
			var ecc int32
			for u := 0; u < work.N(); u++ {
				if u == target {
					continue
				}
				d := dT[u]
				if dV[u] >= 0 && (d < 0 || dV[u]+1 < d) {
					d = dV[u] + 1
				}
				if d > ecc {
					ecc = d
				}
			}
			if bestV == -1 || ecc < bestEcc {
				bestV, bestEcc = v, ecc
			}
		}
		work.AddEdge(target, bestV)
		res.Edges = append(res.Edges, [2]int{bestV, target})
		res.EccPerRound = append(res.EccPerRound, bestEcc)
	}
	res.After = reciprocalEccInt32(work)
	return work, res, nil
}

// reciprocalEccInt32 scores ĒC through the shared engine (one memoized
// distance sweep) in the []int32 unit of EccentricityResult. Max
// distances are exact small integers, so the float64 round trip is
// lossless.
func reciprocalEccInt32(g *graph.Graph) []int32 {
	scores := engine.Default().Scores(g, engine.ReciprocalEccentricity())
	out := make([]int32, len(scores))
	for v, x := range scores {
		out[v] = int32(x)
	}
	return out
}

// EccentricityResult reports one greedy eccentricity run.
type EccentricityResult struct {
	// Edges are the selected edges (v, t) in order.
	Edges [][2]int
	// EccPerRound[i] is the target's reciprocal eccentricity (max
	// distance) after i+1 edges.
	EccPerRound []int32
	// Before/After are the full reciprocal-eccentricity vectors.
	Before, After []int32
}

// nonNeighbors lists nodes not adjacent to target (and not target),
// optionally subsampled.
func nonNeighbors(g *graph.Graph, target, sample int, rng *rand.Rand) []int {
	var all []int
	for v := 0; v < g.N(); v++ {
		if v != target && !g.HasEdge(target, v) {
			all = append(all, v)
		}
	}
	if sample > 0 && sample < len(all) {
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		all = all[:sample]
	}
	return all
}
