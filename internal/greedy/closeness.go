package greedy

import (
	"fmt"
	"math/rand"

	"promonet/internal/centrality"
	"promonet/internal/engine"
	"promonet/internal/graph"
)

// ImproveCloseness implements the greedy algorithm of Crescenzi et al.
// [9] for improving a target's closeness score by adding b edges
// incident to it, the closeness counterpart of the betweenness baseline
// in this package. Like that baseline it requires the full network
// structure.
//
// Each round evaluates every non-neighbor v exactly: with the edge
// (t, v) added, dist′(t, u) = min(dist(t, u), 1 + dist(v, u)), so one
// BFS from v prices the candidate in O(m) — no betweenness-style full
// recomputation is needed. The candidate minimizing the resulting
// farness is kept.
func ImproveCloseness(g *graph.Graph, target, budget int, opts ClosenessOptions) (*graph.Graph, *ClosenessResult, error) {
	if target < 0 || target >= g.N() {
		return nil, nil, fmt.Errorf("greedy: target %d outside [0, %d)", target, g.N())
	}
	if budget < 1 {
		return nil, nil, fmt.Errorf("greedy: budget %d, want >= 1", budget)
	}
	if opts.CandidateSample > 0 && opts.Rand == nil {
		return nil, nil, fmt.Errorf("greedy: candidate sampling requires Options.Rand")
	}
	work := g.Clone()
	n := g.N()
	res := &ClosenessResult{BeforeFarness: engine.Default().FarnessInt64(g)}
	bfs := centrality.NewBFS(n)

	for round := 0; round < budget; round++ {
		dT := append([]int32(nil), bfs.Distances(work, target)...)
		var cands []int
		for v := 0; v < n; v++ {
			if v != target && !work.HasEdge(target, v) {
				cands = append(cands, v)
			}
		}
		if len(cands) == 0 {
			break
		}
		if opts.CandidateSample > 0 && opts.CandidateSample < len(cands) {
			opts.Rand.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
			cands = cands[:opts.CandidateSample]
		}
		bestV := -1
		var bestFar int64
		for _, v := range cands {
			dV := bfs.Distances(work, v)
			var far int64
			for u := 0; u < work.N(); u++ {
				if u == target {
					continue
				}
				d := dT[u]
				if dV[u] >= 0 && (d < 0 || dV[u]+1 < d) {
					d = dV[u] + 1
				}
				if d > 0 {
					far += int64(d)
				}
			}
			if bestV == -1 || far < bestFar {
				bestV, bestFar = v, far
			}
		}
		work.AddEdge(target, bestV)
		res.Edges = append(res.Edges, [2]int{bestV, target})
		res.FarnessPerRound = append(res.FarnessPerRound, bestFar)
	}
	res.AfterFarness = engine.Default().FarnessInt64(work)
	return work, res, nil
}

// ClosenessOptions configures ImproveCloseness.
type ClosenessOptions struct {
	// CandidateSample, when > 0, evaluates only that many sampled
	// candidates per round (0 = exhaustive, the algorithm of [9]).
	CandidateSample int
	Rand            *rand.Rand
}

// ClosenessResult reports one greedy closeness run.
type ClosenessResult struct {
	// Edges are the selected edges (v, t) in order.
	Edges [][2]int
	// FarnessPerRound[i] is the target's farness after i+1 edges.
	FarnessPerRound []int64
	// BeforeFarness/AfterFarness are the full farness vectors on G and
	// the final G′.
	BeforeFarness, AfterFarness []int64
}
