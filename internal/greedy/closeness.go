package greedy

import (
	"context"
	"fmt"
	"math/rand"

	"promonet/internal/engine"
	"promonet/internal/graph"
	"promonet/internal/graph/csr"
	"promonet/internal/obs"
)

// ImproveCloseness implements the greedy algorithm of Crescenzi et al.
// [9] for improving a target's closeness score by adding b edges
// incident to it, the closeness counterpart of the betweenness baseline
// in this package. Like that baseline it requires the full network
// structure.
//
// Each round evaluates every non-neighbor v exactly through the
// engine's incremental delta scorer (engine.EvaluateEdgeBatch): one
// base BFS from the target per round, then an affected-frontier BFS per
// candidate that touches only the nodes whose distance to the target
// shrinks — no betweenness-style full recomputation is needed. The
// candidate minimizing the resulting farness is kept, ties broken
// toward the lowest id (see Options).
func ImproveCloseness(g *graph.Graph, target, budget int, opts ClosenessOptions) (*graph.Graph, *ClosenessResult, error) {
	if target < 0 || target >= g.N() {
		return nil, nil, fmt.Errorf("greedy: target %d outside [0, %d)", target, g.N())
	}
	if budget < 1 {
		return nil, nil, fmt.Errorf("greedy: budget %d, want >= 1", budget)
	}
	if opts.CandidateSample > 0 && opts.Rand == nil {
		return nil, nil, fmt.Errorf("greedy: candidate sampling requires Options.Rand")
	}
	_, sp := obs.Start(context.Background(), "greedy/improve-closeness")
	sp.Int("n", g.N())
	sp.Int("m", g.M())
	sp.Int("budget", budget)
	defer sp.End()
	work := csr.NewOverlay(csr.Freeze(g))
	res := &ClosenessResult{BeforeFarness: engine.Default().FarnessInt64(g)}

	for round := 0; round < budget; round++ {
		cands := nonNeighbors(work, target, opts.CandidateSample, opts.Rand)
		if len(cands) == 0 {
			break
		}
		fars := engine.Default().EvaluateEdgeBatch(work, target, cands, engine.Farness())
		bestV, bestFar := cands[0], int64(fars[0])
		for i := 1; i < len(fars); i++ {
			if f := int64(fars[i]); f < bestFar {
				bestV, bestFar = cands[i], f
			}
		}
		work.AddEdge(target, bestV)
		res.Edges = append(res.Edges, [2]int{bestV, target})
		res.FarnessPerRound = append(res.FarnessPerRound, bestFar)
	}
	res.AfterFarness = engine.Default().FarnessInt64(work)
	return work.Materialize(), res, nil
}

// ClosenessOptions configures ImproveCloseness.
type ClosenessOptions struct {
	// CandidateSample, when > 0, evaluates only that many sampled
	// candidates per round (0 = exhaustive, the algorithm of [9]). The
	// sample is evaluated in increasing node-id order, so the lowest-id
	// tie-break documented on Options holds here too.
	CandidateSample int
	Rand            *rand.Rand
}

// ClosenessResult reports one greedy closeness run.
type ClosenessResult struct {
	// Edges are the selected edges (v, t) in order.
	Edges [][2]int
	// FarnessPerRound[i] is the target's farness after i+1 edges.
	FarnessPerRound []int64
	// BeforeFarness/AfterFarness are the full farness vectors on G and
	// the final G′.
	BeforeFarness, AfterFarness []int64
}
