package exp

import (
	"fmt"
	"math/rand"
	"strconv"

	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/graph"
)

// Kind identifies one of the four headline (measure, strategy)
// experiments of Section VII and carries the paper's table/figure
// numbering for it.
type Kind struct {
	Short      string // BC, RC, CC, EC
	VarTableID string // score/reciprocal variation table
	DomTableID string // dominance table
	FigID      string // ratio figure
	strategy   core.StrategyType
	mk         func(Config, *graph.Graph) core.Measure
}

// The four experiment kinds, matching Exps 1–4.
var (
	KindBC = Kind{"BC", "Table VII", "Table VIII", "Fig. 4", core.MultiPoint,
		func(c Config, g *graph.Graph) core.Measure { return c.betweenness(g) }}
	KindRC = Kind{"RC", "Table IX", "Table X", "Fig. 5", core.SingleClique,
		func(Config, *graph.Graph) core.Measure { return core.CorenessMeasure{} }}
	KindCC = Kind{"CC", "Table XI", "Table XII", "Fig. 6", core.MultiPoint,
		func(Config, *graph.Graph) core.Measure { return core.ClosenessMeasure{} }}
	KindEC = Kind{"EC", "Table XIII", "Table XIV", "Fig. 7", core.DoubleLine,
		func(Config, *graph.Graph) core.Measure { return core.EccentricityMeasure{} }}
)

// KindByShort resolves BC/RC/CC/EC.
func KindByShort(s string) (Kind, error) {
	switch s {
	case "BC":
		return KindBC, nil
	case "RC":
		return KindRC, nil
	case "CC":
		return KindCC, nil
	case "EC":
		return KindEC, nil
	default:
		return Kind{}, fmt.Errorf("exp: unknown experiment kind %q", s)
	}
}

// TableVI reproduces the dataset-description table: measured n, m,
// diameter, and degeneracy of each synthetic stand-in next to the
// original's statistics.
func TableVI(cfg Config) (*Table, error) {
	profiles, err := cfg.profiles()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Table VI",
		Title: fmt.Sprintf("Description of datasets (synthetic stand-ins, scale=%g, seed=%d)", cfg.Scale, cfg.Seed),
		Columns: []string{"Name", "Stands in for", "n", "m", "Diameter", "Degeneracy",
			"paper n", "paper m", "paper diam", "paper degen"},
	}
	for _, p := range profiles {
		g := p.Build(cfg.Seed, cfg.Scale)
		t.Rows = append(t.Rows, []string{
			p.Name, p.SNAPName,
			strconv.Itoa(g.N()), strconv.Itoa(g.M()),
			strconv.Itoa(centrality.Diameter(g)), strconv.Itoa(centrality.Degeneracy(g)),
			strconv.Itoa(p.PaperN), strconv.Itoa(p.PaperM),
			strconv.Itoa(p.PaperDiameter), strconv.Itoa(p.PaperDegeneracy),
		})
	}
	return t, nil
}

// detailCells runs the per-target/per-size sweep the detailed tables
// need, on the first two configured datasets (the paper prints WIKI and
// HEPP only, "due to space limitations").
type detailResult struct {
	dataset string
	n       int
	targets []int
	cells   [][]cell // [targetIdx][sizeIdx]
}

func runDetail(cfg Config, k Kind, numTargets int, datasetLimit int) ([]detailResult, error) {
	profiles, err := cfg.profiles()
	if err != nil {
		return nil, err
	}
	if datasetLimit > 0 && len(profiles) > datasetLimit {
		profiles = profiles[:datasetLimit]
	}
	var out []detailResult
	for _, p := range profiles {
		before := snapshotCell(cfg)
		run := newPromotionRun(cfg, p, func(g *graph.Graph) core.Measure { return k.mk(cfg, g) }, k.strategy)
		rng := newSeededRand(cfg.Seed, p.Name, k.Short)
		targets := pickTargets(rng, run.g, numTargets)
		res := detailResult{dataset: p.Name, n: run.g.N(), targets: targets}
		for _, target := range targets {
			row := make([]cell, len(cfg.Sizes))
			for i, size := range cfg.Sizes {
				row[i] = run.measureCell(target, size)
			}
			res.cells = append(res.cells, row)
		}
		out = append(out, res)
		if err := before.writeManifest(cfg, k, p.Name, run.g); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// VariationTable reproduces Tables VII/IX/XI/XIII: per target (rows) and
// size (column pairs), the target's variation next to the extremal other
// node's variation. For maximum-gain measures these are score
// variations Δ_C (target should be larger); for minimum-loss measures
// reciprocal score variations Δ̄_C (target should be smaller).
func VariationTable(cfg Config, k Kind) (*Table, error) {
	results, err := runDetail(cfg, k, cfg.NumTableTargets, 2)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: k.VarTableID}
	if k.Short == "CC" || k.Short == "EC" {
		t.Title = fmt.Sprintf("Reciprocal score variations of V (%s): target t vs extremal other v", k.Short)
	} else {
		t.Title = fmt.Sprintf("Score variations of V (%s): target t vs extremal other v", k.Short)
	}
	t.Columns = []string{"Dataset", "ID"}
	for _, s := range cfg.Sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("p=%d t", s), fmt.Sprintf("p=%d v", s))
	}
	for _, res := range results {
		for ti, row := range res.cells {
			cells := []string{res.dataset, strconv.Itoa(ti + 1)}
			for _, c := range row {
				cells = append(cells, fnum(c.TargetVar), fnum(c.OtherVar))
			}
			t.Rows = append(t.Rows, cells)
		}
	}
	return t, nil
}

// DominanceTable reproduces Tables VIII/X/XII/XIV: the target's score
// C′(t) next to the best inserted node's score. For CC/EC the printed
// values are the reciprocal scores (the paper prints fractions 1/x̄; we
// print x̄).
func DominanceTable(cfg Config, k Kind) (*Table, error) {
	results, err := runDetail(cfg, k, cfg.NumTableTargets, 2)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: k.DomTableID}
	if k.Short == "CC" || k.Short == "EC" {
		t.Title = fmt.Sprintf("Reciprocal scores of target t and best w in Δ_V (%s); smaller = higher score", k.Short)
	} else {
		t.Title = fmt.Sprintf("Scores of target t and best w in Δ_V (%s)", k.Short)
	}
	t.Columns = []string{"Dataset", "ID"}
	for _, s := range cfg.Sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("p=%d t", s), fmt.Sprintf("p=%d w", s))
	}
	for _, res := range results {
		for ti, row := range res.cells {
			cells := []string{res.dataset, strconv.Itoa(ti + 1)}
			for _, c := range row {
				cells = append(cells, fnum(c.TargetScore), fnum(c.InsertedScore))
			}
			t.Rows = append(t.Rows, cells)
		}
	}
	return t, nil
}

// newSeededRand derives an independent deterministic stream per
// (dataset, experiment) pair from the master seed.
func newSeededRand(seed int64, parts ...string) *rand.Rand {
	h := seed
	for _, p := range parts {
		for _, c := range p {
			h = h*131 + int64(c)
		}
	}
	return rand.New(rand.NewSource(h))
}
