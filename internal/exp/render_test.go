package exp

import (
	"bytes"
	"strings"
	"testing"
)

func demoTable() *Table {
	return &Table{
		ID: "Table Z", Title: "demo | with pipe",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "x|y"}},
	}
}

func demoFigure() *Figure {
	return &Figure{
		ID: "Fig. Z", Title: "demo", YLabel: "Ratio (%)",
		Curves: []Curve{{
			Dataset: "WIKI",
			X:       []int{4, 8},
			Max:     []float64{2, 4},
			Avg:     []float64{1, 2},
			Min:     []float64{0, 1},
		}},
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := demoTable().RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**Table Z", "| a | b |", "|---|---|", "| 1 | 2 |", `x\|y`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRenderMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := demoFigure().RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**Fig. Z", "*WIKI*", "| p | 4 | 8 |", "| avg | 1.000 | 2.000 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRenderText(t *testing.T) {
	var buf bytes.Buffer
	if err := demoFigure().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "WIKI") {
		t.Error("text render missing curve name")
	}
}

func TestFnum(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{5, "5"},
		{5.25, "5.2"},
		{-3, "-3"},
		{0, "0"},
	}
	for _, tc := range cases {
		if got := fnum(tc.in); got != tc.want {
			t.Errorf("fnum(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := demoTable().RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// "x|y" has no comma or quote, so it is written unescaped.
	for _, want := range []string{"a,b\n", "1,2\n", "3,x|y\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := demoFigure().RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dataset,band,p,value", "WIKI,max,4,2", "WIKI,min,8,1"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"plain":     "plain",
		"a,b":       `"a,b"`,
		`say "hi"`:  `"say ""hi"""`,
		"line\nTwo": "\"line\nTwo\"",
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Errorf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}
