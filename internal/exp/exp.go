// Package exp reproduces the paper's evaluation (Section VII): every
// table (VI–XIV) and figure (4–9) has a runner that regenerates its
// rows/series on the synthetic dataset stand-ins, plus an ablation that
// deliberately applies the wrong strategy per Table I.
//
// Runners return structured results (Table / Figure) that render as
// aligned text; EXPERIMENTS.md records a full run next to the paper's
// numbers.
package exp

import (
	"math/rand"
	"sort"

	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/datasets"
	"promonet/internal/graph"
)

// Config controls a reproduction run. The zero value is not usable; use
// DefaultConfig.
type Config struct {
	// Seed drives every random choice (dataset synthesis, target
	// selection), making runs reproducible.
	Seed int64
	// Scale is the fraction of each original dataset's node count to
	// synthesize (DESIGN.md §4). The harness default is 0.05.
	Scale float64
	// Datasets restricts which profiles run (paper short names). Empty
	// means all four.
	Datasets []string
	// NumTargets is the number of random target nodes per dataset for
	// the figure experiments (the paper uses 10).
	NumTargets int
	// NumTableTargets is the number of targets shown in the detailed
	// tables (the paper prints 5).
	NumTableTargets int
	// Sizes is the promotion-size sweep (the paper uses 4..64).
	Sizes []int
	// BCSampleThreshold: hosts with more nodes than this use pivot-
	// sampled betweenness with BCSampleSources sources. Zero disables
	// sampling (always exact).
	BCSampleThreshold int
	BCSampleSources   int

	// Greedy-comparison settings (Figs. 8–9). GreedyBudget is the
	// largest promotion size p swept (the paper uses 1..10);
	// GreedyTargets the number of low-betweenness targets averaged (5
	// in the paper). GreedyCandidateSample/GreedyPivotSources bound the
	// baseline's per-round cost on large hosts (0 = exhaustive/exact,
	// matching [18]).
	GreedyBudget          int
	GreedyTargets         int
	GreedyCandidateSample int
	GreedyPivotSources    int

	// ManifestDir, when non-empty, makes the detailed runners write one
	// obs run manifest per dataset×measure cell into this directory
	// (manifest-<kind>-<dataset>.json), attributing the engine work and
	// span rollups of just that cell via counter deltas.
	ManifestDir string
}

// DefaultConfig returns the settings used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		Scale:             0.05,
		NumTargets:        10,
		NumTableTargets:   5,
		Sizes:             []int{4, 8, 16, 32, 64},
		BCSampleThreshold: 3000,
		BCSampleSources:   256,

		GreedyBudget:          10,
		GreedyTargets:         5,
		GreedyCandidateSample: 64,
		GreedyPivotSources:    0,
	}
}

// profiles resolves the configured dataset list.
func (c Config) profiles() ([]datasets.Profile, error) {
	if len(c.Datasets) == 0 {
		return datasets.Profiles(), nil
	}
	var out []datasets.Profile
	for _, name := range c.Datasets {
		p, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// betweenness returns the BC measure appropriate for the host size:
// exact on small hosts, pivot-sampled beyond the threshold. The paper's
// real-graph tables use the ordered-pairs convention (Definition 2.3);
// see DESIGN.md §2.
func (c Config) betweenness(g *graph.Graph) core.BetweennessMeasure {
	m := core.BetweennessMeasure{Counting: centrality.PairsOrdered, Seed: c.Seed}
	if c.BCSampleThreshold > 0 && g.N() > c.BCSampleThreshold {
		m.SampleSources = c.BCSampleSources
	}
	return m
}

// pickTargets returns k distinct random nodes of g, seeded per dataset.
func pickTargets(rng *rand.Rand, g *graph.Graph, k int) []int {
	if k > g.N() {
		k = g.N()
	}
	return rng.Perm(g.N())[:k]
}

// pickLowTargets returns k distinct nodes drawn from the lowest-scoring
// quarter of scores, the Section VII-C protocol ("five target nodes with
// initially low betweenness scores").
func pickLowTargets(rng *rand.Rand, scores []float64, k int) []int {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	pool := idx[:max(k, n/4)]
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if k > len(pool) {
		k = len(pool)
	}
	return append([]int(nil), pool[:k]...)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// promotionRun holds one dataset's shared state for a sweep over
// targets and sizes under a single measure/strategy.
type promotionRun struct {
	cfg      Config
	profile  datasets.Profile
	g        *graph.Graph
	measure  core.Measure
	strategy core.StrategyType

	before      []float64 // C(v) on G, computed once
	beforeRecip []float64 // C̄(v) on G, for minimum-loss measures
}

func newPromotionRun(cfg Config, p datasets.Profile, mk func(*graph.Graph) core.Measure, strat core.StrategyType) *promotionRun {
	g := p.Build(cfg.Seed, cfg.Scale)
	m := mk(g)
	r := &promotionRun{cfg: cfg, profile: p, g: g, measure: m, strategy: strat}
	r.before = m.Scores(g)
	if rs, ok := m.(core.ReciprocalScorer); ok {
		r.beforeRecip = rs.Reciprocals(g)
	}
	return r
}

// cell is the per-(target, size) measurement that all table and figure
// experiments share.
type cell struct {
	Target, Size int
	// TargetVar / OtherVar and OtherNode follow the principle's
	// bookkeeping: score variations for maximum gain, reciprocal score
	// variations for minimum loss.
	TargetVar, OtherVar float64
	OtherNode           int
	// TargetScore is C′(t); InsertedScore is max_w C′(w) (dominance
	// columns of Tables VIII/X/XII/XIV). For minimum-loss measures
	// these are the reciprocal scores the paper prints.
	TargetScore, InsertedScore float64
	DeltaRank                  int
	Ratio                      float64
	Check                      core.PropertyCheck
}

// measureCell applies [target, size, strategy] and measures everything
// the experiments need, reusing the precomputed before-vectors.
func (r *promotionRun) measureCell(target, size int) cell {
	s := core.Strategy{Target: target, Size: size, Type: r.strategy}
	g2, inserted, err := s.Apply(r.g)
	if err != nil {
		panic(err) // targets and sizes are generated internally; a failure is a harness bug
	}
	after := r.measure.Scores(g2)
	c := cell{Target: target, Size: size}
	c.DeltaRank = centrality.RankingVariation(r.before, after, target)
	c.Ratio = centrality.Ratio(c.DeltaRank, r.g.N())

	if r.measure.Principle() == core.MaximumGain {
		c.Check = core.CheckMaximumGain(r.before, after, target)
		c.TargetVar = c.Check.TargetVariation
		c.OtherVar = c.Check.MaxOtherVariation
		c.OtherNode = c.Check.MaxOtherNode
		c.TargetScore = after[target]
		for _, w := range inserted {
			if after[w] > c.InsertedScore {
				c.InsertedScore = after[w]
			}
		}
		return c
	}

	rs := r.measure.(core.ReciprocalScorer)
	afterRecip := rs.Reciprocals(g2)
	c.Check = core.CheckMinimumLoss(r.beforeRecip, afterRecip, r.before, after, target)
	c.TargetVar = c.Check.TargetVariation
	c.OtherVar = c.Check.MaxOtherVariation
	c.OtherNode = c.Check.MaxOtherNode
	// Dominance columns print reciprocal scores for CC/EC (the paper
	// prints 1/x; we print x̄ = the reciprocal scores directly).
	c.TargetScore = afterRecip[target]
	minInserted := false
	for w := len(r.before); w < len(afterRecip); w++ {
		if !minInserted || afterRecip[w] < c.InsertedScore {
			c.InsertedScore = afterRecip[w] // best (smallest) reciprocal = highest score
			minInserted = true
		}
	}
	return c
}
