package exp

import (
	"bytes"
	"testing"
)

// TestRunsAreDeterministic: the whole harness is seed-deterministic —
// rendering the same experiment twice yields byte-identical output.
// This is what makes EXPERIMENTS.md reproducible.
func TestRunsAreDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"WIKI"}

	render := func() string {
		var buf bytes.Buffer
		tab, err := VariationTable(cfg, KindCC)
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
		fig, err := RatioFigure(cfg, KindEC)
		if err != nil {
			t.Fatal(err)
		}
		if err := fig.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Error("same config produced different output")
	}
}

// TestSeedsChangeTargets: different seeds pick different targets (the
// harness does not accidentally pin randomness).
func TestSeedsChangeTargets(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"WIKI"}
	resA, err := runDetail(cfg, KindCC, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 12345
	resB, err := runDetail(cfg, KindCC, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range resA[0].targets {
		if resA[0].targets[i] != resB[0].targets[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds selected identical targets (suspicious)")
	}
}
