package exp

import (
	"fmt"
	"path/filepath"
	"strings"

	"promonet/internal/engine"
	"promonet/internal/graph"
	"promonet/internal/obs"
)

// cellSnapshot captures the engine counters and span rollups before one
// dataset×measure cell runs, so writeManifest can attribute exactly the
// work done in between by subtracting (Stats.Delta, obs.DiffRollups).
type cellSnapshot struct {
	active  bool
	stats   engine.Stats
	rollups []obs.Rollup
}

// snapshotCell records the current counters when manifests are enabled;
// otherwise it returns an inert snapshot (Stats() walks the family table
// and allocates, so the disabled path must not call it).
func snapshotCell(cfg Config) cellSnapshot {
	if cfg.ManifestDir == "" {
		return cellSnapshot{}
	}
	s := cellSnapshot{active: true, stats: engine.Default().Stats()}
	if rec := obs.CurrentRecorder(); rec != nil {
		s.rollups = rec.Rollups()
	}
	return s
}

// writeManifest writes the cell's manifest — seed, dataset digest,
// measure kind, engine-counter deltas, and span-rollup deltas since the
// snapshot — as manifest-<kind>-<dataset>.json under cfg.ManifestDir.
// Runners that revisit a cell (tables and figures share runDetail)
// overwrite deterministically; the last pass wins.
func (s cellSnapshot) writeManifest(cfg Config, k Kind, dataset string, g *graph.Graph) error {
	if !s.active {
		return nil
	}
	man := obs.NewManifest("experiments", cfg.Seed)
	man.Measure = k.Short
	man.Dataset = &obs.DatasetInfo{Name: dataset, N: g.N(), M: g.M(), Digest: graph.Digest(g)}
	es := engine.Default().Stats().Delta(s.stats).Manifest()
	man.Engine = &es
	if rec := obs.CurrentRecorder(); rec != nil {
		man.SetPhases(obs.DiffRollups(s.rollups, rec.Rollups()))
	}
	man.CaptureMem()
	name := fmt.Sprintf("manifest-%s-%s.json", strings.ToLower(k.Short), strings.ToLower(dataset))
	return man.WriteFile(filepath.Join(cfg.ManifestDir, name))
}
