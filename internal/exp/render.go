package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: an identifier matching the
// paper ("Table VII"), column headers, and string rows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(t.Columns) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Curve is one max/avg/min band of a figure, per dataset.
type Curve struct {
	Dataset string
	X       []int // promotion sizes p
	Max     []float64
	Avg     []float64
	Min     []float64
}

// Figure is a reproduced paper figure: Ratio (or score variation) bands
// per dataset across promotion sizes.
type Figure struct {
	ID     string
	Title  string
	YLabel string
	Curves []Curve
}

// Render writes the figure as one aligned text block per dataset.
func (f *Figure) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s (y = %s)\n", f.ID, f.Title, f.YLabel)
	for _, c := range f.Curves {
		fmt.Fprintf(&b, "  %s\n", c.Dataset)
		fmt.Fprintf(&b, "    %-6s", "p")
		for _, x := range c.X {
			fmt.Fprintf(&b, "  %10d", x)
		}
		b.WriteByte('\n')
		writeBand := func(name string, ys []float64) {
			fmt.Fprintf(&b, "    %-6s", name)
			for _, y := range ys {
				fmt.Fprintf(&b, "  %10.3f", y)
			}
			b.WriteByte('\n')
		}
		writeBand("max", c.Max)
		writeBand("avg", c.Avg)
		writeBand("min", c.Min)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table,
// for pasting experiment output straight into EXPERIMENTS.md.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s: %s**\n\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	b.WriteByte('|')
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the figure as one markdown table per dataset
// curve, with p columns and max/avg/min rows.
func (f *Figure) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s: %s** (y = %s)\n", f.ID, f.Title, f.YLabel)
	for _, c := range f.Curves {
		fmt.Fprintf(&b, "\n*%s*\n\n| p |", c.Dataset)
		for _, x := range c.X {
			fmt.Fprintf(&b, " %d |", x)
		}
		b.WriteString("\n|---|")
		for range c.X {
			b.WriteString("---|")
		}
		b.WriteByte('\n')
		band := func(name string, ys []float64) {
			fmt.Fprintf(&b, "| %s |", name)
			for _, y := range ys {
				fmt.Fprintf(&b, " %.3f |", y)
			}
			b.WriteByte('\n')
		}
		band("max", c.Max)
		band("avg", c.Avg)
		band("min", c.Min)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes each curve of the figure as CSV rows
// (dataset,band,p,value), ready for gnuplot/pandas plotting.
func (f *Figure) RenderCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("dataset,band,p,value\n")
	for _, c := range f.Curves {
		for _, band := range []struct {
			name string
			ys   []float64
		}{{"max", c.Max}, {"avg", c.Avg}, {"min", c.Min}} {
			for i, y := range band.ys {
				fmt.Fprintf(&b, "%s,%s,%d,%g\n", csvEscape(c.Dataset), band.name, c.X[i], y)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV with a header row.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// fnum formats a float compactly (integers without decimals).
func fnum(x float64) string {
	if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.1f", x)
}
