package exp

import (
	"strconv"
	"testing"
)

func TestGuaranteeTable(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"WIKI"}
	tab, err := GuaranteeTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4*cfg.NumTableTargets {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), 4*cfg.NumTableTargets)
	}
	for _, row := range tab.Rows {
		if row[5] == "already rank 1" {
			continue
		}
		// Soundness: promoting at the bound is always effective, and
		// the smallest effective size never exceeds the bound.
		if row[5] != "yes" {
			t.Errorf("bound not sufficient in row %v", row)
		}
		bound, err1 := strconv.Atoi(row[3])
		smallest, err2 := strconv.Atoi(row[4])
		if err1 == nil && err2 == nil && smallest > bound {
			t.Errorf("smallest effective %d exceeds bound %d: %v", smallest, bound, row)
		}
	}
}

func TestDetectabilityTable(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"WIKI"}
	tab, err := DetectabilityTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3*len(cfg.Sizes) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), 3*len(cfg.Sizes))
	}
	// The simple strategies of Section IV are always detectable by an
	// owner who keeps snapshots — every row must be flagged and
	// correctly classified.
	for _, row := range tab.Rows {
		if row[2] != "yes" {
			t.Errorf("strategy not detected: %v", row)
		}
		if row[3] != "yes" {
			t.Errorf("strategy misclassified: %v", row)
		}
	}
}

func TestClosenessComparison(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"WIKI"}
	ratioFig, farFig, err := ClosenessComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ratioFig.Curves) != 2 || len(farFig.Curves) != 2 {
		t.Fatalf("curves: %d/%d, want 2/2", len(ratioFig.Curves), len(farFig.Curves))
	}
	var mp, gr Curve
	for _, c := range farFig.Curves {
		switch c.Dataset {
		case "WIKI Multi-Point":
			mp = c
		case "WIKI Greedy":
			gr = c
		}
	}
	// The score-vs-ranking contrast: multi-point *raises* the target's
	// farness (negative reduction) while greedy lowers it.
	last := len(mp.Avg) - 1
	if mp.Avg[last] >= 0 {
		t.Errorf("multi-point farness reduction %v, want negative (pendants add distance)", mp.Avg[last])
	}
	if gr.Avg[last] <= 0 {
		t.Errorf("greedy farness reduction %v, want positive", gr.Avg[last])
	}
	// Yet multi-point still achieves positive ranking improvement.
	for _, c := range ratioFig.Curves {
		if c.Dataset == "WIKI Multi-Point" && c.Avg[len(c.Avg)-1] <= 0 {
			t.Errorf("multi-point avg Ratio %v at final p, want > 0", c.Avg[len(c.Avg)-1])
		}
	}
}

func TestArmsRaceTable(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"WIKI"}
	tab, err := ArmsRaceTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 { // 4 measures x 3 participant counts
		t.Fatalf("rows = %d, want 12", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		i, _ := strconv.Atoi(row[2])
		u, _ := strconv.Atoi(row[3])
		d, _ := strconv.Atoi(row[4])
		k, _ := strconv.Atoi(row[1])
		if i+u+d != k {
			t.Errorf("counts don't partition participants: %v", row)
		}
	}
}

func TestBaselineTable(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"WIKI"}
	tab, err := BaselineTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (4 measures x 2 methods)", len(tab.Rows))
	}
	for i := 0; i < len(tab.Rows); i += 2 {
		if tab.Rows[i][2] != "no" || tab.Rows[i+1][2] != "yes" {
			t.Errorf("row pairing broken at %d: %v / %v", i, tab.Rows[i], tab.Rows[i+1])
		}
	}
}

func TestExtensionFigure(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"WIKI", "HEPP"}
	fig, err := ExtensionFigure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 6 { // 2 datasets x 3 measures
		t.Fatalf("curves = %d, want 6", len(fig.Curves))
	}
	for _, c := range fig.Curves {
		for i, v := range c.Min {
			if v < 0 {
				t.Errorf("%s: extension measure demoted a target at p=%d (Ratio %v)", c.Dataset, c.X[i], v)
			}
		}
	}
}
