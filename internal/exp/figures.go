package exp

import (
	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/graph"
	"promonet/internal/greedy"
)

// RatioFigure reproduces Figs. 4–7: for each dataset, the maximum,
// average, and minimum relative ranking variation (Ratio) over
// cfg.NumTargets random targets at each promotion size.
func RatioFigure(cfg Config, k Kind) (*Figure, error) {
	results, err := runDetail(cfg, k, cfg.NumTargets, 0)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     k.FigID,
		Title:  "Relative ranking variations (" + k.Short + ")",
		YLabel: "Ratio (%)",
	}
	for _, res := range results {
		c := Curve{Dataset: res.dataset, X: cfg.Sizes}
		for si := range cfg.Sizes {
			maxR, minR, sum := 0.0, 0.0, 0.0
			for ti := range res.cells {
				r := res.cells[ti][si].Ratio
				if ti == 0 || r > maxR {
					maxR = r
				}
				if ti == 0 || r < minR {
					minR = r
				}
				sum += r
			}
			c.Max = append(c.Max, maxR)
			c.Min = append(c.Min, minR)
			c.Avg = append(c.Avg, sum/float64(len(res.cells)))
		}
		f.Curves = append(f.Curves, c)
	}
	return f, nil
}

// GreedyComparison reproduces Figs. 8 and 9 (Exps 5–6): the multi-point
// strategy versus the structure-aware Greedy baseline [18] for
// betweenness, on the first two datasets, averaged over
// cfg.GreedyTargets low-betweenness targets, for p = 1..GreedyBudget
// inserted nodes (Multi-Point) or edges (Greedy).
//
// The returned figures carry one curve per method and dataset: ratioFig
// has Y = average Ratio (%), scoreFig has Y = average score variation.
// The Avg band holds the average; Max/Min are the per-target extremes.
func GreedyComparison(cfg Config) (ratioFig, scoreFig *Figure, err error) {
	profiles, err := cfg.profiles()
	if err != nil {
		return nil, nil, err
	}
	if len(profiles) > 2 {
		profiles = profiles[:2]
	}
	sizes := make([]int, cfg.GreedyBudget)
	for i := range sizes {
		sizes[i] = i + 1
	}
	ratioFig = &Figure{ID: "Fig. 8", Title: "Comparison of relative ranking variations (BC): Multi-Point vs Greedy", YLabel: "avg Ratio (%)"}
	scoreFig = &Figure{ID: "Fig. 9", Title: "Comparison of score variations (BC): Multi-Point vs Greedy", YLabel: "avg Δ_C(t)"}

	for _, p := range profiles {
		g := p.Build(cfg.Seed, cfg.Scale)
		m := cfg.betweenness(g)
		before := m.Scores(g)
		rng := newSeededRand(cfg.Seed, p.Name, "greedy-cmp")
		targets := pickLowTargets(rng, before, cfg.GreedyTargets)

		nT := len(targets)
		mpRatio := make([][]float64, nT) // [target][size]
		mpScore := make([][]float64, nT)
		grRatio := make([][]float64, nT)
		grScore := make([][]float64, nT)

		for ti, target := range targets {
			// Multi-Point at every p.
			for _, size := range sizes {
				s := core.Strategy{Target: target, Size: size, Type: core.MultiPoint}
				g2, _, err := s.Apply(g)
				if err != nil {
					return nil, nil, err
				}
				after := m.Scores(g2)
				dr := centrality.RankingVariation(before, after, target)
				mpRatio[ti] = append(mpRatio[ti], centrality.Ratio(dr, g.N()))
				mpScore[ti] = append(mpScore[ti], after[target]-before[target])
			}
			// Greedy once with the full budget; per-round vectors give
			// every p.
			opts := greedy.Options{Counting: centrality.PairsOrdered}
			if cfg.GreedyCandidateSample > 0 || cfg.GreedyPivotSources > 0 {
				opts.CandidateSample = cfg.GreedyCandidateSample
				opts.PivotSources = cfg.GreedyPivotSources
				opts.Rand = newSeededRand(cfg.Seed, p.Name, "greedy-inner")
			}
			_, res, err := greedy.Improve(g, target, cfg.GreedyBudget, opts)
			if err != nil {
				return nil, nil, err
			}
			for _, after := range res.AfterPerRound {
				dr := centrality.RankingVariation(before, after, target)
				grRatio[ti] = append(grRatio[ti], centrality.Ratio(dr, g.N()))
				grScore[ti] = append(grScore[ti], after[target]-before[target])
			}
			// If Greedy ran out of candidates early, repeat its final
			// state for the remaining sizes.
			for len(grRatio[ti]) < len(sizes) {
				last := len(grRatio[ti]) - 1
				grRatio[ti] = append(grRatio[ti], grRatio[ti][last])
				grScore[ti] = append(grScore[ti], grScore[ti][last])
			}
		}

		ratioFig.Curves = append(ratioFig.Curves,
			bandOver(p.Name+" Multi-Point", sizes, mpRatio),
			bandOver(p.Name+" Greedy", sizes, grRatio))
		scoreFig.Curves = append(scoreFig.Curves,
			bandOver(p.Name+" Multi-Point", sizes, mpScore),
			bandOver(p.Name+" Greedy", sizes, grScore))
	}
	return ratioFig, scoreFig, nil
}

// bandOver aggregates per-target series into a max/avg/min band.
func bandOver(name string, sizes []int, perTarget [][]float64) Curve {
	c := Curve{Dataset: name, X: sizes}
	for si := range sizes {
		maxV, minV, sum := 0.0, 0.0, 0.0
		for ti := range perTarget {
			v := perTarget[ti][si]
			if ti == 0 || v > maxV {
				maxV = v
			}
			if ti == 0 || v < minV {
				minV = v
			}
			sum += v
		}
		c.Max = append(c.Max, maxV)
		c.Min = append(c.Min, minV)
		c.Avg = append(c.Avg, sum/float64(len(perTarget)))
	}
	return c
}

// Ablation applies the wrong strategy per Table I to each measure (e.g.
// double-line for coreness) and reports the property-check outcome next
// to the principle-guided strategy's — the DESIGN.md §6.4 ablation. Each
// row is one (measure, strategy) pair averaged over cfg.NumTargets
// random targets on the first dataset at the middle promotion size.
func Ablation(cfg Config) (*Table, error) {
	profiles, err := cfg.profiles()
	if err != nil {
		return nil, err
	}
	p := profiles[0]
	size := cfg.Sizes[len(cfg.Sizes)/2]
	t := &Table{
		ID:    "Ablation",
		Title: "Strategy mismatch ablation on " + p.Name + ": principle-guided vs wrong strategy",
		Columns: []string{"Measure", "Strategy", "Guided?", "gain holds", "dominance holds",
			"avg Δ_R", "avg Ratio (%)", "effective (of targets)"},
	}
	kinds := []Kind{KindBC, KindRC, KindCC, KindEC}
	wrong := map[string]core.StrategyType{
		// The most adversarial mismatch for each measure.
		"BC": core.DoubleLine,   // kills the pairwise gain of multi-point
		"RC": core.MultiPoint,   // pendant nodes never raise coreness
		"CC": core.DoubleLine,   // long chains inflate the target's farness
		"EC": core.SingleClique, // clique keeps others' eccentricity intact
	}
	for _, k := range kinds {
		for _, strat := range []core.StrategyType{k.strategy, wrong[k.Short]} {
			run := newPromotionRun(cfg, p, func(g *graph.Graph) core.Measure { return k.mk(cfg, g) }, strat)
			rng := newSeededRand(cfg.Seed, p.Name, "ablation", k.Short)
			targets := pickTargets(rng, run.g, cfg.NumTargets)
			gainAll, domAll := true, true
			sumDR, sumRatio, eff := 0, 0.0, 0
			for _, target := range targets {
				c := run.measureCell(target, size)
				gainAll = gainAll && c.Check.Gain
				domAll = domAll && c.Check.Dominance
				sumDR += c.DeltaRank
				sumRatio += c.Ratio
				if c.DeltaRank > 0 {
					eff++
				}
			}
			nT := float64(len(targets))
			t.Rows = append(t.Rows, []string{
				k.Short, strat.String(), boolMark(strat == k.strategy),
				boolMark(gainAll), boolMark(domAll),
				fnum(float64(sumDR) / nT), fnum(sumRatio / nT),
				fnum(float64(eff)) + "/" + fnum(nT),
			})
		}
	}
	return t, nil
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
