package exp

import (
	"fmt"
	"strconv"

	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/engine"
	"promonet/internal/graph"
	"promonet/internal/greedy"
)

// This file holds experiments beyond the paper's evaluation: the
// tightness of the theoretical p′ bounds (Remark 2), the detectability
// analysis deferred in Remark 1, and ranking promotion for the
// Section VI-B extension measures (harmonic, degree, Katz).

// GuaranteeTable compares, per measure and target, the theoretical
// guaranteed size (GuaranteedSize, from Lemmas 5.3/5.6/5.9/5.12) with
// the smallest promotion size that empirically improved the ranking.
// The bound is sound (empirical <= theoretical) but not tight; this
// table quantifies the slack.
func GuaranteeTable(cfg Config) (*Table, error) {
	profiles, err := cfg.profiles()
	if err != nil {
		return nil, err
	}
	p := profiles[0]
	t := &Table{
		ID:    "Guarantee",
		Title: "Theoretical p' bound vs smallest empirically effective size on " + p.Name,
		Columns: []string{"Measure", "Target", "rank before", "p' bound", "smallest effective p",
			"effective at p'", "slack"},
	}
	kinds := []Kind{KindBC, KindRC, KindCC, KindEC}
	for _, k := range kinds {
		run := newPromotionRun(cfg, p, func(g *graph.Graph) core.Measure { return k.mk(cfg, g) }, k.strategy)
		rng := newSeededRand(cfg.Seed, p.Name, "guarantee", k.Short)
		targets := pickTargets(rng, run.g, cfg.NumTableTargets)
		for _, target := range targets {
			bound, needed, err := core.GuaranteedSize(run.g, run.measure, target)
			if err != nil {
				return nil, err
			}
			rankBefore := centrality.RankOf(run.before, target)
			if !needed {
				t.Rows = append(t.Rows, []string{k.Short, strconv.Itoa(target),
					strconv.Itoa(rankBefore), "-", "-", "already rank 1", "-"})
				continue
			}
			// Find the smallest effective size by doubling then linear
			// backoff; cap the search at max(bound, 256).
			limit := bound
			if limit < 256 {
				limit = 256
			}
			smallest := -1
			for size := 1; size <= limit; size *= 2 {
				if run.measureCell(target, size).DeltaRank > 0 {
					// Linear scan back down within [size/2+1, size].
					lo := size/2 + 1
					smallest = size
					for q := lo; q < size; q++ {
						if run.measureCell(target, q).DeltaRank > 0 {
							smallest = q
							break
						}
					}
					break
				}
			}
			atBound := "no"
			if bound >= 1 && run.measureCell(target, bound).DeltaRank > 0 {
				atBound = "yes"
			}
			smallestStr, slack := "none<=256", "-"
			if smallest > 0 {
				smallestStr = strconv.Itoa(smallest)
				slack = strconv.Itoa(bound - smallest)
			}
			t.Rows = append(t.Rows, []string{k.Short, strconv.Itoa(target),
				strconv.Itoa(rankBefore), strconv.Itoa(bound), smallestStr, atBound, slack})
		}
	}
	return t, nil
}

// DetectabilityTable applies each strategy at each size to random
// targets and reports whether the owner-side detector (core.Detect)
// identifies the correct strategy, plus the structural deltas an owner
// would see — the Remark 1 future-work topic.
func DetectabilityTable(cfg Config) (*Table, error) {
	profiles, err := cfg.profiles()
	if err != nil {
		return nil, err
	}
	p := profiles[0]
	g := p.Build(cfg.Seed, cfg.Scale)
	t := &Table{
		ID:    "Detectability",
		Title: "Owner-side detection of promotion strategies on " + p.Name,
		Columns: []string{"Strategy", "p", "detected", "classified correctly",
			"degree-KS", "pendant delta", "clustering delta"},
	}
	rng := newSeededRand(cfg.Seed, p.Name, "detect")
	for _, typ := range []core.StrategyType{core.MultiPoint, core.DoubleLine, core.SingleClique} {
		for _, size := range cfg.Sizes {
			target := rng.Intn(g.N())
			g2, _, err := (core.Strategy{Target: target, Size: size, Type: typ}).Apply(g)
			if err != nil {
				return nil, err
			}
			r, err := core.Detect(g, g2)
			if err != nil {
				return nil, err
			}
			correct := r.Suspicious && r.SuspectedStrategy == typ
			if typ == core.DoubleLine && size <= 2 && r.SuspectedStrategy == core.MultiPoint {
				correct = true // p <= 2 double-line is literally multi-point
			}
			t.Rows = append(t.Rows, []string{
				typ.String(), strconv.Itoa(size),
				boolMark(r.Suspicious), boolMark(correct),
				fmt.Sprintf("%.4f", r.DegreeKS),
				fmt.Sprintf("%+.4f", r.PendantFractionAfter-r.PendantFractionBefore),
				fmt.Sprintf("%+.4f", r.ClusteringAfter-r.ClusteringBefore),
			})
		}
	}
	return t, nil
}

// ClosenessComparison is the closeness analogue of Figs. 8–9, which the
// paper omitted "due to space limitations": the multi-point strategy
// versus the structure-aware greedy of Crescenzi et al. [9], on the
// first two datasets, averaged over low-closeness targets, for
// p = 1..GreedyBudget inserted nodes (Multi-Point) or edges (Greedy).
// Both figures report Ratio and reciprocal-score (farness) variation.
func ClosenessComparison(cfg Config) (ratioFig, farnessFig *Figure, err error) {
	profiles, err := cfg.profiles()
	if err != nil {
		return nil, nil, err
	}
	if len(profiles) > 2 {
		profiles = profiles[:2]
	}
	sizes := make([]int, cfg.GreedyBudget)
	for i := range sizes {
		sizes[i] = i + 1
	}
	ratioFig = &Figure{ID: "Fig. E2", Title: "Comparison of relative ranking variations (CC): Multi-Point vs Greedy [9]", YLabel: "avg Ratio (%)"}
	farnessFig = &Figure{ID: "Fig. E3", Title: "Comparison of farness reductions (CC): Multi-Point vs Greedy [9]", YLabel: "avg -Δ̄_C(t)"}

	for _, p := range profiles {
		g := p.Build(cfg.Seed, cfg.Scale)
		m := core.ClosenessMeasure{}
		before := m.Scores(g)
		beforeFar := engine.Default().FarnessInt64(g)
		rng := newSeededRand(cfg.Seed, p.Name, "cc-cmp")
		targets := pickLowTargets(rng, before, cfg.GreedyTargets)

		nT := len(targets)
		mpRatio := make([][]float64, nT)
		mpFar := make([][]float64, nT)
		grRatio := make([][]float64, nT)
		grFar := make([][]float64, nT)

		for ti, target := range targets {
			for _, size := range sizes {
				s := core.Strategy{Target: target, Size: size, Type: core.MultiPoint}
				g2, _, err := s.Apply(g)
				if err != nil {
					return nil, nil, err
				}
				after := m.Scores(g2)
				dr := centrality.RankingVariation(before, after, target)
				mpRatio[ti] = append(mpRatio[ti], centrality.Ratio(dr, g.N()))
				afterFar := engine.Default().FarnessInt64(g2)
				// Multi-point *increases* the target's farness by p
				// (each pendant at distance 1); report the reduction,
				// which is negative for multi-point and positive for
				// greedy — the score-vs-ranking contrast of Fig. 9.
				mpFar[ti] = append(mpFar[ti], float64(beforeFar[target]-afterFar[target]))
			}
			gopts := greedy.ClosenessOptions{}
			if cfg.GreedyCandidateSample > 0 {
				gopts.CandidateSample = cfg.GreedyCandidateSample
				gopts.Rand = newSeededRand(cfg.Seed, p.Name, "cc-inner")
			}
			_, res, err := greedy.ImproveCloseness(g, target, cfg.GreedyBudget, gopts)
			if err != nil {
				return nil, nil, err
			}
			// Per-round farness gives the target's score at every p;
			// other nodes' closeness only improves under edge addition,
			// so rank the target by replaying farness per round.
			work := g.Clone()
			for ri, e := range res.Edges {
				work.AddEdge(e[0], e[1])
				after := engine.Default().Scores(work, engine.Closeness())
				dr := centrality.RankingVariation(before, after, target)
				grRatio[ti] = append(grRatio[ti], centrality.Ratio(dr, g.N()))
				grFar[ti] = append(grFar[ti], float64(beforeFar[target]-res.FarnessPerRound[ri]))
			}
			for len(grRatio[ti]) < len(sizes) {
				last := len(grRatio[ti]) - 1
				if last < 0 {
					grRatio[ti] = append(grRatio[ti], 0)
					grFar[ti] = append(grFar[ti], 0)
					continue
				}
				grRatio[ti] = append(grRatio[ti], grRatio[ti][last])
				grFar[ti] = append(grFar[ti], grFar[ti][last])
			}
		}
		ratioFig.Curves = append(ratioFig.Curves,
			bandOver(p.Name+" Multi-Point", sizes, mpRatio),
			bandOver(p.Name+" Greedy", sizes, grRatio))
		farnessFig.Curves = append(farnessFig.Curves,
			bandOver(p.Name+" Multi-Point", sizes, mpFar),
			bandOver(p.Name+" Greedy", sizes, grFar))
	}
	return ratioFig, farnessFig, nil
}

// ArmsRaceTable quantifies the scenario that motivates ranking-based
// promotion in the paper's introduction: several nodes promote
// *simultaneously*. For each measure it lets k low-score nodes apply
// the principle-guided strategy at once and reports how many of them
// still improved — the single-promoter theorems make no promise here,
// so this measures how robust the strategies are to competition.
func ArmsRaceTable(cfg Config) (*Table, error) {
	profiles, err := cfg.profiles()
	if err != nil {
		return nil, err
	}
	p := profiles[0]
	g := p.Build(cfg.Seed, cfg.Scale)
	size := cfg.Sizes[len(cfg.Sizes)/2]
	t := &Table{
		ID:    "ArmsRace",
		Title: fmt.Sprintf("Simultaneous promotion on %s (p=%d per participant)", p.Name, size),
		Columns: []string{"Measure", "participants", "improved", "unchanged", "demoted",
			"mean Δ_R", "mean solo Δ_R"},
	}
	for _, k := range []Kind{KindBC, KindRC, KindCC, KindEC} {
		m := k.mk(cfg, g)
		before := m.Scores(g)
		for _, participants := range []int{2, 5, 10} {
			rng := newSeededRand(cfg.Seed, p.Name, "armsrace", k.Short, strconv.Itoa(participants))
			targets := pickLowTargets(rng, before, participants)
			_, outcomes, err := core.PromoteAll(g, m, targets, size)
			if err != nil {
				return nil, err
			}
			improved, unchanged, demoted, mean := core.ArmsRaceSummary(outcomes)
			// Reference: the same targets promoting alone.
			soloTotal := 0
			for _, target := range targets {
				_, o, err := core.Promote(g, m, target, size)
				if err != nil {
					return nil, err
				}
				soloTotal += o.DeltaRank
			}
			t.Rows = append(t.Rows, []string{
				k.Short, strconv.Itoa(participants),
				strconv.Itoa(improved), strconv.Itoa(unchanged), strconv.Itoa(demoted),
				fnum(mean), fnum(float64(soloTotal) / float64(len(targets))),
			})
		}
	}
	return t, nil
}

// BaselineTable compares, at an equal edge budget, the black-box
// principle-guided strategy against the structure-aware greedy baseline
// for all four measures ([18] for BC, [19]-style for RC, [9] for CC,
// [20]-style for EC) on the first dataset — the full-width version of
// the paper's Section VII-C, which compared betweenness only.
func BaselineTable(cfg Config) (*Table, error) {
	profiles, err := cfg.profiles()
	if err != nil {
		return nil, err
	}
	p := profiles[0]
	g := p.Build(cfg.Seed, cfg.Scale)
	budget := cfg.GreedyBudget
	t := &Table{
		ID: "Baseline",
		Title: fmt.Sprintf("Black-box vs structure-aware promotion on %s at budget %d edges (avg over %d low-score targets)",
			p.Name, budget, cfg.GreedyTargets),
		Columns: []string{"Measure", "method", "needs structure", "avg Δ_R", "avg Ratio (%)", "avg score delta"},
	}

	gopts := greedy.ClosenessOptions{}
	bopts := greedy.Options{Counting: centrality.PairsOrdered}
	if cfg.GreedyCandidateSample > 0 {
		gopts.CandidateSample = cfg.GreedyCandidateSample
		gopts.Rand = newSeededRand(cfg.Seed, p.Name, "baseline-inner")
		bopts.CandidateSample = cfg.GreedyCandidateSample
		bopts.Rand = newSeededRand(cfg.Seed, p.Name, "baseline-bc")
	}

	for _, k := range []Kind{KindBC, KindRC, KindCC, KindEC} {
		m := k.mk(cfg, g)
		before := m.Scores(g)
		rng := newSeededRand(cfg.Seed, p.Name, "baseline", k.Short)
		targets := pickLowTargets(rng, before, cfg.GreedyTargets)

		var bbDR, bbRatio, bbScore float64
		var grDR, grRatio, grScore float64
		for _, target := range targets {
			// Black box: guided strategy at the maximal size the edge
			// budget affords.
			_, o, err := core.PromoteBudgeted(g, m, target, budget)
			if err != nil {
				return nil, err
			}
			bbDR += float64(o.DeltaRank)
			bbRatio += o.Ratio
			bbScore += o.ScoreVariation

			// Structure aware: measure-specific greedy with the same
			// edge budget.
			var g2 *graph.Graph
			switch k.Short {
			case "BC":
				g2, _, err = greedy.Improve(g, target, budget, bopts)
			case "RC":
				g2, _, err = greedy.ImproveCoreness(g, target, budget, gopts)
			case "CC":
				g2, _, err = greedy.ImproveCloseness(g, target, budget, gopts)
			case "EC":
				g2, _, err = greedy.ImproveEccentricity(g, target, budget, gopts)
			}
			if err != nil {
				return nil, err
			}
			after := m.Scores(g2)
			dr := centrality.RankingVariation(before, after, target)
			grDR += float64(dr)
			grRatio += centrality.Ratio(dr, g.N())
			grScore += after[target] - before[target]
		}
		nT := float64(len(targets))
		t.Rows = append(t.Rows,
			[]string{k.Short, "black-box (" + m.Strategy().String() + ")", "no",
				fnum(bbDR / nT), fnum(bbRatio / nT), fnum(bbScore / nT)},
			[]string{k.Short, "greedy", "yes",
				fnum(grDR / nT), fnum(grRatio / nT), fnum(grScore / nT)},
		)
	}
	return t, nil
}

// ExtensionFigure runs the ratio experiment for the Section VI-B
// extension measures (harmonic, degree, Katz) under their
// principle-guided strategies, demonstrating the principles generalize
// beyond the four proved measures.
func ExtensionFigure(cfg Config) (*Figure, error) {
	profiles, err := cfg.profiles()
	if err != nil {
		return nil, err
	}
	if len(profiles) > 2 {
		profiles = profiles[:2]
	}
	f := &Figure{
		ID:     "Fig. E1",
		Title:  "Relative ranking variations for extension measures (HC, DC, KC)",
		YLabel: "Ratio (%)",
	}
	measures := []core.Measure{core.HarmonicMeasure{}, core.DegreeMeasure{}, core.KatzMeasure{}}
	for _, p := range profiles {
		for _, m := range measures {
			m := m
			run := newPromotionRun(cfg, p, func(*graph.Graph) core.Measure { return m }, m.Strategy())
			rng := newSeededRand(cfg.Seed, p.Name, "ext", m.Short())
			targets := pickTargets(rng, run.g, cfg.NumTargets)
			perTarget := make([][]float64, len(targets))
			for ti, target := range targets {
				for _, size := range cfg.Sizes {
					c := run.measureCell(target, size)
					perTarget[ti] = append(perTarget[ti], c.Ratio)
				}
			}
			f.Curves = append(f.Curves, bandOver(p.Name+" "+m.Short(), cfg.Sizes, perTarget))
		}
	}
	return f, nil
}
