package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// testConfig is a fast, deterministic configuration for CI: tiny hosts,
// few targets, small sweep.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.012
	cfg.NumTargets = 4
	cfg.NumTableTargets = 2
	cfg.Sizes = []int{4, 8, 16}
	cfg.BCSampleThreshold = 0 // exact everywhere at this scale
	cfg.GreedyBudget = 3
	cfg.GreedyTargets = 2
	cfg.GreedyCandidateSample = 20
	cfg.GreedyPivotSources = 0
	return cfg
}

func TestTableVI(t *testing.T) {
	tab, err := TableVI(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Table VI has %d rows, want 4", len(tab.Rows))
	}
	names := map[string]bool{}
	for _, row := range tab.Rows {
		names[row[0]] = true
	}
	for _, want := range []string{"WIKI", "HEPP", "EPIN", "SLAS"} {
		if !names[want] {
			t.Errorf("Table VI missing dataset %s", want)
		}
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Degeneracy") {
		t.Error("rendered Table VI missing header")
	}
}

func TestDatasetFilter(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"HEPP"}
	tab, err := TableVI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "HEPP" {
		t.Errorf("filtered Table VI rows = %v", tab.Rows)
	}
	cfg.Datasets = []string{"NOPE"}
	if _, err := TableVI(cfg); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// parseCells extracts the numeric t/v column pairs from a variation or
// dominance table row (after the two label columns).
func parseCells(t *testing.T, row []string) []float64 {
	t.Helper()
	out := make([]float64, 0, len(row)-2)
	for _, s := range row[2:] {
		var x float64
		if _, err := sscan(s, &x); err != nil {
			t.Fatalf("non-numeric cell %q in row %v", s, row)
		}
		out = append(out, x)
	}
	return out
}

func TestVariationTablesRespectPrinciples(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"WIKI", "HEPP"}
	for _, k := range []Kind{KindBC, KindRC, KindCC, KindEC} {
		k := k
		t.Run(k.Short, func(t *testing.T) {
			tab, err := VariationTable(cfg, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) != 2*cfg.NumTableTargets {
				t.Fatalf("%s rows = %d, want %d", tab.ID, len(tab.Rows), 2*cfg.NumTableTargets)
			}
			for _, row := range tab.Rows {
				vals := parseCells(t, row)
				for i := 0; i+1 < len(vals); i += 2 {
					tv, ov := vals[i], vals[i+1]
					if k.Short == "BC" || k.Short == "RC" {
						// Maximum property: Δ_C(t) >= Δ_C(v).
						if tv < ov-1e-9 {
							t.Errorf("%s row %v: target var %v < other var %v", tab.ID, row[:2], tv, ov)
						}
					} else {
						// Minimum property: Δ̄_C(t) <= Δ̄_C(v).
						if tv > ov+1e-9 {
							t.Errorf("%s row %v: target recip var %v > other %v", tab.ID, row[:2], tv, ov)
						}
					}
				}
			}
		})
	}
}

func TestDominanceTablesRespectDominance(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"WIKI", "HEPP"}
	for _, k := range []Kind{KindBC, KindRC, KindCC, KindEC} {
		k := k
		t.Run(k.Short, func(t *testing.T) {
			tab, err := DominanceTable(cfg, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range tab.Rows {
				vals := parseCells(t, row)
				for i := 0; i+1 < len(vals); i += 2 {
					tv, wv := vals[i], vals[i+1]
					if k.Short == "CC" || k.Short == "EC" {
						// Reciprocal scores: target must be <= inserted.
						if tv > wv+1e-9 {
							t.Errorf("%s row %v: target recip %v > inserted %v", tab.ID, row[:2], tv, wv)
						}
					} else {
						if tv < wv-1e-9 {
							t.Errorf("%s row %v: target score %v < inserted %v", tab.ID, row[:2], tv, wv)
						}
					}
				}
			}
		})
	}
}

func TestRatioFiguresShapes(t *testing.T) {
	cfg := testConfig()
	for _, k := range []Kind{KindBC, KindRC, KindCC, KindEC} {
		k := k
		t.Run(k.Short, func(t *testing.T) {
			fig, err := RatioFigure(cfg, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(fig.Curves) != 4 {
				t.Fatalf("%s has %d curves, want 4", fig.ID, len(fig.Curves))
			}
			for _, c := range fig.Curves {
				// Theorems 5.3-5.6: the principle-guided strategy never
				// demotes, so min Ratio >= 0 at every size.
				for i, v := range c.Min {
					if v < 0 {
						t.Errorf("%s %s: min Ratio %v < 0 at p=%d", fig.ID, c.Dataset, v, c.X[i])
					}
				}
				// Paper shape: Ratio grows with p — check max band is
				// non-decreasing up to small noise and positive by the
				// largest size.
				last := len(c.Max) - 1
				if c.Max[last] <= 0 {
					t.Errorf("%s %s: max Ratio %v at largest p, want > 0", fig.ID, c.Dataset, c.Max[last])
				}
				if c.Avg[last] < c.Avg[0]-1e-9 {
					t.Errorf("%s %s: avg Ratio decreased across sweep: %v -> %v",
						fig.ID, c.Dataset, c.Avg[0], c.Avg[last])
				}
			}
			var buf bytes.Buffer
			if err := fig.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "Ratio") {
				t.Error("figure render missing y-label")
			}
		})
	}
}

func TestGreedyComparison(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"WIKI"}
	ratioFig, scoreFig, err := GreedyComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ratioFig.Curves) != 2 || len(scoreFig.Curves) != 2 {
		t.Fatalf("comparison curves: %d/%d, want 2/2", len(ratioFig.Curves), len(scoreFig.Curves))
	}
	for _, f := range []*Figure{ratioFig, scoreFig} {
		for _, c := range f.Curves {
			if len(c.X) != cfg.GreedyBudget {
				t.Errorf("%s %s: %d points, want %d", f.ID, c.Dataset, len(c.X), cfg.GreedyBudget)
			}
		}
	}
	// Both methods must strictly increase the target's score by the
	// final budget (positive avg score variation).
	for _, c := range scoreFig.Curves {
		if c.Avg[len(c.Avg)-1] <= 0 {
			t.Errorf("Fig. 9 %s: final avg score variation %v, want > 0", c.Dataset, c.Avg[len(c.Avg)-1])
		}
	}
}

func TestAblation(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"WIKI"}
	tab, err := Ablation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("ablation rows = %d, want 8 (4 measures x 2 strategies)", len(tab.Rows))
	}
	// Every guided row must report gain+dominance holding.
	for _, row := range tab.Rows {
		if row[2] == "yes" && (row[3] != "yes" || row[4] != "yes") {
			t.Errorf("guided strategy violated its principle: %v", row)
		}
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{
		ID: "T", Title: "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"xxx", "y"}},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4", len(lines))
	}
}

// sscan is a tiny strconv wrapper so tests read naturally.
func sscan(s string, x *float64) (int, error) {
	return fmt.Sscan(s, x)
}

func TestKindByShort(t *testing.T) {
	for _, s := range []string{"BC", "RC", "CC", "EC"} {
		k, err := KindByShort(s)
		if err != nil || k.Short != s {
			t.Errorf("KindByShort(%q) = %v, %v", s, k.Short, err)
		}
	}
	if _, err := KindByShort("XX"); err == nil {
		t.Error("unknown kind accepted")
	}
}
