package centrality

import (
	"fmt"
	"math"

	"promonet/internal/graph"
)

// CurrentFlowBetweenness computes the current-flow (random-walk)
// betweenness of Newman [13] for every node of a connected graph: model
// the graph as an electrical network with unit resistances; for each
// source-sink pair inject one unit of current and measure how much
// flows through each node; sum over all unordered pairs.
//
// Implementation (Brandes–Fleischer style): ground node 0, invert the
// reduced Laplacian once (O(n³) dense Gaussian elimination), then
// accumulate pairwise throughputs in O(n²·m). Intended for hosts up to
// a few thousand nodes — ample for the promotion experiments. Returns
// an error on disconnected graphs (the electrical model needs a single
// component) and on graphs with fewer than two nodes.
func CurrentFlowBetweenness(g *graph.Graph) ([]float64, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("centrality: current-flow betweenness needs n >= 2, have %d", n)
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("centrality: current-flow betweenness requires a connected graph")
	}

	// Grounded inverse G of the Laplacian with node 0 removed: for a
	// unit current injected at s and extracted at t, the potential of
	// node v (with p(0) = 0) is p(v) = G[v][s] - G[v][t], where G's row
	// and column 0 are implicitly zero.
	G, err := groundedLaplacianInverse(g)
	if err != nil {
		return nil, err
	}
	pot := func(v, s, t int) float64 {
		var x float64
		if v != 0 {
			if s != 0 {
				x += G[v-1][s-1]
			}
			if t != 0 {
				x -= G[v-1][t-1]
			}
		}
		return x
	}

	out := make([]float64, n)
	for s := 0; s < n; s++ {
		for t := s + 1; t < n; t++ {
			for v := 0; v < n; v++ {
				if v == s || v == t {
					continue
				}
				pv := pot(v, s, t)
				var throughput float64
				for _, w := range g.Adjacency(v) {
					throughput += math.Abs(pv - pot(int(w), s, t))
				}
				out[v] += throughput / 2
			}
		}
	}
	return out, nil
}

// groundedLaplacianInverse returns the inverse of the (n-1)x(n-1)
// Laplacian with node 0's row and column removed.
func groundedLaplacianInverse(g *graph.Graph) ([][]float64, error) {
	n := g.N() - 1
	// Augmented matrix [L_reduced | I].
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, 2*n)
		v := i + 1
		a[i][i] = float64(g.Degree(v))
		for _, u := range g.Adjacency(v) {
			if u != 0 {
				a[i][int(u)-1] = -1
			}
		}
		a[i][n+i] = 1
	}
	// Gauss-Jordan with partial pivoting. The reduced Laplacian of a
	// connected graph is positive definite, so pivots stay comfortably
	// away from zero, but guard anyway.
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("centrality: singular reduced Laplacian (graph disconnected?)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv := 1 / a[col][col]
		for j := col; j < 2*n; j++ {
			a[col][j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := col; j < 2*n; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = a[i][n:]
	}
	return out, nil
}

// EffectiveResistance returns the effective resistance between u and v
// in the unit-resistance electrical network of a connected graph — a
// byproduct of the same grounded inverse, exposed because it is the
// natural "how redundant is this connection" diagnostic for promotion
// detectability.
func EffectiveResistance(g *graph.Graph, u, v int) (float64, error) {
	if u == v {
		return 0, nil
	}
	n := g.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		return 0, fmt.Errorf("centrality: nodes (%d, %d) outside [0, %d)", u, v, n)
	}
	if !g.IsConnected() {
		return 0, fmt.Errorf("centrality: effective resistance requires a connected graph")
	}
	G, err := groundedLaplacianInverse(g)
	if err != nil {
		return 0, err
	}
	// R(u, v) = G[u][u] + G[v][v] - 2 G[u][v], with row/col 0 zero.
	get := func(a, b int) float64 {
		if a == 0 || b == 0 {
			return 0
		}
		return G[a-1][b-1]
	}
	return get(u, u) + get(v, v) - 2*get(u, v), nil
}
