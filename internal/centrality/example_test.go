package centrality_test

import (
	"fmt"

	"promonet/internal/centrality"
	"promonet/internal/datasets"
	"promonet/internal/gen"
)

// Competition ranking per Section III: ties share the best position.
func ExampleRanks() {
	scores := []float64{3, 1, 4, 1, 5}
	fmt.Println(centrality.Ranks(scores))
	// Output:
	// [3 4 2 4 1]
}

// Closeness on the paper's Fig. 1 example: CC(v1) = 1/14.
func ExampleCloseness() {
	g := datasets.Fig1()
	cc := centrality.Closeness(g)
	fmt.Printf("CC(v1) = 1/%.0f\n", 1/cc[datasets.V1])
	// Output:
	// CC(v1) = 1/14
}

// The k highest-closeness nodes without computing all of them.
func ExampleTopKCloseness() {
	g := datasets.Fig1()
	for _, ns := range centrality.TopKCloseness(g, 2) {
		fmt.Printf("node v%d: 1/%.0f\n", ns.Node+1, 1/ns.Score)
	}
	// Output:
	// node v6: 1/12
	// node v1: 1/14
}

// Coreness via the bucket k-core decomposition.
func ExampleCoreness() {
	g := datasets.Fig1()
	fmt.Println("RC(v1) =", centrality.Coreness(g)[datasets.V1])
	// Output:
	// RC(v1) = 3
}

// Incremental k-core maintenance under edge insertions.
func ExampleCoreMaintainer() {
	cm := centrality.NewCoreMaintainer(gen.Clique(3))
	w := cm.AddNode()
	cm.AddEdge(w, 0)
	cm.AddEdge(w, 1)
	cm.AddEdge(w, 2)
	fmt.Println("coreness of the new node:", cm.Coreness(w))
	// Output:
	// coreness of the new node: 3
}
