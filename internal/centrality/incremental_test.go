package centrality_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"promonet/internal/centrality"
	"promonet/internal/gen"
	"promonet/internal/graph"
)

func TestCoreMaintainerSimple(t *testing.T) {
	// Grow a triangle into K4 and check corenesses along the way.
	g := graph.NewWithNodes(3)
	cm := centrality.NewCoreMaintainer(g)
	cm.AddEdge(0, 1)
	cm.AddEdge(1, 2)
	cm.AddEdge(2, 0)
	for v := 0; v < 3; v++ {
		if cm.Coreness(v) != 2 {
			t.Fatalf("triangle coreness(%d) = %d, want 2", v, cm.Coreness(v))
		}
	}
	w := cm.AddNode()
	if cm.Coreness(w) != 0 {
		t.Fatalf("fresh node coreness = %d, want 0", cm.Coreness(w))
	}
	cm.AddEdge(w, 0)
	cm.AddEdge(w, 1)
	cm.AddEdge(w, 2)
	for v := 0; v < 4; v++ {
		if cm.Coreness(v) != 3 {
			t.Fatalf("K4 coreness(%d) = %d, want 3", v, cm.Coreness(v))
		}
	}
	if err := cm.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCoreMaintainerDuplicateEdge(t *testing.T) {
	g := graph.NewWithNodes(2)
	cm := centrality.NewCoreMaintainer(g)
	if !cm.AddEdge(0, 1) {
		t.Fatal("first insert returned false")
	}
	if cm.AddEdge(0, 1) {
		t.Fatal("duplicate insert returned true")
	}
	if err := cm.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCoreMaintainerMatchesBatch: random edge-insertion streams
// keep the maintained vector identical to a from-scratch decomposition.
func TestPropertyCoreMaintainerMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		cm := centrality.NewCoreMaintainer(graph.NewWithNodes(n))
		for i := 0; i < 4*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				cm.AddEdge(u, v)
			}
		}
		return cm.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCoreMaintainerUnderPromotion: maintaining coreness through a
// single-clique promotion reproduces the batch result — the fast path
// for repeated coreness promotion evaluation.
func TestCoreMaintainerUnderPromotion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.BarabasiAlbert(rng, 200, 3)
	cm := centrality.NewCoreMaintainer(g.Clone())
	target := 7
	p := 8
	// Apply the single-clique strategy through the maintainer.
	ins := make([]int, p)
	for i := range ins {
		ins[i] = cm.AddNode()
	}
	for i, w := range ins {
		cm.AddEdge(target, w)
		for _, x := range ins[i+1:] {
			cm.AddEdge(w, x)
		}
	}
	if err := cm.Check(); err != nil {
		t.Fatal(err)
	}
	if got := cm.Coreness(target); got < p {
		t.Errorf("target coreness after clique = %d, want >= %d", got, p)
	}
	for _, w := range ins {
		if cm.Coreness(w) != p {
			t.Errorf("inserted node coreness = %d, want %d (Lemma S.8)", cm.Coreness(w), p)
		}
	}
}

func TestCoreMaintainerGrowsWithChains(t *testing.T) {
	// A path never exceeds coreness 1 no matter how long it grows.
	cm := centrality.NewCoreMaintainer(graph.NewWithNodes(1))
	prev := 0
	for i := 0; i < 30; i++ {
		v := cm.AddNode()
		cm.AddEdge(prev, v)
		prev = v
	}
	if err := cm.Check(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < cm.Graph().N(); v++ {
		if cm.Coreness(v) != 1 {
			t.Fatalf("path coreness(%d) = %d, want 1", v, cm.Coreness(v))
		}
	}
}
