package centrality_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"promonet/internal/centrality"
	"promonet/internal/gen"
	"promonet/internal/graph"
)

func TestLocalClusteringClique(t *testing.T) {
	for _, c := range centrality.LocalClustering(gen.Clique(6)) {
		if c != 1 {
			t.Fatalf("clique clustering = %v, want 1", c)
		}
	}
}

func TestLocalClusteringTree(t *testing.T) {
	for _, c := range centrality.LocalClustering(gen.Star(7)) {
		if c != 0 {
			t.Fatalf("star clustering = %v, want 0", c)
		}
	}
}

func TestLocalClusteringMixed(t *testing.T) {
	// Triangle with a pendant off node 0: node 0 has 3 neighbors, one
	// adjacent pair out of three.
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	cc := centrality.LocalClustering(g)
	if math.Abs(cc[0]-1.0/3) > 1e-12 {
		t.Errorf("clustering(0) = %v, want 1/3", cc[0])
	}
	if cc[1] != 1 || cc[2] != 1 {
		t.Errorf("triangle corners = %v, %v, want 1, 1", cc[1], cc[2])
	}
	if cc[3] != 0 {
		t.Errorf("pendant clustering = %v, want 0", cc[3])
	}
}

func TestAverageClusteringEmpty(t *testing.T) {
	if c := centrality.AverageClustering(graph.New(0)); c != 0 {
		t.Errorf("empty graph clustering = %v", c)
	}
}

func TestTriangles(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	tri := centrality.Triangles(g)
	want := []int{1, 1, 1, 0}
	for v := range want {
		if tri[v] != want[v] {
			t.Fatalf("Triangles = %v, want %v", tri, want)
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := gen.Star(5) // hub degree 4, four leaves degree 1
	h := centrality.DegreeHistogram(g)
	if h[1] != 4 || h[4] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

// TestPropertyTriangleClusterConsistency: 3x triangles(v) equals the
// number of closed 2-paths centered at v times... specifically
// clustering(v) = triangles(v) / C(deg(v), 2).
func TestPropertyTriangleClusterConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 15+rng.Intn(15), 50)
		cc := centrality.LocalClustering(g)
		tri := centrality.Triangles(g)
		for v := 0; v < g.N(); v++ {
			d := g.Degree(v)
			if d < 2 {
				if cc[v] != 0 {
					return false
				}
				continue
			}
			want := float64(tri[v]) / float64(d*(d-1)/2)
			if math.Abs(cc[v]-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
