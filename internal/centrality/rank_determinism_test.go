package centrality

import (
	"math/rand"
	"testing"
)

// TestRanksTieBreakDeterminism pins the competition-ranking contract
// under ties: R(v) depends only on the multiset of scores, never on
// node insertion order or sort instability. The paper's Δ_R metric
// (Section III) compares ranks across graphs, so any order dependence
// here would silently corrupt every experiment table.
func TestRanksTieBreakDeterminism(t *testing.T) {
	// A score vector with heavy ties, assigned to nodes in shuffled
	// orders: every permutation must give each *score class* the same
	// rank.
	base := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 1}
	wantRankOfScore := func(scores []float64, s float64) int {
		r := 1
		for _, x := range scores {
			if x > s {
				r++
			}
		}
		return r
	}
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		scores := append([]float64(nil), base...)
		rng.Shuffle(len(scores), func(i, j int) { scores[i], scores[j] = scores[j], scores[i] })

		ranks := Ranks(scores)
		for v, s := range scores {
			if want := wantRankOfScore(scores, s); ranks[v] != want {
				t.Fatalf("trial %d: node %d (score %g): Ranks gives %d, definition gives %d",
					trial, v, s, ranks[v], want)
			}
			if got := RankOf(scores, v); got != ranks[v] {
				t.Fatalf("trial %d: node %d: RankOf=%d disagrees with Ranks=%d", trial, v, got, ranks[v])
			}
		}
	}
}

// TestRanksTiedNodesShareRank verifies ties share the best position and
// the next distinct score skips the tied block (competition ranking,
// "1224" style).
func TestRanksTiedNodesShareRank(t *testing.T) {
	ranks := Ranks([]float64{10, 8, 8, 7})
	want := []int{1, 2, 2, 4}
	for v := range want {
		if ranks[v] != want[v] {
			t.Fatalf("ranks=%v, want %v", ranks, want)
		}
	}
}
