package centrality

import "sort"

// Ranks returns the centrality ranking of every node under the paper's
// Section III definition: R(v) = |{u : C(u) > C(v)}| + 1 (competition
// ranking — ties share the best position). Rank 1 is the highest score.
func Ranks(scores []float64) []int {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	ranks := make([]int, n)
	for pos := 0; pos < n; pos++ {
		v := idx[pos]
		if pos > 0 && scores[v] == scores[idx[pos-1]] {
			ranks[v] = ranks[idx[pos-1]]
		} else {
			ranks[v] = pos + 1
		}
	}
	return ranks
}

// RankOf returns R(v) for a single node without materializing the full
// ranking: the number of strictly larger scores plus one.
func RankOf(scores []float64, v int) int {
	rank := 1
	sv := scores[v]
	for _, s := range scores {
		if s > sv {
			rank++
		}
	}
	return rank
}

// RankingVariation returns Δ_R(t) = R(t) − R′(t), the paper's measure of
// promotion success (> 0 means the ranking improved). before and after
// are the score vectors in G and G′; nodes added by the promotion are
// treated as having score 0 in G, per Section III. t indexes into
// before; after may be longer (the inserted nodes take the tail IDs).
func RankingVariation(before, after []float64, t int) int {
	// R(t) in G is unaffected by padding Δ_V with zero scores: all
	// supported measures are non-negative, so the padded nodes never
	// score strictly above t and competition ranking ignores ties.
	return RankOf(before, t) - RankOf(after, t)
}

// Ratio returns the paper's relative ranking variation metric
// Ratio = Δ_R(t)/n × 100%.
func Ratio(deltaRank, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(deltaRank) / float64(n) * 100
}
