package centrality

import (
	"sort"

	"promonet/internal/graph"
)

// NodeScore pairs a node with its centrality score.
type NodeScore struct {
	Node  int
	Score float64
}

// TopKCloseness returns the k nodes with the highest closeness in
// non-increasing score order, using the cutoff technique behind
// efficient top-k closeness search [5]: candidates are processed in
// decreasing-degree order (high-degree nodes tend to have low farness),
// and each BFS is aborted as soon as a lower bound on its farness —
// partial sum plus (unreached count) x (next level) — exceeds the
// current k-th best, which avoids most full traversals on small-world
// graphs. Exact: the result always equals the top of a full Closeness
// computation (ties broken by node ID). The graph must be connected
// (the paper's setting): the cutoff bound assumes every unreached node
// will eventually contribute, which fails across components.
func TopKCloseness(g *graph.Graph, k int) []NodeScore {
	n := g.N()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})

	// best holds the k smallest farness values found so far (max-heap
	// by farness so the worst kept value is at the root).
	heap := make([]farEntry, 0, k)
	worst := int64(-1) // farness of the k-th best once the heap is full

	sc := newBFSScratch(n)
	for _, s := range order {
		far, completed := farnessWithCutoff(g, s, sc, worst)
		if !completed {
			continue
		}
		if len(heap) < k {
			heapPush(&heap, farEntry{far, s})
			if len(heap) == k {
				worst = heap[0].far
			}
		} else if far < heap[0].far || (far == heap[0].far && s < heap[0].node) {
			heap[0] = farEntry{far, s}
			heapDown(heap, 0)
			worst = heap[0].far
		}
	}

	out := make([]NodeScore, len(heap))
	sort.Slice(heap, func(a, b int) bool {
		if heap[a].far != heap[b].far {
			return heap[a].far < heap[b].far
		}
		return heap[a].node < heap[b].node
	})
	for i, e := range heap {
		score := 0.0
		if e.far > 0 {
			score = 1 / float64(e.far)
		}
		out[i] = NodeScore{Node: e.node, Score: score}
	}
	return out
}

// farnessWithCutoff runs a BFS from s but aborts once the farness lower
// bound exceeds cutoff (cutoff < 0 disables the cutoff). The lower
// bound after finishing level d with `sum` accumulated and `reached`
// nodes seen is sum + (n - reached) * (d + 1): every unreached node is
// at distance at least d+1.
func farnessWithCutoff(g *graph.Graph, s int, sc *bfsScratch, cutoff int64) (far int64, completed bool) {
	n := g.N()
	dist := sc.dist
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[s] = 0
	q := append(sc.queue[:0], int32(s))
	reached := 1
	var sum int64
	level := int32(0)
	for len(q) > 0 {
		var next []int32
		for _, v := range q {
			for _, u := range g.Adjacency(int(v)) {
				if dist[u] == Unreachable {
					dist[u] = level + 1
					sum += int64(level + 1)
					reached++
					next = append(next, u)
				}
			}
		}
		level++
		if cutoff >= 0 && reached < n {
			// Lower bound: all unreached nodes are at distance >= level+1.
			lb := sum + int64(n-reached)*int64(level+1)
			if lb > cutoff {
				return 0, false
			}
		}
		q = next
	}
	sc.queue = sc.queue[:0]
	return sum, true
}

type farEntry struct {
	far  int64
	node int
}

// heapPush / heapDown implement a max-heap on farness (worst kept entry
// at the root) with node-ID tie breaking, small enough not to warrant
// container/heap's interface indirection.
func heapPush(h *[]farEntry, e farEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !farLess((*h)[parent], (*h)[i]) {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func heapDown(h []farEntry, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h) && farLess(h[largest], h[l]) {
			largest = l
		}
		if r < len(h) && farLess(h[largest], h[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}

// farLess orders entries by (farness, node) ascending — used inverted
// to keep the max at the heap root.
func farLess(a, b farEntry) bool {
	if a.far != b.far {
		return a.far < b.far
	}
	return a.node < b.node
}
