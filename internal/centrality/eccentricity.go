package centrality

import "promonet/internal/graph"

// ReciprocalEccentricity returns ĒC(v) = max_u dist(v, u) for every node
// — the quantity tabulated in Tables XIII/XIV — computed by all-pairs
// BFS. Nodes in other components are ignored (the paper assumes
// connected graphs).
func ReciprocalEccentricity(g graph.View) []int32 {
	n := g.N()
	out := make([]int32, n)
	forEachSource(g, 0, func(_, s int, sc *bfsScratch) {
		_, ecc := sc.run(g, s)
		out[s] = ecc
	})
	return out
}

// Eccentricity returns EC(v) = 1 / max_u dist(v, u) for every node
// (Definition 2.2). A node with eccentricity zero (singleton graph) gets
// score 0 to avoid dividing by zero.
func Eccentricity(g graph.View) []float64 {
	recip := ReciprocalEccentricity(g)
	out := make([]float64, len(recip))
	for v, e := range recip {
		if e > 0 {
			out[v] = 1 / float64(e)
		}
	}
	return out
}

// Diameter returns the largest reciprocal eccentricity, i.e.
// max_v ĒC(v), the statistic in the paper's Table VI. It uses the
// Takes–Kosters bound refinement, so it is usually much cheaper than
// all-pairs BFS.
func Diameter(g *graph.Graph) int {
	if g.N() == 0 {
		return 0
	}
	ecc := EccentricityBounded(g)
	max := int32(0)
	for _, e := range ecc {
		if e > max {
			max = e
		}
	}
	return int(max)
}

// Radius returns the smallest reciprocal eccentricity min_v ĒC(v).
func Radius(g *graph.Graph) int {
	if g.N() == 0 {
		return 0
	}
	ecc := EccentricityBounded(g)
	min := ecc[0]
	for _, e := range ecc[1:] {
		if e < min {
			min = e
		}
	}
	return int(min)
}
