package centrality

import "promonet/internal/graph"

// DiameterBounded computes only the diameter using the BoundingDiameters
// algorithm of Takes and Kosters [29] directly: it maintains a global
// lower bound (the largest eccentricity seen) and per-node upper bounds,
// and stops as soon as no unpruned node's upper bound can exceed the
// lower bound — typically after a handful of BFS traversals on
// small-world graphs, far fewer than even EccentricityBounded needs.
// The graph must be connected; on a disconnected graph it returns the
// largest component-local eccentricity it can prove from the sources it
// explores (per-component diameters need per-component calls).
func DiameterBounded(g *graph.Graph) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	upper := make([]int32, n)
	lower := make([]int32, n)
	pruned := make([]bool, n)
	for i := range upper {
		upper[i] = int32(n)
	}
	sc := newBFSScratch(n)
	var dLow int32 // global diameter lower bound
	pickHigh := true
	for {
		// Choose the next source: alternate between the node with the
		// largest eccentricity upper bound (can certify a large
		// diameter) and the one with the smallest lower bound (can
		// shrink upper bounds fastest). High degree breaks ties.
		v := -1
		for w := 0; w < n; w++ {
			if pruned[w] {
				continue
			}
			if v == -1 {
				v = w
				continue
			}
			if pickHigh {
				if upper[w] > upper[v] || (upper[w] == upper[v] && g.Degree(w) > g.Degree(v)) {
					v = w
				}
			} else {
				if lower[w] < lower[v] || (lower[w] == lower[v] && g.Degree(w) > g.Degree(v)) {
					v = w
				}
			}
		}
		if v == -1 {
			return int(dLow)
		}
		pickHigh = !pickHigh

		_, eccV := sc.run(g, v)
		if eccV > dLow {
			dLow = eccV
		}
		pruned[v] = true
		done := true
		for w := 0; w < n; w++ {
			if pruned[w] {
				continue
			}
			d := sc.dist[w]
			if d == Unreachable {
				pruned[w] = true
				continue
			}
			if lo := maxI32(d, eccV-d); lo > lower[w] {
				lower[w] = lo
			}
			if up := eccV + d; up < upper[w] {
				upper[w] = up
			}
			if lower[w] > dLow {
				dLow = lower[w]
			}
			// A node can only certify a larger diameter if its upper
			// bound exceeds the current lower bound.
			if upper[w] <= dLow {
				pruned[w] = true
			} else {
				done = false
			}
		}
		if done {
			return int(dLow)
		}
	}
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// EccentricityBounded computes the exact reciprocal eccentricity
// ĒC(v) = max_u dist(v, u) of every node using the bound-refinement
// algorithm of Takes and Kosters [29] (the algorithm behind teexGraph,
// which the paper used). For small-world graphs it resolves most nodes'
// eccentricities after a handful of BFS traversals instead of n.
//
// The algorithm maintains per-node lower and upper bounds. Each round it
// BFSes from a still-unresolved node chosen to tighten bounds fastest
// (alternating between the node with the largest upper bound and the one
// with the smallest lower bound), then applies
//
//	lower(w) = max(lower(w), dist(v, w), ecc(v) - dist(v, w))
//	upper(w) = min(upper(w), ecc(v) + dist(v, w))
//
// and resolves every node whose bounds meet. The graph must be
// connected; on a disconnected graph, bounds from unreachable sources
// are simply not applied and the result falls back to per-component
// eccentricities.
func EccentricityBounded(g *graph.Graph) []int32 {
	n := g.N()
	ecc := make([]int32, n)
	if n == 0 {
		return ecc
	}
	lower := make([]int32, n)
	upper := make([]int32, n)
	resolved := make([]bool, n)
	for i := range upper {
		upper[i] = int32(n) // > any possible eccentricity
	}
	sc := newBFSScratch(n)
	remaining := n
	pickLargestUpper := true
	for remaining > 0 {
		// Select the next BFS source among unresolved nodes.
		v := -1
		for w := 0; w < n; w++ {
			if resolved[w] {
				continue
			}
			if v == -1 {
				v = w
				continue
			}
			if pickLargestUpper {
				if upper[w] > upper[v] || (upper[w] == upper[v] && g.Degree(w) > g.Degree(v)) {
					v = w
				}
			} else {
				if lower[w] < lower[v] || (lower[w] == lower[v] && g.Degree(w) > g.Degree(v)) {
					v = w
				}
			}
		}
		pickLargestUpper = !pickLargestUpper

		_, eccV := sc.run(g, v)
		ecc[v] = eccV
		if !resolved[v] {
			resolved[v] = true
			remaining--
		}
		for w := 0; w < n; w++ {
			if resolved[w] {
				continue
			}
			d := sc.dist[w]
			if d == Unreachable {
				continue
			}
			lo := d
			if eccV-d > lo {
				lo = eccV - d
			}
			if lo > lower[w] {
				lower[w] = lo
			}
			if up := eccV + d; up < upper[w] {
				upper[w] = up
			}
			if lower[w] == upper[w] {
				ecc[w] = lower[w]
				resolved[w] = true
				remaining--
			}
		}
	}
	return ecc
}
