package centrality

import "promonet/internal/graph"

// Kernel bundles the reusable per-worker scratch (BFS distances/queue,
// Brandes σ/δ/predecessor state, a betweenness accumulator) behind an
// exported facade, so that higher layers — in particular the pooled
// execution engine in internal/engine — can run many traversals without
// allocating per call or per source. A Kernel grows automatically when
// handed a larger graph and may be reused across graphs of different
// sizes; it is not safe for concurrent use, which is exactly the
// one-kernel-per-worker discipline sync.Pool provides.
type Kernel struct {
	bfs *bfsScratch
	br  *brandesScratch
	acc []float64
}

// NewKernel returns an empty kernel; buffers are allocated lazily on
// first use and sized to the largest graph seen so far.
func NewKernel() *Kernel { return &Kernel{} }

// BFS runs a breadth-first search from s and returns the distance
// vector (Unreachable for other components), the number of reached
// nodes, and the eccentricity of s within its component. The returned
// slice is owned by the kernel and overwritten by the next BFS call.
func (k *Kernel) BFS(g graph.View, s int) (dist []int32, reached int, ecc int32) {
	n := g.N()
	if k.bfs == nil || cap(k.bfs.dist) < n {
		k.bfs = newBFSScratch(n)
	}
	k.bfs.dist = k.bfs.dist[:n]
	reached, ecc = k.bfs.run(g, s)
	return k.bfs.dist, reached, ecc
}

// Brandes runs one source iteration of Brandes' algorithm from s,
// adding the ordered-pair dependencies of s into acc (len acc must be
// g.N()). Summing over all sources yields the ordered-pairs betweenness;
// see PairCounting for the factor-of-two relation to unordered counts.
func (k *Kernel) Brandes(g graph.View, s int, acc []float64) {
	n := g.N()
	if k.br == nil || len(k.br.preds) < n {
		k.br = newBrandesScratch(n)
	}
	k.br.source(g, s, acc)
}

// BrandesDep runs one source iteration of Brandes' algorithm from s on
// g augmented with the virtual undirected edge (eu, ev) and returns the
// dependency δ_s(t) of s on t (0 when s == t). Pass eu = ev = -1 to
// score g unmodified. The virtual edge lets the engine's delta scorer
// price a candidate edge without mutating the shared graph; the caller
// must ensure (eu, ev) is not already an edge of g (or pass -1s).
func (k *Kernel) BrandesDep(g graph.View, s, t, eu, ev int) float64 {
	n := g.N()
	if k.br == nil || len(k.br.preds) < n {
		k.br = newBrandesScratch(n)
	}
	return k.br.sourceDep(g, s, t, int32(eu), int32(ev))
}

// Acc returns a zeroed accumulator of length n, reusing the kernel's
// buffer. It is the per-worker partial-sum vector for Brandes runs; the
// caller must merge it before returning the kernel to a pool.
func (k *Kernel) Acc(n int) []float64 {
	if cap(k.acc) < n {
		k.acc = make([]float64, n)
	}
	k.acc = k.acc[:n]
	for i := range k.acc {
		k.acc[i] = 0
	}
	return k.acc
}
