package centrality_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"promonet/internal/centrality"
	"promonet/internal/datasets"
	"promonet/internal/gen"
	"promonet/internal/graph"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// --- BFS / distances ---

func TestDistancesPath(t *testing.T) {
	g := gen.Path(5)
	d := centrality.Distances(g, 0)
	for v := 0; v < 5; v++ {
		if d[v] != int32(v) {
			t.Fatalf("dist(0, %d) = %d, want %d", v, d[v], v)
		}
	}
}

func TestDistancesDisconnected(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}})
	d := centrality.Distances(g, 0)
	if d[2] != centrality.Unreachable || d[3] != centrality.Unreachable {
		t.Errorf("unreachable nodes got distances %v", d)
	}
}

func TestDistFig1(t *testing.T) {
	g := datasets.Fig1()
	// Example 2.1: dist(v5, v7) = 2.
	if got := centrality.Dist(g, datasets.V5, datasets.V7); got != 2 {
		t.Errorf("dist(v5, v7) = %d, want 2", got)
	}
	// Example 2.2: distances from v1.
	want := []int32{0, 1, 1, 2, 1, 1, 1, 2, 2, 3}
	got := centrality.Distances(g, datasets.V1)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist(v1, v%d) = %d, want %d", v+1, got[v], want[v])
		}
	}
}

// TestPropertyTriangleInequality: BFS distances satisfy the triangle
// inequality on random connected graphs.
func TestPropertyTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.BarabasiAlbert(rng, 20+rng.Intn(20), 2)
		n := g.N()
		a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		da := centrality.Distances(g, a)
		db := centrality.Distances(g, b)
		return da[c] <= da[b]+db[c]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// --- Closeness ---

func TestFarnessFig1(t *testing.T) {
	g := datasets.Fig1()
	got := centrality.Farness(g)
	for v, want := range datasets.Fig1Farness {
		if got[v] != want {
			t.Errorf("farness(v%d) = %d, want %d (Table V)", v+1, got[v], want)
		}
	}
}

func TestClosenessFig1(t *testing.T) {
	g := datasets.Fig1()
	cc := centrality.Closeness(g)
	// Example 2.2: CC(v1) = 1/14.
	if !almostEqual(cc[datasets.V1], 1.0/14) {
		t.Errorf("CC(v1) = %v, want 1/14", cc[datasets.V1])
	}
	// v6 has the highest closeness (rank 1 in Table III).
	ranks := centrality.Ranks(cc)
	if ranks[datasets.V6] != 1 {
		t.Errorf("rank of v6 = %d, want 1", ranks[datasets.V6])
	}
}

func TestClosenessIsolatedNode(t *testing.T) {
	g := graph.NewWithNodes(3)
	g.AddEdge(0, 1)
	cc := centrality.Closeness(g)
	if cc[2] != 0 {
		t.Errorf("closeness of isolated node = %v, want 0", cc[2])
	}
}

func TestHarmonicStar(t *testing.T) {
	g := gen.Star(5) // hub 0, leaves 1..4
	h := centrality.Harmonic(g)
	if !almostEqual(h[0], 4) {
		t.Errorf("harmonic(hub) = %v, want 4", h[0])
	}
	// leaf: 1 hub at dist 1, 3 leaves at dist 2.
	if !almostEqual(h[1], 1+3*0.5) {
		t.Errorf("harmonic(leaf) = %v, want 2.5", h[1])
	}
}

// --- Eccentricity ---

func TestEccentricityFig1(t *testing.T) {
	g := datasets.Fig1()
	ecc := centrality.Eccentricity(g)
	// Example 2.2: EC(v1) = 1/3.
	if !almostEqual(ecc[datasets.V1], 1.0/3) {
		t.Errorf("EC(v1) = %v, want 1/3", ecc[datasets.V1])
	}
}

func TestEccentricityBoundedMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.BarabasiAlbert(rng, 60, 2)
		naive := centrality.ReciprocalEccentricity(g)
		bounded := centrality.EccentricityBounded(g)
		for v := range naive {
			if naive[v] != bounded[v] {
				t.Fatalf("seed %d: ecc(%d): naive %d vs bounded %d", seed, v, naive[v], bounded[v])
			}
		}
	}
}

func TestEccentricityBoundedPath(t *testing.T) {
	g := gen.Path(9)
	ecc := centrality.EccentricityBounded(g)
	want := []int32{8, 7, 6, 5, 4, 5, 6, 7, 8}
	for v := range want {
		if ecc[v] != want[v] {
			t.Fatalf("path ecc(%d) = %d, want %d", v, ecc[v], want[v])
		}
	}
}

func TestDiameterAndRadius(t *testing.T) {
	g := gen.Path(7)
	if d := centrality.Diameter(g); d != 6 {
		t.Errorf("Diameter(P7) = %d, want 6", d)
	}
	if r := centrality.Radius(g); r != 3 {
		t.Errorf("Radius(P7) = %d, want 3", r)
	}
	if d := centrality.Diameter(gen.Clique(5)); d != 1 {
		t.Errorf("Diameter(K5) = %d, want 1", d)
	}
	if d := centrality.Diameter(graph.New(0)); d != 0 {
		t.Errorf("Diameter(empty) = %d, want 0", d)
	}
}

// --- Betweenness ---

func TestBetweennessFig1(t *testing.T) {
	g := datasets.Fig1()
	bc := centrality.Betweenness(g, centrality.PairsUnordered)
	for v, want := range datasets.Fig1Betweenness {
		if !almostEqual(bc[v], want) {
			t.Errorf("BC(v%d) = %v, want %v (Table IV)", v+1, bc[v], want)
		}
	}
}

func TestBetweennessOrderedDoubles(t *testing.T) {
	g := datasets.Fig1()
	un := centrality.Betweenness(g, centrality.PairsUnordered)
	or := centrality.Betweenness(g, centrality.PairsOrdered)
	for v := range un {
		if !almostEqual(or[v], 2*un[v]) {
			t.Fatalf("ordered BC(%d) = %v, want 2x unordered %v", v, or[v], un[v])
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	g := gen.Star(6) // hub 0, 5 leaves
	bc := centrality.Betweenness(g, centrality.PairsUnordered)
	if !almostEqual(bc[0], 10) { // C(5,2) pairs all through the hub
		t.Errorf("BC(hub) = %v, want 10", bc[0])
	}
	for v := 1; v < 6; v++ {
		if bc[v] != 0 {
			t.Fatalf("BC(leaf %d) = %v, want 0", v, bc[v])
		}
	}
}

func TestBetweennessPathMiddle(t *testing.T) {
	g := gen.Path(5)
	bc := centrality.Betweenness(g, centrality.PairsUnordered)
	// Middle of P5: pairs (0,2..4)x... node 2 lies on (0,3),(0,4),(1,3),(1,4),(0,2)? no —
	// pairs strictly through node 2: (0,3),(0,4),(1,3),(1,4) and (0,2)… endpoints
	// don't count. Expect 4.
	if !almostEqual(bc[2], 4) {
		t.Errorf("BC(middle of P5) = %v, want 4", bc[2])
	}
}

// TestPropertyBrandesMatchesNaive: differential test of Brandes against
// the explicit pair-counting oracle on random graphs.
func TestPropertyBrandesMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 12+rng.Intn(10), 25)
		fast := centrality.Betweenness(g, centrality.PairsUnordered)
		slow := centrality.BetweennessNaive(g, centrality.PairsUnordered)
		for v := range fast {
			if math.Abs(fast[v]-slow[v]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBetweennessSampledExactFallback(t *testing.T) {
	g := datasets.Fig1()
	rng := rand.New(rand.NewSource(1))
	exact := centrality.Betweenness(g, centrality.PairsUnordered)
	sampled := centrality.BetweennessSampled(g, centrality.PairsUnordered, 100, rng)
	for v := range exact {
		if !almostEqual(exact[v], sampled[v]) {
			t.Fatalf("k >= n sampled BC(%d) = %v, want exact %v", v, sampled[v], exact[v])
		}
	}
}

func TestBetweennessSampledApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := gen.BarabasiAlbert(rng, 300, 3)
	exact := centrality.Betweenness(g, centrality.PairsUnordered)
	est := centrality.BetweennessSampled(g, centrality.PairsUnordered, 150, rng)
	// The top exact node should stay near the top of the estimate.
	top := 0
	for v := range exact {
		if exact[v] > exact[top] {
			top = v
		}
	}
	if r := centrality.RankOf(est, top); r > 10 {
		t.Errorf("top exact-BC node ranked %d in sampled estimate, want <= 10", r)
	}
}

// --- Coreness ---

func TestCorenessFig1(t *testing.T) {
	g := datasets.Fig1()
	core := centrality.Coreness(g)
	if core[datasets.V1] != datasets.Fig1CorenessV1 {
		t.Errorf("RC(v1) = %d, want %d (Example 2.2)", core[datasets.V1], datasets.Fig1CorenessV1)
	}
	// Degree-1 nodes must have coreness 1.
	for _, v := range []int{datasets.V2, datasets.V4, datasets.V10} {
		if core[v] != 1 {
			t.Errorf("RC(v%d) = %d, want 1", v+1, core[v])
		}
	}
}

func TestCorenessClique(t *testing.T) {
	core := centrality.Coreness(gen.Clique(6))
	for v, c := range core {
		if c != 5 {
			t.Fatalf("RC(%d) in K6 = %d, want 5", v, c)
		}
	}
}

func TestCorenessCliquePlusTail(t *testing.T) {
	// K4 with a pendant path: clique nodes have coreness 3, tail 1.
	g := gen.Clique(4)
	a := g.AddNode()
	b := g.AddNode()
	g.AddEdge(0, a)
	g.AddEdge(a, b)
	core := centrality.Coreness(g)
	for v := 0; v < 4; v++ {
		if core[v] != 3 {
			t.Fatalf("clique node %d coreness = %d, want 3", v, core[v])
		}
	}
	if core[a] != 1 || core[b] != 1 {
		t.Errorf("tail coreness = %d, %d, want 1, 1", core[a], core[b])
	}
}

// TestPropertyKCoreInvariant: every node of the k-core has at least k
// neighbors inside the k-core, and the (degeneracy+1)-core is empty.
func TestPropertyKCoreInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 20+rng.Intn(30), 80)
		deg := centrality.Degeneracy(g)
		for k := 1; k <= deg; k++ {
			nodes := centrality.KCore(g, k)
			in := make(map[int]bool, len(nodes))
			for _, v := range nodes {
				in[v] = true
			}
			for _, v := range nodes {
				cnt := 0
				for _, u := range g.NeighborSlice(v) {
					if in[u] {
						cnt++
					}
				}
				if cnt < k {
					return false
				}
			}
		}
		return len(centrality.KCore(g, deg+1)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCorenessLEDegree: coreness never exceeds degree.
func TestPropertyCorenessLEDegree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.BarabasiAlbert(rng, 20+rng.Intn(40), 3)
		core := centrality.Coreness(g)
		for v, c := range core {
			if c > g.Degree(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// --- Degree / Katz ---

func TestDegreeCentrality(t *testing.T) {
	g := datasets.Fig1()
	d := centrality.Degree(g)
	if d[datasets.V5] != 4 {
		t.Errorf("deg(v5) = %v, want 4 (Example 2.1)", d[datasets.V5])
	}
	if d[datasets.V6] != 6 {
		t.Errorf("deg(v6) = %v, want 6", d[datasets.V6])
	}
}

func TestKatzHubOutranksLeaf(t *testing.T) {
	g := gen.Star(10)
	x := centrality.KatzAuto(g)
	if x[0] <= x[1] {
		t.Errorf("Katz hub %v <= leaf %v", x[0], x[1])
	}
}

func TestKatzDiverges(t *testing.T) {
	g := gen.Clique(10)
	if _, err := centrality.Katz(g, 0.5, 50, 1e-12); err == nil {
		t.Error("Katz with alpha=0.5 on K10 (lambda=9) converged, want error")
	}
}

func TestKatzSymmetry(t *testing.T) {
	g := gen.Cycle(8)
	x := centrality.KatzAuto(g)
	for v := 1; v < 8; v++ {
		if math.Abs(x[v]-x[0]) > 1e-9 {
			t.Fatalf("Katz on vertex-transitive cycle differs: x[%d]=%v x[0]=%v", v, x[v], x[0])
		}
	}
}

// --- Ranks ---

func TestRanksCompetition(t *testing.T) {
	scores := []float64{3, 1, 4, 1, 5}
	got := centrality.Ranks(scores)
	want := []int{3, 4, 2, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks(%v) = %v, want %v", scores, got, want)
		}
	}
}

func TestRanksFig1ClosenessMatchesTableIII(t *testing.T) {
	g := datasets.Fig1()
	ranks := centrality.Ranks(centrality.Closeness(g))
	want := []int{2, 8, 4, 9, 2, 1, 6, 6, 5, 10} // Table III row R(v)
	for v := range want {
		if ranks[v] != want[v] {
			t.Errorf("R(v%d) = %d, want %d (Table III)", v+1, ranks[v], want[v])
		}
	}
}

// TestPropertyRankOfMatchesRanks: RankOf agrees with Ranks everywhere.
func TestPropertyRankOfMatchesRanks(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		scores := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			scores[i] = math.Abs(x)
		}
		ranks := centrality.Ranks(scores)
		for v := range scores {
			if centrality.RankOf(scores, v) != ranks[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	if r := centrality.Ratio(5, 10); !almostEqual(r, 50) {
		t.Errorf("Ratio(5, 10) = %v, want 50", r)
	}
	if r := centrality.Ratio(3, 0); r != 0 {
		t.Errorf("Ratio(3, 0) = %v, want 0", r)
	}
}

func TestRankingVariation(t *testing.T) {
	before := []float64{10, 5, 1}
	after := []float64{10, 20, 1, 0, 0} // node 1 promoted, two new nodes
	if dv := centrality.RankingVariation(before, after, 1); dv != 1 {
		t.Errorf("RankingVariation = %d, want 1", dv)
	}
}

func TestDiameterBoundedMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.BarabasiAlbert(rng, 50+rng.Intn(100), 2)
		want := int32(0)
		for _, e := range centrality.ReciprocalEccentricity(g) {
			if e > want {
				want = e
			}
		}
		if got := centrality.DiameterBounded(g); got != int(want) {
			t.Fatalf("seed %d: DiameterBounded = %d, want %d", seed, got, want)
		}
	}
}

func TestDiameterBoundedShapes(t *testing.T) {
	if d := centrality.DiameterBounded(gen.Path(9)); d != 8 {
		t.Errorf("path diameter = %d, want 8", d)
	}
	if d := centrality.DiameterBounded(gen.Clique(7)); d != 1 {
		t.Errorf("clique diameter = %d, want 1", d)
	}
	if d := centrality.DiameterBounded(gen.Cycle(10)); d != 5 {
		t.Errorf("cycle diameter = %d, want 5", d)
	}
	if d := centrality.DiameterBounded(graph.New(0)); d != 0 {
		t.Errorf("empty diameter = %d, want 0", d)
	}
}

func TestBetweennessWorkersMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	g := gen.BarabasiAlbert(rng, 80, 2)
	seq := centrality.BetweennessWorkers(g, centrality.PairsUnordered, 1)
	par := centrality.Betweenness(g, centrality.PairsUnordered)
	for v := range seq {
		if math.Abs(seq[v]-par[v]) > 1e-9 {
			t.Fatalf("sequential BC(%d)=%v vs parallel %v", v, seq[v], par[v])
		}
	}
	two := centrality.BetweennessWorkers(g, centrality.PairsOrdered, 2)
	for v := range seq {
		if math.Abs(two[v]-2*seq[v]) > 1e-9 {
			t.Fatalf("2-worker ordered BC(%d)=%v vs 2x sequential %v", v, two[v], seq[v])
		}
	}
}

func TestReusableBFS(t *testing.T) {
	b := centrality.NewBFS(2) // deliberately undersized: must grow
	g := gen.Path(6)
	d := b.Distances(g, 0)
	for v := 0; v < 6; v++ {
		if d[v] != int32(v) {
			t.Fatalf("reusable BFS dist(0,%d)=%d, want %d", v, d[v], v)
		}
	}
	// Second call overwrites the buffer with a new source.
	d = b.Distances(g, 5)
	if d[0] != 5 {
		t.Errorf("second run dist(5,0)=%d, want 5", d[0])
	}
}

func TestCorenessFloat(t *testing.T) {
	g := gen.Clique(4)
	cf := centrality.CorenessFloat(g)
	for v, x := range cf {
		if x != 3 {
			t.Fatalf("CorenessFloat(%d)=%v, want 3", v, x)
		}
	}
}

func TestCoreMaintainerAll(t *testing.T) {
	cm := centrality.NewCoreMaintainer(gen.Clique(3))
	all := cm.All()
	if len(all) != 3 || all[0] != 2 {
		t.Errorf("All() = %v, want [2 2 2]", all)
	}
}
