// bfs_csr.go — the flat-array BFS kernel for CSR backends.
//
// When a backend exposes its adjacency as two flat arrays
// (graph.ArcsView — the frozen snapshot of graph/csr), BFS can do
// better than the generic queue loop in two ways:
//
//   - the inner loop scans cols[rowptr[v]:rowptr[v+1]] directly: no
//     per-node interface dispatch, no slice-header chase through a
//     [][]int32, and the row-pointer reads of consecutive candidates
//     share cache lines;
//   - the level-synchronous schedule can run direction-optimizing BFS
//     (Beamer, Asanović & Patterson, SC'12): once the frontier's
//     outgoing arcs outnumber the arcs of the still-unvisited side, it
//     is cheaper to let every unvisited node scan its own row for a
//     parent in the frontier (bottom-up, with early exit on the first
//     parent found) than to push the frontier outward. On the paper's
//     social-graph profile — heavy-tailed degrees, tiny diameter — the
//     middle levels cover almost the whole graph and the bottom-up
//     steps skip the bulk of the arc scans.
//
// The result is schedule-different but value-identical: distances,
// reached counts, and eccentricities match the generic loop exactly
// (BFS levels do not depend on intra-level order), which the
// differential suite in graph/csr asserts across the whole zoo.

package centrality

// Direction-optimizing switch thresholds (Beamer's α and β): go
// bottom-up when the frontier's outgoing arcs exceed 1/csrAlpha of the
// unexplored arcs, return to top-down when the frontier shrinks below
// 1/csrBeta of the nodes. High-diameter graphs keep mu large until the
// last ~csrAlpha levels, so the O(n) bottom-up scans stay a vanishing
// fraction of total work.
const (
	csrAlpha = 14
	csrBeta  = 24
)

// runArcs is the flat-array leg of bfsScratch.run: a level-synchronous,
// direction-optimizing BFS over rowptr/cols. It fills sc.dist (length
// n = len(rowptr)-1) and returns the reached count and eccentricity of
// s, bitwise identical to the generic queue loop.
//
//promolint:hotpath
func (sc *bfsScratch) runArcs(rowptr []int64, cols []int32, s int) (reached int, ecc int32) {
	dist := sc.dist
	n := len(dist)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[s] = 0
	reached = 1
	if cap(sc.curr) < n {
		sc.curr = make([]int32, 0, n) //promolint:allow hotpath-alloc -- one-time lazy growth of the level queues to graph size
		sc.next = make([]int32, 0, n) //promolint:allow hotpath-alloc -- one-time lazy growth of the level queues to graph size
	}
	curr := append(sc.curr[:0], int32(s)) //promolint:allow hotpath-alloc -- amortized: sc.curr was just grown to n capacity
	next := sc.next[:0]

	// mf: arcs out of the current frontier. mu: arcs out of the still-
	// unvisited nodes. Both are exact and maintained incrementally.
	mf := rowptr[s+1] - rowptr[s]
	mu := rowptr[n] - mf
	level := int32(0)
	frontier := 1
	bottomUp := false
	for frontier > 0 {
		if bottomUp {
			if frontier < n/csrBeta {
				// The frontier thinned out: rebuild the explicit queue
				// from the distance array and resume top-down.
				bottomUp = false
				curr = curr[:0]
				for v := 0; v < n; v++ {
					if dist[v] == level {
						curr = append(curr, int32(v)) //promolint:allow hotpath-alloc -- amortized: curr is preallocated to n
					}
				}
			}
		} else if mf > mu/csrAlpha {
			bottomUp = true
		}

		grown := 0
		var grownArcs int64
		if bottomUp {
			for u := 0; u < n; u++ {
				if dist[u] != Unreachable {
					continue
				}
				for _, w := range cols[rowptr[u]:rowptr[u+1]] {
					if dist[w] == level {
						dist[u] = level + 1
						grown++
						grownArcs += rowptr[u+1] - rowptr[u]
						break
					}
				}
			}
		} else {
			next = next[:0]
			for _, v := range curr {
				for _, w := range cols[rowptr[v]:rowptr[v+1]] {
					if dist[w] == Unreachable {
						dist[w] = level + 1
						grown++
						grownArcs += rowptr[w+1] - rowptr[w]
						next = append(next, w) //promolint:allow hotpath-alloc -- amortized: next is preallocated to n
					}
				}
			}
			curr, next = next, curr
		}
		reached += grown
		mu -= grownArcs
		mf = grownArcs
		frontier = grown
		if grown > 0 {
			level++
		}
	}
	sc.curr, sc.next = curr[:0], next[:0]
	return reached, level
}
