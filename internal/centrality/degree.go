package centrality

import (
	"fmt"
	"math"

	"promonet/internal/graph"
)

// Degree returns the degree centrality deg(v) of every node.
func Degree(g graph.View) []float64 {
	out := make([]float64, g.N())
	for v := range out {
		out[v] = float64(g.Degree(v))
	}
	return out
}

// Katz returns the Katz centrality Σ_k α^k (Aᵏ1)_v of every node [28],
// computed by fixed-point iteration x ← αAx + 1. alpha must satisfy
// α < 1/λ_max for convergence; KatzAuto picks a safe value. It returns
// an error if the iteration has not converged within maxIter sweeps.
func Katz(g graph.View, alpha float64, maxIter int, tol float64) ([]float64, error) {
	n := g.N()
	x := make([]float64, n)
	nxt := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	for it := 0; it < maxIter; it++ {
		var maxDelta float64
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.Adjacency(v) {
				sum += x[u]
			}
			nxt[v] = alpha*sum + 1
			if d := math.Abs(nxt[v] - x[v]); d > maxDelta {
				maxDelta = d
			}
		}
		x, nxt = nxt, x
		if maxDelta < tol {
			return x, nil
		}
	}
	return nil, fmt.Errorf("centrality: Katz(alpha=%g) did not converge in %d iterations", alpha, maxIter)
}

// maxDegree returns the largest degree in g; 0 on the empty graph. The
// View interface deliberately has no MaxDegree method, so the handful
// of callers that need it pay the O(n) scan here.
func maxDegree(g graph.View) int {
	max := 0
	for v, n := 0, g.N(); v < n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// KatzAuto computes Katz centrality with α = 0.9/(maxDegree+1), which is
// strictly below 1/λ_max (λ_max <= maxDegree) and therefore always
// converges.
func KatzAuto(g graph.View) []float64 {
	alpha := 0.9 / float64(maxDegree(g)+1)
	x, err := Katz(g, alpha, 1000, 1e-12)
	if err != nil {
		// Unreachable for this α by the spectral bound; keep the API
		// total rather than propagate an impossible error.
		panic(err)
	}
	return x
}
