package centrality

import "promonet/internal/graph"

// Farness returns, for every node v, the reciprocal closeness score
// ĈC(v) = Σ_u dist(v, u) — the quantity the paper tabulates in Tables V,
// XI and XII. Unreachable pairs contribute nothing (the paper assumes
// connected graphs); use Reached to detect disconnection if needed.
func Farness(g graph.View) []int64 {
	n := g.N()
	out := make([]int64, n)
	forEachSource(g, 0, func(_, s int, sc *bfsScratch) {
		sc.run(g, s)
		var sum int64
		for _, d := range sc.dist {
			if d > 0 {
				sum += int64(d)
			}
		}
		out[s] = sum
	})
	return out
}

// Closeness returns CC(v) = 1 / Σ_u dist(v, u) for every node
// (Definition 2.1). Isolated nodes (farness 0) get score 0.
func Closeness(g graph.View) []float64 {
	farness := Farness(g)
	out := make([]float64, len(farness))
	for v, f := range farness {
		if f > 0 {
			out[v] = 1 / float64(f)
		}
	}
	return out
}

// Harmonic returns the harmonic centrality Σ_{u≠v} 1/dist(v, u) for
// every node [27]. Unlike closeness it is well defined on disconnected
// graphs: unreachable pairs contribute zero.
func Harmonic(g graph.View) []float64 {
	n := g.N()
	out := make([]float64, n)
	forEachSource(g, 0, func(_, s int, sc *bfsScratch) {
		sc.run(g, s)
		sum := 0.0
		for _, d := range sc.dist {
			if d > 0 {
				sum += 1 / float64(d)
			}
		}
		out[s] = sum
	})
	return out
}
