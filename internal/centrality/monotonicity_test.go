package centrality

import (
	"math/rand"
	"testing"

	"promonet/internal/datasets"
	"promonet/internal/gen"
	"promonet/internal/graph"
	"promonet/internal/graph/csr"
)

// Metamorphic oracle from Boldi, Furia & Vigna, "Rank monotonicity in
// centrality measures": for rank-monotone measures, adding an edge
// incident to a node t never worsens t's rank. Closeness and harmonic
// centrality are rank monotone (harmonic even strictly, on connected
// graphs), so across the whole graph zoo every (t, v) edge insertion
// must satisfy RankOf(after, t) <= RankOf(before, t). Closeness is
// only asserted on connected graphs, where 1/farness is the measure
// the theorem speaks about; harmonic is asserted everywhere.

// monotonicityZoo returns the named test graphs.
func monotonicityZoo() map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(7))
	zoo := map[string]*graph.Graph{
		"path-12":    gen.Path(12),
		"cycle-11":   gen.Cycle(11),
		"star-10":    gen.Star(10),
		"clique-7":   gen.Clique(7),
		"grid-4x5":   gen.Grid(4, 5),
		"er-20-40":   gen.ErdosRenyi(rng, 20, 40),
		"ba-18-2":    gen.BarabasiAlbert(rng, 18, 2),
		"ws-16-4":    gen.WattsStrogatz(rng, 16, 4, 0.2),
		"fig1-paper": datasets.Fig1(),
	}
	// A deliberately disconnected graph keeps the harmonic oracle honest
	// where closeness is undefined: two far-apart cliques.
	two := gen.Clique(5)
	first := two.AddNodes(5)
	for u := first; u < first+5; u++ {
		for w := u + 1; w < first+5; w++ {
			two.AddEdge(u, w)
		}
	}
	zoo["two-cliques"] = two
	return zoo
}

// targetsFor picks a spread of target nodes.
func targetsFor(g *graph.Graph) []int {
	n := g.N()
	ts := []int{0, n / 2, n - 1}
	out := ts[:0]
	seen := map[int]bool{}
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// monotonicityBackends maps a backend name to a way of producing the
// before-view and a one-edge-inserted after-view of a zoo graph. The
// map backend clones and mutates; the CSR backend freezes once and
// layers each insertion in a fresh overlay — so the oracle exercises
// both the flat-array kernels (snapshot) and the overlay read path.
var monotonicityBackends = map[string]func(g *graph.Graph) (graph.View, func(u, v int) graph.View){
	"map": func(g *graph.Graph) (graph.View, func(u, v int) graph.View) {
		return g, func(u, v int) graph.View {
			g2 := g.Clone()
			g2.AddEdge(u, v)
			return g2
		}
	},
	"csr": func(g *graph.Graph) (graph.View, func(u, v int) graph.View) {
		snap := csr.Freeze(g)
		return snap, func(u, v int) graph.View {
			ov := csr.NewOverlay(snap)
			ov.AddEdge(u, v)
			return ov
		}
	},
}

func TestRankSemiMonotonicityUnderIncidentInsertion(t *testing.T) {
	for backend, views := range monotonicityBackends {
		backend, views := backend, views
		t.Run(backend, func(t *testing.T) {
			for name, g := range monotonicityZoo() {
				g := g
				t.Run(name, func(t *testing.T) {
					n := g.N()
					connected := g.IsConnected()
					before, insert := views(g)
					closeBefore := Closeness(before)
					harmBefore := Harmonic(before)
					for _, target := range targetsFor(g) {
						cands := 0
						for v := 0; v < n && cands < 4; v++ {
							if v == target || g.HasEdge(target, v) {
								continue
							}
							cands++
							g2 := insert(target, v)
							check := func(measure string, before, after []float64) {
								rb := RankOf(before, target)
								ra := RankOf(after, target)
								if ra > rb {
									t.Errorf("%s: inserting (%d,%d) worsened %s rank of %d: %d -> %d",
										name, target, v, measure, target, rb, ra)
								}
							}
							check("harmonic", harmBefore, Harmonic(g2))
							if connected {
								check("closeness", closeBefore, Closeness(g2))
							}
						}
					}
				})
			}
		})
	}
}

// TestRankOfConvention pins the rank convention the oracle relies on:
// rank 1 is best, and only strictly larger scores push a node down.
func TestRankOfConvention(t *testing.T) {
	scores := []float64{3, 1, 3, 2}
	for i, want := range []int{1, 4, 1, 3} {
		if got := RankOf(scores, i); got != want {
			t.Errorf("RankOf(%v, %d) = %d, want %d", scores, i, got, want)
		}
	}
	if got := RankOf(scores, 0); got != 1 {
		t.Errorf("tied best nodes must share rank 1, got %d", got)
	}
}
