package centrality

import "promonet/internal/graph"

// LocalClustering returns the local clustering coefficient of every
// node: the fraction of pairs of neighbors that are themselves adjacent.
// Nodes of degree < 2 get coefficient 0.
func LocalClustering(g graph.View) []float64 {
	n := g.N()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		adj := g.Adjacency(v)
		d := len(adj)
		if d < 2 {
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(int(adj[i]), int(adj[j])) {
					links++
				}
			}
		}
		out[v] = float64(2*links) / float64(d*(d-1))
	}
	return out
}

// AverageClustering returns the mean local clustering coefficient
// (Watts–Strogatz global clustering).
func AverageClustering(g graph.View) float64 {
	if g.N() == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range LocalClustering(g) {
		sum += c
	}
	return sum / float64(g.N())
}

// Triangles returns the number of triangles each node participates in.
func Triangles(g graph.View) []int {
	n := g.N()
	out := make([]int, n)
	for v := 0; v < n; v++ {
		adj := g.Adjacency(v)
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				if g.HasEdge(int(adj[i]), int(adj[j])) {
					out[v]++
				}
			}
		}
	}
	return out
}

// DegreeHistogram returns counts[d] = number of nodes with degree d,
// for d in [0, MaxDegree].
func DegreeHistogram(g graph.View) []int {
	counts := make([]int, maxDegree(g)+1)
	for v := 0; v < g.N(); v++ {
		counts[g.Degree(v)]++
	}
	return counts
}
