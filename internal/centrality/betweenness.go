package centrality

import (
	"math/rand"
	"runtime"
	"sync"

	"promonet/internal/graph"
)

// PairCounting selects how betweenness sums over node pairs.
//
// The paper's Definition 2.3 sums over ordered pairs (s, t) ∈ V², which
// counts every unordered pair twice on an undirected graph; its toy
// examples (Table IV, BC(v1) = 9.5) nevertheless use the conventional
// unordered count. Both are exposed; they differ by exactly a factor of
// two and never change rankings.
type PairCounting int

const (
	// PairsUnordered counts each unordered pair {s, t} once (the
	// convention of Brandes [31] and NetworkX for undirected graphs).
	PairsUnordered PairCounting = iota
	// PairsOrdered counts (s, t) and (t, s) separately, matching the
	// paper's Definition 2.3 and its Table VII/VIII magnitudes.
	PairsOrdered
)

// brandesScratch holds per-source state for Brandes' algorithm [31].
type brandesScratch struct {
	dist  []int32
	sigma []float64 // number of shortest s-v paths
	delta []float64 // dependency of s on v
	queue []int32
	order []int32   // nodes in non-decreasing distance from s
	preds [][]int32 // shortest-path predecessors
}

func newBrandesScratch(n int) *brandesScratch {
	return &brandesScratch{
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		queue: make([]int32, 0, n),
		order: make([]int32, 0, n),
		preds: make([][]int32, n),
	}
}

// source accumulates the dependencies of source s into acc. After
// summing over all sources, acc holds the ordered-pairs betweenness.
//
// The traversal is strictly top-down on every backend — flat-array
// views only swap the row lookup, not the visit order — so the σ and δ
// floating-point accumulation order, and hence the scores, are bitwise
// identical across backends.
//
//promolint:hotpath
func (bs *brandesScratch) source(g graph.View, s int, acc []float64) {
	n := g.N()
	rowptr, cols := graph.ArcsOf(g)
	for i := 0; i < n; i++ {
		bs.dist[i] = Unreachable
		bs.sigma[i] = 0
		bs.delta[i] = 0
		bs.preds[i] = bs.preds[i][:0]
	}
	bs.dist[s] = 0
	bs.sigma[s] = 1
	q := append(bs.queue[:0], int32(s)) //promolint:allow hotpath-alloc -- amortized: bs.queue is preallocated to n and reused across sources
	order := bs.order[:0]
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		order = append(order, v) //promolint:allow hotpath-alloc -- amortized: bs.order reaches steady-state n capacity after the first source
		dv := bs.dist[v]
		var row []int32
		if rowptr != nil {
			row = cols[rowptr[v]:rowptr[v+1]]
		} else {
			row = g.Adjacency(int(v))
		}
		for _, u := range row {
			if bs.dist[u] == Unreachable {
				bs.dist[u] = dv + 1
				q = append(q, u) //promolint:allow hotpath-alloc -- amortized: at most n enqueues into the n-cap scratch queue
			}
			if bs.dist[u] == dv+1 {
				bs.sigma[u] += bs.sigma[v]
				bs.preds[u] = append(bs.preds[u], v) //promolint:allow hotpath-alloc -- amortized: per-node pred lists reach steady-state capacity and are length-reset, not freed
			}
		}
	}
	// Accumulate dependencies in reverse BFS order.
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		coeff := (1 + bs.delta[w]) / bs.sigma[w]
		for _, v := range bs.preds[w] {
			bs.delta[v] += bs.sigma[v] * coeff
		}
		if int(w) != s {
			acc[w] += bs.delta[w]
		}
	}
	bs.order = order[:0]
	bs.queue = q[:0]
}

// sourceDep runs one source iteration from s on g augmented with the
// virtual undirected edge (eu, ev) — an edge considered present without
// mutating g — and returns the dependency δ_s(t) of s on t. Pass
// eu = ev = -1 to run on g as is. Nothing is accumulated into a shared
// vector; the single dependency value is the unit of the engine's
// restricted re-accumulation (internal/engine delta scoring).
//
// The virtual neighbor of eu (resp. ev) is visited after the real
// adjacency row, so the floating-point accumulation order can differ in
// the last ulps from a run on a graph with the edge physically
// inserted; integer-valued state (distances, path counts) is identical.
func (bs *brandesScratch) sourceDep(g graph.View, s, t int, eu, ev int32) float64 {
	n := g.N()
	rowptr, cols := graph.ArcsOf(g)
	for i := 0; i < n; i++ {
		bs.dist[i] = Unreachable
		bs.sigma[i] = 0
		bs.delta[i] = 0
		bs.preds[i] = bs.preds[i][:0]
	}
	bs.dist[s] = 0
	bs.sigma[s] = 1
	q := append(bs.queue[:0], int32(s)) //promolint:allow hotpath-alloc -- amortized: bs.queue is preallocated to n and reused across sources
	order := bs.order[:0]
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		order = append(order, v) //promolint:allow hotpath-alloc -- amortized: bs.order reaches steady-state n capacity after the first source
		dv := bs.dist[v]
		var row []int32
		if rowptr != nil {
			row = cols[rowptr[v]:rowptr[v+1]]
		} else {
			row = g.Adjacency(int(v))
		}
		for _, u := range row {
			if bs.dist[u] == Unreachable {
				bs.dist[u] = dv + 1
				q = append(q, u) //promolint:allow hotpath-alloc -- amortized: at most n enqueues into the n-cap scratch queue
			}
			if bs.dist[u] == dv+1 {
				bs.sigma[u] += bs.sigma[v]
				bs.preds[u] = append(bs.preds[u], v) //promolint:allow hotpath-alloc -- amortized: per-node pred lists reach steady-state capacity and are length-reset, not freed
			}
		}
		extra := int32(-1)
		if v == eu {
			extra = ev
		} else if v == ev {
			extra = eu
		}
		if extra >= 0 {
			if bs.dist[extra] == Unreachable {
				bs.dist[extra] = dv + 1
				q = append(q, extra) //promolint:allow hotpath-alloc -- amortized: at most n enqueues into the n-cap scratch queue
			}
			if bs.dist[extra] == dv+1 {
				bs.sigma[extra] += bs.sigma[v]
				bs.preds[extra] = append(bs.preds[extra], v) //promolint:allow hotpath-alloc -- amortized: per-node pred lists reach steady-state capacity and are length-reset, not freed
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		coeff := (1 + bs.delta[w]) / bs.sigma[w]
		for _, v := range bs.preds[w] {
			bs.delta[v] += bs.sigma[v] * coeff
		}
	}
	dep := bs.delta[t]
	if t == s {
		dep = 0
	}
	bs.order = order[:0]
	bs.queue = q[:0]
	return dep
}

// Betweenness returns the betweenness centrality of every node
// (Definition 2.3) using Brandes' algorithm, parallelized over sources.
// The counting convention selects the paper's ordered-pairs definition
// or the conventional unordered count.
func Betweenness(g graph.View, counting PairCounting) []float64 {
	return betweennessFrom(g, allSources(g.N()), counting, 1)
}

// BetweennessWorkers is Betweenness with an explicit worker count
// (1 forces a sequential run). It exists for the parallel-scaling
// ablation benchmarks; Betweenness uses GOMAXPROCS.
func BetweennessWorkers(g graph.View, counting PairCounting, workers int) []float64 {
	return betweennessWorkers(g, allSources(g.N()), counting, 1, workers)
}

// BetweennessSampled estimates betweenness from k pivot sources chosen
// uniformly at random (Brandes–Pich pivoting): dependencies from the
// sampled sources are scaled by n/k, an unbiased estimator of the exact
// score. If k >= n it falls back to the exact computation.
//
// RNG contract: the function consumes exactly one rng.Perm(g.N()) draw
// and nothing else, and the pivot set is its first k elements. Two
// calls with the same graph, k, and an identically seeded rng therefore
// score the same pivot set, regardless of how the per-source work is
// later scheduled. The parallel reduction here groups sources by
// whichever worker happened to claim them, so the floating-point sums
// may differ between runs in the last few ulps; callers needing
// bitwise-reproducible scores should go through internal/engine, whose
// deterministic strided schedule guarantees identical output for
// identical (graph, measure, seed, worker count).
func BetweennessSampled(g graph.View, counting PairCounting, k int, rng *rand.Rand) []float64 {
	n := g.N()
	if k >= n {
		return Betweenness(g, counting)
	}
	pivots := rng.Perm(n)[:k]
	return betweennessFrom(g, pivots, counting, float64(n)/float64(k))
}

func allSources(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func betweennessFrom(g graph.View, sources []int, counting PairCounting, scale float64) []float64 {
	return betweennessWorkers(g, sources, counting, scale, runtime.GOMAXPROCS(0))
}

func betweennessWorkers(g graph.View, sources []int, counting PairCounting, scale float64, workers int) []float64 {
	n := g.N()
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers < 1 {
		workers = 1
	}
	partials := make([][]float64, workers)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			acc := make([]float64, n)
			partials[worker] = acc
			bs := newBrandesScratch(n)
			for {
				mu.Lock()
				lo := next
				next += 8
				mu.Unlock()
				if lo >= len(sources) {
					return
				}
				hi := lo + 8
				if hi > len(sources) {
					hi = len(sources)
				}
				for _, s := range sources[lo:hi] {
					bs.source(g, s, acc)
				}
			}
		}(w)
	}
	wg.Wait()

	out := make([]float64, n)
	for _, p := range partials {
		for v := range out {
			out[v] += p[v]
		}
	}
	// The per-source accumulation counts each ordered pair once, i.e.
	// each unordered pair twice on an undirected graph.
	if counting == PairsUnordered {
		scale /= 2
	}
	if scale != 1 {
		for v := range out {
			out[v] *= scale
		}
	}
	return out
}

// BetweennessNaive computes betweenness by explicit shortest-path
// counting per pair: for each pair (s, t) it counts σ(s,t) and σ_v(s,t)
// using the identity σ_v(s,t) = σ(s,v)·σ(v,t) when
// dist(s,v)+dist(v,t) = dist(s,t). It is O(n²·m)-ish and exists purely
// as a differential-testing oracle for Brandes.
func BetweennessNaive(g graph.View, counting PairCounting) []float64 {
	n := g.N()
	dist := make([][]int32, n)
	sigma := make([][]float64, n)
	for s := 0; s < n; s++ {
		bs := newBrandesScratch(n)
		bs.source(g, s, make([]float64, n)) // reuse its sigma computation
		dist[s] = append([]int32(nil), bs.dist...)
		sigma[s] = append([]float64(nil), bs.sigma...)
	}
	out := make([]float64, n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t || dist[s][t] == Unreachable {
				continue
			}
			for v := 0; v < n; v++ {
				if v == s || v == t {
					continue
				}
				if dist[s][v] != Unreachable && dist[v][t] != Unreachable &&
					dist[s][v]+dist[v][t] == dist[s][t] {
					out[v] += sigma[s][v] * sigma[v][t] / sigma[s][t]
				}
			}
		}
	}
	if counting == PairsUnordered {
		for v := range out {
			out[v] /= 2
		}
	}
	return out
}
