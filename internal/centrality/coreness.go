package centrality

import "promonet/internal/graph"

// Coreness returns RC(v) — the largest k such that v belongs to a
// subgraph in which every node has degree at least k (Definition 2.4) —
// for every node, using the linear-time bucket algorithm of Batagelj and
// Zaveršnik (the k-core decomposition underlying [15]).
func Coreness(g graph.View) []int {
	n := g.N()
	core := make([]int, n)
	if n == 0 {
		return core
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort nodes by degree.
	bin := make([]int, maxDeg+2) // bin[d] = start index of degree-d block
	for _, d := range deg {
		bin[d+1]++
	}
	for d := 1; d < len(bin); d++ {
		bin[d] += bin[d-1]
	}
	pos := make([]int, n)  // position of node in vert
	vert := make([]int, n) // nodes sorted by current degree
	fill := append([]int(nil), bin...)
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = v
		fill[deg[v]]++
	}

	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		for _, u32 := range g.Adjacency(v) {
			u := int(u32)
			if deg[u] <= deg[v] {
				continue
			}
			// Move u one bucket down: swap it with the first node of
			// its current degree block, then shrink the block.
			du := deg[u]
			pu := pos[u]
			pw := bin[du]
			w := vert[pw]
			if u != w {
				pos[u], pos[w] = pw, pu
				vert[pu], vert[pw] = w, u
			}
			bin[du]++
			deg[u]--
		}
	}
	return core
}

// Degeneracy returns the largest coreness max_v RC(v), the statistic in
// the paper's Table VI.
func Degeneracy(g graph.View) int {
	max := 0
	for _, c := range Coreness(g) {
		if c > max {
			max = c
		}
	}
	return max
}

// KCore returns the node set of the k-core of g (possibly empty): the
// maximal induced subgraph in which every node has degree >= k.
func KCore(g graph.View, k int) []int {
	core := Coreness(g)
	var nodes []int
	for v, c := range core {
		if c >= k {
			nodes = append(nodes, v)
		}
	}
	return nodes
}

// CorenessFloat returns Coreness as float64 scores, convenient for the
// generic ranking helpers.
func CorenessFloat(g graph.View) []float64 {
	core := Coreness(g)
	out := make([]float64, len(core))
	for v, c := range core {
		out[v] = float64(c)
	}
	return out
}
