package centrality_test

import (
	"math"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/gen"
	"promonet/internal/graph"
)

func TestCurrentFlowBetweennessPathEqualsShortestPath(t *testing.T) {
	// On a tree every unit of current follows the unique path, so
	// current-flow betweenness equals shortest-path betweenness.
	g := gen.Path(7)
	cfb, err := centrality.CurrentFlowBetweenness(g)
	if err != nil {
		t.Fatal(err)
	}
	bc := centrality.Betweenness(g, centrality.PairsUnordered)
	for v := range cfb {
		if math.Abs(cfb[v]-bc[v]) > 1e-9 {
			t.Errorf("path CFB(%d) = %v, want BC %v", v, cfb[v], bc[v])
		}
	}
}

func TestCurrentFlowBetweennessStar(t *testing.T) {
	g := gen.Star(6)
	cfb, err := centrality.CurrentFlowBetweenness(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cfb[0]-10) > 1e-9 { // all C(5,2) pairs flow via the hub
		t.Errorf("CFB(hub) = %v, want 10", cfb[0])
	}
	for v := 1; v < 6; v++ {
		if math.Abs(cfb[v]) > 1e-9 {
			t.Errorf("CFB(leaf %d) = %v, want 0", v, cfb[v])
		}
	}
}

func TestCurrentFlowBetweennessVertexTransitive(t *testing.T) {
	g := gen.Cycle(8)
	cfb, err := centrality.CurrentFlowBetweenness(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 8; v++ {
		if math.Abs(cfb[v]-cfb[0]) > 1e-9 {
			t.Errorf("cycle CFB not uniform: %v vs %v", cfb[v], cfb[0])
		}
	}
	// On a cycle (two parallel paths) current spreads beyond shortest
	// paths, so CFB must strictly exceed shortest-path BC.
	bc := centrality.Betweenness(g, centrality.PairsUnordered)
	if cfb[0] <= bc[0] {
		t.Errorf("cycle CFB %v should exceed BC %v", cfb[0], bc[0])
	}
}

func TestCurrentFlowBetweennessErrors(t *testing.T) {
	if _, err := centrality.CurrentFlowBetweenness(graph.NewWithNodes(1)); err == nil {
		t.Error("n=1 accepted")
	}
	disc := graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if _, err := centrality.CurrentFlowBetweenness(disc); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestCurrentFlowMultiPointMaxGainBehaviour(t *testing.T) {
	// The multi-point strategy behaves like maximum gain for CFB:
	// pendant nodes carry no transit current, so original-pair
	// contributions are unchanged and the target collects the full new
	// pair currents.
	g := gen.Cycle(6)
	before, err := centrality.CurrentFlowBetweenness(g)
	if err != nil {
		t.Fatal(err)
	}
	g2 := g.Clone()
	target := 2
	var pend []int
	for i := 0; i < 3; i++ {
		w := g2.AddNode()
		g2.AddEdge(target, w)
		pend = append(pend, w)
	}
	after, err := centrality.CurrentFlowBetweenness(g2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range pend {
		if math.Abs(after[w]) > 1e-9 {
			t.Errorf("pendant CFB = %v, want 0", after[w])
		}
	}
	gainT := after[target] - before[target]
	for v := 0; v < g.N(); v++ {
		gain := after[v] - before[v]
		if gain < -1e-9 {
			t.Errorf("node %d lost current-flow betweenness: %v", v, gain)
		}
		if gain > gainT+1e-9 {
			t.Errorf("node %d gained more than the target: %v > %v", v, gain, gainT)
		}
	}
}

func TestEffectiveResistance(t *testing.T) {
	// Series: R across a 3-edge path = 3. Parallel: R across one edge
	// of a 4-cycle = 1*3/(1+3) = 0.75.
	p := gen.Path(4)
	r, err := centrality.EffectiveResistance(p, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-3) > 1e-9 {
		t.Errorf("series resistance = %v, want 3", r)
	}
	c := gen.Cycle(4)
	r, err = centrality.EffectiveResistance(c, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.75) > 1e-9 {
		t.Errorf("parallel resistance = %v, want 0.75", r)
	}
	if r, _ := centrality.EffectiveResistance(c, 2, 2); r != 0 {
		t.Errorf("self resistance = %v, want 0", r)
	}
	if _, err := centrality.EffectiveResistance(c, 0, 9); err == nil {
		t.Error("out-of-range node accepted")
	}
}
