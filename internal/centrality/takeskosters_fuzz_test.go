package centrality

import (
	"math/rand"
	"testing"

	"promonet/internal/gen"
	"promonet/internal/graph"
)

// FuzzEccentricityTakesKosters differentially tests the Takes–Kosters
// bound-refinement eccentricity against exact all-pairs BFS on small
// random graphs, including disconnected ones (where both sides must
// agree on per-component eccentricities). It complements the
// structural fuzzing of internal/graph/fuzz_test.go: that one checks
// the substrate, this one checks an algorithm that prunes work based
// on bounds — exactly the kind of code where a subtle bound error
// returns plausible-but-wrong values instead of crashing.
func FuzzEccentricityTakesKosters(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(10))
	f.Add(int64(2), uint8(2), uint8(0))
	f.Add(int64(3), uint8(30), uint8(200)) // dense: tiny diameter
	f.Add(int64(4), uint8(25), uint8(12))  // sparse: likely disconnected
	f.Add(int64(5), uint8(1), uint8(0))    // singleton
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw uint8) {
		n := 1 + int(nRaw)%40
		maxM := n * (n - 1) / 2
		m := int(mRaw)
		if m > maxM {
			m = maxM
		}
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, n, m)

		got := EccentricityBounded(g)
		want := ReciprocalEccentricity(g)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("n=%d m=%d seed=%d: eccentricity of node %d: bounded=%d, all-pairs BFS=%d",
					n, m, seed, v, got[v], want[v])
			}
		}
		if d := DiameterBounded(g); !disconnected(g) {
			if exact := maxEcc(want); d != exact {
				t.Fatalf("n=%d m=%d seed=%d: DiameterBounded=%d, exact=%d", n, m, seed, d, exact)
			}
		}
	})
}

func maxEcc(ecc []int32) int {
	max := int32(0)
	for _, e := range ecc {
		if e > max {
			max = e
		}
	}
	return int(max)
}

func disconnected(g *graph.Graph) bool {
	if g.N() == 0 {
		return false
	}
	reached, _ := newBFSScratch(g.N()).run(g, 0)
	return reached != g.N()
}
