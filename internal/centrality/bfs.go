// Package centrality implements the centrality measures the paper
// promotes — closeness (Def. 2.1), eccentricity (Def. 2.2), betweenness
// (Def. 2.3, Brandes' algorithm), and coreness (Def. 2.4, k-core
// decomposition) — plus degree, harmonic, and Katz centrality from the
// related-work discussion, and the ranking formalism of Section III.
//
// All algorithms assume an undirected, unweighted, connected graph, the
// setting of the paper; distance-based measures report the behaviour of
// unreachable nodes explicitly where it matters.
//
// Every kernel is written against the graph.View backend interface, so
// the mutable map-backed graph.Graph, the frozen CSR snapshot
// (graph/csr.Snapshot), and the snapshot-plus-edits overlay
// (graph/csr.Overlay) all score through the same code — held bitwise
// identical by the differential suite in graph/csr. Backends exposing
// flat CSR arrays (graph.ArcsView) additionally get branch-predictable
// inner loops with no per-node interface dispatch, and a
// direction-optimizing BFS (bfs_csr.go).
package centrality

import (
	"runtime"
	"sync"

	"promonet/internal/graph"
)

// Unreachable is the distance reported for nodes not reachable from the
// BFS source.
const Unreachable = int32(-1)

// bfsScratch holds reusable per-traversal buffers so that algorithms
// running many BFS passes (closeness, eccentricity, Brandes) do not
// allocate per source. curr/next are the level queues of the
// direction-optimizing CSR path, grown lazily on first use.
type bfsScratch struct {
	dist  []int32
	queue []int32
	curr  []int32
	next  []int32
}

func newBFSScratch(n int) *bfsScratch {
	return &bfsScratch{
		dist:  make([]int32, n),
		queue: make([]int32, 0, n),
	}
}

// run performs a BFS from s, filling sc.dist with hop distances
// (Unreachable for unreached nodes), and returns the number of reached
// nodes (including s) and the eccentricity of s within its component.
// Flat-array backends (graph.ArcsView) take the direction-optimizing
// path in bfs_csr.go; the distances, reached count, and eccentricity
// are identical either way — only the traversal schedule differs.
//
//promolint:hotpath
func (sc *bfsScratch) run(g graph.View, s int) (reached int, ecc int32) {
	if rowptr, cols := graph.ArcsOf(g); rowptr != nil {
		return sc.runArcs(rowptr, cols, s) //promolint:allow hotpath-alloc -- runArcs is itself a checked hot path; its appends are amortized scratch reuse
	}
	dist := sc.dist
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[s] = 0
	q := append(sc.queue[:0], int32(s)) //promolint:allow hotpath-alloc -- amortized: sc.queue is preallocated to n and reused across runs
	reached = 1
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		dv := dist[v]
		if dv > ecc {
			ecc = dv
		}
		for _, u := range g.Adjacency(int(v)) {
			if dist[u] == Unreachable {
				dist[u] = dv + 1
				reached++
				q = append(q, u) //promolint:allow hotpath-alloc -- amortized: at most n enqueues into the n-cap scratch queue
			}
		}
	}
	return reached, ecc
}

// Distances returns the BFS hop distances from s to every node, with
// Unreachable (-1) for nodes in other components.
func Distances(g graph.View, s int) []int32 {
	sc := newBFSScratch(g.N())
	sc.run(g, s)
	out := make([]int32, len(sc.dist))
	copy(out, sc.dist)
	return out
}

// BFS is a reusable breadth-first-search engine for callers that run
// many traversals over same-sized graphs (the greedy baselines price
// hundreds of candidates per round): it recycles its internal buffers
// instead of allocating per call.
type BFS struct {
	sc *bfsScratch
}

// NewBFS returns an engine sized for graphs of up to n nodes; it grows
// automatically if a larger graph is passed later.
func NewBFS(n int) *BFS { return &BFS{sc: newBFSScratch(n)} }

// Distances runs a BFS from s and returns the distance vector. The
// returned slice is owned by the engine and is overwritten by the next
// call — copy it if it must survive.
func (b *BFS) Distances(g graph.View, s int) []int32 {
	if n := g.N(); len(b.sc.dist) < n {
		b.sc = newBFSScratch(n)
	}
	b.sc.dist = b.sc.dist[:g.N()]
	b.sc.run(g, s)
	return b.sc.dist
}

// Dist returns the hop distance between s and t, or -1 if disconnected.
func Dist(g graph.View, s, t int) int {
	if s == t {
		return 0
	}
	sc := newBFSScratch(g.N())
	sc.run(g, s)
	return int(sc.dist[t])
}

// forEachSource runs fn(worker, source, scratch) for every source node in
// parallel, giving each worker its own scratch buffers. workers defaults
// to GOMAXPROCS when <= 0.
func forEachSource(g graph.View, workers int, fn func(worker, source int, sc *bfsScratch)) {
	n := g.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sc := newBFSScratch(n)
		for s := 0; s < n; s++ {
			fn(0, s, sc)
		}
		return
	}
	var next int64
	var mu sync.Mutex
	takeBatch := func(size int) (lo, hi int) {
		mu.Lock()
		lo = int(next)
		next += int64(size)
		mu.Unlock()
		hi = lo + size
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			sc := newBFSScratch(n)
			for {
				lo, hi := takeBatch(16)
				if lo >= n {
					return
				}
				for s := lo; s < hi; s++ {
					fn(worker, s, sc)
				}
			}
		}(w)
	}
	wg.Wait()
}
