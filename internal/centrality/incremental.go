package centrality

import (
	"fmt"

	"promonet/internal/graph"
)

// CoreMaintainer maintains the coreness vector of a growing graph under
// node and edge insertions, following the traversal insertion algorithm
// of Sarıyüce et al. [32] (the streaming k-core decomposition the paper
// cites for coreness): when an edge (u, v) arrives, only nodes in the
// "subcore" reachable from the lower-coreness endpoint through nodes of
// equal coreness can change, and each by at most one.
//
// The promotion experiments insert structures of p nodes around a
// target; maintaining coreness incrementally turns each re-evaluation
// from O(n + m) into work proportional to the affected subcore.
type CoreMaintainer struct {
	g    *graph.Graph
	core []int
	// scratch
	cd      []int // candidate degree within the subcore exploration
	visited []bool
	stack   []int32
}

// NewCoreMaintainer computes the initial decomposition of g and owns g
// afterwards: all future mutations must go through the maintainer.
func NewCoreMaintainer(g *graph.Graph) *CoreMaintainer {
	return &CoreMaintainer{
		g:    g,
		core: Coreness(g),
	}
}

// Graph returns the underlying graph (read-only use).
func (cm *CoreMaintainer) Graph() *graph.Graph { return cm.g }

// Coreness returns the current coreness of v.
func (cm *CoreMaintainer) Coreness(v int) int { return cm.core[v] }

// All returns the full coreness vector (shared; do not modify).
func (cm *CoreMaintainer) All() []int { return cm.core }

// AddNode appends an isolated node (coreness 0) and returns its ID.
func (cm *CoreMaintainer) AddNode() int {
	v := cm.g.AddNode()
	cm.core = append(cm.core, 0)
	return v
}

// AddEdge inserts the edge (u, v) and updates corenesses. It returns
// false (and changes nothing) if the edge already exists.
func (cm *CoreMaintainer) AddEdge(u, v int) bool {
	if !cm.g.AddEdge(u, v) {
		return false
	}
	cm.repairAfterInsert(u, v)
	return true
}

// repairAfterInsert implements the traversal update: let r be the
// endpoint with the smaller coreness k (ties: either). Only nodes with
// coreness exactly k reachable from r via coreness-k nodes may rise to
// k+1. A node rises iff, in the subcore exploration, its "candidate
// degree" — neighbors with coreness > k, or coreness == k and still
// candidate — stays above k.
func (cm *CoreMaintainer) repairAfterInsert(u, v int) {
	k := cm.core[u]
	root := u
	if cm.core[v] < k {
		k = cm.core[v]
		root = v
	}
	n := cm.g.N()
	if cap(cm.visited) < n {
		cm.visited = make([]bool, n)
		cm.cd = make([]int, n)
	}
	cm.visited = cm.visited[:n]
	cm.cd = cm.cd[:n]

	// Collect the subcore: nodes with core == k reachable from root
	// through core == k nodes.
	var sub []int32
	cm.stack = append(cm.stack[:0], int32(root))
	cm.visited[root] = true
	for len(cm.stack) > 0 {
		x := cm.stack[len(cm.stack)-1]
		cm.stack = cm.stack[:len(cm.stack)-1]
		sub = append(sub, x)
		for _, y := range cm.g.Adjacency(int(x)) {
			if !cm.visited[y] && cm.core[y] == k {
				cm.visited[y] = true
				cm.stack = append(cm.stack, y)
			}
		}
	}
	// Candidate degree: neighbors that could support a rise to k+1.
	candidate := make(map[int32]bool, len(sub))
	for _, x := range sub {
		candidate[x] = true
	}
	for _, x := range sub {
		d := 0
		for _, y := range cm.g.Adjacency(int(x)) {
			if cm.core[y] > k || candidate[y] {
				d++
			}
		}
		cm.cd[x] = d
	}
	// Iteratively evict subcore nodes whose candidate degree is <= k;
	// evictions cascade.
	var evict []int32
	for _, x := range sub {
		if cm.cd[x] <= k {
			evict = append(evict, x)
			candidate[x] = false
		}
	}
	for len(evict) > 0 {
		x := evict[len(evict)-1]
		evict = evict[:len(evict)-1]
		for _, y := range cm.g.Adjacency(int(x)) {
			if candidate[y] {
				cm.cd[y]--
				if cm.cd[y] <= k {
					candidate[y] = false
					evict = append(evict, y)
				}
			}
		}
	}
	// Survivors rise to k+1.
	for _, x := range sub {
		if candidate[x] {
			cm.core[x] = k + 1
		}
		cm.visited[x] = false
	}
}

// Check recomputes the decomposition from scratch and reports the first
// disagreement with the maintained vector, or nil. It exists for
// differential testing and costs a full Coreness run.
func (cm *CoreMaintainer) Check() error {
	want := Coreness(cm.g)
	for v := range want {
		if cm.core[v] != want[v] {
			return fmt.Errorf("centrality: incremental coreness diverged at node %d: have %d, want %d",
				v, cm.core[v], want[v])
		}
	}
	return nil
}
