package centrality_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"promonet/internal/centrality"
	"promonet/internal/datasets"
	"promonet/internal/gen"
)

func TestTopKClosenessFig1(t *testing.T) {
	g := datasets.Fig1()
	top := centrality.TopKCloseness(g, 3)
	// From Table V farness: v6 (12), then v1 and v5 (14).
	if len(top) != 3 {
		t.Fatalf("got %d results, want 3", len(top))
	}
	if top[0].Node != datasets.V6 {
		t.Errorf("top-1 = %d, want v6", top[0].Node)
	}
	if top[1].Node != datasets.V1 || top[2].Node != datasets.V5 {
		t.Errorf("top-2/3 = %d, %d, want v1, v5 (ID tie-break)", top[1].Node, top[2].Node)
	}
}

func TestTopKClosenessEdgeCases(t *testing.T) {
	g := gen.Path(5)
	if out := centrality.TopKCloseness(g, 0); out != nil {
		t.Errorf("k=0 returned %v", out)
	}
	out := centrality.TopKCloseness(g, 100)
	if len(out) != 5 {
		t.Errorf("k>n returned %d results, want 5", len(out))
	}
	// Scores must be non-increasing.
	for i := 1; i < len(out); i++ {
		if out[i].Score > out[i-1].Score {
			t.Errorf("scores not sorted: %v", out)
		}
	}
}

// TestPropertyTopKMatchesFull: on random connected hosts, TopKCloseness
// agrees with a full closeness computation for every k.
func TestPropertyTopKMatchesFull(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.BarabasiAlbert(rng, 20+rng.Intn(60), 2)
		far := centrality.Farness(g)
		k := 1 + rng.Intn(10)
		top := centrality.TopKCloseness(g, k)
		if len(top) != min(k, g.N()) {
			return false
		}
		// Build the expected ordering: farness ascending, node ID
		// ascending.
		type fe struct {
			far  int64
			node int
		}
		all := make([]fe, g.N())
		for v := range all {
			all[v] = fe{far[v], v}
		}
		for i := range top {
			// Selection check: find the i-th smallest by (far, node).
			best := -1
			for v := range all {
				if all[v].node == -1 {
					continue
				}
				if best == -1 || all[v].far < all[best].far ||
					(all[v].far == all[best].far && all[v].node < all[best].node) {
					best = v
				}
			}
			if top[i].Node != all[best].node {
				return false
			}
			all[best].node = -1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
