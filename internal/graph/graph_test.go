package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: n=%d m=%d, want 0 0", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Error("empty graph should be considered connected")
	}
	if g.MaxDegree() != 0 {
		t.Errorf("MaxDegree = %d, want 0", g.MaxDegree())
	}
}

func TestAddNodesAndEdges(t *testing.T) {
	g := New(4)
	a := g.AddNode()
	b := g.AddNode()
	c := g.AddNode()
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("AddNode IDs = %d,%d,%d, want 0,1,2", a, b, c)
	}
	if !g.AddEdge(a, b) {
		t.Error("AddEdge(a,b) = false on first insert")
	}
	if g.AddEdge(b, a) {
		t.Error("AddEdge(b,a) = true on duplicate insert")
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Error("edge (a,b) missing after insert")
	}
	if g.HasEdge(a, c) {
		t.Error("phantom edge (a,c)")
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 || g.Degree(c) != 0 {
		t.Errorf("degrees = %d,%d,%d, want 1,1,0", g.Degree(a), g.Degree(b), g.Degree(c))
	}
}

func TestAddNodesBatch(t *testing.T) {
	g := NewWithNodes(2)
	first := g.AddNodes(3)
	if first != 2 {
		t.Fatalf("AddNodes first = %d, want 2", first)
	}
	if g.N() != 5 {
		t.Fatalf("N = %d, want 5", g.N())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddEdge(v, v) did not panic")
		}
	}()
	g := NewWithNodes(2)
	g.AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddEdge out of range did not panic")
		}
	}()
	g := NewWithNodes(2)
	g.AddEdge(0, 5)
}

func TestRemoveEdge(t *testing.T) {
	g := NewWithNodes(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.RemoveEdge(0, 1) {
		t.Error("RemoveEdge existing = false")
	}
	if g.RemoveEdge(0, 1) {
		t.Error("RemoveEdge missing = true")
	}
	if g.HasEdge(0, 1) {
		t.Error("edge survived removal")
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
}

func TestNeighborsSortedAndEarlyStop(t *testing.T) {
	g := NewWithNodes(5)
	for _, v := range []int{4, 2, 1, 3} {
		g.AddEdge(0, v)
	}
	got := g.NeighborSlice(0)
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NeighborSlice(0) = %v, want %v", got, want)
		}
	}
	count := 0
	g.Neighbors(0, func(u int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early-stopped Neighbors visited %d, want 2", count)
	}
}

func TestEdgesOrderAndEarlyStop(t *testing.T) {
	g := FromEdges(4, [][2]int{{2, 3}, {0, 1}, {0, 2}})
	var got [][2]int
	g.Edges(func(u, v int) bool {
		got = append(got, [2]int{u, v})
		return true
	})
	want := [][2]int{{0, 1}, {0, 2}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("Edges visited %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Edges order = %v, want %v", got, want)
		}
	}
	n := 0
	g.Edges(func(u, v int) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stopped Edges visited %d, want 1", n)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}})
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.AddEdge(1, 2)
	if g.Equal(c) {
		t.Error("mutating clone affected Equal")
	}
	if g.HasEdge(1, 2) {
		t.Error("mutating clone affected original")
	}
}

func TestEqual(t *testing.T) {
	a := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	b := FromEdges(3, [][2]int{{1, 2}, {0, 1}})
	if !a.Equal(b) {
		t.Error("same edge sets not Equal")
	}
	c := FromEdges(3, [][2]int{{0, 1}, {0, 2}})
	if a.Equal(c) {
		t.Error("different edge sets Equal")
	}
	d := FromEdges(4, [][2]int{{0, 1}, {1, 2}})
	if a.Equal(d) {
		t.Error("different node counts Equal")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := FromEdges(7, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	comps := g.ConnectedComponents()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	sizes := []int{len(comps[0]), len(comps[1]), len(comps[2]), len(comps[3])}
	want := []int{3, 2, 1, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("component sizes = %v, want %v", sizes, want)
		}
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestLargestComponent(t *testing.T) {
	g := FromEdges(8, [][2]int{{0, 1}, {1, 2}, {2, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4}})
	sub, orig := g.LargestComponent()
	if sub.N() != 4 || sub.M() != 4 {
		t.Fatalf("largest component n=%d m=%d, want 4 4", sub.N(), sub.M())
	}
	wantOrig := []int{4, 5, 6, 7}
	for i, v := range wantOrig {
		if orig[i] != v {
			t.Fatalf("origID = %v, want %v", orig, wantOrig)
		}
	}
	// The cycle structure must be preserved under relabeling.
	for v := 0; v < sub.N(); v++ {
		if sub.Degree(v) != 2 {
			t.Errorf("degree(%d) = %d in 4-cycle, want 2", v, sub.Degree(v))
		}
	}
}

func TestInducedSubgraphDuplicates(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	sub, orig := g.InducedSubgraph([]int{2, 1, 2, 1})
	if sub.N() != 2 || sub.M() != 1 {
		t.Fatalf("sub n=%d m=%d, want 2 1", sub.N(), sub.M())
	}
	if orig[0] != 2 || orig[1] != 1 {
		t.Fatalf("origID = %v, want [2 1]", orig)
	}
}

// TestPropertyEdgeSymmetry: for random graphs, HasEdge is symmetric and M
// equals the number of pairs visited by Edges.
func TestPropertyEdgeSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := NewWithNodes(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		count := 0
		ok := true
		g.Edges(func(u, v int) bool {
			count++
			if !g.HasEdge(v, u) {
				ok = false
			}
			return true
		})
		return ok && count == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDegreeSum: the handshake lemma — degrees sum to 2m.
func TestPropertyDegreeSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := NewWithNodes(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyComponentsPartition: components partition the node set.
func TestPropertyComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := NewWithNodes(n)
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		seen := make(map[int]bool)
		for _, c := range g.ConnectedComponents() {
			for _, v := range c {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInducedSubgraphAdjacency: for random graphs and node
// subsets, the induced subgraph has an edge exactly where the original
// has one between selected nodes.
func TestPropertyInducedSubgraphAdjacency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		g := NewWithNodes(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		var S []int
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				S = append(S, v)
			}
		}
		sub, orig := g.InducedSubgraph(S)
		for a := 0; a < sub.N(); a++ {
			for b := a + 1; b < sub.N(); b++ {
				if sub.HasEdge(a, b) != g.HasEdge(orig[a], orig[b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStringSummary(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}})
	if got := g.String(); got != "graph(n=3, m=1)" {
		t.Errorf("String = %q", got)
	}
}

func TestAdjacencyAndEdgeList(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 2}, {0, 1}, {2, 3}})
	adj := g.Adjacency(0)
	if len(adj) != 2 || adj[0] != 1 || adj[1] != 2 {
		t.Errorf("Adjacency(0) = %v, want [1 2]", adj)
	}
	el := g.EdgeList()
	if len(el) != 3 || el[0] != [2]int{0, 1} {
		t.Errorf("EdgeList = %v", el)
	}
}
