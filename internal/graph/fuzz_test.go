package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList exercises the parser with arbitrary inputs: it must
// never panic, and on success the resulting graph must satisfy basic
// invariants (simple, symmetric, label vector consistent).
func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"0 1\n1 2\n",
		"# comment\n\n5\t7\n7,9\n",
		"% c\n1 1\n2 3\n2 3\n",
		"9999999999999999999999 1\n",
		"a b\n",
		"1",
		strings.Repeat("1 2\n", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, labels, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if g.N() != len(labels) {
			t.Fatalf("n=%d but %d labels", g.N(), len(labels))
		}
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
			if g.HasEdge(v, v) {
				t.Fatalf("self-loop at %d", v)
			}
		}
		if sum != 2*g.M() {
			t.Fatalf("handshake violated: sum=%d m=%d", sum, g.M())
		}
		// Round trip must reproduce the same structure sizes.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		h, _, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if h.M() != g.M() {
			t.Fatalf("round trip m: %d -> %d", g.M(), h.M())
		}
	})
}
