//go:build !promodebug

package graph

// DebugChecks reports whether runtime invariant checking is compiled
// in. This build has it off; build with -tags promodebug to enable.
const DebugChecks = false

// DebugAssert is a no-op in this build. With -tags promodebug it
// panics if g violates the structural invariants (see CheckInvariants).
func DebugAssert(*Graph) {}
