package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}})
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, "demo", map[int]string{1: "red"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`graph "demo" {`,
		`1 [style=filled, fillcolor="red"];`,
		"0 -- 1;",
		"1 -- 2;",
		"3;", // isolated node stays visible
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDefaults(t *testing.T) {
	g := FromEdges(2, [][2]int{{0, 1}})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `graph "G" {`) {
		t.Errorf("default name missing:\n%s", buf.String())
	}
}
