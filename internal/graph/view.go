package graph

// View is the read-only backend interface every graph representation in
// this module satisfies: the mutable sorted-adjacency Graph, the frozen
// CSR snapshot (graph/csr.Snapshot), and the snapshot-plus-edits overlay
// (graph/csr.Overlay). The centrality kernels, the execution engine, and
// the greedy baselines are written against View, so one implementation
// of every algorithm serves all backends — and the differential suite in
// graph/csr holds them bitwise identical.
//
// View is deliberately mutation-free: code that receives a View cannot
// change the structure it describes, which turns the black-box read-only
// contract promolint's mutation-safety analyzer enforces dynamically
// into a property the type system carries.
//
// Adjacency follows the Graph contract: the returned slice is sorted
// ascending, must not be modified, and remains valid only until the next
// mutation of the underlying structure. Version follows the Graph
// contract too: equal nonzero versions imply equal structure, so
// version-keyed caches (internal/engine) work unchanged across backends.
type View interface {
	// N returns the number of nodes; identifiers are [0, N()).
	N() int
	// M returns the number of undirected edges.
	M() int
	// Degree returns the number of neighbors of v.
	Degree(v int) int
	// Adjacency returns the sorted neighbor row of v, read-only.
	Adjacency(v int) []int32
	// HasEdge reports whether the undirected edge (u, v) exists.
	HasEdge(u, v int) bool
	// Version is the structure-change stamp; see (*Graph).Version.
	Version() uint64
}

// ArcsView is the optional capability of backends whose entire adjacency
// lives in one contiguous CSR arc array: node v's neighbors are
// cols[rowptr[v]:rowptr[v+1]]. The hot kernels (internal/centrality BFS
// and Brandes) detect it once per traversal and run branch-predictable
// inner loops over the two flat arrays, with no per-node interface
// dispatch — and the BFS kernel additionally switches to a
// direction-optimizing (top-down/bottom-up) schedule, which needs the
// cheap whole-graph row scans only a flat layout provides.
//
// Both returned slices are read-only and must stay valid for the
// lifetime of the backend (which is why only immutable snapshots
// implement it).
type ArcsView interface {
	View
	// Arcs returns the CSR row-pointer (len N()+1) and column (len
	// 2·M()) arrays.
	Arcs() (rowptr []int64, cols []int32)
}

// ArcsOf returns g's flat CSR arrays when the backend provides them, or
// (nil, nil) for adjacency-list backends. Kernels call it once per
// traversal to pick their inner loop.
func ArcsOf(g View) (rowptr []int64, cols []int32) {
	if av, ok := g.(ArcsView); ok {
		return av.Arcs()
	}
	return nil, nil
}

// NewVersion issues a fresh, globally unique, nonzero version from the
// same counter (*Graph).bumpVersion draws from. Alternative backends
// (graph/csr.Overlay) stamp their mutations with it so the cross-backend
// invariant — equal nonzero versions imply equal structure — holds
// module-wide and the engine's version-keyed digest memo can never alias
// two different structures.
func NewVersion() uint64 { return nextVersion() }

// Materialize builds a mutable Graph with v's node count and edge set.
// A *Graph input is deep-copied via Clone (preserving its version); any
// other backend is rebuilt row by row, inheriting v's version when that
// version is nonzero — the two structures are identical, the Clone
// semantics. It is the bridge back from snapshot land: overlay-built
// promotion results materialize into ordinary graphs for strategy
// application, invariant checking, and IO.
func Materialize(v View) *Graph {
	if g, ok := v.(*Graph); ok {
		return g.Clone()
	}
	n := v.N()
	g := &Graph{adj: make([][]int32, n), m: v.M(), version: v.Version()}
	if g.version == 0 {
		g.version = nextVersion()
	}
	for u := 0; u < n; u++ {
		g.adj[u] = append([]int32(nil), v.Adjacency(u)...)
	}
	return g
}

// Compile-time check: the mutable map-backed Graph is itself a View.
var _ View = (*Graph)(nil)
