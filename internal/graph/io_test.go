package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment
% another comment

0 1
1	2
2,3
3 0
0 1
1 1
`
	g, labels, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 {
		t.Errorf("n = %d, want 4", g.N())
	}
	if g.M() != 4 {
		t.Errorf("m = %d, want 4 (duplicate and self-loop dropped)", g.M())
	}
	wantLabels := []int64{0, 1, 2, 3}
	for i, l := range wantLabels {
		if labels[i] != l {
			t.Fatalf("labels = %v, want %v", labels, wantLabels)
		}
	}
}

func TestReadEdgeListSparseLabels(t *testing.T) {
	in := "100 200\n200 4000000000\n"
	g, labels, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d, want 3 2", g.N(), g.M())
	}
	if labels[2] != 4000000000 {
		t.Errorf("labels[2] = %d, want 4000000000", labels[2])
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"single field", "42\n"},
		{"non-numeric", "a b\n"},
		{"second field bad", "1 x\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ReadEdgeList(strings.NewReader(tc.in)); err == nil {
				t.Errorf("ReadEdgeList(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, labels, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// ReadEdgeList compacts labels in order of first appearance, so map
	// back through the label vector before comparing edge sets.
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip changed size: %v -> %v", g, h)
	}
	h.Edges(func(u, v int) bool {
		ou, ov := int(labels[u]), int(labels[v])
		if !g.HasEdge(ou, ov) {
			t.Errorf("round trip invented edge (%d, %d)", ou, ov)
		}
		return true
	})
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err := SaveEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	h, _, err := LoadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Error("file round trip changed graph")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, err := LoadEdgeListFile("/nonexistent/path/graph.txt"); err == nil {
		t.Error("loading missing file succeeded")
	}
}
