package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment
% another comment

0 1
1	2
2,3
3 0
0 1
1 1
`
	g, labels, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 {
		t.Errorf("n = %d, want 4", g.N())
	}
	if g.M() != 4 {
		t.Errorf("m = %d, want 4 (duplicate and self-loop dropped)", g.M())
	}
	wantLabels := []int64{0, 1, 2, 3}
	for i, l := range wantLabels {
		if labels[i] != l {
			t.Fatalf("labels = %v, want %v", labels, wantLabels)
		}
	}
}

func TestReadEdgeListSparseLabels(t *testing.T) {
	in := "100 200\n200 4000000000\n"
	g, labels, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d, want 3 2", g.N(), g.M())
	}
	if labels[2] != 4000000000 {
		t.Errorf("labels[2] = %d, want 4000000000", labels[2])
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"single field", "42\n"},
		{"non-numeric", "a b\n"},
		{"second field bad", "1 x\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ReadEdgeList(strings.NewReader(tc.in)); err == nil {
				t.Errorf("ReadEdgeList(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, labels, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// ReadEdgeList compacts labels in order of first appearance, so map
	// back through the label vector before comparing edge sets.
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip changed size: %v -> %v", g, h)
	}
	h.Edges(func(u, v int) bool {
		ou, ov := int(labels[u]), int(labels[v])
		if !g.HasEdge(ou, ov) {
			t.Errorf("round trip invented edge (%d, %d)", ou, ov)
		}
		return true
	})
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err := SaveEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	h, _, err := LoadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Error("file round trip changed graph")
	}
}

// TestLabeledRoundTrip pins the regression where a labeled graph did
// not survive a save/load cycle: WriteEdgeList emits compact IDs, so
// saving a graph loaded from a SNAP file with sparse labels (100, 200,
// 4e9, ...) silently renamed every node. WriteEdgeListLabeled restores
// the original labels, so load → save-labeled → load is the identity
// on both structure and labels.
func TestLabeledRoundTrip(t *testing.T) {
	in := "100 200\n200 4000000000\n4000000000 7\n7 100\n"
	g, labels, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteEdgeListLabeled(&buf, g, labels); err != nil {
		t.Fatal(err)
	}
	h, labels2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("labeled round trip changed size: %v -> %v", g, h)
	}
	// Compare edge sets under original labels: every reloaded edge must
	// exist in the source file's label space and vice versa.
	byLabel := func(g *Graph, labels []int64) map[[2]int64]bool {
		set := make(map[[2]int64]bool)
		g.Edges(func(u, v int) bool {
			a, b := labels[u], labels[v]
			if a > b {
				a, b = b, a
			}
			set[[2]int64{a, b}] = true
			return true
		})
		return set
	}
	want, got := byLabel(g, labels), byLabel(h, labels2)
	for e := range want {
		if !got[e] {
			t.Errorf("labeled round trip lost edge %v", e)
		}
	}
	for e := range got {
		if !want[e] {
			t.Errorf("labeled round trip invented edge %v", e)
		}
	}

	// The unlabeled writer, by contrast, must NOT round-trip the labels
	// (that is the documented compaction) — this guards against someone
	// "fixing" WriteEdgeList itself and breaking its compact-ID contract.
	buf.Reset()
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	_, compact, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sawOriginal := false
	for _, l := range compact {
		if l == 4000000000 {
			sawOriginal = true
		}
	}
	if sawOriginal {
		t.Error("WriteEdgeList preserved sparse labels; expected compact IDs")
	}
}

// TestSaveEdgeListLabeledFile covers the file-level labeled round trip.
func TestSaveEdgeListLabeledFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	g, labels, err := ReadEdgeList(strings.NewReader("10 20\n20 30\n30 10\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveEdgeListLabeledFile(path, g, labels); err != nil {
		t.Fatal(err)
	}
	h, labels2, err := LoadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Error("labeled file round trip changed structure")
	}
	for i := range labels {
		if labels[i] != labels2[i] {
			t.Fatalf("labels changed across round trip: %v -> %v", labels, labels2)
		}
	}
	// Wrong label-vector length is an error, not silent truncation.
	if err := WriteEdgeListLabeled(&bytes.Buffer{}, g, labels[:1]); err == nil {
		t.Error("short label vector accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, err := LoadEdgeListFile("/nonexistent/path/graph.txt"); err == nil {
		t.Error("loading missing file succeeded")
	}
}
