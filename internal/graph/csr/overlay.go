package csr

import (
	"context"
	"fmt"
	"sort"

	"promonet/internal/graph"
	"promonet/internal/obs"
)

// Overlay is a small mutable edit layer over an immutable Snapshot: it
// supports the same structural mutations as graph.Graph (AddNode,
// AddNodes, AddEdge, RemoveEdge, with identical panic and no-op
// semantics) while sharing the frozen base untouched. Only the rows a
// mutation touches are copied — a promotion structure of a few hundred
// edges costs a few hundred small rows, not a clone of a million-node
// host.
//
// Overlay satisfies graph.View, so kernels, the engine, and the greedy
// baselines score it directly. Like graph.Graph it is not safe for
// concurrent mutation; concurrent reads are safe, and the shared base
// is never written.
//
// Version follows the module-wide contract: a fresh overlay shares its
// base's stamp (identical structure), every effective mutation draws a
// fresh globally unique stamp from graph.NewVersion, and no-op
// mutations leave it untouched — so the engine's version-keyed caches
// invalidate correctly without knowing overlays exist.
type Overlay struct {
	base *Snapshot
	// rows holds the merged, sorted neighbor row of every touched node:
	// base rows copied on first touch, nil-grown rows for nodes added
	// past the base. Untouched nodes read through to the base.
	rows    map[int32][]int32
	n       int
	m       int
	version uint64
}

// NewOverlay returns an empty edit layer over base. The overlay starts
// structurally identical to base and shares its version stamp.
func NewOverlay(base *Snapshot) *Overlay {
	return &Overlay{
		base:    base,
		rows:    make(map[int32][]int32),
		n:       base.N(),
		m:       base.M(),
		version: base.Version(),
	}
}

// Base returns the frozen snapshot the overlay layers over.
func (o *Overlay) Base() *Snapshot { return o.base }

// Touched returns the number of nodes whose rows live in the overlay —
// the memory the edit layer actually costs.
func (o *Overlay) Touched() int { return len(o.rows) }

// N returns the number of nodes (base nodes plus overlay-added ones).
func (o *Overlay) N() int { return o.n }

// M returns the number of undirected edges.
func (o *Overlay) M() int { return o.m }

// row returns v's current sorted neighbor row without copying:
// overlay-owned if touched, the base row otherwise.
func (o *Overlay) row(v int) []int32 {
	if r, ok := o.rows[int32(v)]; ok {
		return r
	}
	if v < o.base.N() {
		return o.base.Adjacency(v)
	}
	return nil
}

// Degree returns the number of neighbors of v.
func (o *Overlay) Degree(v int) int { return len(o.row(v)) }

// Adjacency returns the sorted neighbor row of v, read-only; it remains
// valid until the next mutation of the overlay.
func (o *Overlay) Adjacency(v int) []int32 { return o.row(v) }

// HasEdge reports whether the edge (u, v) exists. Self-loops never
// exist.
func (o *Overlay) HasEdge(u, v int) bool {
	if u < 0 || u >= o.n || v < 0 || v >= o.n || u == v {
		return false
	}
	row := o.row(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	return i < len(row) && row[i] == int32(v)
}

// Version is the structure-change stamp; see (*graph.Graph).Version for
// the contract.
func (o *Overlay) Version() uint64 { return o.version }

// bump stamps an effective structural mutation.
func (o *Overlay) bump() { o.version = graph.NewVersion() }

// AddNode appends a new isolated node and returns its identifier.
func (o *Overlay) AddNode() int {
	v := o.n
	o.n++
	o.bump()
	return v
}

// AddNodes appends k isolated nodes and returns the identifier of the
// first one. It panics if k is negative; AddNodes(0) is a version-
// neutral no-op, like every other no-op mutation.
func (o *Overlay) AddNodes(k int) (first int) {
	if k < 0 {
		panic(fmt.Sprintf("csr: AddNodes(%d) with negative count", k))
	}
	first = o.n
	if k == 0 {
		return first
	}
	o.n += k
	o.bump()
	return first
}

// mutableRow returns v's overlay-owned row, copying the base row on
// first touch.
func (o *Overlay) mutableRow(v int) []int32 {
	if r, ok := o.rows[int32(v)]; ok {
		return r
	}
	var r []int32
	if v < o.base.N() {
		r = append([]int32(nil), o.base.Adjacency(v)...)
	}
	o.rows[int32(v)] = r
	return r
}

// AddEdge inserts the undirected edge (u, v). It returns true if the
// edge was inserted, and false if it already existed. It panics if u or
// v is not a node or if u == v, matching graph.Graph.
func (o *Overlay) AddEdge(u, v int) bool {
	if u < 0 || u >= o.n || v < 0 || v >= o.n {
		panic(fmt.Sprintf("csr: AddEdge(%d, %d) outside node range [0, %d)", u, v, o.n))
	}
	if u == v {
		panic(fmt.Sprintf("csr: AddEdge(%d, %d) would create a self-loop", u, v))
	}
	if o.HasEdge(u, v) {
		return false
	}
	o.insertArc(u, v)
	o.insertArc(v, u)
	o.m++
	o.bump()
	return true
}

// RemoveEdge deletes the undirected edge (u, v), reporting whether it
// existed. Base edges are removable too: the touched rows move into the
// overlay, the base stays frozen.
func (o *Overlay) RemoveEdge(u, v int) bool {
	if !o.HasEdge(u, v) {
		return false
	}
	o.removeArc(u, v)
	o.removeArc(v, u)
	o.m--
	o.bump()
	return true
}

func (o *Overlay) insertArc(u, v int) {
	r := o.mutableRow(u)
	i := sort.Search(len(r), func(i int) bool { return r[i] >= int32(v) })
	r = append(r, 0)
	copy(r[i+1:], r[i:])
	r[i] = int32(v)
	o.rows[int32(u)] = r
}

func (o *Overlay) removeArc(u, v int) {
	r := o.mutableRow(u)
	i := sort.Search(len(r), func(i int) bool { return r[i] >= int32(v) })
	copy(r[i:], r[i+1:])
	o.rows[int32(u)] = r[:len(r)-1]
}

// Freeze compacts the overlay into a fresh immutable Snapshot in
// O(n + m). The snapshot carries the overlay's current version stamp
// (identical structure), so caches warmed through the overlay stay
// valid for the compacted base — the snapshot-swap primitive for
// promotion services that periodically re-freeze accumulated edits.
func (o *Overlay) Freeze() *Snapshot {
	_, sp := obs.Start(context.Background(), "csr/overlay-freeze")
	sp.Int("n", o.n)
	sp.Int("m", o.m)
	sp.Int("touched", len(o.rows))
	defer sp.End()
	s := &Snapshot{
		rowptr:  make([]int64, o.n+1),
		cols:    make([]int32, 2*o.m),
		m:       o.m,
		version: o.version,
	}
	var at int64
	for v := 0; v < o.n; v++ {
		s.rowptr[v] = at
		at += int64(copy(s.cols[at:], o.row(v)))
	}
	s.rowptr[o.n] = at
	return s
}

// Materialize rebuilds a mutable graph.Graph with the overlay's
// combined structure (and version, per the Clone semantics).
func (o *Overlay) Materialize() *graph.Graph { return graph.Materialize(o) }

// String returns a short human-readable summary.
func (o *Overlay) String() string {
	return fmt.Sprintf("csr.Overlay(n=%d, m=%d, touched=%d over %s)", o.n, o.m, len(o.rows), o.base)
}

// Compile-time check: Overlay is a View. It is deliberately not an
// ArcsView — its adjacency is not flat — so kernels route it through
// the generic interface loops.
var _ graph.View = (*Overlay)(nil)
