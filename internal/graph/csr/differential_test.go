package csr_test

// The differential harness that gates the CSR backend: every kernel and
// every engine path must produce bitwise-identical output on the mutable
// map graph, the frozen Snapshot, and a reconstructed Overlay, across
// the whole graph zoo and across worker counts. "Bitwise" is deliberate
// — the CSR BFS is direction-optimizing and the flat-array Brandes path
// skips interface dispatch, but neither is allowed to change a single
// floating-point accumulation order the scores can see.
//
// Run under -race this also shakes out data races in the parallel
// sweeps over the shared immutable snapshot.

import (
	"math"
	"math/rand"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/datasets"
	"promonet/internal/engine"
	"promonet/internal/gen"
	"promonet/internal/graph"
	"promonet/internal/graph/csr"
)

// diffWorkers are the engine pool widths every engine-level comparison
// runs at.
var diffWorkers = []int{1, 2, 8}

// zoo returns the named differential-test graphs: the closed-form
// shapes, the random-model shapes at fixed seeds, the paper's Fig. 1
// example, and a deliberately disconnected graph (distance-based
// kernels must agree on the unreachable conventions, too).
func zoo() map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(41))
	z := map[string]*graph.Graph{
		"star-10":    gen.Star(10),
		"path-12":    gen.Path(12),
		"clique-7":   gen.Clique(7),
		"grid-4x5":   gen.Grid(4, 5),
		"ba-40-3":    gen.BarabasiAlbert(rng, 40, 3),
		"er-30-60":   gen.ErdosRenyi(rng, 30, 60),
		"fig1-paper": datasets.Fig1(),
	}
	two := gen.Clique(5)
	first := two.AddNodes(5)
	for u := first; u < first+5; u++ {
		for w := u + 1; w < first+5; w++ {
			two.AddEdge(u, w)
		}
	}
	z["two-cliques"] = two
	return z
}

// backendsOf returns structurally identical views of g under every
// backend: the map graph itself, a frozen snapshot, and an overlay
// whose base is missing a few of g's edges and two of its nodes — so
// overlay reads genuinely mix copied rows, base rows, and past-the-base
// rows rather than passing through untouched.
func backendsOf(t *testing.T, g *graph.Graph) map[string]graph.View {
	t.Helper()
	snap := csr.Freeze(g)

	// Rebuild g as base + overlay edits: the base lacks g's last two
	// nodes and every edge incident to them, plus a few spread-out
	// earlier edges; the overlay adds them all back.
	edges := g.EdgeList()
	cut := g.N() - 2
	if cut < 1 {
		cut = 1
	}
	base := graph.NewWithNodes(cut)
	var edits [][2]int
	for i, e := range edges {
		if e[0] >= cut || e[1] >= cut || i%7 == 3 {
			edits = append(edits, e)
		} else {
			base.AddEdge(e[0], e[1])
		}
	}
	ov := csr.NewOverlay(csr.Freeze(base))
	ov.AddNodes(g.N() - cut)
	for _, e := range edits {
		if !ov.AddEdge(e[0], e[1]) {
			t.Fatalf("overlay rebuild: AddEdge(%d, %d) refused a missing edge", e[0], e[1])
		}
	}
	if ov.N() != g.N() || ov.M() != g.M() {
		t.Fatalf("overlay rebuild: got n=%d m=%d, want n=%d m=%d", ov.N(), ov.M(), g.N(), g.M())
	}
	return map[string]graph.View{"snapshot": snap, "overlay": ov}
}

// wantSameFloats asserts bitwise equality (NaN-safe) of two score
// vectors.
func wantSameFloats(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("%s: node %d = %v (bits %x), want %v (bits %x)",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func wantSameInt32s(t *testing.T, what string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: node %d = %d, want %d", what, i, got[i], want[i])
		}
	}
}

// TestKernelsBitwiseIdenticalAcrossBackends compares every direct
// centrality kernel on each backend against the map-graph reference.
func TestKernelsBitwiseIdenticalAcrossBackends(t *testing.T) {
	for name, g := range zoo() {
		g := g
		t.Run(name, func(t *testing.T) {
			n := g.N()
			wantDist := make([][]int32, n)
			for s := 0; s < n; s++ {
				wantDist[s] = centrality.Distances(g, s)
			}
			wantFar := centrality.Farness(g)
			wantHarm := centrality.Harmonic(g)
			wantEcc := centrality.ReciprocalEccentricity(g)
			wantCore := centrality.Coreness(g)
			// One worker on both sides: the direct functions' racing batch
			// scheduler makes multi-worker float merges schedule-dependent
			// even on a single backend. The engine-level test below covers
			// workers 1/2/8 through the deterministic strided schedule.
			wantBCo := centrality.BetweennessWorkers(g, centrality.PairsOrdered, 1)
			wantBCu := centrality.BetweennessWorkers(g, centrality.PairsUnordered, 1)
			wantKatz := centrality.KatzAuto(g)
			wantClust := centrality.LocalClustering(g)

			for backend, v := range backendsOf(t, g) {
				v := v
				t.Run(backend, func(t *testing.T) {
					for s := 0; s < n; s++ {
						wantSameInt32s(t, "distances", centrality.Distances(v, s), wantDist[s])
					}
					far := centrality.Farness(v)
					for i := range far {
						if far[i] != wantFar[i] {
							t.Errorf("farness: node %d = %d, want %d", i, far[i], wantFar[i])
						}
					}
					wantSameFloats(t, "harmonic", centrality.Harmonic(v), wantHarm)
					wantSameInt32s(t, "recip-ecc", centrality.ReciprocalEccentricity(v), wantEcc)
					core := centrality.Coreness(v)
					for i := range core {
						if core[i] != wantCore[i] {
							t.Errorf("coreness: node %d = %d, want %d", i, core[i], wantCore[i])
						}
					}
					wantSameFloats(t, "betweenness-ordered",
						centrality.BetweennessWorkers(v, centrality.PairsOrdered, 1), wantBCo)
					wantSameFloats(t, "betweenness-unordered",
						centrality.BetweennessWorkers(v, centrality.PairsUnordered, 1), wantBCu)
					wantSameFloats(t, "katz", centrality.KatzAuto(v), wantKatz)
					wantSameFloats(t, "clustering", centrality.LocalClustering(v), wantClust)
				})
			}
		})
	}
}

// TestBrandesDepBitwiseIdenticalAcrossBackends pins the per-source
// dependency kernel (the unit of the engine's restricted delta
// re-accumulation), with and without a virtual edge.
func TestBrandesDepBitwiseIdenticalAcrossBackends(t *testing.T) {
	for name, g := range zoo() {
		g := g
		t.Run(name, func(t *testing.T) {
			n := g.N()
			k := centrality.NewKernel()
			for backend, v := range backendsOf(t, g) {
				v := v
				t.Run(backend, func(t *testing.T) {
					kb := centrality.NewKernel()
					target := n / 2
					for s := 0; s < n; s++ {
						want := k.BrandesDep(g, s, target, -1, -1)
						got := kb.BrandesDep(v, s, target, -1, -1)
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Errorf("BrandesDep(s=%d, t=%d) = %v, want %v", s, target, got, want)
						}
					}
					// A virtual edge from the target to its farthest
					// non-neighbor.
					ev := -1
					dist := centrality.Distances(g, target)
					for u := 0; u < n; u++ {
						if u != target && !g.HasEdge(target, u) &&
							(ev == -1 || dist[u] > dist[ev]) {
							ev = u
						}
					}
					if ev < 0 {
						return
					}
					for s := 0; s < n; s += 3 {
						want := k.BrandesDep(g, s, target, target, ev)
						got := kb.BrandesDep(v, s, target, target, ev)
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Errorf("BrandesDep(s=%d, t=%d, +edge %d-%d) = %v, want %v",
								s, target, target, ev, got, want)
						}
					}
				})
			}
		})
	}
}

// diffMeasures is the engine measure set the engine-level differential
// runs over.
func diffMeasures() []engine.Measure {
	return []engine.Measure{
		engine.Closeness(),
		engine.Farness(),
		engine.Harmonic(),
		engine.Eccentricity(),
		engine.ReciprocalEccentricity(),
		engine.Betweenness(centrality.PairsOrdered),
		engine.Betweenness(centrality.PairsUnordered),
		engine.BetweennessSampled(centrality.PairsOrdered, 5, 17),
		engine.Coreness(),
		engine.Degree(),
		engine.Katz(),
	}
}

// TestEngineScoresBitwiseIdenticalAcrossBackends runs the full measure
// set through per-backend engines at every worker width. Each backend
// gets its own cache-disabled engine: the snapshot shares the source
// graph's version and content key by design, so a shared (or warm)
// engine would serve one backend's scores to the other and mask a
// divergence.
func TestEngineScoresBitwiseIdenticalAcrossBackends(t *testing.T) {
	for name, g := range zoo() {
		g := g
		t.Run(name, func(t *testing.T) {
			for _, w := range diffWorkers {
				ref := engine.New(w, engine.WithCacheSize(0))
				want := make([][]float64, 0, len(diffMeasures()))
				for _, m := range diffMeasures() {
					want = append(want, ref.Scores(g, m))
				}
				ref.Close()
				for backend, v := range backendsOf(t, g) {
					e := engine.New(w, engine.WithCacheSize(0))
					for i, m := range diffMeasures() {
						wantSameFloats(t, backend+"/"+m.Key(), e.Scores(v, m), want[i])
					}
					e.Close()
				}
			}
		})
	}
}

// TestEvaluateEdgeBatchBitwiseIdenticalAcrossBackends pins the delta
// scorer: candidate pricing on a snapshot or overlay must equal pricing
// on the map graph, measure by measure, at every worker width.
func TestEvaluateEdgeBatchBitwiseIdenticalAcrossBackends(t *testing.T) {
	measures := []engine.Measure{
		engine.Closeness(),
		engine.Farness(),
		engine.Harmonic(),
		engine.Eccentricity(),
		engine.ReciprocalEccentricity(),
		engine.Betweenness(centrality.PairsUnordered),
		engine.Coreness(),
	}
	for name, g := range zoo() {
		g := g
		t.Run(name, func(t *testing.T) {
			n := g.N()
			target := n / 3
			var cands []int
			for v := 0; v < n; v++ {
				if v != target && !g.HasEdge(target, v) {
					cands = append(cands, v)
				}
			}
			cands = append(cands, target) // no-op candidates must agree too
			if ns := g.Adjacency(target); len(ns) > 0 {
				cands = append(cands, int(ns[0]))
			}
			for _, w := range diffWorkers {
				ref := engine.New(w, engine.WithCacheSize(0))
				want := make([][]float64, 0, len(measures))
				for _, m := range measures {
					want = append(want, ref.EvaluateEdgeBatch(g, target, cands, m))
				}
				ref.Close()
				for backend, v := range backendsOf(t, g) {
					e := engine.New(w, engine.WithCacheSize(0))
					for i, m := range measures {
						wantSameFloats(t, backend+"/"+m.Key(),
							e.EvaluateEdgeBatch(v, target, cands, m), want[i])
					}
					e.Close()
				}
			}
		})
	}
}
