package csr_test

// FuzzCSRRoundTrip drives a random mutation script against two
// implementations at once — the mutable map graph and an Overlay over a
// frozen Snapshot of the same starting host — and requires them to stay
// indistinguishable: same mutation outcomes, node/edge counts, content
// digest, BFS distances, and a Materialize/Freeze round trip that
// reproduces the reference graph exactly. It is the property-based
// complement of the example-based differential suite.

import (
	"math/rand"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/gen"
	"promonet/internal/graph"
	"promonet/internal/graph/csr"
)

func FuzzCSRRoundTrip(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{0, 0, 0})
	f.Add(int64(3), []byte{1, 4, 9, 1, 9, 4, 3, 4, 9})
	f.Add(int64(4), []byte{0, 0, 0, 1, 0, 200, 2, 1, 2, 3, 1, 2, 1, 7, 3})
	f.Add(int64(5), []byte{3, 0, 1, 3, 0, 1, 1, 0, 1, 2, 250, 251})
	f.Add(int64(6), []byte{4, 0, 1, 4, 0, 1, 4, 5, 5, 1, 0, 1})
	f.Add(int64(7), []byte{5, 0, 9, 5, 3, 3, 4, 2, 7, 5, 250, 0})

	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		rng := rand.New(rand.NewSource(seed))
		want := gen.ErdosRenyi(rng, 8+int(seed&7), 14)
		ov := csr.NewOverlay(csr.Freeze(want))
		want = want.Clone()

		for i := 0; i+2 < len(ops); i += 3 {
			op, a, b := ops[i]%6, ops[i+1], ops[i+2]
			n := want.N()
			switch op {
			case 0: // AddNode
				gv, cv := want.AddNode(), ov.AddNode()
				if gv != cv {
					t.Fatalf("op %d: AddNode ids diverge: graph %d, overlay %d", i, gv, cv)
				}
			case 1, 2: // AddEdge (twice as likely as removal)
				u, v := int(a)%n, int(b)%n
				if u == v {
					continue
				}
				gv, cv := want.AddEdge(u, v), ov.AddEdge(u, v)
				if gv != cv {
					t.Fatalf("op %d: AddEdge(%d, %d) outcomes diverge: graph %v, overlay %v", i, u, v, gv, cv)
				}
			case 3: // RemoveEdge
				u, v := int(a)%n, int(b)%n
				gv, cv := want.RemoveEdge(u, v), ov.RemoveEdge(u, v)
				if gv != cv {
					t.Fatalf("op %d: RemoveEdge(%d, %d) outcomes diverge: graph %v, overlay %v", i, u, v, gv, cv)
				}
			case 4: // remove-then-re-add the same edge (tombstone reuse)
				u, v := int(a)%n, int(b)%n
				if u == v {
					continue
				}
				gr, cr := want.RemoveEdge(u, v), ov.RemoveEdge(u, v)
				ga, ca := want.AddEdge(u, v), ov.AddEdge(u, v)
				if gr != cr || ga != ca {
					t.Fatalf("op %d: remove-then-re-add(%d, %d) diverges: graph %v/%v, overlay %v/%v",
						i, u, v, gr, ga, cr, ca)
				}
			case 5: // append a node, then immediately touch its fresh row
				gv, cv := want.AddNode(), ov.AddNode()
				if gv != cv {
					t.Fatalf("op %d: AddNode ids diverge: graph %d, overlay %d", i, gv, cv)
				}
				u := int(a) % want.N()
				if u == gv {
					continue
				}
				ga, ca := want.AddEdge(gv, u), ov.AddEdge(gv, u)
				if ga != ca {
					t.Fatalf("op %d: AddEdge on fresh node %d diverges: graph %v, overlay %v", i, gv, ga, ca)
				}
			}
		}

		if ov.N() != want.N() || ov.M() != want.M() {
			t.Fatalf("counts diverge: overlay n=%d m=%d, graph n=%d m=%d", ov.N(), ov.M(), want.N(), want.M())
		}
		if graph.Digest(ov) != graph.Digest(want) {
			t.Fatalf("content digests diverge after identical mutations")
		}
		if !ov.Materialize().Equal(want) {
			t.Fatalf("Materialize of the overlay differs from the reference graph")
		}
		frozen := ov.Freeze()
		if frozen.Digest() != graph.Digest(want) {
			t.Fatalf("compacted snapshot digest diverges from the reference graph")
		}
		if frozen.Version() != ov.Version() {
			t.Fatalf("compacted snapshot dropped the overlay version: %d != %d", frozen.Version(), ov.Version())
		}

		// BFS distances through all three shapes — overlay (generic
		// interface path), compacted snapshot (direction-optimizing flat
		// path), reference graph — must agree node for node.
		step := want.N()/3 + 1
		for s := 0; s < want.N(); s += step {
			ref := centrality.Distances(want, s)
			for name, v := range map[string]graph.View{"overlay": ov, "frozen": frozen} {
				got := centrality.Distances(v, s)
				for u := range ref {
					if got[u] != ref[u] {
						t.Fatalf("%s: dist(%d, %d) = %d, want %d", name, s, u, got[u], ref[u])
					}
				}
			}
		}
	})
}
