// Package csr provides the compressed-sparse-row graph backend: an
// immutable Snapshot frozen from a mutable graph.Graph, plus a small
// mutable Overlay that layers a few hundred added nodes/edges over a
// frozen base without copying it.
//
// The split mirrors the paper's workload. Host networks are large and —
// under the black-box contract — read-only, so they freeze once into a
// Snapshot: two flat arrays (row pointers and columns) that every
// traversal scans with perfect locality and zero per-node pointer
// chasing. Promotion structures are tiny — [t, p, T] attachments of a
// few hundred edges around one target — so they live in an Overlay: a
// handful of merged rows over the untouched base. Greedy rounds and
// strategy previews mutate the overlay instead of cloning the host.
//
// Both types satisfy graph.View, so every kernel in internal/centrality
// and every engine path accepts them unchanged; Snapshot additionally
// satisfies graph.ArcsView, unlocking the flat-array fast paths
// (including the direction-optimizing BFS). The differential suite in
// this package holds all backends bitwise identical, kernel by kernel.
package csr

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"promonet/internal/graph"
	"promonet/internal/obs"
)

// Snapshot is an immutable CSR graph: node v's sorted neighbor row is
// cols[rowptr[v]:rowptr[v+1]]. Snapshots are safe for unrestricted
// concurrent use. Build one with Freeze (from a mutable graph) or
// (*Overlay).Freeze (compacting an overlay into a new base).
type Snapshot struct {
	rowptr []int64
	cols   []int32
	m      int
	// version carries the structure stamp of the graph the snapshot was
	// frozen from: the structures are identical, so sharing the version
	// (exactly like Clone) lets the engine's version-keyed digest memo
	// and content cache serve both representations from one entry.
	version uint64

	// digest memoizes the canonical SHA-256 (graph.Digest) — immutable
	// structure, so computing it once is sound.
	digestOnce sync.Once
	digest     string
}

// Freeze builds a CSR snapshot of g in O(n + m). The snapshot inherits
// g's version stamp — the structures are identical, the Clone semantics
// — so equal nonzero versions keep implying equal structure across
// backends, and engine caches warmed by either representation serve the
// other.
func Freeze(g *graph.Graph) *Snapshot {
	_, sp := obs.Start(context.Background(), "csr/freeze")
	sp.Int("n", g.N())
	sp.Int("m", g.M())
	defer sp.End()
	n := g.N()
	s := &Snapshot{
		rowptr:  make([]int64, n+1),
		cols:    make([]int32, 2*g.M()),
		m:       g.M(),
		version: g.Version(),
	}
	var at int64
	for v := 0; v < n; v++ {
		s.rowptr[v] = at
		at += int64(copy(s.cols[at:], g.Adjacency(v)))
	}
	s.rowptr[n] = at
	return s
}

// N returns the number of nodes.
func (s *Snapshot) N() int { return len(s.rowptr) - 1 }

// M returns the number of undirected edges.
func (s *Snapshot) M() int { return s.m }

// Degree returns the number of neighbors of v.
func (s *Snapshot) Degree(v int) int { return int(s.rowptr[v+1] - s.rowptr[v]) }

// Adjacency returns the sorted neighbor row of v. The slice aliases the
// snapshot's column array and must not be modified.
func (s *Snapshot) Adjacency(v int) []int32 { return s.cols[s.rowptr[v]:s.rowptr[v+1]] }

// HasEdge reports whether the edge (u, v) exists, by binary search in
// u's row. Self-loops never exist.
func (s *Snapshot) HasEdge(u, v int) bool {
	n := s.N()
	if u < 0 || u >= n || v < 0 || v >= n || u == v {
		return false
	}
	row := s.Adjacency(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	return i < len(row) && row[i] == int32(v)
}

// Version is the structure stamp inherited from the frozen source; see
// (*graph.Graph).Version for the contract.
func (s *Snapshot) Version() uint64 { return s.version }

// Arcs returns the flat row-pointer and column arrays (graph.ArcsView).
// Both are read-only.
func (s *Snapshot) Arcs() (rowptr []int64, cols []int32) { return s.rowptr, s.cols }

// Digest returns the canonical SHA-256 content digest (graph.Digest) of
// the snapshot, computed once and memoized — the immutability dividend
// the mutable backend cannot offer. It equals graph.Digest of any
// equal-structure view, tying snapshot identity to the same
// content/version scheme run manifests and the engine already use.
func (s *Snapshot) Digest() string {
	s.digestOnce.Do(func() { s.digest = graph.Digest(s) })
	return s.digest
}

// Materialize rebuilds a mutable graph.Graph with the snapshot's
// structure (and version, per the Clone semantics).
func (s *Snapshot) Materialize() *graph.Graph { return graph.Materialize(s) }

// String returns a short human-readable summary.
func (s *Snapshot) String() string {
	return fmt.Sprintf("csr.Snapshot(n=%d, m=%d)", s.N(), s.M())
}

// Compile-time checks: Snapshot is a View with the flat-array
// capability.
var (
	_ graph.View     = (*Snapshot)(nil)
	_ graph.ArcsView = (*Snapshot)(nil)
)
