package csr_test

import (
	"math/rand"
	"testing"

	"promonet/internal/gen"
	"promonet/internal/graph"
	"promonet/internal/graph/csr"
)

// host returns a small random host graph at a fixed seed.
func host() *graph.Graph {
	return gen.ErdosRenyi(rand.New(rand.NewSource(3)), 24, 48)
}

func TestFreezeMatchesSource(t *testing.T) {
	g := host()
	s := csr.Freeze(g)
	if s.N() != g.N() || s.M() != g.M() {
		t.Fatalf("Freeze: n=%d m=%d, want n=%d m=%d", s.N(), s.M(), g.N(), g.M())
	}
	if s.Version() != g.Version() {
		t.Errorf("Freeze must inherit the source version (Clone semantics): %d != %d", s.Version(), g.Version())
	}
	if s.Digest() != graph.Digest(g) {
		t.Errorf("snapshot digest differs from source digest")
	}
	for v := 0; v < g.N(); v++ {
		if s.Degree(v) != g.Degree(v) {
			t.Fatalf("Degree(%d) = %d, want %d", v, s.Degree(v), g.Degree(v))
		}
		row, want := s.Adjacency(v), g.Adjacency(v)
		if len(row) != len(want) {
			t.Fatalf("Adjacency(%d): len %d, want %d", v, len(row), len(want))
		}
		for i := range row {
			if row[i] != want[i] {
				t.Fatalf("Adjacency(%d)[%d] = %d, want %d", v, i, row[i], want[i])
			}
		}
	}
	for u := 0; u < g.N(); u++ {
		for v := -1; v <= g.N(); v++ {
			if s.HasEdge(u, v) != g.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d, %d) = %v, want %v", u, v, s.HasEdge(u, v), g.HasEdge(u, v))
			}
		}
	}
}

func TestSnapshotArcsShape(t *testing.T) {
	g := host()
	s := csr.Freeze(g)
	rowptr, cols := s.Arcs()
	if len(rowptr) != g.N()+1 {
		t.Fatalf("len(rowptr) = %d, want %d", len(rowptr), g.N()+1)
	}
	if rowptr[0] != 0 || rowptr[g.N()] != int64(2*g.M()) || len(cols) != 2*g.M() {
		t.Fatalf("arc array ends: rowptr[0]=%d rowptr[n]=%d len(cols)=%d, want 0, %d, %d",
			rowptr[0], rowptr[g.N()], len(cols), 2*g.M(), 2*g.M())
	}
	for v := 0; v < g.N(); v++ {
		row := cols[rowptr[v]:rowptr[v+1]]
		for i := 1; i < len(row); i++ {
			if row[i-1] >= row[i] {
				t.Fatalf("row %d not strictly sorted: %v", v, row)
			}
		}
	}
}

func TestOverlayMutationSemantics(t *testing.T) {
	g := host()
	s := csr.Freeze(g)
	ov := csr.NewOverlay(s)
	if ov.Version() != s.Version() {
		t.Fatalf("fresh overlay must share the base version")
	}

	// No-op mutations are version-neutral, like graph.Graph.
	v0 := ov.Version()
	var existing [2]int
	g.Edges(func(u, v int) bool { existing = [2]int{u, v}; return false })
	if ov.AddEdge(existing[0], existing[1]) {
		t.Fatalf("AddEdge of an existing base edge must report false")
	}
	var missing [2]int
found:
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if !g.HasEdge(u, v) {
				missing = [2]int{u, v}
				break found
			}
		}
	}
	if ov.RemoveEdge(missing[0], missing[1]) {
		t.Fatalf("RemoveEdge of a missing edge must report false")
	}
	if ov.AddNodes(0) != ov.N() {
		t.Fatalf("AddNodes(0) must return N()")
	}
	if ov.Version() != v0 {
		t.Fatalf("no-op mutations must not bump the version")
	}
	if ov.Touched() != 0 {
		t.Fatalf("no-op mutations must not copy rows, touched = %d", ov.Touched())
	}

	// Effective mutations bump to fresh versions and only copy the rows
	// they touch.
	if !ov.AddEdge(missing[0], missing[1]) {
		t.Fatalf("AddEdge(%d, %d) refused a missing edge", missing[0], missing[1])
	}
	if ov.Version() == v0 {
		t.Fatalf("effective AddEdge must bump the version")
	}
	if ov.Touched() != 2 {
		t.Fatalf("one edge must touch two rows, got %d", ov.Touched())
	}
	if !ov.HasEdge(missing[0], missing[1]) || !ov.HasEdge(missing[1], missing[0]) {
		t.Fatalf("added edge not visible in both directions")
	}
	if s.HasEdge(missing[0], missing[1]) {
		t.Fatalf("overlay mutation leaked into the frozen base")
	}
	if ov.M() != g.M()+1 {
		t.Fatalf("M = %d, want %d", ov.M(), g.M()+1)
	}

	// Base edges are removable; the base stays frozen.
	if !ov.RemoveEdge(existing[0], existing[1]) {
		t.Fatalf("RemoveEdge(%d, %d) refused a base edge", existing[0], existing[1])
	}
	if ov.HasEdge(existing[0], existing[1]) {
		t.Fatalf("removed base edge still visible through the overlay")
	}
	if !s.HasEdge(existing[0], existing[1]) {
		t.Fatalf("RemoveEdge mutated the frozen base")
	}

	// Nodes added past the base start isolated and accept edges.
	first := ov.AddNodes(3)
	if first != g.N() || ov.N() != g.N()+3 {
		t.Fatalf("AddNodes(3): first=%d n=%d, want %d, %d", first, ov.N(), g.N(), g.N()+3)
	}
	if ov.Degree(first) != 0 || ov.Adjacency(first) != nil {
		t.Fatalf("fresh overlay node must be isolated")
	}
	if !ov.AddEdge(first, 0) {
		t.Fatalf("AddEdge from a past-the-base node refused")
	}
	if !ov.HasEdge(0, first) {
		t.Fatalf("past-the-base edge not visible from the base-range endpoint")
	}
}

func TestOverlayPanicsMatchGraph(t *testing.T) {
	ov := csr.NewOverlay(csr.Freeze(gen.Path(4)))
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"add-self-loop", func() { ov.AddEdge(1, 1) }},
		{"add-out-of-range", func() { ov.AddEdge(0, 99) }},
		{"add-negative", func() { ov.AddEdge(-1, 0) }},
		{"add-nodes-negative", func() { ov.AddNodes(-1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s must panic, matching graph.Graph", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestOverlayFreezeCompacts(t *testing.T) {
	g := host()
	ov := csr.NewOverlay(csr.Freeze(g))
	ov.AddNodes(2)
	n := ov.N()
	ov.AddEdge(n-1, 0)
	ov.AddEdge(n-2, n-1)
	ov.RemoveEdge(n-1, 0)

	s2 := ov.Freeze()
	if s2.Version() != ov.Version() {
		t.Fatalf("compacted snapshot must carry the overlay version: %d != %d", s2.Version(), ov.Version())
	}
	if s2.Digest() != graph.Digest(ov) {
		t.Fatalf("compacted snapshot digest differs from the overlay digest")
	}
	if s2.N() != ov.N() || s2.M() != ov.M() {
		t.Fatalf("compacted snapshot: n=%d m=%d, want n=%d m=%d", s2.N(), s2.M(), ov.N(), ov.M())
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	g := host()
	s := csr.Freeze(g)
	if !s.Materialize().Equal(g) {
		t.Fatalf("Freeze+Materialize is not the identity")
	}
	if s.Materialize().Version() != g.Version() {
		t.Fatalf("Materialize must preserve the version (Clone semantics)")
	}

	ov := csr.NewOverlay(s)
	ov.AddEdge(0, g.N()-1)
	want := g.Clone()
	want.AddEdge(0, g.N()-1)
	if !ov.Materialize().Equal(want) {
		t.Fatalf("overlay Materialize differs from the same mutation on a clone")
	}
}

// TestOverlayRemoveThenReAdd pins the tombstone-reuse sequence the
// fuzzer explores stochastically: removing a base edge copies the row
// into the overlay; re-adding the identical edge must land in that
// already-touched row and restore the graph bit for bit.
func TestOverlayRemoveThenReAdd(t *testing.T) {
	g := host()
	ov := csr.NewOverlay(csr.Freeze(g))
	want := g.Clone()

	type mutator interface {
		AddEdge(u, v int) bool
		RemoveEdge(u, v int) bool
	}
	var u, v int
	g.Edges(func(a, b int) bool { u, v = a, b; return false })
	for _, step := range []struct {
		name string
		op   func(mutator) bool
		ok   bool
	}{
		{"remove", func(m mutator) bool { return m.RemoveEdge(u, v) }, true},
		{"re-add", func(m mutator) bool { return m.AddEdge(u, v) }, true},
		{"re-add again", func(m mutator) bool { return m.AddEdge(u, v) }, false},
	} {
		gv, cv := step.op(want), step.op(ov)
		if gv != cv || gv != step.ok {
			t.Fatalf("%s(%d, %d): graph %v, overlay %v, want %v", step.name, u, v, gv, cv, step.ok)
		}
	}
	if graph.Digest(ov) != graph.Digest(want) {
		t.Fatalf("digests diverge after remove-then-re-add")
	}
	if !ov.Materialize().Equal(want) {
		t.Fatalf("Materialize diverges after remove-then-re-add")
	}
	if ov.Freeze().Digest() != graph.Digest(want) {
		t.Fatalf("compacted snapshot diverges after remove-then-re-add")
	}
}

// TestOverlayAppendNodesThenTouchNewRow pins the appended-row sequence:
// nodes added past the frozen base have no backing row in the snapshot,
// so an immediate edge into the new row must build it from nothing on
// both endpoints and survive compaction.
func TestOverlayAppendNodesThenTouchNewRow(t *testing.T) {
	g := host()
	ov := csr.NewOverlay(csr.Freeze(g))
	want := g.Clone()

	gv, cv := want.AddNode(), ov.AddNode()
	if gv != cv {
		t.Fatalf("AddNode ids diverge: graph %d, overlay %d", gv, cv)
	}
	if wantN, ovN := want.AddNodes(2), ov.AddNodes(2); wantN != ovN {
		t.Fatalf("AddNodes counts diverge: graph %d, overlay %d", wantN, ovN)
	}
	// Edges touching every appended row: fresh-to-old, fresh-to-fresh.
	edges := [][2]int{{gv, 0}, {gv + 1, 1}, {gv + 2, gv}, {gv, gv + 1}}
	for _, e := range edges {
		ga, ca := want.AddEdge(e[0], e[1]), ov.AddEdge(e[0], e[1])
		if ga != ca || !ga {
			t.Fatalf("AddEdge(%d, %d): graph %v, overlay %v, want true", e[0], e[1], ga, ca)
		}
	}
	for _, e := range edges {
		if !ov.HasEdge(e[0], e[1]) || !ov.HasEdge(e[1], e[0]) {
			t.Fatalf("overlay lost appended edge (%d, %d)", e[0], e[1])
		}
	}
	if graph.Digest(ov) != graph.Digest(want) {
		t.Fatalf("digests diverge after append-then-touch")
	}
	if !ov.Materialize().Equal(want) {
		t.Fatalf("Materialize diverges after append-then-touch")
	}
	if ov.Freeze().Digest() != graph.Digest(want) {
		t.Fatalf("compacted snapshot diverges after append-then-touch")
	}
}
