package graph

import "testing"

// TestNoOpMutationsVersionNeutral pins the documented contract that the
// engine's content cache relies on: mutations that change nothing leave
// the version untouched. Before the AddNodes(0) fix, the no-op batch
// insert bumped the version and spuriously invalidated every
// version-keyed digest memo.
func TestNoOpMutationsVersionNeutral(t *testing.T) {
	g := NewWithNodes(3)
	g.AddEdge(0, 1)
	v := g.Version()

	if first := g.AddNodes(0); first != 3 {
		t.Errorf("AddNodes(0) = %d, want next id 3", first)
	}
	if g.Version() != v {
		t.Errorf("AddNodes(0) bumped version %d -> %d despite changing nothing", v, g.Version())
	}
	if g.AddEdge(0, 1) {
		t.Fatal("duplicate AddEdge reported an insert")
	}
	if g.Version() != v {
		t.Errorf("failed AddEdge bumped version %d -> %d", v, g.Version())
	}
	if g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge of a missing edge reported a removal")
	}
	if g.Version() != v {
		t.Errorf("failed RemoveEdge bumped version %d -> %d", v, g.Version())
	}

	// Real mutations still move the version.
	if first := g.AddNodes(2); first != 3 {
		t.Errorf("AddNodes(2) = %d, want 3", first)
	}
	if g.Version() == v {
		t.Error("AddNodes(2) did not bump the version")
	}
}

// TestAddNodesNegativePanics: a negative count is a caller bug, not a
// no-op.
func TestAddNodesNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddNodes(-1) did not panic")
		}
	}()
	NewWithNodes(1).AddNodes(-1)
}
