// Package graph provides a mutable, undirected, simple graph with
// contiguous integer node identifiers. It is the substrate shared by the
// centrality algorithms, the promotion strategies, and the experiment
// harness.
//
// Nodes are identified by ints in [0, N()). Adjacency lists are kept
// sorted, which makes HasEdge a binary search and makes traversal order
// deterministic — important for reproducible experiments.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Graph is an undirected simple graph. The zero value is an empty graph
// ready for use. Graph is not safe for concurrent mutation; concurrent
// reads are safe.
type Graph struct {
	adj     [][]int32
	m       int
	version uint64
}

// versionCounter issues globally unique version numbers, so that two
// graphs only ever share a version when one is an unmutated Clone of the
// other (in which case their structure is identical). Version 0 is
// reserved for zero-value graphs that have never been mutated.
var versionCounter atomic.Uint64

// nextVersion returns a fresh, globally unique, nonzero version.
func nextVersion() uint64 { return versionCounter.Add(1) }

// Version is a monotonically increasing structure-change counter. Every
// structural mutation (AddNode, AddNodes with k > 0, a successful
// AddEdge or RemoveEdge) assigns a fresh globally unique version, so
// caches keyed by it (internal/engine) can never serve scores for a
// stale structure. No-op calls (inserting an existing edge, removing a
// missing one, AddNodes(0)) leave the version untouched — the structure
// did not change. Clone preserves
// the version: equal versions imply equal structure. A zero-value Graph
// reports version 0 until its first mutation; constructors assign a real
// version up front.
func (g *Graph) Version() uint64 { return g.version }

// bumpVersion invalidates any version-keyed caches of g.
func (g *Graph) bumpVersion() { g.version = nextVersion() }

// New returns an empty graph with capacity hints for n nodes.
func New(n int) *Graph {
	return &Graph{adj: make([][]int32, 0, n), version: nextVersion()}
}

// NewWithNodes returns a graph with n isolated nodes, labeled 0..n-1.
func NewWithNodes(n int) *Graph {
	return &Graph{adj: make([][]int32, n), version: nextVersion()}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddNode appends a new isolated node and returns its identifier.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	g.bumpVersion()
	return len(g.adj) - 1
}

// AddNodes appends k isolated nodes and returns the identifier of the
// first one. The new nodes are first, first+1, ..., first+k-1. AddNodes
// panics if k is negative. AddNodes(0) changes nothing and leaves the
// version untouched, like every other no-op mutation.
func (g *Graph) AddNodes(k int) (first int) {
	if k < 0 {
		panic(fmt.Sprintf("graph: AddNodes(%d) with negative count", k))
	}
	first = len(g.adj)
	if k == 0 {
		return first
	}
	for i := 0; i < k; i++ {
		g.adj = append(g.adj, nil)
	}
	g.bumpVersion()
	return first
}

// valid reports whether v is an existing node.
func (g *Graph) valid(v int) bool { return v >= 0 && v < len(g.adj) }

// HasEdge reports whether the edge (u, v) exists. Self-loops never exist.
func (g *Graph) HasEdge(u, v int) bool {
	if !g.valid(u) || !g.valid(v) || u == v {
		return false
	}
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// AddEdge inserts the undirected edge (u, v). It returns true if the edge
// was inserted, and false if it already existed. AddEdge panics if u or v
// is not an existing node or if u == v (self-loops are not allowed in a
// simple graph).
func (g *Graph) AddEdge(u, v int) bool {
	if !g.valid(u) || !g.valid(v) {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) outside node range [0, %d)", u, v, len(g.adj)))
	}
	if u == v {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) would create a self-loop", u, v))
	}
	if g.HasEdge(u, v) {
		return false
	}
	g.insertArc(u, v)
	g.insertArc(v, u)
	g.m++
	g.bumpVersion()
	return true
}

// RemoveEdge deletes the undirected edge (u, v), reporting whether it
// existed.
func (g *Graph) RemoveEdge(u, v int) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	g.removeArc(u, v)
	g.removeArc(v, u)
	g.m--
	g.bumpVersion()
	return true
}

func (g *Graph) insertArc(u, v int) {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = int32(v)
	g.adj[u] = a
}

func (g *Graph) removeArc(u, v int) {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	copy(a[i:], a[i+1:])
	g.adj[u] = a[:len(a)-1]
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors calls fn for each neighbor of v in ascending order. It stops
// early if fn returns false.
func (g *Graph) Neighbors(v int, fn func(u int) bool) {
	for _, u := range g.adj[v] {
		if !fn(int(u)) {
			return
		}
	}
}

// NeighborSlice returns a copy of v's neighbor list in ascending order.
func (g *Graph) NeighborSlice(v int) []int {
	out := make([]int, len(g.adj[v]))
	for i, u := range g.adj[v] {
		out[i] = int(u)
	}
	return out
}

// Adjacency returns the raw sorted adjacency row of v. The returned slice
// must not be modified; it remains valid until the next mutation of g.
// It exists so that hot algorithm loops (BFS, Brandes) can iterate
// without a callback or a copy.
func (g *Graph) Adjacency(v int) []int32 { return g.adj[v] }

// Edges calls fn for every undirected edge (u, v) with u < v, in
// lexicographic order. It stops early if fn returns false.
func (g *Graph) Edges(fn func(u, v int) bool) {
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				if !fn(u, int(v)) {
					return
				}
			}
		}
	}
}

// EdgeList returns all undirected edges as [2]int pairs with u < v.
func (g *Graph) EdgeList() [][2]int {
	out := make([][2]int, 0, g.m)
	g.Edges(func(u, v int) bool {
		out = append(out, [2]int{u, v})
		return true
	})
	return out
}

// Clone returns a deep copy of g. The copy inherits g's version (the
// structures are identical); its version diverges on its first mutation.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int32, len(g.adj)), m: g.m, version: g.version}
	for v, a := range g.adj {
		c.adj[v] = append([]int32(nil), a...)
	}
	return c
}

// Equal reports whether g and h have identical node counts and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for v := range g.adj {
		a, b := g.adj[v], h.adj[v]
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// MaxDegree returns the largest degree in g (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// String returns a short human-readable summary, e.g. "graph(n=10, m=15)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.N(), g.M())
}
