package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT writes g in Graphviz DOT format for visualization. highlight
// maps node IDs to a fill color name (e.g. the promotion target in red
// and the inserted nodes in gray); nodes absent from the map render
// with default styling. A nil map is fine.
func WriteDOT(w io.Writer, g *Graph, name string, highlight map[int]string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "graph %q {\n", name)
	fmt.Fprintln(bw, "  node [shape=circle];")
	for v := 0; v < g.N(); v++ {
		if color, ok := highlight[v]; ok {
			fmt.Fprintf(bw, "  %d [style=filled, fillcolor=%q];\n", v, color)
		} else if g.Degree(v) == 0 {
			fmt.Fprintf(bw, "  %d;\n", v) // keep isolated nodes visible
		}
	}
	var werr error
	g.Edges(func(u, v int) bool {
		_, werr = fmt.Fprintf(bw, "  %d -- %d;\n", u, v)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
