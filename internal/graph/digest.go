package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Digest returns a hex SHA-256 digest of the graph's canonical form:
// the node count followed by every undirected edge (u, v) with u < v in
// lexicographic order. Two views have equal digests iff they have the
// same node count and edge set — independently of insertion order and
// of the backend (map graph, CSR snapshot, overlay) — so run manifests
// can cite the exact dataset a result was computed on and the
// round-trip suites in graph/csr can compare representations by digest.
func Digest(g View) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.N()))
	h.Write(buf[:])
	// Adjacency rows are sorted, so visiting (u, v) with u < v in
	// increasing u, and within one u in increasing v, is exactly
	// lexicographic order — no re-sorting needed.
	n := g.N()
	for u := 0; u < n; u++ {
		for _, v := range g.Adjacency(u) {
			if int32(u) < v {
				binary.LittleEndian.PutUint64(buf[:], uint64(u))
				h.Write(buf[:])
				binary.LittleEndian.PutUint64(buf[:], uint64(v))
				h.Write(buf[:])
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
