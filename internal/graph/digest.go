package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Digest returns a hex SHA-256 digest of the graph's canonical form:
// the node count followed by every undirected edge (u, v) with u < v in
// lexicographic order. Two graphs have equal digests iff they have the
// same node count and edge set, independently of insertion order, so
// run manifests can cite the exact dataset a result was computed on.
func Digest(g *Graph) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.N()))
	h.Write(buf[:])
	// Edges visits (u, v) with u < v in increasing u, and within one u in
	// increasing v (adjacency lists are kept sorted), which is exactly
	// lexicographic order — no re-sorting needed.
	g.Edges(func(u, v int) bool {
		binary.LittleEndian.PutUint64(buf[:], uint64(u))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
		return true
	})
	return hex.EncodeToString(h.Sum(nil))
}
