//go:build promodebug

package graph

// DebugChecks reports whether runtime invariant checking is compiled
// in. This build has it on (-tags promodebug).
const DebugChecks = true

// DebugAssert panics if g violates the structural invariants (see
// CheckInvariants). It is compiled to a no-op without -tags promodebug,
// so callers sprinkle it at mutation boundaries for free in production
// builds and get full dynamic checking in CI's promodebug test pass.
func DebugAssert(g *Graph) {
	if err := g.CheckInvariants(); err != nil {
		panic(err)
	}
}
