package graph

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"promonet/internal/obs"
)

// ReadEdgeList parses a SNAP-style edge list: one "u v" pair per line,
// whitespace separated (spaces, tabs, or commas), with '#' and '%'
// comment lines and blank lines ignored. Node labels may be arbitrary
// non-negative integers; they are compacted to contiguous IDs in order of
// first appearance. Self-loops and duplicate edges are dropped (the graph
// is simple and undirected). It returns the graph and the mapping from
// compact ID to original label.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) {
	g := New(0)
	id := make(map[int64]int)
	var labels []int64
	lookup := func(label int64) int {
		if v, ok := id[label]; ok {
			return v
		}
		v := g.AddNode()
		id[label] = v
		labels = append(labels, label)
		return v
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		line = strings.ReplaceAll(line, ",", " ")
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		a, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad node label %q: %v", lineNo, fields[0], err)
		}
		b, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad node label %q: %v", lineNo, fields[1], err)
		}
		u, v := lookup(a), lookup(b)
		if u != v {
			g.AddEdge(u, v) // duplicate edges return false and are ignored
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return g, labels, nil
}

// WriteEdgeList writes g as a SNAP-style edge list with a header comment.
// Each undirected edge appears once as "u<TAB>v" with u < v.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# undirected simple graph: n=%d m=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v int) bool {
		_, werr = fmt.Fprintf(bw, "%d\t%d\n", u, v)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// WriteEdgeListLabeled writes g as a SNAP-style edge list using the
// caller's original node labels: each undirected edge (u, v) with u < v
// appears once as "labels[u]<TAB>labels[v]". labels must have length
// g.N() (the mapping ReadEdgeList returns). This is the inverse that
// makes labeled graphs round-trip: WriteEdgeList emits compact IDs, so
// a SaveEdgeListFile→LoadEdgeListFile cycle silently rewrote the
// original SNAP labels — a labeled graph no longer round-tripped.
func WriteEdgeListLabeled(w io.Writer, g *Graph, labels []int64) error {
	if len(labels) != g.N() {
		return fmt.Errorf("graph: %d labels for %d nodes", len(labels), g.N())
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# undirected simple graph: n=%d m=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v int) bool {
		_, werr = fmt.Fprintf(bw, "%d\t%d\n", labels[u], labels[v])
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// SaveEdgeListLabeledFile writes g to the named file under the caller's
// original node labels (see WriteEdgeListLabeled), creating or
// truncating it.
func SaveEdgeListLabeledFile(path string, g *Graph, labels []int64) error {
	_, sp := obs.Start(context.Background(), "graph/save")
	sp.Str("path", path)
	sp.Int("n", g.N())
	sp.Int("m", g.M())
	defer sp.End()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeListLabeled(f, g, labels); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// LoadEdgeListFile reads an edge list from the named file.
func LoadEdgeListFile(path string) (*Graph, []int64, error) {
	_, sp := obs.Start(context.Background(), "graph/load")
	sp.Str("path", path)
	defer sp.End()
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	g, labels, err := ReadEdgeList(f)
	if err != nil {
		_ = f.Close() // the parse error is the one worth reporting
		return nil, nil, err
	}
	sp.Int("n", g.N())
	sp.Int("m", g.M())
	// A close error on a file we only read is rare but real (NFS,
	// FUSE): surfacing it keeps a short read from masquerading as a
	// clean load. The old deferred f.Close() silently discarded it.
	if err := f.Close(); err != nil {
		return nil, nil, err
	}
	return g, labels, nil
}

// SaveEdgeListFile writes g to the named file, creating or truncating it.
func SaveEdgeListFile(path string, g *Graph) error {
	_, sp := obs.Start(context.Background(), "graph/save")
	sp.Str("path", path)
	sp.Int("n", g.N())
	sp.Int("m", g.M())
	defer sp.End()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// FromEdges builds a graph with n nodes from a list of undirected edges.
// It panics on out-of-range endpoints or self-loops; duplicate edges are
// ignored.
func FromEdges(n int, edges [][2]int) *Graph {
	g := NewWithNodes(n)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}
