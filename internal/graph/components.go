package graph

import "sort"

// ConnectedComponents returns one slice of node IDs per connected
// component, each sorted ascending, ordered by their smallest member.
func (g *Graph) ConnectedComponents() [][]int {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]int
	queue := make([]int32, 0, 64)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					comp = append(comp, int(u))
					queue = append(queue, u)
				}
			}
		}
		comps = append(comps, comp)
	}
	for _, c := range comps {
		sort.Ints(c)
	}
	return comps
}

// IsConnected reports whether g is connected. The empty graph is
// considered connected.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	return len(g.ConnectedComponents()) == 1
}

// LargestComponent returns the induced subgraph of the largest connected
// component together with the mapping from new node IDs to original IDs.
// Ties are broken by smallest member. If g is empty, it returns an empty
// graph and a nil mapping.
func (g *Graph) LargestComponent() (sub *Graph, origID []int) {
	comps := g.ConnectedComponents()
	if len(comps) == 0 {
		return New(0), nil
	}
	best := comps[0]
	for _, c := range comps[1:] {
		if len(c) > len(best) {
			best = c
		}
	}
	return g.InducedSubgraph(best)
}

// InducedSubgraph returns the subgraph induced by the node set S together
// with the mapping origID from new IDs (0..len(S)-1) to the original IDs.
// Duplicate entries in S are ignored; node order in the result follows
// the first appearance in S.
func (g *Graph) InducedSubgraph(S []int) (sub *Graph, origID []int) {
	newID := make(map[int]int, len(S))
	origID = make([]int, 0, len(S))
	for _, v := range S {
		if _, dup := newID[v]; dup {
			continue
		}
		newID[v] = len(origID)
		origID = append(origID, v)
	}
	sub = NewWithNodes(len(origID))
	for nv, ov := range origID {
		for _, ou := range g.adj[ov] {
			if nu, ok := newID[int(ou)]; ok && nv < nu {
				sub.AddEdge(nv, nu)
			}
		}
	}
	return sub, origID
}
