package graph

import (
	"strings"
	"testing"
)

func validFixture() *Graph {
	g := NewWithNodes(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(0, 4)
	g.AddEdge(1, 3)
	return g
}

func TestCheckInvariantsClean(t *testing.T) {
	if err := validFixture().CheckInvariants(); err != nil {
		t.Fatalf("valid graph failed invariants: %v", err)
	}
	if err := (&Graph{}).CheckInvariants(); err != nil {
		t.Fatalf("empty graph failed invariants: %v", err)
	}
}

// The corrupt fixtures below reach into the representation directly —
// the whole point is to verify damage no public API can cause is still
// caught.

func TestCheckInvariantsUnsortedAdjacency(t *testing.T) {
	g := validFixture()
	row := g.adj[1]
	row[0], row[1] = row[1], row[0]
	err := g.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "strictly increasing") {
		t.Fatalf("unsorted adjacency not caught: %v", err)
	}
}

func TestCheckInvariantsDuplicateNeighbor(t *testing.T) {
	g := validFixture()
	g.adj[0] = []int32{1, 1}
	if err := g.CheckInvariants(); err == nil {
		t.Fatal("duplicate neighbor not caught")
	}
}

func TestCheckInvariantsAsymmetricEdge(t *testing.T) {
	g := validFixture()
	// Remove 0 from 1's row only: 0 still lists 1.
	g.removeArc(1, 0)
	err := g.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "asymmetric") {
		t.Fatalf("asymmetric edge not caught: %v", err)
	}
}

func TestCheckInvariantsSelfLoop(t *testing.T) {
	g := validFixture()
	g.adj[2] = []int32{1, 2, 3}
	err := g.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "self-loop") {
		t.Fatalf("self-loop not caught: %v", err)
	}
}

func TestCheckInvariantsEdgeCountDrift(t *testing.T) {
	g := validFixture()
	g.m++ // claim one more edge than the adjacency holds
	err := g.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "degree sum") {
		t.Fatalf("edge-count drift not caught: %v", err)
	}
}

func TestCheckInvariantsNeighborOutOfRange(t *testing.T) {
	g := validFixture()
	g.adj[4] = append(g.adj[4], 99)
	err := g.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("out-of-range neighbor not caught: %v", err)
	}
}

// TestDebugAssertMatchesBuildTag pins the build-tag contract: without
// promodebug DebugAssert must be a no-op even on a corrupt graph; with
// -tags promodebug (DebugChecks true) it must panic. The same test
// covers both, so plain CI and the promodebug CI pass each verify
// their build's behavior.
func TestDebugAssertMatchesBuildTag(t *testing.T) {
	g := validFixture()
	g.adj[0] = []int32{0} // self-loop corruption
	if DebugChecks {
		defer func() {
			if recover() == nil {
				t.Fatal("DebugAssert did not panic on a corrupt graph under -tags promodebug")
			}
		}()
		DebugAssert(g)
		t.Fatal("unreachable: DebugAssert should have panicked")
	} else {
		DebugAssert(g) // must not panic: checking is compiled out
	}
}
