package graph

import "fmt"

// CheckInvariants verifies the structural invariants every algorithm in
// this module assumes and returns the first violation found, or nil:
//
//   - adjacency rows are strictly increasing (sorted, no duplicates),
//     which HasEdge's binary search and deterministic traversal depend on;
//   - neighbor IDs are in [0, N());
//   - no self-loops (the graph is simple);
//   - edges are symmetric (v ∈ adj[u] ⇔ u ∈ adj[v]);
//   - the handshake identity Σ degree = 2·M() holds.
//
// It is the dynamic complement to promolint's static mutation-safety
// analyzer: the analyzer proves read-only code paths never call the
// mutators, CheckInvariants proves the sanctioned mutation points leave
// the graph well-formed. It costs O(n + m·log d) and is asserted at
// strategy-application boundaries when built with -tags promodebug (see
// DebugAssert).
func (g *Graph) CheckInvariants() error {
	n := len(g.adj)
	degSum := 0
	// First pass: per-row structure. Sortedness must be established
	// before the symmetry pass, because symmetry is verified with
	// HasEdge's binary search, which is meaningless on unsorted rows.
	for v, row := range g.adj {
		degSum += len(row)
		for i, u := range row {
			if int(u) < 0 || int(u) >= n {
				return fmt.Errorf("graph: invariant violation: node %d lists neighbor %d outside [0, %d)", v, u, n)
			}
			if int(u) == v {
				return fmt.Errorf("graph: invariant violation: self-loop at node %d", v)
			}
			if i > 0 && row[i-1] >= u {
				return fmt.Errorf("graph: invariant violation: adjacency of node %d not strictly increasing at index %d (%d >= %d)", v, i, row[i-1], u)
			}
		}
	}
	// Second pass: every arc has its reverse.
	for v, row := range g.adj {
		for _, u := range row {
			if !g.HasEdge(int(u), v) {
				return fmt.Errorf("graph: invariant violation: asymmetric edge: %d lists %d but not vice versa", v, u)
			}
		}
	}
	if degSum != 2*g.m {
		return fmt.Errorf("graph: invariant violation: degree sum %d != 2·m = %d", degSum, 2*g.m)
	}
	return nil
}
