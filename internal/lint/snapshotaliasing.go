package lint

import (
	"go/ast"
	"go/types"

	"promonet/internal/lint/flow"
)

// snapshotAliasing is the CSR backend's own discipline, stricter than
// view-immutability because internal/graph/csr is the one package that
// may build the arrays everyone else treats as frozen. Two rules:
//
//  1. Mutate-through: once a Snapshot exists, its rowptr/cols arrays —
//     reached as direct field reads, through Adjacency/Arcs, or through
//     any package-local helper (Overlay.row reading through to the
//     base) — are immutable. Writes are allowed only through a snapshot
//     that is provably under construction in the current function
//     (assigned from a &Snapshot{...} literal), which is exactly the
//     Freeze shape. This catches an Overlay whose copy-on-touch path is
//     broken into aliasing the live base.
//
//  2. Freshness: the rowptr/cols fields of a Snapshot literal must be
//     freshly allocated in the constructing function (make, a
//     copying append, or a local holding one) — never a parameter or a
//     view-derived slice. Freeze and Materialize results must not alias
//     caller-held mutable slices, or a later caller write would rewrite
//     "immutable" history under every version-keyed cache.
//
// Re-freezing a live overlay's base cannot be expressed at all —
// Freeze takes a *graph.Graph and Snapshot has no mutating methods —
// so that clause of the contract is carried by the type system and
// only the two aliasing rules need an analyzer.
var snapshotAliasing = &Analyzer{
	Name:     "snapshot-aliasing",
	Doc:      "flag csr code that mutates a live Snapshot's arrays or builds snapshots aliasing caller-held slices",
	Severity: SevError,
	Run:      runSnapshotAliasing,
}

func runSnapshotAliasing(p *Pass) {
	if !p.relScope("internal/graph/csr") {
		return
	}
	info := p.Pkg.Info
	isSource := func(call *ast.CallExpr) bool { return isSnapshotRowCall(info, call) }
	sums := flow.Summarize(info, p.Pkg.Files, isSource)
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fresh := freshSnapshots(info, fd.Body)
			rf := &roFlow{
				pass:         p,
				info:         info,
				sums:         sums,
				isSourceCall: isSource,
				isSourceExpr: func(e ast.Expr) bool { return isFrozenArrayRead(info, e, fresh) },
				what:         "frozen Snapshot array",
				advice:       "the snapshot is live — copy the row into overlay-owned storage (append([]int32(nil), row...)) before editing",
			}
			rf.checkFunc(fd)
			checkSnapshotLiterals(p, info, fd.Body)
		}
	}
}

// isSnapshotRowCall reports whether call reads a frozen row or the flat
// arrays out of a Snapshot: the Adjacency or Arcs method on a receiver
// whose (pointer-stripped) named type is csr's Snapshot.
func isSnapshotRowCall(info *types.Info, call *ast.CallExpr) bool {
	callee := flow.Callee(info, call)
	if callee == nil || (callee.Name() != "Adjacency" && callee.Name() != "Arcs") {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isSnapshotType(sig.Recv().Type())
}

// isFrozenArrayRead reports whether e reads the rowptr or cols field of
// a Snapshot that is not under construction in this function.
func isFrozenArrayRead(info *types.Info, e ast.Expr, fresh map[types.Object]bool) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "rowptr" && sel.Sel.Name != "cols") {
		return false
	}
	t := typeOfExpr(info, sel.X)
	if t == nil || !isSnapshotType(t) {
		return false
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil && fresh[obj] {
			return false
		}
	}
	return true
}

// isSnapshotType reports whether t (possibly behind a pointer) is the
// named type Snapshot of a package whose path ends in
// internal/graph/csr.
func isSnapshotType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Snapshot" && pkgPathEndsIn(named.Obj().Pkg().Path(), "internal/graph/csr")
}

// freshSnapshots collects the locals of body bound to a Snapshot
// composite literal — snapshots under construction, whose arrays the
// constructing function may legitimately fill in.
func freshSnapshots(info *types.Info, body ast.Node) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if snapshotLiteral(info, rhs) == nil {
				continue
			}
			if id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
				if obj := info.Defs[id]; obj != nil {
					fresh[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

// snapshotLiteral unwraps e to a Snapshot composite literal (&Snapshot
// {...} or Snapshot{...}), or nil.
func snapshotLiteral(info *types.Info, e ast.Expr) *ast.CompositeLit {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	if t := typeOfExpr(info, lit); t != nil && isSnapshotType(t) {
		return lit
	}
	return nil
}

// checkSnapshotLiterals enforces the freshness rule on every Snapshot
// literal in body: rowptr/cols initializers must be freshly allocated.
func checkSnapshotLiterals(p *Pass, info *types.Info, body ast.Node) {
	// freshAllocs: locals assigned from a make or a copying append —
	// values this function owns outright.
	freshAllocs := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, rhs := range assign.Rhs {
				if !isFreshAlloc(info, rhs, freshAllocs) {
					continue
				}
				if id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil && !freshAllocs[obj] {
						freshAllocs[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if t := typeOfExpr(info, lit); t == nil || !isSnapshotType(t) {
			return true
		}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || (key.Name != "rowptr" && key.Name != "cols") {
				continue
			}
			if !isFreshAlloc(info, kv.Value, freshAllocs) {
				p.Reportf(kv.Value.Pos(),
					"Snapshot.%s is initialized from %s, which this function does not freshly allocate — a frozen snapshot must never alias a caller-held mutable slice (allocate with make and copy into it)",
					key.Name, exprString(kv.Value))
			}
		}
		return true
	})
}

// isFreshAlloc reports whether e is a slice value this function owns: a
// make call, an append with a nil-literal or untyped-nil first argument
// (the repo's copy idiom), a nil literal, or a local known to hold one.
func isFreshAlloc(info *types.Info, e ast.Expr, freshAllocs map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		return obj != nil && freshAllocs[obj]
	case *ast.CallExpr:
		name, ok := builtinCallName(info, e)
		if !ok {
			// A conversion like []int32(nil) is fresh exactly when its
			// operand is (converting an existing slice aliases it).
			if tv, isConv := info.Types[e.Fun]; isConv && tv.IsType() && len(e.Args) == 1 {
				return isFreshAlloc(info, e.Args[0], freshAllocs)
			}
			return false
		}
		switch name {
		case "make":
			return true
		case "append":
			// append(fresh, ...) reallocates or extends owned storage.
			return len(e.Args) > 0 && isFreshAlloc(info, e.Args[0], freshAllocs)
		}
	case *ast.CompositeLit:
		// A slice literal is a fresh allocation.
		return true
	}
	return false
}

// typeOfExpr is info.Types lookup tolerating partial information.
func typeOfExpr(info *types.Info, e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
