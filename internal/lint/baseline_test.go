package lint

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func TestLoadBaselineMissingFile(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing baseline must load as empty, got error: %v", err)
	}
	if len(b.Findings) != 0 {
		t.Fatalf("missing baseline must be empty, got %d entries", len(b.Findings))
	}
}

func TestLoadBaselineMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("malformed baseline must be a load error")
	}
}

func TestBaselineApply(t *testing.T) {
	root := t.TempDir()
	diag := func(rel, analyzer, msg string) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: filepath.Join(root, filepath.FromSlash(rel)), Line: 3, Column: 1},
			Analyzer: analyzer,
			Severity: SevError,
			Message:  msg,
		}
	}
	diags := []Diagnostic{
		diag("internal/a/a.go", "pool-hygiene", "leaked"),
		diag("internal/a/a.go", "pool-hygiene", "leaked"), // same key twice: one entry covers both
		diag("internal/b/b.go", "lock-order", "held"),
	}
	b := &Baseline{Findings: []BaselineEntry{
		{File: "internal/a/a.go", Analyzer: "pool-hygiene", Message: "leaked"},
		{File: "internal/gone.go", Analyzer: "determinism", Message: "fixed long ago"},
	}}
	kept, stale := b.Apply(root, diags)
	if len(kept) != 1 || kept[0].Analyzer != "lock-order" {
		t.Fatalf("Apply kept %d findings (%v), want only the lock-order one", len(kept), kept)
	}
	if len(stale) != 1 || stale[0].File != "internal/gone.go" {
		t.Fatalf("Apply stale = %v, want the internal/gone.go entry", stale)
	}
}

func TestReportShape(t *testing.T) {
	root := t.TempDir()
	r := NewReport(root, []*Analyzer{poolHygiene}, nil, nil)
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatal(err)
	}
	if string(m["findings"]) != "[]" {
		t.Errorf("empty report must serialize findings as [], got %s", m["findings"])
	}
	if _, hasStale := m["stale"]; hasStale {
		t.Errorf("stale must be omitted when empty, got %s", out)
	}

	d := Diagnostic{
		Pos:      token.Position{Filename: filepath.Join(root, "internal", "x.go"), Line: 7, Column: 2},
		Analyzer: "pool-hygiene",
		Severity: SevWarn,
		Message:  "m",
	}
	r = NewReport(root, []*Analyzer{poolHygiene}, []Diagnostic{d}, []BaselineEntry{{File: "f", Analyzer: "a", Message: "m"}})
	if len(r.Findings) != 1 {
		t.Fatalf("want 1 finding, got %d", len(r.Findings))
	}
	f := r.Findings[0]
	if f.File != "internal/x.go" || f.Line != 7 || f.Col != 2 || f.Severity != "warn" {
		t.Errorf("finding not normalized: %+v", f)
	}
	if len(r.Stale) != 1 {
		t.Errorf("stale entries dropped from report")
	}
}
