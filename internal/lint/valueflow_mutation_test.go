package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Mutation acceptance tests for the value-flow analyzers: each copies
// real guarded files out of the tree (rewriting the module path so the
// fixture typechecks standalone), asserts the pristine copy is clean,
// then applies a targeted mutation — the exact regression each analyzer
// exists to catch — and asserts a finding appears.

// realFile reads one file of the real tree and rewrites its imports
// onto the fixture module.
func realFile(t *testing.T, rel string) string {
	t.Helper()
	root, err := moduleRootFromWD()
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(rel)))
	if err != nil {
		t.Fatal(err)
	}
	return strings.ReplaceAll(string(src), "promonet/", "fixturemod/")
}

// realObsFiles is the standalone-typecheckable core of the real obs
// package (the debug server, trace export, and manifest files pull in
// net/http / encoding/json and are irrelevant to the span/metrics
// invariants under test). flight.go and the runtime-telemetry files
// ride along because obs.go and recorder.go reference their types.
func realObsFiles(t *testing.T) map[string]string {
	t.Helper()
	return map[string]string{
		"go.mod":                         "module fixturemod\n\ngo 1.22\n",
		"internal/obs/obs.go":            realFile(t, "internal/obs/obs.go"),
		"internal/obs/metrics.go":        realFile(t, "internal/obs/metrics.go"),
		"internal/obs/recorder.go":       realFile(t, "internal/obs/recorder.go"),
		"internal/obs/flight.go":         realFile(t, "internal/obs/flight.go"),
		"internal/obs/runtimemetrics.go": realFile(t, "internal/obs/runtimemetrics.go"),
		"internal/obs/cpu_unix.go":       realFile(t, "internal/obs/cpu_unix.go"),
		"internal/obs/cpu_other.go":      realFile(t, "internal/obs/cpu_other.go"),
	}
}

// realGraphFiles adds the real graph package (non-test files) to files.
func realGraphFiles(t *testing.T, files map[string]string) map[string]string {
	t.Helper()
	for _, name := range []string{
		"components.go", "debug_off.go", "debug_on.go", "digest.go",
		"dot.go", "graph.go", "invariants.go", "io.go", "view.go",
	} {
		files["internal/graph/"+name] = realFile(t, "internal/graph/"+name)
	}
	return files
}

func runOnly(t *testing.T, files map[string]string, analyzer string) []Diagnostic {
	t.Helper()
	root := writeFixture(t, files)
	diags, err := Run(root, []string{"./..."}, Config{Enable: []string{analyzer}})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	return diags
}

func mustClean(t *testing.T, diags []Diagnostic, what string) {
	t.Helper()
	if len(diags) != 0 {
		t.Fatalf("pristine %s copy is not clean:\n%s", what, renderDiags(diags))
	}
}

// TestSpanHygieneCatchesEndDeletion: deleting any single sp.End() —
// explicit or deferred — from the real graph I/O span discipline must
// produce a span-hygiene finding.
func TestSpanHygieneCatchesEndDeletion(t *testing.T) {
	files := realGraphFiles(t, realObsFiles(t))
	mustClean(t, runOnly(t, files, "span-hygiene"), "graph+obs")

	io := files["internal/graph/io.go"]
	re := regexp.MustCompile(`(?m)^\s*(?:defer )?sp\.End\(\)\n`)
	ends := re.FindAllStringIndex(io, -1)
	if len(ends) < 3 {
		t.Fatalf("want >= 3 sp.End() sites in the real io.go, got %d — the fixture premise broke", len(ends))
	}
	if raceEnabled {
		ends = ends[:1]
	}
	for i, loc := range ends {
		mutated := io[:loc[0]] + io[loc[1]:]
		files["internal/graph/io.go"] = mutated
		diags := runOnly(t, files, "span-hygiene")
		found := false
		for _, d := range diags {
			if d.Analyzer == "span-hygiene" && strings.HasSuffix(d.Pos.Filename, "io.go") {
				found = true
			}
		}
		if !found {
			t.Errorf("deleting sp.End() site %d of %d produced no span-hygiene finding", i+1, len(ends))
		}
	}
}

// TestHotpathAllocCatchesInjectedAlloc: injecting an allocation into
// the real BFS hot loop must produce an error-severity hotpath-alloc
// finding (the surrounding scratch-reuse appends stay allowed).
func TestHotpathAllocCatchesInjectedAlloc(t *testing.T) {
	files := realGraphFiles(t, realObsFiles(t))
	files["internal/centrality/bfs.go"] = realFile(t, "internal/centrality/bfs.go")
	files["internal/centrality/bfs_csr.go"] = realFile(t, "internal/centrality/bfs_csr.go")
	mustClean(t, runOnly(t, files, "hotpath-alloc"), "centrality+graph+obs")

	bfs := files["internal/centrality/bfs.go"]
	marker := "for len(q) > 0 {"
	if strings.Count(bfs, marker) != 1 {
		t.Fatalf("want exactly 1 %q in the real bfs.go, got %d — the fixture premise broke",
			marker, strings.Count(bfs, marker))
	}
	files["internal/centrality/bfs.go"] = strings.Replace(bfs, marker,
		marker+"\n\t\tspill := make([]int32, 1)\n\t\t_ = spill", 1)
	diags := runOnly(t, files, "hotpath-alloc")
	found := false
	for _, d := range diags {
		if d.Analyzer == "hotpath-alloc" && strings.Contains(d.Message, "make") {
			if d.Severity != SevError {
				t.Errorf("hot-loop allocation in centrality must be %s severity, got %s", SevError, d.Severity)
			}
			found = true
		}
	}
	if !found {
		t.Errorf("injected make() in the BFS hot loop produced no hotpath-alloc finding:\n%s", renderDiags(diags))
	}
}

// TestAtomicConsistencyCatchesPlainRead: rewriting the real obs Counter
// from the typed atomic to the raw sync/atomic form stays clean, and
// downgrading one Load to a plain read is then a finding — the exact
// torn-read regression the analyzer guards against.
func TestAtomicConsistencyCatchesPlainRead(t *testing.T) {
	files := realObsFiles(t)
	metrics := files["internal/obs/metrics.go"]
	for _, r := range []struct{ old, new string }{
		{"type Counter struct{ v atomic.Uint64 }", "type Counter struct{ v uint64 }"},
		{"func (c *Counter) Add(n uint64) { c.v.Add(n) }", "func (c *Counter) Add(n uint64) { atomic.AddUint64(&c.v, n) }"},
		{"func (c *Counter) Inc() { c.v.Add(1) }", "func (c *Counter) Inc() { atomic.AddUint64(&c.v, 1) }"},
		{"func (c *Counter) Set(n uint64) { c.v.Store(n) }", "func (c *Counter) Set(n uint64) { atomic.StoreUint64(&c.v, n) }"},
		{"func (c *Counter) Value() uint64 { return c.v.Load() }", "func (c *Counter) Value() uint64 { return atomic.LoadUint64(&c.v) }"},
	} {
		if strings.Count(metrics, r.old) != 1 {
			t.Fatalf("want exactly 1 %q in the real metrics.go — the fixture premise broke", r.old)
		}
		metrics = strings.Replace(metrics, r.old, r.new, 1)
	}
	files["internal/obs/metrics.go"] = metrics
	mustClean(t, runOnly(t, files, "atomic-consistency"), "raw-atomic obs")

	files["internal/obs/metrics.go"] = strings.Replace(metrics,
		"func (c *Counter) Value() uint64 { return atomic.LoadUint64(&c.v) }",
		"func (c *Counter) Value() uint64 { return c.v }", 1)
	diags := runOnly(t, files, "atomic-consistency")
	found := false
	for _, d := range diags {
		if d.Analyzer == "atomic-consistency" && strings.Contains(d.Message, "field v") {
			found = true
		}
	}
	if !found {
		t.Errorf("plain read of the atomic counter field produced no atomic-consistency finding:\n%s", renderDiags(diags))
	}
}

// TestNilReceiverCatchesGuardDeletion: deleting any single nil guard
// from the real Span's nil-safe methods must produce a nil-receiver
// contract finding.
func TestNilReceiverCatchesGuardDeletion(t *testing.T) {
	files := realObsFiles(t)
	mustClean(t, runOnly(t, files, "nil-receiver"), "obs")

	obs := files["internal/obs/obs.go"]
	re := regexp.MustCompile(`(?m)^\tif s == nil \{\n\t\treturn\n\t\}\n`)
	guards := re.FindAllStringIndex(obs, -1)
	if len(guards) < 5 {
		t.Fatalf("want >= 5 nil guards in the real obs.go, got %d — the fixture premise broke", len(guards))
	}
	if raceEnabled {
		guards = guards[:1]
	}
	for i, loc := range guards {
		files["internal/obs/obs.go"] = obs[:loc[0]] + obs[loc[1]:]
		diags := runOnly(t, files, "nil-receiver")
		found := false
		for _, d := range diags {
			if d.Analyzer == "nil-receiver" && strings.Contains(d.Message, "must begin with") {
				found = true
			}
		}
		if !found {
			t.Errorf("deleting nil guard %d of %d produced no nil-receiver finding", i+1, len(guards))
		}
	}
}
