package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"promonet/internal/lint/flow"
)

// hotpathAlloc enforces the allocation-free discipline of marked hot
// paths. A //promolint:hotpath marker in a function's doc comment makes
// the whole body hot; on (or directly above) a statement it makes that
// statement's subtree hot — typically the inner loop of a kernel.
// Inside hot code the analyzer flags every potential heap allocation
// the flow layer can see (composite literals, make/new, growing append,
// closures, interface boxing) plus calls to in-package functions that
// may themselves allocate, via the call-graph MayAlloc summary.
//
// Amortized allocations — append into a scratch buffer that reaches a
// steady-state capacity — are legitimate and annotated in place with
// //promolint:allow hotpath-alloc and a justification. Allocations
// hidden behind cross-package calls are invisible here by design; the
// runtime gate (BenchmarkSpanDisabled, 0 allocs/op, cross-checked by
// scripts/check.sh) covers that blind spot for the obs fast path.
//
// Findings are errors inside the performance-critical packages
// (internal/centrality, internal/engine, internal/graph/csr,
// internal/obs) and warnings elsewhere.
var hotpathAlloc = &Analyzer{
	Name:     "hotpath-alloc",
	Doc:      "flag heap allocations inside //promolint:hotpath-marked hot code",
	Severity: SevWarn,
	Run:      runHotpathAlloc,
}

const hotpathMarker = "promolint:hotpath"

// parseHotpath reports whether a comment is a hotpath marker.
func parseHotpath(text string) bool {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, hotpathMarker) {
		return false
	}
	rest := strings.TrimPrefix(text, hotpathMarker)
	return rest == "" || rest[0] == ' ' || rest[0] == '\t' // not "promolint:hotpathx"
}

// hotpathScopes are the packages whose hot-path findings are errors.
var hotpathScopes = []string{"internal/centrality", "internal/engine", "internal/graph/csr", "internal/obs"}

func runHotpathAlloc(p *Pass) {
	info := p.Pkg.Info
	cg := flow.NewCallGraph(info, p.Pkg.Files)
	mayAlloc := flow.MayAlloc(info, cg)
	sev := SevWarn
	if p.relScope(hotpathScopes...) {
		sev = SevError
	}

	for _, file := range p.Pkg.Files {
		// Lines carrying a hotpath marker: a marker covers its own line
		// and the next, so both end-of-line and preceding-line placements
		// work (mirroring allow annotations).
		markerLines := make(map[int]bool)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if parseHotpath(c.Text) {
					markerLines[p.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var hot []ast.Node
			if fd.Doc != nil && hasHotpathMarker(fd.Doc) {
				hot = append(hot, fd.Body)
			} else if len(markerLines) > 0 {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					stmt, ok := n.(ast.Stmt)
					if !ok {
						return true
					}
					line := p.Fset.Position(stmt.Pos()).Line
					if markerLines[line] || markerLines[line-1] {
						hot = append(hot, stmt)
						return false // outer-most marked statement wins
					}
					return true
				})
			}
			reported := make(map[token.Pos]bool)
			for _, node := range hot {
				checkHotNode(p, sev, node, cg, mayAlloc, reported)
			}
		}
	}
}

func hasHotpathMarker(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if parseHotpath(c.Text) {
			return true
		}
	}
	return false
}

// checkHotNode reports the allocation sites and may-allocate in-package
// calls inside one hot node.
func checkHotNode(p *Pass, sev Severity, node ast.Node, cg *flow.CallGraph,
	mayAlloc map[*types.Func]bool, reported map[token.Pos]bool) {
	info := p.Pkg.Info
	report := func(pos token.Pos, format string, args ...interface{}) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		p.ReportSevf(sev, pos, format, args...)
	}
	for _, site := range flow.AllocSites(info, node) {
		report(site.Pos, "heap allocation in hot path: %s", site.Kind)
	}
	flow.WalkNodes(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := flow.Callee(info, call)
		if callee == nil || !mayAlloc[callee] {
			return true
		}
		if _, hasDecl := cg.Decls[callee]; hasDecl {
			report(call.Pos(), "hot path calls %s, which may allocate", callee.Name())
		}
		return true
	})
}
