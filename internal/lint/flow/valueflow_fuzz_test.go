package flow

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failImporter refuses every import; the fuzz typechecker runs in
// permissive mode and tolerates the resulting errors, leaving partial
// type information — exactly what the value-flow layer must survive.
type failImporter struct{}

func (failImporter) Import(path string) (*types.Package, error) {
	return nil, fmt.Errorf("fuzz: imports disabled (%s)", path)
}

// repoGoFiles walks up from the working directory to the module root
// and returns the contents of every .go file in the repo — the seed
// corpus.
func repoGoFiles(t testing.TB) []string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
	var out []string
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if len(data) < 256<<10 {
			out = append(out, string(data))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no seed files found")
	}
	return out
}

// FuzzCFGValueFlow drives arbitrary (possibly ill-typed) Go source
// through the full value-flow stack — CFG construction, reaching
// definitions, def-use inversion, allocation classification, escape
// classification — asserting that nothing panics, the fixpoint
// terminates, and the solution is internally consistent: every
// reaching def of a use is a def of that use's object.
func FuzzCFGValueFlow(f *testing.F) {
	for _, src := range repoGoFiles(f) {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip("unparseable input")
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: failImporter{},
			Error:    func(error) {}, // permissive: keep partial info
		}
		conf.Check("fuzz", fset, []*ast.File{file}, info) //nolint:errcheck

		cg := NewCallGraph(info, []*ast.File{file})
		MayAlloc(info, cg)

		check := func(params []*ast.Ident, body *ast.BlockStmt) {
			cfg := New(body, info)
			if len(cfg.Blocks) < 2 || cfg.Blocks[1] != cfg.Exit {
				t.Fatalf("CFG shape broken: %d blocks", len(cfg.Blocks))
			}
			rd := NewReachingDefs(cfg, info, params, body)
			du := NewDefUse(rd)
			for _, use := range rd.TrackedUses() {
				obj := info.Uses[use]
				for _, d := range rd.At(use) {
					if d.Obj != obj {
						t.Fatalf("use %q at %v reached by def of %q",
							use.Name, fset.Position(use.Pos()), d.Obj.Name())
					}
				}
			}
			for _, d := range rd.Defs {
				_ = du.Uses(d)
			}
			AllocSites(info, body)
			Escapes(info, body)
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			check(ParamIdents(fd.Recv, fd.Type), fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
					check(ParamIdents(nil, lit.Type), lit.Body)
				}
				return true
			})
		}
	})
}
