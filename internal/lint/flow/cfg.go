// Package flow is the control-flow and dataflow substrate for
// promolint's semantic analyzers. PR 2 made correctness depend on
// invariants a purely syntactic pass cannot see — "every mutation path
// bumps the version counter", "every pooled kernel is returned exactly
// once", "locks are released on every path and acquired in one order" —
// so this package provides, from nothing but go/ast and go/types:
//
//   - a per-function control-flow graph of basic blocks (New),
//   - a forward bitset dataflow solver over that CFG (CFG.Solve), and
//   - a package-local static call graph with a may-property fixpoint
//     (NewCallGraph, CallGraph.Propagate) so analyzers can summarize
//     unexported helpers interprocedurally.
//
// The CFG is deliberately statement-granular: a Block holds whole
// statements (plus loop/if condition expressions) in execution order,
// and transfer functions walk the statements themselves. Function
// literals are opaque at this level — each literal is a separate
// function with its own CFG — and deferred calls are collected on the
// side (CFG.Defers) so exit-time analyses can apply them at every
// return edge.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Block is one basic block: a maximal sequence of nodes with a single
// entry, executed in order, followed by a transfer to one of Succs.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0).
	Index int
	// Nodes are the statements and control expressions of the block in
	// execution order. Condition expressions of if/for/switch appear as
	// bare ast.Expr entries.
	Nodes []ast.Node
	// Succs are the possible successor blocks. A terminating block
	// (return, panic, os.Exit) has the CFG's exit block or nothing.
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block; Blocks[0] is the entry.
	Blocks []*Block
	// Exit is the synthetic exit block: every return statement and the
	// implicit fall-off-the-end transfer edges to it. It holds no nodes.
	Exit *Block
	// Defers are the deferred calls of the function in syntactic order.
	// Dataflow analyses that care about defer semantics apply them on
	// the edges into Exit (defers run at every return).
	Defers []*ast.DeferStmt
	// End is the closing-brace position of the body, used to report
	// findings on the implicit return at the end of a function.
	End token.Pos
}

// New builds the CFG of a function body. info may be nil; when given it
// is used to recognize terminating calls (panic, os.Exit, log.Fatal*)
// so that paths through them do not count as returns.
func New(body *ast.BlockStmt, info *types.Info) *CFG {
	c := &CFG{End: body.End()}
	b := &builder{cfg: c, info: info, labels: make(map[string]*labelTarget)}
	c.Exit = c.newBlock()
	entry := c.newBlock()
	// Keep the entry first for readers: swap indices so Blocks[0] is
	// the entry and the exit sits at position 1.
	c.Blocks[0], c.Blocks[1] = c.Blocks[1], c.Blocks[0]
	c.Blocks[0].Index, c.Blocks[1].Index = 0, 1
	last := b.stmtList(entry, body.List)
	if last != nil {
		last.link(c.Exit)
	}
	b.patchGotos()
	return c
}

func (c *CFG) newBlock() *Block {
	blk := &Block{Index: len(c.Blocks)}
	c.Blocks = append(c.Blocks, blk)
	return blk
}

func (b *Block) add(n ast.Node) { b.Nodes = append(b.Nodes, n) }

func (b *Block) link(succ *Block) {
	for _, s := range b.Succs {
		if s == succ {
			return
		}
	}
	b.Succs = append(b.Succs, succ)
}

// labelTarget resolves labeled break/continue/goto.
type labelTarget struct {
	breakTo    *Block // join block of the labeled loop/switch
	continueTo *Block // head block of the labeled loop
	gotoTo     *Block // start block of the labeled statement
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	cfg  *CFG
	info *types.Info
	// breakTo/continueTo are the innermost unlabeled targets.
	breakTo    *Block
	continueTo *Block
	labels     map[string]*labelTarget
	gotos      []pendingGoto
	// curLabel is the label attached to the next loop/switch statement.
	curLabel string
}

// stmtList threads the statements through cur, returning the live
// continuation block (nil when the path terminated).
func (b *builder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after return/branch: give it a detached
			// block so its nodes still exist, but nothing links to it.
			cur = b.cfg.newBlock()
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt adds s to cur, splitting blocks at control flow, and returns the
// continuation block (nil if the path terminates).
func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.add(s.Init)
		}
		cur.add(s.Cond)
		join := b.cfg.newBlock()
		then := b.cfg.newBlock()
		cur.link(then)
		if t := b.stmtList(then, s.Body.List); t != nil {
			t.link(join)
		}
		if s.Else != nil {
			els := b.cfg.newBlock()
			cur.link(els)
			if t := b.stmt(els, s.Else); t != nil {
				t.link(join)
			}
		} else {
			cur.link(join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.add(s.Init)
		}
		head := b.cfg.newBlock()
		cur.link(head)
		if s.Cond != nil {
			head.add(s.Cond)
		}
		join := b.cfg.newBlock()
		body := b.cfg.newBlock()
		head.link(body)
		if s.Cond != nil {
			head.link(join)
		}
		post := head
		if s.Post != nil {
			post = b.cfg.newBlock()
			post.add(s.Post)
			post.link(head)
		}
		b.enterLoop(join, post, func() {
			if t := b.stmtList(body, s.Body.List); t != nil {
				t.link(post)
			}
		})
		return join

	case *ast.RangeStmt:
		cur.add(s.X) // the ranged expression is evaluated once
		head := b.cfg.newBlock()
		cur.link(head)
		join := b.cfg.newBlock()
		body := b.cfg.newBlock()
		head.link(body)
		head.link(join)
		b.enterLoop(join, head, func() {
			if t := b.stmtList(body, s.Body.List); t != nil {
				t.link(head)
			}
		})
		return join

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.switchLike(cur, s)

	case *ast.LabeledStmt:
		lt := b.labels[s.Label.Name]
		if lt == nil {
			lt = &labelTarget{}
			b.labels[s.Label.Name] = lt
		}
		start := b.cfg.newBlock()
		cur.link(start)
		lt.gotoTo = start
		b.curLabel = s.Label.Name
		out := b.stmt(start, s.Stmt)
		b.curLabel = ""
		return out

	case *ast.ReturnStmt:
		cur.add(s)
		cur.link(b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		cur.add(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if lt := b.labels[s.Label.Name]; lt != nil && lt.breakTo != nil {
					cur.link(lt.breakTo)
				}
			} else if b.breakTo != nil {
				cur.link(b.breakTo)
			}
		case token.CONTINUE:
			if s.Label != nil {
				if lt := b.labels[s.Label.Name]; lt != nil && lt.continueTo != nil {
					cur.link(lt.continueTo)
				}
			} else if b.continueTo != nil {
				cur.link(b.continueTo)
			}
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: cur, label: s.Label.Name})
		case token.FALLTHROUGH:
			// switchLike links fallthrough edges; nothing to do here.
			return cur
		}
		return nil

	case *ast.DeferStmt:
		cur.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
		return cur

	case *ast.GoStmt:
		cur.add(s)
		return cur

	case *ast.ExprStmt:
		cur.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.terminates(call) {
			return nil
		}
		return cur

	default:
		// Assignments, declarations, sends, inc/dec, empty statements.
		cur.add(s)
		return cur
	}
}

// switchLike builds switch, type-switch, and select statements: each
// clause body runs after the head and meets at a join; a missing
// default adds a head→join edge; fallthrough chains case bodies.
func (b *builder) switchLike(cur *Block, s ast.Stmt) *Block {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.add(s.Init)
		}
		if s.Tag != nil {
			cur.add(s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.add(s.Init)
		}
		cur.add(s.Assign)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}

	join := b.cfg.newBlock()
	bodies := make([]*Block, len(clauses))
	var bodyLists [][]ast.Stmt
	for i, cl := range clauses {
		blk := b.cfg.newBlock()
		bodies[i] = blk
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				cur.add(e)
			}
			bodyLists = append(bodyLists, cl.Body)
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				blk.add(cl.Comm)
			}
			bodyLists = append(bodyLists, cl.Body)
		}
		cur.link(blk)
	}
	if !hasDefault {
		cur.link(join)
	}
	b.enterSwitch(join, func() {
		for i, body := range bodies {
			t := b.stmtList(body, bodyLists[i])
			if t == nil {
				continue
			}
			if fallsThrough(bodyLists[i]) && i+1 < len(bodies) {
				t.link(bodies[i+1])
			} else {
				t.link(join)
			}
		}
	})
	return join
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// enterLoop runs fn with the loop's break/continue targets installed,
// registering them for the pending label (if the loop is labeled).
func (b *builder) enterLoop(breakTo, continueTo *Block, fn func()) {
	if b.curLabel != "" {
		lt := b.labels[b.curLabel]
		lt.breakTo, lt.continueTo = breakTo, continueTo
		b.curLabel = ""
	}
	prevB, prevC := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = breakTo, continueTo
	fn()
	b.breakTo, b.continueTo = prevB, prevC
}

// enterSwitch runs fn with only the break target installed.
func (b *builder) enterSwitch(breakTo *Block, fn func()) {
	if b.curLabel != "" {
		b.labels[b.curLabel].breakTo = breakTo
		b.curLabel = ""
	}
	prev := b.breakTo
	b.breakTo = breakTo
	fn()
	b.breakTo = prev
}

func (b *builder) patchGotos() {
	for _, g := range b.gotos {
		if lt := b.labels[g.label]; lt != nil && lt.gotoTo != nil {
			g.from.link(lt.gotoTo)
		}
	}
}

// terminates reports whether the call never returns: the panic builtin,
// os.Exit, and the log.Fatal family. Paths through these do not reach
// the function's exit, so must-call analyses ignore them.
func (b *builder) terminates(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if b.info == nil {
			return true
		}
		_, isBuiltin := b.info.Uses[fun].(*types.Builtin)
		return isBuiltin
	case *ast.SelectorExpr:
		pkg, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok || b.info == nil {
			return false
		}
		pkgName, ok := b.info.Uses[pkg].(*types.PkgName)
		if !ok {
			return false
		}
		switch pkgName.Imported().Path() {
		case "os":
			return fun.Sel.Name == "Exit"
		case "log":
			n := fun.Sel.Name
			return n == "Fatal" || n == "Fatalf" || n == "Fatalln" || n == "Panic" || n == "Panicf" || n == "Panicln"
		}
	}
	return false
}

// --- Dataflow solver ---

// Solve runs a forward dataflow analysis over the CFG to a fixed point
// and returns each block's entry state. States are small bit sets whose
// join is bitwise OR (a may-analysis; encode must-properties in their
// negation). trans maps a block's entry state to its exit state and
// must be monotone in the OR lattice.
func (c *CFG) Solve(entry uint64, trans func(b *Block, in uint64) uint64) map[*Block]uint64 {
	in := make(map[*Block]uint64, len(c.Blocks))
	seen := make(map[*Block]bool, len(c.Blocks))
	in[c.Blocks[0]] = entry
	seen[c.Blocks[0]] = true
	for changed := true; changed; {
		changed = false
		for _, blk := range c.Blocks {
			if !seen[blk] {
				continue
			}
			out := trans(blk, in[blk])
			for _, succ := range blk.Succs {
				next := in[succ] | out
				if !seen[succ] || next != in[succ] {
					in[succ] = next
					seen[succ] = true
					changed = true
				}
			}
		}
	}
	return in
}

// WalkNodes calls fn on n and every sub-node in source order, without
// descending into function literals — closures are separate functions
// with their own CFGs, so their bodies must not leak effects into the
// enclosing function's transfer.
func WalkNodes(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		return fn(m)
	})
}
