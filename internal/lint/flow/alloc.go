package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the conservative intraprocedural escape/allocation
// classifier of the value-flow layer. It answers two questions for the
// analyzers built on top:
//
//   - AllocSites: which expressions in this subtree may allocate on the
//     heap? (composite literals of reference types or with their address
//     taken, make/new, growing append, closure literals, and interface
//     boxing of non-pointer-shaped values)
//   - Escapes: which local variables may outlive this function? (they
//     are returned, stored, sent, captured by a closure, or passed to
//     another function)
//
// Both are syntactic over-approximations tempered by type information:
// they never claim "does not allocate"/"does not escape" for something
// that might, except for the documented exemptions (see AllocBox).

// AllocKind classifies one potential heap allocation site.
type AllocKind int

const (
	// AllocComposite is a composite literal that allocates: a slice or
	// map literal, or any literal whose address is taken.
	AllocComposite AllocKind = iota
	// AllocMake is a make() of a slice, map, or channel.
	AllocMake
	// AllocNew is a new(T).
	AllocNew
	// AllocAppend is an append() call, which may grow its backing array.
	// Amortized append-into-reused-scratch is the canonical justified
	// //promolint:allow for this kind.
	AllocAppend
	// AllocClosure is a function literal, which allocates its closure
	// (and forces captured variables to the heap).
	AllocClosure
	// AllocBox is a conversion of a concrete value to an interface type
	// that requires heap-boxing. Pointer-shaped values (pointers,
	// channels, maps, funcs, unsafe.Pointer) and zero-size values (empty
	// structs, zero-length arrays) are exempt: their interface
	// representation reuses the word or a static zero object.
	AllocBox
)

// String names the kind for diagnostics.
func (k AllocKind) String() string {
	switch k {
	case AllocComposite:
		return "composite literal"
	case AllocMake:
		return "make"
	case AllocNew:
		return "new"
	case AllocAppend:
		return "growing append"
	case AllocClosure:
		return "closure literal"
	case AllocBox:
		return "interface boxing"
	}
	return "allocation"
}

// AllocSite is one potential heap allocation.
type AllocSite struct {
	// Node is the allocating expression.
	Node ast.Node
	// Kind classifies the allocation.
	Kind AllocKind
	// Pos locates the site for reporting.
	Pos token.Pos
}

// AllocSites returns the potential heap allocation sites in n, in
// source order. Function literals count as one site each (the closure)
// without descending into their bodies — a nested literal's own
// allocations belong to its own analysis unit. info may have partial
// type information; expressions it cannot type are classified
// conservatively by syntax alone.
//
// Known blind spots, accepted for precision: allocations hidden behind
// calls into other packages, string concatenation/conversion, boxing at
// return statements and channel sends, and map/slice growth through
// assignment. The hotpath-alloc analyzer pairs this static census with
// the runtime BenchmarkSpanDisabled gate for exactly that reason.
func AllocSites(info *types.Info, n ast.Node) []AllocSite {
	var out []AllocSite
	addrTaken := make(map[ast.Expr]bool)
	add := func(node ast.Node, kind AllocKind) {
		out = append(out, AllocSite{Node: node, Kind: kind, Pos: node.Pos()})
	}
	// ast.Inspect directly rather than WalkNodes: the literal itself must
	// be visited (it is a site) even though its body is not descended.
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			add(m, AllocClosure)
			return false
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				if inner, ok := ast.Unparen(m.X).(*ast.CompositeLit); ok {
					addrTaken[inner] = true
					add(m, AllocComposite)
				}
			}
		case *ast.CompositeLit:
			if addrTaken[m] {
				return true
			}
			if t := typeOf(info, m); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					add(m, AllocComposite)
				}
			}
		case *ast.CallExpr:
			if name, ok := builtinName(info, m); ok {
				switch name {
				case "make":
					add(m, AllocMake)
				case "new":
					add(m, AllocNew)
				case "append":
					add(m, AllocAppend)
				}
				return true
			}
			boxSites(info, m, add)
		case *ast.AssignStmt:
			// var-typed targets box concrete RHS values: `x = v` where x
			// is interface-typed.
			if len(m.Lhs) == len(m.Rhs) {
				for i, rhs := range m.Rhs {
					if boxes(info, rhs, typeOf(info, m.Lhs[i])) {
						add(rhs, AllocBox)
					}
				}
			}
		case *ast.ValueSpec:
			if m.Type != nil && len(m.Values) > 0 {
				target := typeOf(info, m.Type)
				for _, v := range m.Values {
					if boxes(info, v, target) {
						add(v, AllocBox)
					}
				}
			}
		}
		return true
	})
	return out
}

// boxSites reports the interface-boxing sites of one call: arguments
// passed to interface-typed parameters (including variadic ...T with
// interface T) and explicit conversions to interface types.
func boxSites(info *types.Info, call *ast.CallExpr, add func(ast.Node, AllocKind)) {
	// Explicit conversion: T(x) where T is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxes(info, call.Args[0], tv.Type) {
			add(call.Args[0], AllocBox)
		}
		return
	}
	sig, _ := typeOf(info, call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var target types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // f(xs...) passes the slice through unboxed
			}
			if slice, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				target = slice.Elem()
			}
		case i < params.Len():
			target = params.At(i).Type()
		}
		if boxes(info, arg, target) {
			add(arg, AllocBox)
		}
	}
}

// boxes reports whether assigning e to a target of the given type heap-
// allocates an interface box. Nil targets, non-interface targets,
// interface-typed sources, nil literals, pointer-shaped values, and
// zero-size values do not box.
func boxes(info *types.Info, e ast.Expr, target types.Type) bool {
	if target == nil || !types.IsInterface(target) {
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	t := tv.Type
	if types.IsInterface(t) {
		return false
	}
	if pointerShaped(t) || zeroSize(t) {
		return false
	}
	return true
}

// pointerShaped reports whether values of t fit in one pointer word and
// are stored directly in an interface, without boxing.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// zeroSize reports whether t is statically zero-sized (empty struct or
// zero-length array, recursively) — such values convert to interfaces
// via a shared static object, not a heap box.
func zeroSize(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !zeroSize(u.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return u.Len() == 0 || zeroSize(u.Elem())
	}
	return false
}

// MayAlloc computes, over the package call graph, which declared
// functions may allocate: those whose own body holds an AllocSite, plus
// everything that (transitively) calls one — the interprocedural
// summary the hotpath-alloc analyzer consults for in-package calls.
func MayAlloc(info *types.Info, cg *CallGraph) map[*types.Func]bool {
	return cg.Propagate(func(f *types.Func, fd *ast.FuncDecl) bool {
		return len(AllocSites(info, fd.Body)) > 0
	})
}

// EscapeMask records how a variable may leave its function.
type EscapeMask uint8

const (
	// EscReturned: appears in a return statement.
	EscReturned EscapeMask = 1 << iota
	// EscStored: assigned somewhere, has its address taken, or placed in
	// a composite literal.
	EscStored
	// EscSent: sent on a channel.
	EscSent
	// EscCaptured: referenced from inside a nested function literal.
	EscCaptured
	// EscArg: passed as a call argument (the callee may retain it).
	EscArg
)

// Escapes conservatively classifies how each local variable referenced
// in body may escape. Only bare identifier occurrences count (x, not
// x.f — a field read copies a value and is a plain use). Method-call
// receivers are uses, not escapes. The result is keyed by the
// variable's object; variables absent from the map do not escape by any
// tracked route.
func Escapes(info *types.Info, body *ast.BlockStmt) map[types.Object]EscapeMask {
	out := make(map[types.Object]EscapeMask)
	mark := func(id *ast.Ident, m EscapeMask) {
		obj := info.Uses[id]
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); !ok || v.IsField() {
			return
		}
		out[obj] |= m
	}
	bare := func(e ast.Expr) *ast.Ident {
		id, _ := ast.Unparen(e).(*ast.Ident)
		return id
	}
	var walk func(n ast.Node, inLit *ast.FuncLit)
	walk = func(n ast.Node, inLit *ast.FuncLit) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m != n {
					// Everything referenced inside the literal that was
					// declared outside it is captured.
					walk(m.Body, m)
					return false
				}
			case *ast.ReturnStmt:
				for _, res := range m.Results {
					if id := bare(res); id != nil {
						mark(id, EscReturned)
					}
				}
			case *ast.SendStmt:
				if id := bare(m.Value); id != nil {
					mark(id, EscSent)
				}
			case *ast.AssignStmt:
				for _, rhs := range m.Rhs {
					if id := bare(rhs); id != nil {
						mark(id, EscStored)
					}
				}
			case *ast.UnaryExpr:
				if m.Op == token.AND {
					if id := bare(m.X); id != nil {
						mark(id, EscStored)
					}
				}
			case *ast.CompositeLit:
				for _, el := range m.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					if id := bare(el); id != nil {
						mark(id, EscStored)
					}
				}
			case *ast.CallExpr:
				for _, arg := range m.Args {
					if id := bare(arg); id != nil {
						mark(id, EscArg)
					}
				}
			case *ast.Ident:
				if inLit != nil {
					if obj := info.Uses[m]; obj != nil && obj.Pos().IsValid() &&
						(obj.Pos() < inLit.Pos() || obj.Pos() > inLit.End()) {
						mark(m, EscCaptured)
					}
				}
			}
			return true
		})
	}
	walk(body, nil)
	return out
}

// typeOf is info.Types lookup tolerating partial information.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// builtinName resolves a call to a language builtin, if it is one.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}
