package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file grows the CFG layer into an SSA-lite value-flow layer:
// reaching definitions over the statement-granular CFG, solved with
// multi-word bit sets (one bit per definition site instead of the
// uint64 states of CFG.Solve). The lattice is the powerset of
// definition sites ordered by inclusion, joined by union — a classic
// may-analysis, so a use "sees" every definition that reaches it along
// at least one path.

// BitSet is a fixed-capacity bit set sized at construction. It is the
// dataflow state of the reaching-definitions solver: bit i set means
// definition i may reach this program point.
type BitSet struct{ words []uint64 }

// NewBitSet returns an empty bit set with capacity for n bits.
func NewBitSet(n int) *BitSet { return &BitSet{words: make([]uint64, (n+63)/64)} }

// Set marks bit i.
func (s *BitSet) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear unmarks bit i.
func (s *BitSet) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether bit i is set.
func (s *BitSet) Has(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Clone returns an independent copy of s.
func (s *BitSet) Clone() *BitSet {
	return &BitSet{words: append([]uint64(nil), s.words...)}
}

// Union ors other into s and reports whether s changed — the join
// operation of the solver, monotone by construction.
func (s *BitSet) Union(other *BitSet) bool {
	changed := false
	for i, w := range other.words {
		next := s.words[i] | w
		if next != s.words[i] {
			s.words[i] = next
			changed = true
		}
	}
	return changed
}

// Def is one definition site of a local variable: a parameter or named
// result (Entry definitions, live on function entry), an assignment, a
// short variable declaration, a var declaration, an ++/--, or a range
// clause binding.
type Def struct {
	// ID is the definition's bit index in the solver's bit sets.
	ID int
	// Obj is the variable being defined.
	Obj types.Object
	// Node is the defining statement (nil for Entry definitions).
	Node ast.Node
	// Pos locates the definition for reporting.
	Pos token.Pos
	// Entry marks parameter/receiver/named-result definitions that hold
	// on function entry.
	Entry bool
}

// ReachingDefs holds the solved reaching-definitions relation of one
// function body.
type ReachingDefs struct {
	// Defs lists every definition site, indexed by Def.ID.
	Defs []*Def

	byObj map[types.Object][]int // defs of each tracked variable
	uses  map[*ast.Ident]*BitSet // defs reaching each use occurrence
}

// ParamIdents collects the identifiers that are definitions on function
// entry: the receiver, the parameters, and any named results.
func ParamIdents(recv *ast.FieldList, typ *ast.FuncType) []*ast.Ident {
	var out []*ast.Ident
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if name.Name != "_" {
					out = append(out, name)
				}
			}
		}
	}
	add(recv)
	if typ != nil {
		add(typ.Params)
		add(typ.Results)
	}
	return out
}

// NewReachingDefs builds and solves reaching definitions for one
// function body over its CFG. params are the entry definitions (see
// ParamIdents); body is the same block the CFG was built from and is
// only consulted to locate range-clause bindings, which the CFG keeps
// out of block nodes. The function tolerates partial type information
// (identifiers without Defs/Uses entries are simply not tracked), so it
// is safe on permissively type-checked code.
func NewReachingDefs(cfg *CFG, info *types.Info, params []*ast.Ident, body *ast.BlockStmt) *ReachingDefs {
	r := &ReachingDefs{
		byObj: make(map[types.Object][]int),
		uses:  make(map[*ast.Ident]*BitSet),
	}

	// Pass 1: enumerate definition sites in deterministic order. Entry
	// definitions first, then per-block statement definitions, then the
	// range-clause bindings attached to the block holding the range
	// operand.
	addDef := func(obj types.Object, node ast.Node, pos token.Pos, entry bool) *Def {
		d := &Def{ID: len(r.Defs), Obj: obj, Node: node, Pos: pos, Entry: entry}
		r.Defs = append(r.Defs, d)
		r.byObj[obj] = append(r.byObj[obj], d.ID)
		return d
	}
	for _, id := range params {
		if obj := info.Defs[id]; obj != nil {
			addDef(obj, nil, id.Pos(), true)
		}
	}

	// tracked reports whether obj is a local variable of this function —
	// the only objects whose plain (`=`) assignments count as
	// definitions. Anything first seen through info.Defs inside the body
	// or the params is local.
	local := make(map[types.Object]bool)
	for _, d := range r.Defs {
		local[d.Obj] = true
	}
	collectLocals := func(n ast.Node) {
		WalkNodes(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					if _, isVar := obj.(*types.Var); isVar {
						local[obj] = true
					}
				}
			}
			return true
		})
	}
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			collectLocals(n)
		}
	}
	// Range Key/Value bindings live on the RangeStmt, whose only block
	// node is the range operand expression — collect them too.
	WalkNodes(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if rs.Key != nil {
				collectLocals(rs.Key)
			}
			if rs.Value != nil {
				collectLocals(rs.Value)
			}
		}
		return true
	})

	// defObj resolves a defining identifier occurrence to its tracked
	// object: a := / var / range-define binds through info.Defs, a plain
	// `=` writes through info.Uses and only counts for locals.
	defObj := func(id *ast.Ident) types.Object {
		if id == nil || id.Name == "_" {
			return nil
		}
		if obj := info.Defs[id]; obj != nil && local[obj] {
			return obj
		}
		if obj := info.Uses[id]; obj != nil && local[obj] {
			return obj
		}
		return nil
	}

	// defsIn yields the definitions a single CFG node makes, in
	// execution order, without descending into nested function literals.
	defsIn := func(node ast.Node, yield func(obj types.Object, at ast.Node, pos token.Pos)) {
		WalkNodes(node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if obj := defObj(id); obj != nil {
							yield(obj, n, id.Pos())
						}
					}
				}
			case *ast.IncDecStmt:
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj := defObj(id); obj != nil {
						yield(obj, n, id.Pos())
					}
				}
			case *ast.DeclStmt:
				gd, ok := n.Decl.(*ast.GenDecl)
				if !ok {
					return true
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if obj := defObj(name); obj != nil {
							yield(obj, n, name.Pos())
						}
					}
				}
			}
			return true
		})
	}

	// Definition sites per block node, plus range bindings mapped to the
	// block holding the range operand.
	nodeDefs := make(map[ast.Node][]*Def)
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			defsIn(n, func(obj types.Object, at ast.Node, pos token.Pos) {
				nodeDefs[n] = append(nodeDefs[n], addDef(obj, at, pos, false))
			})
		}
	}
	nodeHasRange := make(map[ast.Node]*ast.RangeStmt)
	WalkNodes(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			nodeHasRange[rs.X] = rs
		}
		return true
	})
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			rs, ok := nodeHasRange[n]
			if !ok {
				continue
			}
			for _, e := range []ast.Expr{rs.Key, rs.Value} {
				if e == nil {
					continue
				}
				if id, ok := ast.Unparen(e).(*ast.Ident); ok {
					if obj := defObj(id); obj != nil {
						nodeDefs[n] = append(nodeDefs[n], addDef(obj, rs, id.Pos(), false))
					}
				}
			}
		}
	}

	nbits := len(r.Defs)
	if nbits == 0 {
		return r
	}

	// gen applies the definitions of one node to state: each kills every
	// other definition of the same object, then asserts itself.
	gen := func(state *BitSet, defs []*Def) {
		for _, d := range defs {
			for _, other := range r.byObj[d.Obj] {
				state.Clear(other)
			}
			state.Set(d.ID)
		}
	}

	entry := NewBitSet(nbits)
	for _, d := range r.Defs {
		if d.Entry {
			entry.Set(d.ID)
		}
	}

	// Worklist fixpoint, mirroring CFG.Solve but over BitSet states. The
	// lattice is finite (2^nbits) and the transfer monotone, so the loop
	// terminates.
	in := make(map[*Block]*BitSet, len(cfg.Blocks))
	seen := make(map[*Block]bool, len(cfg.Blocks))
	in[cfg.Blocks[0]] = entry
	seen[cfg.Blocks[0]] = true
	trans := func(b *Block, st *BitSet) *BitSet {
		out := st.Clone()
		for _, n := range b.Nodes {
			gen(out, nodeDefs[n])
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range cfg.Blocks {
			if !seen[blk] {
				continue
			}
			out := trans(blk, in[blk])
			for _, succ := range blk.Succs {
				if in[succ] == nil {
					in[succ] = NewBitSet(nbits)
				}
				if in[succ].Union(out) || !seen[succ] {
					seen[succ] = true
					changed = true
				}
			}
		}
	}

	// Final replay: walk each block once more with the solved entry
	// state, recording the reach set of every use occurrence. Within a
	// node, right-hand sides are replayed before the definitions they
	// feed (Go evaluates RHS first), so `x = x + 1` sees the old x.
	for _, b := range cfg.Blocks {
		st, ok := in[b]
		if !ok {
			continue // unreachable block
		}
		state := st.Clone()
		for _, n := range b.Nodes {
			defIdents := make(map[*ast.Ident]bool)
			WalkNodes(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.AssignStmt:
					if m.Tok == token.DEFINE {
						for _, lhs := range m.Lhs {
							if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
								defIdents[id] = true
							}
						}
					} else {
						// Plain assignment: a bare-identifier LHS is a write,
						// not a read (compound `+=` both reads and writes, and
						// the read is what reaching-defs answers for).
						for _, lhs := range m.Lhs {
							if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && m.Tok == token.ASSIGN {
								defIdents[id] = true
							}
						}
					}
				case *ast.DeclStmt:
					WalkNodes(m, func(k ast.Node) bool {
						if vs, ok := k.(*ast.ValueSpec); ok {
							for _, name := range vs.Names {
								defIdents[name] = true
							}
						}
						return true
					})
				case *ast.RangeStmt:
					for _, e := range []ast.Expr{m.Key, m.Value} {
						if id, ok := ast.Unparen(e).(*ast.Ident); ok {
							defIdents[id] = true
						}
					}
				}
				return true
			})
			WalkNodes(n, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok || defIdents[id] {
					return true
				}
				obj := info.Uses[id]
				if obj == nil || len(r.byObj[obj]) == 0 {
					return true
				}
				reach := NewBitSet(nbits)
				for _, did := range r.byObj[obj] {
					if state.Has(did) {
						reach.Set(did)
					}
				}
				r.uses[id] = reach
				return true
			})
			gen(state, nodeDefs[n])
		}
	}
	return r
}

// At returns the definitions that may reach the given use occurrence,
// in definition order, or nil when the identifier is not a tracked use.
func (r *ReachingDefs) At(use *ast.Ident) []*Def {
	set := r.uses[use]
	if set == nil {
		return nil
	}
	var out []*Def
	for _, d := range r.Defs {
		if set.Has(d.ID) {
			out = append(out, d)
		}
	}
	return out
}

// DefsOf returns every definition site of obj, in source order.
func (r *ReachingDefs) DefsOf(obj types.Object) []*Def {
	ids := r.byObj[obj]
	out := make([]*Def, 0, len(ids))
	for _, id := range ids {
		out = append(out, r.Defs[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// TrackedUses returns every use occurrence with a recorded reach set,
// in source order — the domain of At.
func (r *ReachingDefs) TrackedUses() []*ast.Ident {
	out := make([]*ast.Ident, 0, len(r.uses))
	for id := range r.uses {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
