package flow

import (
	"go/ast"
	"sort"
)

// DefUse inverts a solved ReachingDefs relation into def-use chains:
// for every definition site, the use occurrences it may reach. Together
// with ReachingDefs.At this gives both directions of the value-flow
// relation over one function body.
type DefUse struct {
	// RD is the underlying reaching-definitions solution.
	RD *ReachingDefs

	uses map[int][]*ast.Ident // Def.ID -> use occurrences, source order
}

// NewDefUse builds def-use chains from a solved ReachingDefs.
func NewDefUse(rd *ReachingDefs) *DefUse {
	du := &DefUse{RD: rd, uses: make(map[int][]*ast.Ident)}
	for _, use := range rd.TrackedUses() {
		for _, d := range rd.At(use) {
			du.uses[d.ID] = append(du.uses[d.ID], use)
		}
	}
	for _, ids := range du.uses {
		sort.Slice(ids, func(i, j int) bool { return ids[i].Pos() < ids[j].Pos() })
	}
	return du
}

// Uses returns the use occurrences that definition d may reach, in
// source order.
func (du *DefUse) Uses(d *Def) []*ast.Ident {
	return du.uses[d.ID]
}

// Defs returns the definitions that may reach the given use — a
// convenience forwarding to the underlying ReachingDefs.
func (du *DefUse) Defs(use *ast.Ident) []*Def {
	return du.RD.At(use)
}

// Dead returns the non-entry definitions with no reachable use — handy
// for diagnostics and as a fuzzing invariant (a definition that kills
// itself before any use must have an empty chain).
func (du *DefUse) Dead() []*Def {
	var out []*Def
	for _, d := range du.RD.Defs {
		if !d.Entry && len(du.uses[d.ID]) == 0 {
			out = append(out, d)
		}
	}
	return out
}
