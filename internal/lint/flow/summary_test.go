package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// summarize typechecks src and computes its summaries; srcCall marks
// calls to functions named "source" as protected sources so wrapper
// propagation is testable without a real View type.
func summarize(t *testing.T, src string) *SummarySet {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("fixture", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Summarize(info, []*ast.File{file}, func(call *ast.CallExpr) bool {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			return id.Name == "source"
		}
		return false
	})
}

// sumOf finds the summary of the function (or Type.Method) named name.
func sumOf(t *testing.T, set *SummarySet, name string) *Summary {
	t.Helper()
	for fn, sum := range set.byFunc {
		full := fn.Name()
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type().String()
			if i := strings.LastIndexByte(recv, '.'); i >= 0 {
				recv = recv[i+1:]
			}
			full = recv + "." + fn.Name()
		}
		if full == name {
			return sum
		}
	}
	t.Fatalf("no summary for %q", name)
	return nil
}

func TestSummaryDirectSliceWrite(t *testing.T) {
	set := summarize(t, `package fixture
func zero(xs []int) {
	for i := range xs {
		xs[i] = 0
	}
}
func rebind(xs []int) {
	xs = nil
	_ = xs
}
`)
	if got := sumOf(t, set, "zero").Params[0]; got&ParamMutated == 0 {
		t.Fatalf("zero: slice element write must set ParamMutated, got %b", got)
	}
	if got := sumOf(t, set, "rebind").Params[0]; got&ParamMutated != 0 {
		t.Fatalf("rebind: plain parameter reassignment is not a mutation, got %b", got)
	}
}

func TestSummaryMutationThroughAliasAndHelper(t *testing.T) {
	set := summarize(t, `package fixture
func clobber(xs []int) { xs[0] = 1 }
func viaAlias(xs []int) {
	ys := xs[1:]
	ys[0] = 2
}
func viaHelper(xs []int) { clobber(xs) }
func viaBoth(xs []int) {
	ys := xs
	viaHelper(ys)
}
func readOnly(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
`)
	for _, name := range []string{"viaAlias", "viaHelper", "viaBoth"} {
		if got := sumOf(t, set, name).Params[0]; got&ParamMutated == 0 {
			t.Errorf("%s: mutation through alias/helper must set ParamMutated, got %b", name, got)
		}
	}
	if got := sumOf(t, set, "readOnly").Params[0]; got&ParamMutated != 0 {
		t.Errorf("readOnly: reads must not set ParamMutated, got %b", got)
	}
}

func TestSummaryBuiltinsMutateDst(t *testing.T) {
	set := summarize(t, `package fixture
func fill(dst, src []int) { copy(dst, src) }
func grow(xs []int) []int { return append(xs, 1) }
`)
	fill := sumOf(t, set, "fill")
	if fill.Params[0]&ParamMutated == 0 {
		t.Errorf("fill: copy dst must be ParamMutated, got %b", fill.Params[0])
	}
	if fill.Params[1]&ParamMutated != 0 {
		t.Errorf("fill: copy src must not be ParamMutated, got %b", fill.Params[1])
	}
	if got := sumOf(t, set, "grow").Params[0]; got&ParamMutated == 0 {
		t.Errorf("grow: append may write the first arg's backing array, got %b", got)
	}
}

func TestSummaryRetention(t *testing.T) {
	set := summarize(t, `package fixture
type box struct{ xs []int }
var global []int
func stash(b *box, xs []int)  { b.xs = xs }
func toGlobal(xs []int)       { global = xs }
func toLiteral(xs []int) *box { return &box{xs: xs} }
func send(ch chan []int, xs []int) { ch <- xs }
func harmless(xs []int) int   { return len(xs) }
func viaHelper(b *box, xs []int) { stash(b, xs) }
`)
	cases := map[string]int{"stash": 1, "toGlobal": 0, "toLiteral": 0, "viaHelper": 1}
	for name, idx := range cases {
		if got := sumOf(t, set, name).Params[idx]; got&ParamRetained == 0 {
			t.Errorf("%s: param %d must be ParamRetained, got %b", name, idx, got)
		}
	}
	if got := sumOf(t, set, "send").Params[1]; got&ParamRetained == 0 {
		t.Errorf("send: channel send must retain, got %b", got)
	}
	if got := sumOf(t, set, "harmless").Params[0]; got&ParamRetained != 0 {
		t.Errorf("harmless: len() must not retain, got %b", got)
	}
	// The mutating stash also mutates its receiver-like *box param.
	if got := sumOf(t, set, "stash").Params[0]; got&ParamMutated == 0 {
		t.Errorf("stash: field store mutates the box param, got %b", got)
	}
}

func TestSummaryReturnedAlias(t *testing.T) {
	set := summarize(t, `package fixture
func ident(xs []int) []int { return xs }
func sub(xs []int) []int   { return xs[1:] }
func fresh(xs []int) []int { return append([]int(nil), xs...) }
func chain(xs []int) []int { return ident(sub(xs)) }
`)
	for _, name := range []string{"ident", "sub", "chain"} {
		if got := sumOf(t, set, name).Params[0]; got&ParamReturned == 0 {
			t.Errorf("%s: must be ParamReturned, got %b", name, got)
		}
	}
	if got := sumOf(t, set, "fresh").Params[0]; got&ParamReturned != 0 {
		t.Errorf("fresh: append to nil copies, must not be ParamReturned, got %b", got)
	}
}

func TestSummaryReturnedAliasEnablesCallSiteMutation(t *testing.T) {
	// Mutating the return value of an alias-returning helper mutates
	// the argument fed to it.
	set := summarize(t, `package fixture
func tail(xs []int) []int { return xs[1:] }
func hit(xs []int) {
	ys := tail(xs)
	ys[0] = 9
}
`)
	if got := sumOf(t, set, "hit").Params[0]; got&ParamMutated == 0 {
		t.Fatalf("hit: write through returned alias must set ParamMutated, got %b", got)
	}
}

func TestSummaryClosureCapture(t *testing.T) {
	set := summarize(t, `package fixture
func viaClosure(xs []int) {
	f := func() { xs[0] = 1 }
	f()
}
func readClosure(xs []int) int {
	n := 0
	f := func() { n = len(xs) }
	f()
	return n
}
`)
	if got := sumOf(t, set, "viaClosure").Params[0]; got&ParamMutated == 0 {
		t.Errorf("viaClosure: captured write must set ParamMutated, got %b", got)
	}
	if got := sumOf(t, set, "readClosure").Params[0]; got&ParamMutated != 0 {
		t.Errorf("readClosure: captured read must not set ParamMutated, got %b", got)
	}
}

func TestSummaryReceiverFacts(t *testing.T) {
	set := summarize(t, `package fixture
type buf struct{ data []int }
func (b *buf) Set(i, v int) { b.data[i] = v }
func (b *buf) Len() int     { return len(b.data) }
func (b *buf) SetVia(i, v int) { b.Set(i, v) }
`)
	if got := sumOf(t, set, "buf.Set").Recv; got&ParamMutated == 0 {
		t.Errorf("Set: receiver write must set ParamMutated, got %b", got)
	}
	if got := sumOf(t, set, "buf.Len").Recv; got&ParamMutated != 0 {
		t.Errorf("Len: receiver read must not set ParamMutated, got %b", got)
	}
	if got := sumOf(t, set, "buf.SetVia").Recv; got&ParamMutated == 0 {
		t.Errorf("SetVia: receiver mutation through own method must propagate, got %b", got)
	}
}

func TestSummaryGoroutineAndBlockingFacts(t *testing.T) {
	set := summarize(t, `package fixture
import "sync"
func worker(wg *sync.WaitGroup) {
	defer wg.Done()
}
func spawn(wg *sync.WaitGroup) {
	wg.Add(1)
	go worker(wg)
	wg.Wait()
}
func indirect(wg *sync.WaitGroup) { spawn(wg) }
func recv(ch chan int) int { return <-ch }
func sel(ch chan int) {
	select {
	case <-ch:
	}
}
func nonblocking(ch chan int) {
	select {
	case <-ch:
	default:
	}
}
`)
	if got := sumOf(t, set, "worker").Params[0]; got&ParamWGDone == 0 {
		t.Errorf("worker: deferred Done must set ParamWGDone, got %b", got)
	}
	spawn := sumOf(t, set, "spawn")
	if !spawn.Spawns || !spawn.Blocks {
		t.Errorf("spawn: want Spawns && Blocks, got %+v", spawn)
	}
	ind := sumOf(t, set, "indirect")
	if !ind.Spawns || !ind.Blocks {
		t.Errorf("indirect: facts must propagate through callee, got %+v", ind)
	}
	if !sumOf(t, set, "recv").Blocks {
		t.Error("recv: channel receive must set Blocks")
	}
	if !sumOf(t, set, "sel").Blocks {
		t.Error("sel: default-less select must set Blocks")
	}
	if sumOf(t, set, "nonblocking").Blocks {
		t.Error("nonblocking: select with default must not set Blocks")
	}
}

func TestSummaryReturnsSourceWrappers(t *testing.T) {
	set := summarize(t, `package fixture
func source() []int { return nil }
func wrapper() []int { return source() }
func wrapWrap() []int { return wrapper()[1:] }
func viaLocal() []int {
	r := source()
	return r
}
func clean() []int { return make([]int, 4) }
`)
	for _, name := range []string{"wrapper", "wrapWrap", "viaLocal"} {
		if !sumOf(t, set, name).ReturnsSource {
			t.Errorf("%s: must have ReturnsSource", name)
		}
	}
	if sumOf(t, set, "clean").ReturnsSource {
		t.Error("clean: make result is not a source")
	}
}
