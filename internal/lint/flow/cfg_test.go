package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildFunc parses src (a complete package clause plus declarations),
// typechecks it, and returns the CFG and body of the function named
// fname together with the checker's info.
func buildFunc(t *testing.T, src, fname string) (*CFG, *ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("fixture", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == fname {
			return New(fd.Body, info), fd, info
		}
	}
	t.Fatalf("function %s not found", fname)
	return nil, nil, nil
}

// reaches reports whether Exit is reachable from the entry block.
func reaches(c *CFG) bool {
	seen := make(map[*Block]bool)
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == c.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(c.Blocks[0])
}

func TestCFGShape(t *testing.T) {
	cfg, _, _ := buildFunc(t, `package fixture
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}
`, "f")
	if cfg.Blocks[0].Index != 0 || cfg.Blocks[1] != cfg.Exit {
		t.Fatalf("entry/exit layout broken: entry index %d, Blocks[1]==Exit %v",
			cfg.Blocks[0].Index, cfg.Blocks[1] == cfg.Exit)
	}
	if len(cfg.Exit.Nodes) != 0 || len(cfg.Exit.Succs) != 0 {
		t.Errorf("exit block must be empty and terminal, got %d nodes %d succs",
			len(cfg.Exit.Nodes), len(cfg.Exit.Succs))
	}
	if !reaches(cfg) {
		t.Error("exit unreachable from entry")
	}
	// The if condition appears as a bare expression node in some block.
	foundCond := false
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if id, ok := n.(*ast.Ident); ok && id.Name == "c" {
				foundCond = true
			}
		}
	}
	if !foundCond {
		t.Error("if condition expression not recorded in any block")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	cfg, _, _ := buildFunc(t, `package fixture
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`, "f")
	// A loop needs a cycle: some block must reach itself.
	cyclic := false
	for _, start := range cfg.Blocks {
		seen := make(map[*Block]bool)
		stack := append([]*Block(nil), start.Succs...)
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if b == start {
				cyclic = true
				break
			}
			if seen[b] {
				continue
			}
			seen[b] = true
			stack = append(stack, b.Succs...)
		}
	}
	if !cyclic {
		t.Error("for loop produced no back edge")
	}
	if !reaches(cfg) {
		t.Error("exit unreachable: loop exit edge missing")
	}
}

func TestCFGDefersCollected(t *testing.T) {
	cfg, _, _ := buildFunc(t, `package fixture
func f(c bool) {
	defer println("a")
	if c {
		defer println("b")
	}
}
`, "f")
	if len(cfg.Defers) != 2 {
		t.Fatalf("want 2 collected defers, got %d", len(cfg.Defers))
	}
	// Defers stay in block Nodes too (walkers skip them explicitly), in
	// syntactic order on the side list.
	lit := func(d *ast.DeferStmt) string {
		return d.Call.Args[0].(*ast.BasicLit).Value
	}
	if lit(cfg.Defers[0]) != `"a"` || lit(cfg.Defers[1]) != `"b"` {
		t.Errorf("defers out of syntactic order: %s, %s", lit(cfg.Defers[0]), lit(cfg.Defers[1]))
	}
}

func TestCFGTerminatingCalls(t *testing.T) {
	cfg, _, _ := buildFunc(t, `package fixture
import "os"
func f(c bool) int {
	if c {
		os.Exit(1)
	}
	return 0
}
`, "f")
	// The os.Exit block must not flow to Exit: find it and check.
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Exit" {
				for _, s := range b.Succs {
					if s == cfg.Exit {
						t.Error("os.Exit block flows to the function exit")
					}
				}
				return
			}
		}
	}
	t.Fatal("os.Exit call not found in any block")
}

func TestSolveJoin(t *testing.T) {
	cfg, _, _ := buildFunc(t, `package fixture
func f(c bool) {
	if c {
		println("taint")
	}
	println("after")
}
`, "f")
	// Bit 0: "a println("taint") call may have executed". At the join
	// block holding println("after"), the OR of the two arms must carry
	// the bit even though only one arm sets it.
	const taint = uint64(1)
	trans := func(b *Block, in uint64) uint64 {
		out := in
		for _, n := range b.Nodes {
			WalkNodes(n, func(m ast.Node) bool {
				if lit, ok := m.(*ast.BasicLit); ok && lit.Value == `"taint"` {
					out |= taint
				}
				return true
			})
		}
		return out
	}
	states := cfg.Solve(0, trans)
	var afterIn uint64
	found := false
	for b, in := range states {
		for _, n := range b.Nodes {
			WalkNodes(n, func(m ast.Node) bool {
				if lit, ok := m.(*ast.BasicLit); ok && lit.Value == `"after"` {
					afterIn, found = in, true
				}
				return true
			})
		}
	}
	if !found {
		t.Fatal("join block not found in solved states")
	}
	if afterIn&taint == 0 {
		t.Error("may-bit lost at the if/else join: OR lattice broken")
	}
	// Exit state must also carry the bit.
	exitOut := trans(cfg.Exit, states[cfg.Exit])
	if exitOut&taint == 0 {
		t.Error("may-bit lost at exit")
	}
}

func TestCallGraphPropagate(t *testing.T) {
	fset := token.NewFileSet()
	src := `package fixture
func leaf()      { mark() }
func mark()      {}
func viaHelper() { leaf() }
func clean()     {}
func dynamic(f func()) { f() }
`
	file, err := parser.ParseFile(fset, "cg.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	if _, err := (&types.Config{}).Check("fixture", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	cg := NewCallGraph(info, []*ast.File{file})
	if len(cg.Decls) != 5 {
		t.Fatalf("want 5 declared functions, got %d", len(cg.Decls))
	}
	byName := func(name string) *types.Func {
		for f := range cg.Decls {
			if f.Name() == name {
				return f
			}
		}
		t.Fatalf("decl %s not found", name)
		return nil
	}
	// Base property: "calls mark directly". Propagated: viaHelper gets
	// it through leaf; clean and dynamic stay false (the f() call is
	// unresolvable by design).
	mark := byName("mark")
	prop := cg.Propagate(func(f *types.Func, fd *ast.FuncDecl) bool {
		return cg.Calls(f, mark)
	})
	for name, want := range map[string]bool{
		"leaf": true, "viaHelper": true, "clean": false, "dynamic": false, "mark": false,
	} {
		if got := prop[byName(name)]; got != want {
			t.Errorf("Propagate[%s] = %v, want %v", name, got, want)
		}
	}
	if !cg.Calls(byName("viaHelper"), byName("leaf")) {
		t.Error("Calls(viaHelper, leaf) = false")
	}
	if cg.Calls(byName("clean"), mark) {
		t.Error("Calls(clean, mark) = true")
	}
}
