package flow

import (
	"go/ast"
	"go/types"
	"testing"
)

// rdFor builds and solves reaching defs for fname in src.
func rdFor(t *testing.T, src, fname string) (*ReachingDefs, *ast.FuncDecl, *types.Info) {
	t.Helper()
	cfg, fd, info := buildFunc(t, src, fname)
	rd := NewReachingDefs(cfg, info, ParamIdents(fd.Recv, fd.Type), fd.Body)
	return rd, fd, info
}

// useIdent finds the n-th tracked-use occurrence (0-based) of name
// inside fd — write-only LHS occurrences are not uses and don't count.
func useIdent(t *testing.T, rd *ReachingDefs, name string, n int) *ast.Ident {
	t.Helper()
	count := 0
	for _, id := range rd.TrackedUses() {
		if id.Name == name {
			if count == n {
				return id
			}
			count++
		}
	}
	t.Fatalf("tracked use #%d of %q not found", n, name)
	return nil
}

func TestReachingDefsKillsOnReassign(t *testing.T) {
	rd, _, _ := rdFor(t, `package fixture
func f() int {
	x := 1
	x = 2
	return x
}
`, "f")
	use := useIdent(t, rd, "x", 0) // the `return x` occurrence
	defs := rd.At(use)
	if len(defs) != 1 {
		t.Fatalf("want exactly the second def reaching the return, got %d defs", len(defs))
	}
	if _, ok := defs[0].Node.(*ast.AssignStmt); !ok {
		t.Fatalf("reaching def is not the assignment: %T", defs[0].Node)
	}
}

func TestReachingDefsJoinsBranches(t *testing.T) {
	rd, _, _ := rdFor(t, `package fixture
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}
`, "f")
	use := useIdent(t, rd, "x", 0)
	if got := len(rd.At(use)); got != 2 {
		t.Fatalf("return should see both branch defs (and not the killed initial one), got %d", got)
	}
}

func TestReachingDefsLoopCarried(t *testing.T) {
	rd, _, _ := rdFor(t, `package fixture
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = s + i
	}
	return s
}
`, "f")
	// The `s` read inside the loop body (s = s + i, RHS occurrence) sees
	// both the initial def and the loop-carried one.
	use := useIdent(t, rd, "s", 0)
	if got := len(rd.At(use)); got != 2 {
		t.Fatalf("loop body read of s should see initial + loop-carried defs, got %d", got)
	}
}

func TestReachingDefsRHSSeesOldValue(t *testing.T) {
	rd, _, _ := rdFor(t, `package fixture
func f() int {
	x := 1
	x = x + 1
	return x
}
`, "f")
	// In `x = x + 1` the RHS x must see only the := def, not the
	// assignment it feeds.
	use := useIdent(t, rd, "x", 0)
	defs := rd.At(use)
	if len(defs) != 1 {
		t.Fatalf("RHS of x = x+1 should see exactly the := def, got %d", len(defs))
	}
	if a, ok := defs[0].Node.(*ast.AssignStmt); !ok || len(a.Rhs) != 1 {
		t.Fatalf("unexpected def node %T", defs[0].Node)
	}
	if _, ok := defs[0].Node.(*ast.AssignStmt); ok {
		if defs[0].Node.(*ast.AssignStmt).Tok.String() != ":=" {
			t.Fatalf("RHS use reached by %s def, want :=", defs[0].Node.(*ast.AssignStmt).Tok)
		}
	}
}

func TestReachingDefsParamsAndRange(t *testing.T) {
	rd, _, _ := rdFor(t, `package fixture
func f(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}
`, "f")
	vUse := useIdent(t, rd, "v", 0)
	defs := rd.At(vUse)
	if len(defs) != 1 {
		t.Fatalf("range value use should see the range binding, got %d defs", len(defs))
	}
	if _, ok := defs[0].Node.(*ast.RangeStmt); !ok {
		t.Fatalf("def node is %T, want *ast.RangeStmt", defs[0].Node)
	}
	xsUse := useIdent(t, rd, "xs", 0)
	xsDefs := rd.At(xsUse)
	if len(xsDefs) != 1 || !xsDefs[0].Entry {
		t.Fatalf("xs use should see exactly the entry (parameter) def, got %+v", xsDefs)
	}
}

func TestDefUseChains(t *testing.T) {
	rd, _, info := rdFor(t, `package fixture
func f(c bool) int {
	x := 1
	if c {
		return x
	}
	x = 2
	return x
}
`, "f")
	du := NewDefUse(rd)
	obj := info.Uses[useIdent(t, rd, "x", 0)]
	defs := rd.DefsOf(obj)
	if len(defs) != 2 {
		t.Fatalf("x has %d defs, want 2", len(defs))
	}
	// The := def reaches only the first return; the = def only the
	// second.
	if got := len(du.Uses(defs[0])); got != 1 {
		t.Errorf(":= def reaches %d uses, want 1", got)
	}
	if got := len(du.Uses(defs[1])); got != 1 {
		t.Errorf("= def reaches %d uses, want 1", got)
	}
	if len(du.Dead()) != 0 {
		t.Errorf("no def is dead here, got %d", len(du.Dead()))
	}
}

func TestAllocSitesKinds(t *testing.T) {
	_, fd, info := buildFunc(t, `package fixture
func take(v any) {}
func f(p *int) {
	a := make([]int, 4)
	b := new(int)
	a = append(a, 1)
	m := map[string]int{}
	s := &struct{ x int }{}
	fn := func() {}
	take(42)        // boxes: int is not pointer-shaped
	take(p)         // exempt: pointer-shaped
	take(struct{}{}) // exempt: zero-size
	var i any = 7   // boxes via typed var decl
	_ = i
	_, _, _, _, _, _ = a, b, m, s, fn, p
}
`, "f")

	counts := map[AllocKind]int{}
	for _, site := range AllocSites(info, fd.Body) {
		counts[site.Kind]++
	}
	want := map[AllocKind]int{
		AllocMake:      1,
		AllocNew:       1,
		AllocAppend:    1,
		AllocComposite: 2, // map literal + &struct literal
		AllocClosure:   1,
		AllocBox:       2, // take(42) and var i any = 7
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("%v: got %d sites, want %d (all: %v)", k, counts[k], n, counts)
		}
	}
}

func TestAllocSitesValueStructNotFlagged(t *testing.T) {
	_, fd, info := buildFunc(t, `package fixture
type pt struct{ x, y int }
func f() int {
	p := pt{1, 2}
	return p.x
}
`, "f")
	if sites := AllocSites(info, fd.Body); len(sites) != 0 {
		t.Fatalf("value struct literal must not be an alloc site, got %v", sites)
	}
}

func TestEscapes(t *testing.T) {
	_, fd, info := buildFunc(t, `package fixture
func sink(v *int) {}
func f(ch chan *int) *int {
	a := new(int)
	b := new(int)
	c := new(int)
	d := new(int)
	e := new(int)
	local := new(int)
	ch <- b
	sink(c)
	go func() { _ = d }()
	var store *int
	store = e
	_ = store
	_ = *local
	return a
}
`, "f")
	esc := Escapes(info, fd.Body)
	find := func(name string) EscapeMask {
		for obj, m := range esc {
			if obj.Name() == name {
				return m
			}
		}
		return 0
	}
	cases := []struct {
		name string
		want EscapeMask
	}{
		{"a", EscReturned},
		{"b", EscSent},
		{"c", EscArg},
		{"d", EscCaptured},
		{"e", EscStored},
	}
	for _, c := range cases {
		if find(c.name)&c.want == 0 {
			t.Errorf("%s: mask %b missing %b", c.name, find(c.name), c.want)
		}
	}
	for obj := range esc {
		if obj.Name() == "local" {
			t.Errorf("local must not escape, got mask %b", esc[obj])
		}
	}
}
