package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural summary engine of the value-flow
// layer. Where alloc.go answers "may this expression allocate" and
// callgraph.go propagates single-bit may-properties, Summarize computes
// a structured per-function summary — per-parameter mutation, retention,
// and alias facts plus goroutine/blocking facts — bottom-up over the
// package call graph to a least fixpoint. The view-immutability,
// snapshot-aliasing, and goroutine-lifecycle analyzers consult these
// summaries so a write or leak hidden behind any chain of package-local
// helpers is as visible as a direct one.
//
// Everything here is a conservative may-analysis: a summary bit is set
// when the fact might hold, never cleared once set, and calls that
// cannot be resolved statically (other packages, function values,
// interface methods) contribute no facts — the analyzers built on top
// document that blind spot and pair it with runtime/differential gates.

// ParamFacts is the per-parameter summary lattice: a bitmask of ways a
// function may use one of its parameters (or its receiver). The join is
// bitwise OR.
type ParamFacts uint8

const (
	// ParamMutated: the function may store through the parameter — a
	// slice-element, field, or pointee write, a copy with the parameter
	// as destination, an append that can write into its backing array,
	// or a call forwarding it to a parameter with ParamMutated.
	ParamMutated ParamFacts = 1 << iota
	// ParamRetained: the parameter (or an alias of it) may outlive the
	// call in a mutable heap location — stored into a struct field, map,
	// slice element, package-level variable, composite literal, or sent
	// on a channel, or forwarded to a parameter with ParamRetained.
	ParamRetained
	// ParamReturned: the function may return the parameter or an alias
	// of it (the parameter itself, a subslice, a field chain), so the
	// caller's result aliases the argument.
	ParamReturned
	// ParamWGDone: the parameter is a *sync.WaitGroup whose Done method
	// the function may call (directly, deferred, or through a callee
	// with ParamWGDone) — the join-side half of the goroutine-lifecycle
	// contract for named worker functions.
	ParamWGDone
)

// Summary is the interprocedural fact set of one declared function.
type Summary struct {
	// Func is the summarized function object.
	Func *types.Func
	// Recv holds the receiver's facts for methods (zero for functions).
	Recv ParamFacts
	// Params holds one fact set per declared parameter, in order.
	// Unnamed and blank parameters get a zero entry.
	Params []ParamFacts
	// ReturnsSource reports that the function may return a value for
	// which srcCall (the Summarize argument) returned true — the
	// wrapper-source propagation the view analyzers build on.
	ReturnsSource bool
	// Spawns reports that the function may start a goroutine, directly
	// or through a package-local callee.
	Spawns bool
	// Blocks reports that the function may block on synchronization: a
	// WaitGroup.Wait, a channel operation, or a select without a
	// default case, directly or through a package-local callee.
	Blocks bool
}

// SummarySet holds the fixpoint summaries of one package.
type SummarySet struct {
	info *types.Info
	// byFunc maps each declared function to its summary.
	byFunc map[*types.Func]*Summary
	// paramObjs maps every parameter/receiver object to its position in
	// its function's summary (receiver is index -1).
	paramObjs map[types.Object]paramRef
}

type paramRef struct {
	fn    *types.Func
	index int // -1 for the receiver
}

// Of returns the summary of fn, or nil for functions not declared in
// the summarized package.
func (s *SummarySet) Of(fn *types.Func) *Summary { return s.byFunc[fn] }

// FactsAt returns the facts of callee's parameter at the given argument
// index, resolving the receiver of method values. Unknown callees and
// out-of-range indices yield zero facts.
func (s *SummarySet) FactsAt(callee *types.Func, arg int) ParamFacts {
	sum := s.byFunc[callee]
	if sum == nil || arg < 0 || arg >= len(sum.Params) {
		return 0
	}
	return sum.Params[arg]
}

// RecvFacts returns the receiver facts of callee, or zero for unknown
// callees and plain functions.
func (s *SummarySet) RecvFacts(callee *types.Func) ParamFacts {
	if sum := s.byFunc[callee]; sum != nil {
		return sum.Recv
	}
	return 0
}

// Summarize computes the package's function summaries to a least
// fixpoint. srcCall classifies calls that produce protected source
// values (e.g. View adjacency rows) for ReturnsSource propagation; nil
// means no source tracking.
func Summarize(info *types.Info, files []*ast.File, srcCall func(*ast.CallExpr) bool) *SummarySet {
	cg := NewCallGraph(info, files)
	set := &SummarySet{
		info:      info,
		byFunc:    make(map[*types.Func]*Summary, len(cg.Decls)),
		paramObjs: make(map[types.Object]paramRef),
	}
	for fn, fd := range cg.Decls {
		sum := &Summary{Func: fn}
		if fd.Recv != nil {
			for _, field := range fd.Recv.List {
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						set.paramObjs[obj] = paramRef{fn: fn, index: -1}
					}
				}
			}
		}
		if fd.Type.Params != nil {
			idx := 0
			for _, field := range fd.Type.Params.List {
				if len(field.Names) == 0 {
					sum.Params = append(sum.Params, 0)
					idx++
					continue
				}
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						set.paramObjs[obj] = paramRef{fn: fn, index: idx}
					}
					sum.Params = append(sum.Params, 0)
					idx++
				}
			}
		}
		set.byFunc[fn] = sum
	}

	// Bottom-up least fixpoint: re-walk every body until no summary
	// gains a bit. Facts only accumulate, so this terminates in at most
	// (bits × params) rounds; in practice two or three.
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.order {
			if set.summarizeOne(fn, cg.Decls[fn], srcCall) {
				changed = true
			}
		}
	}
	return set
}

// summarizeOne re-derives fn's summary from its body and the current
// summaries of its callees, reporting whether any fact was added.
func (s *SummarySet) summarizeOne(fn *types.Func, fd *ast.FuncDecl, srcCall func(*ast.CallExpr) bool) bool {
	sum := s.byFunc[fn]
	aliases := s.paramAliases(fn, fd)
	srcLocals := s.sourceLocals(fd, srcCall)
	old := *sum
	oldParams := append([]ParamFacts(nil), sum.Params...)

	mark := func(e ast.Expr, f ParamFacts) {
		for _, ref := range s.rootsOf(e, aliases) {
			if ref.fn != fn {
				continue
			}
			if ref.index == -1 {
				sum.Recv |= f
			} else if ref.index < len(sum.Params) {
				sum.Params[ref.index] |= f
			}
		}
	}

	// Channel operations that are the comm of a select case are judged
	// by the select (which blocks only without a default), not as
	// standalone operations.
	selectComms := make(map[ast.Node]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, cl := range sel.Body.List {
				if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
					selectComms[commOp(comm.Comm)] = true
				}
			}
		}
		return true
	})

	// Unlike WalkNodes this deliberately descends into function
	// literals: a closure writing through a captured parameter mutates
	// it on behalf of the enclosing function, and deferred closures run
	// at its exits.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				s.markStore(lhs, n.Rhs, mark)
			}
		case *ast.IncDecStmt:
			if isDerefWrite(n.X) {
				mark(n.X, ParamMutated)
			}
		case *ast.SendStmt:
			mark(n.Value, ParamRetained)
			if !selectComms[ast.Node(n)] {
				sum.Blocks = true
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				mark(el, ParamRetained)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				mark(res, ParamReturned)
				if s.exprIsSource(res, srcCall, srcLocals) {
					sum.ReturnsSource = true
				}
			}
		case *ast.GoStmt:
			sum.Spawns = true
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				sum.Blocks = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !selectComms[ast.Node(n)] {
				sum.Blocks = true
			}
		case *ast.CallExpr:
			s.applyCall(fn, n, sum, mark)
		}
		return true
	})

	if sum.Recv != old.Recv || sum.ReturnsSource != old.ReturnsSource ||
		sum.Spawns != old.Spawns || sum.Blocks != old.Blocks {
		return true
	}
	for i := range sum.Params {
		if sum.Params[i] != oldParams[i] {
			return true
		}
	}
	return false
}

// markStore classifies one assignment target: a store through a
// dereference (index, field, star) mutates its root; a store of a
// parameter-rooted value into a non-local location retains it.
func (s *SummarySet) markStore(lhs ast.Expr, rhs []ast.Expr, mark func(ast.Expr, ParamFacts)) {
	if isDerefWrite(lhs) {
		mark(lhs, ParamMutated)
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
		// Storing into any dereferenced location retains every
		// parameter-rooted RHS value: the location may outlive the call.
		for _, r := range rhs {
			mark(r, ParamRetained)
		}
		_ = l
	case *ast.Ident:
		if obj := s.info.Uses[l]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
				// Package-level variable: the store itself is a retention
				// of every parameter-rooted RHS value.
				for _, r := range rhs {
					mark(r, ParamRetained)
				}
			}
		}
	}
}

// applyCall folds a callee's summary into the caller at one call site:
// arguments forwarded to mutated/retained parameters inherit the facts,
// WaitGroup.Wait blocks, and spawning callees make the caller spawn.
func (s *SummarySet) applyCall(fn *types.Func, call *ast.CallExpr, sum *Summary, mark func(ast.Expr, ParamFacts)) {
	if name, ok := builtinName(s.info, call); ok {
		switch name {
		case "copy":
			if len(call.Args) == 2 {
				mark(call.Args[0], ParamMutated)
			}
		case "append":
			// append may write into the backing array of its first
			// argument when spare capacity exists.
			if len(call.Args) > 0 {
				mark(call.Args[0], ParamMutated)
			}
		}
		return
	}
	callee := Callee(s.info, call)
	if callee == nil {
		return
	}
	if isWaitGroupMethod(callee, "Wait") {
		sum.Blocks = true
	}
	if recv := Receiver(call); recv != nil {
		if isWaitGroupMethod(callee, "Done") {
			mark(recv, ParamWGDone)
		}
		if csum := s.byFunc[callee]; csum != nil {
			mark(recv, csum.Recv&(ParamMutated|ParamRetained))
		}
	}
	csum := s.byFunc[callee]
	if csum == nil {
		return
	}
	if csum.Spawns {
		sum.Spawns = true
	}
	if csum.Blocks {
		sum.Blocks = true
	}
	sig, _ := callee.Type().(*types.Signature)
	for i, arg := range call.Args {
		idx := i
		if sig != nil && sig.Variadic() && idx >= sig.Params().Len()-1 {
			idx = sig.Params().Len() - 1
		}
		if idx < len(csum.Params) {
			f := csum.Params[idx] & (ParamMutated | ParamRetained | ParamWGDone)
			if f != 0 {
				mark(arg, f)
			}
		}
	}
}

// paramAliases computes the local variables of fd that may alias one of
// fn's parameters: seeded with the parameter objects themselves, then
// closed over assignments whose RHS is an alias-preserving expression
// (the variable, a subslice, a field chain, an address-of, or a call to
// a callee with ParamReturned). One forward pass per fixpoint round is
// enough because Summarize iterates the whole package to stability.
func (s *SummarySet) paramAliases(fn *types.Func, fd *ast.FuncDecl) map[types.Object]paramRef {
	aliases := make(map[types.Object]paramRef)
	for obj, ref := range s.paramObjs {
		if ref.fn == fn {
			aliases[obj] = ref
		}
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := s.info.Defs[id]
				if obj == nil {
					obj = s.info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if _, known := aliases[obj]; known {
					continue
				}
				for _, ref := range s.rootsOf(assign.Rhs[i], aliases) {
					if ref.fn == fn {
						aliases[obj] = ref
						changed = true
						break
					}
				}
			}
			return true
		})
	}
	return aliases
}

// rootsOf resolves an expression to the parameter references it may
// alias, peeling alias-preserving wrappers: parens, subslices, indexing,
// field selection, dereference, address-of, and calls whose callee
// returns a parameter alias.
func (s *SummarySet) rootsOf(e ast.Expr, aliases map[types.Object]paramRef) []paramRef {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if ref, ok := aliases[s.info.Uses[e]]; ok {
			return []paramRef{ref}
		}
		if ref, ok := aliases[s.info.Defs[e]]; ok {
			return []paramRef{ref}
		}
	case *ast.SliceExpr:
		return s.rootsOf(e.X, aliases)
	case *ast.IndexExpr:
		return s.rootsOf(e.X, aliases)
	case *ast.SelectorExpr:
		return s.rootsOf(e.X, aliases)
	case *ast.StarExpr:
		return s.rootsOf(e.X, aliases)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return s.rootsOf(e.X, aliases)
		}
	case *ast.CallExpr:
		callee := Callee(s.info, e)
		if callee == nil {
			return nil
		}
		csum := s.byFunc[callee]
		if csum == nil {
			return nil
		}
		var out []paramRef
		if csum.Recv&ParamReturned != 0 {
			if recv := Receiver(e); recv != nil {
				out = append(out, s.rootsOf(recv, aliases)...)
			}
		}
		for i, arg := range e.Args {
			if i < len(csum.Params) && csum.Params[i]&ParamReturned != 0 {
				out = append(out, s.rootsOf(arg, aliases)...)
			}
		}
		return out
	}
	return nil
}

// sourceLocals closes, by fixpoint over fd's assignments, the set of
// locals that may hold a source value — bound to a source call
// (including the tuple form), or rebound from another source local
// through an alias-preserving expression.
func (s *SummarySet) sourceLocals(fd *ast.FuncDecl, srcCall func(*ast.CallExpr) bool) map[types.Object]bool {
	srcLocals := make(map[types.Object]bool)
	if srcCall == nil {
		return srcLocals
	}
	record := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := s.info.Defs[id]
		if obj == nil {
			obj = s.info.Uses[id]
		}
		if obj == nil || srcLocals[obj] {
			return false
		}
		srcLocals[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
				if s.exprIsSource(assign.Rhs[0], srcCall, srcLocals) {
					for _, lhs := range assign.Lhs {
						if record(lhs) {
							changed = true
						}
					}
				}
				return true
			}
			if len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, rhs := range assign.Rhs {
				if s.exprIsSource(rhs, srcCall, srcLocals) && record(assign.Lhs[i]) {
					changed = true
				}
			}
			return true
		})
	}
	return srcLocals
}

// exprIsSource reports whether e may evaluate to a source value: a
// srcCall result, a local holding one, an alias-preserving wrapper of
// either, or a call into a package-local wrapper with ReturnsSource.
func (s *SummarySet) exprIsSource(e ast.Expr, srcCall func(*ast.CallExpr) bool, srcLocals map[types.Object]bool) bool {
	if srcCall == nil {
		return false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return srcLocals[s.info.Uses[e]] || srcLocals[s.info.Defs[e]]
	case *ast.CallExpr:
		if srcCall(e) {
			return true
		}
		if callee := Callee(s.info, e); callee != nil {
			if csum := s.byFunc[callee]; csum != nil && csum.ReturnsSource {
				return true
			}
		}
	case *ast.SliceExpr:
		return s.exprIsSource(e.X, srcCall, srcLocals)
	case *ast.IndexExpr:
		return s.exprIsSource(e.X, srcCall, srcLocals)
	}
	return false
}

// isDerefWrite reports whether assigning to e stores through a
// dereference — a slice/map element, a field, or a pointee — rather
// than rebinding a variable.
func isDerefWrite(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
		return true
	}
	return false
}

// isWaitGroupMethod reports whether fn is sync.WaitGroup's method of
// the given name.
func isWaitGroupMethod(fn *types.Func, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// commOp unwraps a select case's comm statement to the channel
// operation node it performs: the SendStmt itself, or the ARROW
// UnaryExpr behind an expression or assignment receive.
func commOp(comm ast.Stmt) ast.Node {
	switch comm := comm.(type) {
	case *ast.SendStmt:
		return comm
	case *ast.ExprStmt:
		return ast.Unparen(comm.X)
	case *ast.AssignStmt:
		if len(comm.Rhs) == 1 {
			return ast.Unparen(comm.Rhs[0])
		}
	}
	return comm
}

// selectHasDefault reports whether the select statement has a default
// clause (and therefore never blocks).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}
