package flow

import (
	"go/ast"
	"go/types"
)

// CallGraph is the static call graph of one package: which declared
// functions and methods call which, through direct identifier and
// selector calls (calls through function values or interfaces are not
// resolved — promolint's analyzers only need to see through the
// package's own unexported helpers).
type CallGraph struct {
	// Decls maps each declared function object to its syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// calls maps caller to the set of statically resolved callees.
	calls map[*types.Func]map[*types.Func]bool
	order []*types.Func // declaration order, for deterministic fixpoints
}

// NewCallGraph builds the call graph of the package's files.
func NewCallGraph(info *types.Info, files []*ast.File) *CallGraph {
	cg := &CallGraph{
		Decls: make(map[*types.Func]*ast.FuncDecl),
		calls: make(map[*types.Func]map[*types.Func]bool),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cg.Decls[obj] = fd
			cg.order = append(cg.order, obj)
			callees := make(map[*types.Func]bool)
			WalkNodes(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := Callee(info, call); callee != nil {
					callees[callee] = true
				}
				return true
			})
			cg.calls[obj] = callees
		}
	}
	return cg
}

// Callee resolves the function or method a call statically invokes,
// or nil for builtins, conversions, and dynamic calls.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// Receiver returns the receiver expression of a method call (the x of
// x.M(...)), or nil for plain function calls.
func Receiver(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// Propagate computes the least fixed point of a may-property over the
// call graph: a function has the property if base reports it directly
// or any statically resolved callee has it. The result covers every
// declared function of the package.
func (cg *CallGraph) Propagate(base func(*types.Func, *ast.FuncDecl) bool) map[*types.Func]bool {
	prop := make(map[*types.Func]bool, len(cg.order))
	for _, f := range cg.order {
		prop[f] = base(f, cg.Decls[f])
	}
	for changed := true; changed; {
		changed = false
		for _, f := range cg.order {
			if prop[f] {
				continue
			}
			for callee := range cg.calls[f] {
				if prop[callee] {
					prop[f] = true
					changed = true
					break
				}
			}
		}
	}
	return prop
}

// Calls reports whether caller's body contains a statically resolved
// call to callee.
func (cg *CallGraph) Calls(caller, callee *types.Func) bool {
	return cg.calls[caller][callee]
}
