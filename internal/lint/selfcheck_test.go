package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoIsClean runs the full suite over the real module and fails on
// any finding, making "promolint exits 0" part of the ordinary test
// gate rather than a separate CI step people can forget.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint in -short mode")
	}
	root, err := moduleRootFromWD()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./..."}, Config{})
	if err != nil {
		t.Fatalf("lint.Run on module: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func moduleRootFromWD() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
