package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"promonet/internal/lint/flow"
)

// spanHygiene checks obs tracing span lifecycle discipline everywhere
// in the module: a span obtained from obs.Start (directly or through a
// package-local wrapper that returns one) must reach End on every path
// — explicitly or via defer — must not End twice, must not be used
// after End, and must not be reassigned while still live. A leaked span
// never records its timing and leaks from the span pool; a double End
// returns one Span struct to the pool twice, aliasing it across two
// concurrent spans.
//
// Transferring ownership ends tracking, mirroring pool-hygiene:
// returning the span (a Start wrapper), storing it, sending it, passing
// it to a non-End function, or capturing it in a closure.
var spanHygiene = &Analyzer{
	Name:     "span-hygiene",
	Doc:      "flag obs spans that leak without End, End twice, or are used after End",
	Severity: SevError,
	Run:      runSpanHygiene,
}

// Span-hygiene dataflow bits, the same shape as pool-hygiene's plus a
// registration bit that makes defers flow-sensitive: a deferred End only
// runs at exits the defer statement actually reached, so an early return
// before `defer sp.End()` is registered neither Ends the span nor
// double-Ends an explicitly-Ended one.
const (
	shLive     uint64 = 1 << iota // started, not yet ended
	shEnded                       // End has run
	shDeferred                    // a deferred End is registered on this path
)

// isObsStartCall reports whether call is obs.Start — the function named
// Start of a package whose import path is internal/obs (of any module,
// so fixtures behave like the real tree).
func isObsStartCall(info *types.Info, call *ast.CallExpr) bool {
	callee := flow.Callee(info, call)
	if callee == nil || callee.Name() != "Start" || callee.Pkg() == nil {
		return false
	}
	if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return isObsPkgPath(callee.Pkg().Path())
}

func isObsPkgPath(path string) bool {
	return path == "internal/obs" || len(path) > len("/internal/obs") &&
		path[len(path)-len("/internal/obs"):] == "/internal/obs"
}

// isSpanEndCall reports whether call is the End method invoked on a
// bare identifier receiver, returning that identifier.
func isSpanEndCall(info *types.Info, call *ast.CallExpr) *ast.Ident {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	callee := flow.Callee(info, call)
	if callee == nil {
		return nil
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	id, _ := ast.Unparen(sel.X).(*ast.Ident)
	return id
}

// spanWrappers computes, by fixpoint over the package, the functions
// that act as span sources (return a span that came from Start) and
// span sinks (forward a parameter to an End).
func spanWrappers(p *Pass) (sources, sinks map[*types.Func]bool) {
	info := p.Pkg.Info
	cg := flow.NewCallGraph(info, p.Pkg.Files)
	sources = make(map[*types.Func]bool)
	sinks = make(map[*types.Func]bool)

	isSourceCall := func(call *ast.CallExpr) bool {
		if isObsStartCall(info, call) {
			return true
		}
		callee := flow.Callee(info, call)
		return callee != nil && sources[callee]
	}
	isSinkCall := func(call *ast.CallExpr) (*ast.Ident, bool) {
		if id := isSpanEndCall(info, call); id != nil {
			return id, true
		}
		callee := flow.Callee(info, call)
		if callee != nil && sinks[callee] {
			return nil, true
		}
		return nil, false
	}

	for changed := true; changed; {
		changed = false
		for f, fd := range cg.Decls {
			if !sources[f] && returnsSpanValue(info, fd, isSourceCall) {
				sources[f] = true
				changed = true
			}
			if !sinks[f] && forwardsParamToEnd(info, fd, isSinkCall) {
				sinks[f] = true
				changed = true
			}
		}
	}
	return sources, sinks
}

// spanBoundObjs collects the local variables of fd that are bound to a
// span source call — either the single result of a wrapper or the
// second result of the (ctx, span) tuple Start returns.
func spanBoundObjs(info *types.Info, body ast.Node, isSourceCall func(*ast.CallExpr) bool) map[types.Object]bool {
	bound := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				bound[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				bound[obj] = true
			}
		}
	}
	flow.WalkNodes(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(assign.Rhs) == 1 {
			if call := sourceExprCall(assign.Rhs[0], func(c *ast.CallExpr) bool { return isSourceCall(c) }); call != nil {
				switch len(assign.Lhs) {
				case 1:
					record(assign.Lhs[0])
				case 2:
					record(assign.Lhs[1]) // ctx, sp := obs.Start(...)
				}
				return true
			}
		}
		if len(assign.Lhs) == len(assign.Rhs) {
			for i, rhs := range assign.Rhs {
				if call := sourceExprCall(rhs, func(c *ast.CallExpr) bool { return isSourceCall(c) }); call != nil {
					record(assign.Lhs[i])
				}
			}
		}
		return true
	})
	return bound
}

// returnsSpanValue reports whether fd can return a span derived from a
// source call: a return of the call itself or of a local bound to one
// (the flow.Escapes classifier supplies the "is it returned" bit).
func returnsSpanValue(info *types.Info, fd *ast.FuncDecl, isSourceCall func(*ast.CallExpr) bool) bool {
	found := false
	flow.WalkNodes(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if sourceExprCall(res, isSourceCall) != nil {
				found = true
			}
		}
		return !found
	})
	if found {
		return true
	}
	bound := spanBoundObjs(info, fd.Body, isSourceCall)
	if len(bound) == 0 {
		return false
	}
	esc := flow.Escapes(info, fd.Body)
	for obj := range bound {
		if esc[obj]&flow.EscReturned != 0 {
			return true
		}
	}
	return false
}

// forwardsParamToEnd reports whether fd hands one of its parameters to
// a span sink — as the receiver of an End call or as an argument to
// another sink.
func forwardsParamToEnd(info *types.Info, fd *ast.FuncDecl, isSinkCall func(*ast.CallExpr) (*ast.Ident, bool)) bool {
	params := make(map[types.Object]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	if len(params) == 0 {
		return false
	}
	found := false
	flow.WalkNodes(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, isSink := isSinkCall(call)
		if !isSink {
			return true
		}
		if recv != nil && params[info.Uses[recv]] {
			found = true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && params[info.Uses[id]] {
				found = true
			}
		}
		return !found
	})
	return found
}

func runSpanHygiene(p *Pass) {
	info := p.Pkg.Info
	sources, sinks := spanWrappers(p)
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
				checkSpanBody(p, info, body, sources, sinks)
			})
		}
	}
}

// trackedSpan is one Start-bound local under analysis.
type trackedSpan struct {
	obj    types.Object
	def    *ast.AssignStmt
	defPos token.Pos
}

func checkSpanBody(p *Pass, info *types.Info, body *ast.BlockStmt, sources, sinks map[*types.Func]bool) {
	isSourceCall := func(call *ast.CallExpr) bool {
		if isObsStartCall(info, call) {
			return true
		}
		callee := flow.Callee(info, call)
		return callee != nil && sources[callee]
	}
	isSinkCall := func(call *ast.CallExpr) (*ast.Ident, bool) {
		if id := isSpanEndCall(info, call); id != nil {
			return id, true
		}
		callee := flow.Callee(info, call)
		if callee != nil && sinks[callee] {
			return nil, true
		}
		return nil, false
	}

	// Collect tracked spans: `sp := <source>()`, `_, sp := obs.Start()`,
	// and the `=` reassignment forms of both. Each binding occurrence is
	// its own tracked value; a reassignment of a live one is reported.
	var tracked []*trackedSpan
	flow.WalkNodes(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		record := func(lhs ast.Expr) {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				tracked = append(tracked, &trackedSpan{obj: obj, def: assign, defPos: assign.Pos()})
			}
		}
		if len(assign.Rhs) == 1 && len(assign.Lhs) == 2 {
			if sourceExprCall(assign.Rhs[0], isSourceCall) != nil {
				record(assign.Lhs[1]) // ctx, sp := obs.Start(...)
			}
			return true
		}
		if len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if sourceExprCall(rhs, isSourceCall) != nil {
				record(assign.Lhs[i])
			}
		}
		return true
	})

	if len(tracked) == 0 {
		return
	}
	cfg := flow.New(body, info)
	for _, tv := range tracked {
		checkSpan(p, info, cfg, tv, isSinkCall)
	}
}

// spanEvent is one ordered occurrence of the tracked span.
type spanEvent int

const (
	sevDef      spanEvent = iota // the defining Start assignment
	sevEnd                       // End (or a sink call) on the span
	sevKill                      // rebound by a different assignment
	sevEscape                    // returned, sent, stored, or captured
	sevUse                       // any other read (attribute setters etc.)
	sevDeferReg                  // `defer sp.End()` registered on this path
)

// spanEvents walks one CFG node and yields the tracked span's events in
// source order. Nested function literals are scanned only for captures;
// deferred Ends are applied at exit via cfg.Defers, and a deferred
// closure capturing the span takes ownership.
func spanEvents(info *types.Info, node ast.Node, tv *trackedSpan,
	isSinkCall func(*ast.CallExpr) (*ast.Ident, bool), yield func(ev spanEvent, pos token.Pos)) {
	skip := make(map[*ast.Ident]bool)
	usesVar := func(e ast.Expr) *ast.Ident {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if ok && info.Uses[id] == tv.obj {
			return id
		}
		return nil
	}
	captures := func(lit *ast.FuncLit) bool {
		captured := false
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && info.Uses[id] == tv.obj {
				captured = true
			}
			return !captured
		})
		return captured
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok && captures(lit) {
				yield(sevEscape, n.Pos())
				return false
			}
			if recv, isSink := isSinkCall(n.Call); isSink {
				if recv != nil && info.Uses[recv] == tv.obj {
					yield(sevDeferReg, n.Pos())
				}
				for _, arg := range n.Call.Args {
					if usesVar(arg) != nil {
						yield(sevDeferReg, n.Pos())
					}
				}
			} else {
				// Deferring the span into any other call transfers ownership.
				for _, arg := range n.Call.Args {
					if usesVar(arg) != nil {
						yield(sevEscape, n.Pos())
					}
				}
			}
			return false
		case *ast.FuncLit:
			if captures(n) {
				yield(sevEscape, n.Pos())
			}
			return false
		case *ast.AssignStmt:
			if n == tv.def {
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						skip[id] = true
					}
				}
				yield(sevDef, n.Pos())
				return true
			}
			// Re-binding the same variable from another Start kills this
			// tracked value; storing it anywhere transfers ownership.
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && (info.Uses[id] == tv.obj || info.Defs[id] == tv.obj) {
					skip[id] = true
					yield(sevKill, n.Pos())
				}
			}
			for _, rhs := range n.Rhs {
				if id := usesVar(rhs); id != nil {
					skip[id] = true
					yield(sevEscape, n.Pos())
				}
			}
			return true
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id := usesVar(res); id != nil {
					skip[id] = true
					yield(sevEscape, n.Pos())
				}
			}
			return true
		case *ast.SendStmt:
			if id := usesVar(n.Value); id != nil {
				skip[id] = true
				yield(sevEscape, n.Pos())
			}
			return true
		case *ast.CallExpr:
			if recv, isSink := isSinkCall(n); isSink {
				if recv != nil && info.Uses[recv] == tv.obj {
					skip[recv] = true
					yield(sevEnd, n.Pos())
				}
				for _, arg := range n.Args {
					if id := usesVar(arg); id != nil {
						skip[id] = true
						yield(sevEnd, n.Pos())
					}
				}
				return true
			}
			// Method call on the span itself (sp.Int, sp.Str, ...) is a
			// use of the receiver, handled by the Ident case. Passing the
			// span to any other function transfers ownership.
			for _, arg := range n.Args {
				if id := usesVar(arg); id != nil {
					skip[id] = true
					yield(sevEscape, n.Pos())
				}
			}
			return true
		case *ast.Ident:
			if info.Uses[n] == tv.obj && !skip[n] {
				yield(sevUse, n.Pos())
			}
			return true
		}
		return true
	})
}

// checkSpan solves and reports the {live, ended} states of one tracked
// span over the CFG.
func checkSpan(p *Pass, info *types.Info, cfg *flow.CFG, tv *trackedSpan,
	isSinkCall func(*ast.CallExpr) (*ast.Ident, bool)) {
	apply := func(state uint64, ev spanEvent) uint64 {
		switch ev {
		case sevDef:
			// A fresh value: an earlier registered defer bound the previous
			// value at registration time, so it does not cover this one.
			return shLive
		case sevEnd:
			return (state &^ shLive) | shEnded
		case sevDeferReg:
			return state | shDeferred
		case sevKill, sevEscape:
			return 0
		}
		return state
	}
	trans := func(b *flow.Block, in uint64) uint64 {
		state := in
		for _, node := range b.Nodes {
			spanEvents(info, node, tv, isSinkCall, func(ev spanEvent, pos token.Pos) {
				state = apply(state, ev)
			})
		}
		return state
	}
	in := cfg.Solve(0, trans)

	// Deferred Ends of this span run on every path into Exit.
	var deferredEnds []*ast.DeferStmt
	for _, d := range cfg.Defers {
		recv, isSink := isSinkCall(d.Call)
		if !isSink {
			continue
		}
		if recv != nil && info.Uses[recv] == tv.obj {
			deferredEnds = append(deferredEnds, d)
			continue
		}
		for _, arg := range d.Call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == tv.obj {
				deferredEnds = append(deferredEnds, d)
			}
		}
	}

	reported := make(map[token.Pos]bool)
	reportf := func(pos token.Pos, format string, args ...interface{}) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		p.Reportf(pos, format, args...)
	}

	name := tv.obj.Name()
	for _, b := range cfg.Blocks {
		start, reached := in[b]
		if !reached {
			continue
		}
		state := start
		var lastReturn *ast.ReturnStmt
		for _, node := range b.Nodes {
			spanEvents(info, node, tv, isSinkCall, func(ev spanEvent, pos token.Pos) {
				switch ev {
				case sevEnd:
					// The ENDED bit can only arrive over a path that already
					// ran End: any further End is a may-double-End.
					if state&shEnded != 0 {
						reportf(pos, "span %q may End twice — End recycles the span through the pool; a second End corrupts another span's record", name)
					}
				case sevKill:
					// A registered deferred End owns the old value, so only a
					// rebind with no defer on the path leaks it.
					if state&shLive != 0 && state&shDeferred == 0 {
						reportf(pos, "span %q is rebound while still live — the previous span never Ends and leaks from the pool", name)
					}
				case sevEscape, sevUse:
					if state&shEnded != 0 && state&shLive == 0 {
						reportf(pos, "span %q used after End — the pool may already have recycled it into another span", name)
					}
				}
				state = apply(state, ev)
			})
			if ret, ok := node.(*ast.ReturnStmt); ok {
				lastReturn = ret
			}
		}
		if !linksTo(b, cfg.Exit) {
			continue
		}
		// A deferred End runs here only if its registration reached this
		// exit (the shDeferred bit), not merely because the defer exists
		// somewhere in the function — early returns above the defer
		// statement are untouched by it.
		if state&shDeferred != 0 && len(deferredEnds) > 0 {
			if state&shEnded != 0 {
				reportf(deferredEnds[0].Pos(), "span %q may End twice (explicit End plus deferred End)", name)
			}
			state = apply(state, sevEnd)
		}
		if state&shLive != 0 {
			pos := cfg.End - 1
			if lastReturn != nil {
				pos = lastReturn.Pos()
			}
			reportf(pos, "span %q can reach this return without End — its timing is never recorded and the span leaks from the pool", name)
		}
	}
}
