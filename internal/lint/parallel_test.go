package lint

import (
	"encoding/json"
	"testing"
)

// TestParallelRunIsDeterministic: the parallel driver must produce
// byte-identical findings to a serial run — same diagnostics, same
// order — on a fixture that actually fires analyzers across several
// packages.
func TestParallelRunIsDeterministic(t *testing.T) {
	root := writeFixture(t, fixtureFiles())

	serial, _, err := RunTimed(root, []string{"./..."}, Config{Workers: 1})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if len(serial) == 0 {
		t.Fatal("fixture produced no findings — the determinism comparison is vacuous")
	}
	for _, workers := range []int{2, 8} {
		par, timings, err := RunTimed(root, []string{"./..."}, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d run: %v", workers, err)
		}
		a, _ := json.Marshal(serial)
		b, _ := json.Marshal(par)
		if string(a) != string(b) {
			t.Errorf("workers=%d findings differ from serial:\nserial:\n%s\nparallel:\n%s",
				workers, renderDiags(serial), renderDiags(par))
		}
		if len(timings) != len(Analyzers()) {
			t.Fatalf("workers=%d: %d timings, want one per analyzer (%d)", workers, len(timings), len(Analyzers()))
		}
		for _, tm := range timings {
			if tm.CPUNanos <= 0 || tm.WallNanos <= 0 {
				t.Errorf("workers=%d: analyzer %s has non-positive timing %+v", workers, tm.Analyzer, tm)
			}
		}
	}
}

// TestParallelLoaderSharedDeps: concurrent units whose packages import
// the same in-module dependency must coalesce on the loader's futures
// rather than race or double-check; a mutation finding placed in the
// shared dependency must still surface exactly once.
func TestParallelLoaderSharedDeps(t *testing.T) {
	files := map[string]string{
		"go.mod":                  "module fixturemod\n\ngo 1.22\n",
		"internal/graph/graph.go": fixtureGraph,
	}
	// Several sibling packages all importing internal/graph, so every
	// worker needs the shared dependency at roughly the same time.
	for _, name := range []string{"alpha", "beta", "gamma", "delta"} {
		files["internal/"+name+"/"+name+".go"] = `package ` + name + `

import "fixturemod/internal/graph"

// Touch promotes nothing but keeps the dependency live.
func Touch(g *graph.Graph) bool { return g.HasEdge(0, 1) }
`
	}
	for _, workers := range []int{1, 8} {
		diags, err := Run(writeFixture(t, files), []string{"./..."}, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, d := range diags {
			t.Errorf("workers=%d: unexpected finding %s", workers, d)
		}
	}
}
