package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"promonet/internal/lint/flow"
)

// goroutineLifecycle requires every `go` statement to have a visible
// termination and join story before the snapshot-swap server brings
// concurrent traffic: a leaked worker pins its scratch arrays and its
// channel forever, and an unbalanced WaitGroup turns the first Wait
// into a deadlock. Three rules, all package-local and conservative:
//
//  1. Termination: a spawned body must be able to finish. A bare
//     `for {}` loop with no return or break inside is flagged; a
//     `for range ch` worker loop is accepted only when the package
//     closes that channel somewhere (the engine pool's close(e.jobs)),
//     because a never-closed channel parks the worker forever.
//  2. Join: when the spawning function both Adds and Waits on a local
//     WaitGroup, some spawned goroutine must call Done on it (directly,
//     deferred, or through a package-local worker function whose
//     summary carries ParamWGDone). Deleting the `defer wg.Done()`
//     from a worker makes Wait unreachable — the exact incident this
//     rule turns into a finding.
//  3. Done placement: a goroutine whose Done is not deferred and whose
//     body has an exit path that skips it leaks one Wait count on that
//     path; `defer wg.Done()` is the fix.
//
// Known blind spots, documented on purpose: goroutines whose WaitGroup
// escapes into another package, context-based cancellation (a ctx-done
// select is accepted as a terminating branch simply because select
// branches can return), and function-value spawns the call graph cannot
// resolve. The -race test suite remains the dynamic backstop.
var goroutineLifecycle = &Analyzer{
	Name:     "goroutine-lifecycle",
	Doc:      "flag goroutines with no termination path and WaitGroup joins no goroutine can satisfy",
	Severity: SevError,
	Run:      runGoroutineLifecycle,
}

func runGoroutineLifecycle(p *Pass) {
	info := p.Pkg.Info
	cg := flow.NewCallGraph(info, p.Pkg.Files)
	sums := flow.Summarize(info, p.Pkg.Files, nil)
	closed := closedChannels(info, p.Pkg.Files)
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoTermination(p, info, cg, fd, closed)
			checkWaitGroupJoin(p, info, sums, fd)
		}
	}
}

// --- rule 1: termination ---

// closedChannels collects the root objects (locals and struct fields)
// of every channel the package closes anywhere. A for-range worker loop
// over one of these terminates when the producer shuts down.
func closedChannels(info *types.Info, files []*ast.File) map[types.Object]bool {
	closed := make(map[types.Object]bool)
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, isBuiltin := builtinCallName(info, call); !isBuiltin || name != "close" || len(call.Args) != 1 {
				return true
			}
			if obj := chanRootObj(info, call.Args[0]); obj != nil {
				closed[obj] = true
			}
			return true
		})
	}
	return closed
}

// chanRootObj resolves a channel expression to its identity object: a
// local/package variable, or the struct field of a selector chain
// (e.jobs identifies as the jobs field, whichever instance e is — a
// deliberate approximation that matches how worker pools name their
// one channel).
func chanRootObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// checkGoTermination applies rule 1 to every go statement in fd.
func checkGoTermination(p *Pass, info *types.Info, cg *flow.CallGraph, fd *ast.FuncDecl, closed map[types.Object]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body := spawnedBody(info, cg, gs)
		if body == nil {
			return true // dynamic or out-of-package spawn: blind spot
		}
		ast.Inspect(body, func(m ast.Node) bool {
			if _, isLit := m.(*ast.FuncLit); isLit && m != ast.Node(body) {
				return false // nested goroutine bodies are their own spawns
			}
			switch loop := m.(type) {
			case *ast.ForStmt:
				if loop.Cond == nil && !loopCanExit(loop.Body) {
					p.Reportf(loop.Pos(), "goroutine loops forever — this for loop has no condition, return, or break, so the goroutine can never terminate and its stack and captures leak")
				}
			case *ast.RangeStmt:
				t := typeOfExpr(info, loop.X)
				if t == nil {
					return true
				}
				if _, isChan := t.Underlying().(*types.Chan); !isChan {
					return true
				}
				if obj := chanRootObj(info, loop.X); obj == nil || !closed[obj] {
					p.Reportf(loop.Pos(), "goroutine ranges over channel %s, which this package never closes — the worker parks forever once producers stop; close the channel on shutdown", exprString(loop.X))
				}
			}
			return true
		})
		return true
	})
}

// spawnedBody resolves the body a go statement runs: a function
// literal's own body, or the declaration body of a package-local named
// callee. nil for anything the call graph cannot see.
func spawnedBody(info *types.Info, cg *flow.CallGraph, gs *ast.GoStmt) ast.Node {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if callee := flow.Callee(info, gs.Call); callee != nil {
		if fd, ok := cg.Decls[callee]; ok {
			return fd.Body
		}
	}
	return nil
}

// loopCanExit reports whether a loop body contains a return or a break
// that can leave the loop. Unlabeled breaks inside nested loops,
// switches, and selects target those constructs, not our loop; a
// labeled break or a goto is assumed to escape (conservative — this is
// the no-finding direction).
func loopCanExit(body *ast.BlockStmt) bool {
	can := false
	depth := 0
	var scopes []bool // parallel to the walk stack: did this node bump depth?
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			if scopes[len(scopes)-1] {
				depth--
			}
			scopes = scopes[:len(scopes)-1]
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its returns and breaks are its own
		case *ast.ReturnStmt:
			can = true
		case *ast.BranchStmt:
			switch n.Tok {
			case token.BREAK:
				if depth == 0 || n.Label != nil {
					can = true
				}
			case token.GOTO:
				can = true
			}
		}
		isScope := false
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			isScope = true
			depth++
		}
		scopes = append(scopes, isScope)
		return true
	})
	return can
}

// --- rules 2 and 3: WaitGroup join ---

// wgCall matches a sync.WaitGroup method call, returning the method
// name and the receiver's identity object.
func wgCall(info *types.Info, call *ast.CallExpr) (string, types.Object) {
	callee := flow.Callee(info, call)
	if callee == nil || !isSyncWGMethod(callee) {
		return "", nil
	}
	recv := flow.Receiver(call)
	if recv == nil {
		return "", nil
	}
	return callee.Name(), chanRootObj(info, recv)
}

// isSyncWGMethod reports whether fn is a method of sync.WaitGroup.
func isSyncWGMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// checkWaitGroupJoin applies rules 2 and 3 to every WaitGroup fd both
// Adds and Waits on.
func checkWaitGroupJoin(p *Pass, info *types.Info, sums *flow.SummarySet, fd *ast.FuncDecl) {
	type use struct {
		addPos  ast.Node
		waitPos *ast.CallExpr
	}
	uses := make(map[types.Object]*use)
	var goStmts []*ast.GoStmt
	escaped := make(map[types.Object]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			goStmts = append(goStmts, n)
		case *ast.CallExpr:
			if name, obj := wgCall(info, n); obj != nil {
				u := uses[obj]
				if u == nil {
					u = &use{}
					uses[obj] = u
				}
				switch name {
				case "Add":
					if u.addPos == nil {
						u.addPos = n
					}
				case "Wait":
					if u.waitPos == nil {
						u.waitPos = n
					}
				}
				return true
			}
			// A WaitGroup passed to any other call escapes this
			// function's view unless the callee's summary proves it is a
			// Done-forwarding worker (counted by goroutineDones below).
			for i, arg := range n.Args {
				if obj := wgArgObj(info, arg); obj != nil {
					callee := flow.Callee(info, n)
					if callee == nil || sums.FactsAt(callee, i)&flow.ParamWGDone == 0 {
						escaped[obj] = true
					}
				}
			}
		}
		return true
	})

	for obj, u := range uses {
		if u.addPos == nil || u.waitPos == nil || escaped[obj] || len(goStmts) == 0 {
			continue
		}
		// A WaitGroup parameter or field may be Added/Done'd by other
		// functions; only a local's balance is fully visible here.
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || isParamOf(info, fd, obj) {
			continue
		}
		done := false
		for _, gs := range goStmts {
			if goroutineDones(info, sums, gs, obj) {
				done = true
				break
			}
		}
		if !done && !closureDones(info, fd, obj) {
			p.Reportf(u.waitPos.Pos(), "%s.Wait() can never return: this function Adds to the WaitGroup and spawns goroutines, but no spawned goroutine calls %s.Done() — every worker needs a defer %s.Done()", obj.Name(), obj.Name(), obj.Name())
		}
	}

	// Rule 3: a goroutine body with a non-deferred Done and an exit path
	// that misses it.
	for _, gs := range goStmts {
		checkDonePlacement(p, info, gs)
	}
}

// wgArgObj resolves a call argument to a WaitGroup identity object,
// seeing through the &wg address-of.
func wgArgObj(info *types.Info, arg ast.Expr) types.Object {
	e := ast.Unparen(arg)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = u.X
	}
	obj := chanRootObj(info, e)
	if obj == nil {
		return nil
	}
	t := obj.Type()
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if named.Obj().Name() == "WaitGroup" && named.Obj().Pkg().Path() == "sync" {
		return obj
	}
	return nil
}

// isParamOf reports whether obj is a parameter or receiver of fd.
func isParamOf(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	match := false
	collect := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				if info.Defs[name] == obj {
					match = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return match
}

// goroutineDones reports whether the goroutine spawned by gs calls
// Done on the WaitGroup identified by obj: a literal body containing
// wg.Done() (deferred or not), or a named package-local worker whose
// parameter summary carries ParamWGDone for the argument bound to obj.
func goroutineDones(info *types.Info, sums *flow.SummarySet, gs *ast.GoStmt, obj types.Object) bool {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return bodyDones(info, lit.Body, obj)
	}
	callee := flow.Callee(info, gs.Call)
	if callee == nil {
		return false
	}
	for i, arg := range gs.Call.Args {
		if wgArgObj(info, arg) == obj && sums.FactsAt(callee, i)&flow.ParamWGDone != 0 {
			return true
		}
	}
	return false
}

// bodyDones reports whether body contains a Done call on obj.
func bodyDones(info *types.Info, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, root := wgCall(info, call); name == "Done" && root == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// closureDones reports whether any non-go closure in fd calls Done on
// obj — e.g. a callback handed to an in-package scheduler. Counting it
// keeps rule 2 conservative.
func closureDones(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && bodyDones(info, lit.Body, obj) {
			found = true
		}
		return !found
	})
	return found
}

// checkDonePlacement applies rule 3 to one spawned literal body: if it
// calls Done non-deferred and some path to the body's exit skips every
// Done, that path under-counts the join.
func checkDonePlacement(p *Pass, info *types.Info, gs *ast.GoStmt) {
	lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	// Collect the Done'd WaitGroups of this body, split by placement.
	deferred := make(map[types.Object]bool)
	var direct []struct {
		obj  types.Object
		call *ast.CallExpr
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == lit
		case *ast.DeferStmt:
			if name, obj := wgCall(info, n.Call); name == "Done" && obj != nil {
				deferred[obj] = true
			}
			return false
		case *ast.CallExpr:
			if name, obj := wgCall(info, n); name == "Done" && obj != nil {
				direct = append(direct, struct {
					obj  types.Object
					call *ast.CallExpr
				}{obj, n})
			}
		}
		return true
	})
	for _, d := range direct {
		if deferred[d.obj] {
			continue // a deferred Done covers every path
		}
		if mayExitWithout(info, lit.Body, d.obj) {
			p.Reportf(d.call.Pos(), "%s.Done() is not deferred and some path through this goroutine exits without it — Wait under-counts on that path; use defer %s.Done() at the top of the goroutine", d.obj.Name(), d.obj.Name())
		}
	}
}

// mayExitWithout solves the goroutine body's CFG for "a Done on obj may
// not have run yet" and reports whether that state reaches an exit. The
// bit is the negation of the must-property, per the Solve contract.
func mayExitWithout(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	const mayNoDone uint64 = 1
	cfg := flow.New(body, info)
	trans := func(b *flow.Block, in uint64) uint64 {
		state := in
		for _, node := range b.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if name, root := wgCall(info, call); name == "Done" && root == obj {
						state = 0
					}
				}
				return true
			})
		}
		return state
	}
	in := cfg.Solve(mayNoDone, trans)
	for _, b := range cfg.Blocks {
		start, reached := in[b]
		if !reached || !linksTo(b, cfg.Exit) {
			continue
		}
		if trans(b, start)&mayNoDone != 0 {
			return true
		}
	}
	return false
}
