package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// engineBypass routes every consumer of the heavy centrality kernels
// through the shared execution engine. Direct calls to the all-pairs
// kernels (Betweenness*, Closeness, Eccentricity*/ReciprocalEccentricity,
// Coreness*) outside internal/centrality and internal/engine forfeit
// the engine's pooled scratch, persistent workers, and content-addressed
// memoization — the difference between O(1) and O(n·m) on the greedy
// baseline's mutate-evaluate-revert loop — and are flagged. Intentional
// direct baselines (differential tests, benchmarks comparing direct vs
// pooled) opt out with //promolint:allow engine-bypass.
var engineBypass = &Analyzer{
	Name:     "engine-bypass",
	Doc:      "flag direct heavy centrality kernel calls that bypass engine.Default()",
	Severity: SevError,
	Run:      runEngineBypass,
}

// heavyKernelPrefixes match the exported all-pairs kernels of
// internal/centrality by name. Single-source helpers (Distances, Dist,
// RankOf, ...) stay callable anywhere: they are not worth memoizing.
var heavyKernelPrefixes = []string{"Betweenness", "Eccentricity", "Coreness"}

// heavyKernelExact lists heavy kernels not covered by a prefix.
var heavyKernelExact = map[string]bool{
	"Closeness":              true,
	"ReciprocalEccentricity": true,
}

func isHeavyKernel(name string) bool {
	if heavyKernelExact[name] {
		return true
	}
	for _, prefix := range heavyKernelPrefixes {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runEngineBypass(p *Pass) {
	// The kernel package itself and the engine that wraps it are the
	// two sanctioned direct callers.
	if p.relScope("internal/centrality", "internal/engine") {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "internal/centrality" && !strings.HasSuffix(path, "/internal/centrality") {
				return true
			}
			if !isHeavyKernel(sel.Sel.Name) {
				return true
			}
			p.Reportf(call.Pos(),
				"direct call to heavy kernel %s.%s bypasses the memoizing engine — score through engine.Default() (or annotate an intentional baseline with //promolint:allow engine-bypass)",
				id.Name, sel.Sel.Name)
			return true
		})
	}
}
