package lint

import (
	"go/ast"
	"go/types"

	"promonet/internal/lint/flow"
)

// viewImmutability enforces the read-only half of the graph.View
// contract everywhere a View is consumed: a slice obtained from
// Adjacency, Arcs, or graph.ArcsOf — or any alias of one, through
// rebinds, subslices, and package-local helpers — must never be written
// through (element store, copy destination, append base) and must never
// be parked in mutable storage (struct field, map, package variable,
// channel, composite literal) where it would outlive the backend's next
// mutation. The engine memo, the delta-scoring bitwise guarantees, and
// the snapshot-swap design are only sound because frozen rows never
// change under a reader; this analyzer turns that convention into a
// compile-time finding.
//
// internal/graph/csr is exempt here: the CSR backend legitimately
// builds and edits the arrays everyone else must treat as frozen, and
// its own discipline is enforced by the stricter snapshot-aliasing
// analyzer instead.
var viewImmutability = &Analyzer{
	Name:     "view-immutability",
	Doc:      "flag writes through or mutable retention of graph.View adjacency/arc slices, interprocedurally",
	Severity: SevError,
	Run:      runViewImmutability,
}

func runViewImmutability(p *Pass) {
	if p.relScope("internal/graph/csr") {
		return
	}
	info := p.Pkg.Info
	isSource := func(call *ast.CallExpr) bool { return isViewSourceCall(info, call) }
	rf := &roFlow{
		pass:         p,
		info:         info,
		sums:         flow.Summarize(info, p.Pkg.Files, isSource),
		isSourceCall: isSource,
		what:         "read-only View adjacency/arc slice",
		advice:       "Views are frozen by contract — copy the row (append([]int32(nil), row...)) or mutate an Overlay instead",
	}
	rf.check()
}

// isViewSourceCall reports whether call returns a frozen view slice: a
// method named Adjacency or Arcs on any graph backend or view interface
// (a named or interface type declared in a package whose import path
// ends in internal/graph or internal/graph/csr), or the graph.ArcsOf
// helper. Matching by path suffix keeps fixtures with a different
// module name behaving like the real tree.
func isViewSourceCall(info *types.Info, call *ast.CallExpr) bool {
	callee := flow.Callee(info, call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	if !pkgPathEndsIn(callee.Pkg().Path(), "internal/graph") &&
		!pkgPathEndsIn(callee.Pkg().Path(), "internal/graph/csr") {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() != nil {
		return callee.Name() == "Adjacency" || callee.Name() == "Arcs"
	}
	return callee.Name() == "ArcsOf"
}
