package lint

import (
	"go/ast"
	"go/types"
)

// concurrency enforces the fan-out hygiene the parallel BFS/Brandes
// workers rely on. Two patterns are flagged, in every package:
//
//  1. A goroutine closure (`go func() {...}`) that writes to a captured
//     map, assigns to a captured slice/map variable, or writes a
//     captured slice element at an index that is not partitioned by a
//     closure-local variable. Worker code must write only into its own
//     partition (index derived from a closure parameter) and merge
//     after the WaitGroup barrier.
//  2. sync.WaitGroup.Add called inside the loop body that spawns the
//     goroutines. The repo convention is a single wg.Add(n) before the
//     loop, so the counter can never trail the spawns.
var concurrency = &Analyzer{
	Name: "concurrency",
	Doc:  "flag goroutine closures writing captured maps/slices and per-iteration WaitGroup.Add",
	Run:  runConcurrency,
}

func runConcurrency(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineWrites(p, lit)
				}
			case *ast.ForStmt:
				checkAddInSpawnLoop(p, n.Body)
			case *ast.RangeStmt:
				checkAddInSpawnLoop(p, n.Body)
			}
			return true
		})
	}
}

// checkGoroutineWrites flags shared-state writes inside a goroutine
// closure.
func checkGoroutineWrites(p *Pass, lit *ast.FuncLit) {
	info := p.Pkg.Info
	// capturedBy reports whether the identifier resolves to a variable
	// declared outside the closure (captured by reference).
	captured := func(id *ast.Ident) bool {
		obj := info.Uses[id]
		if obj == nil {
			return false
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		return v.Pos() < lit.Pos() || v.Pos() > lit.End()
	}
	localIndex := func(index ast.Expr) bool {
		local := false
		ast.Inspect(index, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj, ok := info.Uses[id].(*types.Var); ok &&
					obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
					local = true
				}
			}
			return true
		})
		return local
	}
	checkTarget := func(lhs ast.Expr) {
		switch lhs := lhs.(type) {
		case *ast.IndexExpr:
			base, ok := lhs.X.(*ast.Ident)
			if !ok || !captured(base) {
				return
			}
			switch info.Types[lhs.X].Type.Underlying().(type) {
			case *types.Map:
				p.Reportf(lhs.Pos(),
					"goroutine writes to captured map %q — unsynchronized map writes race; give each worker its own map and merge after wg.Wait",
					base.Name)
			case *types.Slice:
				if !localIndex(lhs.Index) {
					p.Reportf(lhs.Pos(),
						"goroutine writes captured slice %q at an index not derived from a closure-local variable — partition by worker index or merge after the barrier",
						base.Name)
				}
			}
		case *ast.Ident:
			if lhs.Name == "_" || !captured(lhs) {
				return
			}
			switch info.Types[lhs].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				p.Reportf(lhs.Pos(),
					"goroutine assigns to captured variable %q — racy; collect per-worker results and merge after wg.Wait",
					lhs.Name)
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Nested closures are analyzed against the outer goroutine's
			// capture boundary, which checkTarget already handles.
			return true
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkTarget(lhs)
			}
		case *ast.IncDecStmt:
			checkTarget(n.X)
		}
		return true
	})
}

// checkAddInSpawnLoop flags wg.Add calls in a loop body that also
// contains a go statement.
func checkAddInSpawnLoop(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	spawns := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			spawns = true
			return false
		}
		return true
	})
	if !spawns {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if !isWaitGroup(info.Types[sel.X].Type) {
			return true
		}
		p.Reportf(call.Pos(),
			"WaitGroup.Add inside the goroutine-spawning loop — hoist a single %s.Add(n) above the loop so the counter can never trail the spawns",
			exprString(sel.X))
		return true
	})
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
