package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// ignoredErrors flags silently discarded error returns in the places
// where a swallowed error corrupts results instead of crashing loudly:
// the CLI entry points (cmd/...), the graph generators (internal/gen),
// and the graph serialization layer (internal/graph/io.go). A call
// statement whose callee returns an
// error is a finding; assigning the error to the blank identifier
// (`_ = f.Close()`) is the explicit, greppable opt-out. The fmt print
// family writing to stdout/stderr is exempt — those errors are
// conventionally unactionable.
var ignoredErrors = &Analyzer{
	Name: "ignored-errors",
	Doc:  "flag discarded error returns in cmd/, internal/gen, and internal/graph/io.go",
	Run:  runIgnoredErrors,
}

func runIgnoredErrors(p *Pass) {
	wholePkg := p.relScope("cmd", "internal/gen")
	inGraph := p.Pkg.Rel == "internal/graph" || strings.HasSuffix(p.Pkg.Rel, "/internal/graph")
	if !wholePkg && !inGraph {
		return
	}
	for _, file := range p.Pkg.Files {
		if inGraph && !wholePkg {
			name := filepath.Base(p.Fset.Position(file.Pos()).Filename)
			if name != "io.go" {
				continue
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p.Pkg.Info, call) || isExemptPrint(p.Pkg.Info, call) {
				return true
			}
			p.Reportf(call.Pos(),
				"result of %s includes an error that is silently discarded — handle it or assign it to _ explicitly",
				exprString(call.Fun))
			return true
		})
	}
}

// returnsError reports whether the call's result type is error or a
// tuple containing an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

// isExemptPrint reports whether the call is fmt.Print/Printf/Println or
// an fmt.Fprint* writing to os.Stdout or os.Stderr.
func isExemptPrint(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "fmt" {
		return false
	}
	name := sel.Sel.Name
	if strings.HasPrefix(name, "Print") {
		return true
	}
	if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		if w, ok := call.Args[0].(*ast.SelectorExpr); ok {
			if wid, ok := w.X.(*ast.Ident); ok {
				if wpkg, ok := info.Uses[wid].(*types.PkgName); ok && wpkg.Imported().Path() == "os" &&
					(w.Sel.Name == "Stdout" || w.Sel.Name == "Stderr") {
					return true
				}
			}
		}
	}
	return false
}
